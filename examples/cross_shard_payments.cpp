// Cross-shard payments: the workload the paper's introduction motivates.
// Builds a network where most transfers cross shard boundaries, follows
// one payment through the inter-committee consensus (§IV-D), and shows
// the semi-commitment verification that secures it.
#include <cstdio>

#include "ledger/validator.hpp"
#include "protocol/engine.hpp"
#include "protocol/semicommit.hpp"

using namespace cyc;

int main() {
  protocol::Params params;
  params.m = 4;
  params.c = 10;
  params.lambda = 3;
  params.referee_size = 7;
  params.txs_per_committee = 16;
  params.cross_shard_fraction = 0.7;  // mostly cross-shard traffic
  params.invalid_fraction = 0.0;
  params.seed = 99;

  protocol::Engine engine(params, protocol::AdversaryConfig{});
  std::printf("cross-shard payment network: %u shards, 70%% cross traffic\n\n",
              params.m);

  // Demonstrate the semi-commitment machinery the cross-shard path
  // relies on: a committee's member list binds to H(S).
  {
    std::vector<crypto::PublicKey> members;
    for (std::uint64_t i = 0; i < 5; ++i) {
      members.push_back(crypto::KeyPair::from_seed(i).pk);
    }
    const auto commitment = protocol::semi_commitment(members);
    std::printf("semi-commitment demo:\n");
    std::printf("  SEMI_COM = %s...\n",
                to_hex(crypto::digest_to_bytes(commitment)).substr(0, 16).c_str());
    std::printf("  honest list verifies: %s\n",
                protocol::verify_semi_commitment(commitment, members) ? "yes"
                                                                      : "no");
    auto forged = members;
    forged.pop_back();
    std::printf("  forged list detected: %s\n\n",
                !protocol::verify_semi_commitment(commitment, forged) ? "yes"
                                                                      : "no");
  }

  std::size_t total_cross = 0, total_intra = 0;
  for (int round = 0; round < 4; ++round) {
    const auto report = engine.run_round();
    total_cross += report.cross_committed;
    total_intra += report.intra_committed;
    std::printf("round %llu: %zu cross-shard and %zu intra-shard payments "
                "settled (%zu recoveries)\n",
                (unsigned long long)report.round, report.cross_committed,
                report.intra_committed, report.recoveries);
  }

  std::printf("\ntotal settled: %zu cross-shard, %zu intra-shard\n",
              total_cross, total_intra);
  std::printf("every cross-shard payment carried: an origin-committee\n"
              "quorum certificate, checked against the origin's\n"
              "semi-commitment, then a destination-committee acceptance\n"
              "certificate — both re-verified by the referee committee.\n");
  return total_cross > 0 ? 0 : 1;
}
