// Network explorer: a small CLI for driving the simulator from the
// command line — sweep parameters without writing code.
//
//   ./network_explorer [options]
//     --m N          committees (default 4)
//     --c N          committee size (default 10)
//     --lambda N     partial-set size (default 3)
//     --rounds N     rounds to run (default 5)
//     --corrupt F    corrupted node fraction (default 0)
//     --bad-leaders F  forced corrupt-leader fraction (default off)
//     --cross F      cross-shard fraction (default 0.25)
//     --invalid F    invalid-tx fraction (default 0.05)
//     --seed N       RNG seed (default 1)
//     --no-recovery  disable the recovery procedure
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "protocol/engine.hpp"

using namespace cyc;

namespace {

double arg_f(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

long arg_i(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  protocol::Params params;
  params.m = static_cast<std::uint32_t>(arg_i(argc, argv, "--m", 4));
  params.c = static_cast<std::uint32_t>(arg_i(argc, argv, "--c", 10));
  params.lambda =
      static_cast<std::uint32_t>(arg_i(argc, argv, "--lambda", 3));
  params.referee_size = 7;
  params.txs_per_committee = 12;
  params.cross_shard_fraction = arg_f(argc, argv, "--cross", 0.25);
  params.invalid_fraction = arg_f(argc, argv, "--invalid", 0.05);
  params.seed = static_cast<std::uint64_t>(arg_i(argc, argv, "--seed", 1));
  const auto rounds =
      static_cast<std::size_t>(arg_i(argc, argv, "--rounds", 5));

  protocol::AdversaryConfig adversary;
  adversary.corrupt_fraction = arg_f(argc, argv, "--corrupt", 0.0);
  adversary.forced_corrupt_leader_fraction =
      arg_f(argc, argv, "--bad-leaders", -1.0);

  protocol::EngineOptions options;
  options.recovery_enabled = !arg_flag(argc, argv, "--no-recovery");

  protocol::Engine engine(params, adversary, options);
  std::printf(
      "CycLedger explorer: n=%u (m=%u x c=%u + %u referees), "
      "corrupt=%.2f, recovery=%s\n\n",
      params.total_nodes(), params.m, params.c, params.referee_size,
      adversary.corrupt_fraction, options.recovery_enabled ? "on" : "off");

  std::printf("%-6s %-10s %-9s %-9s %-8s %-10s %-9s %-10s %-8s\n", "round",
              "committed", "intra", "cross", "rej.inv", "recoveries",
              "void?", "msgs", "fees");
  std::size_t violations = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto report = engine.run_round();
    violations += report.invalid_committed;
    std::printf("%-6llu %-10zu %-9zu %-9zu %-8zu %-10zu %-9s %-10llu %-8.0f\n",
                (unsigned long long)report.round, report.txs_committed,
                report.intra_committed, report.cross_committed,
                report.invalid_rejected, report.recoveries,
                report.block_void ? "VOID" : "no",
                (unsigned long long)report.traffic_total.msgs_sent,
                report.total_fees);
  }

  std::printf("\nchain height %zu, valid: %s; safety violations: %zu\n",
              engine.chain().height(),
              engine.chain().validate() ? "yes" : "NO", violations);

  // Reputation leaderboard.
  std::vector<std::pair<double, net::NodeId>> board;
  for (net::NodeId id = 0; id < engine.node_count(); ++id) {
    board.emplace_back(engine.reputation(id), id);
  }
  std::sort(board.rbegin(), board.rend());
  std::printf("\ntop-5 reputation: ");
  for (int i = 0; i < 5 && i < static_cast<int>(board.size()); ++i) {
    std::printf("node %u (%.2f)  ", board[static_cast<std::size_t>(i)].second,
                board[static_cast<std::size_t>(i)].first);
  }
  std::printf("\n");
  return violations == 0 ? 0 : 1;
}
