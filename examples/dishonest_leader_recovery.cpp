// Dishonest-leader recovery: the paper's headline capability. Corrupts
// committee leaders with every misbehaviour the threat model describes
// and watches the recovery procedure (Alg. 6) evict them mid-round while
// the block still fills.
#include <cstdio>

#include "protocol/engine.hpp"

using namespace cyc;

int main() {
  std::printf("=== CycLedger under dishonest leaders ===\n\n");

  // All four leaders corrupted, one of each misbehaviour (the forced
  // assignment cycles equivocator / commit-forger / crash / concealer).
  protocol::Params params;
  params.m = 4;
  params.c = 10;
  params.lambda = 3;
  params.referee_size = 7;
  params.txs_per_committee = 12;
  params.cross_shard_fraction = 0.3;
  params.invalid_fraction = 0.0;
  params.seed = 7;

  protocol::AdversaryConfig adversary;
  adversary.forced_corrupt_leader_fraction = 1.0;

  protocol::Engine engine(params, adversary);
  std::printf("round-1 leaders and their (hidden) behaviours:\n");
  for (const auto& committee : engine.assignment().committees) {
    std::printf("  committee %u: node %u -> %s\n", committee.id,
                committee.leader,
                std::string(behavior_name(engine.behavior_of(committee.leader)))
                    .c_str());
  }

  const auto report = engine.run_round();
  std::printf("\nround 1 outcome:\n");
  std::printf("  committed: %zu of %zu offered\n", report.txs_committed,
              report.txs_offered);
  std::printf("  recoveries: %zu\n", report.recoveries);
  for (const auto& event : report.recovery_events) {
    std::printf("    committee %u: leader %u evicted, partial-set member %u "
                "took over\n",
                event.committee, event.old_leader, event.new_leader);
  }
  std::printf("  safety violations: %zu (must be 0)\n",
              report.invalid_committed);

  std::printf("\nround 2 (reputation-ranked selection avoids the convicts):\n");
  const auto round2 = engine.run_round();
  std::printf("  committed: %zu, recoveries: %zu\n", round2.txs_committed,
              round2.recoveries);

  std::printf(
      "\nCompare: the same network WITHOUT the recovery procedure\n"
      "(RapidChain-like behaviour) loses every corrupted committee:\n");
  protocol::EngineOptions no_recovery;
  no_recovery.recovery_enabled = false;
  protocol::Engine baseline(params, adversary, no_recovery);
  const auto stalled = baseline.run_round();
  std::printf("  committed: %zu of %zu offered, recoveries: %zu\n",
              stalled.txs_committed, stalled.txs_offered, stalled.recoveries);

  return (report.txs_committed > stalled.txs_committed &&
          report.invalid_committed == 0)
             ? 0
             : 1;
}
