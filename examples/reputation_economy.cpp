// Reputation economy: how votes become reputation (Eq. 1), reputation
// becomes income (Eq. 2 / Fig. 4), and misbehaviour becomes poverty
// (§VII). Runs a heterogeneous network for several rounds and prints the
// resulting economy.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "protocol/engine.hpp"
#include "protocol/reputation.hpp"

using namespace cyc;

int main() {
  protocol::Params params;
  params.m = 3;
  params.c = 12;
  params.lambda = 3;
  params.referee_size = 7;
  params.txs_per_committee = 24;
  params.cross_shard_fraction = 0.2;
  params.invalid_fraction = 0.15;
  // Heterogeneous computing power: capacity = judged txs per list.
  params.capacity_min = 4;
  params.capacity_max = 48;
  params.seed = 314;

  // A quarter of the network votes adversarially.
  protocol::AdversaryConfig adversary;
  adversary.corrupt_fraction = 0.25;
  adversary.mix = {{protocol::Behavior::kInverseVoter, 2.0},
                   {protocol::Behavior::kRandomVoter, 1.0}};

  protocol::Engine engine(params, adversary);
  const auto report = engine.run(5);

  struct Entry {
    net::NodeId id;
    std::uint32_t capacity;
    protocol::Behavior behavior;
    double reputation;
    double reward;
  };
  std::vector<Entry> entries;
  for (net::NodeId id = 0; id < engine.node_count(); ++id) {
    entries.push_back({id, engine.capacity_of(id), report.behaviors[id],
                       report.final_reputations[id],
                       report.final_rewards[id]});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.reputation > b.reputation;
            });

  std::printf("=== Reputation economy after 5 rounds ===\n\n");
  std::printf("top 8 validators:\n");
  std::printf("%-6s %-10s %-14s %-12s %-10s\n", "node", "capacity",
              "behavior", "reputation", "reward");
  for (std::size_t i = 0; i < 8 && i < entries.size(); ++i) {
    const auto& e = entries[i];
    std::printf("%-6u %-10u %-14s %-12.3f %-10.3f\n", e.id, e.capacity,
                std::string(behavior_name(e.behavior)).c_str(), e.reputation,
                e.reward);
  }
  std::printf("\nbottom 5 validators:\n");
  for (std::size_t i = entries.size() >= 5 ? entries.size() - 5 : 0;
       i < entries.size(); ++i) {
    const auto& e = entries[i];
    std::printf("%-6u %-10u %-14s %-12.3f %-10.3f\n", e.id, e.capacity,
                std::string(behavior_name(e.behavior)).c_str(), e.reputation,
                e.reward);
  }

  // Aggregate: honest strong vs honest weak vs misbehaving.
  double strong = 0, weak = 0, bad = 0;
  int n_strong = 0, n_weak = 0, n_bad = 0;
  for (const auto& e : entries) {
    if (e.behavior != protocol::Behavior::kHonest) {
      bad += e.reward;
      ++n_bad;
    } else if (e.capacity >= 24) {
      strong += e.reward;
      ++n_strong;
    } else {
      weak += e.reward;
      ++n_weak;
    }
  }
  std::printf("\naverage cumulative reward:\n");
  std::printf("  honest, high capacity : %.3f (%d nodes)\n",
              strong / std::max(1, n_strong), n_strong);
  std::printf("  honest, low capacity  : %.3f (%d nodes)\n",
              weak / std::max(1, n_weak), n_weak);
  std::printf("  misbehaving           : %.3f (%d nodes)\n",
              bad / std::max(1, n_bad), n_bad);
  std::printf(
      "\nThe ordering above is the paper's incentive claim (§VII): rewards\n"
      "track trusty computing power, and 'it is better to do nothing\n"
      "rather than do something bad'.\n");

  const bool ordering_holds =
      strong / std::max(1, n_strong) > bad / std::max(1, n_bad);
  return ordering_holds ? 0 : 1;
}
