// Quickstart: configure a small CycLedger network, run a few rounds and
// read the results. This is the smallest end-to-end use of the library.
//
//   $ ./quickstart [rounds]
#include <cstdio>
#include <cstdlib>

#include "protocol/engine.hpp"

int main(int argc, char** argv) {
  const std::size_t rounds =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;

  // 1. Pick the protocol parameters (§III-A notation): m committees of
  //    c members with lambda potential leaders each, plus the referee
  //    committee C_R.
  cyc::protocol::Params params;
  params.m = 4;              // committees / shards
  params.c = 10;             // committee size
  params.lambda = 3;         // partial-set size
  params.referee_size = 7;   // |C_R|
  params.txs_per_committee = 12;
  params.cross_shard_fraction = 0.25;  // 25% cross-shard payments
  params.invalid_fraction = 0.05;      // 5% bogus submissions
  params.seed = 2024;

  // 2. No adversary in the quickstart; see dishonest_leader_recovery for
  //    the interesting case.
  cyc::protocol::AdversaryConfig adversary;

  // 3. Run.
  cyc::protocol::Engine engine(params, adversary);
  std::printf("CycLedger quickstart: n=%u nodes, %u committees\n\n",
              params.total_nodes(), params.m);

  for (std::size_t i = 0; i < rounds; ++i) {
    const cyc::protocol::RoundReport report = engine.run_round();
    std::printf(
        "round %llu: committed %zu tx (%zu intra, %zu cross), "
        "rejected %zu invalid, fees %.0f, %llu messages\n",
        (unsigned long long)report.round, report.txs_committed,
        report.intra_committed, report.cross_committed,
        report.invalid_rejected, report.total_fees,
        (unsigned long long)report.traffic_total.msgs_sent);
    if (report.invalid_committed != 0) {
      std::printf("  !! safety violation: %zu invalid tx committed\n",
                  report.invalid_committed);
      return 1;
    }
  }

  // 4. Inspect final state: shard balances and the reputation earned by
  //    honest validators.
  std::printf("\nfinal shard state:\n");
  for (const auto& store : engine.shard_state()) {
    std::printf("  shard %u: %zu UTXOs, total value %llu\n", store.shard(),
                store.size(), (unsigned long long)store.total_value());
  }

  double best = 0.0;
  for (cyc::net::NodeId id = 0; id < engine.node_count(); ++id) {
    best = std::max(best, engine.reputation(id));
  }
  std::printf("best reputation after %zu rounds: %.2f\n", rounds, best);
  return 0;
}
