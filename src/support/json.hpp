// Minimal JSON support for machine-readable artifacts.
//
// JsonWriter emits objects/arrays with automatic comma placement; values
// are numbers, booleans and escaped strings. It produces the
// bench/out/BENCH_*.json and SCENARIOS artifacts.
//
// JsonValue is the matching recursive-descent parser, used by the
// scenario harness to load declarative ScenarioSpec files. It keeps the
// same deliberately small surface: null / bool / double / string /
// array / object (insertion-ordered). Parse errors throw
// JsonParseError with a byte offset.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cyc::support {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    pre_value();
    buf_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    buf_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    pre_value();
    buf_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    buf_ += ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    comma();
    append_string(k);
    buf_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    pre_value();
    append_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v) {
    pre_value();
    if (!std::isfinite(v)) {
      buf_ += "null";  // bare nan/inf would invalidate the document
      return *this;
    }
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%.10g", v);
    buf_ += tmp;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    pre_value();
    buf_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    pre_value();
    buf_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    pre_value();
    buf_ += v ? "true" : "false";
    return *this;
  }

  /// key + scalar value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return buf_; }

 private:
  void comma() {
    if (!stack_.empty()) {
      if (stack_.back()) buf_ += ',';
      stack_.back() = true;
    }
  }
  void pre_value() {
    if (pending_value_) {
      pending_value_ = false;  // value follows its key; comma already done
    } else {
      comma();
    }
  }
  void append_string(std::string_view s) {
    buf_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': buf_ += "\\\""; break;
        case '\\': buf_ += "\\\\"; break;
        case '\n': buf_ += "\\n"; break;
        case '\t': buf_ += "\\t"; break;
        case '\r': buf_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char tmp[8];
            std::snprintf(tmp, sizeof(tmp), "\\u%04x", c);
            buf_ += tmp;
          } else {
            buf_ += c;
          }
      }
    }
    buf_ += '"';
  }

  std::string buf_;
  std::vector<bool> stack_;  // per nesting level: "has emitted an element"
  bool pending_value_ = false;
};

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray,
                                   kObject };
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered, matching what JsonWriter emitted.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const {
    require(Kind::kBool, "bool");
    return bool_;
  }
  double as_number() const {
    require(Kind::kNumber, "number");
    return num_;
  }
  const std::string& as_string() const {
    require(Kind::kString, "string");
    return str_;
  }
  const Array& as_array() const {
    require(Kind::kArray, "array");
    return arr_;
  }
  const Object& as_object() const {
    require(Kind::kObject, "object");
    return obj_;
  }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : obj_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Scalar conveniences with defaults, for optional spec fields.
  double number_or(std::string_view key, double fallback) const {
    const JsonValue* v = find(key);
    return v && v->is_number() ? v->num_ : fallback;
  }
  bool bool_or(std::string_view key, bool fallback) const {
    const JsonValue* v = find(key);
    return v && v->is_bool() ? v->bool_ : fallback;
  }
  std::string string_or(std::string_view key, std::string fallback) const {
    const JsonValue* v = find(key);
    return v && v->is_string() ? v->str_ : fallback;
  }

  /// Parse a complete document; trailing non-space input is an error.
  static JsonValue parse(std::string_view text) {
    Parser p{text, 0};
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos != text.size()) {
      throw JsonParseError("trailing characters after JSON value", p.pos);
    }
    return v;
  }

 private:
  void require(Kind kind, const char* name) const {
    if (kind_ != kind) {
      throw std::runtime_error(std::string("JsonValue: not a ") + name);
    }
  }

  struct Parser {
    std::string_view text;
    std::size_t pos;
    /// Containers currently open; bounds recursion so hostile input
    /// (e.g. 100k opening brackets) throws instead of smashing the stack.
    int depth = 0;
    static constexpr int kMaxDepth = 256;

    [[noreturn]] void fail(const std::string& what) const {
      throw JsonParseError(what, pos);
    }
    void skip_ws() {
      while (pos < text.size()) {
        const char c = text[pos];
        if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
        ++pos;
      }
    }
    char peek() {
      if (pos >= text.size()) fail("unexpected end of input");
      return text[pos];
    }
    void expect(char c) {
      if (peek() != c) fail(std::string("expected '") + c + "'");
      ++pos;
    }
    bool consume_literal(std::string_view lit) {
      if (text.substr(pos, lit.size()) != lit) return false;
      pos += lit.size();
      return true;
    }

    JsonValue parse_value() {
      skip_ws();
      switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': {
          JsonValue v;
          v.kind_ = Kind::kString;
          v.str_ = parse_string();
          return v;
        }
        case 't':
          if (!consume_literal("true")) fail("invalid literal");
          return make_bool(true);
        case 'f':
          if (!consume_literal("false")) fail("invalid literal");
          return make_bool(false);
        case 'n':
          if (!consume_literal("null")) fail("invalid literal");
          return JsonValue{};
        default: return parse_number();
      }
    }

    static JsonValue make_bool(bool b) {
      JsonValue v;
      v.kind_ = Kind::kBool;
      v.bool_ = b;
      return v;
    }

    JsonValue parse_object() {
      expect('{');
      if (++depth > kMaxDepth) fail("nesting too deep");
      JsonValue v;
      v.kind_ = Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        --depth;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.obj_.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        --depth;
        return v;
      }
    }

    JsonValue parse_array() {
      expect('[');
      if (++depth > kMaxDepth) fail("nesting too deep");
      JsonValue v;
      v.kind_ = Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        --depth;
        return v;
      }
      while (true) {
        v.arr_.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        --depth;
        return v;
      }
    }

    unsigned parse_hex4() {
      if (pos + 4 > text.size()) fail("truncated \\u escape");
      unsigned code = 0;
      for (int i = 0; i < 4; ++i) {
        const char h = text[pos++];
        code <<= 4;
        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
        else fail("invalid \\u escape");
      }
      return code;
    }

    std::string parse_string() {
      expect('"');
      std::string out;
      while (true) {
        if (pos >= text.size()) fail("unterminated string");
        const char c = text[pos++];
        if (c == '"') return out;
        if (c != '\\') {
          out += c;
          continue;
        }
        if (pos >= text.size()) fail("unterminated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = parse_hex4();
            // Surrogate pair: a high surrogate must be followed by
            // \uDC00-\uDFFF; the pair combines into one code point.
            if (code >= 0xd800 && code <= 0xdbff) {
              if (!consume_literal("\\u")) fail("unpaired high surrogate");
              const unsigned low = parse_hex4();
              if (low < 0xdc00 || low > 0xdfff) fail("invalid low surrogate");
              code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            } else if (code >= 0xdc00 && code <= 0xdfff) {
              fail("unpaired low surrogate");
            }
            // The writer only escapes control characters; non-ASCII code
            // points get a UTF-8 encoding here for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else if (code < 0x10000) {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xf0 | (code >> 18));
              out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("unknown escape");
        }
      }
    }

    // RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    JsonValue parse_number() {
      const std::size_t start = pos;
      auto digit = [&](std::size_t at) {
        return at < text.size() && text[at] >= '0' && text[at] <= '9';
      };
      auto eat_digits = [&] {
        const std::size_t before = pos;
        while (digit(pos)) ++pos;
        return pos > before;
      };
      if (pos < text.size() && text[pos] == '-') ++pos;
      if (!digit(pos)) {
        pos = start;
        fail("invalid number");
      }
      if (text[pos] == '0') {
        ++pos;  // no leading zeros: "0" may not be followed by a digit
        if (digit(pos)) {
          pos = start;
          fail("invalid number (leading zero)");
        }
      } else {
        eat_digits();
      }
      if (pos < text.size() && text[pos] == '.') {
        ++pos;
        if (!eat_digits()) {
          pos = start;
          fail("invalid number (bare decimal point)");
        }
      }
      if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
        ++pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
        if (!eat_digits()) {
          pos = start;
          fail("invalid number (empty exponent)");
        }
      }
      JsonValue v;
      v.kind_ = Kind::kNumber;
      v.num_ = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                           nullptr);
      // Grammar-valid numerals can still overflow double (e.g. 1e999);
      // the writer never emits a non-finite value, so reject rather than
      // let inf/nan leak into specs and artifacts.
      if (!std::isfinite(v.num_)) {
        pos = start;
        fail("number out of range");
      }
      return v;
    }
  };

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace cyc::support
