// Minimal JSON writer for machine-readable benchmark artifacts
// (bench/out/BENCH_*.json). Emits objects/arrays with automatic comma
// placement; values are numbers, booleans and escaped strings. No parser
// — the artifacts are consumed by external tooling.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace cyc::support {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    pre_value();
    buf_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    buf_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    pre_value();
    buf_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    buf_ += ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    comma();
    append_string(k);
    buf_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    pre_value();
    append_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v) {
    pre_value();
    if (!std::isfinite(v)) {
      buf_ += "null";  // bare nan/inf would invalidate the document
      return *this;
    }
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%.10g", v);
    buf_ += tmp;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    pre_value();
    buf_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    pre_value();
    buf_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    pre_value();
    buf_ += v ? "true" : "false";
    return *this;
  }

  /// key + scalar value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return buf_; }

 private:
  void comma() {
    if (!stack_.empty()) {
      if (stack_.back()) buf_ += ',';
      stack_.back() = true;
    }
  }
  void pre_value() {
    if (pending_value_) {
      pending_value_ = false;  // value follows its key; comma already done
    } else {
      comma();
    }
  }
  void append_string(std::string_view s) {
    buf_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': buf_ += "\\\""; break;
        case '\\': buf_ += "\\\\"; break;
        case '\n': buf_ += "\\n"; break;
        case '\t': buf_ += "\\t"; break;
        case '\r': buf_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char tmp[8];
            std::snprintf(tmp, sizeof(tmp), "\\u%04x", c);
            buf_ += tmp;
          } else {
            buf_ += c;
          }
      }
    }
    buf_ += '"';
  }

  std::string buf_;
  std::vector<bool> stack_;  // per nesting level: "has emitted an element"
  bool pending_value_ = false;
};

}  // namespace cyc::support
