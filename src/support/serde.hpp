// Minimal deterministic binary serialization used for message payloads,
// commitments and anything fed to the hash function. Encoding is
// length-prefixed and big-endian so that serialization is canonical:
// equal values always produce byte-identical encodings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/bytes.hpp"

namespace cyc {

/// Canonical binary writer. All integers are big-endian; variable-length
/// fields carry a u32 length prefix.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void bytes(BytesView v);
  void str(std::string_view v);

  /// Write a vector of items with a u32 count prefix; `fn(writer, item)`
  /// serializes each element.
  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& fn) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& item : items) fn(*this, item);
  }

  const Bytes& out() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Canonical binary reader matching `Writer`. Throws std::out_of_range on
/// truncated input — deserialization failures must never be silent.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  Bytes bytes();
  std::string str();

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& fn) {
    std::uint32_t count = u32();
    std::vector<T> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) out.push_back(fn(*this));
    return out;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace cyc
