// Thread-pool sweep runner for Monte-Carlo / parameter sweeps.
//
// The discrete-event simulator itself is single-threaded and
// deterministic per seed (§III-B contract, see net/simnet.hpp); what
// parallelises is the *sweep*: independent Engine instances, one per
// parameter point or seed. parallel_sweep runs job(i) for i in [0, n)
// across a pool of worker threads and collects the results in index
// order, so the output is byte-identical to the sequential loop no
// matter how the scheduler interleaves the workers.
//
// Each job runs entirely on one worker thread; thread_local accounting
// (payload allocation counters, the signature-verdict cache) therefore
// stays coherent within a job as long as per-job deltas are measured
// inside the job itself.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cyc::support {

/// Worker count: `requested` if nonzero, else the hardware concurrency
/// (at least 1).
inline unsigned sweep_threads(unsigned requested = 0) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Run `job(i)` for every i in [0, n) on up to `threads` workers and
/// return the results in index order. Jobs must be independent — they
/// must not share mutable state (each should own its Engine / rng).
/// Exceptions thrown by a job propagate to the caller after all workers
/// have drained.
template <typename Job>
auto parallel_sweep(std::size_t n, Job&& job, unsigned threads = 0)
    -> std::vector<std::invoke_result_t<Job&, std::size_t>> {
  using Result = std::invoke_result_t<Job&, std::size_t>;
  // std::vector<bool> packs results as bits, so concurrent writes to
  // results[i] would race on shared bytes. Return a struct or int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "parallel_sweep cannot return bool (vector<bool> bit-packing "
                "races across workers); wrap the flag in a struct or use int");
  std::vector<Result> results(n);
  if (n == 0) return results;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(sweep_threads(threads), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = job(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        results[i] = job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace cyc::support
