// Thread-pool sweep runner for Monte-Carlo / parameter sweeps.
//
// The discrete-event simulator itself is single-threaded and
// deterministic per seed (§III-B contract, see net/simnet.hpp); what
// parallelises is the *sweep*: independent Engine instances, one per
// parameter point or seed. parallel_sweep runs job(i) for i in [0, n)
// across a pool of worker threads and collects the results in index
// order, so the output is byte-identical to the sequential loop no
// matter how the scheduler interleaves the workers.
//
// Each job runs entirely on one worker thread; thread_local accounting
// (payload allocation counters, the signature-verdict cache) therefore
// stays coherent within a job as long as per-job deltas are measured
// inside the job itself.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cyc::support {

/// Worker count: `requested` if nonzero, else the hardware concurrency
/// (at least 1).
inline unsigned sweep_threads(unsigned requested = 0) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Run `job(i)` for every i in [0, n) on up to `threads` workers and
/// return the results in index order. Jobs must be independent — they
/// must not share mutable state (each should own its Engine / rng).
/// Exceptions thrown by a job propagate to the caller after all workers
/// have drained.
template <typename Job>
auto parallel_sweep(std::size_t n, Job&& job, unsigned threads = 0)
    -> std::vector<std::invoke_result_t<Job&, std::size_t>> {
  using Result = std::invoke_result_t<Job&, std::size_t>;
  // std::vector<bool> packs results as bits, so concurrent writes to
  // results[i] would race on shared bytes. Return a struct or int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "parallel_sweep cannot return bool (vector<bool> bit-packing "
                "races across workers); wrap the flag in a struct or use int");
  std::vector<Result> results(n);
  if (n == 0) return results;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(sweep_threads(threads), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = job(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        results[i] = job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

/// Run `job(i)` for every i in [0, n) on up to `threads` workers,
/// discarding results. Same independence contract as parallel_sweep:
/// jobs must only write state disjoint by index. With `threads <= 1`
/// the loop runs inline on the calling thread, so thread_local
/// accounting (payload allocation counters, the signature-verdict
/// cache) is untouched — this is the default engine configuration and
/// the reference behaviour the parallel path must reproduce.
template <typename Job>
void parallel_for(std::size_t n, Job&& job, unsigned threads = 1) {
  if (n == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads > 0 ? threads : 1, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

/// Test-only switch for stage_order below. Production code never sets
/// it; the parallel-equivalence test flips it to prove its byte-compare
/// would actually catch a merge-order perturbation (non-vacuity twin).
inline std::atomic<bool>& stage_order_perturbed() {
  static std::atomic<bool> flag{false};
  return flag;
}

/// Emit order for a two-stage (parallel compute, sequential emit)
/// phase: the indices [0, n) in the canonical committee/node order the
/// sequential engine uses. Every emit loop that follows a parallel
/// compute stage must iterate in this order so message send order —
/// and therefore the simulator's delay-RNG draw order — is independent
/// of worker scheduling. Returns reversed order when the test hook is
/// set.
inline std::vector<std::size_t> stage_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (stage_order_perturbed().load(std::memory_order_relaxed)) {
    std::reverse(order.begin(), order.end());
  }
  return order;
}

}  // namespace cyc::support
