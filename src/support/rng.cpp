#include "support/rng.hpp"

#include <cmath>

namespace cyc::rng {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a name, used to derive child-stream seeds.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char ch : name) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

Stream::Stream(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

Stream Stream::fork(std::string_view name) const {
  return Stream(mix(seed_ ^ hash_name(name)));
}

Stream Stream::fork(std::uint64_t index) const {
  return Stream(mix(seed_ + 0x9e3779b97f4a7c15ull * (index + 1)));
}

std::uint64_t Stream::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Stream::below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Stream::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Stream::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Stream::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace cyc::rng
