#include "support/bytes.hpp"

#include <stdexcept>

namespace cyc {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: non-hex character");
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) * 16 +
                                            hex_value(hex[i + 1])));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) append(out, p);
  return out;
}

Bytes be64(std::uint64_t v) {
  Bytes out(8);
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return out;
}

std::uint64_t read_be64(BytesView b) {
  if (b.size() < 8) {
    throw std::invalid_argument("read_be64: need at least 8 bytes");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | b[static_cast<std::size_t>(i)];
  }
  return v;
}

bool equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace cyc
