#include "support/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cyc::math {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return kNegInf;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double log_hypergeometric_pmf(std::uint64_t n, std::uint64_t t,
                              std::uint64_t c, std::uint64_t x) {
  if (t > n || c > n) {
    throw std::invalid_argument("hypergeometric: t and c must be <= n");
  }
  if (x > c || x > t) return kNegInf;
  if (c - x > n - t) return kNegInf;
  return log_binomial(t, x) + log_binomial(n - t, c - x) - log_binomial(n, c);
}

double log_hypergeometric_tail(std::uint64_t n, std::uint64_t t,
                               std::uint64_t c, std::uint64_t x0) {
  const std::uint64_t hi = std::min(c, t);
  if (x0 > hi) return kNegInf;
  double acc = kNegInf;
  for (std::uint64_t x = x0; x <= hi; ++x) {
    acc = log_add(acc, log_hypergeometric_pmf(n, t, c, x));
  }
  return std::min(acc, 0.0);
}

double hypergeometric_tail(std::uint64_t n, std::uint64_t t, std::uint64_t c,
                           std::uint64_t x0) {
  return std::exp(log_hypergeometric_tail(n, t, c, x0));
}

double kl_bernoulli(double a, double p) {
  if (a < 0.0 || a > 1.0 || p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("kl_bernoulli: a in [0,1], p in (0,1)");
  }
  auto term = [](double num, double den) {
    if (num == 0.0) return 0.0;
    return num * std::log(num / den);
  };
  return term(a, p) + term(1.0 - a, 1.0 - p);
}

double kl_tail_bound(double f, double c) {
  return std::exp(-kl_bernoulli(0.5, f) * c);
}

double simple_tail_bound(double c) { return std::exp(-c / 12.0); }

double binomial_tail(std::uint64_t k, double p, std::uint64_t x0) {
  if (p <= 0.0) return x0 == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return x0 <= k ? 1.0 : 0.0;
  if (x0 > k) return 0.0;
  const double lp = std::log(p);
  const double lq = std::log1p(-p);
  double acc = kNegInf;
  for (std::uint64_t x = x0; x <= k; ++x) {
    const double lpmf = log_binomial(k, x) + static_cast<double>(x) * lp +
                        static_cast<double>(k - x) * lq;
    acc = log_add(acc, lpmf);
  }
  return std::exp(std::min(acc, 0.0));
}

double log_add(double la, double lb) {
  if (la == kNegInf) return lb;
  if (lb == kNegInf) return la;
  const double hi = std::max(la, lb);
  const double lo = std::min(la, lb);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_sum_exp(const std::vector<double>& xs) {
  double acc = kNegInf;
  for (double x : xs) acc = log_add(acc, x);
  return acc;
}

double fit_slope(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_slope: need >=2 matching points");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("fit_slope: degenerate x");
  return (n * sxy - sx * sy) / denom;
}

namespace {

// Nearest rank: ceil(q * n) in 1-based indexing, clamped to [1, n].
// Precondition: `sorted` is ascending and non-empty; q in [0, 1].
double nearest_rank(const std::vector<double>& sorted, double q) {
  const auto n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

double percentile(const std::vector<double>& sample, double q) {
  if (sample.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  return nearest_rank(sorted, q);
}

SortedSample::SortedSample(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double SortedSample::percentile(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  return nearest_rank(sorted_, q);
}

}  // namespace cyc::math
