// Byte-string utilities shared by every module.
//
// `Bytes` is the canonical wire/representation type for hashes, keys,
// signatures, serialized messages and commitments throughout the library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cyc {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as a lowercase hex string.
std::string to_hex(BytesView data);

/// Decode a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copy the raw characters of `s` into a byte string (no encoding applied).
Bytes bytes_of(std::string_view s);

/// Append `src` to `dst` in place.
void append(Bytes& dst, BytesView src);

/// Concatenate any number of byte strings.
Bytes concat(std::initializer_list<BytesView> parts);

/// Big-endian encoding of a 64-bit integer (8 bytes).
Bytes be64(std::uint64_t v);

/// Read a big-endian 64-bit integer from the first 8 bytes of `b`.
/// Throws std::invalid_argument if fewer than 8 bytes are available.
std::uint64_t read_be64(BytesView b);

/// Constant-style equality for byte strings (length + content).
bool equal(BytesView a, BytesView b);

}  // namespace cyc
