// Deterministic random-number streams.
//
// Every source of randomness in the simulator is a named `rng::Stream`
// forked from a root seed, so any experiment is reproducible from
// (seed, stream-name) alone and independent streams never interfere —
// the discipline the HPC guides recommend for parallel Monte-Carlo runs.
#pragma once

#include <cstdint>
#include <string_view>

namespace cyc::rng {

/// splitmix64 step — the standard 64-bit mixing function. Exposed so other
/// modules (e.g. workload generation) can derive values from ids cheaply.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of a single value (one splitmix64 round).
std::uint64_t mix(std::uint64_t v);

/// A small deterministic PRNG (xoshiro256**-style built on splitmix
/// seeding). Satisfies enough of UniformRandomBitGenerator to be used with
/// <random> distributions, but the library mostly uses the direct helpers.
class Stream {
 public:
  using result_type = std::uint64_t;

  explicit Stream(std::uint64_t seed);

  /// Derive an independent child stream. The child's sequence is a
  /// function of (parent seed, name) only — not of how much the parent
  /// has been consumed — so call order does not perturb siblings.
  Stream fork(std::string_view name) const;

  /// Derive an independent child stream from an integer index.
  Stream fork(std::uint64_t index) const;

  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli with probability p.
  bool chance(double p);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
};

/// Fisher–Yates shuffle of a random-access container.
template <typename Container>
void shuffle(Container& c, Stream& rng) {
  const std::size_t n = c.size();
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace cyc::rng
