#include "support/serde.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace cyc {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::bytes(BytesView v) {
  u32(static_cast<std::uint32_t>(v.size()));
  append(buf_, v);
}

void Writer::str(std::string_view v) {
  bytes(BytesView(reinterpret_cast<const std::uint8_t*>(v.data()), v.size()));
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw std::out_of_range("Reader: truncated input");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::boolean() { return u8() != 0; }

Bytes Reader::bytes() {
  std::uint32_t len = u32();
  need(len);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

}  // namespace cyc
