// Numeric kernels for the security analysis (Fig. 5, Table I, §V).
//
// Everything is computed in log-space so that probabilities down to
// ~1e-300 (far below the paper's 2.1e-9 / 8e-20 figures) stay exact in
// double precision.
#pragma once

#include <cstdint>
#include <vector>

namespace cyc::math {

/// log(n choose k) via lgamma. Requires 0 <= k <= n.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// log of the hypergeometric pmf: drawing exactly x marked items when
/// sampling c items without replacement from a population of n that
/// contains t marked items. Returns -inf for impossible x.
double log_hypergeometric_pmf(std::uint64_t n, std::uint64_t t,
                              std::uint64_t c, std::uint64_t x);

/// Upper tail Pr[X >= x0] of the hypergeometric distribution (exact sum,
/// computed in log-space with stable accumulation). This is Eq. (3) of the
/// paper: the probability a uniformly sampled committee of size c contains
/// at least x0 malicious nodes.
double hypergeometric_tail(std::uint64_t n, std::uint64_t t, std::uint64_t c,
                           std::uint64_t x0);

/// log-space version of hypergeometric_tail (natural log of probability).
double log_hypergeometric_tail(std::uint64_t n, std::uint64_t t,
                               std::uint64_t c, std::uint64_t x0);

/// Bernoulli Kullback-Leibler divergence D(a || p) in nats.
double kl_bernoulli(double a, double p);

/// The paper's Chernoff-style bound e^{-D(1/2 || f) c} on the probability
/// that at least half of a size-c committee is faulty, when the population
/// faulty fraction (plus sampling slack) is f (Eq. (3) RHS).
double kl_tail_bound(double f, double c);

/// The simplified bound e^{-c/12} of Eq. (4).
double simple_tail_bound(double c);

/// Upper tail Pr[X >= x0] for Binomial(k, p), exact in log-space.
double binomial_tail(std::uint64_t k, double p, std::uint64_t x0);

/// Numerically stable log(sum exp(xs)).
double log_sum_exp(const std::vector<double>& xs);

/// log(a + b) given la = log a, lb = log b.
double log_add(double la, double lb);

/// Least-squares slope of y against x (both already transformed by the
/// caller; used for log-log complexity fitting in Table II validation).
double fit_slope(const std::vector<double>& x, const std::vector<double>& y);

/// Exact sample quantile by the nearest-rank method: the smallest sample
/// element v such that at least ceil(q * n) of the sample is <= v, with
/// q = 0 mapping to the minimum. The result is always an element of the
/// sample (no interpolation), so latency percentiles derived from
/// deterministic simulations stay byte-stable in JSON artifacts. The
/// input need not be sorted; q outside [0, 1] is clamped. Returns 0.0 on
/// an empty sample. The sample is no longer copied per query — for
/// multi-quantile queries over the same sample, sort once with
/// SortedSample instead.
double percentile(const std::vector<double>& sample, double q);

/// Sort-once view for multi-quantile queries: sorts the sample a single
/// time at construction, then answers percentile() in O(1) with the same
/// nearest-rank semantics (and the same q-clamping / empty-sample rules)
/// as math::percentile. Use this wherever several quantiles of one
/// sample are reported together (p50/p95/p99 blocks in JSON artifacts).
class SortedSample {
 public:
  explicit SortedSample(std::vector<double> sample);

  double percentile(double q) const;
  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace cyc::math
