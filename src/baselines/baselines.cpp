#include "baselines/baselines.hpp"

#include "net/topology.hpp"

namespace cyc::baselines {

namespace {
analysis::ProtocolParamsView view_of(const BaselineParams& p) {
  return {p.n, p.m, p.c, p.lambda};
}

net::TopologyParams topo_of(const BaselineParams& p) {
  net::TopologyParams t;
  t.n = p.n;
  t.m = static_cast<std::uint64_t>(p.m);
  t.c = p.c;
  t.lambda = p.lambda;
  t.referees = p.c;  // referee committee sized like a regular committee
  return t;
}
}  // namespace

std::size_t BaselineModel::draw_bad_leaders(rng::Stream& rng) const {
  std::size_t bad = 0;
  for (std::uint64_t k = 0; k < params_.m; ++k) {
    if (rng.chance(params_.corrupt_leader_fraction)) ++bad;
  }
  return bad;
}

// --- Elastico -----------------------------------------------------------------

BaselineProfile ElasticoModel::profile() const {
  BaselineProfile p;
  p.name = "Elastico";
  p.resiliency = 0.25;
  p.round_failure_prob = analysis::elastico_round_failure(view_of(params_));
  p.storage_units = analysis::elastico_storage(view_of(params_));
  p.reliable_channels = net::clique_channels(topo_of(params_));
  p.dishonest_leader_efficient = false;
  p.has_incentives = false;
  p.decentralization = "no always-honest party";
  return p;
}

BaselineRound ElasticoModel::simulate_round(rng::Stream& rng) {
  BaselineRound round;
  const std::size_t bad = draw_bad_leaders(rng);
  round.committees_stalled = bad;
  round.txs_committed =
      (params_.m - bad) * params_.txs_per_committee;
  round.latency = 1.0;
  return round;
}

// --- OmniLedger ----------------------------------------------------------------

BaselineProfile OmniLedgerModel::profile() const {
  BaselineProfile p;
  p.name = "OmniLedger";
  p.resiliency = 0.25;
  p.round_failure_prob = analysis::omniledger_round_failure(view_of(params_));
  p.storage_units = analysis::omniledger_storage(view_of(params_));
  p.reliable_channels = net::clique_channels(topo_of(params_));
  p.dishonest_leader_efficient = false;
  p.has_incentives = false;
  p.decentralization = "an honest client";
  return p;
}

BaselineRound OmniLedgerModel::simulate_round(rng::Stream& rng) {
  BaselineRound round;
  const std::size_t bad = draw_bad_leaders(rng);
  if (trusted_client_) {
    // The trusted client re-drives Atomix around unresponsive leaders:
    // output survives but each affected committee pays a retry latency.
    round.txs_committed = params_.m * params_.txs_per_committee;
    round.committees_stalled = 0;
    round.latency =
        1.0 + 2.0 * static_cast<double>(bad) / static_cast<double>(params_.m);
  } else {
    // Without the client assumption, cross-shard coordination around a
    // bad leader fails like RapidChain.
    round.txs_committed = (params_.m - bad) * params_.txs_per_committee;
    round.committees_stalled = bad;
    round.latency = 1.0;
  }
  return round;
}

// --- RapidChain -----------------------------------------------------------------

BaselineProfile RapidChainModel::profile() const {
  BaselineProfile p;
  p.name = "RapidChain";
  p.resiliency = 1.0 / 3.0;
  p.round_failure_prob = analysis::rapidchain_round_failure(view_of(params_));
  p.storage_units = analysis::rapidchain_storage(view_of(params_));
  p.reliable_channels = net::clique_channels(topo_of(params_));
  p.dishonest_leader_efficient = false;
  p.has_incentives = false;
  p.decentralization = "an honest reference committee";
  return p;
}

BaselineRound RapidChainModel::simulate_round(rng::Stream& rng) {
  BaselineRound round;
  const std::size_t bad = draw_bad_leaders(rng);
  round.committees_stalled = bad;
  round.txs_committed = (params_.m - bad) * params_.txs_per_committee;
  round.latency = 1.0;
  return round;
}

// --- CycLedger ------------------------------------------------------------------

BaselineProfile CycLedgerModel::profile() const {
  BaselineProfile p;
  p.name = "CycLedger";
  p.resiliency = 1.0 / 3.0;
  p.round_failure_prob = analysis::cycledger_round_failure(view_of(params_));
  p.storage_units = analysis::cycledger_storage(view_of(params_));
  p.reliable_channels = net::cycledger_channels(topo_of(params_)).total();
  p.dishonest_leader_efficient = true;
  p.has_incentives = true;
  p.decentralization = "no always-honest party";
  return p;
}

BaselineRound CycLedgerModel::simulate_round(rng::Stream& rng) {
  BaselineRound round;
  const std::size_t bad = draw_bad_leaders(rng);
  // Each bad leader is detected and replaced by a partial-set member
  // (Alg. 6); output survives at a bounded per-recovery latency cost.
  round.recoveries = bad;
  round.committees_stalled = 0;
  round.txs_committed = params_.m * params_.txs_per_committee;
  round.latency =
      1.0 + 0.5 * static_cast<double>(bad) / static_cast<double>(params_.m);
  return round;
}

std::vector<std::unique_ptr<BaselineModel>> all_models(BaselineParams params) {
  std::vector<std::unique_ptr<BaselineModel>> models;
  models.push_back(std::make_unique<ElasticoModel>(params));
  models.push_back(std::make_unique<OmniLedgerModel>(params));
  models.push_back(std::make_unique<RapidChainModel>(params));
  models.push_back(std::make_unique<CycLedgerModel>(params));
  return models;
}

}  // namespace cyc::baselines
