// Behavioural baseline models of the protocols CycLedger is compared
// against in Table I: Elastico, OmniLedger and RapidChain.
//
// These are deliberately simplified round models (not full message-level
// simulations): they capture exactly the properties Table I compares —
// resiliency, per-round failure probability, storage, connection burden,
// behaviour under dishonest leaders, and incentives — on the same
// workload abstraction as the CycLedger engine, so the comparison
// benches can sweep all four protocols uniformly. See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "support/rng.hpp"

namespace cyc::baselines {

struct BaselineParams {
  std::uint64_t n = 2000;    ///< total nodes
  std::uint64_t m = 16;      ///< committees
  std::uint64_t c = 125;     ///< committee size
  std::uint64_t lambda = 40; ///< partial-set size (CycLedger only)
  double corrupt_fraction = 1.0 / 3.0;
  double corrupt_leader_fraction = 1.0 / 3.0;  ///< expected bad leaders
  std::uint32_t txs_per_committee = 100;
  std::uint64_t seed = 1;
};

struct BaselineRound {
  std::size_t txs_committed = 0;
  std::size_t committees_stalled = 0;  ///< lost output to a bad leader
  std::size_t recoveries = 0;
  double latency = 1.0;  ///< round time in abstract units (1 = nominal)
};

struct BaselineProfile {
  std::string name;
  double resiliency = 0.0;           ///< tolerated adversary fraction
  double round_failure_prob = 0.0;   ///< Table I row 4
  double storage_units = 0.0;        ///< Table I row 3
  std::uint64_t reliable_channels = 0;  ///< Table I row 8 (burden)
  bool dishonest_leader_efficient = false;  ///< Table I row 6
  bool has_incentives = false;              ///< Table I row 7
  std::string decentralization;             ///< Table I row 5
};

/// Interface every compared protocol implements.
class BaselineModel {
 public:
  explicit BaselineModel(BaselineParams params) : params_(params) {}
  virtual ~BaselineModel() = default;

  virtual BaselineProfile profile() const = 0;

  /// One abstract round: which committees produce output and how long
  /// the round takes, given the dishonest-leader draw.
  virtual BaselineRound simulate_round(rng::Stream& rng) = 0;

  const BaselineParams& params() const { return params_; }

 protected:
  /// Draw the number of committees whose leader is corrupt this round.
  std::size_t draw_bad_leaders(rng::Stream& rng) const;

  BaselineParams params_;
};

/// Elastico: 1/4 resiliency, ~100-node committees, PoW identities; no
/// recovery — a bad directory/leader voids the committee's output. The
/// final consensus committee re-broadcasts everything (heavy clique).
class ElasticoModel final : public BaselineModel {
 public:
  using BaselineModel::BaselineModel;
  BaselineProfile profile() const override;
  BaselineRound simulate_round(rng::Stream& rng) override;
};

/// OmniLedger: 1/4 resiliency; cross-shard handling depends on a trusted
/// client to orchestrate the Atomix protocol — with the client present,
/// bad leaders delay but do not void output (retry at latency cost).
class OmniLedgerModel final : public BaselineModel {
 public:
  explicit OmniLedgerModel(BaselineParams params, bool trusted_client = true)
      : BaselineModel(params), trusted_client_(trusted_client) {}
  BaselineProfile profile() const override;
  BaselineRound simulate_round(rng::Stream& rng) override;

 private:
  bool trusted_client_;
};

/// RapidChain: 1/3 resiliency, efficient when leaders are honest; a
/// malicious committee leader stalls that committee for the round (no
/// partial set, no recovery) — the Table I row 6 weakness.
class RapidChainModel final : public BaselineModel {
 public:
  using BaselineModel::BaselineModel;
  BaselineProfile profile() const override;
  BaselineRound simulate_round(rng::Stream& rng) override;
};

/// CycLedger's abstract counterpart (for uniform sweeps; the real
/// message-level engine lives in src/protocol): bad leaders are evicted
/// by the recovery procedure at a bounded latency cost, output survives.
class CycLedgerModel final : public BaselineModel {
 public:
  using BaselineModel::BaselineModel;
  BaselineProfile profile() const override;
  BaselineRound simulate_round(rng::Stream& rng) override;
};

/// All four models for sweep loops.
std::vector<std::unique_ptr<BaselineModel>> all_models(BaselineParams params);

}  // namespace cyc::baselines
