// Analytic security bounds of §V and the failure-probability rows of
// Table I. Everything here is a pure function of the protocol
// parameters, computed exactly (log-space) so it can be cross-checked
// against Monte-Carlo measurements.
#pragma once

#include <cstdint>
#include <vector>

#include "support/math.hpp"
#include "support/rng.hpp"

namespace cyc::analysis {

/// Probability that a uniformly sampled committee of size c from a
/// population of n nodes containing t malicious ones has a faulty
/// majority (X >= c/2). Exact hypergeometric tail (Eq. 3 / Fig. 5).
double committee_failure_exact(std::uint64_t n, std::uint64_t t,
                               std::uint64_t c);

/// The paper's KL-divergence Chernoff bound e^{-D(1/2 || f) c} where
/// f = t/n + 1/c (Eq. 3 right-hand side).
double committee_failure_kl_bound(std::uint64_t n, std::uint64_t t,
                                  std::uint64_t c);

/// The simplified bound e^{-c/12} of Eq. (4), valid for t < n/3.
double committee_failure_simple_bound(std::uint64_t c);

/// Probability that a partial set of size lambda has no honest member
/// when each slot is filled by a malicious node with probability f:
/// f^lambda ((1/3)^lambda in §V-C).
double partial_set_failure(double f, std::uint64_t lambda);

/// Monte-Carlo estimate of committee_failure_exact by sampling
/// committees without replacement; used to validate the analytic tail.
double committee_failure_monte_carlo(std::uint64_t n, std::uint64_t t,
                                     std::uint64_t c, std::uint64_t trials,
                                     rng::Stream& rng);

// --- Table I per-protocol failure formulas (per round) ---

struct ProtocolParamsView {
  std::uint64_t n = 0;       ///< total nodes
  std::uint64_t m = 0;       ///< committees
  std::uint64_t c = 0;       ///< committee size
  std::uint64_t lambda = 0;  ///< partial-set size
};

/// Elastico / OmniLedger: Theta(m e^{-c/40}) with a 1/4 adversary
/// (their committees tolerate t < c/2 with resiliency 1/4 -> exponent
/// c/40 per the papers' parameterization).
double elastico_round_failure(const ProtocolParamsView& p);
double omniledger_round_failure(const ProtocolParamsView& p);

/// RapidChain: m e^{-c/12} + (1/2)^27 (Table I).
double rapidchain_round_failure(const ProtocolParamsView& p);

/// CycLedger: m (e^{-c/12} + (1/3)^lambda) (Table I).
double cycledger_round_failure(const ProtocolParamsView& p);

/// Asymptotic storage per node (in "units"; Table I row 3):
/// Elastico O(n); OmniLedger O(c + log m); RapidChain O(c);
/// CycLedger O(m^2/n + c).
double elastico_storage(const ProtocolParamsView& p);
double omniledger_storage(const ProtocolParamsView& p);
double rapidchain_storage(const ProtocolParamsView& p);
double cycledger_storage(const ProtocolParamsView& p);

}  // namespace cyc::analysis
