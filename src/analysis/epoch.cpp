#include "analysis/epoch.hpp"

#include <cmath>

namespace cyc::analysis {

double epoch_failure(double per_round, std::uint64_t rounds) {
  if (per_round <= 0.0) return 0.0;
  if (per_round >= 1.0) return 1.0;
  // 1 - (1-p)^R via expm1/log1p for precision at tiny p.
  return -std::expm1(static_cast<double>(rounds) * std::log1p(-per_round));
}

double rounds_to_failure(double per_round, double target) {
  if (per_round <= 0.0) return 1e18;
  if (per_round >= 1.0) return 1.0;
  if (target <= 0.0) return 0.0;
  if (target >= 1.0) return 1e18;
  return std::log1p(-target) / std::log1p(-per_round);
}

double elastico_epoch_failure(const ProtocolParamsView& p,
                              std::uint64_t rounds) {
  return epoch_failure(elastico_round_failure(p), rounds);
}

double cycledger_epoch_failure(const ProtocolParamsView& p,
                               std::uint64_t rounds) {
  return epoch_failure(cycledger_round_failure(p), rounds);
}

}  // namespace cyc::analysis
