// Table II complexity accounting: theoretical per-phase / per-role
// communication & storage classes, plus a fitting helper that classifies
// measured scaling against the O(.) classes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/stats.hpp"
#include "protocol/roles.hpp"

namespace cyc::analysis {

enum class Complexity : std::uint8_t {
  kConstant,   // O(1)
  kC,          // O(c)
  kC2,         // O(c^2)
  kM,          // O(m)
  kM2,         // O(m^2)
  kN,          // O(n)
  kMN,         // O(mn)
  kNone,       // "-" in Table II
};

std::string complexity_name(Complexity c);

/// Table II, communication column: expected class for (phase, role).
Complexity expected_comm(net::Phase phase, protocol::Role role);
/// Table II, storage column.
Complexity expected_storage(net::Phase phase, protocol::Role role);

/// Evaluate the class at concrete (n, m, c) for curve comparison.
double complexity_value(Complexity c, double n, double m, double cc);

/// Given measurements y_i at parameters (n_i, m_i, c_i), return the
/// Table II class whose shape best matches (minimal log-space residual
/// after optimal constant scaling).
Complexity classify_scaling(const std::vector<double>& n,
                            const std::vector<double>& m,
                            const std::vector<double>& c,
                            const std::vector<double>& y);

}  // namespace cyc::analysis
