// Epoch-level failure analysis: the paper's per-round failure
// probabilities compounded over many rounds (the comparison Elastico is
// criticised with: "97% failure over only 6 epochs" at 16 shards).
#pragma once

#include <cstdint>

#include "analysis/bounds.hpp"

namespace cyc::analysis {

/// Probability that at least one of `rounds` independent rounds fails,
/// given a per-round failure probability. Computed in log space so tiny
/// per-round probabilities stay exact.
double epoch_failure(double per_round, std::uint64_t rounds);

/// Rounds until the cumulative failure probability reaches `target`
/// (e.g. 0.5 for the median time-to-failure). Returns a large sentinel
/// (1e18) when per_round is ~0.
double rounds_to_failure(double per_round, double target);

/// The Elastico criticism reproduced: per-round failure of a protocol
/// with the given Table I formula over `rounds` epochs.
double elastico_epoch_failure(const ProtocolParamsView& p,
                              std::uint64_t rounds);
double cycledger_epoch_failure(const ProtocolParamsView& p,
                               std::uint64_t rounds);

}  // namespace cyc::analysis
