#include "analysis/bounds.hpp"

#include <cmath>
#include <vector>

namespace cyc::analysis {

double committee_failure_exact(std::uint64_t n, std::uint64_t t,
                               std::uint64_t c) {
  const std::uint64_t x0 = (c + 1) / 2;  // ceil(c/2)
  return math::hypergeometric_tail(n, t, c, x0);
}

double committee_failure_kl_bound(std::uint64_t n, std::uint64_t t,
                                  std::uint64_t c) {
  const double f = static_cast<double>(t) / static_cast<double>(n) +
                   1.0 / static_cast<double>(c);
  if (f >= 0.5) return 1.0;
  return math::kl_tail_bound(f, static_cast<double>(c));
}

double committee_failure_simple_bound(std::uint64_t c) {
  return math::simple_tail_bound(static_cast<double>(c));
}

double partial_set_failure(double f, std::uint64_t lambda) {
  return std::pow(f, static_cast<double>(lambda));
}

double committee_failure_monte_carlo(std::uint64_t n, std::uint64_t t,
                                     std::uint64_t c, std::uint64_t trials,
                                     rng::Stream& rng) {
  std::uint64_t failures = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    // Sample c nodes without replacement via sequential (hypergeometric)
    // draws: remaining marked / remaining total.
    std::uint64_t marked = t;
    std::uint64_t total = n;
    std::uint64_t bad = 0;
    for (std::uint64_t i = 0; i < c; ++i) {
      if (rng.below(total) < marked) {
        ++bad;
        --marked;
      }
      --total;
    }
    if (bad * 2 >= c) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(trials);
}

double elastico_round_failure(const ProtocolParamsView& p) {
  return std::min(1.0, static_cast<double>(p.m) *
                           std::exp(-static_cast<double>(p.c) / 40.0));
}

double omniledger_round_failure(const ProtocolParamsView& p) {
  return elastico_round_failure(p);
}

double rapidchain_round_failure(const ProtocolParamsView& p) {
  return std::min(1.0, static_cast<double>(p.m) *
                               std::exp(-static_cast<double>(p.c) / 12.0) +
                           std::pow(0.5, 27.0));
}

double cycledger_round_failure(const ProtocolParamsView& p) {
  return std::min(
      1.0, static_cast<double>(p.m) *
               (std::exp(-static_cast<double>(p.c) / 12.0) +
                std::pow(1.0 / 3.0, static_cast<double>(p.lambda))));
}

double elastico_storage(const ProtocolParamsView& p) {
  return static_cast<double>(p.n);
}

double omniledger_storage(const ProtocolParamsView& p) {
  return static_cast<double>(p.c) +
         std::log2(static_cast<double>(p.m) + 1.0);
}

double rapidchain_storage(const ProtocolParamsView& p) {
  return static_cast<double>(p.c);
}

double cycledger_storage(const ProtocolParamsView& p) {
  return static_cast<double>(p.m) * static_cast<double>(p.m) /
             static_cast<double>(p.n) +
         static_cast<double>(p.c);
}

}  // namespace cyc::analysis
