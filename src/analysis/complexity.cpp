#include "analysis/complexity.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cyc::analysis {

using net::Phase;
using protocol::Role;

std::string complexity_name(Complexity c) {
  switch (c) {
    case Complexity::kConstant: return "O(1)";
    case Complexity::kC: return "O(c)";
    case Complexity::kC2: return "O(c^2)";
    case Complexity::kM: return "O(m)";
    case Complexity::kM2: return "O(m^2)";
    case Complexity::kN: return "O(n)";
    case Complexity::kMN: return "O(mn)";
    case Complexity::kNone: return "-";
  }
  return "?";
}

Complexity expected_comm(Phase phase, Role role) {
  const bool key = role == Role::kLeader || role == Role::kPartial;
  switch (phase) {
    case Phase::kCommitteeConfig:
      if (role == Role::kCommon) return Complexity::kC;
      if (key) return Complexity::kC2;
      return Complexity::kNone;
    case Phase::kSemiCommit:
      if (role == Role::kCommon) return Complexity::kNone;
      if (key) return Complexity::kC;
      return Complexity::kM2;
    case Phase::kIntraConsensus:
      if (role == Role::kCommon) return Complexity::kC;
      if (key) return Complexity::kC;
      return Complexity::kN;
    case Phase::kInterConsensus:
      if (role == Role::kCommon) return Complexity::kM;
      if (key) return Complexity::kN;
      return Complexity::kN;
    case Phase::kReputation:
      if (role == Role::kCommon) return Complexity::kC;
      if (key) return Complexity::kC;
      return Complexity::kN;
    case Phase::kSelection:
      if (role == Role::kReferee) return Complexity::kN;
      return Complexity::kNone;
    case Phase::kBlock:
      if (role == Role::kCommon) return Complexity::kM;
      if (key) return Complexity::kN;
      return Complexity::kMN;
    default:
      return Complexity::kNone;
  }
}

Complexity expected_storage(Phase phase, Role role) {
  const bool key = role == Role::kLeader || role == Role::kPartial;
  switch (phase) {
    case Phase::kCommitteeConfig:
      if (role == Role::kCommon) return Complexity::kC;
      if (key) return Complexity::kC2;
      return Complexity::kNone;
    case Phase::kSemiCommit:
      if (key) return Complexity::kM;
      if (role == Role::kReferee) return Complexity::kM;
      return Complexity::kNone;
    case Phase::kIntraConsensus:
      if (role == Role::kCommon) return Complexity::kConstant;
      if (key) return Complexity::kC;
      return Complexity::kN;
    case Phase::kInterConsensus:
      if (role == Role::kCommon) return Complexity::kConstant;
      if (key) return Complexity::kConstant;
      return Complexity::kN;
    case Phase::kReputation:
      if (role == Role::kCommon) return Complexity::kConstant;
      if (key) return Complexity::kC;
      return Complexity::kN;
    case Phase::kSelection:
      if (role == Role::kReferee) return Complexity::kN;
      return Complexity::kNone;
    case Phase::kBlock:
      if (role == Role::kCommon) return Complexity::kC;
      if (key) return Complexity::kC;
      return Complexity::kN;
    default:
      return Complexity::kNone;
  }
}

double complexity_value(Complexity c, double n, double m, double cc) {
  switch (c) {
    case Complexity::kConstant: return 1.0;
    case Complexity::kC: return cc;
    case Complexity::kC2: return cc * cc;
    case Complexity::kM: return m;
    case Complexity::kM2: return m * m;
    case Complexity::kN: return n;
    case Complexity::kMN: return m * n;
    case Complexity::kNone: return 1.0;
  }
  return 1.0;
}

Complexity classify_scaling(const std::vector<double>& n,
                            const std::vector<double>& m,
                            const std::vector<double>& c,
                            const std::vector<double>& y) {
  if (n.size() != y.size() || m.size() != y.size() || c.size() != y.size() ||
      y.size() < 2) {
    throw std::invalid_argument("classify_scaling: mismatched inputs");
  }
  static constexpr Complexity kCandidates[] = {
      Complexity::kConstant, Complexity::kC, Complexity::kC2, Complexity::kM,
      Complexity::kM2,       Complexity::kN, Complexity::kMN};
  Complexity best = Complexity::kConstant;
  double best_residual = std::numeric_limits<double>::infinity();
  for (Complexity candidate : kCandidates) {
    // Optimal constant in log space is the mean of log(y/f); residual is
    // the variance around it.
    double mean = 0.0;
    std::vector<double> logs(y.size());
    bool ok = true;
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double f = complexity_value(candidate, n[i], m[i], c[i]);
      if (y[i] <= 0.0 || f <= 0.0) {
        ok = false;
        break;
      }
      logs[i] = std::log(y[i] / f);
      mean += logs[i];
    }
    if (!ok) continue;
    mean /= static_cast<double>(y.size());
    double residual = 0.0;
    for (double lg : logs) residual += (lg - mean) * (lg - mean);
    if (residual < best_residual) {
      best_residual = residual;
      best = candidate;
    }
  }
  return best;
}

}  // namespace cyc::analysis
