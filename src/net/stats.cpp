#include "net/stats.hpp"

#include <stdexcept>

namespace cyc::net {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kIdle: return "idle";
    case Phase::kCommitteeConfig: return "committee-config";
    case Phase::kSemiCommit: return "semi-commitment";
    case Phase::kIntraConsensus: return "intra-consensus";
    case Phase::kInterConsensus: return "inter-consensus";
    case Phase::kReputation: return "reputation";
    case Phase::kSelection: return "selection";
    case Phase::kBlock: return "block";
    case Phase::kRecovery: return "recovery";
    case Phase::kCount: break;
  }
  return "unknown";
}

void TrafficStats::resize(std::size_t nodes) {
  per_node_.assign(nodes,
                   std::vector<Counter>(static_cast<std::size_t>(Phase::kCount)));
}

void TrafficStats::note_send(NodeId node, Phase phase, std::size_t bytes) {
  auto& c = per_node_.at(node).at(static_cast<std::size_t>(phase));
  c.msgs_sent += 1;
  c.bytes_sent += bytes;
}

void TrafficStats::note_recv(NodeId node, Phase phase, std::size_t bytes) {
  auto& c = per_node_.at(node).at(static_cast<std::size_t>(phase));
  c.msgs_recv += 1;
  c.bytes_recv += bytes;
}

const Counter& TrafficStats::at(NodeId node, Phase phase) const {
  return per_node_.at(node).at(static_cast<std::size_t>(phase));
}

Counter TrafficStats::node_total(NodeId node) const {
  Counter total;
  for (const auto& c : per_node_.at(node)) total += c;
  return total;
}

Counter TrafficStats::phase_total(Phase phase) const {
  Counter total;
  for (const auto& node : per_node_) {
    total += node.at(static_cast<std::size_t>(phase));
  }
  return total;
}

Counter TrafficStats::grand_total() const {
  Counter total;
  for (std::size_t n = 0; n < per_node_.size(); ++n) {
    total += node_total(static_cast<NodeId>(n));
  }
  return total;
}

void TrafficStats::reset() {
  for (auto& node : per_node_) {
    for (auto& c : node) c = Counter{};
  }
  faults_ = FaultStats{};
}

}  // namespace cyc::net
