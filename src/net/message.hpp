// Typed messages for the discrete-event simulator.
//
// Tags cover every message class of §IV (Algorithms 2–6) plus block
// propagation. Payloads are canonical serde encodings produced by the
// protocol layer; the simulator treats them as opaque bytes and accounts
// their size.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "support/bytes.hpp"

namespace cyc::net {

using NodeId = std::uint32_t;
using Time = double;

inline constexpr NodeId kNoNode = ~static_cast<NodeId>(0);

/// Message classes; names follow the paper's tags where it has them.
enum class Tag : std::uint16_t {
  // Committee configuration (Alg. 2)
  kConfig,        // CONFIG: <PK, address>, hash, pi
  kMemberList,    // MEM_LIST: key member's current list
  kMember,        // MEMBER: introduction to peers on the list
  // Inside-committee consensus (Alg. 3)
  kPropose,       // PROPOSE: r, sn, H(M), M
  kEcho,          // ECHO: r, sn, H(M), i  (plus relayed PROPOSE)
  kConfirm,       // CONFIRM: r, sn, H(M), i (plus EchoList)
  kAbort,         // honest node announcing leader equivocation
  // Semi-commitment exchange (Alg. 4)
  kSemiCommit,    // SEMI_COM to referees / partial set
  kSemiCommitAck, // referee relay of accepted semi-commitments
  // Intra-committee consensus (Alg. 5)
  kTxList,        // TX_LIST: r, SIG_l<TXList>
  kVote,          // VOTE: r, SIG_i<VList_i>
  kIntraResult,   // INTRA: r, TXdecSET, VList -> referee
  // Inter-committee consensus
  kCrossTxList,   // consensus'd TXList_{i,j} + member list -> l_j
  kCrossResult,   // C_j's decision back to l_i
  kCrossPartialHint,  // partial-set copy used by the 2-Gamma rule (Lemma 7)
  // Reputation
  kScoreList,     // ScoreList + VList for consensus
  kScoreReport,   // agreed ScoreList -> referee
  // Recovery (Alg. 6)
  kAccuse,        // witness broadcast to committee
  kImpeachVote,   // member vote on the impeachment
  kProsecute,     // witness + Cert -> referee
  kNewLeader,     // NEW: referee announces replacement
  // Selection & block (§IV-F/G)
  kPowSolution,   // participant registration
  kBlock,         // block B^r propagation
  kUtxoHandoff,   // final UTXO / remaining-tx lists -> new partial sets
  kBeaconShare,   // PVSS beacon traffic within C_R
  // §VIII extensions
  kPreCommQuery,  // VIII-A: l_i asks l_j which candidate txs are valid
  kPreCommReply,  // VIII-A: l_j's preference
  kBlockPermit,   // VIII-B: referee permission for a leader sub-block
  kSubBlock,      // VIII-B: leader-broadcast sub-block
  // Crash-recovery catch-up (restarted node replays honest state)
  kCatchUpRequest,  // restarted node asks referees for the shard state
  kCatchUpReply,    // referee's signed state snapshot digest + payload
};

/// Number of message classes (for per-tag counter arrays).
inline constexpr std::size_t kTagCount =
    static_cast<std::size_t>(Tag::kCatchUpReply) + 1;

std::string_view tag_name(Tag tag);

/// Shared, immutable payload buffer. A logical broadcast materialises its
/// payload once and every queued copy / delivered Message aliases the same
/// buffer — the simulator and all receivers treat payloads as read-only.
using PayloadPtr = std::shared_ptr<const Bytes>;

/// Wrap a byte string into a shared payload buffer. This is the single
/// choke point where payload memory is allocated; the counters below make
/// the zero-copy invariant ("one allocation per logical broadcast")
/// testable. Counters are thread-local so concurrent sweep workers (one
/// Engine per thread) account independently.
PayloadPtr make_payload(Bytes b);

/// Payload buffers allocated on this thread since start / last reset.
std::uint64_t payload_allocations();
/// Total payload bytes allocated on this thread since start / last reset.
std::uint64_t payload_bytes_allocated();
void reset_payload_counters();

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Tag tag = Tag::kConfig;
  PayloadPtr body;  ///< shared with every other copy of this broadcast

  /// Read-only view of the payload (empty if no body was attached).
  const Bytes& payload() const;

  /// Wire size used for byte accounting: payload plus a fixed header.
  std::size_t wire_size() const { return payload().size() + 16; }
};

}  // namespace cyc::net
