// Deterministic discrete-event network simulator.
//
// Models the paper's network assumptions (§III-B):
//  * synchronous channels inside a committee (delay <= Delta),
//  * synchronous but slower channels among key members / referees
//    (delay <= Gamma),
//  * partially synchronous channels everywhere else (bounded delay with
//    adversarial jitter — the adversary may reorder messages, §III-C).
//
// The simulator is single-threaded and deterministic per seed: events are
// ordered by (time, sequence number), and all jitter comes from a named
// rng::Stream. Monte-Carlo sweeps parallelize across *independent*
// simulator instances, never inside one.
//
// Intra-engine contract (EngineOptions::engine_threads): delay jitter is
// drawn from the stream *at send time*, in global send order, so every
// call into send()/multicast()/send_shared() must happen on the engine
// thread in the exact order of the sequential path. The Engine's shard
// parallelism honours this by splitting each phase into a parallel
// compute stage (no sends, no RNG) and a sequential emit stage that
// performs the sends in committee-index order — see "Execution model"
// in src/protocol/README.md. SimNet itself is never called from pool
// workers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "net/faults.hpp"
#include "net/message.hpp"
#include "net/stats.hpp"
#include "support/rng.hpp"

namespace cyc::net {

/// Channel classes with distinct delay behaviour.
enum class LinkClass : std::uint8_t {
  kIntraCommittee,   // delay = Delta
  kKeyMesh,          // delay = Gamma
  kPartialSync,      // delay in [Gamma, Gamma * (1 + jitter)], reorderable
  kUnconnected,      // no channel: sends are dropped and counted
};

struct DelayModel {
  Time delta = 1.0;            ///< intra-committee bound
  Time gamma = 5.0;            ///< key-member / referee mesh bound
  double jitter = 1.0;         ///< partial-sync jitter factor
};

/// Classifies the channel between two nodes. Installed by the protocol
/// engine, which knows committee membership and roles.
using LinkClassifier = std::function<LinkClass(NodeId from, NodeId to)>;

/// Receiver callback; invoked at delivery time.
using Handler = std::function<void(const Message&, Time now)>;

/// Observability probes (src/obs/). Pure pass-through: installing a
/// probe consumes no randomness and changes no delivery decision, so a
/// probed run is byte-identical to an unprobed one.
struct SendInfo {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Tag tag = Tag::kConfig;
  Phase phase = Phase::kIdle;
  std::size_t bytes = 0;  ///< wire size (payload + header)
  LinkClass link;
  FaultInjector::Fault fault = FaultInjector::Fault::kNone;
  bool duplicated = false;
  bool reordered = false;
  bool delivered = true;  ///< false: no channel, or dropped by a fault
};
struct DeliverInfo {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Tag tag = Tag::kConfig;
  Phase phase = Phase::kIdle;  ///< phase active when the message was *sent*
  std::size_t bytes = 0;
};
using SendProbe = std::function<void(const SendInfo&)>;
using DeliverProbe = std::function<void(const DeliverInfo&)>;

class SimNet {
 public:
  SimNet(std::size_t node_count, DelayModel delays, rng::Stream rng);

  /// Install the channel classifier (defaults to everything kKeyMesh).
  void set_link_classifier(LinkClassifier classifier);

  /// Install a fault injector evaluated on every send. The injector
  /// composes with the classifier: the classifier decides which channel
  /// exists, the injector decides what the adversary does to it. `rng`
  /// must be a stream independent of the delay stream (the protocol
  /// engine forks "faults") so fault-free plans leave every delay draw
  /// byte-identical to an uninstrumented run.
  void install_faults(FaultPlan plan, rng::Stream rng);

  /// The installed injector, or nullptr. Mutable access lets the
  /// harness add partitions / blackouts and heal mid-run.
  FaultInjector* faults() { return injector_ ? &*injector_ : nullptr; }
  const FaultInjector* faults() const {
    return injector_ ? &*injector_ : nullptr;
  }

  /// Advance the injector's round clock (no-op without an injector);
  /// partitions and blackouts activate / expire on round boundaries.
  void begin_round(std::uint64_t round) {
    if (injector_) injector_->begin_round(round);
  }

  /// Install the delivery handler for a node.
  void set_handler(NodeId node, Handler handler);

  /// Label subsequent traffic with a protocol phase for accounting.
  void set_phase(Phase phase) { phase_ = phase; }
  Phase phase() const { return phase_; }

  /// Install / clear observability probes (empty function clears).
  void set_send_probe(SendProbe probe) { send_probe_ = std::move(probe); }
  void set_deliver_probe(DeliverProbe probe) {
    deliver_probe_ = std::move(probe);
  }

  /// Queue a message for delivery. Drops (and counts) sends over
  /// kUnconnected links — the hierarchical topology simply has no channel
  /// there, which is the point of the "Burden on Connection" row.
  void send(NodeId from, NodeId to, Tag tag, Bytes payload);

  /// Zero-copy send: the queued event and the delivered Message alias
  /// `payload`. Callers that fan one payload out to several receivers
  /// (outside of multicast) wrap it once with make_payload and reuse it.
  void send_shared(NodeId from, NodeId to, Tag tag, PayloadPtr payload);

  /// Send to many receivers (the BROADCAST of the pseudocode — multicast
  /// to known members, each counted individually). The payload is
  /// materialised exactly once per logical broadcast; every receiver's
  /// Message aliases the same immutable buffer.
  void multicast(NodeId from, const std::vector<NodeId>& to, Tag tag,
                 Bytes payload);

  /// Zero-copy multicast over an already-shared payload (no allocation).
  void multicast_shared(NodeId from, const std::vector<NodeId>& to, Tag tag,
                        const PayloadPtr& payload);

  /// Schedule a local timer callback for `node` at absolute time `when`.
  void schedule(Time when, std::function<void(Time)> fn);

  /// Run until the event queue is empty or `deadline` is passed.
  /// Returns the time of the last processed event.
  Time run(Time deadline = 1e18);

  Time now() const { return now_; }
  bool idle() const { return queue_.empty(); }

  const TrafficStats& stats() const { return stats_; }
  TrafficStats& stats() { return stats_; }
  std::uint64_t dropped_sends() const { return dropped_; }
  std::size_t node_count() const { return handlers_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    // Exactly one of message / timer is active.
    bool is_timer;
    Message msg;
    Phase send_phase;
    std::function<void(Time)> timer;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time class_delay(LinkClass cls);

  DelayModel delays_;
  rng::Stream rng_;
  LinkClassifier classifier_;
  SendProbe send_probe_;
  DeliverProbe deliver_probe_;
  std::optional<FaultInjector> injector_;
  std::vector<Handler> handlers_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  TrafficStats stats_;
  Phase phase_ = Phase::kIdle;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace cyc::net
