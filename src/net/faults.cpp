#include "net/faults.hpp"

#include <algorithm>

#include "net/simnet.hpp"

namespace cyc::net {

FaultInjector::FaultInjector(FaultPlan plan, rng::Stream rng)
    : plan_(std::move(plan)), rng_(rng) {}

void FaultInjector::add_partition(PartitionSpec spec) {
  plan_.partitions.push_back(std::move(spec));
}

void FaultInjector::add_blackout(BlackoutSpec spec) {
  plan_.blackouts.push_back(spec);
}

std::uint64_t FaultInjector::heal_all(std::uint64_t round) {
  std::uint64_t healed = 0;
  for (auto& p : plan_.partitions) {
    if (p.from_round <= round && round < p.heal_round) {
      p.heal_round = round;
      healed += 1;
    }
  }
  return healed;
}

bool FaultInjector::blacked_out(NodeId node) const {
  for (const auto& b : plan_.blackouts) {
    if (b.node == node && b.from_round <= round_ && round_ < b.until_round) {
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::island_mask(NodeId node) const {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    const auto& p = plan_.partitions[i];
    if (p.from_round <= round_ && round_ < p.heal_round &&
        std::find(p.island.begin(), p.island.end(), node) != p.island.end()) {
      mask |= std::uint64_t{1} << (i % 64);
    }
  }
  return mask;
}

bool FaultInjector::reachable(NodeId a, NodeId b) const {
  if (blacked_out(a) || blacked_out(b)) return false;
  return island_mask(a) == island_mask(b);
}

bool FaultInjector::partition_active() const {
  for (const auto& p : plan_.partitions) {
    if (p.from_round <= round_ && round_ < p.heal_round) return true;
  }
  return false;
}

FaultInjector::Verdict FaultInjector::on_send(NodeId from, NodeId to,
                                              LinkClass cls,
                                              FaultStats& stats) {
  Verdict verdict;
  // Structural cuts first: they consume no randomness, so a plan without
  // probabilistic axes never touches the stream.
  if (blacked_out(from) || blacked_out(to)) {
    stats.blackout_dropped += 1;
    verdict.deliver = false;
    verdict.fault = Fault::kBlackout;
    return verdict;
  }
  if (island_mask(from) != island_mask(to)) {
    stats.partition_dropped += 1;
    verdict.deliver = false;
    verdict.fault = Fault::kPartition;
    return verdict;
  }
  const LinkFaults& faults = plan_.link[static_cast<std::size_t>(cls)];
  // Each axis draws only when enabled, keeping disabled-axis runs
  // byte-identical to plans that omit the axis entirely.
  if (faults.drop > 0.0 && rng_.chance(faults.drop)) {
    stats.lost += 1;
    verdict.deliver = false;
    verdict.fault = Fault::kLoss;
    return verdict;
  }
  if (faults.duplicate > 0.0 && rng_.chance(faults.duplicate)) {
    stats.duplicated += 1;
    verdict.duplicate = true;
  }
  if (faults.reorder > 0.0 && rng_.chance(faults.reorder)) {
    stats.reordered += 1;
    verdict.reordered = true;
    verdict.delay_scale = 1.0 + faults.reorder_scale * rng_.uniform();
  }
  return verdict;
}

}  // namespace cyc::net
