#include "net/simnet.hpp"

#include <stdexcept>

namespace cyc::net {

SimNet::SimNet(std::size_t node_count, DelayModel delays, rng::Stream rng)
    : delays_(delays),
      rng_(rng),
      classifier_([](NodeId, NodeId) { return LinkClass::kKeyMesh; }),
      handlers_(node_count) {
  stats_.resize(node_count);
}

void SimNet::set_link_classifier(LinkClassifier classifier) {
  classifier_ = std::move(classifier);
}

void SimNet::install_faults(FaultPlan plan, rng::Stream rng) {
  injector_.emplace(std::move(plan), rng);
}

void SimNet::set_handler(NodeId node, Handler handler) {
  handlers_.at(node) = std::move(handler);
}

Time SimNet::class_delay(LinkClass cls) {
  switch (cls) {
    case LinkClass::kIntraCommittee:
      // Uniform in (0, Delta]: synchronous bound.
      return delays_.delta * (0.5 + 0.5 * rng_.uniform());
    case LinkClass::kKeyMesh:
      return delays_.gamma * (0.5 + 0.5 * rng_.uniform());
    case LinkClass::kPartialSync:
      // Bounded but adversarially jittered: delivery order between any
      // two messages on such links can invert.
      return delays_.gamma * (1.0 + delays_.jitter * rng_.uniform());
    case LinkClass::kUnconnected:
      return -1.0;
  }
  return -1.0;
}

void SimNet::send(NodeId from, NodeId to, Tag tag, Bytes payload) {
  send_shared(from, to, tag, make_payload(std::move(payload)));
}

void SimNet::send_shared(NodeId from, NodeId to, Tag tag, PayloadPtr payload) {
  if (to >= handlers_.size()) {
    throw std::out_of_range("SimNet::send: unknown receiver");
  }
  Message msg{from, to, tag, std::move(payload)};
  const LinkClass cls = classifier_(from, to);
  stats_.note_send(from, phase_, msg.wire_size());
  if (cls == LinkClass::kUnconnected) {
    // No channel at all: the injector is never consulted (nothing to
    // fault), so its stream stays untouched.
    ++dropped_;
    if (send_probe_) {
      send_probe_({from, to, tag, phase_, msg.wire_size(), cls,
                   FaultInjector::Fault::kNone, false, false, false});
    }
    return;
  }
  FaultInjector::Verdict verdict;
  if (injector_) {
    verdict = injector_->on_send(from, to, cls, stats_.faults());
    if (!verdict.deliver) {
      ++dropped_;
      if (send_probe_) {
        send_probe_({from, to, tag, phase_, msg.wire_size(), cls,
                     verdict.fault, false, false, false});
      }
      return;
    }
  }
  if (send_probe_) {
    send_probe_({from, to, tag, phase_, msg.wire_size(), cls, verdict.fault,
                 verdict.duplicate, verdict.reordered, true});
  }
  const Time delay = class_delay(cls) * verdict.delay_scale;
  Event ev;
  ev.when = now_ + delay;
  ev.seq = seq_++;
  ev.is_timer = false;
  ev.msg = msg;
  ev.send_phase = phase_;
  queue_.push(std::move(ev));
  if (verdict.duplicate) {
    // The duplicate aliases the same payload buffer and takes its own
    // delay draw, so the two copies can arrive in either order.
    Event dup;
    dup.when = now_ + class_delay(cls) * verdict.delay_scale;
    dup.seq = seq_++;
    dup.is_timer = false;
    dup.msg = std::move(msg);
    dup.send_phase = phase_;
    queue_.push(std::move(dup));
  }
}

void SimNet::multicast(NodeId from, const std::vector<NodeId>& to, Tag tag,
                       Bytes payload) {
  multicast_shared(from, to, tag, make_payload(std::move(payload)));
}

void SimNet::multicast_shared(NodeId from, const std::vector<NodeId>& to,
                              Tag tag, const PayloadPtr& payload) {
  for (NodeId receiver : to) {
    if (receiver == from) continue;
    send_shared(from, receiver, tag, payload);
  }
}

void SimNet::schedule(Time when, std::function<void(Time)> fn) {
  Event ev;
  ev.when = when < now_ ? now_ : when;
  ev.seq = seq_++;
  ev.is_timer = true;
  ev.timer = std::move(fn);
  ev.send_phase = phase_;
  queue_.push(std::move(ev));
}

Time SimNet::run(Time deadline) {
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) break;
    // Move the top event out before popping; popping invalidates the
    // reference but never reads the moved-from element's contents.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    if (ev.is_timer) {
      ev.timer(now_);
      continue;
    }
    stats_.note_recv(ev.msg.to, ev.send_phase, ev.msg.wire_size());
    if (deliver_probe_) {
      deliver_probe_({ev.msg.from, ev.msg.to, ev.msg.tag, ev.send_phase,
                      ev.msg.wire_size()});
    }
    if (handlers_[ev.msg.to]) {
      handlers_[ev.msg.to](ev.msg, now_);
    }
  }
  return now_;
}

}  // namespace cyc::net
