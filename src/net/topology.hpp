// Connection-channel counting for the "Burden on Connection" row of
// Table I.
//
// Previous protocols assume a reliable channel between every pair of
// honest nodes (a clique: n(n-1)/2 channels). CycLedger only needs:
//  * a clique inside each committee,
//  * a clique over all key members (leaders + partial sets),
//  * a channel from each key member to every referee member,
//  * partially synchronous best-effort links elsewhere (not counted as
//    reliable channels).
#pragma once

#include <cstdint>

namespace cyc::net {

struct TopologyParams {
  std::uint64_t n = 0;       ///< total nodes (excluding referees)
  std::uint64_t m = 0;       ///< committees
  std::uint64_t c = 0;       ///< committee size
  std::uint64_t lambda = 0;  ///< partial-set size
  std::uint64_t referees = 0;
};

struct ChannelCount {
  std::uint64_t intra_committee = 0;
  std::uint64_t key_mesh = 0;
  std::uint64_t key_to_referee = 0;
  std::uint64_t referee_clique = 0;

  std::uint64_t total() const {
    return intra_committee + key_mesh + key_to_referee + referee_clique;
  }
};

/// Reliable channels CycLedger's hierarchy needs.
ChannelCount cycledger_channels(const TopologyParams& p);

/// Reliable channels the flat clique model (Elastico / OmniLedger /
/// RapidChain network assumption) needs for the same population.
std::uint64_t clique_channels(const TopologyParams& p);

}  // namespace cyc::net
