// Deterministic fault injection layered over SimNet.
//
// The §III threat model quantifies over adversarial *schedules*, not just
// delay regimes: the adversary may cut links, silence nodes, and lose,
// duplicate or reorder messages on the partially synchronous channels. A
// FaultPlan describes such a schedule declaratively — round-scoped link
// partitions with heal rounds, per-node blackout windows, and
// probabilistic-but-seeded per-LinkClass message loss / duplication /
// reordering — and the FaultInjector evaluates it at every send. The
// injector composes with (never replaces) the LinkClassifier: the
// classifier says what channel exists, the injector says what the
// adversary does to it this round.
//
// Determinism contract: structural faults (partitions, blackouts) consume
// no randomness at all, and a probabilistic axis consumes draws from the
// injector's private stream only when its probability is non-zero — so a
// plan with no probabilistic faults leaves every delay draw of the
// underlying SimNet byte-identical to an uninstrumented run, and any plan
// is reproducible from (seed, plan) alone. Every injected fault is
// counted in the TrafficStats' FaultStats block so artifacts stay
// byte-deterministic and auditable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "net/stats.hpp"
#include "support/rng.hpp"

namespace cyc::net {

enum class LinkClass : std::uint8_t;  // defined in net/simnet.hpp

/// Probabilistic message faults for one LinkClass. All probabilities are
/// per-message; draws come from the injector's seeded stream.
struct LinkFaults {
  double drop = 0.0;       ///< P[message silently lost]
  double duplicate = 0.0;  ///< P[message delivered twice]
  double reorder = 0.0;    ///< P[delivery delayed by an extra factor]
  /// Extra delay factor when a reorder triggers: the scheduled delay is
  /// scaled by (1 + reorder_scale * u), u uniform — enough to invert
  /// delivery order against any message sent in the same window.
  double reorder_scale = 1.0;

  bool any() const { return drop > 0.0 || duplicate > 0.0 || reorder > 0.0; }
};

/// A round-scoped link partition: `island` is cut from the mainland (and
/// from every other island) for rounds in [from_round, heal_round).
/// Nodes inside the island still reach each other.
struct PartitionSpec {
  std::uint64_t from_round = 0;
  std::uint64_t heal_round = 0;  ///< first healed round (exclusive end)
  std::vector<NodeId> island;
};

/// A per-node blackout window: the node can neither send nor receive for
/// rounds in [from_round, until_round).
struct BlackoutSpec {
  NodeId node = kNoNode;
  std::uint64_t from_round = 0;
  std::uint64_t until_round = 0;  ///< exclusive
};

/// A complete fault schedule. Declarative and immutable-by-value; the
/// harness may append partitions / blackouts mid-run through the
/// injector (ScenarioEvent kinds kPartition / kBlackout).
struct FaultPlan {
  std::vector<PartitionSpec> partitions;
  std::vector<BlackoutSpec> blackouts;
  /// Indexed by static_cast<size_t>(LinkClass); the kUnconnected entry
  /// is never consulted (no channel, nothing to fault).
  std::array<LinkFaults, 4> link{};

  bool probabilistic() const {
    for (const auto& f : link) {
      if (f.any()) return true;
    }
    return false;
  }
  bool empty() const {
    return partitions.empty() && blackouts.empty() && !probabilistic();
  }
};

/// Per-round fault evaluation. Owned by SimNet (install_faults); the
/// protocol engine advances its round clock and queries connectivity to
/// compute quorum-reachability (severed committees, unreachable seats).
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, rng::Stream rng);

  /// Advance the round clock; partitions and blackouts activate / expire
  /// on round boundaries.
  void begin_round(std::uint64_t round) { round_ = round; }
  std::uint64_t round() const { return round_; }

  /// Append a partition (takes effect per its from_round / heal_round).
  void add_partition(PartitionSpec spec);
  /// Append a blackout window.
  void add_blackout(BlackoutSpec spec);
  /// Heal every partition still open at `round`: clamps each active
  /// partition's heal_round to `round`. Returns how many were healed.
  std::uint64_t heal_all(std::uint64_t round);

  /// Which fault (if any) dropped a send — attribution for the verdict
  /// and for observability probes (src/obs/).
  enum class Fault : std::uint8_t {
    kNone = 0,
    kPartition,  ///< endpoints on different islands
    kBlackout,   ///< an endpoint inside a blackout window
    kLoss,       ///< probabilistic link loss
  };

  /// What the adversary does to one send this round. `stats` receives
  /// the fault accounting (TrafficStats::faults()).
  struct Verdict {
    bool deliver = true;
    bool duplicate = false;
    bool reordered = false;
    double delay_scale = 1.0;
    Fault fault = Fault::kNone;
  };
  Verdict on_send(NodeId from, NodeId to, LinkClass cls, FaultStats& stats);

  /// True when `node` is inside an active blackout window this round.
  bool blacked_out(NodeId node) const;
  /// Bitmask of active partitions whose island contains `node` (bit i
  /// for partition i mod 64). Two non-blacked-out nodes can communicate
  /// iff their masks are equal — island membership is an equivalence
  /// relation, which is what makes comm-group queries well-defined.
  std::uint64_t island_mask(NodeId node) const;
  /// Can a and b exchange messages this round?
  bool reachable(NodeId a, NodeId b) const;
  /// Any partition currently cutting links?
  bool partition_active() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  rng::Stream rng_;
  std::uint64_t round_ = 0;
};

}  // namespace cyc::net
