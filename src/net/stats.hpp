// Per-node / per-phase traffic and storage accounting.
//
// Table II of the paper states asymptotic communication, computation and
// storage complexity per protocol phase and per role; this accounting is
// the measured counterpart. The protocol layer labels phases; the
// simulator attributes every delivered message to the label active when
// it was *sent*.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace cyc::net {

/// Phase labels (indices into per-phase counters).
enum class Phase : std::uint8_t {
  kIdle = 0,
  kCommitteeConfig,
  kSemiCommit,
  kIntraConsensus,
  kInterConsensus,
  kReputation,
  kSelection,
  kBlock,
  kRecovery,
  kCount,
};

std::string_view phase_name(Phase p);

struct Counter {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;

  Counter& operator+=(const Counter& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_recv += o.msgs_recv;
    bytes_recv += o.bytes_recv;
    return *this;
  }
};

/// Injected-fault accounting (net/faults.hpp). Every fault the injector
/// applies is counted here, alongside the traffic counters, so a faulty
/// run's artifact is as byte-deterministic and auditable as a clean one.
struct FaultStats {
  std::uint64_t partition_dropped = 0;  ///< cut by an active partition
  std::uint64_t blackout_dropped = 0;   ///< endpoint inside a blackout
  std::uint64_t lost = 0;               ///< probabilistic link loss
  std::uint64_t duplicated = 0;         ///< delivered twice
  std::uint64_t reordered = 0;          ///< extra delay injected

  std::uint64_t dropped() const {
    return partition_dropped + blackout_dropped + lost;
  }
  std::uint64_t injected() const {
    return dropped() + duplicated + reordered;
  }
  FaultStats& operator+=(const FaultStats& o) {
    partition_dropped += o.partition_dropped;
    blackout_dropped += o.blackout_dropped;
    lost += o.lost;
    duplicated += o.duplicated;
    reordered += o.reordered;
    return *this;
  }
  bool operator==(const FaultStats&) const = default;
};

class TrafficStats {
 public:
  void resize(std::size_t nodes);
  void note_send(NodeId node, Phase phase, std::size_t bytes);
  void note_recv(NodeId node, Phase phase, std::size_t bytes);

  const Counter& at(NodeId node, Phase phase) const;
  Counter node_total(NodeId node) const;
  Counter phase_total(Phase phase) const;
  Counter grand_total() const;
  std::size_t node_count() const { return per_node_.size(); }

  /// Injected-fault counters for the current accounting window (reset
  /// alongside the traffic counters).
  FaultStats& faults() { return faults_; }
  const FaultStats& faults() const { return faults_; }

  void reset();

 private:
  // per_node_[node][phase]
  std::vector<std::vector<Counter>> per_node_;
  FaultStats faults_;
};

}  // namespace cyc::net
