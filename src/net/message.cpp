#include "net/message.hpp"

namespace cyc::net {

namespace {
thread_local std::uint64_t t_payload_allocs = 0;
thread_local std::uint64_t t_payload_bytes = 0;
const Bytes kEmptyPayload;
}  // namespace

PayloadPtr make_payload(Bytes b) {
  ++t_payload_allocs;
  t_payload_bytes += b.size();
  return std::make_shared<const Bytes>(std::move(b));
}

std::uint64_t payload_allocations() { return t_payload_allocs; }
std::uint64_t payload_bytes_allocated() { return t_payload_bytes; }
void reset_payload_counters() {
  t_payload_allocs = 0;
  t_payload_bytes = 0;
}

const Bytes& Message::payload() const {
  return body ? *body : kEmptyPayload;
}

std::string_view tag_name(Tag tag) {
  switch (tag) {
    case Tag::kConfig: return "CONFIG";
    case Tag::kMemberList: return "MEM_LIST";
    case Tag::kMember: return "MEMBER";
    case Tag::kPropose: return "PROPOSE";
    case Tag::kEcho: return "ECHO";
    case Tag::kConfirm: return "CONFIRM";
    case Tag::kAbort: return "ABORT";
    case Tag::kSemiCommit: return "SEMI_COM";
    case Tag::kSemiCommitAck: return "SEMI_COM_ACK";
    case Tag::kTxList: return "TX_LIST";
    case Tag::kVote: return "VOTE";
    case Tag::kIntraResult: return "INTRA";
    case Tag::kCrossTxList: return "CROSS_TX";
    case Tag::kCrossResult: return "CROSS_RESULT";
    case Tag::kCrossPartialHint: return "CROSS_HINT";
    case Tag::kScoreList: return "SCORE_LIST";
    case Tag::kScoreReport: return "SCORE_REPORT";
    case Tag::kAccuse: return "ACCUSE";
    case Tag::kImpeachVote: return "IMPEACH_VOTE";
    case Tag::kProsecute: return "PROSECUTE";
    case Tag::kNewLeader: return "NEW_LEADER";
    case Tag::kPowSolution: return "POW";
    case Tag::kBlock: return "BLOCK";
    case Tag::kUtxoHandoff: return "UTXO_HANDOFF";
    case Tag::kBeaconShare: return "BEACON";
    case Tag::kPreCommQuery: return "PRECOMM_Q";
    case Tag::kPreCommReply: return "PRECOMM_R";
    case Tag::kBlockPermit: return "BLOCK_PERMIT";
    case Tag::kSubBlock: return "SUB_BLOCK";
    case Tag::kCatchUpRequest: return "CATCHUP_REQ";
    case Tag::kCatchUpReply: return "CATCHUP_REPLY";
  }
  return "UNKNOWN";
}

}  // namespace cyc::net
