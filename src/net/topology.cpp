#include "net/topology.hpp"

namespace cyc::net {

namespace {
std::uint64_t pairs(std::uint64_t k) { return k * (k - 1) / 2; }
}  // namespace

ChannelCount cycledger_channels(const TopologyParams& p) {
  ChannelCount out;
  out.intra_committee = p.m * pairs(p.c);
  const std::uint64_t key_members = p.m * (1 + p.lambda);
  // Channels among key members of *different* committees; pairs within a
  // committee are already covered by the intra-committee clique.
  out.key_mesh = pairs(key_members) - p.m * pairs(1 + p.lambda);
  out.key_to_referee = key_members * p.referees;
  out.referee_clique = pairs(p.referees);
  return out;
}

std::uint64_t clique_channels(const TopologyParams& p) {
  return pairs(p.n + p.referees);
}

}  // namespace cyc::net
