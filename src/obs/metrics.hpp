// Deterministic metrics registry: counters, gauges and histograms.
//
// Names are free-form dotted strings ("net.sent.intra.VOTE.msgs");
// storage is a std::map per kind so JSON export is sorted and
// byte-stable. Histograms keep raw samples and summarize through
// math::percentile (nearest-rank), the same reduction every bench
// artifact already uses — no new statistics idiom to audit.
//
// The registry is engine-local (one per attached Observer), never
// shared across threads; sweep workers each own their engine's
// registry, matching the one-engine-per-thread simulator contract.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace cyc::obs {

class MetricCounter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class MetricGauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricHistogram {
 public:
  void record(double sample);
  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  /// Nearest-rank percentile over all recorded samples (math::percentile).
  double percentile(double q) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

class Registry {
 public:
  MetricCounter& counter(const std::string& name) { return counters_[name]; }
  MetricGauge& gauge(const std::string& name) { return gauges_[name]; }
  MetricHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  /// Lookup without creating; nullptr when absent.
  const MetricCounter* find_counter(const std::string& name) const;
  const MetricGauge* find_gauge(const std::string& name) const;
  const MetricHistogram* find_histogram(const std::string& name) const;

  const std::map<std::string, MetricCounter>& counters() const {
    return counters_;
  }
  const std::map<std::string, MetricGauge>& gauges() const { return gauges_; }
  const std::map<std::string, MetricHistogram>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Emit {"counters":{...},"gauges":{...},"histograms":{...}} — sorted
  /// by name; histograms summarized as count/sum/min/max/p50/p95/p99.
  void to_json(support::JsonWriter& json) const;

 private:
  std::map<std::string, MetricCounter> counters_;
  std::map<std::string, MetricGauge> gauges_;
  std::map<std::string, MetricHistogram> histograms_;
};

}  // namespace cyc::obs
