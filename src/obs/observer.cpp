#include "obs/observer.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace cyc::obs {

std::string Observer::export_json() const {
  return trace.to_chrome_json([this](support::JsonWriter& json) {
    json.key("metrics");
    metrics.to_json(json);
  });
}

void write_trace_file(const std::string& path, const Observer& observer) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot open trace file '" + path +
                             "': " + std::strerror(errno));
  }
  const std::string doc = observer.export_json();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.put('\n');
  if (!out) {
    throw std::runtime_error("obs: short write to trace file '" + path + "'");
  }
}

}  // namespace cyc::obs
