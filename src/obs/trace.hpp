// Deterministic span/event tracer (Chrome trace_event JSON, Perfetto).
//
// Timestamps are **simulated time** (net::Time, units of Delta), so a
// trace is a pure function of (spec, seed): byte-identical across runs,
// hosts and thread counts. An opt-in wall-clock mode attaches real
// elapsed microseconds as an extra arg for profiling — artifacts with
// wall-clock args are excluded from determinism comparisons by
// construction (the mode is never enabled on compared paths).
//
// Span model (see src/obs/README.md): every event lives on a *track*
// (exported as a Chrome tid under one pid). Track 0 carries the
// protocol's round → phase span stack plus instant protocol events;
// tracks kTrackCommitteeBase + k mirror the phase schedule per
// committee with that committee's traffic attached as args. B/E events
// on one track nest by timestamp order, exactly like Chrome's own
// duration events.
//
// The buffer is a bounded ring: when full, the *oldest* events are
// dropped (and counted), keeping the tail of a long run — the part a
// failure triage needs — intact. Eviction is per *event*, not per
// span: a span's B event can be evicted while its E survives, leaving
// a dangling E in the Chrome JSON (viewers tolerate it; the paired B
// is exactly what droppedEvents accounts for). Filling the ring to
// exactly `capacity` drops nothing; droppedEvents counts evictions
// only, never the events still buffered.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace cyc::obs {

/// Well-known tracks. Committee k draws on kTrackCommitteeBase + k.
inline constexpr std::uint32_t kTrackProtocol = 0;
inline constexpr std::uint32_t kTrackNet = 1;
inline constexpr std::uint32_t kTrackMempool = 2;
inline constexpr std::uint32_t kTrackCommitteeBase = 16;

class Tracer {
 public:
  /// Numeric event args (counter values, ids, sizes). Integral values
  /// are exported as JSON integers, everything else via the artifact
  /// "%.10g" convention.
  using Args = std::vector<std::pair<std::string, double>>;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Attach real elapsed time (µs since construction) to every
  /// subsequent event as a "wall_us" arg. Off by default; never enable
  /// on a path whose artifact is byte-compared.
  void enable_wall_clock();
  bool wall_clock_enabled() const { return wall_clock_; }

  /// Human-readable track label (Chrome thread_name metadata).
  void set_track_name(std::uint32_t track, std::string name);

  /// Open a duration span on `track` at simulated time `ts`.
  void begin(std::uint32_t track, std::string name, std::string category,
             double ts);
  /// Close the innermost open span on `track`; `args` attach to the
  /// closing event (Perfetto merges them into the slice).
  void end(std::uint32_t track, double ts, Args args = {});
  /// Zero-duration event (thread-scoped instant).
  void instant(std::uint32_t track, std::string name, std::string category,
               double ts, Args args = {});
  /// Counter sample: Perfetto renders one stacked series per arg key.
  void counter(std::uint32_t track, std::string name, double ts, Args series);

  std::size_t size() const { return events_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events evicted from the ring so far.
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Render the Chrome trace_event document:
  ///   {"displayTimeUnit":"ms","traceEvents":[...], ...extra}
  /// `extra`, when given, writes additional top-level fields (Perfetto
  /// ignores unknown keys). Simulated time maps 1 Delta-unit = 1 ms.
  std::string to_chrome_json(
      const std::function<void(support::JsonWriter&)>& extra = {}) const;

 private:
  enum class Type : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

  struct Event {
    Type type;
    std::uint32_t track;
    double ts;
    std::string name;      // empty on kEnd
    std::string category;  // empty on kEnd / kCounter
    Args args;
    double wall_us = -1.0;  // < 0: wall clock disabled at record time
  };

  void push(Event ev);
  double wall_now_us() const;

  std::size_t capacity_;
  std::deque<Event> events_;
  std::map<std::uint32_t, std::string> track_names_;
  std::uint64_t dropped_ = 0;
  bool wall_clock_ = false;
  std::uint64_t wall_epoch_ns_ = 0;  // steady_clock at enable time
};

}  // namespace cyc::obs
