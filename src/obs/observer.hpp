// Observer: the tracer + metrics bundle an Engine records into.
//
// One Observer per engine (attach via Engine::attach_observer); the
// engine and the net-layer probes write into it single-threaded, per
// the simulator contract. export_json() renders one Perfetto-loadable
// document: the Chrome trace with the metrics registry attached as a
// top-level "metrics" field (unknown top-level keys are ignored by
// trace viewers, so one file serves both consumers).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cyc::obs {

struct Observer {
  Tracer trace;
  Registry metrics;

  explicit Observer(std::size_t trace_capacity = Tracer::kDefaultCapacity)
      : trace(trace_capacity) {}

  /// Chrome trace JSON with "metrics" embedded.
  std::string export_json() const;
};

/// Write export_json() to `path` (truncating). Throws std::runtime_error
/// with the strerror detail on failure.
void write_trace_file(const std::string& path, const Observer& observer);

}  // namespace cyc::obs
