#include "obs/trace.hpp"

#include <chrono>
#include <cmath>

namespace cyc::obs {

namespace {

/// Args values are logically integers most of the time (message counts,
/// byte totals, node ids). Emit those as JSON integers so the artifact
/// never depends on printf float formatting for exact counters.
void write_arg_value(support::JsonWriter& json, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    json.value(static_cast<std::int64_t>(v));
  } else {
    json.value(v);
  }
}

void write_args(support::JsonWriter& json, const Tracer::Args& args,
                double wall_us) {
  json.key("args");
  json.begin_object();
  for (const auto& [k, v] : args) {
    json.key(k);
    write_arg_value(json, v);
  }
  if (wall_us >= 0.0) json.field("wall_us", wall_us);
  json.end_object();
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::enable_wall_clock() {
  wall_clock_ = true;
  wall_epoch_ns_ = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

double Tracer::wall_now_us() const {
  if (!wall_clock_) return -1.0;
  const auto now = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return static_cast<double>(now - wall_epoch_ns_) * 1e-3;
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  track_names_[track] = std::move(name);
}

void Tracer::push(Event ev) {
  ev.wall_us = wall_now_us();
  events_.push_back(std::move(ev));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void Tracer::begin(std::uint32_t track, std::string name, std::string category,
                   double ts) {
  push(Event{Type::kBegin, track, ts, std::move(name), std::move(category),
             {}});
}

void Tracer::end(std::uint32_t track, double ts, Args args) {
  push(Event{Type::kEnd, track, ts, {}, {}, std::move(args)});
}

void Tracer::instant(std::uint32_t track, std::string name,
                     std::string category, double ts, Args args) {
  push(Event{Type::kInstant, track, ts, std::move(name), std::move(category),
             std::move(args)});
}

void Tracer::counter(std::uint32_t track, std::string name, double ts,
                     Args series) {
  push(Event{Type::kCounter, track, ts, std::move(name), {},
             std::move(series)});
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
}

std::string Tracer::to_chrome_json(
    const std::function<void(support::JsonWriter&)>& extra) const {
  support::JsonWriter json;
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.key("traceEvents");
  json.begin_array();
  // Metadata first: one process, one named thread per track.
  json.begin_object();
  json.field("ph", "M");
  json.field("pid", 0);
  json.field("tid", 0);
  json.field("name", "process_name");
  json.key("args");
  json.begin_object();
  json.field("name", "cycledger");
  json.end_object();
  json.end_object();
  for (const auto& [track, name] : track_names_) {
    json.begin_object();
    json.field("ph", "M");
    json.field("pid", 0);
    json.field("tid", static_cast<std::uint64_t>(track));
    json.field("name", "thread_name");
    json.key("args");
    json.begin_object();
    json.field("name", name);
    json.end_object();
    json.end_object();
    // sort_index keeps tracks in id order regardless of first-event time.
    json.begin_object();
    json.field("ph", "M");
    json.field("pid", 0);
    json.field("tid", static_cast<std::uint64_t>(track));
    json.field("name", "thread_sort_index");
    json.key("args");
    json.begin_object();
    json.field("sort_index", static_cast<std::uint64_t>(track));
    json.end_object();
    json.end_object();
  }
  for (const auto& ev : events_) {
    json.begin_object();
    switch (ev.type) {
      case Type::kBegin:
        json.field("ph", "B");
        break;
      case Type::kEnd:
        json.field("ph", "E");
        break;
      case Type::kInstant:
        json.field("ph", "i");
        break;
      case Type::kCounter:
        json.field("ph", "C");
        break;
    }
    json.field("pid", 0);
    json.field("tid", static_cast<std::uint64_t>(ev.track));
    // 1 simulated Delta-unit = 1 ms; "ts" is in microseconds.
    json.field("ts", ev.ts * 1000.0);
    if (!ev.name.empty()) json.field("name", ev.name);
    if (!ev.category.empty()) json.field("cat", ev.category);
    if (ev.type == Type::kInstant) json.field("s", "t");
    if (!ev.args.empty() || ev.wall_us >= 0.0) {
      write_args(json, ev.args, ev.wall_us);
    }
    json.end_object();
  }
  json.end_array();
  json.field("droppedEvents", dropped_);
  if (extra) extra(json);
  json.end_object();
  return json.str();
}

}  // namespace cyc::obs
