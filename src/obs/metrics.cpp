#include "obs/metrics.hpp"

#include <algorithm>

#include "support/math.hpp"

namespace cyc::obs {

void MetricHistogram::record(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
}

double MetricHistogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double MetricHistogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double MetricHistogram::percentile(double q) const {
  return math::percentile(samples_, q);
}

const MetricCounter* Registry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const MetricGauge* Registry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const MetricHistogram* Registry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::to_json(support::JsonWriter& json) const {
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, c] : counters_) json.field(name, c.value());
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, g] : gauges_) json.field(name, g.value());
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : histograms_) {
    // Sort once for the whole quantile block instead of copy+sort per
    // percentile; identical nearest-rank values, third of the work.
    const math::SortedSample sorted(h.samples());
    json.key(name);
    json.begin_object();
    json.field("count", static_cast<std::uint64_t>(h.count()));
    json.field("sum", h.sum());
    json.field("min", h.min());
    json.field("max", h.max());
    json.field("p50", sorted.percentile(0.50));
    json.field("p95", sorted.percentile(0.95));
    json.field("p99", sorted.percentile(0.99));
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

}  // namespace cyc::obs
