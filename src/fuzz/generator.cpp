#include "fuzz/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "analysis/bounds.hpp"

namespace cyc::fuzz {

namespace {

using harness::ScenarioEvent;
using harness::ScenarioSpec;
using protocol::Behavior;

template <typename T, std::size_t N>
const T& pick(rng::Stream& rng, const std::array<T, N>& grid) {
  return grid[static_cast<std::size_t>(rng.below(N))];
}

/// Does a corrupt member with this behaviour cast wrong votes? Leader
/// behaviours act as inverse voters when they are common members
/// (is_leader_behavior), random voters are wrong half the time (counted
/// fully, erring safe), crash / lazy voters abstain and cannot push an
/// invalid transaction through a vote.
bool misvotes_as_member(Behavior b) {
  return b != Behavior::kCrash && b != Behavior::kLazyVoter;
}

/// Every concrete misbehaviour of the §III-C adversary (kHonest is not a
/// corruption and is excluded from event schedules and mixes).
constexpr std::array<Behavior, 9> kMisbehaviors = {
    Behavior::kCrash,        Behavior::kEquivocator, Behavior::kCommitForger,
    Behavior::kConcealer,    Behavior::kInverseVoter, Behavior::kRandomVoter,
    Behavior::kLazyVoter,    Behavior::kImitator,     Behavior::kFramer,
};

protocol::AdversaryConfig sample_adversary(rng::Stream& rng,
                                           const FuzzBounds& bounds) {
  protocol::AdversaryConfig adv;
  // Quantized corruption grid below the honest-majority bound; ~1/4 of
  // specs run the honest baseline.
  constexpr std::array<double, 8> kFractions = {0.0,  0.0,  0.1, 0.15,
                                                0.2,  0.25, 0.3, 0.3};
  adv.corrupt_fraction =
      std::min(pick(rng, kFractions), bounds.max_corrupt_fraction);
  if (adv.corrupt_fraction == 0.0) {
    adv.mix.clear();
    return adv;
  }
  // 1..4 distinct behaviours with short-decimal weights.
  constexpr std::array<double, 4> kWeights = {0.5, 1.0, 1.5, 2.0};
  const std::size_t count = 1 + static_cast<std::size_t>(rng.below(4));
  std::array<Behavior, 9> pool = kMisbehaviors;
  rng::shuffle(pool, rng);
  adv.mix.clear();
  for (std::size_t i = 0; i < count; ++i) {
    adv.mix.push_back({pool[i], pick(rng, kWeights)});
  }
  // Occasionally force corrupt round-1 leaders (Table I row 6 stress).
  if (rng.chance(0.25)) {
    constexpr std::array<double, 3> kForced = {0.34, 0.5, 0.67};
    adv.forced_corrupt_leader_fraction = pick(rng, kForced);
  }
  return adv;
}

protocol::EngineOptions sample_options(rng::Stream& rng,
                                       const FuzzBounds& bounds) {
  protocol::EngineOptions options;
  if (!bounds.fuzz_options) return options;
  // Recovery stays on (the recovery-off baseline deliberately loses
  // rounds, which is not an invariant violation worth fuzzing for).
  options.reputation_leader_selection = !rng.chance(0.2);
  options.extension_precommunication = rng.chance(0.2);
  options.extension_parallel_blocks = rng.chance(0.2);
  return options;
}

std::vector<ScenarioEvent> sample_events(rng::Stream& rng,
                                         const FuzzBounds& bounds,
                                         const protocol::Params& params,
                                         std::size_t total_rounds) {
  std::vector<ScenarioEvent> events;
  if (bounds.max_events == 0) return events;
  const std::size_t count =
      static_cast<std::size_t>(rng.below(bounds.max_events + 1));
  for (std::size_t i = 0; i < count; ++i) {
    ScenarioEvent ev;
    ev.round = 1 + rng.below(total_rounds);
    switch (rng.below(3)) {
      case 0:
        ev.target = ScenarioEvent::Target::kNode;
        ev.node = static_cast<net::NodeId>(rng.below(params.total_nodes()));
        break;
      case 1:
        ev.target = ScenarioEvent::Target::kLeaderOf;
        ev.committee = static_cast<std::uint32_t>(rng.below(params.m));
        break;
      default:
        ev.target = ScenarioEvent::Target::kRefereeAt;
        ev.committee =
            static_cast<std::uint32_t>(rng.below(params.referee_size));
        break;
    }
    ev.behavior = pick(rng, kMisbehaviors);
    events.push_back(ev);
  }
  return events;
}

/// Fault-fabric schedule, appended after the corruption events. Every
/// sampled schedule is structurally legal: a restart trails its crash by
/// two rounds (the crash takes effect one round after the event,
/// §III-C, and the restart must find the node down), partition islands
/// are whole committees, and explicit heals land inside the run.
void sample_fault_events(rng::Stream& rng, const FuzzBounds& bounds,
                         const protocol::Params& params,
                         std::size_t total_rounds,
                         std::vector<ScenarioEvent>& events) {
  const std::size_t partitions =
      static_cast<std::size_t>(rng.below(bounds.max_partitions + 1));
  for (std::size_t i = 0; i < partitions; ++i) {
    ScenarioEvent cut;
    cut.kind = ScenarioEvent::Kind::kPartition;
    cut.target = ScenarioEvent::Target::kCommittee;
    cut.committee = static_cast<std::uint32_t>(rng.below(params.m));
    cut.round = 1 + rng.below(total_rounds);
    cut.duration = 1 + rng.below(2);
    events.push_back(cut);
    // Half the cuts also get an explicit heal one round in — exercising
    // the kHeal path; the rest expire through their duration.
    if (cut.round + 1 <= total_rounds && rng.chance(0.5)) {
      ScenarioEvent heal;
      heal.kind = ScenarioEvent::Kind::kHeal;
      heal.round = cut.round + 1;
      events.push_back(heal);
    }
  }

  if (total_rounds >= 3) {
    const std::size_t pairs =
        static_cast<std::size_t>(rng.below(bounds.max_crash_restarts + 1));
    for (std::size_t i = 0; i < pairs; ++i) {
      ScenarioEvent crash;
      crash.kind = ScenarioEvent::Kind::kCrash;
      crash.target = ScenarioEvent::Target::kNode;
      crash.node = static_cast<net::NodeId>(rng.below(params.total_nodes()));
      crash.round = 1 + rng.below(total_rounds - 2);
      events.push_back(crash);
      ScenarioEvent back;
      back.kind = ScenarioEvent::Kind::kRestart;
      back.target = ScenarioEvent::Target::kNode;
      back.node = crash.node;
      back.round = crash.round + 2;
      events.push_back(back);
    }
  }

  const std::size_t blackouts =
      static_cast<std::size_t>(rng.below(bounds.max_blackouts + 1));
  for (std::size_t i = 0; i < blackouts; ++i) {
    ScenarioEvent dark;
    dark.kind = ScenarioEvent::Kind::kBlackout;
    if (rng.chance(0.5)) {
      dark.target = ScenarioEvent::Target::kNode;
      dark.node = static_cast<net::NodeId>(rng.below(params.total_nodes()));
    } else {
      dark.target = ScenarioEvent::Target::kLeaderOf;
      dark.committee = static_cast<std::uint32_t>(rng.below(params.m));
    }
    dark.round = 1 + rng.below(total_rounds);
    dark.duration = 1;
    events.push_back(dark);
  }
}

/// Corrupt seats a spec can field in any one round: the genesis draw
/// (plus forced leaders and every scheduled event — each corrupts at
/// most one extra node). The misvote budget additionally weights by the
/// mix's misvoting share (crash / lazy seats cannot push an invalid
/// transaction through a vote, but they do count against liveness).
struct CorruptBudget {
  std::uint32_t misvoters = 0;
  std::uint32_t corrupt = 0;
};

CorruptBudget corrupt_budget(const ScenarioSpec& spec) {
  const std::uint32_t n = spec.params.total_nodes();
  // Genesis corruption draws over the whole universe — standby included
  // (Engine::build_nodes) — and PoW churn can rotate corrupt standby
  // identities into active seats, so budget against the universe count
  // (clamped to the enrolled seats a round can actually field).
  const auto corrupt = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(spec.adversary.corrupt_fraction *
                                 static_cast<double>(spec.params.universe())),
      n);
  double total_weight = 0.0;
  double misvote_weight = 0.0;
  for (const auto& entry : spec.adversary.mix) {
    total_weight += entry.weight;
    if (misvotes_as_member(entry.behavior)) misvote_weight += entry.weight;
  }
  const double share = total_weight > 0.0 ? misvote_weight / total_weight : 0.0;
  // Only key-corruption events spend adversary budget; fault-fabric
  // events (partition / restart / heal / blackout) impair connectivity,
  // which the invariant suite accounts for separately (severed /
  // impaired exemptions), not votes.
  std::uint32_t events = 0;
  for (const auto& ev : spec.events) {
    if (ev.kind == ScenarioEvent::Kind::kCorrupt ||
        ev.kind == ScenarioEvent::Kind::kCrash) {
      events += 1;
    }
  }
  std::uint32_t forced = 0;
  if (spec.adversary.forced_corrupt_leader_fraction > 0.0) {
    forced = static_cast<std::uint32_t>(
        std::ceil(spec.adversary.forced_corrupt_leader_fraction *
                  static_cast<double>(spec.params.m)));
  }
  CorruptBudget budget;
  budget.misvoters = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(
          std::ceil(static_cast<double>(corrupt) * share)) +
          events,
      n);
  budget.corrupt = std::min<std::uint32_t>(corrupt + forced + events, n);
  return budget;
}

}  // namespace

double spec_failure_tail(std::uint32_t n, std::uint32_t misvoters,
                         std::uint32_t corrupt, std::uint32_t m,
                         std::uint32_t c, std::uint32_t referee_size) {
  const auto group_tail = [&](std::uint32_t t) {
    return static_cast<double>(m) *
               analysis::committee_failure_exact(n, t, c) +
           analysis::committee_failure_exact(n, t, referee_size);
  };
  // `corrupt >= misvoters` always, so the liveness term dominates; both
  // are kept explicit because they bound different invariants (vote
  // safety vs commit-or-recover).
  return group_tail(misvoters) + group_tail(corrupt);
}

ScenarioSpec generate_spec(rng::Stream& rng, const FuzzBounds& bounds) {
  // Rejection sampling against the fair-draw tail; the honest fallback
  // below makes the loop total, and in practice a handful of tries
  // suffice (the filter mostly rejects narrow high-fraction mixes on
  // small committees).
  for (int attempt = 0; attempt < 64; ++attempt) {
    ScenarioSpec spec;
    spec.name = "fuzz";

    // Committee shape: small enough for a 200-spec budget, varied enough
    // to cross sortition, the cross-shard mesh and capacity skew.
    struct Shape {
      std::uint32_t m, c, lambda, referee;
    };
    constexpr std::array<Shape, 6> kShapes = {{{2, 8, 2, 5},
                                               {3, 9, 3, 5},
                                               {2, 10, 3, 7},
                                               {3, 6, 2, 5},
                                               {4, 6, 2, 5},
                                               {4, 8, 3, 7}}};
    const Shape& shape = pick(rng, kShapes);
    spec.params.m = shape.m;
    spec.params.c = shape.c;
    spec.params.lambda = shape.lambda;
    spec.params.referee_size = shape.referee;
    spec.params.users = 20 * shape.m;

    constexpr std::array<std::uint32_t, 4> kTxs = {6, 8, 10, 12};
    spec.params.txs_per_committee = pick(rng, kTxs);
    constexpr std::array<double, 4> kCross = {0.0, 0.1, 0.2, 0.4};
    spec.params.cross_shard_fraction = pick(rng, kCross);
    constexpr std::array<double, 4> kInvalid = {0.0, 0.05, 0.1, 0.3};
    spec.params.invalid_fraction = pick(rng, kInvalid);
    constexpr std::array<std::pair<std::uint32_t, std::uint32_t>, 4> kCaps = {
        {{64, 64}, {4, 16}, {8, 32}, {16, 64}}};
    const auto& [cap_min, cap_max] = pick(rng, kCaps);
    spec.params.capacity_min = cap_min;
    spec.params.capacity_max = cap_max;

    // Legal delay regimes: the paper's default and slower partial-sync
    // points (gamma >= delta, bounded jitter).
    constexpr std::array<double, 2> kGamma = {5.0, 7.0};
    constexpr std::array<double, 4> kJitter = {0.5, 1.0, 2.0, 3.0};
    spec.params.delays.gamma = pick(rng, kGamma);
    spec.params.delays.jitter = pick(rng, kJitter);

    spec.adversary = sample_adversary(rng, bounds);
    spec.options = sample_options(rng, bounds);

    spec.rounds = 1 + static_cast<std::size_t>(
                          rng.below(std::max<std::size_t>(bounds.max_rounds, 1)));
    if (bounds.max_epochs > 1 && rng.chance(0.25)) {
      spec.epochs = 2 + static_cast<std::size_t>(
                            rng.below(bounds.max_epochs - 1));
      constexpr std::array<double, 3> kChurn = {0.0, 0.1, 0.2};
      spec.churn_rate = std::min(pick(rng, kChurn), bounds.max_churn_rate);
      if (spec.churn_rate > 0.0) {
        // Size the standby pool to cover every boundary's churn budget.
        spec.params.standby = static_cast<std::uint32_t>(
            std::ceil(spec.churn_rate *
                      static_cast<double>(spec.params.total_nodes())) *
            static_cast<std::uint32_t>(spec.epochs));
      }
    }

    const std::size_t max_seeds = std::max<std::size_t>(bounds.max_seeds, 1);
    const std::size_t seed_count =
        1 + static_cast<std::size_t>(rng.below(max_seeds));
    spec.seeds.clear();
    for (std::size_t i = 0; i < seed_count; ++i) {
      spec.seeds.push_back(1 + rng.below(1u << 20));
    }

    spec.events =
        sample_events(rng, bounds, spec.params, spec.rounds * spec.epochs);
    sample_fault_events(rng, bounds, spec.params, spec.rounds * spec.epochs,
                        spec.events);
    // Probabilistic wide-area loss on ~30% of specs; intra-committee
    // links stay reliable per the synchronous-Δ assumption (§III-B).
    if (rng.chance(0.3)) {
      constexpr std::array<double, 3> kDrop = {0.02, 0.05, 0.1};
      constexpr std::array<double, 3> kDuplicate = {0.0, 0.05, 0.1};
      constexpr std::array<double, 3> kReorder = {0.0, 0.25, 0.5};
      spec.params.faults.drop = std::min(pick(rng, kDrop), bounds.max_drop);
      spec.params.faults.duplicate = pick(rng, kDuplicate);
      spec.params.faults.reorder = pick(rng, kReorder);
    }

    // Open-loop sustained-traffic axes, short-decimal grids like every
    // other float field. Double-gated so the default (zero) fraction
    // consumes nothing from the stream: existing corpora and their
    // shrunk repro specs stay byte-identical.
    if (bounds.openloop_fraction > 0.0 &&
        rng.chance(bounds.openloop_fraction)) {
      constexpr std::array<double, 4> kRate = {0.05, 0.1, 0.15, 0.25};
      constexpr std::array<double, 4> kZipf = {0.0, 0.8, 1.1, 1.5};
      constexpr std::array<std::uint32_t, 3> kPool = {8, 24, 64};
      spec.params.arrival_rate =
          std::min(pick(rng, kRate), bounds.max_arrival_rate);
      spec.params.zipf_s = std::min(pick(rng, kZipf), bounds.max_zipf_s);
      spec.params.mempool_cap =
          std::min(pick(rng, kPool), bounds.max_mempool_cap);
      // Load-aware re-draw, double-gated like its parent axis and drawn
      // only where it can act: an open-loop source feeding a load window
      // plus at least one epoch boundary to plan at.
      if (bounds.rebalance_fraction > 0.0 && spec.epochs > 1 &&
          rng.chance(bounds.rebalance_fraction)) {
        constexpr std::array<std::uint32_t, 3> kMoves = {2, 4, 6};
        spec.params.rebalance = true;
        spec.params.rebalance_moves =
            std::min(pick(rng, kMoves), bounds.max_rebalance_moves);
        spec.params.rebalance_split_budget =
            bounds.max_split_budget > 0 && rng.chance(0.5)
                ? std::min<std::uint32_t>(1, bounds.max_split_budget)
                : 0;
      }
    }

    const CorruptBudget budget = corrupt_budget(spec);
    if (spec_failure_tail(spec.params.total_nodes(), budget.misvoters,
                          budget.corrupt, spec.params.m, spec.params.c,
                          spec.params.referee_size) <=
        bounds.max_committee_failure) {
      return spec;
    }
  }
  // Unreachable in practice: an honest spec always passes the filter.
  ScenarioSpec fallback;
  fallback.name = "fuzz";
  return fallback;
}

}  // namespace cyc::fuzz
