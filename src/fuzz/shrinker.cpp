#include "fuzz/shrinker.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "harness/runner.hpp"

namespace cyc::fuzz {

namespace {

using harness::ScenarioEvent;
using harness::ScenarioSpec;

/// Shared shrink state: the current minimal spec plus the budget
/// bookkeeping every pass updates through `try_candidate`.
struct Shrinker {
  ScenarioSpec current;
  const std::string& invariant;
  const Oracle& oracle;
  const ShrinkOptions& options;
  std::size_t attempts = 0;
  std::size_t accepted = 0;
  bool exhausted = false;

  bool budget_left() {
    if (attempts >= options.max_attempts) exhausted = true;
    return !exhausted;
  }

  bool still_fails(const ScenarioSpec& candidate) {
    attempts += 1;
    for (const auto& violation : oracle(candidate)) {
      if (violation.invariant == invariant) return true;
    }
    return false;
  }

  /// Accept `candidate` as the new current spec iff it still fails.
  bool try_candidate(const ScenarioSpec& candidate) {
    if (!budget_left()) return false;
    if (!still_fails(candidate)) return false;
    current = candidate;
    accepted += 1;
    return true;
  }

  // --- passes; each returns true when it changed the spec ---

  /// A multi-seed failure usually reproduces on one seed; keep the first
  /// seed that does.
  bool isolate_seed() {
    if (current.seeds.size() <= 1) return false;
    for (std::uint64_t seed : current.seeds) {
      ScenarioSpec candidate = current;
      candidate.seeds = {seed};
      if (try_candidate(candidate)) return true;
      if (exhausted) return false;
    }
    return false;
  }

  /// ddmin over the event schedule: remove chunks at halving granularity,
  /// then single events, until no removal reproduces (1-minimal).
  bool ddmin_events() {
    bool changed = false;
    std::size_t chunk = std::max<std::size_t>(current.events.size() / 2, 1);
    while (!current.events.empty()) {
      bool removed_any = false;
      for (std::size_t at = 0; at < current.events.size();) {
        ScenarioSpec candidate = current;
        const std::size_t take =
            std::min(chunk, candidate.events.size() - at);
        candidate.events.erase(candidate.events.begin() + at,
                               candidate.events.begin() + at + take);
        if (try_candidate(candidate)) {
          removed_any = true;
          changed = true;  // keep `at`: the next chunk slid into place
        } else {
          if (exhausted) return changed;
          at += take;
        }
      }
      if (!removed_any) {
        if (chunk == 1) break;
        chunk = std::max<std::size_t>(chunk / 2, 1);
      }
    }
    return changed;
  }

  /// Fewest rounds per epoch that still reproduce: halve greedily, then
  /// step down one at a time.
  bool reduce_rounds() {
    bool changed = false;
    while (current.rounds > 1) {
      ScenarioSpec candidate = current;
      candidate.rounds = std::max<std::size_t>(current.rounds / 2, 1);
      if (!try_candidate(candidate)) {
        if (exhausted) return changed;
        candidate = current;
        candidate.rounds = current.rounds - 1;
        if (!try_candidate(candidate)) break;
      }
      changed = true;
    }
    return changed;
  }

  bool reduce_epochs() {
    bool changed = false;
    while (current.epochs > 1) {
      ScenarioSpec candidate = current;
      candidate.epochs = current.epochs - 1;
      if (candidate.epochs == 1) {
        candidate.churn_rate = 0.0;
        candidate.params.standby = 0;
      }
      if (!try_candidate(candidate)) break;
      changed = true;
    }
    if (current.epochs > 1 && current.churn_rate > 0.0) {
      ScenarioSpec candidate = current;
      candidate.churn_rate = 0.0;
      candidate.params.standby = 0;
      changed |= try_candidate(candidate);
    }
    return changed;
  }

  /// Normalize one field back toward its default via `mutate`; keep the
  /// reduction only when the failure survives.
  template <typename Mutate>
  bool normalize(Mutate mutate) {
    ScenarioSpec candidate = current;
    mutate(candidate);
    if (candidate.to_json_text() == current.to_json_text()) return false;
    return try_candidate(candidate);
  }

  /// Reset every stress axis that is not load-bearing for the failure:
  /// adversary, workload knobs, delay regime, capacity skew, options.
  bool normalize_axes() {
    bool changed = false;
    const protocol::Params defaults;
    changed |= normalize([](ScenarioSpec& s) {
      s.adversary = protocol::AdversaryConfig{};
      s.adversary.mix.clear();
      s.adversary.corrupt_fraction = 0.0;
    });
    if (exhausted) return changed;
    // A narrower mix may suffice: try each single behaviour.
    if (current.adversary.mix.size() > 1) {
      for (const auto& entry : std::vector<protocol::AdversaryConfig::Weight>(
               current.adversary.mix)) {
        changed |= normalize([&](ScenarioSpec& s) {
          s.adversary.mix = {entry};
        });
        if (exhausted) return changed;
        if (current.adversary.mix.size() == 1) break;
      }
    }
    changed |= normalize([](ScenarioSpec& s) {
      s.adversary.forced_corrupt_leader_fraction = -1.0;
    });
    if (exhausted) return changed;
    changed |= normalize([&](ScenarioSpec& s) {
      s.params.cross_shard_fraction = defaults.cross_shard_fraction;
    });
    if (exhausted) return changed;
    changed |= normalize([&](ScenarioSpec& s) {
      s.params.invalid_fraction = 0.0;
    });
    if (exhausted) return changed;
    changed |= normalize([&](ScenarioSpec& s) {
      s.params.capacity_min = defaults.capacity_min;
      s.params.capacity_max = defaults.capacity_max;
    });
    if (exhausted) return changed;
    changed |= normalize([&](ScenarioSpec& s) {
      s.params.delays = net::DelayModel{};
    });
    if (exhausted) return changed;
    changed |= normalize([&](ScenarioSpec& s) {
      s.params.faults = protocol::FaultProfile{};
    });
    if (exhausted) return changed;
    changed |= normalize([&](ScenarioSpec& s) {
      s.options = protocol::EngineOptions{};
    });
    if (exhausted) return changed;
    changed |= normalize([&](ScenarioSpec& s) {
      if (s.params.standby > 0 && s.epochs <= 1) s.params.standby = 0;
    });
    return changed;
  }
};

}  // namespace

Oracle default_oracle() {
  return [](const ScenarioSpec& spec) {
    std::vector<harness::Violation> violations;
    for (std::uint64_t seed : spec.seeds) {
      const harness::ScenarioOutcome outcome =
          harness::run_scenario(spec, seed);
      violations.insert(violations.end(), outcome.violations.begin(),
                        outcome.violations.end());
    }
    return violations;
  };
}

ShrinkResult shrink(const ScenarioSpec& spec, const std::string& invariant,
                    const Oracle& oracle, const ShrinkOptions& options) {
  Shrinker state{spec, invariant, oracle, options};
  if (!state.still_fails(spec)) {
    throw std::invalid_argument(
        "shrink: spec does not flag invariant '" + invariant + "'");
  }
  // Loop every pass to a fixpoint: a later pass (e.g. dropping the
  // adversary) can unlock an earlier one (e.g. fewer rounds).
  bool changed = true;
  while (changed && !state.exhausted) {
    changed = false;
    changed |= state.isolate_seed();
    changed |= state.ddmin_events();
    changed |= state.reduce_rounds();
    changed |= state.reduce_epochs();
    changed |= state.normalize_axes();
  }
  ShrinkResult result;
  result.spec = std::move(state.current);
  result.invariant = invariant;
  result.attempts = state.attempts;
  result.accepted = state.accepted;
  result.exhausted = state.exhausted;
  return result;
}

}  // namespace cyc::fuzz
