// Fuzz campaign: sample a budget of threat-model-bounded specs, run
// every (spec, seed) point through the invariant harness, and shrink
// each failure to a minimal replayable repro.
//
// The whole campaign is a pure function of (seed, budget, bounds): specs
// are generated from index-forked rng streams, points run on the
// parallel_sweep pool with index-ordered results, and failures shrink
// sequentially — so the JSON artifact is byte-identical across runs and
// thread counts, the same contract the scenario matrix keeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/shrinker.hpp"

namespace cyc::fuzz {

struct CampaignOptions {
  std::uint64_t seed = 1;    ///< campaign root seed
  std::size_t budget = 200;  ///< specs to sample and execute
  unsigned threads = 0;      ///< sweep pool size (0 = hardware)
  FuzzBounds bounds;
  bool shrink_failures = true;
  ShrinkOptions shrink;
};

struct FuzzFailure {
  std::size_t index = 0;            ///< spec index within the campaign
  harness::ScenarioSpec original;   ///< as generated
  std::vector<harness::Violation> violations;  ///< from the original run
  ShrinkResult shrunk;              ///< vs violations.front().invariant
};

struct CampaignResult {
  std::size_t specs_run = 0;
  std::size_t points_run = 0;  ///< (spec, seed) executions
  std::vector<FuzzFailure> failures;

  bool all_green() const { return failures.empty(); }
};

CampaignResult run_campaign(const CampaignOptions& options);

/// Deterministic JSON artifact: campaign configuration, per-spec
/// verdicts, and for each failure the original + shrunk specs.
std::string campaign_json(const CampaignOptions& options,
                          const CampaignResult& result);

/// Write one replayable JSON spec per failure into `dir` (created if
/// missing) — the shrunk repro, named after the failing spec and loaded
/// back with `scenario_runner --spec`. Returns the paths written.
/// Throws std::runtime_error on I/O failure.
std::vector<std::string> write_failure_corpus(const CampaignResult& result,
                                              const std::string& dir);

}  // namespace cyc::fuzz
