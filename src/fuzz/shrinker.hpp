// Failure shrinking: delta-debug a red ScenarioSpec down to a minimal
// reproducing spec.
//
// Given a spec on which some invariant went red, the shrinker applies
// reduction passes — seed isolation, ddmin over the event schedule,
// round / epoch reduction, and per-field normalization of every axis
// back toward its default — keeping a candidate only when the *same
// invariant identifier* still fires, and looping the passes to a
// fixpoint. The result is 1-minimal with respect to the reduction
// operators: no single further reduction still reproduces the failure.
//
// The failure oracle is injectable so tests can prove both minimality
// (synthetic oracles with known minimal cores) and non-vacuity (a
// planted forged-handoff violation must survive shrinking with its
// identifier intact).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/invariants.hpp"
#include "harness/scenario.hpp"

namespace cyc::fuzz {

/// Execute a spec and report every invariant violation it produces.
using Oracle =
    std::function<std::vector<harness::Violation>(const harness::ScenarioSpec&)>;

/// The production oracle: harness::run_scenario over each of the spec's
/// seeds, violations concatenated in seed order.
Oracle default_oracle();

struct ShrinkOptions {
  /// Oracle-invocation budget; shrinking stops early (with `exhausted`
  /// set) when it is spent, returning the best spec found so far.
  std::size_t max_attempts = 1000;
};

struct ShrinkResult {
  harness::ScenarioSpec spec;  ///< minimal spec still flagging `invariant`
  std::string invariant;       ///< the preserved identifier
  std::size_t attempts = 0;    ///< oracle invocations spent
  std::size_t accepted = 0;    ///< reductions kept
  bool exhausted = false;      ///< budget ran out before the fixpoint
};

/// Shrink `spec` while preserving a red `invariant`. Precondition:
/// oracle(spec) flags `invariant` (throws std::invalid_argument
/// otherwise — shrinking a green spec would "minimize" to anything).
ShrinkResult shrink(const harness::ScenarioSpec& spec,
                    const std::string& invariant, const Oracle& oracle,
                    const ShrinkOptions& options = {});

}  // namespace cyc::fuzz
