// Scenario fuzzer: threat-model-bounded random ScenarioSpec sampling.
//
// The harness's hand-written matrix sweeps a fixed grid; the paper's
// security argument quantifies over *all* adversarial schedules inside
// the §III threat model. The generator samples that space — committee
// shapes, delay regimes, adversary mixes, workload knobs, epoch
// lifecycles and mid-run ScenarioEvent schedules — from a seeded
// rng::Stream, so a campaign is reproducible from (seed, index) alone.
//
// Every sampled spec is kept inside the threat model: the adversary
// fraction stays below the honest-majority bound, and shapes whose
// fair-draw corrupt-majority tail (exact hypergeometric, Eq. 3 — the
// same computation the epoch invariants gate on) is non-negligible are
// rejected and resampled. A red invariant on a generated spec therefore
// indicts the protocol, not the scenario.
#pragma once

#include "harness/scenario.hpp"
#include "support/rng.hpp"

namespace cyc::fuzz {

/// Sampling bounds (§III threat model plus wall-clock caps). Defaults
/// are what scripts/run_fuzz.sh and the ctest smoke test run.
struct FuzzBounds {
  /// Genesis corruption ceiling; strictly below the 1/3 bound (§III-C).
  double max_corrupt_fraction = 0.30;
  /// Reject a sampled shape when the per-round corrupt-majority tail —
  /// m * P[committee majority misvotes] + P[C_R majority misvotes],
  /// exact hypergeometric over the misvoting corrupt count plus every
  /// scheduled event corruption — exceeds this. Keeps tail events
  /// (which the checker would rightly flag as safety violations)
  /// vanishingly unlikely across a whole campaign.
  double max_committee_failure = 1e-4;
  std::size_t max_rounds = 4;        ///< per epoch
  std::size_t max_epochs = 3;
  double max_churn_rate = 0.25;      ///< per boundary, grid-quantized
  std::size_t max_events = 3;        ///< mid-run corruption schedule
  std::size_t max_seeds = 2;         ///< independent executions per spec
  /// Sample the §VIII extension toggles (precommunication / parallel
  /// blocks) and the uniform-leader ablation into EngineOptions.
  bool fuzz_options = true;
  /// Fault-fabric axes (src/net/faults.*): partitions cut whole
  /// committees (the quorum-relevant island), crash-restart pairs probe
  /// the catch-up lifecycle, blackouts silence individual nodes, and a
  /// probabilistic profile losses the wide-area link classes. Sampled
  /// schedules are legal by construction: restarts trail their crash by
  /// two rounds and partitions heal via duration or an explicit heal —
  /// and they stay legal under ddmin (a restart without its crash is a
  /// no-op; a partition without its heal expires on its own).
  std::size_t max_partitions = 1;
  std::size_t max_crash_restarts = 1;
  std::size_t max_blackouts = 1;
  double max_drop = 0.1;             ///< per-message loss ceiling
  /// Open-loop sustained-traffic axes (Params::arrival_rate / zipf_s /
  /// mempool_cap, src/ledger/README.md). Off by default — a zero
  /// fraction draws nothing from the stream, so existing campaign
  /// corpora stay byte-identical; campaigns opt in by raising it.
  double openloop_fraction = 0.0;  ///< P[spec runs the open-loop source]
  double max_arrival_rate = 0.3;   ///< arrivals per unit simulated time
  double max_zipf_s = 1.5;         ///< account-popularity skew ceiling
  std::uint32_t max_mempool_cap = 64;
  /// Load-aware re-draw axis (Params::rebalance, src/epoch/rebalance.*).
  /// Off by default for the same byte-stability reason; drawn only on
  /// specs that already sampled an open-loop source and multiple epochs
  /// (the planner is a no-op without a load window and a boundary).
  double rebalance_fraction = 0.0;  ///< P[open-loop multi-epoch spec rebalances]
  std::uint32_t max_rebalance_moves = 6;
  std::uint32_t max_split_budget = 1;
};

/// Sample one spec. Deterministic in (rng state, bounds); the caller
/// names the spec (the campaign uses "fuzz/s<seed>-<index>"). All
/// floating-point fields come from short decimal grids so the spec
/// round-trips byte-identically through its JSON encoding.
harness::ScenarioSpec generate_spec(rng::Stream& rng,
                                    const FuzzBounds& bounds = {});

/// The per-round fair-draw failure tail the generator filters on, for a
/// universe of `n` active seats split into m committees of size c plus
/// the referee committee: the safety tail (a group majority of
/// `misvoters`, who can vote an invalid transaction through) plus the
/// liveness tail (a group majority drawn from all `corrupt` seats, who
/// can silence a committee or C_R and stall recovery).
double spec_failure_tail(std::uint32_t n, std::uint32_t misvoters,
                         std::uint32_t corrupt, std::uint32_t m,
                         std::uint32_t c, std::uint32_t referee_size);

}  // namespace cyc::fuzz
