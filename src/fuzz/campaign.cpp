#include "fuzz/campaign.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "harness/runner.hpp"
#include "support/parallel.hpp"

namespace cyc::fuzz {

namespace {

/// Campaign spec names: fuzz/s<seed>-<index>, stable across runs.
std::string spec_name(std::uint64_t seed, std::size_t index) {
  return "fuzz/s" + std::to_string(seed) + "-" + std::to_string(index);
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  // Generation is sequential and index-forked: spec i depends only on
  // (seed, i, bounds), never on how many tries spec i-1 consumed.
  const rng::Stream root(options.seed);
  std::vector<harness::ScenarioSpec> specs;
  specs.reserve(options.budget);
  for (std::size_t i = 0; i < options.budget; ++i) {
    rng::Stream stream = root.fork(static_cast<std::uint64_t>(i));
    harness::ScenarioSpec spec = generate_spec(stream, options.bounds);
    spec.name = spec_name(options.seed, i);
    specs.push_back(std::move(spec));
  }

  // The campaign verdict and the shrink predicate share one oracle, so
  // "the shrunk repro reproduces the campaign failure" holds by
  // construction.
  const Oracle oracle = default_oracle();
  const std::vector<std::vector<harness::Violation>> runs =
      support::parallel_sweep(
          specs.size(), [&](std::size_t i) { return oracle(specs[i]); },
          options.threads);

  CampaignResult result;
  result.specs_run = specs.size();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    result.points_run += specs[i].seeds.size();
    if (runs[i].empty()) continue;
    FuzzFailure failure;
    failure.index = i;
    failure.original = specs[i];
    failure.violations = runs[i];
    const std::string& invariant = failure.violations.front().invariant;
    if (options.shrink_failures) {
      failure.shrunk = shrink(specs[i], invariant, oracle, options.shrink);
    } else {
      failure.shrunk.spec = specs[i];
      failure.shrunk.invariant = invariant;
    }
    // Self-describing repro: the spec name carries the red identifier.
    failure.shrunk.spec.name = specs[i].name + "/" + invariant;
    result.failures.push_back(std::move(failure));
  }
  return result;
}

std::string campaign_json(const CampaignOptions& options,
                          const CampaignResult& result) {
  support::JsonWriter json;
  json.begin_object();
  json.field("harness", "scenario_fuzz");
  json.field("seed", options.seed);
  json.field("budget", static_cast<std::uint64_t>(options.budget));
  json.field("max_corrupt_fraction", options.bounds.max_corrupt_fraction);
  json.field("max_committee_failure", options.bounds.max_committee_failure);
  json.field("specs_run", static_cast<std::uint64_t>(result.specs_run));
  json.field("points_run", static_cast<std::uint64_t>(result.points_run));
  json.field("failures", static_cast<std::uint64_t>(result.failures.size()));
  json.field("all_green", result.all_green());
  json.key("failing_specs");
  json.begin_array();
  for (const auto& failure : result.failures) {
    json.begin_object();
    json.field("index", static_cast<std::uint64_t>(failure.index));
    json.field("invariant", failure.shrunk.invariant);
    json.field("violations",
               static_cast<std::uint64_t>(failure.violations.size()));
    json.key("first_violation");
    json.begin_object();
    json.field("invariant", failure.violations.front().invariant);
    json.field("round", failure.violations.front().round);
    json.field("detail", failure.violations.front().detail);
    json.end_object();
    json.field("shrink_attempts",
               static_cast<std::uint64_t>(failure.shrunk.attempts));
    json.field("shrink_accepted",
               static_cast<std::uint64_t>(failure.shrunk.accepted));
    json.field("shrink_exhausted", failure.shrunk.exhausted);
    json.field("events_before",
               static_cast<std::uint64_t>(failure.original.events.size()));
    json.field("events_after",
               static_cast<std::uint64_t>(failure.shrunk.spec.events.size()));
    json.key("original");
    failure.original.to_json(json);
    json.key("shrunk");
    failure.shrunk.spec.to_json(json);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::vector<std::string> write_failure_corpus(const CampaignResult& result,
                                              const std::string& dir) {
  std::vector<std::string> paths;
  if (result.failures.empty()) return paths;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("fuzz: cannot create corpus directory " + dir +
                             ": " + ec.message());
  }
  for (const auto& failure : result.failures) {
    // fuzz/s1-17/epoch-handoff-continuity -> s1-17-epoch-handoff-continuity
    std::string stem = failure.shrunk.spec.name;
    if (stem.rfind("fuzz/", 0) == 0) stem = stem.substr(5);
    for (char& c : stem) {
      if (c == '/' || c == ' ') c = '-';
    }
    const std::string path =
        (std::filesystem::path(dir) / (stem + ".json")).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("fuzz: cannot write " + path);
    out << failure.shrunk.spec.to_json_text() << '\n';
    if (!out.flush()) throw std::runtime_error("fuzz: cannot write " + path);
    paths.push_back(path);
  }
  return paths;
}

}  // namespace cyc::fuzz
