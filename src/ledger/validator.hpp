// The authentication function V (§III-D).
//
// "All processors have access to an authentication function V to verify
// whether a transaction is legitimate, e.g., the sum of all inputs of the
// transaction is no less than the sum of all outputs and there is no
// double-spending."
#pragma once

#include <string>

#include "ledger/types.hpp"
#include "ledger/utxo.hpp"

namespace cyc::ledger {

enum class TxVerdict : std::uint8_t {
  kValid = 0,
  kMalformed,        // empty inputs/outputs or zero-value output
  kBadSignature,     // spender signature fails
  kUnknownInput,     // input not in the UTXO set
  kNotOwner,         // input owned by someone other than the spender
  kOverspend,        // sum(outputs) > sum(inputs)
  kInternalDoubleSpend,  // same outpoint used twice inside the tx
};

std::string verdict_name(TxVerdict v);

/// Full verification of `tx` against the spender shard's UTXO view.
TxVerdict verify_tx(const Transaction& tx, const UtxoStore& inputs_view);

/// Convenience wrapper returning the paper's boolean V(tx).
inline bool V(const Transaction& tx, const UtxoStore& inputs_view) {
  return verify_tx(tx, inputs_view) == TxVerdict::kValid;
}

/// Fee of a (valid) transaction: sum(inputs) - sum(outputs).
Amount tx_fee(const Transaction& tx, const UtxoStore& inputs_view);

}  // namespace cyc::ledger
