#include "ledger/types.hpp"

#include "support/serde.hpp"

namespace cyc::ledger {

ShardId shard_of(const crypto::PublicKey& pk, std::uint32_t m) {
  const crypto::Digest d =
      crypto::sha256_concat({bytes_of("cyc.shard"), be64(pk.y)});
  return static_cast<ShardId>(crypto::digest_prefix_u64(d) % m);
}

Bytes Transaction::body_bytes() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(inputs.size()));
  for (const auto& in : inputs) {
    w.bytes(crypto::digest_to_bytes(in.tx));
    w.u32(in.index);
  }
  w.u32(static_cast<std::uint32_t>(outputs.size()));
  for (const auto& out : outputs) {
    w.u64(out.owner.y);
    w.u64(out.amount);
  }
  w.u64(spender.y);
  return w.take();
}

Bytes Transaction::serialize() const {
  Writer w;
  w.bytes(body_bytes());
  w.u64(sig.r);
  w.u64(sig.s);
  return w.take();
}

Transaction Transaction::deserialize(BytesView b) {
  Reader outer(b);
  const Bytes body = outer.bytes();
  Transaction tx;
  Reader rd(body);
  const std::uint32_t n_in = rd.u32();
  tx.inputs.reserve(n_in);
  for (std::uint32_t i = 0; i < n_in; ++i) {
    OutPoint op;
    op.tx = crypto::digest_from_bytes(rd.bytes());
    op.index = rd.u32();
    tx.inputs.push_back(op);
  }
  const std::uint32_t n_out = rd.u32();
  tx.outputs.reserve(n_out);
  for (std::uint32_t i = 0; i < n_out; ++i) {
    TxOut out;
    out.owner.y = rd.u64();
    out.amount = rd.u64();
    tx.outputs.push_back(out);
  }
  tx.spender.y = rd.u64();
  tx.sig.r = outer.u64();
  tx.sig.s = outer.u64();
  return tx;
}

TxId Transaction::id() const { return crypto::sha256(body_bytes()); }

std::set<ShardId> Transaction::output_shards(std::uint32_t m) const {
  std::set<ShardId> shards;
  for (const auto& out : outputs) shards.insert(shard_of(out.owner, m));
  return shards;
}

ShardId Transaction::input_shard(std::uint32_t m) const {
  return shard_of(spender, m);
}

bool Transaction::is_intra_shard(std::uint32_t m) const {
  const ShardId home = input_shard(m);
  for (const auto& out : outputs) {
    if (shard_of(out.owner, m) != home) return false;
  }
  return true;
}

void sign_tx(Transaction& tx, const crypto::SecretKey& sk) {
  tx.sig = crypto::sign(sk, tx.body_bytes());
}

bool check_tx_signature(const Transaction& tx) {
  return crypto::verify_cached(tx.spender, tx.body_bytes(), tx.sig);
}

}  // namespace cyc::ledger
