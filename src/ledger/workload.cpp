#include "ledger/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace cyc::ledger {

namespace {
std::string key_of(const TxId& id) {
  return std::string(id.begin(), id.end());
}
}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, std::uint64_t seed)
    : config_(config), rng_(rng::Stream(seed).fork("workload")) {
  if (config_.shards == 0 || config_.users == 0) {
    throw std::invalid_argument("workload: shards and users must be > 0");
  }
  shard_users_.resize(config_.shards);
  users_.reserve(config_.users);
  for (std::uint32_t u = 0; u < config_.users; ++u) {
    rng::Stream key_rng = rng_.fork(u);
    users_.push_back(crypto::KeyPair::generate(key_rng));
    const ShardId shard = shard_of(users_.back().pk, config_.shards);
    user_shard_.push_back(shard);
    shard_users_[shard].push_back(u);
  }
  // Some shard could be empty with few users; re-home one user if so to
  // keep the generator able to target every shard.
  for (ShardId s = 0; s < config_.shards; ++s) {
    if (shard_users_[s].empty()) {
      throw std::invalid_argument(
          "workload: a shard has no users; increase users count");
    }
  }

  genesis_.reserve(config_.shards);
  for (ShardId s = 0; s < config_.shards; ++s) {
    genesis_.emplace_back(s, config_.shards);
  }
  pool_.resize(config_.users);

  // Genesis grants: synthetic coinbase outpoints, one per user per slot.
  for (std::uint32_t u = 0; u < config_.users; ++u) {
    for (std::uint32_t k = 0; k < config_.outputs_per_user; ++k) {
      const crypto::Digest d = crypto::sha256_concat(
          {bytes_of("cyc.genesis"), be64(u), be64(k)});
      const OutPoint op{d, 0};
      const TxOut out{users_[u].pk, config_.initial_amount};
      genesis_[user_shard_[u]].add(op, out);
      pool_[u].push_back(Spendable{op, config_.initial_amount, u});
    }
  }
}

void WorkloadGenerator::install_shard_map(
    std::shared_ptr<const ShardMap> map) {
  if (!map || map->shards() != config_.shards) {
    throw std::invalid_argument(
        "workload: shard map does not match the configured shard count");
  }
  map_ = std::move(map);
  for (auto& bucket : shard_users_) bucket.clear();
  for (std::uint32_t u = 0; u < config_.users; ++u) {
    const ShardId shard = map_->shard(users_[u].pk);
    user_shard_[u] = shard;
    shard_users_[shard].push_back(u);
  }
  for (ShardId s = 0; s < config_.shards; ++s) {
    if (shard_users_[s].empty()) {
      throw std::invalid_argument(
          "workload: shard map leaves a shard with no users");
    }
  }
}

std::size_t WorkloadGenerator::spendable_outputs() const {
  std::size_t total = 0;
  for (const auto& q : pool_) total += q.size();
  return total;
}

std::size_t WorkloadGenerator::pick_user_with_funds() {
  // Bounded retries, then linear scan to stay deterministic & total.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::size_t u =
        static_cast<std::size_t>(rng_.below(users_.size()));
    if (!pool_[u].empty()) return u;
  }
  for (std::size_t u = 0; u < users_.size(); ++u) {
    if (!pool_[u].empty()) return u;
  }
  return users_.size();  // pool dry
}

std::size_t WorkloadGenerator::pick_user_in_shard(ShardId shard) {
  const auto& candidates = shard_users_[shard];
  return candidates[static_cast<std::size_t>(rng_.below(candidates.size()))];
}

std::size_t WorkloadGenerator::pick_user_not_in_shard(ShardId shard) {
  if (config_.shards == 1) return pick_user_in_shard(0);
  for (;;) {
    const ShardId s =
        static_cast<ShardId>(rng_.below(config_.shards));
    if (s != shard) return pick_user_in_shard(s);
  }
}

Transaction WorkloadGenerator::make_valid_tx(bool cross_shard) {
  const std::size_t spender = pick_user_with_funds();
  if (spender == users_.size()) return Transaction{};  // empty sentinel
  return make_valid_tx_from(spender, cross_shard);
}

Transaction WorkloadGenerator::make_valid_tx_from(std::size_t spender,
                                                  bool cross_shard) {
  Transaction tx;
  tx.spender = users_[spender].pk;
  Spendable input = pool_[spender].front();
  pool_[spender].pop_front();
  tx.inputs.push_back(input.op);

  Amount budget = input.amount;
  if (budget <= config_.fee) {
    // Dust: burn it entirely as fee with a 1-unit self output.
    tx.outputs.push_back(TxOut{users_[spender].pk, budget});
  } else {
    budget -= config_.fee;
    const ShardId home = shard_of_user(spender);
    const std::size_t receiver = cross_shard
                                     ? pick_user_not_in_shard(home)
                                     : pick_user_in_shard(home);
    const Amount pay = 1 + rng_.below(budget);
    tx.outputs.push_back(TxOut{users_[receiver].pk, pay});
    if (budget > pay) {
      tx.outputs.push_back(TxOut{users_[spender].pk, budget - pay});
    }
  }
  sign_tx(tx, users_[spender].sk);

  in_flight_[key_of(tx.id())] = {input};
  ground_truth_[key_of(tx.id())] = true;
  return tx;
}

Transaction WorkloadGenerator::make_invalid_tx(InvalidKind kind) {
  Transaction tx;
  const std::size_t spender =
      static_cast<std::size_t>(rng_.below(users_.size()));
  tx.spender = users_[spender].pk;
  switch (kind) {
    case InvalidKind::kUnknownInput: {
      const crypto::Digest fake = crypto::sha256_concat(
          {bytes_of("cyc.fake"), be64(rng_.next())});
      tx.inputs.push_back(OutPoint{fake, 0});
      tx.outputs.push_back(TxOut{users_[spender].pk, 1});
      sign_tx(tx, users_[spender].sk);
      break;
    }
    case InvalidKind::kBadSignature: {
      const std::size_t victim = pick_user_with_funds();
      if (victim == users_.size()) return make_invalid_tx(InvalidKind::kUnknownInput);
      // Spend the victim's output but sign with the attacker's key;
      // do NOT remove it from the pool — the theft must fail.
      const Spendable& target = pool_[victim].front();
      tx.spender = users_[victim].pk;
      tx.inputs.push_back(target.op);
      tx.outputs.push_back(TxOut{users_[spender].pk, target.amount});
      sign_tx(tx, users_[spender].sk);  // wrong key
      break;
    }
    case InvalidKind::kOverspend: {
      const std::size_t victim = pick_user_with_funds();
      if (victim == users_.size()) return make_invalid_tx(InvalidKind::kUnknownInput);
      const Spendable& target = pool_[victim].front();
      tx.spender = users_[victim].pk;
      tx.inputs.push_back(target.op);
      tx.outputs.push_back(TxOut{users_[victim].pk, target.amount * 2 + 1});
      sign_tx(tx, users_[victim].sk);
      break;
    }
    case InvalidKind::kDoubleSpendPair: {
      // Re-spend an outpoint some in-flight transaction already uses;
      // both spends verify individually against the confirmed state.
      if (in_flight_.empty()) {
        return make_invalid_tx(InvalidKind::kUnknownInput);
      }
      const auto& consumed = in_flight_.begin()->second;
      if (consumed.empty()) return make_invalid_tx(InvalidKind::kUnknownInput);
      const Spendable& target = consumed.front();
      tx.spender = users_[target.user].pk;
      tx.inputs.push_back(target.op);
      tx.outputs.push_back(TxOut{users_[target.user].pk, target.amount});
      sign_tx(tx, users_[target.user].sk);
      break;
    }
  }
  ground_truth_[key_of(tx.id())] = false;
  return tx;
}

std::vector<Transaction> WorkloadGenerator::next_batch(std::size_t count) {
  std::vector<Transaction> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng_.chance(config_.invalid_fraction)) {
      const auto kind = static_cast<InvalidKind>(rng_.below(4));
      batch.push_back(make_invalid_tx(kind));
      continue;
    }
    Transaction tx = make_valid_tx(rng_.chance(config_.cross_shard_fraction));
    if (tx.inputs.empty()) {  // pool dry: the deficit is real offered load
      shortfall_ += count - batch.size();
      break;
    }
    batch.push_back(std::move(tx));
  }
  return batch;
}

Transaction WorkloadGenerator::next_tx_from(std::size_t user,
                                            bool cross_shard) {
  if (user < pool_.size() && !pool_[user].empty()) {
    return make_valid_tx_from(user, cross_shard);
  }
  // The requested account has no confirmed output: count the miss (the
  // skew the caller asked for is not being served) and keep the offered
  // load up by spending from any funded user instead.
  shortfall_ += 1;
  return make_valid_tx(cross_shard);
}

void WorkloadGenerator::mark_committed(const Transaction& tx) {
  const std::string key = key_of(tx.id());
  in_flight_.erase(key);
  // New outputs become spendable by their owners.
  const TxId id = tx.id();
  for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
    const auto& out = tx.outputs[i];
    for (std::size_t u = 0; u < users_.size(); ++u) {
      if (users_[u].pk == out.owner) {
        pool_[u].push_back(Spendable{OutPoint{id, i}, out.amount, u});
        break;
      }
    }
  }
}

void WorkloadGenerator::mark_rejected(const Transaction& tx) {
  const std::string key = key_of(tx.id());
  auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return;  // invalid txs consumed nothing
  for (const auto& sp : it->second) {
    pool_[sp.user].push_back(sp);
  }
  in_flight_.erase(it);
}

bool WorkloadGenerator::is_ground_truth_valid(const TxId& id) const {
  auto it = ground_truth_.find(key_of(id));
  return it != ground_truth_.end() && it->second;
}

}  // namespace cyc::ledger
