// Light client: header-only verification for external users.
//
// A user who submitted a transaction (Fig. 2 step 1) does not replay
// the protocol; it tracks the header chain released with each block and
// checks an inclusion proof — O(log |txs|) hashes per payment, the
// standard SPV argument enabled by the Merkle body root of §IV-G.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ledger/block.hpp"

namespace cyc::ledger {

class LightClient {
 public:
  LightClient();

  /// Accept the next header. Rejects (returns false) any header that
  /// does not extend the current tip with round+1 and a matching
  /// prev-hash — a fork or replay attempt.
  bool accept_header(const BlockHeader& header);

  std::size_t height() const { return headers_.size() - 1; }
  const BlockHeader& tip() const { return headers_.back(); }

  /// Verify that `tx` is included in the block at `height` given an
  /// inclusion proof produced by the full node.
  bool verify_payment(std::size_t height, const Transaction& tx,
                      const crypto::MerkleProof& proof) const;

  /// The randomness committed at `height` (used by clients to verify
  /// next-round role lotteries without trusting any single node).
  std::optional<crypto::Digest> randomness_at(std::size_t height) const;

 private:
  std::vector<BlockHeader> headers_;
};

}  // namespace cyc::ledger
