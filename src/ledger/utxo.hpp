// Per-shard UTXO store.
//
// Each committee maintains the UTXO set of the shard it is responsible
// for (§III-D); after a block is released, members delete spent outputs
// and append the newly created outputs belonging to their shard (§IV-G).
//
// The store keeps a *rolling* content digest: an XOR-combined multiset
// hash over per-entry digests, folded into the final digest together
// with the entry count. XOR is commutative and self-inverse, so add /
// spend update the accumulator in O(1) and the digest is independent of
// insertion order — exactly the set semantics the end-of-round UTXO list
// consensus needs. `full_digest()` recomputes the same value from
// scratch and stays as the debug cross-check.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ledger/shard_map.hpp"
#include "ledger/types.hpp"

namespace cyc::ledger {

class UtxoStore {
 public:
  UtxoStore() = default;
  UtxoStore(ShardId shard, std::uint32_t m) : shard_(shard), m_(m) {}

  ShardId shard() const { return shard_; }
  std::size_t size() const { return utxos_.size(); }

  /// Install the epoch's account→shard map: membership checks in add()
  /// and apply() consult it instead of the static hash. Without a map
  /// (or with an identity map) behaviour is byte-identical to the seed.
  void attach_map(std::shared_ptr<const ShardMap> map) {
    map_ = std::move(map);
  }
  const std::shared_ptr<const ShardMap>& shard_map() const { return map_; }

  /// Home shard of an owner under the attached map (static hash when no
  /// map is attached).
  ShardId owner_shard(const crypto::PublicKey& pk) const {
    return map_ ? map_->shard(pk) : shard_of(pk, m_);
  }

  /// Look up an unspent output.
  std::optional<TxOut> get(const OutPoint& op) const;
  bool contains(const OutPoint& op) const { return utxos_.count(op) > 0; }

  /// Insert an output. Outputs whose owner is outside this store's shard
  /// are rejected (returns false) — a store only tracks its own shard.
  bool add(const OutPoint& op, const TxOut& out);

  /// Remove a spent output; returns false if it was not present.
  bool spend(const OutPoint& op);

  /// Apply a verified transaction: spend its inputs that live here and
  /// add its outputs that belong to this shard.
  void apply(const Transaction& tx);

  /// Total value stored.
  Amount total_value() const;

  /// Snapshot of all outpoints (deterministically ordered).
  std::vector<OutPoint> outpoints() const;

  /// Digest of the full store content — used for the end-of-round UTXO
  /// list consensus (§IV-G hand-off to the next partial set). O(1): reads
  /// the incrementally maintained accumulator.
  crypto::Digest digest() const;

  /// Recompute the digest from scratch (O(n)) — debug cross-check for the
  /// incremental accumulator; tests assert full_digest() == digest().
  crypto::Digest full_digest() const;

 private:
  /// Per-entry digest folded into the accumulator.
  static crypto::Digest entry_digest(const OutPoint& op, const TxOut& out);
  void fold(const crypto::Digest& d);  // XOR into the accumulator

  ShardId shard_ = 0;
  std::uint32_t m_ = 1;
  std::shared_ptr<const ShardMap> map_;  ///< null until an epoch attaches one
  std::unordered_map<OutPoint, TxOut, OutPointHash> utxos_;
  crypto::Digest acc_{};  ///< XOR of entry digests of the current content
};

}  // namespace cyc::ledger
