// Synthetic transaction workload (substitute for the paper's external
// users, see DESIGN.md §3).
//
// The generator maintains the true global ledger state: a pool of
// confirmed spendable outputs per user. Generated transactions spend only
// confirmed outputs, so every "honest" transaction is valid by
// construction; the engine reports back which transactions were committed
// so the pool stays consistent. Invalid transactions of three kinds can
// be injected to exercise the authentication function V and the voting /
// reputation machinery.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ledger/shard_map.hpp"
#include "ledger/types.hpp"
#include "ledger/utxo.hpp"
#include "support/rng.hpp"

namespace cyc::ledger {

enum class InvalidKind : std::uint8_t {
  kBadSignature,
  kUnknownInput,
  kOverspend,
  /// A second, correctly signed spend of an outpoint already consumed by
  /// an earlier in-flight transaction — individually V-valid, but one of
  /// the pair must be rejected (§VIII-B "relevant" transactions).
  kDoubleSpendPair,
};

struct WorkloadConfig {
  std::uint32_t shards = 4;
  std::uint32_t users = 64;          ///< total user keys
  std::uint32_t outputs_per_user = 4;
  Amount initial_amount = 1000;
  double cross_shard_fraction = 0.2;  ///< fraction of txs spanning shards
  double invalid_fraction = 0.0;      ///< fraction of injected invalid txs
  Amount fee = 1;                     ///< fee left on each transaction
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, std::uint64_t seed);

  /// Genesis UTXO stores, one per shard, reflecting the initial grants.
  const std::vector<UtxoStore>& genesis() const { return genesis_; }

  /// Generate up to `count` transactions (fewer if the spendable pool
  /// runs dry — every missing transaction is counted in shortfall()).
  /// Valid ones spend confirmed outputs only.
  std::vector<Transaction> next_batch(std::size_t count);

  /// Open-loop entry point: a valid spend from `user` when that user has
  /// confirmed funds; otherwise the request counts in shortfall() and
  /// falls back to any funded user (preserving offered load at the cost
  /// of the requested skew), returning the empty sentinel only when the
  /// whole pool is dry. `user` must be < config().users.
  Transaction next_tx_from(std::size_t user, bool cross_shard);

  /// Inject one ground-truth-invalid transaction (open-loop sources mix
  /// these in at their own rate; next_batch keeps drawing kinds
  /// internally from config().invalid_fraction).
  Transaction inject_invalid(InvalidKind kind) { return make_invalid_tx(kind); }

  /// Requested transactions the generator could not produce from the
  /// requested source: next_batch calls cut short by a dry pool and
  /// next_tx_from calls whose preferred user had no confirmed output.
  /// A silently deflated offered load looks exactly like a healthy
  /// under-loaded system in every throughput metric, so the open-loop
  /// engine surfaces this counter per round.
  std::uint64_t shortfall() const { return shortfall_; }

  /// Install the epoch's account→shard map: every shard lookup routes
  /// through it from now on, and the per-shard user buckets are rebuilt
  /// to match. Throws if the map's shard count disagrees with the
  /// config, or if the re-map would leave a shard with no users (the
  /// planner never emits such a plan).
  void install_shard_map(std::shared_ptr<const ShardMap> map);
  const std::shared_ptr<const ShardMap>& shard_map() const { return map_; }

  /// Home shard of `user` (arrival sources route by spender shard).
  /// Routes through the installed epoch map so the generator can never
  /// disagree with the engine; without a map it falls back to the
  /// construction-time hash cache.
  ShardId shard_of_user(std::size_t user) const {
    return map_ ? map_->shard(users_[user].pk) : user_shard_[user];
  }

  /// The construction-/install-time cache behind the per-shard user
  /// buckets. The invariant checker cross-checks it against the epoch
  /// map; it is not a routing source.
  ShardId cached_shard_of_user(std::size_t user) const {
    return user_shard_[user];
  }

  const crypto::PublicKey& user_pk(std::size_t user) const {
    return users_[user].pk;
  }

  /// TEST-ONLY: corrupt the cached shard of `user` without touching the
  /// map — forges the cache/map desync the `epoch-rebalance-mapping`
  /// invariant must flag.
  void force_cached_shard(std::size_t user, ShardId shard) {
    user_shard_[user] = shard;
  }

  /// Report that `tx` was committed: its outputs become spendable.
  void mark_committed(const Transaction& tx);

  /// Report that `tx` was rejected: its inputs return to the pool.
  void mark_rejected(const Transaction& tx);

  std::size_t spendable_outputs() const;
  std::uint32_t shards() const { return config_.shards; }
  const WorkloadConfig& config() const { return config_; }

  /// True ground truth: whether the generator built `tx` as a valid spend.
  bool is_ground_truth_valid(const TxId& id) const;

 private:
  struct Spendable {
    OutPoint op;
    Amount amount = 0;
    std::size_t user = 0;
  };

  Transaction make_valid_tx(bool cross_shard);
  Transaction make_valid_tx_from(std::size_t spender, bool cross_shard);
  Transaction make_invalid_tx(InvalidKind kind);
  std::size_t pick_user_with_funds();
  std::size_t pick_user_in_shard(ShardId shard);
  std::size_t pick_user_not_in_shard(ShardId shard);

  WorkloadConfig config_;
  rng::Stream rng_;
  std::shared_ptr<const ShardMap> map_;  ///< epoch map; null until installed
  std::vector<crypto::KeyPair> users_;
  std::vector<ShardId> user_shard_;
  std::vector<std::vector<std::size_t>> shard_users_;
  std::vector<UtxoStore> genesis_;
  // Spendable pool per user (confirmed, unspent).
  std::vector<std::deque<Spendable>> pool_;
  // Inputs consumed by in-flight txs: txid -> consumed spendables.
  std::unordered_map<std::string, std::vector<Spendable>> in_flight_;
  std::unordered_map<std::string, bool> ground_truth_;
  std::uint64_t shortfall_ = 0;
};

}  // namespace cyc::ledger
