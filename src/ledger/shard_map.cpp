#include "ledger/shard_map.hpp"

#include <algorithm>
#include <stdexcept>

#include "ledger/utxo.hpp"
#include "support/serde.hpp"

namespace cyc::ledger {

ShardId ShardMap::shard_key(std::uint64_t account) const {
  auto it = overrides_.find(account);
  if (it != overrides_.end()) return it->second;
  const crypto::Digest d =
      crypto::sha256_concat({bytes_of("cyc.shard"), be64(account)});
  return static_cast<ShardId>(crypto::digest_prefix_u64(d) % m_);
}

ShardMap ShardMap::apply(const std::vector<AccountMove>& moves) const {
  ShardMap next = *this;
  next.version_ += 1;
  for (const auto& mv : moves) {
    if (mv.to >= m_) {
      throw std::invalid_argument("shard_map: move target out of range");
    }
    // Canonical form: an override equal to the hash default is no
    // override at all.
    ShardMap hash_only;
    hash_only.m_ = m_;
    if (hash_only.shard_key(mv.account) == mv.to) {
      next.overrides_.erase(mv.account);
    } else {
      next.overrides_[mv.account] = mv.to;
    }
  }
  return next;
}

crypto::Digest ShardMap::digest() const {
  crypto::Sha256 ctx;
  ctx.update("cyc.shard.map");
  ctx.update_u64(m_);
  ctx.update_u64(version_);
  ctx.update_u64(overrides_.size());
  for (const auto& [account, shard] : overrides_) {  // std::map: sorted
    ctx.update_u64(account);
    ctx.update_u64(shard);
  }
  return ctx.finalize();
}

ShardId input_shard(const Transaction& tx, const ShardMap& map) {
  return map.shard(tx.spender);
}

std::set<ShardId> output_shards(const Transaction& tx, const ShardMap& map) {
  std::set<ShardId> shards;
  for (const auto& out : tx.outputs) shards.insert(map.shard(out.owner));
  return shards;
}

bool is_intra_shard(const Transaction& tx, const ShardMap& map) {
  const ShardId in = input_shard(tx, map);
  for (const auto& out : tx.outputs) {
    if (map.shard(out.owner) != in) return false;
  }
  return true;
}

std::uint64_t migrate_stores(std::vector<UtxoStore>& stores,
                             const ShardMap& old_map,
                             const std::shared_ptr<const ShardMap>& next,
                             const std::vector<AccountMove>& moves) {
  // Effective re-homes only: (account -> new shard) where old != new.
  std::map<std::uint64_t, ShardId> rehomed;
  for (const auto& mv : moves) {
    const ShardId before = old_map.shard_key(mv.account);
    const ShardId after = next->shard_key(mv.account);
    if (before != after) rehomed[mv.account] = after;
  }

  // Collect and remove migrating entries under the old map, keyed by
  // sorted outpoints so the spend order (and hence any failure mode) is
  // deterministic.
  struct Migrating {
    OutPoint op;
    TxOut out;
    ShardId to = 0;
  };
  std::vector<Migrating> migrating;
  for (auto& store : stores) {
    for (const OutPoint& op : store.outpoints()) {
      const auto out = store.get(op);
      auto it = rehomed.find(out->owner.y);
      if (it == rehomed.end()) continue;
      if (old_map.shard_key(out->owner.y) != store.shard()) continue;
      migrating.push_back(Migrating{op, *out, it->second});
      store.spend(op);
    }
  }

  // Swap every store onto the successor map, then re-insert each entry
  // at its new home.
  for (auto& store : stores) store.attach_map(next);
  for (const auto& entry : migrating) {
    stores[entry.to].add(entry.op, entry.out);
  }
  return static_cast<std::uint64_t>(migrating.size());
}

}  // namespace cyc::ledger
