#include "ledger/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cyc::ledger {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be > 0");
  if (s < 0.0) throw std::invalid_argument("zipf: exponent must be >= 0");
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_.push_back(total);
  }
}

std::size_t ZipfSampler::sample(rng::Stream& rng) const {
  const double u = rng.uniform() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return std::min(idx, cdf_.size() - 1);
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return (cdf_[rank] - lo) / cdf_.back();
}

OpenLoopSource::OpenLoopSource(OpenLoopConfig config,
                               WorkloadGenerator& workload, std::uint64_t seed)
    : config_(config),
      workload_(workload),
      zipf_(workload.config().users, config.zipf_s),
      rng_(rng::Stream(seed).fork("openloop")) {
  if (config_.arrival_rate <= 0.0) {
    throw std::invalid_argument("openloop: arrival_rate must be > 0");
  }
  // First inter-arrival gap; subsequent gaps are drawn as each arrival
  // is emitted, so the stream is independent of window slicing.
  next_arrival_ = -std::log(1.0 - rng_.uniform()) / config_.arrival_rate;
}

std::vector<Arrival> OpenLoopSource::arrivals_until(double until) {
  std::vector<Arrival> out;
  while (next_arrival_ < until) {
    Arrival arrival;
    arrival.time = next_arrival_;
    next_arrival_ += -std::log(1.0 - rng_.uniform()) / config_.arrival_rate;

    if (rng_.chance(config_.invalid_fraction)) {
      const auto kind = static_cast<InvalidKind>(rng_.below(4));
      arrival.tx = workload_.inject_invalid(kind);
    } else {
      const std::size_t user = zipf_.sample(rng_);
      arrival.tx = workload_.next_tx_from(
          user, rng_.chance(config_.cross_shard_fraction));
    }
    if (arrival.tx.inputs.empty()) {
      // Whole spendable pool dry: the arrival happened (the client sent
      // it) but no valid spend exists to represent it.
      exhausted_ += 1;
      continue;
    }
    generated_ += 1;
    out.push_back(std::move(arrival));
  }
  clock_ = until;
  return out;
}

}  // namespace cyc::ledger
