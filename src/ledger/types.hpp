// Transaction and UTXO types (problem definition, §III-D).
//
// Users are partitioned into m shards by the hash of their public key;
// the committee in charge of a shard maintains that shard's UTXO set. A
// transaction is *intra-shard* when all of its inputs and outputs touch a
// single shard, and *cross-shard* otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace cyc::ledger {

using Amount = std::uint64_t;
using ShardId = std::uint32_t;
using TxId = crypto::Digest;

/// Shard a public key belongs to: H(pk) mod m.
ShardId shard_of(const crypto::PublicKey& pk, std::uint32_t m);

struct OutPoint {
  TxId tx{};
  std::uint32_t index = 0;

  bool operator==(const OutPoint&) const = default;
  auto operator<=>(const OutPoint&) const = default;
};

struct OutPointHash {
  std::size_t operator()(const OutPoint& op) const {
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | op.tx[static_cast<std::size_t>(i)];
    return h ^ (static_cast<std::size_t>(op.index) * 0x9e3779b97f4a7c15ull);
  }
};

struct TxOut {
  crypto::PublicKey owner;
  Amount amount = 0;

  bool operator==(const TxOut&) const = default;
};

/// A UTXO transaction. For simplicity every input of a transaction is
/// owned by the same spender key, which signs the body once; this is the
/// common single-payer case and does not change any protocol behaviour.
struct Transaction {
  std::vector<OutPoint> inputs;
  std::vector<TxOut> outputs;
  crypto::PublicKey spender;
  crypto::Signature sig;

  /// Canonical serialization of the signed body (everything but sig).
  Bytes body_bytes() const;
  Bytes serialize() const;
  static Transaction deserialize(BytesView b);

  /// Transaction id = H(body).
  TxId id() const;

  /// All shards the outputs touch, for a network of m shards.
  std::set<ShardId> output_shards(std::uint32_t m) const;

  /// Shard of the spender (where the inputs live).
  ShardId input_shard(std::uint32_t m) const;

  /// True iff all inputs and outputs live in one shard.
  bool is_intra_shard(std::uint32_t m) const;

  bool operator==(const Transaction&) const = default;
};

/// Sign the body with the spender's key.
void sign_tx(Transaction& tx, const crypto::SecretKey& sk);

/// Verify the spender's signature over the body.
bool check_tx_signature(const Transaction& tx);

}  // namespace cyc::ledger
