#include "ledger/light_client.hpp"

namespace cyc::ledger {

LightClient::LightClient() {
  // Same genesis sentinel as Chain, so headers interoperate.
  headers_.push_back(Chain().genesis());
}

bool LightClient::accept_header(const BlockHeader& header) {
  if (header.round != tip().round + 1) return false;
  if (header.prev_hash != tip().hash()) return false;
  headers_.push_back(header);
  return true;
}

bool LightClient::verify_payment(std::size_t height, const Transaction& tx,
                                 const crypto::MerkleProof& proof) const {
  if (height == 0 || height >= headers_.size()) return false;
  return Block::verify_inclusion(headers_[height], tx, proof);
}

std::optional<crypto::Digest> LightClient::randomness_at(
    std::size_t height) const {
  if (height >= headers_.size()) return std::nullopt;
  return headers_[height].randomness;
}

}  // namespace cyc::ledger
