// Open-loop sustained-traffic source (ROADMAP: the "millions of users"
// question is *where does the system saturate and what breaks first*).
//
// The closed-loop workload hands every committee a fixed batch per round,
// so offered load can never exceed service capacity and latency is
// meaningless. This module supplies the missing half: a deterministic
// Poisson arrival process in *simulated time* (exponential inter-arrival
// gaps at a configurable rate) with Zipf-distributed account popularity —
// hot accounts live on one shard, so skew in the account distribution
// becomes skew in per-shard offered load. Transactions are built by the
// WorkloadGenerator (so they spend confirmed outputs and carry ground
// truth); the engine admits them into bounded per-shard mempools
// (ledger/mempool.hpp) and stamps arrival -> commit latency.
//
// Everything is a pure function of (config, seed): two sources with the
// same inputs emit byte-identical arrival streams regardless of how the
// caller slices the timeline into windows.
#pragma once

#include <cstdint>
#include <vector>

#include "ledger/types.hpp"
#include "ledger/workload.hpp"
#include "support/rng.hpp"

namespace cyc::ledger {

/// Zipf(s) sampler over ranks [0, n): P[rank k] proportional to
/// 1 / (k+1)^s. s = 0 degenerates to the uniform distribution. Sampling
/// is an inverse-CDF binary search over precomputed cumulative weights,
/// so one draw costs one uniform + O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(rng::Stream& rng) const;

  /// Exact probability mass of `rank` (tests check empirical frequencies
  /// against this within tolerance).
  double probability(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  double s_ = 0.0;
  std::vector<double> cdf_;  ///< cumulative, cdf_.back() == total mass
};

struct OpenLoopConfig {
  double arrival_rate = 1.0;  ///< expected arrivals per unit simulated time
  double zipf_s = 1.0;        ///< account-popularity exponent (0 = uniform)
  double cross_shard_fraction = 0.2;
  double invalid_fraction = 0.0;
};

/// One arrival: a transaction and the simulated time it entered the
/// system. The engine keys latency accounting on tx.id().
struct Arrival {
  double time = 0.0;
  Transaction tx;
};

/// The open-loop source: an unbounded Poisson/Zipf client population
/// layered on a WorkloadGenerator. The caller advances simulated time in
/// windows (one per protocol round) and receives every arrival that fell
/// inside; arrivals the mempool cannot admit are the caller's to reject
/// (backpressure drops, not source state).
class OpenLoopSource {
 public:
  /// `workload` must outlive the source; its user population defines the
  /// Zipf ranks (rank r -> user r; user -> shard assignment is already
  /// pseudorandom, so the hottest account makes some shard hot).
  OpenLoopSource(OpenLoopConfig config, WorkloadGenerator& workload,
                 std::uint64_t seed);

  /// Every arrival with timestamp in [clock(), until), in time order;
  /// advances clock() to `until`. Transactions whose spend could not be
  /// generated at all (whole pool dry) are dropped here and counted in
  /// exhausted(); partial misses fall back inside the generator and
  /// count in WorkloadGenerator::shortfall().
  std::vector<Arrival> arrivals_until(double until);

  double clock() const { return clock_; }
  std::uint64_t generated() const { return generated_; }
  /// Arrivals lost because the spendable pool was completely dry.
  std::uint64_t exhausted() const { return exhausted_; }
  const OpenLoopConfig& config() const { return config_; }
  const ZipfSampler& zipf() const { return zipf_; }

 private:
  OpenLoopConfig config_;
  WorkloadGenerator& workload_;
  ZipfSampler zipf_;
  rng::Stream rng_;
  double clock_ = 0.0;
  double next_arrival_ = 0.0;
  std::uint64_t generated_ = 0;
  std::uint64_t exhausted_ = 0;
};

}  // namespace cyc::ledger
