// Blocks and the block chain (§IV-G).
//
// Each round r produces a block B^r containing the committed
// transactions, the next round's randomness, and (abstractly) the next
// round's participants and roles. Headers chain by hash; the body is
// committed by a Merkle root so light verification of any transaction's
// inclusion needs O(log |txs|) hashes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "ledger/types.hpp"

namespace cyc::ledger {

struct BlockHeader {
  std::uint64_t round = 0;
  crypto::Digest prev_hash{};   ///< hash of B^{r-1}'s header
  crypto::Digest body_root{};   ///< Merkle root over serialized txs
  crypto::Digest randomness{};  ///< R^{r+1} carried in the block
  std::uint32_t tx_count = 0;

  Bytes serialize() const;
  static BlockHeader deserialize(BytesView b);

  /// Header hash (chains the blocks).
  crypto::Digest hash() const;

  bool operator==(const BlockHeader&) const = default;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  /// Build a block over `txs`, linking to `prev`.
  static Block build(std::uint64_t round, const crypto::Digest& prev_hash,
                     const crypto::Digest& randomness,
                     std::vector<Transaction> txs);

  /// True iff the header commits to exactly this body.
  bool body_matches() const;

  /// Inclusion proof for the tx at `index`.
  crypto::MerkleProof prove_inclusion(std::size_t index) const;

  /// Verify a tx's inclusion under a (trusted) header.
  static bool verify_inclusion(const BlockHeader& header,
                               const Transaction& tx,
                               const crypto::MerkleProof& proof);

  Bytes serialize() const;
  static Block deserialize(BytesView b);
};

/// An append-only, linkage-checked chain of blocks.
class Chain {
 public:
  Chain();

  /// The fixed genesis header (round 0, all-zero links).
  const BlockHeader& genesis() const { return headers_.front(); }

  /// Number of blocks after genesis.
  std::size_t height() const { return headers_.size() - 1; }

  const BlockHeader& tip() const { return headers_.back(); }
  const BlockHeader& header_at(std::size_t height) const {
    return headers_.at(height);
  }

  /// Append a block; rejects (returns false) on wrong round, broken
  /// prev-hash link or a body/header mismatch.
  bool append(const Block& block);

  /// Re-validate the whole header chain (linkage + round numbering).
  bool validate() const;

 private:
  std::vector<BlockHeader> headers_;
};

}  // namespace cyc::ledger
