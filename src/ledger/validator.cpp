#include "ledger/validator.hpp"

#include <unordered_set>

namespace cyc::ledger {

std::string verdict_name(TxVerdict v) {
  switch (v) {
    case TxVerdict::kValid: return "valid";
    case TxVerdict::kMalformed: return "malformed";
    case TxVerdict::kBadSignature: return "bad-signature";
    case TxVerdict::kUnknownInput: return "unknown-input";
    case TxVerdict::kNotOwner: return "not-owner";
    case TxVerdict::kOverspend: return "overspend";
    case TxVerdict::kInternalDoubleSpend: return "internal-double-spend";
  }
  return "unknown";
}

TxVerdict verify_tx(const Transaction& tx, const UtxoStore& inputs_view) {
  if (tx.inputs.empty() || tx.outputs.empty()) return TxVerdict::kMalformed;
  for (const auto& out : tx.outputs) {
    if (out.amount == 0) return TxVerdict::kMalformed;
  }
  if (!check_tx_signature(tx)) return TxVerdict::kBadSignature;

  std::unordered_set<OutPoint, OutPointHash> seen;
  Amount in_total = 0;
  for (const auto& in : tx.inputs) {
    if (!seen.insert(in).second) return TxVerdict::kInternalDoubleSpend;
    const auto utxo = inputs_view.get(in);
    if (!utxo) return TxVerdict::kUnknownInput;
    if (!(utxo->owner == tx.spender)) return TxVerdict::kNotOwner;
    in_total += utxo->amount;
  }
  Amount out_total = 0;
  for (const auto& out : tx.outputs) out_total += out.amount;
  if (out_total > in_total) return TxVerdict::kOverspend;
  return TxVerdict::kValid;
}

Amount tx_fee(const Transaction& tx, const UtxoStore& inputs_view) {
  Amount in_total = 0;
  for (const auto& in : tx.inputs) {
    const auto utxo = inputs_view.get(in);
    if (utxo) in_total += utxo->amount;
  }
  Amount out_total = 0;
  for (const auto& out : tx.outputs) out_total += out.amount;
  return in_total >= out_total ? in_total - out_total : 0;
}

}  // namespace cyc::ledger
