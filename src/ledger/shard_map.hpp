// Epoch-scoped account→shard mapping (adaptive sharding, §IV-F re-draw).
//
// The seed protocol shards accounts by a static hash (`shard_of`), which
// under Zipf-skewed open-loop traffic pins the hottest shard's mempool at
// capacity while cold shards idle. The ShardMap makes the assignment a
// queryable epoch-scoped object: it answers exactly like `shard_of` until
// a rebalance installs per-account overrides, so threading it through
// routing, validation, and the workload generator is byte-inert while the
// feature is off. Maps are immutable once built — an epoch boundary
// constructs the successor with `apply(moves)` and swaps the shared
// pointer, so concurrent readers (engine shard threads, checker mirror)
// never observe a half-applied re-map.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ledger/types.hpp"

namespace cyc::ledger {

class UtxoStore;

/// One account migration in a rebalance plan. `account` is the public
/// key's y coordinate — the same value the static hash shards by, and
/// the canonical account identity everywhere in the ledger layer.
struct AccountMove {
  std::uint64_t account = 0;
  ShardId from = 0;
  ShardId to = 0;

  bool operator==(const AccountMove&) const = default;
};

class ShardMap {
 public:
  ShardMap() = default;
  explicit ShardMap(std::uint32_t m) : m_(m) {}

  std::uint32_t shards() const { return m_; }

  /// Number of rebalances applied since the identity map of the genesis
  /// epoch (0 = never rebalanced).
  std::uint64_t version() const { return version_; }

  /// True while the map still answers exactly like the static hash.
  bool identity() const { return overrides_.empty(); }

  /// Shard of an account key: the override when one is installed, else
  /// the same hash `shard_of` uses.
  ShardId shard_key(std::uint64_t account) const;
  ShardId shard(const crypto::PublicKey& pk) const { return shard_key(pk.y); }

  const std::map<std::uint64_t, ShardId>& overrides() const {
    return overrides_;
  }

  /// Successor map with `moves` applied and the version bumped. Overrides
  /// that land back on the hash-default shard are erased, so the stored
  /// override set is canonical and the digest depends only on effective
  /// assignments. Throws std::invalid_argument on an out-of-range target.
  ShardMap apply(const std::vector<AccountMove>& moves) const;

  /// Canonical content digest over (m, version, sorted overrides).
  crypto::Digest digest() const;

  bool operator==(const ShardMap&) const = default;

 private:
  std::uint32_t m_ = 1;
  std::uint64_t version_ = 0;
  std::map<std::uint64_t, ShardId> overrides_;
};

/// Map-aware routing: these mirror Transaction::input_shard /
/// output_shards / is_intra_shard but consult the epoch's map, so the
/// engine, validator and checker can never disagree with the generator.
ShardId input_shard(const Transaction& tx, const ShardMap& map);
std::set<ShardId> output_shards(const Transaction& tx, const ShardMap& map);
bool is_intra_shard(const Transaction& tx, const ShardMap& map);

/// Per-shard load statistics accumulated over one epoch's rounds — the
/// planner input. Offered/dropped count arrivals at their (pre-rebalance)
/// home shard; occupancy_sum integrates the post-drain backlog.
struct ShardLoadWindow {
  std::uint64_t rounds = 0;
  std::vector<std::uint64_t> offered;
  std::vector<std::uint64_t> dropped;
  std::vector<std::uint64_t> occupancy_sum;
  /// Arrivals per spender account key — ranks the hot accounts.
  std::map<std::uint64_t, std::uint64_t> account_arrivals;

  bool empty() const { return rounds == 0; }
};

/// Move every UTXO owned by a re-homed account from its old store to its
/// new one and attach `next` to all stores. The source shard of each
/// entry is derived from `old_map` (never trusted from the move record);
/// spend/add keep the rolling digests self-consistent. Returns the number
/// of migrated outputs. Deterministic: moves and store entries are
/// processed in sorted order.
std::uint64_t migrate_stores(std::vector<UtxoStore>& stores,
                             const ShardMap& old_map,
                             const std::shared_ptr<const ShardMap>& next,
                             const std::vector<AccountMove>& moves);

}  // namespace cyc::ledger
