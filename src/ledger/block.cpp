#include "ledger/block.hpp"

#include "support/serde.hpp"

namespace cyc::ledger {

Bytes BlockHeader::serialize() const {
  Writer w;
  w.u64(round);
  w.bytes(crypto::digest_to_bytes(prev_hash));
  w.bytes(crypto::digest_to_bytes(body_root));
  w.bytes(crypto::digest_to_bytes(randomness));
  w.u32(tx_count);
  return w.take();
}

BlockHeader BlockHeader::deserialize(BytesView b) {
  Reader rd(b);
  BlockHeader h;
  h.round = rd.u64();
  h.prev_hash = crypto::digest_from_bytes(rd.bytes());
  h.body_root = crypto::digest_from_bytes(rd.bytes());
  h.randomness = crypto::digest_from_bytes(rd.bytes());
  h.tx_count = rd.u32();
  return h;
}

crypto::Digest BlockHeader::hash() const {
  return crypto::sha256_concat({bytes_of("cyc.blockheader"), serialize()});
}

namespace {
std::vector<Bytes> tx_leaves(const std::vector<Transaction>& txs) {
  std::vector<Bytes> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.serialize());
  return leaves;
}
}  // namespace

Block Block::build(std::uint64_t round, const crypto::Digest& prev_hash,
                   const crypto::Digest& randomness,
                   std::vector<Transaction> txs) {
  Block block;
  block.txs = std::move(txs);
  block.header.round = round;
  block.header.prev_hash = prev_hash;
  block.header.randomness = randomness;
  block.header.tx_count = static_cast<std::uint32_t>(block.txs.size());
  block.header.body_root = crypto::MerkleTree(tx_leaves(block.txs)).root();
  return block;
}

bool Block::body_matches() const {
  if (header.tx_count != txs.size()) return false;
  return crypto::MerkleTree(tx_leaves(txs)).root() == header.body_root;
}

crypto::MerkleProof Block::prove_inclusion(std::size_t index) const {
  return crypto::MerkleTree(tx_leaves(txs)).prove(index);
}

bool Block::verify_inclusion(const BlockHeader& header, const Transaction& tx,
                             const crypto::MerkleProof& proof) {
  return crypto::MerkleTree::verify(header.body_root, tx.serialize(), proof);
}

Bytes Block::serialize() const {
  Writer w;
  w.bytes(header.serialize());
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const auto& tx : txs) w.bytes(tx.serialize());
  return w.take();
}

Block Block::deserialize(BytesView b) {
  Reader rd(b);
  Block block;
  block.header = BlockHeader::deserialize(rd.bytes());
  const std::uint32_t count = rd.u32();
  block.txs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    block.txs.push_back(Transaction::deserialize(rd.bytes()));
  }
  return block;
}

Chain::Chain() {
  BlockHeader genesis;
  genesis.round = 0;
  genesis.body_root = crypto::sha256(bytes_of("cyc.genesis.body"));
  genesis.randomness = crypto::sha256(bytes_of("cyc.genesis.rand"));
  headers_.push_back(genesis);
}

bool Chain::append(const Block& block) {
  if (block.header.round != tip().round + 1) return false;
  if (block.header.prev_hash != tip().hash()) return false;
  if (!block.body_matches()) return false;
  headers_.push_back(block.header);
  return true;
}

bool Chain::validate() const {
  for (std::size_t i = 1; i < headers_.size(); ++i) {
    if (headers_[i].round != headers_[i - 1].round + 1) return false;
    if (headers_[i].prev_hash != headers_[i - 1].hash()) return false;
  }
  return true;
}

}  // namespace cyc::ledger
