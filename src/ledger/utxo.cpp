#include "ledger/utxo.hpp"

#include <algorithm>

#include "support/serde.hpp"

namespace cyc::ledger {

std::optional<TxOut> UtxoStore::get(const OutPoint& op) const {
  auto it = utxos_.find(op);
  if (it == utxos_.end()) return std::nullopt;
  return it->second;
}

bool UtxoStore::add(const OutPoint& op, const TxOut& out) {
  if (shard_of(out.owner, m_) != shard_) return false;
  utxos_[op] = out;
  return true;
}

bool UtxoStore::spend(const OutPoint& op) { return utxos_.erase(op) > 0; }

void UtxoStore::apply(const Transaction& tx) {
  if (shard_of(tx.spender, m_) == shard_) {
    for (const auto& in : tx.inputs) spend(in);
  }
  const TxId id = tx.id();
  for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
    add(OutPoint{id, i}, tx.outputs[i]);
  }
}

Amount UtxoStore::total_value() const {
  Amount total = 0;
  for (const auto& [op, out] : utxos_) total += out.amount;
  return total;
}

std::vector<OutPoint> UtxoStore::outpoints() const {
  std::vector<OutPoint> ops;
  ops.reserve(utxos_.size());
  for (const auto& [op, out] : utxos_) ops.push_back(op);
  std::sort(ops.begin(), ops.end());
  return ops;
}

crypto::Digest UtxoStore::digest() const {
  Writer w;
  for (const auto& op : outpoints()) {
    w.bytes(crypto::digest_to_bytes(op.tx));
    w.u32(op.index);
    const auto out = get(op);
    w.u64(out->owner.y);
    w.u64(out->amount);
  }
  return crypto::sha256(w.out());
}

}  // namespace cyc::ledger
