#include "ledger/utxo.hpp"

#include <algorithm>

#include "support/serde.hpp"

namespace cyc::ledger {

std::optional<TxOut> UtxoStore::get(const OutPoint& op) const {
  auto it = utxos_.find(op);
  if (it == utxos_.end()) return std::nullopt;
  return it->second;
}

crypto::Digest UtxoStore::entry_digest(const OutPoint& op, const TxOut& out) {
  crypto::Sha256 ctx;
  ctx.update("cyc.utxo.entry");
  ctx.update(BytesView(op.tx.data(), op.tx.size()));
  ctx.update_u64(op.index);
  ctx.update_u64(out.owner.y);
  ctx.update_u64(out.amount);
  return ctx.finalize();
}

void UtxoStore::fold(const crypto::Digest& d) {
  for (std::size_t i = 0; i < acc_.size(); ++i) acc_[i] ^= d[i];
}

bool UtxoStore::add(const OutPoint& op, const TxOut& out) {
  if (owner_shard(out.owner) != shard_) return false;
  auto [it, inserted] = utxos_.try_emplace(op, out);
  if (!inserted) {
    if (it->second == out) return true;  // identical re-insert: no-op
    fold(entry_digest(op, it->second));  // un-fold the replaced entry
    it->second = out;
  }
  fold(entry_digest(op, out));
  return true;
}

bool UtxoStore::spend(const OutPoint& op) {
  auto it = utxos_.find(op);
  if (it == utxos_.end()) return false;
  fold(entry_digest(op, it->second));  // XOR is self-inverse: removes it
  utxos_.erase(it);
  return true;
}

void UtxoStore::apply(const Transaction& tx) {
  if (owner_shard(tx.spender) == shard_) {
    for (const auto& in : tx.inputs) spend(in);
  }
  const TxId id = tx.id();
  for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
    add(OutPoint{id, i}, tx.outputs[i]);
  }
}

Amount UtxoStore::total_value() const {
  Amount total = 0;
  for (const auto& [op, out] : utxos_) total += out.amount;
  return total;
}

std::vector<OutPoint> UtxoStore::outpoints() const {
  std::vector<OutPoint> ops;
  ops.reserve(utxos_.size());
  for (const auto& [op, out] : utxos_) ops.push_back(op);
  std::sort(ops.begin(), ops.end());
  return ops;
}

namespace {
crypto::Digest finish_digest(const crypto::Digest& acc, std::size_t size) {
  crypto::Sha256 ctx;
  ctx.update("cyc.utxo.set");
  ctx.update(BytesView(acc.data(), acc.size()));
  ctx.update_u64(size);
  return ctx.finalize();
}
}  // namespace

crypto::Digest UtxoStore::digest() const {
  return finish_digest(acc_, utxos_.size());
}

crypto::Digest UtxoStore::full_digest() const {
  crypto::Digest acc{};
  for (const auto& [op, out] : utxos_) {
    const crypto::Digest d = entry_digest(op, out);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= d[i];
  }
  return finish_digest(acc, utxos_.size());
}

}  // namespace cyc::ledger
