// Bounded per-shard mempool with admission control (open-loop traffic).
//
// Each shard owns one FIFO queue of pending transactions, capped at a
// fixed capacity. Admission is drop-with-count: when the queue is full
// the new transaction is rejected and the drop recorded — the open-loop
// source never blocks (that would close the loop and hide saturation).
// The engine drains at most its per-round service budget from the front,
// so under sustained overload occupancy pins at capacity and the drop
// counter grows — exactly the backpressure signal the sustained-load
// bench sweeps for. All operations are deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ledger/types.hpp"

namespace cyc::ledger {

/// One admitted transaction plus the simulated time it arrived (the
/// timestamp rides along so carryover and latency accounting never need
/// a side lookup at drain time).
struct PendingTx {
  Transaction tx;
  double arrival = 0.0;
};

class ShardMempool {
 public:
  explicit ShardMempool(std::size_t capacity) : capacity_(capacity) {}

  bool full() const { return queue_.size() >= capacity_; }

  /// Admit `tx` at the queue tail. Returns false (and counts the drop)
  /// when the pool is at capacity; the caller owns rejected transactions
  /// (typically returning their inputs to the workload pool).
  bool admit(const Transaction& tx, double arrival) {
    if (full()) {
      dropped_ += 1;
      return false;
    }
    queue_.push_back(PendingTx{tx, arrival});
    admitted_ += 1;
    return true;
  }

  /// Pop up to `max` transactions from the front, in admission order.
  std::vector<PendingTx> drain(std::size_t max) {
    std::vector<PendingTx> out;
    const std::size_t count = std::min(max, queue_.size());
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    drained_ += count;
    return out;
  }

  /// Re-insert a pending transaction at the tail WITHOUT admission
  /// control or counter updates. Only the epoch-boundary re-bucketing
  /// uses this: a rebalance may re-home more backlog into a pool than
  /// its capacity, and dropping an already-admitted transaction there
  /// would break flow conservation (offered == settled + carried +
  /// dropped). Occupancy self-corrects at the next drain.
  void restore(PendingTx pending) { queue_.push_back(std::move(pending)); }

  /// Remove and return, in FIFO order, every pending entry for which
  /// `pred(tx)` is true — the epoch-boundary re-bucketing extracts the
  /// transactions whose home shard moved. Counters are untouched: the
  /// entries stay admitted, they just change queues.
  template <typename Pred>
  std::vector<PendingTx> extract_if(Pred pred) {
    std::vector<PendingTx> out;
    std::deque<PendingTx> keep;
    for (auto& pending : queue_) {
      if (pred(pending.tx)) {
        out.push_back(std::move(pending));
      } else {
        keep.push_back(std::move(pending));
      }
    }
    queue_ = std::move(keep);
    return out;
  }

  std::size_t size() const { return queue_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t drained() const { return drained_; }

 private:
  std::size_t capacity_;
  std::deque<PendingTx> queue_;
  std::uint64_t admitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t drained_ = 0;
};

}  // namespace cyc::ledger
