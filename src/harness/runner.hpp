// Seed-sweep scenario runner: executes a scenario matrix on the
// support/parallel.hpp pool — one deterministic, single-threaded Engine
// per (scenario, seed) point, per the §III-B simulator contract — runs
// the full invariant suite after every round, and renders a
// machine-readable JSON artifact of per-point outcomes + verdicts.
//
// The artifact is a pure function of the scenario list: it contains no
// wall-clock or host-dependent data, so two runs of the same matrix are
// byte-identical. That property is itself asserted by the tier-1 tests
// and scripts/run_scenarios.sh.
#pragma once

#include <string>
#include <vector>

#include "harness/invariants.hpp"
#include "harness/scenario.hpp"
#include "net/stats.hpp"
#include "obs/observer.hpp"

namespace cyc::harness {

/// Per-point trace emission (src/obs/). When given to run_matrix, every
/// (scenario, seed) job records a simulated-time trace + metrics registry
/// and writes `<dir>/<sanitized-scenario>-s<seed>.trace.json`. Traces are
/// pure functions of (spec, seed): byte-identical across runs and thread
/// counts — unless `wall_clock` is set, which attaches real elapsed time
/// for profiling and must stay off determinism-compared paths.
struct TraceOptions {
  std::string dir;
  bool wall_clock = false;
  std::size_t capacity = obs::Tracer::kDefaultCapacity;
};

/// File name (no directory) a traced point is written under; scenario
/// names are sanitized to [A-Za-z0-9._-].
std::string trace_file_name(const std::string& scenario, std::uint64_t seed);

struct ScenarioOutcome {
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t rounds = 0;               ///< total rounds run (all epochs)
  std::uint64_t committed = 0;          ///< total txs across all rounds
  std::uint64_t offered = 0;
  std::uint64_t cross_committed = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t invalid_committed = 0;  ///< safety violations (must be 0)
  std::uint64_t carryover = 0;          ///< Remaining TX List at exit
  std::uint64_t chain_height = 0;
  double total_fees = 0.0;
  // Epoch lifecycle (all zero / empty on single-epoch scenarios).
  std::uint64_t epochs = 1;             ///< epochs executed
  std::uint64_t boundaries = 0;         ///< EpochHandoff records audited
  std::uint64_t members_joined = 0;     ///< identities admitted via PoW
  std::uint64_t members_retired = 0;
  std::string last_handoff_digest;      ///< hex, audit anchor ("" if none)
  /// Injected network faults, summed over every round of the run. All
  /// zero on fault-free points (and then omitted from the artifact, so
  /// fault-free artifacts are unchanged).
  net::FaultStats faults;
  std::vector<Violation> violations;
};

struct MatrixResult {
  std::vector<ScenarioOutcome> outcomes;

  std::size_t total_violations() const {
    std::size_t total = 0;
    for (const auto& o : outcomes) total += o.violations.size();
    return total;
  }
  bool all_green() const { return total_violations() == 0; }
};

/// Run one (scenario, seed) point: fresh Engine, events applied at their
/// rounds, invariants checked after every round. With `observer`, the
/// engine records spans/metrics into it (the thread-local verify cache is
/// cleared first so cache-hit metrics are thread-placement invariant).
ScenarioOutcome run_scenario(const ScenarioSpec& spec, std::uint64_t seed,
                             obs::Observer* observer = nullptr);

/// Run every (scenario, seed) point of the matrix concurrently; results
/// are collected in matrix order regardless of scheduling. With `trace`,
/// each point additionally writes its own trace file into `trace->dir`
/// (per-point files, so the artifact set is thread-count independent).
MatrixResult run_matrix(const std::vector<ScenarioSpec>& scenarios,
                        unsigned threads = 0,
                        const TraceOptions* trace = nullptr);

/// Deterministic JSON artifact (specs echoed + outcomes + verdicts).
std::string matrix_json(const std::vector<ScenarioSpec>& scenarios,
                        const MatrixResult& result);

}  // namespace cyc::harness
