// Declarative scenario specifications for the protocol harness.
//
// A ScenarioSpec bundles everything one deterministic execution needs —
// Params, AdversaryConfig, EngineOptions, a round count, and mid-run
// corruption / churn events — so the same scenario can be built
// programmatically (matrix sweeps, tests) or parsed from a JSON file
// (scenario_runner --spec). The sweep axes follow what separates sharded
// designs in practice: adversary mix, delay regime, capacity skew and
// cross-shard fraction.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "protocol/adversary.hpp"
#include "protocol/engine.hpp"
#include "protocol/params.hpp"
#include "support/json.hpp"

namespace cyc::harness {

/// Mid-run adversarial schedule entries. Corruption events are applied
/// via Engine::corrupt at the *start* of `round`, so the behaviour takes
/// effect one round later, exactly as the §III-C mildly-adaptive threat
/// model allows. Fault-fabric events (partition / blackout / crash-restart
/// lifecycle) are applied at the same point and take effect immediately —
/// they model the network, not the adversary's key corruption budget.
struct ScenarioEvent {
  enum class Target : std::uint8_t {
    kNode,      ///< explicit node id
    kLeaderOf,  ///< whoever leads committee `committee` when `round` starts
    kRefereeAt, ///< referee seat `committee` (mod |C_R|) when `round` starts
    kCommittee, ///< every member of committee `committee` (partitions)
  };
  enum class Kind : std::uint8_t {
    kCorrupt,   ///< Engine::corrupt(victim, behavior) — the legacy event
    kCrash,     ///< Engine::corrupt(victim, kCrash)
    kRestart,   ///< Engine::restart(victim); no-op on a live node
    kPartition, ///< cut victims from the mainland for `duration` rounds
    kHeal,      ///< close every open partition at `round`
    kBlackout,  ///< silence each victim for `duration` rounds
  };
  // New fields (kind, duration) come last so legacy positional
  // initializers `{round, target, node, committee, behavior}` keep
  // meaning exactly what they did before the fault fabric landed.
  std::uint64_t round = 1;
  Target target = Target::kNode;
  net::NodeId node = 0;
  std::uint32_t committee = 0;
  protocol::Behavior behavior = protocol::Behavior::kCrash;
  Kind kind = Kind::kCorrupt;
  /// Rounds a partition / blackout stays active (heals at round+duration).
  std::uint64_t duration = 1;
};

struct ScenarioSpec {
  std::string name = "scenario";
  protocol::Params params;
  protocol::AdversaryConfig adversary;
  protocol::EngineOptions options;
  /// Rounds per epoch (the plain round count while epochs == 1).
  std::size_t rounds = 2;
  /// Epoch count. > 1 switches the runner onto the epoch lifecycle
  /// (src/epoch/): `rounds` rounds per epoch, a PoW-churn + PVSS-beacon +
  /// reconfiguration boundary between epochs, and the epoch invariants
  /// checked on every EpochHandoff. Provision `params.standby` for the
  /// join pool when churn_rate > 0.
  std::size_t epochs = 1;
  /// Fraction of the membership replaced per epoch boundary (subject to
  /// the manager's bounded-churn budget).
  double churn_rate = 0.0;
  /// Each seed is an independent execution; Params::seed is overridden.
  std::vector<std::uint64_t> seeds = {1};
  std::vector<ScenarioEvent> events;

  /// Parse one spec from a JSON object. Unknown keys are ignored; absent
  /// keys keep their defaults, so specs stay short. Throws
  /// std::runtime_error / support::JsonParseError on malformed input.
  static ScenarioSpec from_json(const support::JsonValue& v);

  /// Parse a document that is either one spec object or an array of
  /// them (or an object with a "scenarios" array).
  static std::vector<ScenarioSpec> list_from_json(std::string_view text);

  /// Emit this spec as a JSON object (round-trips through from_json).
  void to_json(support::JsonWriter& w) const;

  /// Serialize to a standalone JSON document. Every field the
  /// programmatic builder can set is emitted, and the encoding is
  /// canonical: serialize -> parse -> serialize is byte-identical, so a
  /// spec written to disk (e.g. a shrunk fuzz repro) replays exactly via
  /// `scenario_runner --spec`.
  std::string to_json_text() const;

  /// Parse a single spec from a standalone JSON document.
  static ScenarioSpec from_json_text(std::string_view text);
};

/// Scenario-matrix axes. build_matrix crosses every axis; empty axes
/// contribute the base value. Scenario names encode the axis choices so
/// artifacts stay self-describing.
struct MatrixAxes {
  protocol::Params base;
  protocol::EngineOptions options;
  std::size_t rounds = 2;
  std::vector<std::uint64_t> seeds = {1, 2};
  /// (label, adversary) pairs, e.g. {"honest", {}}.
  std::vector<std::pair<std::string, protocol::AdversaryConfig>> adversaries;
  /// (label, delays) pairs, e.g. {"lan", DelayModel{}}.
  std::vector<std::pair<std::string, net::DelayModel>> delays;
  std::vector<double> cross_shard_fractions;
  /// (capacity_min, capacity_max) pairs — vote-capacity skew axis.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> capacities;
  /// (m, c) pairs — committee count / size scaling inside one matrix.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> committee_shapes;
  /// Ground-truth-invalid workload fractions (flow-conservation stress).
  std::vector<double> invalid_fractions;
  /// (epochs, churn_rate) pairs — the epoch lifecycle axis. Points with
  /// epochs > 1 run under the EpochManager; `base.standby` sizes the
  /// join pool.
  std::vector<std::pair<std::size_t, double>> epoch_points;
  /// Load-aware re-draw axis (Params::rebalance). Empty keeps the base
  /// value and legacy scenario names; meaningful only on points with
  /// epochs > 1 and an open-loop source.
  std::vector<bool> rebalance_modes;
};

std::vector<ScenarioSpec> build_matrix(const MatrixAxes& axes);

/// The bounded default matrix the scenario_runner CLI and the tier-1
/// suite execute: 3 adversary mixes x 2 delay regimes x 2 cross-shard
/// fractions x 2 capacity skews, plus mid-run churn, committee-shape
/// (m/c), high-invalid-fraction, fault-fabric (partition/heal,
/// crash-restart, lossy wide-area links) and multi-epoch (3 epochs,
/// PoW identity churn) scenarios — 3 seeds each.
std::vector<ScenarioSpec> default_matrix();

/// Stable token for a Behavior, and the reverse lookup used by the JSON
/// parser ("crash", "equivocator", ...). Returns false on unknown token.
std::string_view behavior_token(protocol::Behavior b);
bool behavior_from_token(std::string_view token, protocol::Behavior& out);

}  // namespace cyc::harness
