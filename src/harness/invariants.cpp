#include "harness/invariants.hpp"

#include <algorithm>
#include <cstdio>

#include "ledger/validator.hpp"

namespace cyc::harness {

namespace {

std::string tx_key(const ledger::Transaction& tx) {
  const auto id = tx.id();
  return std::string(id.begin(), id.end());
}

std::string hex_prefix(const ledger::TxId& id) {
  char buf[17];
  for (int i = 0; i < 8; ++i) {
    std::snprintf(buf + 2 * i, 3, "%02x", id[static_cast<std::size_t>(i)]);
  }
  return std::string(buf, 16);
}

ledger::Amount total_value(const std::vector<ledger::UtxoStore>& stores) {
  ledger::Amount total = 0;
  for (const auto& store : stores) total += store.total_value();
  return total;
}

}  // namespace

InvariantChecker::InvariantChecker(const protocol::Engine& engine)
    : engine_(engine),
      mirror_(engine.shard_state()),
      prev_total_value_(total_value(engine.shard_state())),
      base_height_(engine.chain().height()) {
  prev_reputation_.reserve(engine.node_count());
  for (std::size_t id = 0; id < engine.node_count(); ++id) {
    prev_reputation_.push_back(
        engine.reputation(static_cast<net::NodeId>(id)));
  }
}

std::size_t InvariantChecker::check_round(const protocol::RoundReport& report) {
  const std::size_t before = violations_.size();
  const std::uint64_t round = report.round;

  if (report.invalid_committed != 0) {
    add("safety-invalid-committed", round,
        std::to_string(report.invalid_committed) +
            " ground-truth-invalid txs reached the block");
  }

  check_chain(report);
  check_block_txs(engine_.last_block(), engine_.params().m, committed_ids_,
                  spent_, mirror_, round, violations_);
  check_state_digests(engine_.shard_state(), mirror_, round, violations_);

  const ledger::Amount now_value = total_value(engine_.shard_state());
  if (now_value > prev_total_value_) {
    add("value-conservation", round,
        "total shard value grew from " + std::to_string(prev_total_value_) +
            " to " + std::to_string(now_value));
  }
  prev_total_value_ = now_value;

  check_flow(engine_.last_flow(), engine_.carryover_size(), round,
             violations_);
  if (engine_.last_flow().committed != report.txs_committed) {
    add("flow-conservation", round,
        "flow.committed " + std::to_string(engine_.last_flow().committed) +
            " != report.txs_committed " +
            std::to_string(report.txs_committed));
  }

  check_recovery(report);
  check_liveness(report);
  check_reputation(report);

  rounds_checked_ += 1;
  return violations_.size() - before;
}

void InvariantChecker::check_chain(const protocol::RoundReport& report) {
  const std::uint64_t round = report.round;
  const ledger::Chain& chain = engine_.chain();
  if (!chain.validate()) {
    add("chain-linkage", round, "header chain failed validation");
  }
  const std::size_t expected = base_height_ + rounds_checked_ + 1;
  if (chain.height() != expected) {
    add("chain-linkage", round,
        "chain height " + std::to_string(chain.height()) + ", expected " +
            std::to_string(expected));
  }
  const ledger::Block& block = engine_.last_block();
  if (!(block.header == chain.tip())) {
    add("block-body", round, "retained block is not the chain tip");
  }
  if (!block.body_matches()) {
    add("block-body", round, "block body does not match its header root");
  }
  if (block.header.tx_count != report.txs_committed) {
    add("block-body", round,
        "header tx_count " + std::to_string(block.header.tx_count) +
            " != report.txs_committed " +
            std::to_string(report.txs_committed));
  }
}

void InvariantChecker::check_block_txs(
    const ledger::Block& block, std::uint32_t m,
    std::set<std::string>& committed_ids,
    std::unordered_set<ledger::OutPoint, ledger::OutPointHash>& spent,
    std::vector<ledger::UtxoStore>& mirror, std::uint64_t round,
    std::vector<Violation>& out) {
  for (const auto& tx : block.txs) {
    const auto id = tx.id();
    if (!committed_ids.insert(tx_key(tx)).second) {
      out.push_back({"block-exactly-once", round,
                     "tx " + hex_prefix(id) + " committed twice"});
    }
    if (!ledger::check_tx_signature(tx)) {
      out.push_back({"tx-signature", round,
                     "tx " + hex_prefix(id) + " has an invalid signature"});
    }
    const std::uint32_t shard = tx.input_shard(m);
    for (const auto& in : tx.inputs) {
      if (!spent.insert(in).second) {
        out.push_back({"double-spend", round,
                       "outpoint " + hex_prefix(in.tx) + ":" +
                           std::to_string(in.index) + " spent twice"});
      }
      if (shard < mirror.size() && !mirror[shard].contains(in)) {
        out.push_back({"spend-of-missing-output", round,
                       "tx " + hex_prefix(id) + " spends unknown outpoint " +
                           hex_prefix(in.tx) + ":" +
                           std::to_string(in.index)});
      }
    }
    for (auto& store : mirror) store.apply(tx);
  }
}

void InvariantChecker::check_state_digests(
    const std::vector<ledger::UtxoStore>& state,
    const std::vector<ledger::UtxoStore>& mirror, std::uint64_t round,
    std::vector<Violation>& out) {
  if (state.size() != mirror.size()) {
    out.push_back({"utxo-mirror-digest", round,
                   "shard count mismatch: " + std::to_string(state.size()) +
                       " vs mirror " + std::to_string(mirror.size())});
    return;
  }
  for (std::size_t k = 0; k < state.size(); ++k) {
    if (state[k].digest() != state[k].full_digest()) {
      out.push_back({"utxo-incremental-digest", round,
                     "shard " + std::to_string(k) +
                         ": rolling digest != full recomputation"});
    }
    if (state[k].digest() != mirror[k].digest()) {
      out.push_back({"utxo-mirror-digest", round,
                     "shard " + std::to_string(k) +
                         ": engine view diverges from block replay (" +
                         std::to_string(state[k].size()) + " vs " +
                         std::to_string(mirror[k].size()) + " outputs)"});
    }
  }
}

void InvariantChecker::check_flow(const protocol::RoundFlow& flow,
                                  std::size_t carryover_size,
                                  std::uint64_t round,
                                  std::vector<Violation>& out) {
  if (flow.offered != flow.settled + flow.carried + flow.dropped) {
    out.push_back(
        {"flow-conservation", round,
         "offered " + std::to_string(flow.offered) + " != settled " +
             std::to_string(flow.settled) + " + carried " +
             std::to_string(flow.carried) + " + dropped " +
             std::to_string(flow.dropped)});
  }
  if (flow.foreign != 0) {
    out.push_back({"flow-conservation", round,
                   std::to_string(flow.foreign) +
                       " certified txs were never offered in any list"});
  }
  if (flow.committed > flow.settled) {
    out.push_back({"flow-conservation", round,
                   "committed " + std::to_string(flow.committed) +
                       " exceeds settled " + std::to_string(flow.settled)});
  }
  if (carryover_size != flow.carried) {
    out.push_back({"flow-conservation", round,
                   "carryover size " + std::to_string(carryover_size) +
                       " != carried " + std::to_string(flow.carried)});
  }
}

void InvariantChecker::check_recovery(const protocol::RoundReport& report) {
  const std::uint64_t round = report.round;
  const auto& log = engine_.recovery_log();
  const auto& options = engine_.options();
  std::size_t committee_sum = 0;
  for (const auto& stats : report.committees) {
    committee_sum += stats.recoveries;
    if (stats.recoveries > options.max_recoveries_per_committee) {
      add("recovery-bounds", round,
          "committee " + std::to_string(stats.committee) + " recovered " +
              std::to_string(stats.recoveries) + " times (cap " +
              std::to_string(options.max_recoveries_per_committee) + ")");
    }
  }
  // (report.recoveries itself is assigned from the log's size, so the
  // cross-check that can actually fail is per-committee counts vs log.)
  if (committee_sum != log.size()) {
    add("recovery-bounds", round,
        "per-committee recoveries sum to " + std::to_string(committee_sum) +
            ", recovery log has " + std::to_string(log.size()));
  }

  const auto& assignment = engine_.last_assignment();
  for (const auto& event : log) {
    if (event.round != round) {
      add("recovery-bounds", round,
          "recovery event carries round " + std::to_string(event.round));
    }
    if (!engine_.misbehaved(event.old_leader, round)) {
      add("honest-leader-evicted", round,
          "honest node " + std::to_string(event.old_leader) +
              " was evicted from committee " +
              std::to_string(event.committee));
    }
    if (event.committee < assignment.committees.size()) {
      const auto& partial = assignment.committees[event.committee].partial;
      if (std::find(partial.begin(), partial.end(), event.new_leader) ==
          partial.end()) {
        add("recovery-replacement", round,
            "replacement " + std::to_string(event.new_leader) +
                " is not in committee " + std::to_string(event.committee) +
                "'s partial set");
      }
    }
  }
  for (net::NodeId id : engine_.convicted_leaders()) {
    if (!engine_.misbehaved(id, round)) {
      add("honest-leader-convicted", round,
          "honest node " + std::to_string(id) + " was convicted");
    }
  }
}

void InvariantChecker::check_liveness(const protocol::RoundReport& report) {
  const std::uint64_t round = report.round;
  const auto& assignment = engine_.last_assignment();
  const auto& options = engine_.options();
  for (const auto& stats : report.committees) {
    if (stats.committee >= assignment.committees.size()) continue;
    const auto& info = assignment.committees[stats.committee];
    const auto members = info.all_members();
    std::size_t honest_active = 0;
    for (net::NodeId id : members) {
      if (!engine_.misbehaved(id, round) && engine_.active(id, round)) {
        honest_active += 1;
      }
    }
    if (honest_active * 2 <= members.size()) continue;  // adversarial majority

    const bool leader_ok = !engine_.misbehaved(info.leader, round) &&
                           engine_.active(info.leader, round);
    bool recoverable = false;
    if (options.recovery_enabled &&
        stats.recoveries < options.max_recoveries_per_committee) {
      for (net::NodeId id : info.partial) {
        if (!engine_.misbehaved(id, round) && engine_.active(id, round)) {
          recoverable = true;
          break;
        }
      }
    }
    if ((leader_ok || recoverable) && !stats.produced_output) {
      add("commit-or-recover", round,
          "honest-majority committee " + std::to_string(stats.committee) +
              " (leader " + (leader_ok ? "honest" : "faulty, recoverable") +
              ") produced no certified output");
    }
  }
}

void InvariantChecker::check_reputation(const protocol::RoundReport& report) {
  const std::uint64_t round = report.round;
  // A vote score is a cosine in [-1, 1], so an honest node can lose at
  // most 1 reputation per round; the cube-root conviction punishment
  // (§VII-B) produces much larger drops at leader reputation levels.
  // Honest nodes must never take such a cliff.
  constexpr double kMaxHonestDrop = 1.0 + 1e-9;
  for (std::size_t i = 0; i < engine_.node_count(); ++i) {
    const auto id = static_cast<net::NodeId>(i);
    const double now = engine_.reputation(id);
    if (!engine_.misbehaved(id, round)) {
      const double delta = now - prev_reputation_[i];
      if (delta < -kMaxHonestDrop) {
        add("honest-reputation-cliff", round,
            "honest node " + std::to_string(id) + " lost " +
                std::to_string(-delta) + " reputation in one round");
      }
    }
    prev_reputation_[i] = now;
  }
}

}  // namespace cyc::harness
