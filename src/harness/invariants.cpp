#include "harness/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/bounds.hpp"
#include "ledger/validator.hpp"

namespace cyc::harness {

namespace {

std::string tx_key(const ledger::Transaction& tx) {
  const auto id = tx.id();
  return std::string(id.begin(), id.end());
}

std::string hex_prefix(const ledger::TxId& id) {
  char buf[17];
  for (int i = 0; i < 8; ++i) {
    std::snprintf(buf + 2 * i, 3, "%02x", id[static_cast<std::size_t>(i)]);
  }
  return std::string(buf, 16);
}

ledger::Amount total_value(const std::vector<ledger::UtxoStore>& stores) {
  ledger::Amount total = 0;
  for (const auto& store : stores) total += store.total_value();
  return total;
}

}  // namespace

InvariantChecker::InvariantChecker(const protocol::Engine& engine)
    : engine_(engine),
      mirror_(engine.shard_state()),
      mirror_map_(*engine.shard_map()),
      prev_total_value_(total_value(engine.shard_state())),
      base_height_(engine.chain().height()) {
  prev_reputation_.reserve(engine.node_count());
  for (std::size_t id = 0; id < engine.node_count(); ++id) {
    prev_reputation_.push_back(
        engine.reputation(static_cast<net::NodeId>(id)));
  }
}

std::size_t InvariantChecker::check_round(const protocol::RoundReport& report) {
  const std::size_t before = violations_.size();
  const std::uint64_t round = report.round;

  if (report.invalid_committed != 0) {
    add("safety-invalid-committed", round,
        std::to_string(report.invalid_committed) +
            " ground-truth-invalid txs reached the block");
  }

  // Catch-up audit runs before the block replay below: a node that
  // resynced during this round was served the *pre-round* state, which
  // is exactly what mirror_ still holds here (last round's tip is this
  // block's prev_hash).
  if (!report.catchup_events.empty()) {
    check_catchup(report.catchup_events,
                  protocol::catchup_state_digest(
                      engine_.last_block().header.prev_hash, mirror_),
                  round, violations_);
  }

  check_chain(report);
  check_block_txs(engine_.last_block(), engine_.params().m, committed_ids_,
                  spent_, mirror_, round, violations_);
  // On a rebalance boundary round the engine migrated its stores to the
  // successor map right after this round's block, so the mirror (still on
  // the old map) legitimately lags. The digest comparison is deferred to
  // check_epoch_boundary, which replays the recorded plan's migration on
  // the mirror first.
  const bool mirror_behind =
      engine_.shard_map() &&
      engine_.shard_map()->version() != mirror_map_.version();
  if (!mirror_behind) {
    check_state_digests(engine_.shard_state(), mirror_, round, violations_);
  }

  const ledger::Amount now_value = total_value(engine_.shard_state());
  if (now_value > prev_total_value_) {
    add("value-conservation", round,
        "total shard value grew from " + std::to_string(prev_total_value_) +
            " to " + std::to_string(now_value));
  }
  prev_total_value_ = now_value;

  check_flow(engine_.last_flow(), engine_.carryover_size(), round,
             violations_);
  if (engine_.last_flow().committed != report.txs_committed) {
    add("flow-conservation", round,
        "flow.committed " + std::to_string(engine_.last_flow().committed) +
            " != report.txs_committed " +
            std::to_string(report.txs_committed));
  }

  check_recovery(report);
  check_liveness(report);
  check_reputation(report);

  rounds_checked_ += 1;
  return violations_.size() - before;
}

void InvariantChecker::check_chain(const protocol::RoundReport& report) {
  const std::uint64_t round = report.round;
  const ledger::Chain& chain = engine_.chain();
  if (!chain.validate()) {
    add("chain-linkage", round, "header chain failed validation");
  }
  const std::size_t expected = base_height_ + rounds_checked_ + 1;
  if (chain.height() != expected) {
    add("chain-linkage", round,
        "chain height " + std::to_string(chain.height()) + ", expected " +
            std::to_string(expected));
  }
  const ledger::Block& block = engine_.last_block();
  if (!(block.header == chain.tip())) {
    add("block-body", round, "retained block is not the chain tip");
  }
  if (!block.body_matches()) {
    add("block-body", round, "block body does not match its header root");
  }
  if (block.header.tx_count != report.txs_committed) {
    add("block-body", round,
        "header tx_count " + std::to_string(block.header.tx_count) +
            " != report.txs_committed " +
            std::to_string(report.txs_committed));
  }
}

void InvariantChecker::check_block_txs(
    const ledger::Block& block, std::uint32_t m,
    std::set<std::string>& committed_ids,
    std::unordered_set<ledger::OutPoint, ledger::OutPointHash>& spent,
    std::vector<ledger::UtxoStore>& mirror, std::uint64_t round,
    std::vector<Violation>& out) {
  for (const auto& tx : block.txs) {
    const auto id = tx.id();
    if (!committed_ids.insert(tx_key(tx)).second) {
      out.push_back({"block-exactly-once", round,
                     "tx " + hex_prefix(id) + " committed twice"});
    }
    if (!ledger::check_tx_signature(tx)) {
      out.push_back({"tx-signature", round,
                     "tx " + hex_prefix(id) + " has an invalid signature"});
    }
    // Route through the epoch's account→shard map when the mirror carries
    // one (post-rebalance the static hash no longer matches the homes).
    const std::uint32_t shard =
        (!mirror.empty() && mirror.front().shard_map())
            ? ledger::input_shard(tx, *mirror.front().shard_map())
            : tx.input_shard(m);
    for (const auto& in : tx.inputs) {
      if (!spent.insert(in).second) {
        out.push_back({"double-spend", round,
                       "outpoint " + hex_prefix(in.tx) + ":" +
                           std::to_string(in.index) + " spent twice"});
      }
      if (shard < mirror.size() && !mirror[shard].contains(in)) {
        out.push_back({"spend-of-missing-output", round,
                       "tx " + hex_prefix(id) + " spends unknown outpoint " +
                           hex_prefix(in.tx) + ":" +
                           std::to_string(in.index)});
      }
    }
    for (auto& store : mirror) store.apply(tx);
  }
}

void InvariantChecker::check_state_digests(
    const std::vector<ledger::UtxoStore>& state,
    const std::vector<ledger::UtxoStore>& mirror, std::uint64_t round,
    std::vector<Violation>& out) {
  if (state.size() != mirror.size()) {
    out.push_back({"utxo-mirror-digest", round,
                   "shard count mismatch: " + std::to_string(state.size()) +
                       " vs mirror " + std::to_string(mirror.size())});
    return;
  }
  for (std::size_t k = 0; k < state.size(); ++k) {
    if (state[k].digest() != state[k].full_digest()) {
      out.push_back({"utxo-incremental-digest", round,
                     "shard " + std::to_string(k) +
                         ": rolling digest != full recomputation"});
    }
    if (state[k].digest() != mirror[k].digest()) {
      out.push_back({"utxo-mirror-digest", round,
                     "shard " + std::to_string(k) +
                         ": engine view diverges from block replay (" +
                         std::to_string(state[k].size()) + " vs " +
                         std::to_string(mirror[k].size()) + " outputs)"});
    }
  }
}

void InvariantChecker::check_flow(const protocol::RoundFlow& flow,
                                  std::size_t carryover_size,
                                  std::uint64_t round,
                                  std::vector<Violation>& out) {
  if (flow.offered != flow.settled + flow.carried + flow.dropped) {
    out.push_back(
        {"flow-conservation", round,
         "offered " + std::to_string(flow.offered) + " != settled " +
             std::to_string(flow.settled) + " + carried " +
             std::to_string(flow.carried) + " + dropped " +
             std::to_string(flow.dropped)});
  }
  if (flow.foreign != 0) {
    out.push_back({"flow-conservation", round,
                   std::to_string(flow.foreign) +
                       " certified txs were never offered in any list"});
  }
  if (flow.committed > flow.settled) {
    out.push_back({"flow-conservation", round,
                   "committed " + std::to_string(flow.committed) +
                       " exceeds settled " + std::to_string(flow.settled)});
  }
  if (carryover_size != flow.carried) {
    out.push_back({"flow-conservation", round,
                   "carryover size " + std::to_string(carryover_size) +
                       " != carried " + std::to_string(flow.carried)});
  }
}

std::size_t InvariantChecker::check_epoch_boundary(
    const epoch::EpochHandoff& handoff) {
  const std::size_t before = violations_.size();
  check_handoff_state(handoff, engine_, violations_);
  check_handoff_membership(handoff, engine_.assignment(), engine_.params().m,
                           engine_.params().lambda,
                           engine_.params().referee_size, violations_);
  // Reputation conservation against the checker's own snapshot (taken at
  // the end of the epoch's last round): catches a reconfiguration that
  // mutates reputations even if the record agrees with the engine.
  const std::set<net::NodeId> fresh(handoff.joined.begin(),
                                    handoff.joined.end());
  double surviving = 0.0;
  for (net::NodeId id : handoff.members) {
    if (id < prev_reputation_.size() && !fresh.contains(id)) {
      surviving += prev_reputation_[id];
    }
  }
  if (std::abs(surviving - handoff.surviving_reputation) > 1e-6) {
    add("epoch-reputation-conservation", handoff.boundary_round,
        "handoff carries " + std::to_string(handoff.surviving_reputation) +
            " surviving reputation, pre-boundary snapshot sums to " +
            std::to_string(surviving));
  }
  const std::uint64_t round = handoff.boundary_round;
  check_committee_honesty(
      engine_.assignment(), handoff.members,
      [&](net::NodeId id) {
        // Out-of-universe ids in a tampered record were already flagged
        // by check_handoff_state; never index with them.
        return id < engine_.node_count() && engine_.misbehaved(id, round);
      },
      round, violations_);

  // --- Load-aware re-draw audit (src/epoch/rebalance.hpp). ---------------
  // The plan is recomputed from the checker's own pre-boundary map and the
  // engine's frozen load window, and its migration is replayed on the
  // checker's mirror stores — a forged or inconsistent record diverges
  // from one of those recomputations.
  if (engine_.params().rebalance && !handoff.plan) {
    add("epoch-rebalance-plan", round,
        "rebalance is enabled but the handoff records no plan");
  }
  if (handoff.plan) {
    const epoch::RebalancePlan& plan = *handoff.plan;
    if (plan.epoch != handoff.epoch) {
      add("epoch-rebalance-plan", round,
          "plan is stamped for epoch " + std::to_string(plan.epoch) +
              " inside the handoff for epoch " + std::to_string(handoff.epoch));
    }
    const auto& wl = engine_.workload();
    std::vector<std::pair<std::uint64_t, ledger::ShardId>> accounts;
    accounts.reserve(wl.config().users);
    for (std::uint32_t u = 0; u < wl.config().users; ++u) {
      const std::uint64_t key = wl.user_pk(u).y;
      accounts.emplace_back(key, mirror_map_.shard_key(key));
    }
    std::size_t corrupt = 0;
    for (net::NodeId id : handoff.members) {
      if (id < engine_.node_count() && engine_.misbehaved(id, round)) {
        corrupt += 1;
      }
    }
    check_rebalance_plan(plan, epoch::rebalance_config(engine_.params()),
                         mirror_map_, engine_.last_rebalance_window(),
                         accounts, handoff.members.size(), corrupt,
                         engine_.params().c, round, violations_);
    check_rebalance_migration(plan, mirror_, mirror_map_, round, violations_);
    // Deferred from check_round: with the mirror migrated onto the
    // successor map, engine state and block replay must agree again.
    check_state_digests(engine_.shard_state(), mirror_, round, violations_);
    if (engine_.shard_map()->digest() != plan.map_digest) {
      add("epoch-rebalance-mapping", round,
          "engine installed a shard map that differs from the plan's "
          "map_digest");
    }
    // The workload's cached per-user assignment must agree with the
    // installed map — a generator still routing off a stale cache would
    // silently undo the re-draw.
    std::size_t stale = 0;
    for (std::uint32_t u = 0; u < wl.config().users; ++u) {
      if (wl.cached_shard_of_user(u) !=
          engine_.shard_map()->shard(wl.user_pk(u))) {
        stale += 1;
      }
    }
    if (stale != 0) {
      add("epoch-rebalance-mapping", round,
          std::to_string(stale) +
              " workload users cache a shard assignment that diverges "
              "from the installed map");
    }
  }
  return violations_.size() - before;
}

void InvariantChecker::check_rebalance_plan(
    const epoch::RebalancePlan& plan, const epoch::RebalanceConfig& cfg,
    const ledger::ShardMap& pre_map, const ledger::ShardLoadWindow& window,
    const std::vector<std::pair<std::uint64_t, ledger::ShardId>>& accounts,
    std::size_t member_count, std::size_t corrupt_members,
    std::uint32_t committee_size, std::uint64_t round,
    std::vector<Violation>& out) {
  if (plan.m_before != pre_map.shards()) {
    out.push_back({"epoch-rebalance-mapping", round,
                   "plan claims m_before=" + std::to_string(plan.m_before) +
                       " against a map of " +
                       std::to_string(pre_map.shards()) + " shards"});
  }
  for (const auto& mv : plan.moves) {
    if (mv.to >= pre_map.shards()) {
      out.push_back({"epoch-rebalance-mapping", round,
                     "move of account " + std::to_string(mv.account) +
                         " targets out-of-range shard " +
                         std::to_string(mv.to)});
    }
    if (mv.from != pre_map.shard_key(mv.account)) {
      out.push_back({"epoch-rebalance-mapping", round,
                     "move claims account " + std::to_string(mv.account) +
                         " lives on shard " + std::to_string(mv.from) +
                         ", pre-boundary map homes it on shard " +
                         std::to_string(pre_map.shard_key(mv.account))});
    }
  }
  if (plan.moves.size() > cfg.max_moves) {
    out.push_back({"epoch-rebalance-plan", round,
                   "plan carries " + std::to_string(plan.moves.size()) +
                       " moves, cap is " + std::to_string(cfg.max_moves)});
  }
  // Determinism: the planner is a pure function of the window, roster and
  // membership — the record must equal its recomputation bit for bit.
  const epoch::RebalancePlan expect = epoch::plan_rebalance(
      cfg, pre_map, window, accounts, member_count, corrupt_members,
      committee_size, plan.epoch);
  if (plan.moves != expect.moves || plan.m_after != expect.m_after ||
      plan.fair_draw_tail != expect.fair_draw_tail ||
      plan.map_digest != expect.map_digest) {
    out.push_back({"epoch-rebalance-plan", round,
                   "recorded plan differs from its deterministic "
                   "recomputation (" +
                       std::to_string(plan.moves.size()) + " vs " +
                       std::to_string(expect.moves.size()) + " moves, m " +
                       std::to_string(plan.m_after) + " vs " +
                       std::to_string(expect.m_after) + ")"});
  }
  // Fair-draw safety of a split/merge recommendation: within budget and
  // under the rigged-draw threshold at the rescaled committee size.
  const std::uint32_t delta = plan.m_after > plan.m_before
                                  ? plan.m_after - plan.m_before
                                  : plan.m_before - plan.m_after;
  if (delta > cfg.split_merge_budget) {
    out.push_back({"epoch-rebalance-fair-draw", round,
                   "split/merge from m=" + std::to_string(plan.m_before) +
                       " to m=" + std::to_string(plan.m_after) +
                       " exceeds the budget of " +
                       std::to_string(cfg.split_merge_budget)});
  }
  if (plan.m_after != plan.m_before &&
      plan.fair_draw_tail > cfg.max_fair_draw_tail) {
    out.push_back({"epoch-rebalance-fair-draw", round,
                   "recommended re-draw carries fair-draw failure tail " +
                       std::to_string(plan.fair_draw_tail) +
                       ", above the safety threshold " +
                       std::to_string(cfg.max_fair_draw_tail)});
  }
}

void InvariantChecker::check_rebalance_migration(
    const epoch::RebalancePlan& plan, std::vector<ledger::UtxoStore>& mirror,
    ledger::ShardMap& mirror_map, std::uint64_t round,
    std::vector<Violation>& out) {
  ledger::Amount before = 0;
  for (const auto& store : mirror) before += store.total_value();
  std::shared_ptr<const ledger::ShardMap> next;
  try {
    next = std::make_shared<const ledger::ShardMap>(
        mirror_map.apply(plan.moves));
  } catch (const std::exception& e) {
    out.push_back({"epoch-rebalance-mapping", round,
                   std::string("plan moves do not apply to the mirror "
                               "map: ") +
                       e.what()});
    return;
  }
  if (next->digest() != plan.map_digest) {
    out.push_back({"epoch-rebalance-mapping", round,
                   "successor map replayed from the plan's moves does not "
                   "digest to the plan's map_digest"});
  }
  const std::uint64_t migrated =
      ledger::migrate_stores(mirror, mirror_map, next, plan.moves);
  if (migrated != plan.migrated_outputs) {
    out.push_back({"epoch-rebalance-tx-preservation", round,
                   "migration replay moved " + std::to_string(migrated) +
                       " outputs, plan records " +
                       std::to_string(plan.migrated_outputs)});
  }
  ledger::Amount after = 0;
  for (const auto& store : mirror) after += store.total_value();
  if (after != before) {
    out.push_back({"epoch-rebalance-tx-preservation", round,
                   "migration changed total mirror value from " +
                       std::to_string(before) + " to " +
                       std::to_string(after)});
  }
  // Stranded-entry scan: every surviving output must live on the shard
  // the successor map homes its owner on.
  for (const auto& store : mirror) {
    for (const ledger::OutPoint& op : store.outpoints()) {
      const auto entry = store.get(op);
      if (entry && next->shard_key(entry->owner.y) != store.shard()) {
        out.push_back({"epoch-rebalance-tx-preservation", round,
                       "output " + hex_prefix(op.tx) + ":" +
                           std::to_string(op.index) +
                           " is stranded on shard " +
                           std::to_string(store.shard()) +
                           ", its owner now homes on shard " +
                           std::to_string(next->shard_key(entry->owner.y))});
      }
    }
  }
  mirror_map = *next;
}

void InvariantChecker::check_handoff_state(const epoch::EpochHandoff& handoff,
                                           const protocol::Engine& engine,
                                           std::vector<Violation>& out) {
  const std::uint64_t round = handoff.boundary_round;
  if (handoff.boundary_round != engine.round()) {
    out.push_back({"epoch-handoff-continuity", round,
                   "handoff boundary round " +
                       std::to_string(handoff.boundary_round) +
                       " != engine round " + std::to_string(engine.round())});
  }
  if (handoff.chain_tip != engine.chain().tip().hash() ||
      handoff.chain_height != engine.chain().height()) {
    out.push_back({"epoch-handoff-continuity", round,
                   "handoff chain head (height " +
                       std::to_string(handoff.chain_height) +
                       ") does not match the carried chain (height " +
                       std::to_string(engine.chain().height()) + ")"});
  }
  if (handoff.randomness != engine.randomness()) {
    out.push_back({"epoch-handoff-continuity", round,
                   "handoff randomness differs from the installed epoch "
                   "randomness"});
  }
  const auto& state = engine.shard_state();
  if (handoff.shard_digests.size() != state.size()) {
    out.push_back({"epoch-handoff-continuity", round,
                   "handoff carries " +
                       std::to_string(handoff.shard_digests.size()) +
                       " shard digests for " + std::to_string(state.size()) +
                       " shards"});
  } else {
    for (std::size_t k = 0; k < state.size(); ++k) {
      if (handoff.shard_digests[k] != state[k].digest()) {
        out.push_back({"epoch-handoff-continuity", round,
                       "shard " + std::to_string(k) +
                           " digest in the handoff differs from the "
                           "authoritative view"});
      }
    }
  }
  if (handoff.carried_txs != engine.carryover().size() ||
      handoff.carried_digest != epoch::carryover_digest(engine.carryover())) {
    out.push_back({"epoch-tx-preservation", round,
                   "handoff claims " + std::to_string(handoff.carried_txs) +
                       " carried txs, Remaining TX List holds " +
                       std::to_string(engine.carryover().size()) +
                       " (or content digest differs)"});
  }
  const std::set<net::NodeId> fresh(handoff.joined.begin(),
                                    handoff.joined.end());
  double surviving = 0.0;
  for (net::NodeId id : handoff.members) {
    // The record is untrusted input (deserialized, possibly tampered):
    // an id outside the engine's universe is itself a violation, never
    // an index.
    if (id >= engine.node_count()) {
      out.push_back({"epoch-membership", round,
                     "handoff member " + std::to_string(id) +
                         " is outside the node universe (" +
                         std::to_string(engine.node_count()) + ")"});
      continue;
    }
    if (!fresh.contains(id)) surviving += engine.reputation(id);
  }
  if (std::abs(surviving - handoff.surviving_reputation) > 1e-6) {
    out.push_back({"epoch-reputation-conservation", round,
                   "handoff carries " +
                       std::to_string(handoff.surviving_reputation) +
                       " surviving reputation, engine holds " +
                       std::to_string(surviving)});
  }
}

void InvariantChecker::check_handoff_membership(
    const epoch::EpochHandoff& handoff,
    const protocol::RoundAssignment& assign, std::uint32_t m,
    std::uint32_t lambda, std::uint32_t referee_size,
    std::vector<Violation>& out) {
  const std::uint64_t round = handoff.boundary_round;
  const std::set<net::NodeId> members(handoff.members.begin(),
                                      handoff.members.end());
  if (members.size() != handoff.members.size()) {
    out.push_back({"epoch-membership", round,
                   "handoff membership list repeats node ids"});
  }
  for (net::NodeId id : handoff.joined) {
    if (!members.contains(id)) {
      out.push_back({"epoch-membership", round,
                     "joined node " + std::to_string(id) +
                         " is not in the recorded membership"});
    }
  }
  for (net::NodeId id : handoff.retired) {
    if (members.contains(id)) {
      out.push_back({"epoch-membership", round,
                     "retired node " + std::to_string(id) +
                         " is still in the recorded membership"});
    }
  }

  std::set<net::NodeId> seen;
  std::size_t assigned = 0;
  auto check_role = [&](net::NodeId id, const char* role) {
    assigned += 1;
    if (!members.contains(id)) {
      out.push_back({"epoch-membership", round,
                     std::string(role) + " " + std::to_string(id) +
                         " is not a recorded member"});
    }
    if (!seen.insert(id).second) {
      out.push_back({"epoch-membership", round,
                     "node " + std::to_string(id) +
                         " holds more than one role"});
    }
  };
  for (net::NodeId id : assign.referees) check_role(id, "referee");
  for (const auto& committee : assign.committees) {
    check_role(committee.leader, "leader");
    for (net::NodeId id : committee.partial) check_role(id, "partial member");
    for (net::NodeId id : committee.commons) check_role(id, "common member");
    if (committee.partial.size() != lambda) {
      out.push_back({"epoch-membership", round,
                     "committee " + std::to_string(committee.id) +
                         " partial set has " +
                         std::to_string(committee.partial.size()) +
                         " members, expected " + std::to_string(lambda)});
    }
  }
  if (assign.referees.size() != referee_size) {
    out.push_back({"epoch-membership", round,
                   "referee committee has " +
                       std::to_string(assign.referees.size()) +
                       " members, expected " + std::to_string(referee_size)});
  }
  if (assign.committees.size() != m) {
    out.push_back({"epoch-membership", round,
                   std::to_string(assign.committees.size()) +
                       " committees drawn, expected " + std::to_string(m)});
  }
  if (assigned != members.size()) {
    out.push_back({"epoch-membership", round,
                   std::to_string(assigned) + " role seats filled for " +
                       std::to_string(members.size()) + " members"});
  }
}

void InvariantChecker::check_committee_honesty(
    const protocol::RoundAssignment& assign,
    const std::vector<net::NodeId>& members,
    const std::function<bool(net::NodeId)>& corrupt, std::uint64_t round,
    std::vector<Violation>& out) {
  std::size_t corrupt_members = 0;
  for (net::NodeId id : members) {
    if (corrupt(id)) corrupt_members += 1;
  }
  // Outside the threat model (>= 1/3 corrupt overall) no per-committee
  // guarantee exists; scenarios probing failure are not flagged here.
  if (corrupt_members * 3 >= members.size()) return;

  // The paper's committee security is probabilistic: a fair draw loses a
  // committee's honest majority with the exact hypergeometric tail
  // probability of Eq. 3, which is non-negligible for the small
  // committees the harness runs. Flag a corrupt-majority group only when
  // that tail is statistically impossible for the population actually
  // drawn from — then the draw was rigged, not unlucky — so legitimate
  // executions stay deterministically green.
  constexpr double kRiggedDrawThreshold = 1e-6;
  auto audit = [&](const std::vector<net::NodeId>& group, std::string who) {
    std::size_t bad = 0;
    for (net::NodeId id : group) {
      if (corrupt(id)) bad += 1;
    }
    if (group.empty() || bad * 2 < group.size()) return;
    const double fair_draw_tail = analysis::committee_failure_exact(
        members.size(), corrupt_members, group.size());
    if (fair_draw_tail < kRiggedDrawThreshold) {
      out.push_back({"epoch-committee-honest-majority", round,
                     std::move(who) + " lost its honest majority (" +
                         std::to_string(bad) + "/" +
                         std::to_string(group.size()) +
                         " corrupt; fair-draw probability " +
                         std::to_string(fair_draw_tail) + ")"});
    }
  };
  audit(assign.referees, "referee committee");
  for (const auto& committee : assign.committees) {
    audit(committee.all_members(),
          "committee " + std::to_string(committee.id));
  }
}

void InvariantChecker::check_recovery(const protocol::RoundReport& report) {
  const std::uint64_t round = report.round;
  const auto& log = engine_.recovery_log();
  const auto& options = engine_.options();
  std::size_t committee_sum = 0;
  for (const auto& stats : report.committees) {
    committee_sum += stats.recoveries;
    if (stats.recoveries > options.max_recoveries_per_committee) {
      add("recovery-bounds", round,
          "committee " + std::to_string(stats.committee) + " recovered " +
              std::to_string(stats.recoveries) + " times (cap " +
              std::to_string(options.max_recoveries_per_committee) + ")");
    }
  }
  // (report.recoveries itself is assigned from the log's size, so the
  // cross-check that can actually fail is per-committee counts vs log.)
  if (committee_sum != log.size()) {
    add("recovery-bounds", round,
        "per-committee recoveries sum to " + std::to_string(committee_sum) +
            ", recovery log has " + std::to_string(log.size()));
  }

  const auto& assignment = engine_.last_assignment();
  for (const auto& event : log) {
    if (event.round != round) {
      add("recovery-bounds", round,
          "recovery event carries round " + std::to_string(event.round));
    }
    // An unreachable-but-honest leader (blackout, partition island) is
    // legitimately replaced — the committee cannot tell silence from a
    // crash, and the paper's timeout machinery must fire either way.
    if (!engine_.misbehaved(event.old_leader, round) &&
        !engine_.impaired(event.old_leader, round)) {
      add("honest-leader-evicted", round,
          "honest node " + std::to_string(event.old_leader) +
              " was evicted from committee " +
              std::to_string(event.committee));
    }
    if (event.committee < assignment.committees.size()) {
      const auto& partial = assignment.committees[event.committee].partial;
      if (std::find(partial.begin(), partial.end(), event.new_leader) ==
          partial.end()) {
        add("recovery-replacement", round,
            "replacement " + std::to_string(event.new_leader) +
                " is not in committee " + std::to_string(event.committee) +
                "'s partial set");
      }
    }
  }
  for (net::NodeId id : engine_.convicted_leaders()) {
    if (!engine_.misbehaved(id, round) && !engine_.impaired(id, round)) {
      add("honest-leader-convicted", round,
          "honest node " + std::to_string(id) + " was convicted");
    }
  }
}

void InvariantChecker::check_partition_round(
    const protocol::CommitteeRoundStats& stats, bool severed_last_round,
    bool eligible, std::uint64_t round, std::vector<Violation>& out) {
  if (stats.severed && stats.produced_output) {
    out.push_back({"partition-no-straddle", round,
                   "committee " + std::to_string(stats.committee) +
                       " certified output while severed below referee "
                       "quorum"});
  }
  if (!stats.severed && severed_last_round && eligible &&
      !stats.produced_output) {
    out.push_back({"partition-liveness-resume", round,
                   "committee " + std::to_string(stats.committee) +
                       " healed from a partition but produced no certified "
                       "output on its first healthy round"});
  }
}

void InvariantChecker::check_catchup(
    const std::vector<protocol::CatchUpRecord>& events,
    const crypto::Digest& expected, std::uint64_t round,
    std::vector<Violation>& out) {
  for (const auto& ev : events) {
    if (!ev.success) continue;
    if (ev.adopted_digest != expected) {
      out.push_back({"restart-replay-digest", round,
                     "node " + std::to_string(ev.node) +
                         " adopted a catch-up digest (confirmed by " +
                         std::to_string(ev.confirms) +
                         " referees) that differs from the honest block-"
                         "replay digest"});
    }
  }
}

void InvariantChecker::check_liveness(const protocol::RoundReport& report) {
  const std::uint64_t round = report.round;
  const auto& assignment = engine_.last_assignment();
  const auto& options = engine_.options();
  // Probabilistic wide-area loss makes any single round's output
  // best-effort: an intra result that never reaches a referee quorum is
  // correct degradation, not a liveness bug. Safety checks stay armed.
  const bool lossy = engine_.params().faults.drop > 0.0;
  // The recovery path runs through C_R (impeachment prosecution and the
  // re-selection consensus, Alg. 6): without an honest-active majority
  // of referees a faulty-leader committee legitimately cannot recover,
  // so the recoverable half of commit-or-recover is armed only when C_R
  // itself is inside the threat model.
  std::size_t honest_referees = 0;
  for (net::NodeId id : assignment.referees) {
    if (!engine_.misbehaved(id, round) && engine_.active(id, round) &&
        !engine_.impaired(id, round)) {
      honest_referees += 1;
    }
  }
  const bool referees_ok = honest_referees * 2 > assignment.referees.size();
  if (severed_prev_.size() < report.committees.size()) {
    severed_prev_.resize(report.committees.size(), false);
  }
  for (const auto& stats : report.committees) {
    if (stats.committee >= assignment.committees.size()) continue;
    const bool was_severed = stats.committee < severed_prev_.size() &&
                             severed_prev_[stats.committee];
    if (stats.committee < severed_prev_.size()) {
      severed_prev_[stats.committee] = stats.severed;
    }
    const auto& info = assignment.committees[stats.committee];
    const auto members = info.all_members();
    // Impaired (blacked-out / islanded) members cannot contribute to a
    // quorum this round, so they count as inactive for liveness demands.
    auto contributes = [&](net::NodeId id) {
      return !engine_.misbehaved(id, round) && engine_.active(id, round) &&
             !engine_.impaired(id, round);
    };
    std::size_t honest_active = 0;
    for (net::NodeId id : members) {
      if (contributes(id)) honest_active += 1;
    }
    const bool honest_majority = honest_active * 2 > members.size();

    const bool leader_ok = contributes(info.leader);
    bool recoverable = false;
    if (options.recovery_enabled && referees_ok &&
        stats.recoveries < options.max_recoveries_per_committee) {
      for (net::NodeId id : info.partial) {
        if (contributes(id)) {
          recoverable = true;
          break;
        }
      }
    }
    const bool eligible =
        !lossy && honest_majority && (leader_ok || recoverable);
    check_partition_round(stats, was_severed, eligible, round, violations_);
    // A committee severed this round (or re-forming right after a heal)
    // is exempt from the ordinary liveness demand; so is every committee
    // when the wide-area links drop messages.
    if (stats.severed || was_severed || lossy) continue;
    if (!honest_majority) continue;  // adversarial majority
    if ((leader_ok || recoverable) && !stats.produced_output) {
      add("commit-or-recover", round,
          "honest-majority committee " + std::to_string(stats.committee) +
              " (leader " + (leader_ok ? "honest" : "faulty, recoverable") +
              ") produced no certified output");
    }
  }
}

void InvariantChecker::check_reputation(const protocol::RoundReport& report) {
  const std::uint64_t round = report.round;
  // A vote score is a cosine in [-1, 1], so an honest node can lose at
  // most 1 reputation per round; the cube-root conviction punishment
  // (§VII-B) produces much larger drops at leader reputation levels.
  // Honest nodes must never take such a cliff.
  constexpr double kMaxHonestDrop = 1.0 + 1e-9;
  for (std::size_t i = 0; i < engine_.node_count(); ++i) {
    const auto id = static_cast<net::NodeId>(i);
    const double now = engine_.reputation(id);
    // An impaired (blacked-out / islanded) node is indistinguishable
    // from a crashed one, so a conviction-sized punishment on it is
    // correct protocol behaviour, not a cliff on an honest node.
    if (!engine_.misbehaved(id, round) && !engine_.impaired(id, round)) {
      const double delta = now - prev_reputation_[i];
      if (delta < -kMaxHonestDrop) {
        add("honest-reputation-cliff", round,
            "honest node " + std::to_string(id) + " lost " +
                std::to_string(-delta) + " reputation in one round");
      }
    }
    prev_reputation_[i] = now;
  }
}

}  // namespace cyc::harness
