#include "harness/scenario.hpp"

#include <array>
#include <stdexcept>

namespace cyc::harness {

namespace {

using protocol::Behavior;
using support::JsonValue;
using support::JsonWriter;

constexpr std::array<Behavior, 10> kAllBehaviors = {
    Behavior::kHonest,       Behavior::kCrash,       Behavior::kEquivocator,
    Behavior::kCommitForger, Behavior::kConcealer,   Behavior::kInverseVoter,
    Behavior::kRandomVoter,  Behavior::kLazyVoter,   Behavior::kImitator,
    Behavior::kFramer,
};

// Checked double -> unsigned conversions: a negative or out-of-range
// number in a spec is a user error worth a diagnostic, and casting a
// negative double to an unsigned type is undefined behaviour.
std::uint64_t checked_u64(double value, std::string_view key) {
  if (value < 0.0 || value > 1.8446744073709552e19) {
    throw std::runtime_error("scenario: field '" + std::string(key) +
                             "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(value);
}

std::uint32_t checked_u32(double value, std::string_view key) {
  if (value < 0.0 || value > 4294967295.0) {
    throw std::runtime_error("scenario: field '" + std::string(key) +
                             "' must fit in an unsigned 32-bit integer");
  }
  return static_cast<std::uint32_t>(value);
}

std::uint64_t u64_field(const JsonValue& v, std::string_view key,
                        std::uint64_t fallback) {
  return checked_u64(v.number_or(key, static_cast<double>(fallback)), key);
}

std::uint32_t u32_field(const JsonValue& v, std::string_view key,
                        std::uint32_t fallback) {
  return checked_u32(v.number_or(key, fallback), key);
}

protocol::Params params_from_json(const JsonValue& v,
                                  const protocol::Params& base) {
  protocol::Params p = base;
  p.m = u32_field(v, "m", p.m);
  p.c = u32_field(v, "c", p.c);
  p.lambda = u32_field(v, "lambda", p.lambda);
  p.referee_size = u32_field(v, "referee_size", p.referee_size);
  p.txs_per_committee = u32_field(v, "txs_per_committee", p.txs_per_committee);
  p.cross_shard_fraction =
      v.number_or("cross_shard_fraction", p.cross_shard_fraction);
  p.invalid_fraction = v.number_or("invalid_fraction", p.invalid_fraction);
  p.users = u32_field(v, "users", p.users);
  p.arrival_rate = v.number_or("arrival_rate", p.arrival_rate);
  p.zipf_s = v.number_or("zipf_s", p.zipf_s);
  p.mempool_cap = u32_field(v, "mempool_cap", p.mempool_cap);
  if (p.arrival_rate > 0.0 && p.mempool_cap == 0) {
    // A zero-capacity mempool silently drops every open-loop arrival —
    // reject the spec instead of running a vacuous experiment.
    throw std::runtime_error(
        "scenario: mempool_cap must be > 0 when arrival_rate > 0 (a "
        "zero-capacity mempool drops every arrival)");
  }
  p.rebalance = v.bool_or("rebalance", p.rebalance);
  p.rebalance_moves = u32_field(v, "rebalance_moves", p.rebalance_moves);
  p.rebalance_split_budget =
      u32_field(v, "rebalance_split_budget", p.rebalance_split_budget);
  p.capacity_min = u32_field(v, "capacity_min", p.capacity_min);
  p.capacity_max = u32_field(v, "capacity_max", p.capacity_max);
  p.standby = u32_field(v, "standby", p.standby);
  p.pow_bits = u32_field(v, "pow_bits", p.pow_bits);
  p.seed = u64_field(v, "seed", p.seed);
  p.delays.delta = v.number_or("delta", p.delays.delta);
  p.delays.gamma = v.number_or("gamma", p.delays.gamma);
  p.delays.jitter = v.number_or("jitter", p.delays.jitter);
  p.faults.drop = v.number_or("fault_drop", p.faults.drop);
  p.faults.duplicate = v.number_or("fault_duplicate", p.faults.duplicate);
  p.faults.reorder = v.number_or("fault_reorder", p.faults.reorder);
  p.faults.reorder_scale =
      v.number_or("fault_reorder_scale", p.faults.reorder_scale);
  p.config_duration = v.number_or("config_duration", p.config_duration);
  p.semicommit_duration =
      v.number_or("semicommit_duration", p.semicommit_duration);
  p.intra_duration = v.number_or("intra_duration", p.intra_duration);
  p.inter_duration = v.number_or("inter_duration", p.inter_duration);
  p.reputation_duration =
      v.number_or("reputation_duration", p.reputation_duration);
  p.selection_duration =
      v.number_or("selection_duration", p.selection_duration);
  p.block_duration = v.number_or("block_duration", p.block_duration);
  return p;
}

protocol::AdversaryConfig adversary_from_json(const JsonValue& v) {
  protocol::AdversaryConfig adv;
  adv.corrupt_fraction = v.number_or("corrupt_fraction", adv.corrupt_fraction);
  adv.forced_corrupt_leader_fraction = v.number_or(
      "forced_corrupt_leader_fraction", adv.forced_corrupt_leader_fraction);
  if (const JsonValue* mix = v.find("mix")) {
    adv.mix.clear();
    for (const auto& entry : mix->as_array()) {
      Behavior b;
      const std::string token = entry.string_or("behavior", "");
      if (!behavior_from_token(token, b)) {
        throw std::runtime_error("scenario: unknown behavior '" + token + "'");
      }
      adv.mix.push_back({b, entry.number_or("weight", 1.0)});
    }
  }
  return adv;
}

protocol::EngineOptions options_from_json(const JsonValue& v) {
  protocol::EngineOptions o;
  o.recovery_enabled = v.bool_or("recovery_enabled", o.recovery_enabled);
  o.reputation_leader_selection =
      v.bool_or("reputation_leader_selection", o.reputation_leader_selection);
  o.leader_bonus = v.number_or("leader_bonus", o.leader_bonus);
  o.referee_credit = v.number_or("referee_credit", o.referee_credit);
  o.max_recoveries_per_committee = u32_field(
      v, "max_recoveries_per_committee", o.max_recoveries_per_committee);
  o.extension_precommunication = v.bool_or("extension_precommunication",
                                           o.extension_precommunication);
  o.extension_parallel_blocks =
      v.bool_or("extension_parallel_blocks", o.extension_parallel_blocks);
  return o;
}

bool event_kind_from_token(std::string_view token, ScenarioEvent::Kind& out) {
  if (token == "corrupt") out = ScenarioEvent::Kind::kCorrupt;
  else if (token == "crash") out = ScenarioEvent::Kind::kCrash;
  else if (token == "restart") out = ScenarioEvent::Kind::kRestart;
  else if (token == "partition") out = ScenarioEvent::Kind::kPartition;
  else if (token == "heal") out = ScenarioEvent::Kind::kHeal;
  else if (token == "blackout") out = ScenarioEvent::Kind::kBlackout;
  else return false;
  return true;
}

std::string_view event_kind_token(ScenarioEvent::Kind k) {
  switch (k) {
    case ScenarioEvent::Kind::kCorrupt: return "corrupt";
    case ScenarioEvent::Kind::kCrash: return "crash";
    case ScenarioEvent::Kind::kRestart: return "restart";
    case ScenarioEvent::Kind::kPartition: return "partition";
    case ScenarioEvent::Kind::kHeal: return "heal";
    case ScenarioEvent::Kind::kBlackout: return "blackout";
  }
  return "corrupt";
}

ScenarioEvent event_from_json(const JsonValue& v) {
  ScenarioEvent ev;
  ev.round = u64_field(v, "round", ev.round);
  const std::string kind = v.string_or("kind", "corrupt");
  if (!event_kind_from_token(kind, ev.kind)) {
    throw std::runtime_error("scenario: unknown event kind '" + kind + "'");
  }
  const std::string target = v.string_or("target", "node");
  if (target == "node") {
    ev.target = ScenarioEvent::Target::kNode;
    ev.node = u32_field(v, "node", ev.node);
  } else if (target == "leader-of") {
    ev.target = ScenarioEvent::Target::kLeaderOf;
    ev.committee = u32_field(v, "committee", ev.committee);
  } else if (target == "referee-at") {
    ev.target = ScenarioEvent::Target::kRefereeAt;
    ev.committee = u32_field(v, "committee", ev.committee);
  } else if (target == "committee") {
    ev.target = ScenarioEvent::Target::kCommittee;
    ev.committee = u32_field(v, "committee", ev.committee);
  } else {
    throw std::runtime_error("scenario: unknown event target '" + target + "'");
  }
  const std::string token = v.string_or("behavior", "crash");
  if (!behavior_from_token(token, ev.behavior)) {
    throw std::runtime_error("scenario: unknown behavior '" + token + "'");
  }
  ev.duration = u64_field(v, "duration", ev.duration);
  if (ev.duration == 0) {
    throw std::runtime_error("scenario: event duration must be > 0");
  }
  return ev;
}

std::string_view event_target_token(ScenarioEvent::Target t) {
  switch (t) {
    case ScenarioEvent::Target::kNode: return "node";
    case ScenarioEvent::Target::kLeaderOf: return "leader-of";
    case ScenarioEvent::Target::kRefereeAt: return "referee-at";
    case ScenarioEvent::Target::kCommittee: return "committee";
  }
  return "node";
}

}  // namespace

std::string_view behavior_token(Behavior b) {
  return protocol::behavior_name(b);
}

bool behavior_from_token(std::string_view token, Behavior& out) {
  for (Behavior b : kAllBehaviors) {
    if (protocol::behavior_name(b) == token) {
      out = b;
      return true;
    }
  }
  return false;
}

ScenarioSpec ScenarioSpec::from_json(const JsonValue& v) {
  if (!v.is_object()) {
    throw std::runtime_error("scenario: expected a JSON object");
  }
  ScenarioSpec spec;
  spec.name = v.string_or("name", spec.name);
  if (const JsonValue* params = v.find("params")) {
    spec.params = params_from_json(*params, spec.params);
  }
  if (const JsonValue* adv = v.find("adversary")) {
    spec.adversary = adversary_from_json(*adv);
  }
  if (const JsonValue* options = v.find("options")) {
    spec.options = options_from_json(*options);
  }
  spec.rounds = static_cast<std::size_t>(u64_field(v, "rounds", spec.rounds));
  if (spec.rounds == 0) throw std::runtime_error("scenario: rounds must be > 0");
  spec.epochs = static_cast<std::size_t>(u64_field(v, "epochs", spec.epochs));
  if (spec.epochs == 0) throw std::runtime_error("scenario: epochs must be > 0");
  spec.churn_rate = v.number_or("churn_rate", spec.churn_rate);
  if (spec.churn_rate < 0.0 || spec.churn_rate > 1.0) {
    throw std::runtime_error("scenario: churn_rate must be in [0, 1]");
  }
  if (const JsonValue* seeds = v.find("seeds")) {
    spec.seeds.clear();
    for (const auto& s : seeds->as_array()) {
      spec.seeds.push_back(checked_u64(s.as_number(), "seeds"));
    }
    if (spec.seeds.empty()) {
      throw std::runtime_error("scenario: seeds must be non-empty");
    }
  }
  if (const JsonValue* events = v.find("events")) {
    for (const auto& e : events->as_array()) {
      spec.events.push_back(event_from_json(e));
    }
  }
  return spec;
}

std::vector<ScenarioSpec> ScenarioSpec::list_from_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  std::vector<ScenarioSpec> specs;
  if (doc.is_array()) {
    for (const auto& entry : doc.as_array()) specs.push_back(from_json(entry));
  } else if (const JsonValue* list = doc.find("scenarios")) {
    for (const auto& entry : list->as_array()) specs.push_back(from_json(entry));
  } else {
    specs.push_back(from_json(doc));
  }
  if (specs.empty()) throw std::runtime_error("scenario: empty scenario list");
  return specs;
}

void ScenarioSpec::to_json(JsonWriter& w) const {
  w.begin_object();
  w.field("name", name);
  w.key("params");
  w.begin_object();
  w.field("m", params.m);
  w.field("c", params.c);
  w.field("lambda", params.lambda);
  w.field("referee_size", params.referee_size);
  w.field("txs_per_committee", params.txs_per_committee);
  w.field("cross_shard_fraction", params.cross_shard_fraction);
  w.field("invalid_fraction", params.invalid_fraction);
  w.field("users", params.users);
  // Emitted only when the open-loop source is on: the source is inert at
  // rate 0 and zipf_s / mempool_cap are meaningless without it, so
  // legacy closed-loop specs keep their exact byte encoding.
  if (params.arrival_rate > 0.0) {
    w.field("arrival_rate", params.arrival_rate);
    w.field("zipf_s", params.zipf_s);
    w.field("mempool_cap", params.mempool_cap);
  }
  // Emitted only when the load-aware re-draw is on — specs without it
  // keep their exact byte encoding.
  if (params.rebalance) {
    w.field("rebalance", params.rebalance);
    w.field("rebalance_moves", params.rebalance_moves);
    w.field("rebalance_split_budget", params.rebalance_split_budget);
  }
  w.field("capacity_min", params.capacity_min);
  w.field("capacity_max", params.capacity_max);
  w.field("standby", params.standby);
  w.field("pow_bits", static_cast<std::uint32_t>(params.pow_bits));
  w.field("seed", params.seed);
  w.field("delta", params.delays.delta);
  w.field("gamma", params.delays.gamma);
  w.field("jitter", params.delays.jitter);
  // Emitted only when probabilistic faults are on: legacy specs stay
  // byte-identical, and reorder_scale is meaningless without an axis.
  if (params.faults.any()) {
    w.field("fault_drop", params.faults.drop);
    w.field("fault_duplicate", params.faults.duplicate);
    w.field("fault_reorder", params.faults.reorder);
    w.field("fault_reorder_scale", params.faults.reorder_scale);
  }
  w.field("config_duration", params.config_duration);
  w.field("semicommit_duration", params.semicommit_duration);
  w.field("intra_duration", params.intra_duration);
  w.field("inter_duration", params.inter_duration);
  w.field("reputation_duration", params.reputation_duration);
  w.field("selection_duration", params.selection_duration);
  w.field("block_duration", params.block_duration);
  w.end_object();
  w.key("adversary");
  w.begin_object();
  w.field("corrupt_fraction", adversary.corrupt_fraction);
  w.field("forced_corrupt_leader_fraction",
          adversary.forced_corrupt_leader_fraction);
  w.key("mix");
  w.begin_array();
  for (const auto& entry : adversary.mix) {
    w.begin_object();
    w.field("behavior", behavior_token(entry.behavior));
    w.field("weight", entry.weight);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("options");
  w.begin_object();
  w.field("recovery_enabled", options.recovery_enabled);
  w.field("reputation_leader_selection", options.reputation_leader_selection);
  w.field("leader_bonus", options.leader_bonus);
  w.field("referee_credit", options.referee_credit);
  w.field("max_recoveries_per_committee",
          options.max_recoveries_per_committee);
  w.field("extension_precommunication", options.extension_precommunication);
  w.field("extension_parallel_blocks", options.extension_parallel_blocks);
  w.end_object();
  w.field("rounds", static_cast<std::uint64_t>(rounds));
  w.field("epochs", static_cast<std::uint64_t>(epochs));
  w.field("churn_rate", churn_rate);
  w.key("seeds");
  w.begin_array();
  for (std::uint64_t s : seeds) w.value(s);
  w.end_array();
  w.key("events");
  w.begin_array();
  for (const auto& ev : events) {
    // Omit-when-default keeps legacy (corrupt-only) specs byte-identical
    // to their pre-fault-fabric encoding.
    w.begin_object();
    w.field("round", ev.round);
    if (ev.kind != ScenarioEvent::Kind::kCorrupt) {
      w.field("kind", event_kind_token(ev.kind));
    }
    w.field("target", event_target_token(ev.target));
    if (ev.target == ScenarioEvent::Target::kNode) {
      w.field("node", ev.node);
    } else {
      w.field("committee", ev.committee);
    }
    if (ev.kind == ScenarioEvent::Kind::kCorrupt) {
      w.field("behavior", behavior_token(ev.behavior));
    }
    if (ev.kind == ScenarioEvent::Kind::kPartition ||
        ev.kind == ScenarioEvent::Kind::kBlackout) {
      w.field("duration", ev.duration);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string ScenarioSpec::to_json_text() const {
  JsonWriter w;
  to_json(w);
  return w.str();
}

ScenarioSpec ScenarioSpec::from_json_text(std::string_view text) {
  return from_json(JsonValue::parse(text));
}

std::vector<ScenarioSpec> build_matrix(const MatrixAxes& axes) {
  auto adversaries = axes.adversaries;
  if (adversaries.empty()) adversaries.push_back({"honest", {}});
  auto delays = axes.delays;
  if (delays.empty()) delays.push_back({"base", axes.base.delays});
  auto cross = axes.cross_shard_fractions;
  if (cross.empty()) cross.push_back(axes.base.cross_shard_fraction);
  auto capacities = axes.capacities;
  if (capacities.empty()) {
    capacities.push_back({axes.base.capacity_min, axes.base.capacity_max});
  }
  // The newer axes keep legacy scenario names stable: an empty axis
  // contributes the base value and no name segment.
  const bool shapes_swept = !axes.committee_shapes.empty();
  auto shapes = axes.committee_shapes;
  if (shapes.empty()) shapes.push_back({axes.base.m, axes.base.c});
  const bool invalid_swept = !axes.invalid_fractions.empty();
  auto invalids = axes.invalid_fractions;
  if (invalids.empty()) invalids.push_back(axes.base.invalid_fraction);
  const bool epochs_swept = !axes.epoch_points.empty();
  auto epoch_points = axes.epoch_points;
  if (epoch_points.empty()) epoch_points.push_back({1, 0.0});
  const bool rebalance_swept = !axes.rebalance_modes.empty();
  auto rebalances = axes.rebalance_modes;
  if (rebalances.empty()) rebalances.push_back(axes.base.rebalance);

  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return std::string(buf);
  };

  std::vector<ScenarioSpec> out;
  for (const auto& [adv_name, adv] : adversaries) {
    for (const auto& [delay_name, delay] : delays) {
      for (const double frac : cross) {
        for (const auto& [cap_min, cap_max] : capacities) {
          for (const auto& [m, c] : shapes) {
            for (const double invalid : invalids) {
              for (const auto& [epochs, churn] : epoch_points) {
                for (const bool rebalance : rebalances) {
                  ScenarioSpec spec;
                  spec.params = axes.base;
                  spec.params.delays = delay;
                  spec.params.cross_shard_fraction = frac;
                  spec.params.capacity_min = cap_min;
                  spec.params.capacity_max = cap_max;
                  spec.params.m = m;
                  spec.params.c = c;
                  spec.params.invalid_fraction = invalid;
                  spec.params.rebalance = rebalance;
                  spec.adversary = adv;
                  spec.options = axes.options;
                  spec.rounds = axes.rounds;
                  spec.epochs = epochs;
                  spec.churn_rate = churn;
                  spec.seeds = axes.seeds;
                  spec.name = adv_name + "/" + delay_name + "/x" + fmt(frac) +
                              "/cap" + std::to_string(cap_min) + "-" +
                              std::to_string(cap_max);
                  if (shapes_swept) {
                    spec.name += "/m" + std::to_string(m) + "c" +
                                 std::to_string(c);
                  }
                  if (invalid_swept) spec.name += "/inv" + fmt(invalid);
                  if (epochs_swept) {
                    spec.name += "/e" + std::to_string(epochs) + "ch" +
                                 fmt(churn);
                  }
                  if (rebalance_swept) {
                    spec.name += rebalance ? "/rebal" : "/static";
                  }
                  out.push_back(std::move(spec));
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

std::vector<ScenarioSpec> default_matrix() {
  MatrixAxes axes;
  axes.base.m = 3;
  axes.base.c = 9;
  axes.base.lambda = 3;
  axes.base.referee_size = 5;
  axes.base.txs_per_committee = 10;
  axes.base.invalid_fraction = 0.1;
  axes.base.users = 20 * axes.base.m;
  // ROADMAP growth: 3 rounds (reputation-ranked re-selection gets a
  // full cycle on every crossed point) and a third seed per scenario.
  axes.rounds = 3;
  axes.seeds = {1, 2, 3};

  // Adversary axis: honest baseline, misvoting members, and the leader
  // attacks that force the impeachment / recovery path.
  protocol::AdversaryConfig voters;
  voters.corrupt_fraction = 0.25;
  voters.mix = {{protocol::Behavior::kInverseVoter, 1.0},
                {protocol::Behavior::kRandomVoter, 1.0},
                {protocol::Behavior::kLazyVoter, 1.0}};
  protocol::AdversaryConfig leaders;
  leaders.corrupt_fraction = 0.15;
  leaders.forced_corrupt_leader_fraction = 0.67;
  leaders.mix = {{protocol::Behavior::kCrash, 1.0},
                 {protocol::Behavior::kEquivocator, 1.0},
                 {protocol::Behavior::kCommitForger, 1.0},
                 {protocol::Behavior::kConcealer, 1.0}};
  axes.adversaries = {
      {"honest", {}}, {"voters", voters}, {"leaders", leaders}};

  // Delay axis: the paper's default regime and a slower, jitterier
  // partial-sync regime (delivery reordering on non-key links).
  net::DelayModel lan;  // delta 1, gamma 5, jitter 1
  net::DelayModel jittery;
  jittery.delta = 1.0;
  jittery.gamma = 7.0;
  jittery.jitter = 3.0;
  axes.delays = {{"lan", lan}, {"jittery", jittery}};

  axes.cross_shard_fractions = {0.1, 0.4};
  // 4..16 straddles the 10-tx list length, so skewed nodes actually vote
  // Unknown on list tails (uniform 64 never does).
  axes.capacities = {{64, 64}, {4, 16}};
  std::vector<ScenarioSpec> matrix = build_matrix(axes);

  // Mid-run churn scenarios on top of the crossed axes: corruption
  // requested while the run is in flight (effective one round later,
  // §III-C), hitting a committee leader and a referee seat.
  {
    // An equivocating leader (crash would sit out the next selection and
    // never regain a role; equivocators stay active, keep their
    // reputation rank, and get re-selected — then caught).
    ScenarioSpec churn;
    churn.name = "churn/leader-equivocate";
    churn.params = axes.base;
    churn.rounds = 3;
    churn.seeds = axes.seeds;
    churn.events.push_back({1, ScenarioEvent::Target::kLeaderOf, 0, 0,
                            protocol::Behavior::kEquivocator});
    matrix.push_back(churn);

    ScenarioSpec referee_churn;
    referee_churn.name = "churn/referee-crash";
    referee_churn.params = axes.base;
    referee_churn.rounds = 3;
    referee_churn.seeds = axes.seeds;
    referee_churn.events.push_back({1, ScenarioEvent::Target::kRefereeAt, 0, 0,
                                    protocol::Behavior::kCrash});
    referee_churn.events.push_back({2, ScenarioEvent::Target::kRefereeAt, 0, 1,
                                    protocol::Behavior::kCrash});
    matrix.push_back(referee_churn);
  }

  // Committee-shape point: more, smaller committees than the base shape
  // (the c/m axis ROADMAP listed as unswept) — committee configuration,
  // sortition spread and the cross-shard mesh all scale with m.
  {
    ScenarioSpec shape;
    shape.name = "shape/m4c6";
    shape.params = axes.base;
    shape.params.m = 4;
    shape.params.c = 6;
    shape.params.lambda = 2;
    shape.params.users = 20 * shape.params.m;
    shape.rounds = 2;
    shape.seeds = axes.seeds;
    matrix.push_back(shape);
  }

  // High invalid-fraction point: a third of the offered workload is
  // ground-truth invalid, so the §IV-G drop path (and with it flow
  // conservation at dropped > 0) is exercised, not just the happy path.
  {
    ScenarioSpec invalid;
    invalid.name = "invalid/x0.3";
    invalid.params = axes.base;
    invalid.params.invalid_fraction = 0.3;
    invalid.rounds = 2;
    invalid.seeds = axes.seeds;
    matrix.push_back(invalid);
  }

  // Fault-fabric scenarios (tentpole): a committee partitioned below
  // quorum then healed, a crash -> restart -> referee catch-up lifecycle,
  // and probabilistic loss on the wide-area links. All must stay green:
  // the invariant checker parks commit-or-recover for severed / lossy
  // points but keeps every safety check armed.
  {
    ScenarioSpec partition;
    partition.name = "faults/partition-heal";
    partition.params = axes.base;
    partition.rounds = 4;
    partition.seeds = axes.seeds;
    ScenarioEvent cut;
    cut.round = 2;
    cut.kind = ScenarioEvent::Kind::kPartition;
    cut.target = ScenarioEvent::Target::kCommittee;
    cut.committee = 0;
    cut.duration = 2;  // would cover rounds 2-3...
    partition.events.push_back(cut);
    ScenarioEvent heal;
    heal.round = 3;  // ...but an explicit heal closes it after round 2
    heal.kind = ScenarioEvent::Kind::kHeal;
    partition.events.push_back(heal);
    matrix.push_back(partition);

    ScenarioSpec restart;
    restart.name = "faults/crash-restart";
    restart.params = axes.base;
    restart.rounds = 4;
    restart.seeds = axes.seeds;
    ScenarioEvent crash;
    crash.round = 1;
    crash.kind = ScenarioEvent::Kind::kCrash;
    crash.target = ScenarioEvent::Target::kNode;
    crash.node = 13;
    restart.events.push_back(crash);
    ScenarioEvent back;
    back.round = 3;
    back.kind = ScenarioEvent::Kind::kRestart;
    back.target = ScenarioEvent::Target::kNode;
    back.node = 13;
    restart.events.push_back(back);
    matrix.push_back(restart);

    ScenarioSpec lossy;
    lossy.name = "faults/lossy-wan";
    lossy.params = axes.base;
    lossy.params.faults.drop = 0.1;
    lossy.params.faults.duplicate = 0.05;
    lossy.params.faults.reorder = 0.3;
    lossy.rounds = 3;
    lossy.seeds = axes.seeds;
    matrix.push_back(lossy);
  }

  // Multi-epoch point: three epochs with PoW identity churn across a
  // standby pool, under the default matrix's misvoting adversary mix —
  // every boundary is audited via its EpochHandoff (continuity, tx
  // preservation, reputation conservation, honest-majority committees).
  {
    ScenarioSpec epochs;
    epochs.name = "epoch/churn0.2";
    epochs.params = axes.base;
    epochs.params.standby = 8;
    epochs.rounds = 2;
    epochs.epochs = 3;
    epochs.churn_rate = 0.2;
    epochs.adversary = voters;
    epochs.seeds = axes.seeds;
    matrix.push_back(epochs);
  }

  // Bounded open-loop point: Poisson/Zipf sustained traffic at ~83% of
  // nominal capacity with a small per-shard mempool, exercising the
  // admission / drain / latency-stamping path under the tier-1 gate.
  {
    ScenarioSpec load;
    load.name = "load/openloop";
    load.params = axes.base;
    load.params.arrival_rate = 0.15;
    load.params.zipf_s = 1.1;
    load.params.mempool_cap = 24;
    load.rounds = 3;
    load.seeds = axes.seeds;
    matrix.push_back(load);
  }
  return matrix;
}

}  // namespace cyc::harness
