#include "harness/runner.hpp"

#include "crypto/schnorr.hpp"
#include "epoch/manager.hpp"
#include "support/parallel.hpp"

namespace cyc::harness {

namespace {

// Mid-run corruption / churn: requested at round start, effective one
// round later (§III-C). Fault-fabric events (partition / blackout /
// restart) take effect immediately — they model the network, not key
// corruption. Targets resolve against the round's roles.
void apply_events(const ScenarioSpec& spec, protocol::Engine& engine,
                  std::uint64_t round) {
  for (const auto& ev : spec.events) {
    if (ev.round != round) continue;
    std::vector<net::NodeId> victims;
    switch (ev.target) {
      case ScenarioEvent::Target::kNode:
        if (ev.node < engine.node_count()) victims.push_back(ev.node);
        break;
      case ScenarioEvent::Target::kLeaderOf:
        if (ev.committee < engine.assignment().committees.size()) {
          victims.push_back(engine.assignment().committees[ev.committee].leader);
        }
        break;
      case ScenarioEvent::Target::kRefereeAt:
        if (!engine.assignment().referees.empty()) {
          victims.push_back(engine.assignment()
                                .referees[ev.committee %
                                          engine.assignment().referees.size()]);
        }
        break;
      case ScenarioEvent::Target::kCommittee:
        if (ev.committee < engine.assignment().committees.size()) {
          victims = engine.assignment().committees[ev.committee].all_members();
        }
        break;
    }
    switch (ev.kind) {
      case ScenarioEvent::Kind::kCorrupt:
        for (net::NodeId v : victims) engine.corrupt(v, ev.behavior);
        break;
      case ScenarioEvent::Kind::kCrash:
        for (net::NodeId v : victims) {
          engine.corrupt(v, protocol::Behavior::kCrash);
        }
        break;
      case ScenarioEvent::Kind::kRestart:
        for (net::NodeId v : victims) engine.restart(v);
        break;
      case ScenarioEvent::Kind::kPartition:
        if (!victims.empty()) {
          engine.partition(victims, ev.round, ev.round + ev.duration);
        }
        break;
      case ScenarioEvent::Kind::kHeal:
        engine.heal(ev.round);
        break;
      case ScenarioEvent::Kind::kBlackout:
        for (net::NodeId v : victims) {
          engine.blackout(v, ev.round, ev.round + ev.duration);
        }
        break;
    }
  }
}

void accumulate(ScenarioOutcome& outcome,
                const protocol::RoundReport& report) {
  outcome.committed += report.txs_committed;
  outcome.offered += report.txs_offered;
  outcome.cross_committed += report.cross_committed;
  outcome.recoveries += report.recoveries;
  outcome.invalid_committed += report.invalid_committed;
  outcome.total_fees += report.total_fees;
  outcome.faults += report.faults;
}

std::string digest_hex(const crypto::Digest& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

}  // namespace

std::string trace_file_name(const std::string& scenario, std::uint64_t seed) {
  std::string name;
  name.reserve(scenario.size());
  for (char c : scenario) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    name.push_back(keep ? c : '-');
  }
  return name + "-s" + std::to_string(seed) + ".trace.json";
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec, std::uint64_t seed,
                             obs::Observer* observer) {
  protocol::Params params = spec.params;
  params.seed = seed;

  if (observer != nullptr) {
    // The verify cache is thread-local and shared by every job a worker
    // runs; clearing it here pins the per-run hit/miss deltas to the run
    // itself, independent of job-to-thread placement.
    crypto::verify_cache::clear();
  }

  ScenarioOutcome outcome;
  outcome.scenario = spec.name;
  outcome.seed = seed;
  outcome.epochs = spec.epochs;

  if (spec.epochs <= 1) {
    // Single-epoch path: a bare Engine, bit-for-bit the pre-epoch
    // harness behaviour.
    protocol::Engine engine(params, spec.adversary, spec.options);
    engine.attach_observer(observer);
    InvariantChecker checker(engine);
    outcome.rounds = spec.rounds;
    for (std::uint64_t r = 1; r <= spec.rounds; ++r) {
      apply_events(spec, engine, r);
      const protocol::RoundReport report = engine.run_round();
      checker.check_round(report);
      accumulate(outcome, report);
    }
    outcome.carryover = engine.carryover_size();
    outcome.chain_height = engine.chain().height();
    outcome.violations = checker.violations();
    return outcome;
  }

  // Multi-epoch path: the epoch lifecycle drives the engine; every
  // boundary's EpochHandoff is audited in addition to the per-round
  // suite. Event rounds are absolute (continuing across boundaries).
  epoch::EpochConfig config;
  config.epochs = spec.epochs;
  config.rounds_per_epoch = spec.rounds;
  config.churn_rate = spec.churn_rate;
  epoch::EpochManager manager(params, spec.adversary, config, spec.options);
  manager.engine().attach_observer(observer);
  InvariantChecker checker(manager.engine());
  outcome.rounds = manager.total_rounds();

  std::size_t audited = 0;
  for (std::uint64_t r = 1; !manager.finished(); ++r) {
    apply_events(spec, manager.engine(), r);
    const protocol::RoundReport report = manager.run_round();
    checker.check_round(report);
    accumulate(outcome, report);
    while (audited < manager.handoffs().size()) {
      checker.check_epoch_boundary(manager.handoffs()[audited]);
      audited += 1;
    }
  }
  for (const auto& handoff : manager.handoffs()) {
    outcome.members_joined += handoff.joined.size();
    outcome.members_retired += handoff.retired.size();
  }
  outcome.boundaries = manager.handoffs().size();
  if (!manager.handoffs().empty()) {
    outcome.last_handoff_digest =
        digest_hex(manager.handoffs().back().digest());
  }
  outcome.carryover = manager.engine().carryover_size();
  outcome.chain_height = manager.engine().chain().height();
  outcome.violations = checker.violations();
  return outcome;
}

MatrixResult run_matrix(const std::vector<ScenarioSpec>& scenarios,
                        unsigned threads, const TraceOptions* trace) {
  // Flatten (scenario, seed) into one job list so the pool load-balances
  // across both axes; parallel_sweep returns results in index order, so
  // the matrix outcome is independent of scheduling.
  struct Job {
    const ScenarioSpec* spec;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const auto& spec : scenarios) {
    for (std::uint64_t seed : spec.seeds) jobs.push_back({&spec, seed});
  }

  MatrixResult result;
  result.outcomes = support::parallel_sweep(
      jobs.size(),
      [&](std::size_t i) {
        if (trace == nullptr) {
          return run_scenario(*jobs[i].spec, jobs[i].seed);
        }
        // One observer and one file per point: the artifact set does not
        // depend on which worker ran which job.
        obs::Observer observer(trace->capacity);
        if (trace->wall_clock) observer.trace.enable_wall_clock();
        ScenarioOutcome outcome =
            run_scenario(*jobs[i].spec, jobs[i].seed, &observer);
        obs::write_trace_file(
            trace->dir + "/" +
                trace_file_name(jobs[i].spec->name, jobs[i].seed),
            observer);
        return outcome;
      },
      threads);
  return result;
}

std::string matrix_json(const std::vector<ScenarioSpec>& scenarios,
                        const MatrixResult& result) {
  support::JsonWriter json;
  json.begin_object();
  json.field("harness", "scenario_matrix");
  json.field("scenarios", static_cast<std::uint64_t>(scenarios.size()));
  json.field("points", static_cast<std::uint64_t>(result.outcomes.size()));
  json.field("violations",
             static_cast<std::uint64_t>(result.total_violations()));
  json.field("all_green", result.all_green());
  json.key("specs");
  json.begin_array();
  for (const auto& spec : scenarios) spec.to_json(json);
  json.end_array();
  json.key("outcomes");
  json.begin_array();
  for (const auto& o : result.outcomes) {
    json.begin_object();
    json.field("scenario", o.scenario);
    json.field("seed", o.seed);
    json.field("rounds", static_cast<std::uint64_t>(o.rounds));
    json.field("committed", o.committed);
    json.field("offered", o.offered);
    json.field("cross_committed", o.cross_committed);
    json.field("recoveries", o.recoveries);
    json.field("invalid_committed", o.invalid_committed);
    json.field("carryover", o.carryover);
    json.field("chain_height", o.chain_height);
    json.field("total_fees", o.total_fees);
    if (o.faults.injected() != 0) {
      // Omit-when-zero: fault-free points keep their exact pre-fault
      // artifact bytes.
      json.key("faults");
      json.begin_object();
      if (o.faults.partition_dropped != 0) {
        json.field("partition_dropped", o.faults.partition_dropped);
      }
      if (o.faults.blackout_dropped != 0) {
        json.field("blackout_dropped", o.faults.blackout_dropped);
      }
      if (o.faults.lost != 0) json.field("lost", o.faults.lost);
      if (o.faults.duplicated != 0) {
        json.field("duplicated", o.faults.duplicated);
      }
      if (o.faults.reordered != 0) json.field("reordered", o.faults.reordered);
      json.end_object();
    }
    json.field("epochs", o.epochs);
    json.field("boundaries", o.boundaries);
    json.field("members_joined", o.members_joined);
    json.field("members_retired", o.members_retired);
    json.field("last_handoff_digest", o.last_handoff_digest);
    json.key("violations");
    json.begin_array();
    for (const auto& v : o.violations) {
      json.begin_object();
      json.field("invariant", v.invariant);
      json.field("round", v.round);
      json.field("detail", v.detail);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace cyc::harness
