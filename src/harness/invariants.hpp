// Protocol invariant suite: paper-level properties checked against Engine
// introspection after every completed round.
//
// The checker attaches to a freshly constructed Engine, mirrors the
// genesis shard state, and replays every block it sees onto the mirror —
// the per-shard digest comparison then catches any divergence between
// the blocks the referee certified and the authoritative UTXO views
// (including hand-injected corruption, which is how the suite proves
// itself non-vacuous). Stateless per-block/per-flow checks are exposed as
// static helpers so fault-injection tests can feed them forged data
// directly.
//
// Invariants (identifier -> property):
//   safety-invalid-committed     no ground-truth-invalid tx reaches a block
//   chain-linkage                header chain validates, height advances by 1
//   block-body                   retained block matches the chain tip header
//   block-exactly-once           a committed tx appears in exactly one block
//   double-spend                 no outpoint is spent by two committed txs
//   spend-of-missing-output      block txs only spend outputs that exist
//   tx-signature                 every committed tx carries a valid signature
//   utxo-mirror-digest           shard views == independent block replay
//   utxo-incremental-digest      O(1) rolling digest == full recomputation
//   value-conservation           total shard value never increases
//   flow-conservation            offered == settled + carried + dropped,
//                                no foreign txs, carryover size matches
//   recovery-bounds              recoveries respect the per-committee cap
//   honest-leader-evicted        only misbehaving leaders are evicted
//   honest-leader-convicted      only misbehaving leaders are convicted
//   recovery-replacement         replacements come from the partial set
//   commit-or-recover            honest-majority committees produce output
//                                (recovery armed only under an honest-
//                                active C_R majority — Alg. 6 runs
//                                through the referees)
//   honest-reputation-cliff      honest reputation never takes a conviction-
//                                sized drop (vote scores are bounded by 1)
//
// Fault-fabric invariants (partitions / crash-restart, src/net/faults.*):
//   partition-no-straddle        a committee severed below referee quorum
//                                certifies no output while cut off
//   partition-liveness-resume    a healed, eligible committee resumes
//                                output on its first healthy round
//   restart-replay-digest        a restarted node's adopted catch-up state
//                                equals the honest block-replay digest
//
// Probabilistic message loss (params.faults.drop > 0) parks the liveness
// checks — any single round's output is best-effort under loss — but
// every safety invariant above stays armed.
//
// Epoch-boundary invariants (checked against each EpochHandoff record,
// src/epoch/):
//   epoch-handoff-continuity     record matches the post-reconfiguration
//                                chain head, shard digests and randomness
//   epoch-tx-preservation        no carried tx lost or duplicated (size +
//                                order-sensitive digest of the Remaining
//                                TX List)
//   epoch-reputation-conservation surviving members' reputation carried
//                                across exactly
//   epoch-membership             roles drawn from the recorded members,
//                                disjoint and correctly sized; retirees
//                                hold no role
//   epoch-committee-honest-majority under the threat model (> 2/3 honest
//                                members) every re-drawn committee and
//                                C_R keeps an honest majority
//
// Rebalance invariants (load-aware re-draw, src/epoch/rebalance.*; armed
// only when a handoff carries a RebalancePlan):
//   epoch-rebalance-plan         the recorded plan equals a deterministic
//                                recomputation from the same load window,
//                                roster and membership (and a rebalance-
//                                enabled boundary always records one)
//   epoch-rebalance-mapping      move sources match the pre-boundary map,
//                                the engine installed exactly the map the
//                                plan digests, and the workload's cached
//                                shard assignments agree with it
//   epoch-rebalance-tx-preservation replaying the migration on the mirror
//                                moves the claimed number of outputs,
//                                conserves value, and strands no entry
//                                outside its mapped home shard
//   epoch-rebalance-fair-draw    a split/merge recommendation stays within
//                                budget and under the exact-hypergeometric
//                                fair-draw safety threshold
#pragma once

#include <functional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "epoch/handoff.hpp"
#include "epoch/rebalance.hpp"
#include "ledger/block.hpp"
#include "ledger/shard_map.hpp"
#include "ledger/utxo.hpp"
#include "protocol/engine.hpp"

namespace cyc::harness {

struct Violation {
  std::string invariant;   ///< stable identifier (see table above)
  std::uint64_t round = 0;
  std::string detail;
};

class InvariantChecker {
 public:
  /// Attach to `engine` *before* its first run_round: the checker
  /// snapshots the current shard state as its replay baseline.
  explicit InvariantChecker(const protocol::Engine& engine);

  /// Check every invariant against the just-completed round; returns the
  /// number of violations this call added.
  std::size_t check_round(const protocol::RoundReport& report);

  /// Audit one epoch boundary: call right after the EpochManager produced
  /// `handoff` (and after check_round for the epoch's last round, so the
  /// reputation snapshot is current). Returns violations added.
  std::size_t check_epoch_boundary(const epoch::EpochHandoff& handoff);

  const std::vector<Violation>& violations() const { return violations_; }
  std::size_t rounds_checked() const { return rounds_checked_; }

  // --- stateless helpers (fault-injection tests call these directly) ---

  /// Exactly-once + double-spend + signature + spend-existence checks for
  /// one block, against caller-owned cross-round state. `mirror` is the
  /// pre-block shard state; the block is applied to it on the way.
  static void check_block_txs(
      const ledger::Block& block, std::uint32_t m,
      std::set<std::string>& committed_ids,
      std::unordered_set<ledger::OutPoint, ledger::OutPointHash>& spent,
      std::vector<ledger::UtxoStore>& mirror, std::uint64_t round,
      std::vector<Violation>& out);

  /// Digest cross-check: engine state vs replayed mirror, and each
  /// store's incremental digest vs its from-scratch recomputation.
  static void check_state_digests(const std::vector<ledger::UtxoStore>& state,
                                  const std::vector<ledger::UtxoStore>& mirror,
                                  std::uint64_t round,
                                  std::vector<Violation>& out);

  /// §IV-G flow conservation for one round.
  static void check_flow(const protocol::RoundFlow& flow,
                         std::size_t carryover_size, std::uint64_t round,
                         std::vector<Violation>& out);

  /// Partition discipline for one committee-round: a severed committee
  /// must not certify output (no-straddle), and a committee severed last
  /// round that is healthy and `eligible` now must resume producing.
  static void check_partition_round(const protocol::CommitteeRoundStats& stats,
                                    bool severed_last_round, bool eligible,
                                    std::uint64_t round,
                                    std::vector<Violation>& out);

  /// Crash-restart audit: every successful catch-up must have adopted
  /// exactly `expected` — the digest an honest replay of the committed
  /// chain produces for the state the referees served.
  static void check_catchup(const std::vector<protocol::CatchUpRecord>& events,
                            const crypto::Digest& expected,
                            std::uint64_t round, std::vector<Violation>& out);

  /// Handoff vs engine state: continuity (chain head, shard digests,
  /// randomness), tx preservation (Remaining TX List size + digest) and
  /// reputation conservation of surviving members. A forged record — a
  /// dropped carried tx, an inflated reputation total, a stale chain
  /// head — fails recomputation here.
  static void check_handoff_state(const epoch::EpochHandoff& handoff,
                                  const protocol::Engine& engine,
                                  std::vector<Violation>& out);

  /// Membership / role soundness of the post-boundary assignment against
  /// the handoff's recorded membership and the protocol shape.
  static void check_handoff_membership(const epoch::EpochHandoff& handoff,
                                       const protocol::RoundAssignment& assign,
                                       std::uint32_t m, std::uint32_t lambda,
                                       std::uint32_t referee_size,
                                       std::vector<Violation>& out);

  /// Honest-majority audit of a (re-)drawn assignment. Armed only when
  /// the overall membership satisfies the threat model (> 2/3 honest),
  /// and — because committee security is inherently probabilistic
  /// (Eq. 3) — a corrupt-majority group is flagged only when the exact
  /// hypergeometric tail says a fair draw could not plausibly have
  /// produced it (evidence of a rigged draw, not bad luck).
  static void check_committee_honesty(
      const protocol::RoundAssignment& assign,
      const std::vector<net::NodeId>& members,
      const std::function<bool(net::NodeId)>& corrupt, std::uint64_t round,
      std::vector<Violation>& out);

  /// Rebalance plan audit against caller-supplied inputs: determinism
  /// (the record must equal a recomputation from the same window /
  /// roster / membership), mapping soundness (sources per `pre_map`,
  /// in-range targets) and fair-draw safety of a split/merge. Forged
  /// plans feed this directly in the non-vacuity tests.
  static void check_rebalance_plan(
      const epoch::RebalancePlan& plan, const epoch::RebalanceConfig& cfg,
      const ledger::ShardMap& pre_map, const ledger::ShardLoadWindow& window,
      const std::vector<std::pair<std::uint64_t, ledger::ShardId>>& accounts,
      std::size_t member_count, std::size_t corrupt_members,
      std::uint32_t committee_size, std::uint64_t round,
      std::vector<Violation>& out);

  /// Replay the plan's migration on caller-owned mirror stores: the
  /// moved-output count must match the record, total value must be
  /// conserved, no entry may be stranded outside its mapped home, and
  /// the successor map must digest to the plan's map_digest. On success
  /// `mirror_map` advances to the successor map.
  static void check_rebalance_migration(const epoch::RebalancePlan& plan,
                                        std::vector<ledger::UtxoStore>& mirror,
                                        ledger::ShardMap& mirror_map,
                                        std::uint64_t round,
                                        std::vector<Violation>& out);

 private:
  void check_chain(const protocol::RoundReport& report);
  void check_recovery(const protocol::RoundReport& report);
  void check_liveness(const protocol::RoundReport& report);
  void check_reputation(const protocol::RoundReport& report);

  void add(std::string invariant, std::uint64_t round, std::string detail) {
    violations_.push_back({std::move(invariant), round, std::move(detail)});
  }

  const protocol::Engine& engine_;
  std::vector<ledger::UtxoStore> mirror_;  ///< replayed shard state
  ledger::ShardMap mirror_map_;  ///< independently tracked account→shard map
  std::set<std::string> committed_ids_;    ///< across all checked rounds
  std::unordered_set<ledger::OutPoint, ledger::OutPointHash> spent_;
  std::vector<double> prev_reputation_;
  std::vector<bool> severed_prev_;         ///< per committee, last round
  ledger::Amount prev_total_value_ = 0;
  std::size_t base_height_ = 0;
  std::size_t rounds_checked_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace cyc::harness
