// Shared types for the inside-committee consensus (Algorithm 3, Fig. 3).
//
// The consensus logic itself is pure (no networking): the protocol engine
// feeds incoming signed messages in and transports the produced payloads.
// This separation makes every consensus rule unit-testable without a
// simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace cyc::consensus {

/// Identifies one consensus instance: (round, sequence number). The paper
/// requires sn to be "unique and monotonically increasing over time".
struct InstanceId {
  std::uint64_t round = 0;
  std::uint64_t sn = 0;

  bool operator==(const InstanceId&) const = default;
  auto operator<=>(const InstanceId&) const = default;
};

/// The leader's PROPOSE body: <r, sn, H(M)> plus the original M.
struct Propose {
  InstanceId id;
  crypto::Digest digest{};  ///< H(M)
  Bytes message;            ///< M

  /// Signed portion: <PROPOSE, r, sn, H(M)>.
  Bytes signed_part() const;
  Bytes serialize() const;
  static Propose deserialize(BytesView b);
};

/// A member's ECHO body: <r, sn, H(M), i>, carrying the relayed PROPOSE.
struct Echo {
  InstanceId id;
  crypto::Digest digest{};
  std::uint64_t member = 0;           ///< echoing member index
  crypto::SignedMessage propose_sig;  ///< relayed signed PROPOSE

  Bytes signed_part() const;
  Bytes serialize() const;
  static Echo deserialize(BytesView b);
};

/// A member's CONFIRM: <r, sn, H(M), i> plus the collected EchoList.
struct Confirm {
  InstanceId id;
  crypto::Digest digest{};
  std::uint64_t member = 0;
  std::vector<crypto::SignedMessage> echo_list;

  Bytes signed_part() const;
  Bytes serialize() const;
  static Confirm deserialize(BytesView b);
};

/// The SigList returned by Algorithm 3: >C/2 signed CONFIRMs over one
/// digest. This is the transferable certificate other committees and the
/// referee committee check (semi-commitments, TXdecSET, ScoreList, ...).
struct QuorumCert {
  InstanceId id;
  crypto::Digest digest{};
  std::vector<crypto::SignedMessage> confirms;

  Bytes serialize() const;
  static QuorumCert deserialize(BytesView b);

  /// Verify: every confirm is a valid signature by a *distinct* member of
  /// `committee` over <CONFIRM, r, sn, digest>, and there are more than
  /// committee_size/2 of them.
  bool verify(const std::vector<crypto::PublicKey>& committee,
              std::size_t committee_size) const;
};

/// Proof that a leader equivocated: two PROPOSEs for the same (r, sn)
/// with different digests, both signed by the leader. This is the witness
/// W = (m_l, m_0) of the leader re-selection procedure (§V-D).
struct EquivocationWitness {
  crypto::SignedMessage first;
  crypto::SignedMessage second;

  Bytes serialize() const;
  static EquivocationWitness deserialize(BytesView b);

  /// Valid iff both messages verify under `leader`, decode as PROPOSEs
  /// with the same instance id, and carry different digests.
  bool valid(const crypto::PublicKey& leader) const;
};

}  // namespace cyc::consensus
