#include "consensus/types.hpp"

#include <set>

#include "support/serde.hpp"

namespace cyc::consensus {

namespace {

void write_id(Writer& w, const InstanceId& id) {
  w.u64(id.round);
  w.u64(id.sn);
}

InstanceId read_id(Reader& rd) {
  InstanceId id;
  id.round = rd.u64();
  id.sn = rd.u64();
  return id;
}

}  // namespace

// --- Propose ---------------------------------------------------------------

Bytes Propose::signed_part() const {
  Writer w;
  w.str("PROPOSE");
  write_id(w, id);
  w.bytes(crypto::digest_to_bytes(digest));
  return w.take();
}

Bytes Propose::serialize() const {
  Writer w;
  write_id(w, id);
  w.bytes(crypto::digest_to_bytes(digest));
  w.bytes(message);
  return w.take();
}

Propose Propose::deserialize(BytesView b) {
  Reader rd(b);
  Propose p;
  p.id = read_id(rd);
  p.digest = crypto::digest_from_bytes(rd.bytes());
  p.message = rd.bytes();
  return p;
}

// --- Echo ------------------------------------------------------------------

Bytes Echo::signed_part() const {
  Writer w;
  w.str("ECHO");
  write_id(w, id);
  w.bytes(crypto::digest_to_bytes(digest));
  w.u64(member);
  return w.take();
}

Bytes Echo::serialize() const {
  Writer w;
  write_id(w, id);
  w.bytes(crypto::digest_to_bytes(digest));
  w.u64(member);
  w.bytes(propose_sig.serialize());
  return w.take();
}

Echo Echo::deserialize(BytesView b) {
  Reader rd(b);
  Echo e;
  e.id = read_id(rd);
  e.digest = crypto::digest_from_bytes(rd.bytes());
  e.member = rd.u64();
  e.propose_sig = crypto::SignedMessage::deserialize(rd.bytes());
  return e;
}

// --- Confirm ---------------------------------------------------------------

Bytes Confirm::signed_part() const {
  Writer w;
  w.str("CONFIRM");
  write_id(w, id);
  w.bytes(crypto::digest_to_bytes(digest));
  w.u64(member);
  return w.take();
}

Bytes Confirm::serialize() const {
  Writer w;
  write_id(w, id);
  w.bytes(crypto::digest_to_bytes(digest));
  w.u64(member);
  w.u32(static_cast<std::uint32_t>(echo_list.size()));
  for (const auto& e : echo_list) w.bytes(e.serialize());
  return w.take();
}

Confirm Confirm::deserialize(BytesView b) {
  Reader rd(b);
  Confirm c;
  c.id = read_id(rd);
  c.digest = crypto::digest_from_bytes(rd.bytes());
  c.member = rd.u64();
  const std::uint32_t count = rd.u32();
  c.echo_list.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    c.echo_list.push_back(crypto::SignedMessage::deserialize(rd.bytes()));
  }
  return c;
}

// --- QuorumCert ------------------------------------------------------------

Bytes QuorumCert::serialize() const {
  Writer w;
  write_id(w, id);
  w.bytes(crypto::digest_to_bytes(digest));
  w.u32(static_cast<std::uint32_t>(confirms.size()));
  for (const auto& c : confirms) w.bytes(c.serialize());
  return w.take();
}

QuorumCert QuorumCert::deserialize(BytesView b) {
  Reader rd(b);
  QuorumCert qc;
  qc.id = read_id(rd);
  qc.digest = crypto::digest_from_bytes(rd.bytes());
  const std::uint32_t count = rd.u32();
  qc.confirms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    qc.confirms.push_back(crypto::SignedMessage::deserialize(rd.bytes()));
  }
  return qc;
}

bool QuorumCert::verify(const std::vector<crypto::PublicKey>& committee,
                        std::size_t committee_size) const {
  std::set<std::uint64_t> committee_keys;
  for (const auto& pk : committee) committee_keys.insert(pk.y);

  // Structural pass: membership, payload binding and distinctness. The
  // (expensive) signature checks run afterwards as one batch.
  std::set<std::uint64_t> signers;
  std::vector<const crypto::SignedMessage*> to_verify;
  to_verify.reserve(confirms.size());
  for (const auto& sm : confirms) {
    if (!committee_keys.contains(sm.signer.y)) return false;
    // The signed payload must be the CONFIRM body for our (id, digest).
    Reader rd(sm.payload);
    const std::string tag = rd.str();
    if (tag != "CONFIRM") return false;
    InstanceId got_id;
    got_id.round = rd.u64();
    got_id.sn = rd.u64();
    if (!(got_id == id)) return false;
    const crypto::Digest got_digest = crypto::digest_from_bytes(rd.bytes());
    if (got_digest != digest) return false;
    if (!signers.insert(sm.signer.y).second) return false;  // duplicate
    to_verify.push_back(&sm);
  }
  if (signers.size() * 2 <= committee_size) return false;
  return crypto::verify_batch(to_verify);
}

// --- EquivocationWitness ----------------------------------------------------

Bytes EquivocationWitness::serialize() const {
  Writer w;
  w.bytes(first.serialize());
  w.bytes(second.serialize());
  return w.take();
}

EquivocationWitness EquivocationWitness::deserialize(BytesView b) {
  Reader rd(b);
  EquivocationWitness w;
  w.first = crypto::SignedMessage::deserialize(rd.bytes());
  w.second = crypto::SignedMessage::deserialize(rd.bytes());
  return w;
}

bool EquivocationWitness::valid(const crypto::PublicKey& leader) const {
  if (!(first.signer == leader) || !(second.signer == leader)) return false;
  if (!first.valid() || !second.valid()) return false;
  auto parse = [](const Bytes& payload)
      -> std::optional<std::pair<InstanceId, crypto::Digest>> {
    Reader rd(payload);
    try {
      if (rd.str() != "PROPOSE") return std::nullopt;
      InstanceId id;
      id.round = rd.u64();
      id.sn = rd.u64();
      return std::make_pair(id, crypto::digest_from_bytes(rd.bytes()));
    } catch (const std::exception&) {
      return std::nullopt;
    }
  };
  const auto a = parse(first.payload);
  const auto b = parse(second.payload);
  if (!a || !b) return false;
  return a->first == b->first && a->second != b->second;
}

}  // namespace cyc::consensus
