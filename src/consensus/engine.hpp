// Pure state machines for Algorithm 3 (inside-committee consensus).
//
// One LeaderInstance / MemberInstance pair per (round, sn). The engine
// has no networking: methods consume decoded wire objects and return the
// payloads to transport, so the protocol layer (and the tests) decide how
// bytes move. Quorum rule is the paper's: strictly more than C/2.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "consensus/types.hpp"

namespace cyc::consensus {

/// Wire bundle for a PROPOSE: the leader's signature over the header plus
/// the original message M.
struct ProposeWire {
  crypto::SignedMessage sig;  ///< signs Propose::signed_part()
  Bytes message;              ///< M

  Bytes serialize() const;
  static ProposeWire deserialize(BytesView b);
};

/// Wire bundle for an ECHO: member's signature over the header plus body.
struct EchoWire {
  crypto::SignedMessage sig;  ///< signs Echo::signed_part()
  Echo body;

  Bytes serialize() const;
  static EchoWire deserialize(BytesView b);
};

/// Wire bundle for a CONFIRM.
struct ConfirmWire {
  crypto::SignedMessage sig;  ///< signs Confirm::signed_part()
  Confirm body;

  Bytes serialize() const;
  static ConfirmWire deserialize(BytesView b);
};

/// Leader side of Algorithm 3.
class LeaderInstance {
 public:
  LeaderInstance(crypto::KeyPair keys, InstanceId id, Bytes message,
                 std::size_t committee_size);

  /// The PROPOSE to multicast to the committee.
  ProposeWire make_propose() const;

  /// An *equivocating* PROPOSE carrying `other_message` — used by the
  /// adversary model to exercise detection; an honest leader never calls
  /// this.
  ProposeWire make_equivocating_propose(BytesView other_message) const;

  /// Feed a CONFIRM. Returns the SigList (quorum certificate) once
  /// strictly more than C/2 distinct valid confirms arrive.
  std::optional<QuorumCert> on_confirm(const ConfirmWire& wire);

  const InstanceId& id() const { return id_; }
  const crypto::Digest& digest() const { return digest_; }
  bool done() const { return done_; }

 private:
  crypto::KeyPair keys_;
  InstanceId id_;
  Bytes message_;
  crypto::Digest digest_;
  std::size_t committee_size_;
  std::map<std::uint64_t, crypto::SignedMessage> confirms_;  // by signer
  bool done_ = false;
};

/// What a member wants transported after consuming a message.
struct MemberOutput {
  std::optional<EchoWire> echo_broadcast;    ///< to all committee members
  std::optional<ConfirmWire> confirm_to_leader;
  std::optional<EquivocationWitness> witness;  ///< leader caught cheating
};

/// Member side of Algorithm 3.
class MemberInstance {
 public:
  MemberInstance(crypto::KeyPair keys, std::uint64_t member_index,
                 InstanceId id, crypto::PublicKey leader,
                 std::size_t committee_size);

  /// Consume the leader's PROPOSE.
  MemberOutput on_propose(const ProposeWire& wire);

  /// Consume a peer's ECHO (which relays the signed PROPOSE header).
  MemberOutput on_echo(const EchoWire& wire);

  bool has_confirmed() const { return confirmed_; }
  const std::optional<Bytes>& accepted_message() const { return message_; }

 private:
  MemberOutput maybe_confirm();
  std::optional<EquivocationWitness> check_equivocation(
      const crypto::SignedMessage& propose_sig);

  crypto::KeyPair keys_;
  std::uint64_t index_;
  InstanceId id_;
  crypto::PublicKey leader_;
  std::size_t committee_size_;

  std::optional<crypto::SignedMessage> seen_propose_;
  std::optional<crypto::Digest> digest_;
  std::optional<Bytes> message_;
  std::map<std::uint64_t, crypto::SignedMessage> echoes_;  // by signer, our digest
  bool echoed_ = false;
  bool confirmed_ = false;
};

}  // namespace cyc::consensus
