#include "consensus/engine.hpp"

#include "support/serde.hpp"

namespace cyc::consensus {

// --- wire bundles ------------------------------------------------------------

Bytes ProposeWire::serialize() const {
  Writer w;
  w.bytes(sig.serialize());
  w.bytes(message);
  return w.take();
}

ProposeWire ProposeWire::deserialize(BytesView b) {
  Reader rd(b);
  ProposeWire w;
  w.sig = crypto::SignedMessage::deserialize(rd.bytes());
  w.message = rd.bytes();
  return w;
}

Bytes EchoWire::serialize() const {
  Writer w;
  w.bytes(sig.serialize());
  w.bytes(body.serialize());
  return w.take();
}

EchoWire EchoWire::deserialize(BytesView b) {
  Reader rd(b);
  EchoWire w;
  w.sig = crypto::SignedMessage::deserialize(rd.bytes());
  w.body = Echo::deserialize(rd.bytes());
  return w;
}

Bytes ConfirmWire::serialize() const {
  Writer w;
  w.bytes(sig.serialize());
  w.bytes(body.serialize());
  return w.take();
}

ConfirmWire ConfirmWire::deserialize(BytesView b) {
  Reader rd(b);
  ConfirmWire w;
  w.sig = crypto::SignedMessage::deserialize(rd.bytes());
  w.body = Confirm::deserialize(rd.bytes());
  return w;
}

// --- LeaderInstance -----------------------------------------------------------

LeaderInstance::LeaderInstance(crypto::KeyPair keys, InstanceId id,
                               Bytes message, std::size_t committee_size)
    : keys_(keys),
      id_(id),
      message_(std::move(message)),
      digest_(crypto::sha256(message_)),
      committee_size_(committee_size) {}

ProposeWire LeaderInstance::make_propose() const {
  Propose p;
  p.id = id_;
  p.digest = digest_;
  p.message = message_;
  ProposeWire wire;
  wire.sig = crypto::make_signed(keys_, p.signed_part());
  wire.message = message_;
  return wire;
}

ProposeWire LeaderInstance::make_equivocating_propose(
    BytesView other_message) const {
  Propose p;
  p.id = id_;
  p.message = Bytes(other_message.begin(), other_message.end());
  p.digest = crypto::sha256(p.message);
  ProposeWire wire;
  wire.sig = crypto::make_signed(keys_, p.signed_part());
  wire.message = p.message;
  return wire;
}

std::optional<QuorumCert> LeaderInstance::on_confirm(const ConfirmWire& wire) {
  if (done_) return std::nullopt;
  if (!wire.sig.valid()) return std::nullopt;
  if (!(wire.body.id == id_) || wire.body.digest != digest_) {
    return std::nullopt;
  }
  // The signature must cover the CONFIRM header of this instance.
  Confirm expected;
  expected.id = wire.body.id;
  expected.digest = wire.body.digest;
  expected.member = wire.body.member;
  if (!equal(wire.sig.payload, expected.signed_part())) return std::nullopt;

  confirms_[wire.sig.signer.y] = wire.sig;
  if (confirms_.size() * 2 > committee_size_) {
    done_ = true;
    QuorumCert cert;
    cert.id = id_;
    cert.digest = digest_;
    cert.confirms.reserve(confirms_.size());
    for (const auto& [key, sm] : confirms_) cert.confirms.push_back(sm);
    return cert;
  }
  return std::nullopt;
}

// --- MemberInstance -----------------------------------------------------------

MemberInstance::MemberInstance(crypto::KeyPair keys,
                               std::uint64_t member_index, InstanceId id,
                               crypto::PublicKey leader,
                               std::size_t committee_size)
    : keys_(keys),
      index_(member_index),
      id_(id),
      leader_(leader),
      committee_size_(committee_size) {}

std::optional<EquivocationWitness> MemberInstance::check_equivocation(
    const crypto::SignedMessage& propose_sig) {
  if (!seen_propose_) return std::nullopt;
  if (equal(seen_propose_->payload, propose_sig.payload)) return std::nullopt;
  EquivocationWitness w;
  w.first = *seen_propose_;
  w.second = propose_sig;
  if (!w.valid(leader_)) return std::nullopt;
  return w;
}

MemberOutput MemberInstance::on_propose(const ProposeWire& wire) {
  MemberOutput out;
  if (!(wire.sig.signer == leader_) || !wire.sig.valid()) return out;

  // Decode the signed header and cross-check H(M).
  Reader rd(wire.sig.payload);
  try {
    if (rd.str() != "PROPOSE") return out;
    InstanceId got;
    got.round = rd.u64();
    got.sn = rd.u64();
    if (!(got == id_)) return out;
    const crypto::Digest claimed = crypto::digest_from_bytes(rd.bytes());
    if (claimed != crypto::sha256(wire.message)) return out;  // bad digest

    out.witness = check_equivocation(wire.sig);
    if (out.witness) return out;
    if (seen_propose_) return out;  // duplicate of the same propose

    seen_propose_ = wire.sig;
    digest_ = claimed;
    message_ = wire.message;
  } catch (const std::exception&) {
    return out;
  }

  if (!echoed_) {
    echoed_ = true;
    Echo e;
    e.id = id_;
    e.digest = *digest_;
    e.member = index_;
    e.propose_sig = *seen_propose_;
    EchoWire ew;
    ew.sig = crypto::make_signed(keys_, e.signed_part());
    ew.body = e;
    out.echo_broadcast = ew;
    // Count our own echo toward the quorum.
    echoes_[keys_.pk.y] = ew.sig;
  }
  // A committee of size 1 (degenerate, used in tests) can confirm at once.
  MemberOutput confirm = maybe_confirm();
  if (confirm.confirm_to_leader) {
    out.confirm_to_leader = std::move(confirm.confirm_to_leader);
  }
  return out;
}

MemberOutput MemberInstance::on_echo(const EchoWire& wire) {
  MemberOutput out;
  if (!wire.sig.valid()) return out;
  if (!(wire.body.id == id_)) return out;
  if (!equal(wire.sig.payload, wire.body.signed_part())) return out;

  // The relayed PROPOSE lets us catch a leader who proposed different
  // messages to different members (the paper's "notices that the leader
  // is malicious" condition).
  if (wire.body.propose_sig.valid() &&
      wire.body.propose_sig.signer == leader_) {
    out.witness = check_equivocation(wire.body.propose_sig);
    if (out.witness) return out;
    if (!seen_propose_) {
      // Learn the proposal header from the relay (we may still lack M,
      // but can echo/confirm on the digest as the paper intends).
      seen_propose_ = wire.body.propose_sig;
      Reader rd(seen_propose_->payload);
      try {
        (void)rd.str();
        (void)rd.u64();
        (void)rd.u64();
        digest_ = crypto::digest_from_bytes(rd.bytes());
      } catch (const std::exception&) {
        seen_propose_.reset();
        return out;
      }
      if (!echoed_) {
        echoed_ = true;
        Echo e;
        e.id = id_;
        e.digest = *digest_;
        e.member = index_;
        e.propose_sig = *seen_propose_;
        EchoWire ew;
        ew.sig = crypto::make_signed(keys_, e.signed_part());
        ew.body = e;
        out.echo_broadcast = ew;
        echoes_[keys_.pk.y] = ew.sig;
      }
    }
  }

  if (digest_ && wire.body.digest == *digest_) {
    echoes_[wire.sig.signer.y] = wire.sig;
  }

  MemberOutput confirm = maybe_confirm();
  if (confirm.confirm_to_leader) {
    out.confirm_to_leader = std::move(confirm.confirm_to_leader);
  }
  return out;
}

MemberOutput MemberInstance::maybe_confirm() {
  MemberOutput out;
  if (confirmed_ || !seen_propose_ || !digest_) return out;
  if (echoes_.size() * 2 <= committee_size_) return out;

  confirmed_ = true;
  Confirm c;
  c.id = id_;
  c.digest = *digest_;
  c.member = index_;
  c.echo_list.reserve(echoes_.size());
  for (const auto& [key, sm] : echoes_) c.echo_list.push_back(sm);
  ConfirmWire cw;
  cw.sig = crypto::make_signed(keys_, c.signed_part());
  cw.body = c;
  out.confirm_to_leader = cw;
  return out;
}

}  // namespace cyc::consensus
