// The CycLedger round engine (§IV).
//
// The engine owns the simulated network, the node states and the
// authoritative ledger, and drives the seven phases of a round:
//   committee configuration -> semi-commitment exchange -> intra-committee
//   consensus -> inter-committee consensus -> reputation updating ->
//   referee/leader/partial-set selection -> block generation/propagation,
// with the leader re-selection (recovery) procedure armed throughout.
//
// Honest node logic runs purely on messages delivered by the simulator;
// the engine only uses global knowledge for (a) transport, (b) genesis
// setup, and (c) measurements. Misbehaving nodes follow their Behavior.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "consensus/engine.hpp"
#include "ledger/arrivals.hpp"
#include "ledger/block.hpp"
#include "ledger/mempool.hpp"
#include "ledger/validator.hpp"
#include "ledger/workload.hpp"
#include "net/simnet.hpp"
#include "protocol/adversary.hpp"
#include "protocol/params.hpp"
#include "protocol/report.hpp"
#include "protocol/reputation.hpp"
#include "protocol/roles.hpp"
#include "protocol/semicommit.hpp"
#include "protocol/sortition.hpp"
#include "protocol/witness.hpp"

namespace cyc::obs {
struct Observer;
}

namespace cyc::protocol {

struct EngineOptions {
  /// Disable the recovery procedure: committees with a faulty leader lose
  /// the round (the RapidChain-like baseline behaviour of Table I).
  bool recovery_enabled = true;
  /// Select leaders by reputation rank (§IV-F). When false, leaders are
  /// drawn uniformly (ablation for E12).
  bool reputation_leader_selection = true;
  /// Extra reputation granted to an unconvicted leader (§VII-A: "leaders
  /// obtain some extra reputation as a bonus for their hard work"). Set
  /// above a perfect member score (1.0) so that serving as leader never
  /// pays worse than voting.
  double leader_bonus = 1.25;
  /// Reputation credit for referee-committee service. The paper defers
  /// C_R's update to the next round's referees (§IV-G); we apply the
  /// flat credit at round end, which preserves the incentive ordering.
  double referee_credit = 1.0;
  /// Safety valve on repeated recoveries in one committee and round.
  std::uint32_t max_recoveries_per_committee = 4;
  /// §VIII-A extension: leaders pre-filter cross-shard lists by asking
  /// the destination leader which transactions are valid, excluding
  /// low-value (invalid) transactions before the expensive two-committee
  /// consensus.
  bool extension_precommunication = false;
  /// §VIII-B extension: parallelized block generation — the referee
  /// committee only issues per-committee permissions; each leader
  /// broadcasts its own sub-block, removing the O(mn) broadcast burden
  /// from C_R.
  bool extension_parallel_blocks = false;
  /// Crash-recovery: how many consecutive rounds a restarted node keeps
  /// retrying the referee catch-up before it gives up and re-crashes.
  std::uint32_t max_catchup_rounds = 4;
  /// Intra-engine shard parallelism: worker threads for the parallel
  /// *compute* stage of each phase (signing, serialization, hashing,
  /// PoW, UTXO copies). All message emission, signature verification
  /// (the thread_local verdict cache feeds traced metrics) and RNG-
  /// consuming work stays on the engine thread in committee-index
  /// order, so every artifact is byte-identical across thread counts.
  /// 1 = fully sequential reference path. Deliberately NOT serialized
  /// by ScenarioSpec::to_json: an execution knob, not protocol state.
  unsigned engine_threads = 1;
};

/// State digest a restarted node must reproduce before rejoining: the
/// chain tip hash bound to every shard's UTXO digest. Referees serve it
/// during catch-up; the restarted node adopts the majority answer.
crypto::Digest catchup_state_digest(
    const crypto::Digest& tip_hash,
    const std::vector<ledger::UtxoStore>& shards);

/// Mid-run reconfiguration request (epoch boundary, §IV-F / src/epoch/).
/// The engine re-draws every role over `members` with the supplied epoch
/// randomness — leaders by reputation rank (or the uniform ablation),
/// referees / partial sets by the role-hash lottery, commons by
/// cryptographic sortition — without touching the chain, the per-shard
/// UTXO views, the Remaining TX List or any node's reputation.
struct Reconfiguration {
  std::uint64_t epoch = 0;              ///< epoch being entered (audit only)
  std::vector<net::NodeId> members;     ///< new enrolled membership
  crypto::Digest randomness{};          ///< epoch randomness R^e
};

/// Per-round transaction flow accounting (§IV-G conservation). Every
/// unique transaction offered in a round's TXLists ends in exactly one
/// bucket: it reached a certified committee result (`settled`), it was
/// valid but unpacked and moved to the Remaining TX List (`carried`), or
/// it was ground-truth invalid and dropped (`dropped`) — so
/// offered == settled + carried + dropped. `foreign` counts result
/// transactions that were never offered (forgeries; must stay 0).
struct RoundFlow {
  std::uint64_t offered = 0;    ///< unique txs in this round's lists
  std::uint64_t settled = 0;    ///< offered txs inside certified results
  std::uint64_t committed = 0;  ///< txs that reached block B^r
  std::uint64_t carried = 0;    ///< Remaining TX List for the next round
  std::uint64_t dropped = 0;    ///< ground-truth invalid, dropped
  std::uint64_t foreign = 0;    ///< result txs absent from every list
};

class Engine {
 public:
  Engine(Params params, AdversaryConfig adversary, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run one full round; returns its report.
  RoundReport run_round();

  /// Run several rounds and collect the run report.
  RunReport run(std::size_t rounds);

  // --- introspection (tests & experiments) ---
  const Params& params() const { return params_; }
  const EngineOptions& options() const { return options_; }
  const RoundAssignment& assignment() const { return assign_; }
  std::uint64_t round() const { return round_; }
  double reputation(net::NodeId id) const { return nodes_[id].reputation; }
  double reward(net::NodeId id) const { return nodes_[id].reward; }
  Behavior behavior_of(net::NodeId id) const { return nodes_[id].behavior; }
  std::uint32_t capacity_of(net::NodeId id) const {
    return nodes_[id].capacity;
  }
  const net::SimNet& net() const { return *net_; }
  const std::vector<ledger::UtxoStore>& shard_state() const {
    return shard_state_;
  }
  /// The chain of blocks produced so far (one per completed round).
  const ledger::Chain& chain() const { return chain_; }
  const crypto::Digest& randomness() const { return randomness_; }
  std::size_t node_count() const { return nodes_.size(); }

  // --- harness introspection (invariant checking, §III-C/§IV audits) ---
  /// Leader re-selection events of the most recently completed round.
  const std::vector<RecoveryEvent>& recovery_log() const {
    return recovery_log_;
  }
  /// Transaction flow conservation counters of the last completed round.
  const RoundFlow& last_flow() const { return last_flow_; }
  /// Role assignment the last completed round *started* with (recovery
  /// may have replaced leaders mid-round; `assignment()` already points
  /// at the next round after run_round returns).
  const RoundAssignment& last_assignment() const { return last_assign_; }
  /// The full block B^r of the last completed round (the chain itself
  /// only retains headers).
  const ledger::Block& last_block() const { return last_block_; }
  /// Leaders convicted by the referee committee in the last round.
  const std::set<net::NodeId>& convicted_leaders() const {
    return convicted_leaders_;
  }
  /// Remaining TX List size currently queued for the next round.
  std::size_t carryover_size() const { return carryover_.size(); }
  /// Whether `id`'s corruption was in effect during `round`.
  bool misbehaved(net::NodeId id, std::uint64_t round) const {
    return nodes_[id].misbehaves(round);
  }
  /// Whether `id` was responsive (not crashed) during `round`.
  bool active(net::NodeId id, std::uint64_t round) const {
    return nodes_[id].is_active(round);
  }
  /// Whether the fault schedule impaired `id`'s connectivity during
  /// `round` (blackout window, or membership in a partition island).
  /// Evicting an unreachable-but-honest leader is correct protocol
  /// behaviour, so the recovery invariants consult this.
  bool impaired(net::NodeId id, std::uint64_t round) const;
  /// Fault-injection hook for the scenario harness: mutable access to the
  /// authoritative per-shard UTXO views, so tests can corrupt a shard
  /// state and assert the invariant checker notices. Not used by the
  /// protocol itself.
  std::vector<ledger::UtxoStore>& shard_state_mut() { return shard_state_; }

  /// Whether `id` is currently enrolled (an active member, as opposed to
  /// a standby / retired identity that sits out every round).
  bool enrolled(net::NodeId id) const { return nodes_[id].enrolled; }
  /// Currently enrolled membership, in node-id order.
  std::vector<net::NodeId> members() const;
  const crypto::PublicKey& public_key(net::NodeId id) const {
    return nodes_[id].keys.pk;
  }
  /// The Remaining TX List queued for the next round (§IV-G) — the
  /// cross-epoch handoff audits its content, not just its size.
  const std::vector<ledger::Transaction>& carryover() const {
    return carryover_;
  }

  /// Whether the open-loop sustained-traffic source is driving the
  /// workload (Params::arrival_rate > 0); the closed-loop fixed batch
  /// otherwise, byte-identical to the pre-open-loop engine.
  bool open_loop() const { return params_.arrival_rate > 0.0; }
  /// Per-shard mempools (empty vector in closed-loop mode).
  const std::vector<ledger::ShardMempool>& mempools() const {
    return mempools_;
  }
  /// End of the last generated arrival window in simulated time (the
  /// commit stamp every transaction in that round's block receives).
  double open_loop_clock() const { return openloop_clock_; }

  /// Epoch-scoped account→shard map (identity until a rebalance re-homes
  /// accounts). Shared with the workload generator and every UTXO store;
  /// immutable once installed — boundaries swap the pointer.
  const std::shared_ptr<const ledger::ShardMap>& shard_map() const {
    return shard_map_;
  }
  /// The workload generator (ground truth + account roster); the mutable
  /// overload is a test hook for forging generator/map desyncs.
  const ledger::WorkloadGenerator& workload() const { return *workload_; }
  ledger::WorkloadGenerator& workload_mut() { return *workload_; }

  /// Per-shard load statistics frozen at the most recent epoch boundary
  /// (the rebalance planner input). Empty unless Params::rebalance.
  const ledger::ShardLoadWindow& last_rebalance_window() const {
    return frozen_window_;
  }
  /// Freeze the accumulating load window (epoch boundary; the epoch
  /// manager calls this before planning the re-draw).
  void roll_rebalance_window();
  /// Install the successor account→shard map: migrate every re-homed
  /// UTXO between shard stores, re-bucket the mempool backlog, and
  /// re-home the workload generator. Returns the number of migrated
  /// outputs (recorded in the handoff's RebalancePlan for audit).
  std::uint64_t apply_rebalance(std::shared_ptr<const ledger::ShardMap> next,
                                const std::vector<ledger::AccountMove>& moves);

  /// Corrupt a node at the start of the current round; the behaviour
  /// takes effect one round later (mildly-adaptive adversary, §III-C).
  void corrupt(net::NodeId id, Behavior behavior);

  /// Restart a crashed node: it comes back honest but inactive, spends
  /// the next round(s) catching up from the referees, and rejoins once a
  /// majority of them corroborate the same state digest. No-op unless
  /// the node is currently crashed.
  void restart(net::NodeId id);
  /// Cut `island` from the rest of the network for rounds
  /// [from_round, heal_round).
  void partition(std::vector<net::NodeId> island, std::uint64_t from_round,
                 std::uint64_t heal_round);
  /// Silence one node entirely for rounds [from_round, until_round).
  void blackout(net::NodeId id, std::uint64_t from_round,
                std::uint64_t until_round);
  /// Heal every partition still open at `round`; returns how many closed.
  std::uint64_t heal(std::uint64_t round);
  /// Catch-up attempts resolved during the last completed round.
  const std::vector<CatchUpRecord>& catchup_log() const {
    return catchup_log_;
  }

  /// Epoch-boundary entry point: install a new membership set and re-draw
  /// every role from the epoch randomness, keeping all ledger state.
  /// Call between rounds only. Throws std::invalid_argument when the
  /// membership is too small to fill the referee committee and m
  /// committees, repeats ids, or names unknown nodes.
  void reconfigure(const Reconfiguration& reconfig);

  /// Attach a tracing/metrics observer (src/obs/; nullptr detaches).
  /// All instrumentation is keyed on simulated time and engine-local
  /// state, so a traced run's artifact is a pure function of
  /// (params, adversary, options) — and a detached engine takes no
  /// observability branches beyond one null check per hook, keeping
  /// every existing artifact byte-identical. The observer must outlive
  /// the engine (or be detached first).
  void attach_observer(obs::Observer* observer);
  obs::Observer* observer() const { return obs_; }

 private:
  // ---- per-node state ----
  struct NodeState {
    net::NodeId id = net::kNoNode;
    crypto::KeyPair keys;
    double reputation = 0.0;
    double reward = 0.0;
    std::uint32_t capacity = 0;
    Behavior behavior = Behavior::kHonest;
    std::uint64_t corrupted_at = ~0ull;
    /// Active member of the current epoch; standby / retired identities
    /// keep their keys and reputation but take part in nothing.
    bool enrolled = true;

    // per-round
    Role role = Role::kCommon;
    std::int64_t committee = -1;
    SortitionTicket ticket;
    std::vector<crypto::PublicKey> member_list;  // S of Alg. 2
    std::set<std::uint64_t> known_pks;           // dedup for S
    ledger::UtxoStore utxo;                      // own shard view

    // Algorithm 3 instances, keyed by sn.
    std::map<std::uint64_t, consensus::LeaderInstance> lead;
    std::map<std::uint64_t, consensus::MemberInstance> member;
    std::map<std::uint64_t, consensus::QuorumCert> certs;

    // semi-commitment bookkeeping
    std::optional<crypto::SignedMessage> leader_list_msg;    // from leader
    std::optional<crypto::SignedMessage> leader_commit_msg;  // from leader
    std::map<std::uint32_t, crypto::Digest> commitments;     // per committee
    std::map<std::uint32_t, std::vector<crypto::PublicKey>> lists;  // referee

    // voting
    std::map<net::NodeId, VoteVector> votes;        // leader: intra votes
    std::map<net::NodeId, VoteVector> cross_votes;  // leader: cross votes
    // Signed votes parked on arrival; their signatures are checked in one
    // schnorr::verify_batch at the tally deadline instead of one at a
    // time. All arrivals per voter are kept (not just the newest) so a
    // forged message claiming a voter's key cannot displace that voter's
    // genuine vote — at flush the last *valid* arrival wins, which is
    // exactly what per-arrival verification used to produce.
    std::map<net::NodeId, std::vector<crypto::SignedMessage>> pending_votes;
    std::map<net::NodeId, std::vector<crypto::SignedMessage>> pending_cross_votes;
    VoteVector intra_decision;                      // leader: tally result
    VoteVector cross_decision;
    bool sent_intra_result = false;

    // inter-committee
    std::map<std::uint32_t, Bytes> cross_in;   // from committee i -> payload
    std::map<std::uint32_t, double> cross_in_at;  // arrival time (2-Gamma rule)
    std::set<std::uint32_t> cross_done;        // processed origins
    std::map<std::uint32_t, Bytes> cross_hints;   // partial members' copies
    std::map<std::uint32_t, double> cross_hint_at;
    std::set<std::uint32_t> cross_seen_propose;   // origins the leader engaged

    // activity flags honest members track about their leader
    bool leader_sent_txlist = false;
    bool leader_sent_commitment = false;

    // impeachment
    std::optional<Accusation> pending_accusation;
    std::vector<crypto::SignedMessage> impeach_approvals;
    bool accused_this_round = false;
    bool sent_prosecution = false;

    // crash-recovery catch-up (restart())
    bool catching_up = false;      ///< restarted; not yet rejoined
    std::uint32_t catchup_attempts = 0;
    bool catchup_adopted = false;  ///< majority digest adopted this round
    crypto::Digest adopted_digest{};
    /// Referee replies tallied by digest bytes; a digest is adopted once
    /// a majority of distinct referees vouch for it.
    std::map<std::string, std::set<net::NodeId>> catchup_tally;

    bool is_active(std::uint64_t round) const {
      return !catching_up &&
             !(behavior == Behavior::kCrash && corrupted_at < round);
    }
    bool misbehaves(std::uint64_t round) const {
      return behavior != Behavior::kHonest && corrupted_at < round;
    }
  };

  // ---- round-scoped engine state ----
  struct CommitteeRound {
    net::NodeId current_leader = net::kNoNode;
    std::uint32_t attempt = 0;      // recovery attempts
    std::uint32_t recoveries = 0;
    bool leader_convicted = false;  // guard against double conviction
    std::vector<ledger::Transaction> intra_list;
    std::vector<ledger::Transaction> cross_list;
    // Leader-side payloads awaiting certification.
    Bytes pending_intra_payload;
    Bytes pending_score_payload;
    std::map<std::uint32_t, Bytes> pending_cross_out;  // dest -> request
    net::NodeId pending_new_leader = net::kNoNode;
    // Referee-side: accepted results. Results multicast to the whole
    // referee committee; each referee verifies independently and acks
    // when its verified payload matches the stored bytes. A result is
    // only *used* (block assembly, commit accounting, score application)
    // once a majority of referees ack — so a result that reached just a
    // minority island of a partitioned C_R can never straddle the cut.
    std::optional<Bytes> intra_result;     // serialized TXdecSET+VList
    std::map<std::uint32_t, Bytes> cross_results;  // origin -> accepted ids
    std::optional<Bytes> score_report;
    std::set<net::NodeId> intra_acks;
    std::map<std::uint32_t, std::set<net::NodeId>> cross_acks;
    std::set<net::NodeId> score_acks;
  };

  // ---- setup ----
  void build_nodes();
  void assign_genesis_roles();
  void link_classifier_install();
  void start_round_state();

  // ---- phases ----
  void phase_config(net::Time at);
  void phase_semicommit(net::Time at);
  void phase_intra(net::Time at);
  void phase_inter(net::Time at);
  void phase_reputation(net::Time at);
  void phase_selection(net::Time at);
  void phase_block(net::Time at);

  // ---- message handling ----
  void handle(net::NodeId id, const net::Message& msg, net::Time now);
  void on_config(NodeState& self, const net::Message& msg);
  void on_member_list(NodeState& self, const net::Message& msg);
  void on_member(NodeState& self, const net::Message& msg);
  void on_consensus_msg(NodeState& self, const net::Message& msg,
                        net::Time now);
  void on_semicommit(NodeState& self, const net::Message& msg, net::Time now);
  void on_semicommit_ack(NodeState& self, const net::Message& msg,
                         net::Time now);
  void on_txlist(NodeState& self, const net::Message& msg);
  void on_vote(NodeState& self, const net::Message& msg);
  void on_cross_txlist(NodeState& self, const net::Message& msg,
                       net::Time now);
  void on_cross_hint(NodeState& self, const net::Message& msg, net::Time now);
  void on_cross_result(NodeState& self, const net::Message& msg);
  void on_accuse(NodeState& self, const net::Message& msg, net::Time now);
  void on_impeach_vote(NodeState& self, const net::Message& msg,
                       net::Time now);
  void on_prosecute(NodeState& self, const net::Message& msg, net::Time now);
  void on_new_leader(NodeState& self, const net::Message& msg, net::Time now);
  void on_intra_result(NodeState& self, const net::Message& msg);
  void on_score_report(NodeState& self, const net::Message& msg);
  void on_catchup_request(NodeState& self, const net::Message& msg);
  void on_catchup_reply(NodeState& self, const net::Message& msg);

  // ---- helpers ----
  NodeState& node(net::NodeId id) { return nodes_[id]; }
  const CommitteeInfo& committee_info(std::uint32_t k) const {
    return assign_.committees[k];
  }
  std::vector<net::NodeId> committee_members(std::uint32_t k) const;
  std::vector<crypto::PublicKey> committee_pks(std::uint32_t k) const;
  net::NodeId node_of_pk(const crypto::PublicKey& pk) const;
  net::NodeId designated_referee(std::uint64_t sn) const;
  /// Whether a referee seat can talk to the majority of its committee
  /// this round (not blacked out, on the referee-majority island).
  bool referee_reachable(net::NodeId id) const;
  /// Majority-of-referees ack gate for stored results.
  bool referee_quorum(const std::set<net::NodeId>& acks) const {
    return acks.size() * 2 > assign_.referees.size();
  }
  /// Recompute, for every committee, whether an active partition /
  /// blackout schedule severs it from quorum this round.
  void compute_severed();
  /// Any node currently inside a blackout window?
  bool has_active_blackout() const;
  /// The scheduled length of one round in simulated time (the seven
  /// phase durations, in units of Delta) — the open-loop arrival window.
  double nominal_round_duration() const;
  /// Open-loop half of start_round_state: generate this round's arrival
  /// window, admit into the mempools, and drain each committee's list
  /// budget (txs_per_committee minus its §IV-G carryover share).
  void openloop_ingest(std::vector<ledger::Transaction>& batch);
  crypto::PublicKey expected_instance_leader(std::uint32_t scope,
                                             std::uint64_t sn) const;
  std::vector<net::NodeId> instance_peers(std::uint32_t scope) const;
  std::size_t instance_size(std::uint32_t scope) const;

  /// Consensus plumbing: wrap + send wires for instance (scope, sn).
  void send_consensus(net::NodeId from, const std::vector<net::NodeId>& to,
                      net::Tag tag, std::uint32_t scope, std::uint64_t sn,
                      const Bytes& wire);
  void leader_start_instance(NodeState& self, std::uint32_t scope,
                             std::uint64_t sn, Bytes message);
  void process_member_output(NodeState& self, std::uint32_t scope,
                             std::uint64_t sn, consensus::MemberOutput out,
                             net::Time now);
  void on_cert(NodeState& self, std::uint32_t scope, std::uint64_t sn,
               const consensus::QuorumCert& cert);

  /// Voting logic: an honest node's vote on a list given its UTXO view
  /// and capacity; misbehaving voters per Behavior.
  VoteVector compute_vote(NodeState& self,
                          const std::vector<ledger::Transaction>& txs);

  /// Leader-side: tally votes into the decision vector / TXdecSET.
  VoteVector tally(const std::map<net::NodeId, VoteVector>& votes,
                   std::size_t dimension, std::size_t committee_size) const;

  /// Batch-verify the parked votes and move the valid ones into the
  /// decoded vote sink (votes / cross_votes).
  void leader_flush_votes(NodeState& leader, bool cross);

  /// Recovery.
  void begin_accusation(NodeState& accuser, std::uint32_t k,
                        WitnessKind kind, Bytes witness, net::Time now);
  bool referee_corroborates_timeout(const NodeState& referee,
                                    const Accusation& accusation) const;
  void referee_convict(NodeState& referee, const Accusation& accusation,
                       net::Time now, const Bytes& impeachment);
  void announce_new_leader(NodeState& referee, std::uint32_t k);
  void install_new_leader(std::uint32_t k, net::NodeId new_leader,
                          net::Time now);
  void redo_leader_duties(std::uint32_t k, net::Time now);

  /// Leader duties per phase (also used on recovery redo; each stays
  /// callable inline for a single committee).
  void leader_send_semicommit(NodeState& leader, std::uint32_t k);
  void leader_start_intra(std::uint32_t k, net::Time now);
  void leader_start_cross(std::uint32_t k, net::Time now);
  void leader_handle_cross_in(NodeState& leader, const Bytes& request,
                              net::Time now);
  void leader_send_scores(std::uint32_t k, net::Time now);

  /// Two-stage split of the leader duties above for intra-engine shard
  /// parallelism: build_* is the pure compute half (deterministic
  /// signing, serialization, commitment hashing — no sends, no RNG, no
  /// signature *verification*, which would touch the thread_local
  /// verdict cache that feeds traced metrics) and is safe on pool
  /// workers; emit_* performs exactly the sends and engine-state
  /// mutations of the sequential path and must run on the engine thread
  /// in committee-index order. build_* returns empty bytes when the
  /// committee's leader has nothing to send this phase.
  Bytes build_semicommit(NodeState& leader, std::uint32_t k);
  void emit_semicommit(NodeState& leader, std::uint32_t k,
                       const Bytes& wire_bytes);
  Bytes build_intra_txlist(std::uint32_t k);
  void emit_intra_txlist(std::uint32_t k, const Bytes& wire_bytes,
                         net::Time now);
  Bytes build_cross_txlist(std::uint32_t k);
  void emit_cross_txlist(std::uint32_t k, const Bytes& wire_bytes,
                         net::Time now);

  /// Apply score reports that have gathered a referee-majority ack into
  /// pending_scores_ (idempotent; run before selection and finalize).
  void adopt_quorum_scores();
  /// End-of-round: block assembly, ledger application, reputation.
  void finalize_round(RoundReport& report);
  /// §IV-F selection: beacon + next-round roles; runs during the
  /// selection phase so the block can reference the next assignment.
  void compute_selection();
  /// Shared role draw (§IV-F) over an explicit participant list: leaders
  /// by `reputation_of` rank (or shuffled by `uniform_leaders` for the
  /// E12 ablation), referees / partial sets by the role-hash lottery,
  /// everyone else by cryptographic sortition (which also refreshes the
  /// nodes' membership tickets for `next_round`). Used by the per-round
  /// selection and by reconfigure().
  template <typename RepFn>
  RoundAssignment draw_assignment(const std::vector<net::NodeId>& participants,
                                  std::uint64_t next_round,
                                  const crypto::Digest& randomness,
                                  RepFn&& reputation_of,
                                  rng::Stream* uniform_leaders);
  double storage_proxy(const NodeState& n) const;

  // ---- observability hooks (src/obs/; all no-ops when obs_ == nullptr).
  /// Reset per-round accumulators, open the round span, note severed
  /// committees and failed catch-ups.
  void obs_round_begin();
  /// Close the open phase span (attaching its traffic as args) and open
  /// `phase`'s; kIdle just closes. Called from every phase driver.
  void obs_phase(net::Phase phase, net::Time at);
  /// Close round + committee spans, emit counter samples, flush the
  /// round's per-(phase, tag) traffic and protocol counters into the
  /// metrics registry.
  void obs_round_end(const RoundReport& report, net::Time round_end);
  /// First sighting of cert (scope, sn) this round? (dedup for the
  /// qc-formed instant event — every holder runs on_cert).
  bool obs_first_cert(std::uint32_t scope, std::uint64_t sn);

  // ---- data ----
  Params params_;
  AdversaryConfig adversary_;
  EngineOptions options_;
  rng::Stream rng_;
  std::unique_ptr<net::SimNet> net_;
  std::vector<NodeState> nodes_;
  std::map<std::uint64_t, net::NodeId> pk_index_;
  RoundAssignment assign_;
  RoundAssignment next_assign_;
  crypto::Digest randomness_{};
  crypto::Digest next_randomness_{};
  std::unique_ptr<ledger::WorkloadGenerator> workload_;
  // Open-loop traffic (all inert when params_.arrival_rate == 0): the
  // Poisson/Zipf source, the bounded per-shard mempools the engine
  // drains each round, arrival timestamps of every in-flight admitted
  // transaction (erased on commit / ground-truth drop), and the arrival
  // clock — the end of the last generated window, advanced by the
  // nominal round duration each round so windows tile simulated time.
  std::unique_ptr<ledger::OpenLoopSource> openloop_;
  std::vector<ledger::ShardMempool> mempools_;
  std::unordered_map<std::string, double> arrival_times_;
  double openloop_clock_ = 0.0;
  std::uint64_t openloop_exhausted_ = 0;  ///< source exhausted() last seen
  OpenLoopRoundStats openloop_round_;
  // Adaptive sharding (all inert when params_.rebalance is off): the
  // epoch's account→shard map, the load window accumulating over the
  // current epoch, and the window frozen at the last boundary.
  std::shared_ptr<const ledger::ShardMap> shard_map_;
  ledger::ShardLoadWindow load_window_;
  ledger::ShardLoadWindow frozen_window_;
  std::vector<ledger::UtxoStore> shard_state_;
  ledger::Chain chain_;
  ledger::Block last_block_;       // full body of the newest chain block
  RoundAssignment last_assign_;    // assignment the last round started with
  RoundFlow last_flow_;            // §IV-G conservation counters
  // §IV-G Remaining TX List: valid transactions offered but not packed
  // this round are carried into the next round's lists.
  std::vector<ledger::Transaction> carryover_;
  std::vector<CommitteeRound> committees_;
  std::uint64_t round_ = 1;
  net::Time round_start_ = 0.0;
  net::Phase current_phase_ = net::Phase::kIdle;
  std::vector<RecoveryEvent> recovery_log_;
  // Reputation deltas accumulated during the round, applied at block time.
  std::map<net::NodeId, double> pending_scores_;
  std::set<net::NodeId> convicted_leaders_;
  // Registered participants for next round (PoW solutions received).
  std::set<net::NodeId> registered_;
  // Serialized block awaiting / holding certification this round.
  Bytes block_payload_;
  // Catch-up attempts resolved in the current round (cleared per round).
  std::vector<CatchUpRecord> catchup_log_;
  // Per-committee: severed from quorum by an active partition/blackout
  // this round (recomputed in start_round_state, reported per round).
  std::vector<bool> severed_;
  // Observability (src/obs/): nullptr / empty unless attach_observer ran.
  struct ObsState;
  obs::Observer* obs_ = nullptr;
  std::unique_ptr<ObsState> obs_state_;
};

}  // namespace cyc::protocol
