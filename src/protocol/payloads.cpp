#include "protocol/payloads.hpp"

#include <stdexcept>

#include "support/serde.hpp"

namespace cyc::protocol::wire {

namespace {

void write_pk_vec(Writer& w, const std::vector<crypto::PublicKey>& pks) {
  w.u32(static_cast<std::uint32_t>(pks.size()));
  for (const auto& pk : pks) w.u64(pk.y);
}

std::vector<crypto::PublicKey> read_pk_vec(Reader& rd) {
  const std::uint32_t count = rd.u32();
  std::vector<crypto::PublicKey> pks;
  pks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) pks.push_back({rd.u64()});
  return pks;
}

}  // namespace

// --- Intro -------------------------------------------------------------------

Bytes Intro::serialize() const {
  Writer w;
  w.u32(node);
  w.u64(pk.y);
  w.u32(ticket.committee);
  w.bytes(ticket.proof.serialize());
  return w.take();
}

Intro Intro::deserialize(BytesView b) {
  Reader rd(b);
  Intro i;
  i.node = rd.u32();
  i.pk.y = rd.u64();
  i.ticket.committee = rd.u32();
  i.ticket.proof = crypto::VrfOutput::deserialize(rd.bytes());
  return i;
}

// --- MemberListMsg -------------------------------------------------------------

Bytes MemberListMsg::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (std::uint32_t n : nodes) w.u32(n);
  write_pk_vec(w, pks);
  return w.take();
}

MemberListMsg MemberListMsg::deserialize(BytesView b) {
  Reader rd(b);
  MemberListMsg m;
  const std::uint32_t count = rd.u32();
  m.nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.nodes.push_back(rd.u32());
  m.pks = read_pk_vec(rd);
  return m;
}

// --- ConsensusEnvelope ---------------------------------------------------------

Bytes ConsensusEnvelope::serialize() const {
  Writer w;
  w.u32(scope);
  w.u64(sn);
  w.bytes(wire);
  return w.take();
}

ConsensusEnvelope ConsensusEnvelope::deserialize(BytesView b) {
  Reader rd(b);
  ConsensusEnvelope e;
  e.scope = rd.u32();
  e.sn = rd.u64();
  e.wire = rd.bytes();
  return e;
}

// --- SemiCommitMsg -------------------------------------------------------------

Bytes SemiCommitMsg::serialize() const {
  Writer w;
  w.u32(committee);
  w.bytes(commitment_msg.serialize());
  w.bytes(list_msg.serialize());
  return w.take();
}

SemiCommitMsg SemiCommitMsg::deserialize(BytesView b) {
  Reader rd(b);
  SemiCommitMsg m;
  m.committee = rd.u32();
  m.commitment_msg = crypto::SignedMessage::deserialize(rd.bytes());
  m.list_msg = crypto::SignedMessage::deserialize(rd.bytes());
  return m;
}

// --- SemiCommitAck -------------------------------------------------------------

Bytes SemiCommitAck::serialize() const {
  Writer w;
  w.u32(committee);
  w.bytes(crypto::digest_to_bytes(commitment));
  write_pk_vec(w, members);
  w.bytes(cert);
  return w.take();
}

SemiCommitAck SemiCommitAck::deserialize(BytesView b) {
  Reader rd(b);
  SemiCommitAck a;
  a.committee = rd.u32();
  a.commitment = crypto::digest_from_bytes(rd.bytes());
  a.members = read_pk_vec(rd);
  a.cert = rd.bytes();
  return a;
}

// --- TxListMsg / VoteMsg --------------------------------------------------------

Bytes encode_tx_vec(const std::vector<ledger::Transaction>& txs) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const auto& tx : txs) w.bytes(tx.serialize());
  return w.take();
}

std::vector<ledger::Transaction> decode_tx_vec(BytesView b) {
  Reader rd(b);
  const std::uint32_t count = rd.u32();
  std::vector<ledger::Transaction> txs;
  txs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    txs.push_back(ledger::Transaction::deserialize(rd.bytes()));
  }
  return txs;
}

Bytes TxListMsg::serialize() const {
  Writer w;
  w.u32(committee);
  w.u32(attempt);
  w.boolean(cross);
  w.bytes(signed_list.serialize());
  return w.take();
}

TxListMsg TxListMsg::deserialize(BytesView b) {
  Reader rd(b);
  TxListMsg m;
  m.committee = rd.u32();
  m.attempt = rd.u32();
  m.cross = rd.boolean();
  m.signed_list = crypto::SignedMessage::deserialize(rd.bytes());
  return m;
}

Bytes encode_vote_vec(const VoteVector& votes) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(votes.size()));
  for (Vote v : votes) {
    w.u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(v) + 1));
  }
  return w.take();
}

VoteVector decode_vote_vec(BytesView b) {
  Reader rd(b);
  const std::uint32_t count = rd.u32();
  VoteVector votes;
  votes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    votes.push_back(static_cast<Vote>(static_cast<std::int8_t>(rd.u8()) - 1));
  }
  return votes;
}

Bytes VoteMsg::serialize() const {
  Writer w;
  w.u32(committee);
  w.u32(attempt);
  w.boolean(cross);
  w.bytes(signed_vote.serialize());
  return w.take();
}

VoteMsg VoteMsg::deserialize(BytesView b) {
  Reader rd(b);
  VoteMsg m;
  m.committee = rd.u32();
  m.attempt = rd.u32();
  m.cross = rd.boolean();
  m.signed_vote = crypto::SignedMessage::deserialize(rd.bytes());
  return m;
}

// --- IntraDecision / CertifiedResult --------------------------------------------

Bytes IntraDecision::serialize() const {
  Writer w;
  w.str("INTRA_DEC");
  w.u32(committee);
  w.u32(attempt);
  w.bytes(encode_tx_vec(txdec_set));
  w.bytes(crypto::digest_to_bytes(vlist_digest));
  return w.take();
}

IntraDecision IntraDecision::deserialize(BytesView b) {
  Reader rd(b);
  if (rd.str() != "INTRA_DEC") {
    throw std::invalid_argument("IntraDecision: bad tag");
  }
  IntraDecision d;
  d.committee = rd.u32();
  d.attempt = rd.u32();
  d.txdec_set = decode_tx_vec(rd.bytes());
  d.vlist_digest = crypto::digest_from_bytes(rd.bytes());
  return d;
}

Bytes CertifiedResult::serialize() const {
  Writer w;
  w.bytes(payload);
  w.bytes(cert);
  return w.take();
}

CertifiedResult CertifiedResult::deserialize(BytesView b) {
  Reader rd(b);
  CertifiedResult r;
  r.payload = rd.bytes();
  r.cert = rd.bytes();
  return r;
}

// --- Cross-shard ----------------------------------------------------------------

Bytes CrossTxListMsg::agreed_payload() const {
  Writer w;
  w.str("CROSS_OUT");
  w.u32(origin);
  w.u32(dest);
  w.u32(attempt);
  w.bytes(encode_tx_vec(txs));
  return w.take();
}

Bytes CrossTxListMsg::serialize() const {
  Writer w;
  w.u32(origin);
  w.u32(dest);
  w.u32(attempt);
  w.bytes(encode_tx_vec(txs));
  w.bytes(origin_cert);
  write_pk_vec(w, origin_members);
  return w.take();
}

CrossTxListMsg CrossTxListMsg::deserialize(BytesView b) {
  Reader rd(b);
  CrossTxListMsg m;
  m.origin = rd.u32();
  m.dest = rd.u32();
  m.attempt = rd.u32();
  m.txs = decode_tx_vec(rd.bytes());
  m.origin_cert = rd.bytes();
  m.origin_members = read_pk_vec(rd);
  return m;
}

Bytes CrossResultMsg::acceptance_payload() const {
  Writer w;
  w.str("CROSS_IN");
  w.u32(request.origin);
  w.u32(request.dest);
  w.bytes(crypto::sha256_bytes(request.agreed_payload()));
  return w.take();
}

Bytes CrossResultMsg::serialize() const {
  Writer w;
  w.bytes(request.serialize());
  w.bytes(dest_cert);
  write_pk_vec(w, dest_members);
  return w.take();
}

CrossResultMsg CrossResultMsg::deserialize(BytesView b) {
  Reader rd(b);
  CrossResultMsg m;
  m.request = CrossTxListMsg::deserialize(rd.bytes());
  m.dest_cert = rd.bytes();
  m.dest_members = read_pk_vec(rd);
  return m;
}

// --- ScoreListMsg ----------------------------------------------------------------

Bytes ScoreListMsg::serialize() const {
  Writer w;
  w.str("SCORE_LIST");
  w.u32(committee);
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    w.u32(nodes[i]);
    w.f64(scores[i]);
  }
  return w.take();
}

ScoreListMsg ScoreListMsg::deserialize(BytesView b) {
  Reader rd(b);
  if (rd.str() != "SCORE_LIST") {
    throw std::invalid_argument("ScoreListMsg: bad tag");
  }
  ScoreListMsg m;
  m.committee = rd.u32();
  const std::uint32_t count = rd.u32();
  m.nodes.reserve(count);
  m.scores.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    m.nodes.push_back(rd.u32());
    m.scores.push_back(rd.f64());
  }
  return m;
}

// --- PowMsg ----------------------------------------------------------------------

Bytes PowMsg::serialize() const {
  Writer w;
  w.u32(node);
  w.u64(pk.y);
  w.u64(nonce);
  w.bytes(crypto::digest_to_bytes(digest));
  return w.take();
}

PowMsg PowMsg::deserialize(BytesView b) {
  Reader rd(b);
  PowMsg m;
  m.node = rd.u32();
  m.pk.y = rd.u64();
  m.nonce = rd.u64();
  m.digest = crypto::digest_from_bytes(rd.bytes());
  return m;
}

// --- NewLeaderMsg ------------------------------------------------------------------

Bytes NewLeaderMsg::serialize() const {
  Writer w;
  w.u32(committee);
  w.u64(evicted.y);
  w.u64(new_leader.y);
  return w.take();
}

NewLeaderMsg NewLeaderMsg::deserialize(BytesView b) {
  Reader rd(b);
  NewLeaderMsg m;
  m.committee = rd.u32();
  m.evicted.y = rd.u64();
  m.new_leader.y = rd.u64();
  return m;
}

// --- BlockMsg ----------------------------------------------------------------------

Bytes BlockMsg::serialize() const {
  Writer w;
  w.u64(round);
  w.bytes(encode_tx_vec(txs));
  w.bytes(crypto::digest_to_bytes(randomness));
  w.bytes(crypto::digest_to_bytes(body_root));
  return w.take();
}

BlockMsg BlockMsg::deserialize(BytesView b) {
  Reader rd(b);
  BlockMsg m;
  m.round = rd.u64();
  m.txs = decode_tx_vec(rd.bytes());
  m.randomness = crypto::digest_from_bytes(rd.bytes());
  m.body_root = crypto::digest_from_bytes(rd.bytes());
  return m;
}

}  // namespace cyc::protocol::wire
