// Reputation scoring, reward mapping and punishment (§IV-E, §IV-G, §VII).
//
//  * Votes are vectors in {-1, 0, +1}^D (Yes / Unknown / No per listed
//    transaction); a member's score is the cosine similarity between its
//    vote vector and the final decision vector (Eq. 1).
//  * Rewards are distributed proportionally to g(reputation), with
//    g(x) = e^x for x <= 0 and 1 + ln(x+1) for x > 0 (Eq. 2, Fig. 4).
//  * A leader convicted of a protocol violation has its reputation cut to
//    its cube root (§VII-B), which maps to roughly one third of the
//    original mapped value.
#pragma once

#include <cstdint>
#include <vector>

namespace cyc::protocol {

enum class Vote : std::int8_t {
  kNo = -1,
  kUnknown = 0,
  kYes = 1,
};

using VoteVector = std::vector<Vote>;

/// Eq. 1: cosine similarity between a member's vote and the decision
/// vector, in [-1, 1]. An all-Unknown vote (zero vector) scores 0.
double cosine_score(const VoteVector& vote, const VoteVector& decision);

/// Scores for every member's vote against the decision (the ScoreList the
/// leader assembles in §IV-E).
std::vector<double> score_votes(const std::vector<VoteVector>& votes,
                                const VoteVector& decision);

/// Eq. 2: the monotone mapping from reputation to a positive number.
double g(double reputation);

/// Proportional reward split: member i receives
/// total * g(rep_i) / sum_j g(rep_j). Sums to `total_fee` up to rounding.
std::vector<double> distribute_rewards(const std::vector<double>& reputations,
                                       double total_fee);

/// §VII-B: convicted leader's reputation is decreased to its cube root.
/// (Leaders have the highest reputation, so rep > 1 shrinks; the paper
/// assumes leader reputation is positive.)
double punish_leader(double reputation);

}  // namespace cyc::protocol
