// Protocol parameters (§III-A notation: n nodes, m committees of expected
// size c, partial sets of size lambda, referee committee C_R).
#pragma once

#include <cstdint>

#include "net/simnet.hpp"

namespace cyc::protocol {

/// Probabilistic message faults on the wide-area link classes (key mesh
/// and partial-sync cross links). Intra-committee links stay reliable:
/// the paper's synchronous-Delta bound (§III-B) holds inside a committee,
/// so only the channels that cross committee boundaries degrade. All
/// probabilities are per message; draws come from the engine's dedicated
/// fault stream, so a zeroed profile leaves runs byte-identical.
struct FaultProfile {
  double drop = 0.0;       ///< P[message silently lost]
  double duplicate = 0.0;  ///< P[message delivered twice]
  double reorder = 0.0;    ///< P[delivery delayed by an extra factor]
  double reorder_scale = 4.0;

  bool any() const { return drop > 0.0 || duplicate > 0.0 || reorder > 0.0; }
};

struct Params {
  std::uint32_t m = 4;             ///< number of committees
  std::uint32_t c = 12;            ///< committee size
  std::uint32_t lambda = 3;        ///< partial-set size (paper suggests 40)
  std::uint32_t referee_size = 9;  ///< |C_R|

  net::DelayModel delays{};

  /// Message-fault profile for the lossy link classes (see FaultProfile).
  FaultProfile faults{};

  /// Workload knobs.
  std::uint32_t txs_per_committee = 16;  ///< TXList length per round
  double cross_shard_fraction = 0.2;
  double invalid_fraction = 0.05;
  std::uint32_t users = 0;  ///< 0 = auto (16 per shard)

  /// Open-loop sustained-traffic source (src/ledger/README.md). 0 keeps
  /// the closed-loop fixed-batch workload bit-for-bit. When > 0: expected
  /// transaction arrivals per unit of simulated time (Poisson process,
  /// Zipf(zipf_s) account popularity — hot accounts make hot shards),
  /// admitted into bounded per-shard mempools of `mempool_cap` entries
  /// (drop-with-count when full) that the engine drains — up to
  /// txs_per_committee per committee — each round, with per-transaction
  /// arrival -> commit latency reported in RoundReport::open_loop.
  double arrival_rate = 0.0;
  double zipf_s = 1.0;              ///< account-popularity exponent (0 = uniform)
  std::uint32_t mempool_cap = 256;  ///< per-shard admission bound

  /// Load-aware epoch re-draw (src/epoch/rebalance.*): at each epoch
  /// boundary a deterministic planner moves the hottest accounts off
  /// overloaded shards, gated by the exact-hypergeometric fair-draw
  /// constraint. Off keeps every artifact byte-identical to the static
  /// `shard_of` sharding (the engine then accumulates no load window and
  /// the handoff carries no plan).
  bool rebalance = false;
  std::uint32_t rebalance_moves = 4;  ///< max account moves per boundary
  /// Advisory committee split/merge budget: max |m_after - m_before| the
  /// planner may recommend (recorded + safety-checked in the handoff;
  /// the live shard count stays fixed within a run).
  std::uint32_t rebalance_split_budget = 0;

  /// Vote capacity model (§VII: reputation reflects computing power):
  /// node capacity is drawn uniformly from [capacity_min, capacity_max];
  /// a node judges at most `capacity` transactions per list and votes
  /// Unknown beyond that.
  std::uint32_t capacity_min = 64;
  std::uint32_t capacity_max = 64;

  /// PoW participation puzzle difficulty (leading zero bits; small by
  /// default so simulations stay fast).
  unsigned pow_bits = 8;

  /// Extra nodes in the simulated universe beyond the `total_nodes()`
  /// active seats. Standby nodes hold keys but are not enrolled: they sit
  /// out every round until an epoch boundary admits them (solving the
  /// identity PoW puzzle, src/epoch/). 0 keeps the pre-epoch behaviour
  /// bit-for-bit.
  std::uint32_t standby = 0;

  /// Phase schedule (in units of the intra-committee bound Delta), per
  /// the paper's recommendation that semi-commitment exchange starts 8
  /// Delta after configuration.
  double config_duration = 8.0;
  double semicommit_duration = 24.0;
  double intra_duration = 30.0;
  double inter_duration = 40.0;
  double reputation_duration = 24.0;
  double selection_duration = 16.0;
  double block_duration = 24.0;

  std::uint64_t seed = 1;

  std::uint32_t total_nodes() const { return referee_size + m * c; }
  /// Active seats plus the standby pool (the full simulated universe).
  std::uint32_t universe() const { return total_nodes() + standby; }
};

}  // namespace cyc::protocol
