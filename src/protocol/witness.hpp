// Accusation / witness types for the leader re-selection procedure
// (Algorithm 6, §V-D).
//
// A witness W = (m_l, m_0) is valid iff the pair derives dishonest
// behaviour of the leader, with m_l signed by the leader (so an honest
// leader can never be framed, Claim 4). We support the two signed-witness
// kinds the paper describes plus the timeout case: a leader that goes
// silent signs nothing, so eviction relies on the referee committee
// corroborating the observed silence (it too received nothing).
#pragma once

#include <cstdint>
#include <optional>

#include "consensus/types.hpp"
#include "protocol/semicommit.hpp"

namespace cyc::protocol {

enum class WitnessKind : std::uint8_t {
  kEquivocation = 0,   ///< two conflicting signed PROPOSEs (Alg. 3)
  kCommitMismatch,     ///< list vs semi-commitment mismatch (§V-D)
  kTimeout,            ///< leader silent past its deadline (no signature)
};

std::string_view witness_kind_name(WitnessKind k);

struct Accusation {
  std::uint64_t round = 0;
  std::uint32_t committee = 0;
  crypto::PublicKey accused;   ///< the leader
  crypto::PublicKey accuser;   ///< the partial-set member (or referee)
  WitnessKind kind = WitnessKind::kTimeout;
  Bytes witness;               ///< serialized witness for the kind

  Bytes serialize() const;
  static Accusation deserialize(BytesView b);

  /// Validity per Claim 3/4. For signed kinds this checks the witness
  /// cryptographically. Timeout accusations return false here — they are
  /// only accepted when the verifier *itself* observed the silence, which
  /// the caller must check (see Engine::referee_corroborates_timeout).
  bool witness_valid() const;
};

/// The impeachment certificate: more than half the committee approved the
/// accusation (the voting result the prosecutor forwards to C_R).
struct ImpeachmentCert {
  Accusation accusation;
  std::vector<crypto::SignedMessage> approvals;

  Bytes serialize() const;
  static ImpeachmentCert deserialize(BytesView b);

  /// >C/2 distinct committee members signed the accusation digest.
  bool verify(const std::vector<crypto::PublicKey>& committee,
              std::size_t committee_size) const;

  /// The payload each approver signs.
  static Bytes approval_payload(const Accusation& a);
};

}  // namespace cyc::protocol
