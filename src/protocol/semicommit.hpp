// Semi-commitment scheme (§IV-B, §V-D).
//
// A committee's semi-commitment is the hash of its member list:
//     SEMI_COM^r_k = H(S),  S = {PK_{k,1}, PK_{k,2}, ...}.
// Only computational *binding* is required (hence "semi"): once released,
// a polynomial-time leader cannot produce a different member list with
// the same commitment (Lemma 1), so a forged list is always detected by
// the referee committee or the partial set (Theorem 2).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace cyc::protocol {

/// Canonical encoding of a member list (sorted by key so that commitments
/// are order-independent).
Bytes encode_member_list(std::vector<crypto::PublicKey> members);

/// SEMI_COM = H(S).
crypto::Digest semi_commitment(const std::vector<crypto::PublicKey>& members);

/// Check a claimed (commitment, list) pair.
bool verify_semi_commitment(const crypto::Digest& commitment,
                            const std::vector<crypto::PublicKey>& members);

/// Witness that a leader published a semi-commitment inconsistent with
/// the member list it distributed: (signed list message, signed
/// commitment message) with H(list) != commitment. This is the §V-D
/// example witness W = (m_l, m_0), m_0 != H(m_l).
struct CommitmentMismatchWitness {
  crypto::SignedMessage list_msg;        ///< leader-signed member list
  crypto::SignedMessage commitment_msg;  ///< leader-signed SEMI_COM

  Bytes serialize() const;
  static CommitmentMismatchWitness deserialize(BytesView b);

  /// Valid iff both messages are signed by `leader` and the hash of the
  /// list payload differs from the committed digest.
  bool valid(const crypto::PublicKey& leader) const;
};

/// Payload helpers for the two signed messages above.
Bytes commitment_payload(std::uint64_t round, std::uint32_t committee,
                         const crypto::Digest& commitment);
Bytes member_list_payload(std::uint64_t round, std::uint32_t committee,
                          const std::vector<crypto::PublicKey>& members);

/// Parse back a member-list payload.
std::vector<crypto::PublicKey> parse_member_list_payload(BytesView payload);
/// Parse back a commitment payload's digest.
crypto::Digest parse_commitment_payload(BytesView payload);

}  // namespace cyc::protocol
