#include "protocol/witness.hpp"

#include <set>

#include "support/serde.hpp"

namespace cyc::protocol {

std::string_view witness_kind_name(WitnessKind k) {
  switch (k) {
    case WitnessKind::kEquivocation: return "equivocation";
    case WitnessKind::kCommitMismatch: return "commit-mismatch";
    case WitnessKind::kTimeout: return "timeout";
  }
  return "unknown";
}

Bytes Accusation::serialize() const {
  Writer w;
  w.u64(round);
  w.u32(committee);
  w.u64(accused.y);
  w.u64(accuser.y);
  w.u8(static_cast<std::uint8_t>(kind));
  w.bytes(witness);
  return w.take();
}

Accusation Accusation::deserialize(BytesView b) {
  Reader rd(b);
  Accusation a;
  a.round = rd.u64();
  a.committee = rd.u32();
  a.accused.y = rd.u64();
  a.accuser.y = rd.u64();
  a.kind = static_cast<WitnessKind>(rd.u8());
  a.witness = rd.bytes();
  return a;
}

bool Accusation::witness_valid() const {
  try {
    switch (kind) {
      case WitnessKind::kEquivocation: {
        const auto w = consensus::EquivocationWitness::deserialize(witness);
        return w.valid(accused);
      }
      case WitnessKind::kCommitMismatch: {
        const auto w = CommitmentMismatchWitness::deserialize(witness);
        return w.valid(accused);
      }
      case WitnessKind::kTimeout:
        return false;  // needs corroboration, not a signature
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

Bytes ImpeachmentCert::approval_payload(const Accusation& a) {
  Writer w;
  w.str("IMPEACH");
  w.bytes(crypto::digest_to_bytes(crypto::sha256(a.serialize())));
  return w.take();
}

Bytes ImpeachmentCert::serialize() const {
  Writer w;
  w.bytes(accusation.serialize());
  w.u32(static_cast<std::uint32_t>(approvals.size()));
  for (const auto& sm : approvals) w.bytes(sm.serialize());
  return w.take();
}

ImpeachmentCert ImpeachmentCert::deserialize(BytesView b) {
  Reader rd(b);
  ImpeachmentCert cert;
  cert.accusation = Accusation::deserialize(rd.bytes());
  const std::uint32_t count = rd.u32();
  cert.approvals.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cert.approvals.push_back(crypto::SignedMessage::deserialize(rd.bytes()));
  }
  return cert;
}

bool ImpeachmentCert::verify(const std::vector<crypto::PublicKey>& committee,
                             std::size_t committee_size) const {
  const Bytes expected = approval_payload(accusation);
  std::set<std::uint64_t> committee_keys;
  for (const auto& pk : committee) committee_keys.insert(pk.y);
  std::set<std::uint64_t> signers;
  std::vector<const crypto::SignedMessage*> to_verify;
  to_verify.reserve(approvals.size());
  for (const auto& sm : approvals) {
    if (!committee_keys.contains(sm.signer.y)) return false;
    if (!equal(sm.payload, expected)) return false;
    if (!signers.insert(sm.signer.y).second) return false;
    to_verify.push_back(&sm);
  }
  if (signers.size() * 2 <= committee_size) return false;
  return crypto::verify_batch(to_verify);
}

}  // namespace cyc::protocol
