// Engine part 1: construction, round scheduling, finalization, selection.
// Message handlers and recovery live in engine_msgs.cpp.
#include "protocol/engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "crypto/merkle.hpp"
#include "crypto/pow.hpp"
#include "crypto/pvss.hpp"
#include "crypto/schnorr.hpp"
#include "obs/observer.hpp"
#include "protocol/payloads.hpp"
#include "support/parallel.hpp"
#include "support/serde.hpp"

namespace cyc::protocol {

/// Per-round observability accumulators (live only while an Observer is
/// attached). The SimNet probes fill the per-(send phase, tag) cells;
/// obs_phase() diffs the running totals at phase boundaries so each
/// phase span carries exactly the traffic sent inside it.
struct Engine::ObsState {
  struct Cell {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };
  static constexpr std::size_t kPhases =
      static_cast<std::size_t>(net::Phase::kCount);

  std::array<std::array<Cell, net::kTagCount>, kPhases> sent{};
  std::array<std::array<Cell, net::kTagCount>, kPhases> recv{};
  Cell sent_total;
  Cell recv_total;
  Cell phase_sent_mark;  // totals at the open phase's begin
  Cell phase_recv_mark;
  net::Phase open_phase = net::Phase::kIdle;
  double open_phase_at = 0.0;
  /// Closed phase windows of the current round, in schedule order; the
  /// committee tracks replay them with per-committee traffic attached.
  struct PhaseWindow {
    net::Phase phase;
    double begin;
    double end;
  };
  std::vector<PhaseWindow> windows;
  /// Certs already announced this round (every holder runs on_cert; the
  /// qc-formed instant fires once, at formation time).
  std::set<std::pair<std::uint32_t, std::uint64_t>> certs_seen;
  /// Thread-local verify-cache counters last flushed into the registry.
  std::uint64_t vc_hits_mark = 0;
  std::uint64_t vc_misses_mark = 0;
};

Engine::Engine(Params params, AdversaryConfig adversary, EngineOptions options)
    : params_(params),
      adversary_(adversary),
      options_(options),
      rng_(rng::Stream(params.seed).fork("engine")) {
  randomness_ = crypto::sha256_concat({bytes_of("cyc.genesis.rand"),
                                       be64(params_.seed)});
  build_nodes();

  net_ = std::make_unique<net::SimNet>(nodes_.size(), params_.delays,
                                       rng_.fork("net"));
  // Always install the injector: a structurally inert plan consumes no
  // randomness and leaves delivery byte-identical, and having it in place
  // lets the harness add partitions / blackouts mid-run. The probabilistic
  // profile degrades only the wide-area classes — intra-committee links
  // keep the synchronous-Delta guarantee of §III-B.
  {
    net::FaultPlan plan;
    auto& key_mesh =
        plan.link[static_cast<std::size_t>(net::LinkClass::kKeyMesh)];
    auto& partial =
        plan.link[static_cast<std::size_t>(net::LinkClass::kPartialSync)];
    for (auto* faults : {&key_mesh, &partial}) {
      faults->drop = params_.faults.drop;
      faults->duplicate = params_.faults.duplicate;
      faults->reorder = params_.faults.reorder;
      faults->reorder_scale = params_.faults.reorder_scale;
    }
    net_->install_faults(std::move(plan), rng_.fork("faults"));
  }
  for (auto& n : nodes_) {
    const net::NodeId id = n.id;
    net_->set_handler(id, [this, id](const net::Message& msg, net::Time now) {
      handle(id, msg, now);
    });
  }

  ledger::WorkloadConfig wl;
  wl.shards = params_.m;
  wl.users = params_.users ? params_.users : 16 * params_.m;
  wl.cross_shard_fraction = params_.cross_shard_fraction;
  wl.invalid_fraction = params_.invalid_fraction;
  workload_ = std::make_unique<ledger::WorkloadGenerator>(
      wl, rng_.fork("workload").seed());
  shard_state_ = workload_->genesis();

  // Epoch-scoped account→shard map, identity at genesis: it answers
  // exactly like the static `shard_of` hash until a rebalance installs
  // overrides, so routing through it is byte-inert with the feature off.
  shard_map_ = std::make_shared<const ledger::ShardMap>(params_.m);
  workload_->install_shard_map(shard_map_);
  for (auto& store : shard_state_) store.attach_map(shard_map_);

  if (open_loop()) {
    if (params_.mempool_cap == 0) {
      // A zero-capacity mempool is always full(): every open-loop
      // arrival would be silently dropped, which reads as a healthy
      // zero-throughput system in every report. Reject loudly instead.
      throw std::invalid_argument(
          "engine: mempool_cap must be > 0 when arrival_rate > 0 "
          "(a zero-capacity mempool drops every arrival)");
    }
    // Sustained-traffic mode: arrivals come from a dedicated stream (the
    // closed-loop path never touches it, and forking is a pure function
    // of (seed, name), so a zero rate stays byte-identical).
    ledger::OpenLoopConfig ol;
    ol.arrival_rate = params_.arrival_rate;
    ol.zipf_s = params_.zipf_s;
    ol.cross_shard_fraction = params_.cross_shard_fraction;
    ol.invalid_fraction = params_.invalid_fraction;
    openloop_ = std::make_unique<ledger::OpenLoopSource>(
        ol, *workload_, rng_.fork("openloop").seed());
    mempools_.assign(params_.m,
                     ledger::ShardMempool(params_.mempool_cap));
  }

  assign_genesis_roles();
  link_classifier_install();
}

Engine::~Engine() = default;

void Engine::attach_observer(obs::Observer* observer) {
  obs_ = observer;
  if (observer == nullptr) {
    obs_state_.reset();
    net_->set_send_probe({});
    net_->set_deliver_probe({});
    return;
  }
  obs_state_ = std::make_unique<ObsState>();
  obs_state_->vc_hits_mark = crypto::verify_cache::hits();
  obs_state_->vc_misses_mark = crypto::verify_cache::misses();

  obs::Tracer& trace = observer->trace;
  trace.set_track_name(obs::kTrackProtocol, "protocol");
  trace.set_track_name(obs::kTrackNet, "net");
  if (open_loop()) trace.set_track_name(obs::kTrackMempool, "mempool");
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    trace.set_track_name(obs::kTrackCommitteeBase + k,
                         "committee " + std::to_string(k));
  }

  // The probes only accumulate into engine-local cells / the registry —
  // no randomness, no protocol state — so a probed run stays
  // byte-identical to an unprobed one.
  net_->set_send_probe([this](const net::SendInfo& info) {
    ObsState& st = *obs_state_;
    ObsState::Cell& cell = st.sent[static_cast<std::size_t>(info.phase)]
                                  [static_cast<std::size_t>(info.tag)];
    cell.msgs += 1;
    cell.bytes += info.bytes;
    st.sent_total.msgs += 1;
    st.sent_total.bytes += info.bytes;
    obs::Registry& m = obs_->metrics;
    switch (info.fault) {
      case net::FaultInjector::Fault::kPartition:
        m.counter("net.fault.partition_dropped").add();
        break;
      case net::FaultInjector::Fault::kBlackout:
        m.counter("net.fault.blackout_dropped").add();
        break;
      case net::FaultInjector::Fault::kLoss:
        m.counter("net.fault.lost").add();
        break;
      case net::FaultInjector::Fault::kNone:
        break;
    }
    if (info.duplicated) m.counter("net.fault.duplicated").add();
    if (info.reordered) m.counter("net.fault.reordered").add();
    if (!info.delivered && info.link == net::LinkClass::kUnconnected) {
      m.counter("net.unconnected_drops").add();
    }
  });
  net_->set_deliver_probe([this](const net::DeliverInfo& info) {
    ObsState& st = *obs_state_;
    ObsState::Cell& cell = st.recv[static_cast<std::size_t>(info.phase)]
                                  [static_cast<std::size_t>(info.tag)];
    cell.msgs += 1;
    cell.bytes += info.bytes;
    st.recv_total.msgs += 1;
    st.recv_total.bytes += info.bytes;
  });
}

void Engine::obs_round_begin() {
  if (obs_ == nullptr) return;
  ObsState& st = *obs_state_;
  for (auto& per_tag : st.sent) per_tag.fill({});
  for (auto& per_tag : st.recv) per_tag.fill({});
  st.sent_total = {};
  st.recv_total = {};
  st.phase_sent_mark = {};
  st.phase_recv_mark = {};
  st.open_phase = net::Phase::kIdle;
  st.open_phase_at = round_start_;
  st.windows.clear();
  st.certs_seen.clear();

  obs::Tracer& trace = obs_->trace;
  trace.begin(obs::kTrackProtocol, "round " + std::to_string(round_), "round",
              round_start_);
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    if (severed_.size() > k && severed_[k]) {
      trace.instant(obs::kTrackCommitteeBase + k, "severed", "fault",
                    round_start_, {{"committee", static_cast<double>(k)}});
    }
  }
  // start_round_state clears the (per-round) catch-up log and then pushes
  // only this boundary's *failed* records — successful adoptions get
  // their instant at the adoption site mid-round.
  for (const CatchUpRecord& rec : catchup_log_) {
    if (!rec.success) {
      trace.instant(obs::kTrackProtocol, "catchup-failed", "recovery",
                    round_start_,
                    {{"node", static_cast<double>(rec.node)},
                     {"attempts", static_cast<double>(rec.attempt)}});
      obs_->metrics.counter("engine.catchup.failed").add();
    }
  }
}

void Engine::obs_phase(net::Phase phase, net::Time at) {
  if (obs_ == nullptr) return;
  ObsState& st = *obs_state_;
  obs::Tracer& trace = obs_->trace;
  if (st.open_phase != net::Phase::kIdle) {
    const std::uint64_t msgs = st.sent_total.msgs - st.phase_sent_mark.msgs;
    const std::uint64_t bytes = st.sent_total.bytes - st.phase_sent_mark.bytes;
    const std::uint64_t recv = st.recv_total.msgs - st.phase_recv_mark.msgs;
    trace.end(obs::kTrackProtocol, at,
              {{"msgs_sent", static_cast<double>(msgs)},
               {"bytes_sent", static_cast<double>(bytes)},
               {"msgs_recv", static_cast<double>(recv)}});
    trace.counter(obs::kTrackNet, "net traffic", at,
                  {{"msgs_sent", static_cast<double>(st.sent_total.msgs)},
                   {"msgs_recv", static_cast<double>(st.recv_total.msgs)}});
    obs_->metrics
        .histogram("phase." + std::string(net::phase_name(st.open_phase)) +
                   ".msgs_sent")
        .record(static_cast<double>(msgs));
    st.windows.push_back({st.open_phase, st.open_phase_at, at});
  }
  st.open_phase = phase;
  st.open_phase_at = at;
  st.phase_sent_mark = st.sent_total;
  st.phase_recv_mark = st.recv_total;
  if (phase != net::Phase::kIdle) {
    trace.begin(obs::kTrackProtocol, std::string(net::phase_name(phase)),
                "phase", at);
  }
}

bool Engine::obs_first_cert(std::uint32_t scope, std::uint64_t sn) {
  return obs_state_->certs_seen.insert({scope, sn}).second;
}

void Engine::obs_round_end(const RoundReport& report, net::Time round_end) {
  if (obs_ == nullptr) return;
  obs_phase(net::Phase::kIdle, round_end);  // close the last phase span
  ObsState& st = *obs_state_;
  obs::Tracer& trace = obs_->trace;

  // Committee tracks mirror the phase schedule with per-committee traffic
  // (summed over the round's membership) attached to each phase span.
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    const std::uint32_t track = obs::kTrackCommitteeBase + k;
    const CommitteeRoundStats& cs = report.committees[k];
    trace.begin(track, "round " + std::to_string(round_), "round",
                round_start_);
    for (const auto& w : st.windows) {
      std::uint64_t msgs = 0;
      std::uint64_t bytes = 0;
      for (net::NodeId id : committee_members(k)) {
        const net::Counter& c = net_->stats().at(id, w.phase);
        msgs += c.msgs_sent;
        bytes += c.bytes_sent;
      }
      trace.begin(track, std::string(net::phase_name(w.phase)), "phase",
                  w.begin);
      trace.end(track, w.end,
                {{"msgs_sent", static_cast<double>(msgs)},
                 {"bytes_sent", static_cast<double>(bytes)}});
    }
    trace.end(track, round_end,
              {{"txs_listed", static_cast<double>(cs.txs_listed)},
               {"txs_committed", static_cast<double>(cs.txs_committed)},
               {"recoveries", static_cast<double>(cs.recoveries)},
               {"produced_output", cs.produced_output ? 1.0 : 0.0}});
  }

  if (open_loop()) {
    trace.counter(obs::kTrackMempool, "mempool", round_end,
                  {{"backlog", static_cast<double>(report.open_loop.backlog)},
                   {"admitted", static_cast<double>(report.open_loop.admitted)},
                   {"dropped",
                    static_cast<double>(report.open_loop.mempool_dropped)}});
  }
  trace.end(obs::kTrackProtocol, round_end,
            {{"msgs_sent", static_cast<double>(st.sent_total.msgs)},
             {"bytes_sent", static_cast<double>(st.sent_total.bytes)},
             {"committed", static_cast<double>(report.txs_committed)},
             {"recoveries", static_cast<double>(report.recoveries)}});

  // ---- metrics registry flush ----
  obs::Registry& m = obs_->metrics;
  m.counter("engine.rounds").add();
  m.counter("engine.txs_offered").add(report.txs_offered);
  m.counter("engine.txs_committed").add(report.txs_committed);
  m.counter("engine.cross_committed").add(report.cross_committed);
  m.counter("engine.recoveries").add(report.recoveries);
  if (report.block_void) m.counter("engine.blocks_void").add();
  m.histogram("round.sim_duration").record(report.round_latency);

  const std::uint64_t hits = crypto::verify_cache::hits();
  const std::uint64_t misses = crypto::verify_cache::misses();
  m.counter("crypto.verify_cache.hits").add(hits - st.vc_hits_mark);
  m.counter("crypto.verify_cache.misses").add(misses - st.vc_misses_mark);
  st.vc_hits_mark = hits;
  st.vc_misses_mark = misses;

  for (std::size_t p = 0; p < ObsState::kPhases; ++p) {
    const auto phase = static_cast<net::Phase>(p);
    for (std::size_t t = 0; t < net::kTagCount; ++t) {
      const auto tag = static_cast<net::Tag>(t);
      const ObsState::Cell& sent = st.sent[p][t];
      if (sent.msgs != 0) {
        const std::string base = "net.sent." +
                                 std::string(net::phase_name(phase)) + "." +
                                 std::string(net::tag_name(tag));
        m.counter(base + ".msgs").add(sent.msgs);
        m.counter(base + ".bytes").add(sent.bytes);
      }
      const ObsState::Cell& recv = st.recv[p][t];
      if (recv.msgs != 0) {
        const std::string base = "net.recv." +
                                 std::string(net::phase_name(phase)) + "." +
                                 std::string(net::tag_name(tag));
        m.counter(base + ".msgs").add(recv.msgs);
        m.counter(base + ".bytes").add(recv.bytes);
      }
    }
  }

  if (open_loop()) {
    m.counter("mempool.arrived").add(report.open_loop.arrived);
    m.counter("mempool.admitted").add(report.open_loop.admitted);
    m.counter("mempool.dropped").add(report.open_loop.mempool_dropped);
    m.counter("mempool.drained").add(report.open_loop.drained);
    m.gauge("mempool.backlog")
        .set(static_cast<double>(report.open_loop.backlog));
    for (std::size_t k = 0; k < report.open_loop.occupancy.size(); ++k) {
      m.gauge("mempool.occupancy." + std::to_string(k))
          .set(static_cast<double>(report.open_loop.occupancy[k]));
    }
    for (double latency : report.open_loop.latencies) {
      m.histogram("mempool.commit_latency").record(latency);
    }
  }
}

void Engine::build_nodes() {
  // The universe is the active seats plus the standby pool; standby
  // identities exist (keys, capacity, possibly a genesis corruption) but
  // are not enrolled until an epoch boundary admits them.
  const std::uint32_t n = params_.universe();
  nodes_.resize(n);
  rng::Stream keys_rng = rng_.fork("keys");
  rng::Stream cap_rng = rng_.fork("capacity");
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeState& node = nodes_[i];
    node.id = i;
    node.enrolled = i < params_.total_nodes();
    rng::Stream kr = keys_rng.fork(i);
    node.keys = crypto::KeyPair::generate(kr);
    node.capacity = static_cast<std::uint32_t>(cap_rng.range(
        params_.capacity_min, params_.capacity_max));
    pk_index_[node.keys.pk.y] = i;
  }
  // Genesis corruption: < corrupt_fraction of all nodes, active from the
  // first round (corrupted_at = 0 < round 1).
  rng::Stream adv_rng = rng_.fork("adversary");
  const auto target = static_cast<std::size_t>(
      adversary_.corrupt_fraction * static_cast<double>(n));
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  rng::shuffle(order, adv_rng);
  for (std::size_t i = 0; i < target && i < order.size(); ++i) {
    NodeState& node = nodes_[order[i]];
    node.behavior = adversary_.sample(adv_rng);
    node.corrupted_at = 0;
  }
}

void Engine::assign_genesis_roles() {
  assign_ = RoundAssignment{};
  assign_.round = 1;
  // Only the enrolled membership takes part; standby identities wait for
  // an epoch boundary.
  std::vector<net::NodeId> order = members();
  rng::Stream role_rng = rng_.fork("genesis-roles");
  rng::shuffle(order, role_rng);

  std::size_t next = 0;
  assign_.referees.assign(order.begin(),
                          order.begin() + params_.referee_size);
  next = params_.referee_size;
  assign_.committees.resize(params_.m);
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    CommitteeInfo& committee = assign_.committees[k];
    committee.id = k;
    committee.leader = order[next++];
    for (std::uint32_t j = 0; j < params_.lambda; ++j) {
      committee.partial.push_back(order[next++]);
    }
  }
  // Remaining nodes land in committees by cryptographic sortition
  // (Alg. 1), exactly as they will in later rounds, so their membership
  // proofs verify during committee configuration.
  for (; next < order.size(); ++next) {
    NodeState& n = nodes_[order[next]];
    n.ticket = crypto_sort(n.keys, 1, randomness_, params_.m);
    assign_.committees[n.ticket.committee].commons.push_back(n.id);
  }

  // Optional forced corruption of round-1 leaders (Table I row 6 sweeps).
  // When the adversary mix names a single behaviour, forced leaders use
  // it; otherwise the four leader misbehaviours are assigned cyclically.
  if (adversary_.forced_corrupt_leader_fraction >= 0.0) {
    const auto bad = static_cast<std::size_t>(std::llround(
        adversary_.forced_corrupt_leader_fraction *
        static_cast<double>(params_.m)));
    static constexpr Behavior kLeaderBehaviors[] = {
        Behavior::kEquivocator, Behavior::kCommitForger, Behavior::kCrash,
        Behavior::kConcealer};
    std::optional<Behavior> pinned;
    {
      const Behavior* only = nullptr;
      int positive = 0;
      for (const auto& w : adversary_.mix) {
        if (w.weight > 0.0) {
          ++positive;
          only = &w.behavior;
        }
      }
      if (positive == 1) pinned = *only;
    }
    for (std::size_t k = 0; k < bad && k < assign_.committees.size(); ++k) {
      NodeState& leader = nodes_[assign_.committees[k].leader];
      leader.behavior = pinned ? *pinned : kLeaderBehaviors[k % 4];
      leader.corrupted_at = 0;
    }
  }
}

void Engine::link_classifier_install() {
  net_->set_link_classifier([this](net::NodeId a, net::NodeId b) {
    const Role ra = nodes_[a].role;
    const Role rb = nodes_[b].role;
    const bool key_a = ra != Role::kCommon;
    const bool key_b = rb != Role::kCommon;
    if (nodes_[a].committee >= 0 && nodes_[a].committee == nodes_[b].committee) {
      return net::LinkClass::kIntraCommittee;
    }
    if (ra == Role::kReferee && rb == Role::kReferee) {
      return net::LinkClass::kKeyMesh;
    }
    if (key_a && key_b) return net::LinkClass::kKeyMesh;
    return net::LinkClass::kPartialSync;
  });
}

std::vector<net::NodeId> Engine::committee_members(std::uint32_t k) const {
  auto members = assign_.committees[k].all_members();
  // Recovery may have replaced the leader; membership is unchanged.
  return members;
}

std::vector<crypto::PublicKey> Engine::committee_pks(std::uint32_t k) const {
  std::vector<crypto::PublicKey> pks;
  for (net::NodeId id : committee_members(k)) pks.push_back(nodes_[id].keys.pk);
  return pks;
}

net::NodeId Engine::node_of_pk(const crypto::PublicKey& pk) const {
  auto it = pk_index_.find(pk.y);
  return it == pk_index_.end() ? net::kNoNode : it->second;
}

net::NodeId Engine::designated_referee(std::uint64_t sn) const {
  // The referee designated to drive instance `sn`: the hash seat, or —
  // when that seat is silent this round — the next active seat in
  // rotation order. C_R's consensus tolerates < 1/3 faulty referees via
  // view change; this is the deterministic stand-in (every node
  // evaluates the same rotation), so one crashed referee cannot stall
  // conviction, re-selection or block release for a whole round.
  // A seat the fault schedule has silenced (blackout) or cut off from the
  // referee majority (partition) is skipped exactly like a crashed one:
  // every node evaluates the same plan, so the rotation stays agreed.
  const std::size_t size = assign_.referees.size();
  for (std::size_t step = 0; step < size; ++step) {
    const net::NodeId id = assign_.referees[(sn + step) % size];
    if (nodes_[id].is_active(round_) && referee_reachable(id)) return id;
  }
  return assign_.referees[sn % size];  // all silent: threat-model breach
}

bool Engine::referee_reachable(net::NodeId id) const {
  const net::FaultInjector* injector = net_->faults();
  if (injector == nullptr) return true;
  if (injector->blacked_out(id)) return false;
  if (!injector->partition_active()) return true;
  // Majority island of the referee committee: the mask shared by the most
  // non-blacked-out seats (ties break toward the smaller mask, which every
  // node computes identically).
  std::map<std::uint64_t, std::size_t> mask_counts;
  for (net::NodeId seat : assign_.referees) {
    // A crashed seat casts no votes: it must not pull the majority island
    // toward wherever it happens to sit (same rule as compute_severed).
    if (!injector->blacked_out(seat) && nodes_[seat].is_active(round_)) {
      mask_counts[injector->island_mask(seat)] += 1;
    }
  }
  if (mask_counts.empty()) return false;
  std::uint64_t majority_mask = 0;
  std::size_t best = 0;
  for (const auto& [mask, count] : mask_counts) {
    if (count > best) {
      best = count;
      majority_mask = mask;
    }
  }
  return injector->island_mask(id) == majority_mask;
}

void Engine::compute_severed() {
  severed_.assign(params_.m, false);
  const net::FaultInjector* injector = net_->faults();
  if (injector == nullptr ||
      (!injector->partition_active() && !has_active_blackout())) {
    return;
  }
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    const CommitteeInfo& info = assign_.committees[k];
    const std::vector<net::NodeId> members = info.all_members();
    // Group every relevant node by island; the committee keeps quorum iff
    // some single island simultaneously holds a committee majority, a
    // referee majority, and a driver (the leader or a partial member) —
    // otherwise no certified result can both form and reach C_R.
    std::map<std::uint64_t, std::size_t> committee_count;
    std::map<std::uint64_t, std::size_t> referee_count;
    std::map<std::uint64_t, bool> has_driver;
    for (net::NodeId id : members) {
      // Only seats that can actually vote this round count toward an
      // island's quorum: a crashed node parked on the majority island
      // is connectivity on paper, not a signer.
      if (injector->blacked_out(id) || !nodes_[id].is_active(round_)) continue;
      const std::uint64_t mask = injector->island_mask(id);
      committee_count[mask] += 1;
      if (id == info.leader ||
          std::find(info.partial.begin(), info.partial.end(), id) !=
              info.partial.end()) {
        has_driver[mask] = true;
      }
    }
    for (net::NodeId id : assign_.referees) {
      if (!injector->blacked_out(id) && nodes_[id].is_active(round_)) {
        referee_count[injector->island_mask(id)] += 1;
      }
    }
    bool has_quorum = false;
    for (const auto& [mask, count] : committee_count) {
      if (count * 2 > members.size() &&
          referee_count[mask] * 2 > assign_.referees.size() &&
          has_driver[mask]) {
        has_quorum = true;
        break;
      }
    }
    severed_[k] = !has_quorum;
  }
}

bool Engine::has_active_blackout() const {
  const net::FaultInjector* injector = net_->faults();
  if (injector == nullptr) return false;
  for (const auto& n : nodes_) {
    if (injector->blacked_out(n.id)) return true;
  }
  return false;
}

crypto::PublicKey Engine::expected_instance_leader(std::uint32_t scope,
                                                   std::uint64_t sn) const {
  if (scope == params_.m) {  // referee scope
    return nodes_[designated_referee(sn)].keys.pk;
  }
  return nodes_[committees_[scope].current_leader].keys.pk;
}

std::vector<net::NodeId> Engine::instance_peers(std::uint32_t scope) const {
  if (scope == params_.m) return assign_.referees;
  return committee_members(scope);
}

std::size_t Engine::instance_size(std::uint32_t scope) const {
  if (scope == params_.m) return assign_.referees.size();
  return assign_.committees[scope].size();
}

void Engine::corrupt(net::NodeId id, Behavior behavior) {
  nodes_[id].behavior = behavior;
  nodes_[id].corrupted_at = round_;  // takes effect from round_+1
}

crypto::Digest catchup_state_digest(
    const crypto::Digest& tip_hash,
    const std::vector<ledger::UtxoStore>& shards) {
  Writer w;
  w.str("cyc.catchup.state");
  w.bytes(crypto::digest_to_bytes(tip_hash));
  for (const auto& shard : shards) {
    w.bytes(crypto::digest_to_bytes(shard.digest()));
  }
  return crypto::sha256(w.out());
}

void Engine::restart(net::NodeId id) {
  NodeState& n = nodes_[id];
  // Only a crashed node can restart; a shrinker-orphaned restart of a
  // live node is a deliberate no-op.
  if (n.behavior != Behavior::kCrash) return;
  n.behavior = Behavior::kHonest;
  n.corrupted_at = ~0ull;
  n.catching_up = true;
  n.catchup_attempts = 0;
  n.catchup_adopted = false;
  n.catchup_tally.clear();
}

void Engine::partition(std::vector<net::NodeId> island,
                       std::uint64_t from_round, std::uint64_t heal_round) {
  net::PartitionSpec spec;
  spec.from_round = from_round;
  spec.heal_round = heal_round;
  spec.island = std::move(island);
  net_->faults()->add_partition(std::move(spec));
}

void Engine::blackout(net::NodeId id, std::uint64_t from_round,
                      std::uint64_t until_round) {
  net_->faults()->add_blackout({id, from_round, until_round});
}

std::uint64_t Engine::heal(std::uint64_t round) {
  return net_->faults()->heal_all(round);
}

bool Engine::impaired(net::NodeId id, std::uint64_t round) const {
  const net::FaultInjector* inj = net_->faults();
  if (inj == nullptr) return false;
  const net::FaultPlan& plan = inj->plan();
  for (const auto& b : plan.blackouts) {
    if (b.node == id && round >= b.from_round && round < b.until_round) {
      return true;
    }
  }
  for (const auto& p : plan.partitions) {
    if (round < p.from_round || round >= p.heal_round) continue;
    if (std::find(p.island.begin(), p.island.end(), id) != p.island.end()) {
      return true;
    }
  }
  return false;
}

std::vector<net::NodeId> Engine::members() const {
  std::vector<net::NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (n.enrolled) out.push_back(n.id);
  }
  return out;
}

void Engine::reconfigure(const Reconfiguration& reconfig) {
  const std::size_t need =
      params_.referee_size +
      static_cast<std::size_t>(params_.m) * (1 + params_.lambda);
  std::set<net::NodeId> unique(reconfig.members.begin(),
                               reconfig.members.end());
  if (unique.size() != reconfig.members.size()) {
    throw std::invalid_argument("reconfigure: duplicate member ids");
  }
  if (unique.size() < need) {
    throw std::invalid_argument(
        "reconfigure: membership smaller than the role floor (" +
        std::to_string(unique.size()) + " < " + std::to_string(need) + ")");
  }
  for (net::NodeId id : unique) {
    if (id >= nodes_.size()) {
      throw std::invalid_argument("reconfigure: unknown node id " +
                                  std::to_string(id));
    }
  }

  for (auto& n : nodes_) n.enrolled = false;
  for (net::NodeId id : unique) nodes_[id].enrolled = true;

  // Canonical participant order (node id); the draw itself is a pure
  // function of (membership, randomness, reputations).
  const std::vector<net::NodeId> participants(unique.begin(), unique.end());
  std::optional<rng::Stream> uniform;
  if (!options_.reputation_leader_selection) {
    uniform = rng_.fork("epoch-uniform-leaders").fork(reconfig.epoch);
  }
  randomness_ = reconfig.randomness;
  assign_ = draw_assignment(
      participants, round_, randomness_,
      [this](net::NodeId id) { return nodes_[id].reputation; },
      uniform ? &*uniform : nullptr);
  if (obs_ != nullptr) {
    obs_->trace.instant(obs::kTrackProtocol, "epoch-handoff", "epoch",
                        net_->now(),
                        {{"epoch", static_cast<double>(reconfig.epoch)},
                         {"members", static_cast<double>(unique.size())}});
    obs_->metrics.counter("engine.epoch_handoffs").add();
  }
  // Ledger state (chain_, shard_state_, carryover_, workload_),
  // reputations and rewards deliberately survive untouched — that is the
  // contract the EpochHandoff audit checks.
}

void Engine::start_round_state() {
  // Crash-recovery lifecycle: a restarted node that adopted a majority
  // state digest last round rejoins now (its UTXO view is rebuilt by the
  // per-round copy below, so the adopted digest is what it replays from);
  // one that exhausted its retry budget re-crashes.
  catchup_log_.clear();
  for (auto& n : nodes_) {
    if (!n.catching_up) continue;
    if (n.catchup_adopted) {
      n.catching_up = false;
      n.catchup_adopted = false;
      n.catchup_tally.clear();
    } else if (n.catchup_attempts >= options_.max_catchup_rounds) {
      n.catching_up = false;
      n.behavior = Behavior::kCrash;
      n.corrupted_at = 0;
      n.catchup_tally.clear();
      CatchUpRecord record;
      record.node = n.id;
      record.round = round_;
      record.attempt = n.catchup_attempts;
      record.success = false;
      catchup_log_.push_back(record);
    } else {
      n.catchup_tally.clear();  // fresh tally every attempt
    }
  }
  // Per-node round reset: every write is confined to nodes_[i], so the
  // jobs are index-disjoint and the result is independent of worker
  // scheduling (no RNG, no sends, no verify-cache touches).
  support::parallel_for(
      nodes_.size(),
      [&](std::size_t i) {
        auto& n = nodes_[i];
        n.role = Role::kCommon;
        n.committee = -1;
        n.member_list.clear();
        n.lead.clear();
        n.member.clear();
        n.certs.clear();
        n.leader_list_msg.reset();
        n.leader_commit_msg.reset();
        n.commitments.clear();
        n.lists.clear();
        n.known_pks.clear();
        n.votes.clear();
        n.cross_votes.clear();
        n.pending_votes.clear();
        n.pending_cross_votes.clear();
        n.intra_decision.clear();
        n.cross_decision.clear();
        n.sent_intra_result = false;
        n.cross_in.clear();
        n.cross_in_at.clear();
        n.cross_done.clear();
        n.cross_hints.clear();
        n.cross_hint_at.clear();
        n.cross_seen_propose.clear();
        n.leader_sent_txlist = false;
        n.leader_sent_commitment = false;
        n.pending_accusation.reset();
        n.impeach_approvals.clear();
        n.accused_this_round = false;
        n.sent_prosecution = false;
      },
      options_.engine_threads);
  for (net::NodeId id : assign_.referees) {
    nodes_[id].role = Role::kReferee;
  }
  for (const auto& committee : assign_.committees) {
    nodes_[committee.leader].role = Role::kLeader;
    nodes_[committee.leader].committee = committee.id;
    for (net::NodeId id : committee.partial) {
      nodes_[id].role = Role::kPartial;
      nodes_[id].committee = committee.id;
    }
    for (net::NodeId id : committee.commons) {
      nodes_[id].role = Role::kCommon;
      nodes_[id].committee = committee.id;
    }
  }
  // Members copy their shard's UTXO view (the state their committee is
  // responsible for). For n in the thousands these deep copies dominate
  // round setup; each job reads shared shard state and writes only its
  // own node, so the copies parallelize without a merge step.
  support::parallel_for(
      nodes_.size(),
      [&](std::size_t i) {
        auto& n = nodes_[i];
        if (n.committee >= 0) {
          n.utxo = shard_state_[static_cast<std::size_t>(n.committee)];
        } else {
          n.utxo = ledger::UtxoStore(0, params_.m);
          n.utxo.attach_map(shard_map_);
        }
      },
      options_.engine_threads);

  committees_.assign(params_.m, CommitteeRound{});
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    committees_[k].current_leader = assign_.committees[k].leader;
  }

  // Draw this round's workload and split per committee; the previous
  // round's Remaining TX List (§IV-G) goes in first. Closed loop: a
  // fixed batch tops the lists up to txs_per_committee * m. Open loop:
  // Poisson arrivals are admitted to the bounded per-shard mempools and
  // each committee drains at most its per-round service budget.
  std::vector<ledger::Transaction> batch = std::move(carryover_);
  carryover_.clear();
  if (!open_loop()) {
    const std::size_t want =
        static_cast<std::size_t>(params_.txs_per_committee) * params_.m;
    const std::size_t fresh = want > batch.size() ? want - batch.size() : 0;
    for (auto& tx : workload_->next_batch(fresh)) {
      batch.push_back(std::move(tx));
    }
  } else {
    openloop_ingest(batch);
  }
  for (auto& tx : batch) {
    const std::uint32_t k = ledger::input_shard(tx, *shard_map_);
    if (ledger::is_intra_shard(tx, *shard_map_)) {
      committees_[k].intra_list.push_back(std::move(tx));
    } else {
      committees_[k].cross_list.push_back(std::move(tx));
    }
  }

  recovery_log_.clear();
  pending_scores_.clear();
  convicted_leaders_.clear();
  registered_.clear();
  net_->stats().reset();

  // Advance the fault clock before computing quorum-reachability: the
  // schedule activates / expires on round boundaries, and the severed
  // verdicts below must reflect *this* round's connectivity.
  net_->begin_round(round_);
  compute_severed();
}

double Engine::nominal_round_duration() const {
  return (params_.config_duration + params_.semicommit_duration +
          params_.intra_duration + params_.inter_duration +
          params_.reputation_duration + params_.selection_duration +
          params_.block_duration) *
         params_.delays.delta;
}

void Engine::openloop_ingest(std::vector<ledger::Transaction>& batch) {
  openloop_round_ = OpenLoopRoundStats{};

  // Rebalance mode additionally accumulates the per-shard load window
  // the epoch-boundary planner consumes. Pure counting — no RNG — so
  // the branch cannot perturb the off-mode byte streams.
  const bool track_load = params_.rebalance;
  if (track_load && load_window_.offered.empty()) {
    load_window_.offered.assign(params_.m, 0);
    load_window_.dropped.assign(params_.m, 0);
    load_window_.occupancy_sum.assign(params_.m, 0);
  }

  // Generate this round's arrival window and admit into the mempools.
  // A transaction rejected at admission returns its inputs to the
  // workload pool (mark_rejected no-ops for invalid injections).
  const double window_end = openloop_clock_ + nominal_round_duration();
  for (auto& arrival : openloop_->arrivals_until(window_end)) {
    openloop_round_.arrived += 1;
    const std::uint32_t k = ledger::input_shard(arrival.tx, *shard_map_);
    if (track_load) {
      load_window_.offered[k] += 1;
      load_window_.account_arrivals[arrival.tx.spender.y] += 1;
    }
    if (mempools_[k].admit(arrival.tx, arrival.time)) {
      openloop_round_.admitted += 1;
      const auto id = arrival.tx.id();
      arrival_times_[std::string(id.begin(), id.end())] = arrival.time;
    } else {
      openloop_round_.mempool_dropped += 1;
      if (track_load) load_window_.dropped[k] += 1;
      workload_->mark_rejected(arrival.tx);
    }
  }
  openloop_round_.arrived += openloop_->exhausted() - openloop_exhausted_;
  openloop_round_.exhausted = openloop_->exhausted() - openloop_exhausted_;
  openloop_exhausted_ = openloop_->exhausted();
  openloop_clock_ = window_end;

  // Drain each committee's service budget, after its §IV-G carryover
  // share: the Remaining TX List re-enters the lists first and counts
  // against the same per-round bound.
  std::vector<std::size_t> carried(params_.m, 0);
  for (const auto& tx : batch) {
    carried[ledger::input_shard(tx, *shard_map_)] += 1;
  }
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    const std::size_t budget =
        params_.txs_per_committee > carried[k]
            ? params_.txs_per_committee - carried[k]
            : 0;
    for (auto& pending : mempools_[k].drain(budget)) {
      openloop_round_.drained += 1;
      batch.push_back(std::move(pending.tx));
    }
  }
  // Occupancy is sampled HERE, after the drain: it is the backlog
  // carried into the next round, not the pre-service queue depth (see
  // src/ledger/README.md; tests/protocol/test_engine_openloop.cpp pins
  // this).
  openloop_round_.occupancy.reserve(params_.m);
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    const std::size_t backlog = mempools_[k].size();
    openloop_round_.backlog += backlog;
    openloop_round_.occupancy.push_back(backlog);
    if (track_load) load_window_.occupancy_sum[k] += backlog;
  }
  if (track_load) load_window_.rounds += 1;
}

void Engine::roll_rebalance_window() {
  frozen_window_ = std::move(load_window_);
  load_window_ = ledger::ShardLoadWindow{};
}

std::uint64_t Engine::apply_rebalance(
    std::shared_ptr<const ledger::ShardMap> next,
    const std::vector<ledger::AccountMove>& moves) {
  if (!next || next->shards() != params_.m) {
    throw std::invalid_argument(
        "engine: rebalance map must keep the live shard count");
  }
  // Migrate every re-homed UTXO between the authoritative shard stores
  // (rolling digests stay self-consistent: spend from the old home, add
  // at the new one under the successor map).
  const std::uint64_t migrated =
      ledger::migrate_stores(shard_state_, *shard_map_, next, moves);

  // Re-bucket the admitted open-loop backlog: a pending transaction
  // whose spender moved must wait in its new home's queue or the next
  // drain would hand it to the wrong committee. restore() bypasses
  // admission control — these transactions are already admitted, and
  // dropping one here would break flow conservation.
  if (!mempools_.empty()) {
    for (std::uint32_t k = 0; k < params_.m; ++k) {
      auto moved = mempools_[k].extract_if([&](const ledger::Transaction& tx) {
        return ledger::input_shard(tx, *next) != k;
      });
      for (auto& pending : moved) {
        mempools_[ledger::input_shard(pending.tx, *next)].restore(
            std::move(pending));
      }
    }
  }

  shard_map_ = std::move(next);
  workload_->install_shard_map(shard_map_);
  return migrated;
}

RoundReport Engine::run_round() {
  start_round_state();
  round_start_ = net_->now();
  obs_round_begin();
  const double D = params_.delays.delta;

  net::Time t = round_start_;
  net_->schedule(t, [this](net::Time at) { phase_config(at); });
  t += params_.config_duration * D;
  net_->schedule(t, [this](net::Time at) { phase_semicommit(at); });
  t += params_.semicommit_duration * D;
  net_->schedule(t, [this](net::Time at) { phase_intra(at); });
  t += params_.intra_duration * D;
  net_->schedule(t, [this](net::Time at) { phase_inter(at); });
  t += params_.inter_duration * D;
  net_->schedule(t, [this](net::Time at) { phase_reputation(at); });
  t += params_.reputation_duration * D;
  net_->schedule(t, [this](net::Time at) { phase_selection(at); });
  t += params_.selection_duration * D;
  net_->schedule(t, [this](net::Time at) { phase_block(at); });
  t += params_.block_duration * D;

  net_->run(t + 100.0 * D);

  RoundReport report;
  report.round = round_;
  if (next_assign_.round != round_ + 1) compute_selection();  // fallback
  finalize_round(report);
  obs_round_end(report, net_->now());

  last_assign_ = assign_;  // round-start roles (recovery edits committees_)
  round_ += 1;
  assign_ = next_assign_;
  randomness_ = next_randomness_;
  return report;
}

RunReport Engine::run(std::size_t rounds) {
  RunReport report;
  for (std::size_t r = 0; r < rounds; ++r) {
    report.rounds.push_back(run_round());
  }
  report.final_reputations.reserve(nodes_.size());
  report.final_rewards.reserve(nodes_.size());
  report.behaviors.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    report.final_reputations.push_back(n.reputation);
    report.final_rewards.push_back(n.reward);
    report.behaviors.push_back(n.corrupted_at < round_ ? n.behavior
                                                       : Behavior::kHonest);
  }
  return report;
}

double Engine::storage_proxy(const NodeState& n) const {
  double bytes = 0.0;
  bytes += 16.0 * static_cast<double>(n.member_list.size());
  bytes += 32.0 * static_cast<double>(n.commitments.size());
  for (const auto& [k, list] : n.lists) {
    bytes += 8.0 * static_cast<double>(list.size());
  }
  bytes += 48.0 * static_cast<double>(n.utxo.size());
  for (const auto& [sn, cert] : n.certs) {
    bytes += static_cast<double>(cert.serialize().size());
  }
  return bytes;
}

void Engine::adopt_quorum_scores() {
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    if (!committees_[k].score_report ||
        !referee_quorum(committees_[k].score_acks)) {
      continue;
    }
    const auto scores =
        wire::ScoreListMsg::deserialize(*committees_[k].score_report);
    for (std::size_t i = 0; i < scores.nodes.size(); ++i) {
      pending_scores_[scores.nodes[i]] = scores.scores[i];
    }
  }
}

void Engine::finalize_round(RoundReport& report) {
  adopt_quorum_scores();
  report.round_latency = net_->now() - round_start_;
  report.recoveries = recovery_log_.size();
  report.recovery_events = recovery_log_;
  report.catchup_events = catchup_log_;
  report.faults = net_->stats().faults();

  // --- Collect committed transactions from the referee's view. ---
  std::vector<ledger::Transaction> committed;
  std::set<std::string> seen_ids;
  // Block-level double-spend guard: two certified transactions spending
  // the same outpoint can reach C_R (e.g. one intra, one cross); "at
  // least one of them will be regarded as illegal" (§VIII-B), so the
  // first wins and the second is rejected here.
  std::unordered_set<ledger::OutPoint, ledger::OutPointHash> spent_in_block;
  auto add_committed = [&](const ledger::Transaction& tx, bool cross,
                           CommitteeRoundStats& stats) {
    const auto id = tx.id();
    const std::string key(id.begin(), id.end());
    if (!seen_ids.insert(key).second) return;
    for (const auto& in : tx.inputs) {
      if (spent_in_block.contains(in)) {
        report.invalid_rejected += 1;
        arrival_times_.erase(key);  // will never commit (open loop only)
        return;
      }
    }
    // Safety accounting: a ground-truth-invalid transaction reaching the
    // block is a protocol failure.
    const std::uint32_t shard = ledger::input_shard(tx, *shard_map_);
    if (ledger::V(tx, shard_state_[shard])) {
      for (const auto& in : tx.inputs) spent_in_block.insert(in);
      committed.push_back(tx);
      stats.txs_committed += 1;
      if (cross) {
        stats.cross_committed += 1;
        report.cross_committed += 1;
      } else {
        report.intra_committed += 1;
      }
    } else {
      report.invalid_committed += 1;
      arrival_times_.erase(key);
    }
  };

  report.committees.resize(params_.m);
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    auto& stats = report.committees[k];
    stats.committee = k;
    stats.recoveries = committees_[k].recoveries;
    stats.severed = severed_.size() > k && severed_[k];
    stats.txs_listed =
        committees_[k].intra_list.size() + committees_[k].cross_list.size();
    report.txs_offered += stats.txs_listed;

    // A stored result counts only once a majority of referees acked the
    // same bytes: a result that reached just a minority island of a
    // partitioned C_R never makes it into the block.
    if (committees_[k].intra_result &&
        referee_quorum(committees_[k].intra_acks)) {
      stats.produced_output = true;
      const auto decision =
          wire::IntraDecision::deserialize(*committees_[k].intra_result);
      for (const auto& tx : decision.txdec_set) {
        add_committed(tx, false, stats);
      }
    }
    for (const auto& [origin, payload] : committees_[k].cross_results) {
      auto acks = committees_[k].cross_acks.find(origin);
      if (acks == committees_[k].cross_acks.end() ||
          !referee_quorum(acks->second)) {
        continue;
      }
      auto& origin_stats = report.committees[origin];
      const auto result = wire::CrossResultMsg::deserialize(payload);
      for (const auto& tx : result.request.txs) {
        add_committed(tx, true, origin_stats);
      }
      origin_stats.produced_output = true;
    }
  }

  report.txs_committed = committed.size();
  report.block_void = committed.empty();

  // Append B^r to the chain (header linkage checked by Chain::append).
  {
    ledger::Block block = ledger::Block::build(
        chain_.tip().round + 1, chain_.tip().hash(), next_randomness_,
        committed);
    const bool ok = chain_.append(block);
    (void)ok;  // structurally guaranteed; validated again by tests
    last_block_ = std::move(block);  // chain keeps headers only
  }

  // Flow conservation counters (§IV-G): every unique offered transaction
  // is classified exactly once — settled (reached a certified result,
  // i.e. populates seen_ids above), carried, or dropped. Settled is
  // counted here; carried/dropped fall out of the Remaining-TX-List pass
  // below, which shares the same dedup set, so the accounting adds one
  // set insert per offered tx to the existing loop rather than an extra
  // pass over the lists.
  last_flow_ = RoundFlow{};
  last_flow_.committed = committed.size();

  // Ground-truth bookkeeping: count invalid txs that were offered but
  // correctly kept out of the block.
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    for (const auto* list :
         {&committees_[k].intra_list, &committees_[k].cross_list}) {
      for (const auto& tx : *list) {
        if (!workload_->is_ground_truth_valid(tx.id())) {
          const std::string key = [&] {
            const auto id = tx.id();
            return std::string(id.begin(), id.end());
          }();
          if (!seen_ids.contains(key)) report.invalid_rejected += 1;
        }
      }
    }
  }

  // --- Apply the block to the authoritative per-shard state. ---
  // Parallel over *stores*: each job walks the committed list in block
  // order and applies every tx to its one shard, computing the fee just
  // before the apply when that shard is the tx's input shard. This
  // reproduces the sequential semantics exactly — fee(tx_i) is taken
  // against the store after txs 0..i-1 applied — with index-disjoint
  // writes (fees[i] has a unique owning shard). The fee sum then runs
  // sequentially in block order so floating-point association is
  // bit-identical to the single-threaded path.
  std::vector<double> fees(committed.size(), 0.0);
  support::parallel_for(
      shard_state_.size(),
      [&](std::size_t s) {
        auto& store = shard_state_[s];
        for (std::size_t i = 0; i < committed.size(); ++i) {
          const auto& tx = committed[i];
          if (ledger::input_shard(tx, *shard_map_) == s) {
            fees[i] = static_cast<double>(ledger::tx_fee(tx, store));
          }
          store.apply(tx);
        }
      },
      options_.engine_threads);
  double total_fees = 0.0;
  for (std::size_t i = 0; i < committed.size(); ++i) {
    total_fees += fees[i];
    workload_->mark_committed(committed[i]);
  }
  report.total_fees = total_fees;
  // Offered but unpacked valid txs form the Remaining TX List (§IV-G)
  // and are retried next round; ground-truth-invalid ones are dropped.
  // Processed once per unique tx id (lists cannot repeat an id today —
  // shard routing is deterministic and the workload never re-issues an
  // in-flight tx — but the flow counters and the carryover must stay in
  // lockstep if that ever changes).
  {
    std::set<std::string> flow_counted;
    for (std::uint32_t k = 0; k < params_.m; ++k) {
      for (const auto* list :
           {&committees_[k].intra_list, &committees_[k].cross_list}) {
        for (const auto& tx : *list) {
          const auto id = tx.id();
          const std::string key(id.begin(), id.end());
          if (!flow_counted.insert(key).second) continue;
          last_flow_.offered += 1;
          if (seen_ids.contains(key)) {
            last_flow_.settled += 1;
            continue;
          }
          if (workload_->is_ground_truth_valid(id)) {
            carryover_.push_back(tx);
            last_flow_.carried += 1;
          } else {
            workload_->mark_rejected(tx);
            last_flow_.dropped += 1;
            // A dropped transaction will never commit: retire its
            // arrival stamp (no-op in closed-loop mode).
            arrival_times_.erase(key);
          }
        }
      }
    }
    last_flow_.foreign = seen_ids.size() - last_flow_.settled;
  }

  // --- Open-loop latency accounting. --- Every committed transaction's
  // end-to-end latency is its block-commit stamp (the end of this
  // round's arrival window, in simulated time) minus its admission
  // timestamp. Carryover transactions keep their stamps and pay for the
  // extra rounds they wait.
  if (open_loop()) {
    openloop_round_.source_shortfall = workload_->shortfall();
    for (const auto& tx : committed) {
      const auto id = tx.id();
      const auto it = arrival_times_.find(std::string(id.begin(), id.end()));
      if (it == arrival_times_.end()) continue;  // e.g. genesis carryover
      openloop_round_.latencies.push_back(openloop_clock_ - it->second);
      openloop_round_.latency_shards.push_back(
          ledger::input_shard(tx, *shard_map_));
      arrival_times_.erase(it);
    }
    report.open_loop = openloop_round_;
  }

  // --- Reputation updates (§IV-E scores, §VII-A bonus, §VII-B punish). ---
  for (const auto& [id, delta] : pending_scores_) {
    // Convicted leaders forfeit any score earned this round; the cube
    // root below is their only reputation event (§VII-B).
    if (convicted_leaders_.contains(id)) continue;
    nodes_[id].reputation += delta;
  }
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    const net::NodeId leader = committees_[k].current_leader;
    if (!convicted_leaders_.contains(leader) &&
        committees_[k].intra_result &&
        referee_quorum(committees_[k].intra_acks)) {
      nodes_[leader].reputation += options_.leader_bonus;
    }
  }
  for (net::NodeId id : assign_.referees) {
    if (nodes_[id].is_active(round_)) {
      nodes_[id].reputation += options_.referee_credit;
    }
  }
  for (net::NodeId id : convicted_leaders_) {
    nodes_[id].reputation = punish_leader(nodes_[id].reputation);
  }

  // --- Reward distribution proportional to g(reputation) (Eq. 2). ---
  // Only the enrolled membership shares the fees; standby / retired
  // identities took no part in the round (g(0) = 1 would otherwise let
  // them free-ride on every block).
  std::vector<net::NodeId> earners;
  std::vector<double> reputations;
  earners.reserve(nodes_.size());
  reputations.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (!n.enrolled) continue;
    earners.push_back(n.id);
    reputations.push_back(n.reputation);
  }
  const std::vector<double> rewards =
      distribute_rewards(reputations, total_fees);
  for (std::size_t i = 0; i < earners.size(); ++i) {
    nodes_[earners[i]].reward += rewards[i];
  }

  // --- Traffic / storage accounting by role. ---
  report.traffic_total = net_->stats().grand_total();
  for (const auto& n : nodes_) {
    report.role_counts[n.role] += 1;
    report.traffic_by_role[n.role] += net_->stats().node_total(n.id);
    auto& phases = report.traffic_by_role_phase[n.role];
    phases.resize(static_cast<std::size_t>(net::Phase::kCount));
    for (std::size_t p = 0; p < phases.size(); ++p) {
      phases[p] += net_->stats().at(n.id, static_cast<net::Phase>(p));
    }
    report.storage_by_role[n.role] += storage_proxy(n);
  }
  for (auto& [role, total] : report.storage_by_role) {
    total /= static_cast<double>(report.role_counts[role]);
  }
}

void Engine::compute_selection() {
  // Beacon within C_R: each referee deals a PVSS sharing; the share
  // traffic (|C_R|^2 messages) is injected onto the wire for accounting.
  std::vector<std::uint64_t> dealer_secrets;
  rng::Stream beacon_rng = rng_.fork("beacon").fork(round_);
  for (net::NodeId id : assign_.referees) {
    (void)id;
    dealer_secrets.push_back(beacon_rng.below(crypto::kQ));
  }
  const auto share_payload = net::make_payload(Bytes(24, 0));
  for (net::NodeId a : assign_.referees) {
    for (net::NodeId b : assign_.referees) {
      if (a == b) continue;
      net_->send_shared(a, b, net::Tag::kBeaconShare, share_payload);
    }
  }
  const auto beacon =
      crypto::RandomnessBeacon::run(round_ + 1, dealer_secrets, {}, beacon_rng);
  next_randomness_ = beacon.randomness;

  // Participants: nodes whose PoW registration reached the referees.
  std::vector<net::NodeId> participants(registered_.begin(),
                                        registered_.end());
  if (participants.size() <
      params_.referee_size + params_.m * (1 + params_.lambda)) {
    // Degenerate fallback (tiny tests): every active member participates.
    participants.clear();
    for (const auto& n : nodes_) {
      if (n.enrolled && n.is_active(round_ + 1)) participants.push_back(n.id);
    }
  }

  // Leader selection happens after the reputation-updating phase, so this
  // round's scores (and any pending conviction punishment) are already
  // reflected.
  auto effective_rep = [this](net::NodeId id) {
    if (convicted_leaders_.contains(id)) {
      return punish_leader(nodes_[id].reputation);
    }
    double rep = nodes_[id].reputation;
    auto it = pending_scores_.find(id);
    if (it != pending_scores_.end()) rep += it->second;
    return rep;
  };
  std::optional<rng::Stream> uniform;
  if (!options_.reputation_leader_selection) {
    uniform = rng_.fork("uniform-leaders").fork(round_);
  }
  next_assign_ = draw_assignment(participants, round_ + 1, next_randomness_,
                                 effective_rep, uniform ? &*uniform : nullptr);
  if (obs_ != nullptr) {
    obs_->trace.instant(
        obs::kTrackProtocol, "leaders-selected", "selection", net_->now(),
        {{"round", static_cast<double>(round_ + 1)},
         {"participants", static_cast<double>(participants.size())}});
  }
}

template <typename RepFn>
RoundAssignment Engine::draw_assignment(
    const std::vector<net::NodeId>& participants, std::uint64_t next_round,
    const crypto::Digest& randomness, RepFn&& reputation_of,
    rng::Stream* uniform_leaders) {
  RoundAssignment next;
  next.round = next_round;

  std::set<net::NodeId> taken;

  // Leaders: the m participants with the highest reputation (§IV-F), or a
  // uniform draw for the ablation.
  std::vector<net::NodeId> by_rep = participants;
  if (uniform_leaders == nullptr) {
    std::sort(by_rep.begin(), by_rep.end(),
              [&](net::NodeId a, net::NodeId b) {
      const double ra = reputation_of(a), rb = reputation_of(b);
      if (ra != rb) return ra > rb;
      return nodes_[a].keys.pk.y < nodes_[b].keys.pk.y;
    });
  } else {
    rng::shuffle(by_rep, *uniform_leaders);
  }
  next.committees.resize(params_.m);
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    next.committees[k].id = k;
    next.committees[k].leader = by_rep[k];
    taken.insert(by_rep[k]);
  }

  // Referees: rank by the role-hash lottery H(r+1 || R^r || PK || role)
  // (§IV-F); taking the best `referee_size` implements a difficulty d
  // that yields the target committee size exactly.
  auto rank_by_role = [&](std::string_view role) {
    // Candidate filter stays sequential (reads `taken`); the role-hash
    // lottery itself is a pure SHA-256 per candidate, so it fans out.
    // The final (hash, id) sort is a total order — independent of both
    // insertion and worker order.
    std::vector<net::NodeId> candidates;
    for (net::NodeId id : participants) {
      if (taken.contains(id)) continue;
      candidates.push_back(id);
    }
    std::vector<std::pair<std::uint64_t, net::NodeId>> ranked(
        candidates.size());
    support::parallel_for(
        candidates.size(),
        [&](std::size_t i) {
          const net::NodeId id = candidates[i];
          ranked[i] = {
              role_hash(next_round, randomness, nodes_[id].keys.pk, role),
              id};
        },
        options_.engine_threads);
    std::sort(ranked.begin(), ranked.end());
    return ranked;
  };

  for (const auto& [h, id] : rank_by_role(kRoleReferee)) {
    if (next.referees.size() >= params_.referee_size) break;
    next.referees.push_back(id);
    taken.insert(id);
  }

  // Partial sets: winners placed by H(...) mod m, overflowing to the next
  // committee with room so each set has exactly lambda members.
  {
    std::vector<std::size_t> room(params_.m, params_.lambda);
    for (const auto& [h, id] : rank_by_role(kRolePartial)) {
      bool placed = false;
      std::uint32_t want =
          partial_committee(next_round, randomness, nodes_[id].keys.pk,
                            params_.m);
      for (std::uint32_t off = 0; off < params_.m; ++off) {
        const std::uint32_t k = (want + off) % params_.m;
        if (room[k] > 0) {
          next.committees[k].partial.push_back(id);
          room[k] -= 1;
          taken.insert(id);
          placed = true;
          break;
        }
      }
      if (!placed) break;  // all sets full
    }
  }

  // Everyone else: committee via cryptographic sortition (Alg. 1) with
  // the new randomness; the node re-derives this itself in the next
  // round's configuration phase. The sortition hash chain per node is
  // pure and writes only that node's ticket, so it fans out; the commons
  // push-back runs afterwards in participants order so each committee's
  // commons list keeps the sequential ordering exactly.
  {
    std::vector<net::NodeId> commons;
    for (net::NodeId id : participants) {
      if (taken.contains(id)) continue;
      commons.push_back(id);
    }
    support::parallel_for(
        commons.size(),
        [&](std::size_t i) {
          NodeState& n = nodes_[commons[i]];
          n.ticket = crypto_sort(n.keys, next_round, randomness, params_.m);
        },
        options_.engine_threads);
    for (net::NodeId id : commons) {
      next.committees[nodes_[id].ticket.committee].commons.push_back(id);
    }
  }
  return next;
}

}  // namespace cyc::protocol
