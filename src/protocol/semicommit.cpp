#include "protocol/semicommit.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/serde.hpp"

namespace cyc::protocol {

Bytes encode_member_list(std::vector<crypto::PublicKey> members) {
  std::sort(members.begin(), members.end());
  Writer w;
  w.str("cyc.memberlist");
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const auto& pk : members) w.u64(pk.y);
  return w.take();
}

crypto::Digest semi_commitment(const std::vector<crypto::PublicKey>& members) {
  return crypto::sha256(encode_member_list(members));
}

bool verify_semi_commitment(const crypto::Digest& commitment,
                            const std::vector<crypto::PublicKey>& members) {
  return semi_commitment(members) == commitment;
}

Bytes commitment_payload(std::uint64_t round, std::uint32_t committee,
                         const crypto::Digest& commitment) {
  Writer w;
  w.str("SEMI_COM");
  w.u64(round);
  w.u32(committee);
  w.bytes(crypto::digest_to_bytes(commitment));
  return w.take();
}

Bytes member_list_payload(std::uint64_t round, std::uint32_t committee,
                          const std::vector<crypto::PublicKey>& members) {
  Writer w;
  w.str("MEMBER_LIST");
  w.u64(round);
  w.u32(committee);
  w.bytes(encode_member_list(members));
  return w.take();
}

std::vector<crypto::PublicKey> parse_member_list_payload(BytesView payload) {
  Reader rd(payload);
  if (rd.str() != "MEMBER_LIST") {
    throw std::invalid_argument("parse_member_list_payload: bad tag");
  }
  (void)rd.u64();
  (void)rd.u32();
  const Bytes encoded = rd.bytes();
  Reader inner(encoded);
  if (inner.str() != "cyc.memberlist") {
    throw std::invalid_argument("parse_member_list_payload: bad inner tag");
  }
  const std::uint32_t count = inner.u32();
  std::vector<crypto::PublicKey> members;
  members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    members.push_back(crypto::PublicKey{inner.u64()});
  }
  return members;
}

crypto::Digest parse_commitment_payload(BytesView payload) {
  Reader rd(payload);
  if (rd.str() != "SEMI_COM") {
    throw std::invalid_argument("parse_commitment_payload: bad tag");
  }
  (void)rd.u64();
  (void)rd.u32();
  return crypto::digest_from_bytes(rd.bytes());
}

Bytes CommitmentMismatchWitness::serialize() const {
  Writer w;
  w.bytes(list_msg.serialize());
  w.bytes(commitment_msg.serialize());
  return w.take();
}

CommitmentMismatchWitness CommitmentMismatchWitness::deserialize(BytesView b) {
  Reader rd(b);
  CommitmentMismatchWitness w;
  w.list_msg = crypto::SignedMessage::deserialize(rd.bytes());
  w.commitment_msg = crypto::SignedMessage::deserialize(rd.bytes());
  return w;
}

bool CommitmentMismatchWitness::valid(const crypto::PublicKey& leader) const {
  if (!(list_msg.signer == leader) || !(commitment_msg.signer == leader)) {
    return false;
  }
  if (!list_msg.valid() || !commitment_msg.valid()) return false;
  try {
    const auto members = parse_member_list_payload(list_msg.payload);
    const auto committed = parse_commitment_payload(commitment_msg.payload);
    return semi_commitment(members) != committed;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace cyc::protocol
