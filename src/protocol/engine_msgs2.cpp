// Engine part 3: semi-commitment, voting, cross-shard flows, reputation
// reporting and the recovery procedure (Alg. 6).
#include <algorithm>
#include <unordered_set>

#include "protocol/engine.hpp"
#include "protocol/payloads.hpp"
#include "obs/observer.hpp"
#include "support/serde.hpp"

namespace cyc::protocol {

namespace {
constexpr std::uint64_t sn_intra(std::uint32_t attempt) { return 100 + attempt; }
constexpr std::uint64_t sn_score(std::uint32_t attempt) { return 150 + attempt; }
std::uint64_t sn_cross_out(std::uint32_t dest, std::uint32_t attempt) {
  return 1000 + static_cast<std::uint64_t>(dest) * 16 + attempt;
}
std::uint64_t sn_cross_in(std::uint32_t origin, std::uint32_t attempt) {
  return 100000 + static_cast<std::uint64_t>(origin) * 16 + attempt;
}
std::uint64_t sn_semi_check(std::uint32_t k) { return 1000 + k; }
std::uint64_t sn_reselect(std::uint32_t k, std::uint32_t attempt) {
  return 5000 + static_cast<std::uint64_t>(k) * 16 + attempt;
}

crypto::Digest vlist_digest(const std::map<net::NodeId, VoteVector>& votes) {
  Writer w;
  for (const auto& [id, vote] : votes) {
    w.u32(id);
    w.bytes(wire::encode_vote_vec(vote));
  }
  return crypto::sha256(w.out());
}
}  // namespace

// ---------------------------------------------------------------------------
// Semi-commitment exchange (Alg. 4)
// ---------------------------------------------------------------------------

Bytes Engine::build_semicommit(NodeState& leader, std::uint32_t k) {
  if (!leader.is_active(round_)) return {};
  std::vector<crypto::PublicKey> list = leader.member_list;

  crypto::Digest commitment = semi_commitment(list);
  if (leader.misbehaves(round_) &&
      leader.behavior == Behavior::kCommitForger && list.size() > 1) {
    // Commit to a forged list (one member dropped): binding (Lemma 1)
    // guarantees H(S) != H(S') so every honest checker sees the mismatch.
    std::vector<crypto::PublicKey> forged(list.begin(), list.end() - 1);
    commitment = semi_commitment(forged);
  }

  wire::SemiCommitMsg msg;
  msg.committee = k;
  msg.commitment_msg = crypto::make_signed(
      leader.keys, commitment_payload(round_, k, commitment));
  msg.list_msg =
      crypto::make_signed(leader.keys, member_list_payload(round_, k, list));
  return msg.serialize();
}

void Engine::emit_semicommit(NodeState& leader, std::uint32_t k,
                             const Bytes& wire_bytes) {
  const auto payload = net::make_payload(wire_bytes);
  for (net::NodeId rm : assign_.referees) {
    net_->send_shared(leader.id, rm, net::Tag::kSemiCommit, payload);
  }
  for (net::NodeId pm : assign_.committees[k].partial) {
    if (pm == leader.id) continue;
    net_->send_shared(leader.id, pm, net::Tag::kSemiCommit, payload);
  }
}

void Engine::leader_send_semicommit(NodeState& leader, std::uint32_t k) {
  const Bytes wire_bytes = build_semicommit(leader, k);
  if (wire_bytes.empty()) return;
  emit_semicommit(leader, k, wire_bytes);
}

void Engine::on_semicommit(NodeState& self, const net::Message& msg,
                           net::Time now) {
  const auto sc = wire::SemiCommitMsg::deserialize(msg.payload());
  const std::uint32_t k = sc.committee;
  if (k >= params_.m) return;
  const crypto::PublicKey leader_pk = nodes_[committees_[k].current_leader].keys.pk;
  if (!(sc.commitment_msg.signer == leader_pk) || !sc.commitment_msg.valid() ||
      !(sc.list_msg.signer == leader_pk) || !sc.list_msg.valid()) {
    return;
  }
  const auto members = parse_member_list_payload(sc.list_msg.payload);
  const auto commitment = parse_commitment_payload(sc.commitment_msg.payload);

  if (self.role == Role::kReferee) {
    // i) all members registered; ii) the commitment is valid.
    for (const auto& pk : members) {
      if (!pk_index_.contains(pk.y)) return;
    }
    if (!verify_semi_commitment(commitment, members)) {
      // Forged commitment: the leader signed both halves of the
      // contradiction, so this is a transferable witness (§V-D).
      // Only the referee designated to drive the re-selection instance
      // convicts (every honest referee sees the same contradiction).
      const std::uint64_t sn = sn_reselect(k, committees_[k].attempt);
      if (options_.recovery_enabled && !committees_[k].leader_convicted &&
          designated_referee(sn) == self.id) {
        CommitmentMismatchWitness witness{sc.list_msg, sc.commitment_msg};
        Accusation accusation;
        accusation.round = round_;
        accusation.committee = k;
        accusation.accused = leader_pk;
        accusation.accuser = self.keys.pk;
        accusation.kind = WitnessKind::kCommitMismatch;
        accusation.witness = witness.serialize();
        referee_convict(self, accusation, now, {});
      }
      return;
    }
    self.commitments[k] = commitment;
    self.lists[k] = members;
    // "They transmit the set of valid semi-commitments to all key
    // members" (Alg. 4): every referee relays, so one crashed referee
    // cannot starve the other committees of this commitment. This is
    // the O(m^2) referee cost of Table II.
    wire::SemiCommitAck ack;
    ack.committee = k;
    ack.commitment = commitment;
    ack.members = members;
    const auto ack_payload = net::make_payload(ack.serialize());
    for (std::uint32_t j = 0; j < params_.m; ++j) {
      for (net::NodeId km : assign_.committees[j].key_members()) {
        net_->send_shared(self.id, km, net::Tag::kSemiCommitAck, ack_payload);
      }
    }
    // The designated referee additionally drives the C_R agreement on
    // this commitment (each referee "is regarded as the leader", §IV-B).
    const std::uint64_t sn = sn_semi_check(k);
    if (designated_referee(sn) == self.id) {
      Writer w;
      w.str("SEMI_CHECK");
      w.u32(k);
      w.bytes(crypto::digest_to_bytes(commitment));
      leader_start_instance(self, params_.m, sn, w.take());
    }
    return;
  }

  if (self.role == Role::kPartial && self.committee == static_cast<std::int64_t>(k)) {
    self.leader_list_msg = sc.list_msg;
    self.leader_commit_msg = sc.commitment_msg;
    self.leader_sent_commitment = true;
    // Verify: the commitment matches the list, and the list S is no
    // smaller than the set we locally maintain (Alg. 4 step 3).
    bool mismatch = !verify_semi_commitment(commitment, members);
    if (!mismatch) {
      std::set<std::uint64_t> claimed;
      for (const auto& pk : members) claimed.insert(pk.y);
      for (const auto& pk : self.member_list) {
        if (!claimed.contains(pk.y)) {
          mismatch = true;  // leader omitted a registered member
          break;
        }
      }
    }
    if (mismatch && options_.recovery_enabled && !self.misbehaves(round_) &&
        !self.accused_this_round && !committees_[k].leader_convicted) {
      CommitmentMismatchWitness witness{sc.list_msg, sc.commitment_msg};
      begin_accusation(self, k, WitnessKind::kCommitMismatch,
                       witness.serialize(), now);
    }
  }
}

void Engine::on_semicommit_ack(NodeState& self, const net::Message& msg,
                               net::Time now) {
  const auto ack = wire::SemiCommitAck::deserialize(msg.payload());
  if (ack.committee >= params_.m) return;
  self.commitments[ack.committee] = ack.commitment;
  self.lists[ack.committee] = ack.members;
  (void)now;
}

// ---------------------------------------------------------------------------
// Voting (Alg. 5 member side) and tallies
// ---------------------------------------------------------------------------

VoteVector Engine::compute_vote(NodeState& self,
                                const std::vector<ledger::Transaction>& txs) {
  VoteVector vote(txs.size(), Vote::kUnknown);
  if (self.misbehaves(round_)) {
    switch (self.behavior) {
      case Behavior::kRandomVoter: {
        rng::Stream vote_rng =
            rng_.fork("random-voter").fork(self.id).fork(round_);
        for (auto& v : vote) {
          v = static_cast<Vote>(static_cast<int>(vote_rng.below(3)) - 1);
        }
        return vote;
      }
      case Behavior::kLazyVoter:
        return vote;  // all Unknown
      case Behavior::kInverseVoter:
      case Behavior::kFramer: {
        for (std::size_t i = 0; i < txs.size(); ++i) {
          vote[i] = ledger::V(txs[i], self.utxo) ? Vote::kNo : Vote::kYes;
        }
        return vote;
      }
      default:
        break;  // leader-only misbehaviours vote honestly as members
    }
  }
  // Honest: intra-list double spends are cheap to spot (no crypto), so
  // every honest member flags the later of two conflicting transactions
  // regardless of capacity — "at least one of them will be regarded as
  // illegal" (§VIII-B).
  std::vector<bool> conflicted(txs.size(), false);
  {
    std::unordered_set<ledger::OutPoint, ledger::OutPointHash> seen;
    for (std::size_t i = 0; i < txs.size(); ++i) {
      for (const auto& in : txs[i].inputs) {
        if (!seen.insert(in).second) conflicted[i] = true;
      }
    }
  }
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (conflicted[i]) vote[i] = Vote::kNo;
  }
  // Judge up to `capacity` transactions within the time limit, vote
  // Unknown on the rest (§IV-C step 3). Each node picks its own subset
  // of the list to verify, so the committee's aggregate coverage spreads
  // over the whole list rather than piling onto a prefix.
  const std::size_t judged =
      std::min<std::size_t>(txs.size(), self.capacity);
  std::vector<std::size_t> order(txs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng::Stream pick = rng_.fork("judge-order").fork(self.id).fork(round_);
  rng::shuffle(order, pick);
  for (std::size_t j = 0; j < judged; ++j) {
    const std::size_t i = order[j];
    if (conflicted[i]) continue;  // already voted No above
    vote[i] = ledger::V(txs[i], self.utxo) ? Vote::kYes : Vote::kNo;
  }
  return vote;
}

VoteVector Engine::tally(const std::map<net::NodeId, VoteVector>& votes,
                         std::size_t dimension,
                         std::size_t committee_size) const {
  VoteVector decision(dimension, Vote::kNo);
  for (std::size_t k = 0; k < dimension; ++k) {
    std::size_t yes = 0;
    for (const auto& [id, vote] : votes) {
      if (k < vote.size() && vote[k] == Vote::kYes) ++yes;
    }
    decision[k] = (yes * 2 > committee_size) ? Vote::kYes : Vote::kNo;
  }
  return decision;
}

Bytes Engine::build_intra_txlist(std::uint32_t k) {
  NodeState& leader = nodes_[committees_[k].current_leader];
  if (!leader.is_active(round_)) return {};
  if (leader.misbehaves(round_) && leader.behavior == Behavior::kCrash) {
    return {};
  }
  wire::TxListMsg msg;
  msg.committee = k;
  msg.attempt = committees_[k].attempt;
  msg.cross = false;
  msg.signed_list = crypto::make_signed(
      leader.keys, wire::encode_tx_vec(committees_[k].intra_list));
  return msg.serialize();
}

void Engine::emit_intra_txlist(std::uint32_t k, const Bytes& wire_bytes,
                               net::Time now) {
  NodeState& leader = nodes_[committees_[k].current_leader];
  const auto& txs = committees_[k].intra_list;
  net_->multicast(leader.id, committee_members(k), net::Tag::kTxList,
                  wire_bytes);
  leader.votes.clear();
  // The leader votes too (it is a member of the committee). compute_vote
  // runs ledger::V, whose verdict-cache hits feed traced metrics — this
  // is why voting lives in the emit stage, on the engine thread.
  leader.votes[leader.id] = compute_vote(leader, txs);

  // Collection window (the paper suggests 6 Delta): tally, agree, report.
  const std::uint32_t attempt = committees_[k].attempt;
  net_->schedule(now + 8.0 * params_.delays.delta, [this, k, attempt](net::Time) {
    if (committees_[k].attempt != attempt) return;  // superseded by recovery
    NodeState& leader = nodes_[committees_[k].current_leader];
    if (!leader.is_active(round_)) return;
    leader_flush_votes(leader, /*cross=*/false);
    const auto& txs = committees_[k].intra_list;
    const std::size_t committee_size = assign_.committees[k].size();
    leader.intra_decision = tally(leader.votes, txs.size(), committee_size);

    wire::IntraDecision decision;
    decision.committee = k;
    decision.attempt = attempt;
    for (std::size_t i = 0; i < txs.size(); ++i) {
      if (leader.intra_decision[i] == Vote::kYes) {
        decision.txdec_set.push_back(txs[i]);
      }
    }
    decision.vlist_digest = vlist_digest(leader.votes);
    committees_[k].pending_intra_payload = decision.serialize();
    leader_start_instance(leader, k, sn_intra(attempt),
                          committees_[k].pending_intra_payload);
  });
}

void Engine::leader_start_intra(std::uint32_t k, net::Time now) {
  const Bytes wire_bytes = build_intra_txlist(k);
  if (wire_bytes.empty()) return;
  emit_intra_txlist(k, wire_bytes, now);
}

void Engine::on_txlist(NodeState& self, const net::Message& msg) {
  const auto list = wire::TxListMsg::deserialize(msg.payload());
  if (self.committee != static_cast<std::int64_t>(list.committee)) return;
  const crypto::PublicKey leader_pk =
      nodes_[committees_[list.committee].current_leader].keys.pk;
  if (!(list.signed_list.signer == leader_pk) || !list.signed_list.valid()) {
    return;
  }
  self.leader_sent_txlist = true;
  if (self.id == committees_[list.committee].current_leader) return;

  const auto txs = wire::decode_tx_vec(list.signed_list.payload);
  wire::VoteMsg reply;
  reply.committee = list.committee;
  reply.attempt = list.attempt;
  reply.cross = list.cross;
  reply.signed_vote =
      crypto::make_signed(self.keys, wire::encode_vote_vec(compute_vote(self, txs)));
  net_->send(self.id, committees_[list.committee].current_leader,
             net::Tag::kVote, reply.serialize());
}

void Engine::on_vote(NodeState& self, const net::Message& msg) {
  auto vote = wire::VoteMsg::deserialize(msg.payload());
  if (self.id != committees_[vote.committee].current_leader) return;
  if (vote.attempt != committees_[vote.committee].attempt) return;
  const net::NodeId voter = node_of_pk(vote.signed_vote.signer);
  if (voter == net::kNoNode) return;
  if (!assign_.committees[vote.committee].contains(voter)) return;
  // Park the signed vote; signatures are batch-verified at tally time
  // (leader_flush_votes) instead of one Schnorr check per arrival.
  auto& pending = vote.cross ? self.pending_cross_votes : self.pending_votes;
  pending[voter].push_back(std::move(vote.signed_vote));
}

void Engine::leader_flush_votes(NodeState& leader, bool cross) {
  auto& pending = cross ? leader.pending_cross_votes : leader.pending_votes;
  if (pending.empty()) return;
  std::vector<const crypto::SignedMessage*> batch;
  for (const auto& [voter, arrivals] : pending) {
    for (const auto& sm : arrivals) batch.push_back(&sm);
  }
  // One aggregate check for the common all-valid case; either way the
  // per-message verdicts land in the cache, so the valid() calls below
  // are hits.
  crypto::verify_batch(batch);
  if (obs_ != nullptr) {
    obs_->metrics.counter("engine.votes.flushed").add(batch.size());
  }
  auto& sink = cross ? leader.cross_votes : leader.votes;
  for (const auto& [voter, arrivals] : pending) {
    // Last valid arrival wins — identical to the old scheme where each
    // arriving vote was verified immediately and valid ones overwrote.
    for (const auto& sm : arrivals) {
      if (sm.valid()) sink[voter] = wire::decode_vote_vec(sm.payload);
    }
  }
  pending.clear();
}

// ---------------------------------------------------------------------------
// Inter-committee consensus (§IV-D)
// ---------------------------------------------------------------------------

Bytes Engine::build_cross_txlist(std::uint32_t k) {
  NodeState& leader = nodes_[committees_[k].current_leader];
  if (!leader.is_active(round_)) return {};
  if (leader.misbehaves(round_) && leader.behavior == Behavior::kCrash) {
    return {};
  }
  if (committees_[k].cross_list.empty()) return {};
  wire::TxListMsg msg;
  msg.committee = k;
  msg.attempt = committees_[k].attempt;
  msg.cross = true;
  msg.signed_list = crypto::make_signed(
      leader.keys, wire::encode_tx_vec(committees_[k].cross_list));
  return msg.serialize();
}

void Engine::emit_cross_txlist(std::uint32_t k, const Bytes& wire_bytes,
                               net::Time now) {
  NodeState& leader = nodes_[committees_[k].current_leader];
  const auto& txs = committees_[k].cross_list;
  net_->multicast(leader.id, committee_members(k), net::Tag::kTxList,
                  wire_bytes);
  leader.cross_votes.clear();
  leader.cross_votes[leader.id] = compute_vote(leader, txs);

  const std::uint32_t attempt = committees_[k].attempt;
  net_->schedule(now + 8.0 * params_.delays.delta, [this, k, attempt](net::Time) {
    if (committees_[k].attempt != attempt) return;
    NodeState& leader = nodes_[committees_[k].current_leader];
    if (!leader.is_active(round_)) return;
    leader_flush_votes(leader, /*cross=*/true);
    const auto& txs = committees_[k].cross_list;
    const std::size_t committee_size = assign_.committees[k].size();
    leader.cross_decision = tally(leader.cross_votes, txs.size(), committee_size);

    // Partition the accepted cross transactions by destination shard and
    // run one Alg. 3 instance per destination.
    std::map<std::uint32_t, std::vector<ledger::Transaction>> by_dest;
    for (std::size_t i = 0; i < txs.size(); ++i) {
      if (leader.cross_decision[i] != Vote::kYes) continue;
      for (std::uint32_t shard : ledger::output_shards(txs[i], *shard_map_)) {
        if (shard != k) {
          by_dest[shard].push_back(txs[i]);
          break;  // route via the first foreign shard
        }
      }
    }
    for (auto& [dest, dest_txs] : by_dest) {
      wire::CrossTxListMsg request;
      request.origin = k;
      request.dest = dest;
      request.attempt = attempt;
      request.txs = dest_txs;
      request.origin_members = leader.member_list;
      // The origin cert is attached in on_cert once Alg. 3 completes;
      // store the request now.
      committees_[k].pending_cross_out[dest] = request.serialize();
      leader_start_instance(leader, k, sn_cross_out(dest, attempt),
                            request.agreed_payload());
    }
  });
}

void Engine::leader_start_cross(std::uint32_t k, net::Time now) {
  if (options_.extension_precommunication) {
    // §VIII-A: enquire the destination leaders about candidate validity
    // before packaging, then drop transactions the pre-check rejects —
    // invalid traffic never reaches the two-committee consensus. The
    // pre-check both sends and runs ledger::V, so this path stays fully
    // sequential (phase_inter never fans it out).
    NodeState& leader = nodes_[committees_[k].current_leader];
    if (!leader.is_active(round_)) return;
    if (leader.misbehaves(round_) && leader.behavior == Behavior::kCrash) {
      return;
    }
    if (committees_[k].cross_list.empty()) return;
    std::set<std::uint32_t> dests;
    for (const auto& tx : committees_[k].cross_list) {
      for (std::uint32_t shard : ledger::output_shards(tx, *shard_map_)) {
        if (shard != k) dests.insert(shard);
      }
    }
    for (std::uint32_t dest : dests) {
      const net::NodeId peer = committees_[dest].current_leader;
      net_->send(leader.id, peer, net::Tag::kPreCommQuery, Bytes(48, 0));
      net_->send(peer, leader.id, net::Tag::kPreCommReply, Bytes(16, 0));
    }
    std::vector<ledger::Transaction> filtered;
    for (const auto& tx : committees_[k].cross_list) {
      if (ledger::V(tx, leader.utxo)) filtered.push_back(tx);
    }
    committees_[k].cross_list = std::move(filtered);
  }
  const Bytes wire_bytes = build_cross_txlist(k);
  if (wire_bytes.empty()) return;
  emit_cross_txlist(k, wire_bytes, now);
}

void Engine::leader_handle_cross_in(NodeState& leader, const Bytes& request,
                                    net::Time now) {
  const auto req = wire::CrossTxListMsg::deserialize(request);
  const std::uint32_t k = static_cast<std::uint32_t>(leader.committee);
  if (req.dest != k) return;
  if (leader.cross_done.contains(req.origin) ||
      leader.cross_in.contains(req.origin)) {
    return;
  }
  // Verify the origin committee's certificate against its
  // semi-commitment: a faulty origin leader cannot fabricate a consensus
  // result (§IV-D).
  auto cit = leader.commitments.find(req.origin);
  if (cit == leader.commitments.end()) return;
  if (!verify_semi_commitment(cit->second, req.origin_members)) return;
  try {
    const auto cert = consensus::QuorumCert::deserialize(req.origin_cert);
    wire::CrossTxListMsg canonical = req;
    if (cert.digest != crypto::sha256(canonical.agreed_payload())) return;
    if (!cert.verify(req.origin_members, req.origin_members.size())) return;
  } catch (const std::exception&) {
    return;
  }

  leader.cross_in[req.origin] = request;
  leader.cross_in_at[req.origin] = now;

  // Reach committee agreement on the acceptance (the C_j side of §IV-D).
  wire::CrossResultMsg result;
  result.request = req;
  leader_start_instance(leader, k, sn_cross_in(req.origin, req.attempt),
                        result.acceptance_payload());
}

void Engine::on_cross_txlist(NodeState& self, const net::Message& msg,
                             net::Time now) {
  if (self.committee < 0) return;
  const std::uint32_t k = static_cast<std::uint32_t>(self.committee);
  if (self.id != committees_[k].current_leader) return;
  if (self.misbehaves(round_) && self.behavior == Behavior::kConcealer) {
    return;  // conceals the request from its committee (Lemma 6 scenario)
  }
  if (self.misbehaves(round_) && self.behavior == Behavior::kImitator) {
    // The "imitate" half of Lemma 6: fabricate an acceptance without
    // running committee consensus. The forged certificate cannot carry
    // >C/2 member signatures, so origin leader and referees reject it;
    // the partial set's 2*Gamma rule then evicts the imitator.
    const auto req = wire::CrossTxListMsg::deserialize(msg.payload());
    wire::CrossResultMsg forged;
    forged.request = req;
    consensus::QuorumCert fake;
    fake.id = {round_, 0};
    fake.digest = crypto::sha256(forged.acceptance_payload());
    fake.confirms.push_back(
        crypto::make_signed(self.keys, bytes_of("not-a-confirm")));
    forged.dest_cert = fake.serialize();
    forged.dest_members = committee_pks(k);
    const auto payload = net::make_payload(forged.serialize());
    net_->send_shared(self.id, committees_[req.origin].current_leader,
                      net::Tag::kCrossResult, payload);
    for (net::NodeId rm : assign_.referees) {
      net_->send_shared(self.id, rm, net::Tag::kCrossResult, payload);
    }
    return;
  }
  leader_handle_cross_in(self, msg.payload(), now);
}

void Engine::on_cross_hint(NodeState& self, const net::Message& msg,
                           net::Time now) {
  if (self.role != Role::kPartial || self.committee < 0) return;
  const auto req = wire::CrossTxListMsg::deserialize(msg.payload());
  const std::uint32_t k = static_cast<std::uint32_t>(self.committee);
  if (req.dest != k) return;
  if (self.cross_hints.contains(req.origin)) return;
  self.cross_hints[req.origin] = msg.payload();
  self.cross_hint_at[req.origin] = now;

  // Lemma 7: if after 2*Gamma the leader has not engaged the consensus on
  // this origin's list, forward it and (if still silent) accuse.
  const std::uint32_t origin = req.origin;
  net_->schedule(now + 2.0 * params_.delays.gamma,
                 [this, id = self.id, k, origin](net::Time later) {
    NodeState& pm = nodes_[id];
    if (!pm.is_active(round_) || pm.misbehaves(round_)) return;
    if (pm.cross_seen_propose.contains(origin)) return;  // leader engaged
    if (committees_[k].leader_convicted) return;
    // First forward the set to the leader (an honest-but-slow leader can
    // still proceed)...
    net_->send(id, committees_[k].current_leader, net::Tag::kCrossTxList,
               pm.cross_hints[origin]);
    // ...then check again after another 2*Gamma and accuse if ignored.
    net_->schedule(later + 2.0 * params_.delays.gamma,
                   [this, id, k, origin](net::Time final_time) {
      NodeState& pm = nodes_[id];
      if (!pm.is_active(round_) || pm.misbehaves(round_)) return;
      if (pm.cross_seen_propose.contains(origin)) return;
      if (committees_[k].leader_convicted || pm.accused_this_round) return;
      if (!options_.recovery_enabled) return;
      begin_accusation(pm, k, WitnessKind::kTimeout, pm.cross_hints[origin],
                       final_time);
    });
  });
}

void Engine::on_cross_result(NodeState& self, const net::Message& msg) {
  // Referees record the doubly-certified cross list for the block.
  if (self.role != Role::kReferee) return;
  const auto result = wire::CrossResultMsg::deserialize(msg.payload());
  const std::uint32_t dest = result.request.dest;
  const std::uint32_t origin = result.request.origin;
  if (dest >= params_.m || origin >= params_.m) return;
  if (committees_[dest].cross_acks[origin].contains(self.id)) return;

  // Check both certificates against both semi-commitments.
  auto oc = self.commitments.find(origin);
  auto dc = self.commitments.find(dest);
  if (oc == self.commitments.end() || dc == self.commitments.end()) return;
  if (!verify_semi_commitment(oc->second, result.request.origin_members)) return;
  if (!verify_semi_commitment(dc->second, result.dest_members)) return;
  try {
    wire::CrossTxListMsg canonical = result.request;
    const auto origin_cert =
        consensus::QuorumCert::deserialize(result.request.origin_cert);
    if (origin_cert.digest != crypto::sha256(canonical.agreed_payload())) return;
    if (!origin_cert.verify(result.request.origin_members,
                            result.request.origin_members.size())) {
      return;
    }
    const auto dest_cert = consensus::QuorumCert::deserialize(result.dest_cert);
    wire::CrossResultMsg canonical_result;
    canonical_result.request = result.request;
    if (dest_cert.digest !=
        crypto::sha256(canonical_result.acceptance_payload())) {
      return;
    }
    if (!dest_cert.verify(result.dest_members, result.dest_members.size())) {
      return;
    }
  } catch (const std::exception&) {
    return;
  }
  auto stored = committees_[dest].cross_results.find(origin);
  if (stored == committees_[dest].cross_results.end()) {
    committees_[dest].cross_results[origin] = msg.payload();
  } else if (stored->second != msg.payload()) {
    return;  // conflicting certified payload: never ack a mismatch
  }
  committees_[dest].cross_acks[origin].insert(self.id);
}

// ---------------------------------------------------------------------------
// Results reaching the referee committee
// ---------------------------------------------------------------------------

void Engine::on_intra_result(NodeState& self, const net::Message& msg) {
  // Every referee verifies the certificate independently and acks the
  // stored bytes; the result is only *used* once a majority acked (the
  // quorum gate in phase_block / finalize_round). A duplicate delivery
  // cannot double-ack (acks are keyed by referee id), and a partitioned
  // minority of C_R can never push a result into the block alone.
  if (self.role != Role::kReferee) return;
  const auto result = wire::CertifiedResult::deserialize(msg.payload());
  const auto decision = wire::IntraDecision::deserialize(result.payload);
  if (decision.committee >= params_.m) return;
  auto& committee = committees_[decision.committee];
  if (committee.intra_acks.contains(self.id)) return;
  auto lit = self.lists.find(decision.committee);
  if (lit == self.lists.end()) return;
  try {
    const auto cert = consensus::QuorumCert::deserialize(result.cert);
    if (cert.digest != crypto::sha256(result.payload)) return;
    if (!cert.verify(lit->second, lit->second.size())) return;
  } catch (const std::exception&) {
    return;
  }
  if (!committee.intra_result) {
    committee.intra_result = result.payload;
  } else if (*committee.intra_result != result.payload) {
    return;  // conflicting certified payload: never ack a mismatch
  }
  committee.intra_acks.insert(self.id);
}

void Engine::on_score_report(NodeState& self, const net::Message& msg) {
  if (self.role != Role::kReferee) return;
  const auto result = wire::CertifiedResult::deserialize(msg.payload());
  const auto scores = wire::ScoreListMsg::deserialize(result.payload);
  if (scores.committee >= params_.m) return;
  auto& committee = committees_[scores.committee];
  if (committee.score_acks.contains(self.id)) return;
  auto lit = self.lists.find(scores.committee);
  if (lit == self.lists.end()) return;
  try {
    const auto cert = consensus::QuorumCert::deserialize(result.cert);
    if (cert.digest != crypto::sha256(result.payload)) return;
    if (!cert.verify(lit->second, lit->second.size())) return;
  } catch (const std::exception&) {
    return;
  }
  if (!committee.score_report) {
    committee.score_report = result.payload;
  } else if (*committee.score_report != result.payload) {
    return;
  }
  committee.score_acks.insert(self.id);
  // Scores are applied at the start of the selection phase, once the
  // report has gathered a referee majority — not here.
}

// ---------------------------------------------------------------------------
// Crash-recovery catch-up (restart())
// ---------------------------------------------------------------------------

void Engine::on_catchup_request(NodeState& self, const net::Message& msg) {
  // Only active referee seats serve state; anyone else ignores the ask.
  if (self.role != Role::kReferee || !self.is_active(round_)) return;
  net::NodeId who = net::kNoNode;
  try {
    Reader r(msg.payload());
    who = r.u32();
  } catch (const std::exception&) {
    return;
  }
  if (who >= nodes_.size() || who != msg.from) return;
  crypto::Digest digest = catchup_state_digest(chain_.tip().hash(),
                                               shard_state_);
  if (self.misbehaves(round_)) {
    // A corrupted referee vouches for a forged state; the restarted
    // node's majority tally must reject it.
    digest = crypto::sha256_concat(
        {bytes_of("cyc.catchup.forged"), be64(self.id)});
  }
  Writer w;
  w.bytes(crypto::digest_to_bytes(digest));
  net_->send(self.id, who, net::Tag::kCatchUpReply, w.take());
}

void Engine::on_catchup_reply(NodeState& self, const net::Message& msg) {
  if (!self.catching_up || self.catchup_adopted) return;
  // Only current referee seats may vouch for state.
  if (std::find(assign_.referees.begin(), assign_.referees.end(), msg.from) ==
      assign_.referees.end()) {
    return;
  }
  Bytes digest_bytes;
  try {
    Reader r(msg.payload());
    digest_bytes = r.bytes();
  } catch (const std::exception&) {
    return;
  }
  if (digest_bytes.size() != self.adopted_digest.size()) return;
  // Tally by digest, keyed by distinct signer: duplicated deliveries of
  // one referee's reply can never fake a majority.
  auto& backers =
      self.catchup_tally[std::string(digest_bytes.begin(), digest_bytes.end())];
  backers.insert(msg.from);
  if (backers.size() * 2 <= assign_.referees.size()) return;
  self.catchup_adopted = true;
  std::copy(digest_bytes.begin(), digest_bytes.end(),
            self.adopted_digest.begin());
  CatchUpRecord record;
  record.node = self.id;
  record.round = round_;
  record.attempt = self.catchup_attempts;
  record.confirms = backers.size();
  record.success = true;
  record.adopted_digest = self.adopted_digest;
  catchup_log_.push_back(record);
  if (obs_ != nullptr) {
    obs_->trace.instant(obs::kTrackProtocol, "catchup-adopted", "recovery",
                        net_->now(),
                        {{"node", static_cast<double>(self.id)},
                         {"confirms", static_cast<double>(record.confirms)}});
    obs_->metrics.counter("engine.catchup.adopted").add();
  }
}

// ---------------------------------------------------------------------------
// Reputation (§IV-E)
// ---------------------------------------------------------------------------

void Engine::leader_send_scores(std::uint32_t k, net::Time now) {
  NodeState& leader = nodes_[committees_[k].current_leader];
  if (!leader.is_active(round_)) return;
  if (leader.misbehaves(round_) && leader.behavior == Behavior::kCrash) return;

  // Late votes (arrived after the tally deadline) still count for scores.
  leader_flush_votes(leader, /*cross=*/false);
  leader_flush_votes(leader, /*cross=*/true);

  const std::size_t intra_dim = committees_[k].intra_list.size();
  const std::size_t cross_dim = committees_[k].cross_list.size();
  VoteVector decision = leader.intra_decision;
  decision.resize(intra_dim, Vote::kNo);
  VoteVector cross_decision = leader.cross_decision;
  cross_decision.resize(cross_dim, Vote::kNo);
  decision.insert(decision.end(), cross_decision.begin(), cross_decision.end());

  wire::ScoreListMsg scores;
  scores.committee = k;
  for (net::NodeId id : committee_members(k)) {
    if (id == leader.id) continue;
    VoteVector vote(intra_dim, Vote::kUnknown);
    auto vit = leader.votes.find(id);
    if (vit != leader.votes.end()) vote = vit->second;
    vote.resize(intra_dim, Vote::kUnknown);
    VoteVector cross_vote(cross_dim, Vote::kUnknown);
    auto cit = leader.cross_votes.find(id);
    if (cit != leader.cross_votes.end()) cross_vote = cit->second;
    cross_vote.resize(cross_dim, Vote::kUnknown);
    vote.insert(vote.end(), cross_vote.begin(), cross_vote.end());
    scores.nodes.push_back(id);
    scores.scores.push_back(decision.empty() ? 0.0
                                             : cosine_score(vote, decision));
  }
  committees_[k].pending_score_payload = scores.serialize();
  leader_start_instance(leader, k, sn_score(committees_[k].attempt),
                        committees_[k].pending_score_payload);
  (void)now;
}

// ---------------------------------------------------------------------------
// Recovery: accusation -> impeachment -> prosecution -> re-selection
// ---------------------------------------------------------------------------

void Engine::begin_accusation(NodeState& accuser, std::uint32_t k,
                              WitnessKind kind, Bytes witness, net::Time now) {
  if (!options_.recovery_enabled) return;
  if (accuser.accused_this_round) return;
  if (committees_[k].recoveries >= options_.max_recoveries_per_committee) {
    return;
  }
  accuser.accused_this_round = true;
  if (obs_ != nullptr) {
    obs_->trace.instant(obs::kTrackCommitteeBase + k, "accusation", "recovery",
                        now,
                        {{"accuser", static_cast<double>(accuser.id)},
                         {"kind", static_cast<double>(
                                      static_cast<std::uint8_t>(kind))}});
    obs_->metrics.counter("engine.accusations").add();
  }

  Accusation accusation;
  accusation.round = round_;
  accusation.committee = k;
  accusation.accused = nodes_[committees_[k].current_leader].keys.pk;
  accusation.accuser = accuser.keys.pk;
  accusation.kind = kind;
  accusation.witness = std::move(witness);
  accuser.pending_accusation = accusation;
  accuser.impeach_approvals.clear();
  // The accuser approves its own impeachment.
  accuser.impeach_approvals.push_back(crypto::make_signed(
      accuser.keys, ImpeachmentCert::approval_payload(accusation)));

  net_->multicast(accuser.id, committee_members(k), net::Tag::kAccuse,
                  accusation.serialize());
  (void)now;
}

void Engine::on_accuse(NodeState& self, const net::Message& msg,
                       net::Time now) {
  const auto accusation = Accusation::deserialize(msg.payload());
  if (self.committee != static_cast<std::int64_t>(accusation.committee)) return;
  const net::NodeId accuser_id = node_of_pk(accusation.accuser);
  if (accuser_id == net::kNoNode || accuser_id == self.id) return;

  bool approve = false;
  if (self.misbehaves(round_)) {
    // Colluding nodes back their co-conspirators' accusations and stay
    // silent on honest ones.
    approve = nodes_[accuser_id].misbehaves(round_);
  } else if (accusation.witness_valid()) {
    approve = true;  // transferable cryptographic witness
  } else if (accusation.kind == WitnessKind::kTimeout) {
    if (accusation.witness.empty()) {
      // Leader silence: approve only if we observed it ourselves — the
      // TXList broadcast is the first leader action every member sees,
      // so corroboration is only possible once the intra phase started.
      approve = current_phase_ >= net::Phase::kIntraConsensus &&
                !self.leader_sent_txlist;
    } else {
      // Cross-shard concealment: the witness is the certified hint; we
      // approve when the origin certificate checks out and our leader
      // never engaged the consensus for that origin. Key members can
      // additionally bind the member list to the origin's
      // semi-commitment; common members (who never received the acks)
      // rely on signature verification, and the referee re-checks the
      // binding at prosecution time.
      try {
        const auto req = wire::CrossTxListMsg::deserialize(accusation.witness);
        auto cit = self.commitments.find(req.origin);
        if (cit != self.commitments.end() &&
            !verify_semi_commitment(cit->second, req.origin_members)) {
          return;  // provably fabricated list
        }
        wire::CrossTxListMsg canonical = req;
        const auto cert = consensus::QuorumCert::deserialize(req.origin_cert);
        const bool cert_ok =
            cert.digest == crypto::sha256(canonical.agreed_payload()) &&
            cert.verify(req.origin_members, req.origin_members.size());
        approve = cert_ok && !self.cross_seen_propose.contains(req.origin);
      } catch (const std::exception&) {
        approve = false;
      }
    }
  }
  if (!approve) return;
  crypto::SignedMessage approval = crypto::make_signed(
      self.keys, ImpeachmentCert::approval_payload(accusation));
  net_->send(self.id, accuser_id, net::Tag::kImpeachVote,
             approval.serialize());
  (void)now;
}

void Engine::on_impeach_vote(NodeState& self, const net::Message& msg,
                             net::Time now) {
  if (!self.pending_accusation || self.sent_prosecution) return;
  const auto approval = crypto::SignedMessage::deserialize(msg.payload());
  const Bytes expected =
      ImpeachmentCert::approval_payload(*self.pending_accusation);
  if (!equal(approval.payload, expected) || !approval.valid()) return;
  for (const auto& existing : self.impeach_approvals) {
    if (existing.signer == approval.signer) return;
  }
  self.impeach_approvals.push_back(approval);

  const std::uint32_t k = self.pending_accusation->committee;
  const std::size_t committee_size = assign_.committees[k].size();
  if (self.impeach_approvals.size() * 2 > committee_size) {
    ImpeachmentCert cert;
    cert.accusation = *self.pending_accusation;
    cert.approvals = self.impeach_approvals;
    const auto payload = net::make_payload(cert.serialize());
    for (net::NodeId rm : assign_.referees) {
      net_->send_shared(self.id, rm, net::Tag::kProsecute, payload);
    }
    self.sent_prosecution = true;
  }
  (void)now;
}

bool Engine::referee_corroborates_timeout(const NodeState& referee,
                                          const Accusation& accusation) const {
  const std::uint32_t k = accusation.committee;
  if (accusation.witness.empty()) {
    // Leader silence: the referee corroborates when it too received no
    // certified output from that committee for the current phase.
    if (current_phase_ == net::Phase::kSemiCommit) {
      return !referee.commitments.contains(k);
    }
    return !committees_[k].intra_result.has_value();
  }
  // Cross concealment: the hint proves the origin committee produced a
  // certified list, yet no cross result for (origin -> k) arrived.
  try {
    const auto req = wire::CrossTxListMsg::deserialize(accusation.witness);
    if (req.dest != k) return false;
    auto cit = referee.commitments.find(req.origin);
    if (cit == referee.commitments.end()) return false;
    if (!verify_semi_commitment(cit->second, req.origin_members)) return false;
    wire::CrossTxListMsg canonical = req;
    const auto cert = consensus::QuorumCert::deserialize(req.origin_cert);
    if (cert.digest != crypto::sha256(canonical.agreed_payload())) return false;
    if (!cert.verify(req.origin_members, req.origin_members.size())) {
      return false;
    }
    return !committees_[k].cross_results.contains(req.origin);
  } catch (const std::exception&) {
    return false;
  }
}

void Engine::on_prosecute(NodeState& self, const net::Message& msg,
                          net::Time now) {
  if (self.role != Role::kReferee) return;
  const auto cert = ImpeachmentCert::deserialize(msg.payload());
  const auto& accusation = cert.accusation;
  if (accusation.committee >= params_.m) return;
  if (committees_[accusation.committee].leader_convicted) return;
  // The accused must actually be the current leader.
  const crypto::PublicKey current =
      nodes_[committees_[accusation.committee].current_leader].keys.pk;
  if (!(accusation.accused == current)) return;

  // Verify the impeachment vote (>C/2 of the committee).
  const auto pks = committee_pks(accusation.committee);
  if (!cert.verify(pks, pks.size())) return;

  // Verify the witness: either cryptographically transferable, or a
  // timeout the referee can corroborate from its own observations.
  const bool witness_ok =
      accusation.witness_valid() ||
      (accusation.kind == WitnessKind::kTimeout &&
       referee_corroborates_timeout(self, accusation));
  if (!witness_ok) return;

  // Only the designated referee drives the re-selection instance.
  const std::uint64_t sn = sn_reselect(accusation.committee,
                                       committees_[accusation.committee].attempt);
  if (designated_referee(sn) != self.id) return;
  referee_convict(self, accusation, now, msg.payload());
}

void Engine::referee_convict(NodeState& referee, const Accusation& accusation,
                             net::Time now, const Bytes& impeachment) {
  const std::uint32_t k = accusation.committee;
  if (committees_[k].leader_convicted) return;
  committees_[k].leader_convicted = true;
  convicted_leaders_.insert(committees_[k].current_leader);
  if (obs_ != nullptr) {
    obs_->trace.instant(
        obs::kTrackCommitteeBase + k, "conviction", "recovery", now,
        {{"leader", static_cast<double>(committees_[k].current_leader)}});
    obs_->metrics.counter("engine.convictions").add();
  }

  // Choose the replacement: the accusing partial-set member when
  // applicable, otherwise the first partial-set member that is not the
  // accused ("a node in the partial set will take his/her place").
  net::NodeId replacement = net::kNoNode;
  const net::NodeId accuser_id = node_of_pk(accusation.accuser);
  const auto& partial = assign_.committees[k].partial;
  if (accuser_id != net::kNoNode &&
      std::find(partial.begin(), partial.end(), accuser_id) != partial.end()) {
    replacement = accuser_id;
  } else {
    for (net::NodeId pm : partial) {
      if (pm != committees_[k].current_leader && nodes_[pm].is_active(round_)) {
        replacement = pm;
        break;
      }
    }
  }
  if (replacement == net::kNoNode) {
    committees_[k].leader_convicted = false;  // nobody can take over
    return;
  }
  committees_[k].pending_new_leader = replacement;

  // C_R agrees on the re-selection via Algorithm 3 (Alg. 6 line 3).
  wire::NewLeaderMsg announcement;
  announcement.committee = k;
  announcement.evicted = accusation.accused;
  announcement.new_leader = nodes_[replacement].keys.pk;
  Writer w;
  w.str("RESELECT");
  w.bytes(announcement.serialize());
  w.bytes(impeachment);
  leader_start_instance(referee, params_.m,
                        sn_reselect(k, committees_[k].attempt), w.take());
  (void)now;
}

void Engine::announce_new_leader(NodeState& referee, std::uint32_t k) {
  const net::NodeId replacement = committees_[k].pending_new_leader;
  if (replacement == net::kNoNode) return;
  wire::NewLeaderMsg announcement;
  announcement.committee = k;
  announcement.evicted = nodes_[committees_[k].current_leader].keys.pk;
  announcement.new_leader = nodes_[replacement].keys.pk;
  const auto payload = net::make_payload(announcement.serialize());
  // Alg. 6 line 4: send to every member of C_k; also inform all leaders
  // so cross-shard handling can resume safely.
  for (net::NodeId id : committee_members(k)) {
    net_->send_shared(referee.id, id, net::Tag::kNewLeader, payload);
  }
  for (std::uint32_t j = 0; j < params_.m; ++j) {
    if (j == k) continue;
    net_->send_shared(referee.id, committees_[j].current_leader,
                      net::Tag::kNewLeader, payload);
  }
  install_new_leader(k, replacement, net_->now());
}

void Engine::on_new_leader(NodeState& self, const net::Message& msg,
                           net::Time now) {
  // Member-side state refresh; the authoritative switch happened in
  // install_new_leader when C_R certified the re-selection.
  const auto announcement = wire::NewLeaderMsg::deserialize(msg.payload());
  if (self.committee == static_cast<std::int64_t>(announcement.committee)) {
    self.leader_sent_txlist = false;
    self.leader_sent_commitment = false;
  }
  (void)now;
}

void Engine::install_new_leader(std::uint32_t k, net::NodeId new_leader,
                                net::Time now) {
  const net::NodeId old_leader = committees_[k].current_leader;
  RecoveryEvent event;
  event.round = round_;
  event.committee = k;
  event.old_leader = old_leader;
  event.new_leader = new_leader;
  event.witness_kind = "recovery";
  recovery_log_.push_back(event);
  if (obs_ != nullptr) {
    obs_->trace.instant(obs::kTrackCommitteeBase + k, "new-leader", "recovery",
                        now,
                        {{"old", static_cast<double>(old_leader)},
                         {"new", static_cast<double>(new_leader)}});
  }

  nodes_[old_leader].role = Role::kCommon;  // evicted
  nodes_[new_leader].role = Role::kLeader;
  committees_[k].current_leader = new_leader;
  committees_[k].attempt += 1;
  committees_[k].recoveries += 1;

  redo_leader_duties(k, now);
}

void Engine::redo_leader_duties(std::uint32_t k, net::Time now) {
  NodeState& leader = nodes_[committees_[k].current_leader];
  if (!leader.is_active(round_)) return;

  // The new leader always publishes a fresh semi-commitment (§V-D).
  if (current_phase_ >= net::Phase::kSemiCommit) {
    leader_send_semicommit(leader, k);
  }
  switch (current_phase_) {
    case net::Phase::kIntraConsensus:
      leader_start_intra(k, now);
      break;
    case net::Phase::kInterConsensus:
      leader_start_intra(k, now);  // recover the intra output too
      leader_start_cross(k, now);
      // Process any cross lists the partial member already holds.
      for (const auto& [origin, hint] : leader.cross_hints) {
        leader_handle_cross_in(leader, hint, now);
      }
      break;
    case net::Phase::kReputation:
      leader_send_scores(k, now);
      break;
    default:
      break;
  }
}

}  // namespace cyc::protocol
