#include "protocol/sortition.hpp"

#include "support/serde.hpp"

namespace cyc::protocol {

namespace {
Bytes sortition_input(std::uint64_t round, const crypto::Digest& randomness) {
  Writer w;
  w.str("COMMON_MEMBER");
  w.u64(round);
  w.bytes(crypto::digest_to_bytes(randomness));
  return w.take();
}
}  // namespace

SortitionTicket crypto_sort(const crypto::KeyPair& keys, std::uint64_t round,
                            const crypto::Digest& randomness,
                            std::uint32_t m) {
  SortitionTicket ticket;
  ticket.proof = crypto::vrf_prove(keys.sk, sortition_input(round, randomness));
  ticket.committee = static_cast<std::uint32_t>(
      crypto::digest_prefix_u64(ticket.proof.hash) % m);
  return ticket;
}

bool verify_sortition(const crypto::PublicKey& pk, std::uint64_t round,
                      const crypto::Digest& randomness, std::uint32_t m,
                      const SortitionTicket& ticket) {
  if (!crypto::vrf_verify(pk, sortition_input(round, randomness),
                          ticket.proof)) {
    return false;
  }
  return ticket.committee ==
         crypto::digest_prefix_u64(ticket.proof.hash) % m;
}

std::uint64_t role_hash(std::uint64_t next_round,
                        const crypto::Digest& randomness,
                        const crypto::PublicKey& pk, std::string_view role) {
  Writer w;
  w.u64(next_round);
  w.bytes(crypto::digest_to_bytes(randomness));
  w.u64(pk.y);
  w.str(role);
  return crypto::digest_prefix_u64(crypto::sha256(w.out()));
}

std::uint64_t role_difficulty(std::uint64_t population, std::uint64_t want) {
  if (population == 0) return 0;
  if (want >= population) return ~0ull;
  // Threshold = 2^64 * want / population, computed in 128 bits.
  const unsigned __int128 numerator =
      static_cast<unsigned __int128>(want) << 64;
  return static_cast<std::uint64_t>(numerator / population);
}

bool wins_role(std::uint64_t next_round, const crypto::Digest& randomness,
               const crypto::PublicKey& pk, std::string_view role,
               std::uint64_t difficulty) {
  return role_hash(next_round, randomness, pk, role) <= difficulty;
}

std::uint32_t partial_committee(std::uint64_t next_round,
                                const crypto::Digest& randomness,
                                const crypto::PublicKey& pk, std::uint32_t m) {
  return static_cast<std::uint32_t>(
      role_hash(next_round, randomness, pk, kRolePartial) % m);
}

}  // namespace cyc::protocol
