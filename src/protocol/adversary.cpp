#include "protocol/adversary.hpp"

namespace cyc::protocol {

std::string_view behavior_name(Behavior b) {
  switch (b) {
    case Behavior::kHonest: return "honest";
    case Behavior::kCrash: return "crash";
    case Behavior::kEquivocator: return "equivocator";
    case Behavior::kCommitForger: return "commit-forger";
    case Behavior::kConcealer: return "concealer";
    case Behavior::kInverseVoter: return "inverse-voter";
    case Behavior::kRandomVoter: return "random-voter";
    case Behavior::kLazyVoter: return "lazy-voter";
    case Behavior::kImitator: return "imitator";
    case Behavior::kFramer: return "framer";
  }
  return "unknown";
}

bool is_leader_behavior(Behavior b) {
  return b == Behavior::kEquivocator || b == Behavior::kCommitForger ||
         b == Behavior::kConcealer || b == Behavior::kImitator;
}

Behavior AdversaryConfig::sample(rng::Stream& rng) const {
  double total = 0.0;
  for (const auto& w : mix) total += w.weight;
  if (total <= 0.0) return Behavior::kCrash;
  double pick = rng.uniform() * total;
  for (const auto& w : mix) {
    pick -= w.weight;
    if (pick <= 0.0) return w.behavior;
  }
  return mix.back().behavior;
}

}  // namespace cyc::protocol
