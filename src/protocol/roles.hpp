// Round role assignment: referee committee, committees with leader /
// partial set / common members (Fig. 1 hierarchy).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/schnorr.hpp"
#include "net/message.hpp"

namespace cyc::protocol {

enum class Role : std::uint8_t {
  kCommon = 0,
  kLeader,
  kPartial,   ///< potential leader (partial-set member)
  kReferee,
};

std::string_view role_name(Role r);

struct CommitteeInfo {
  std::uint32_t id = 0;
  net::NodeId leader = net::kNoNode;
  std::vector<net::NodeId> partial;  ///< C_{i,partial}
  std::vector<net::NodeId> commons;

  /// leader + partial + commons, in that order.
  std::vector<net::NodeId> all_members() const;
  /// leader + partial.
  std::vector<net::NodeId> key_members() const;
  std::size_t size() const { return 1 + partial.size() + commons.size(); }
  bool contains(net::NodeId node) const;
};

struct RoundAssignment {
  std::uint64_t round = 0;
  std::vector<net::NodeId> referees;
  std::vector<CommitteeInfo> committees;

  Role role_of(net::NodeId node) const;
  /// Committee index of a node, or -1 for referees / unassigned.
  std::int64_t committee_of(net::NodeId node) const;
  bool is_key_member(net::NodeId node) const;
};

}  // namespace cyc::protocol
