// Round / run reports: everything the experiments and tests observe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "net/stats.hpp"
#include "protocol/adversary.hpp"
#include "protocol/roles.hpp"

namespace cyc::protocol {

struct RecoveryEvent {
  std::uint64_t round = 0;
  std::uint32_t committee = 0;
  net::NodeId old_leader = net::kNoNode;
  net::NodeId new_leader = net::kNoNode;
  std::string witness_kind;
};

/// One resolved catch-up attempt of a restarted node (crash-recovery).
/// On success the node adopted `adopted_digest` after `confirms` distinct
/// referees vouched for it; on failure it exhausted its retry budget and
/// re-crashed.
struct CatchUpRecord {
  net::NodeId node = net::kNoNode;
  std::uint64_t round = 0;
  std::uint32_t attempt = 0;
  std::size_t confirms = 0;
  bool success = false;
  crypto::Digest adopted_digest{};
};

/// Open-loop traffic accounting for one round (all fields stay zero /
/// empty unless Params::arrival_rate > 0, so closed-loop reports are
/// unchanged). Conservation: arrived == admitted + mempool_dropped +
/// exhausted per round, and cumulatively admitted == drained + backlog.
struct OpenLoopRoundStats {
  std::uint64_t arrived = 0;   ///< Poisson arrivals in this round's window
  std::uint64_t admitted = 0;  ///< accepted by a shard mempool
  std::uint64_t mempool_dropped = 0;  ///< rejected: mempool at capacity
  std::uint64_t exhausted = 0;        ///< unrepresentable: spendable pool dry
  std::uint64_t drained = 0;   ///< moved from mempools into this round's lists
  std::uint64_t backlog = 0;   ///< total mempool occupancy after the drain
  /// Cumulative WorkloadGenerator::shortfall() — requests the generator
  /// could not serve from the requested (Zipf-picked) account.
  std::uint64_t source_shortfall = 0;
  std::vector<std::size_t> occupancy;  ///< per-shard occupancy after drain
  /// Arrival -> block-commit latency in simulated time, one entry per
  /// transaction committed this round (commit stamps at the end of the
  /// round's window), in block order.
  std::vector<double> latencies;
  /// Input shard (under the epoch's account map) of each `latencies`
  /// entry, parallel to it — per-shard tail-latency accounting for the
  /// skew/rebalance bench.
  std::vector<std::uint32_t> latency_shards;
};

struct CommitteeRoundStats {
  std::uint32_t committee = 0;
  std::size_t txs_listed = 0;       ///< offered in TXList(s)
  std::size_t txs_committed = 0;    ///< reached the block
  std::size_t cross_committed = 0;  ///< committed cross-shard txs (origin here)
  bool produced_output = false;     ///< referee received a certified result
  std::size_t recoveries = 0;
  /// An active partition / blackout cut this committee off from quorum
  /// this round (no majority island holds committee majority + referee
  /// majority + a leader or partial member).
  bool severed = false;
};

struct RoundReport {
  std::uint64_t round = 0;
  std::size_t txs_committed = 0;       ///< total in block B^r
  std::size_t intra_committed = 0;
  std::size_t cross_committed = 0;
  std::size_t txs_offered = 0;
  std::size_t invalid_rejected = 0;    ///< ground-truth-invalid txs kept out
  std::size_t invalid_committed = 0;   ///< safety violations (must be 0)
  bool block_void = false;             ///< no committee produced output
  std::size_t recoveries = 0;
  std::vector<RecoveryEvent> recovery_events;
  std::vector<CatchUpRecord> catchup_events;  ///< crash-recovery attempts
  std::vector<CommitteeRoundStats> committees;
  OpenLoopRoundStats open_loop;        ///< sustained-traffic accounting
  net::FaultStats faults;              ///< injected network faults
  double round_latency = 0.0;          ///< simulated time consumed
  double total_fees = 0.0;
  net::Counter traffic_total;

  /// Per-role traffic for this round (Table II measurement).
  std::map<Role, net::Counter> traffic_by_role;
  /// Per (role, phase) traffic.
  std::map<Role, std::vector<net::Counter>> traffic_by_role_phase;
  /// Number of nodes that held each role this round.
  std::map<Role, std::size_t> role_counts;
  /// Per-role storage proxy (bytes of member lists + commitments + utxo +
  /// certificates held at round end).
  std::map<Role, double> storage_by_role;
};

struct RunReport {
  std::vector<RoundReport> rounds;
  std::vector<double> final_reputations;  ///< by node id
  std::vector<double> final_rewards;      ///< cumulative, by node id
  std::vector<Behavior> behaviors;        ///< by node id

  std::size_t total_committed() const {
    std::size_t total = 0;
    for (const auto& r : rounds) total += r.txs_committed;
    return total;
  }
  std::size_t total_recoveries() const {
    std::size_t total = 0;
    for (const auto& r : rounds) total += r.recoveries;
    return total;
  }
  std::size_t total_invalid_committed() const {
    std::size_t total = 0;
    for (const auto& r : rounds) total += r.invalid_committed;
    return total;
  }
};

}  // namespace cyc::protocol
