#include "protocol/roles.hpp"

#include <algorithm>

namespace cyc::protocol {

std::string_view role_name(Role r) {
  switch (r) {
    case Role::kCommon: return "common";
    case Role::kLeader: return "leader";
    case Role::kPartial: return "partial";
    case Role::kReferee: return "referee";
  }
  return "unknown";
}

std::vector<net::NodeId> CommitteeInfo::all_members() const {
  std::vector<net::NodeId> out;
  out.reserve(size());
  out.push_back(leader);
  out.insert(out.end(), partial.begin(), partial.end());
  out.insert(out.end(), commons.begin(), commons.end());
  return out;
}

std::vector<net::NodeId> CommitteeInfo::key_members() const {
  std::vector<net::NodeId> out;
  out.reserve(1 + partial.size());
  out.push_back(leader);
  out.insert(out.end(), partial.begin(), partial.end());
  return out;
}

bool CommitteeInfo::contains(net::NodeId node) const {
  if (node == leader) return true;
  if (std::find(partial.begin(), partial.end(), node) != partial.end()) {
    return true;
  }
  return std::find(commons.begin(), commons.end(), node) != commons.end();
}

Role RoundAssignment::role_of(net::NodeId node) const {
  if (std::find(referees.begin(), referees.end(), node) != referees.end()) {
    return Role::kReferee;
  }
  for (const auto& committee : committees) {
    if (committee.leader == node) return Role::kLeader;
    if (std::find(committee.partial.begin(), committee.partial.end(), node) !=
        committee.partial.end()) {
      return Role::kPartial;
    }
  }
  return Role::kCommon;
}

std::int64_t RoundAssignment::committee_of(net::NodeId node) const {
  for (const auto& committee : committees) {
    if (committee.contains(node)) return committee.id;
  }
  return -1;
}

bool RoundAssignment::is_key_member(net::NodeId node) const {
  for (const auto& committee : committees) {
    if (committee.leader == node) return true;
    if (std::find(committee.partial.begin(), committee.partial.end(), node) !=
        committee.partial.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace cyc::protocol
