// Cryptographic sortition (Algorithm 1) and role selection (§IV-F).
//
// A non-key node derives its committee for round r from its VRF value on
// COMMON_MEMBER || r || R^r; the pair (hash, pi) proves membership to any
// verifier. Referee / partial-set selection uses the difficulty
// inequality H(r+1 || R^r || PK || role) <= d(role).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/sha256.hpp"
#include "crypto/vrf.hpp"

namespace cyc::protocol {

struct SortitionTicket {
  std::uint32_t committee = 0;  ///< id = hash mod m
  crypto::VrfOutput proof;      ///< (hash, pi) of Alg. 1
};

/// Alg. 1: CRYPTO_SORT(PK, SK, r, R^r).
SortitionTicket crypto_sort(const crypto::KeyPair& keys, std::uint64_t round,
                            const crypto::Digest& randomness, std::uint32_t m);

/// Verify another node's ticket (the VRF_VERIFY of Alg. 2, line 7).
bool verify_sortition(const crypto::PublicKey& pk, std::uint64_t round,
                      const crypto::Digest& randomness, std::uint32_t m,
                      const SortitionTicket& ticket);

/// Role strings of §IV-F.
inline constexpr std::string_view kRoleReferee = "REFEREE_COMMITTEE_MEMBER";
inline constexpr std::string_view kRolePartial = "PARTIAL_SET_MEMBER";

/// H(r+1 || R^r || PK || role) as a 64-bit value for the difficulty test.
std::uint64_t role_hash(std::uint64_t next_round,
                        const crypto::Digest& randomness,
                        const crypto::PublicKey& pk, std::string_view role);

/// The difficulty d(role): a threshold chosen so that in expectation
/// `want` of `population` nodes pass. (A new d(role) may be proposed as
/// the network size changes, §IV-F.)
std::uint64_t role_difficulty(std::uint64_t population, std::uint64_t want);

/// True iff `pk` wins the role lottery.
bool wins_role(std::uint64_t next_round, const crypto::Digest& randomness,
               const crypto::PublicKey& pk, std::string_view role,
               std::uint64_t difficulty);

/// For a winning partial-set candidate: the committee it lands in,
/// H(...) mod m (§IV-F).
std::uint32_t partial_committee(std::uint64_t next_round,
                                const crypto::Digest& randomness,
                                const crypto::PublicKey& pk, std::uint32_t m);

}  // namespace cyc::protocol
