// Canonical payload codecs for every protocol message. Kept separate from
// the engine so tests can build and inspect wire payloads directly.
#pragma once

#include <cstdint>
#include <vector>

#include "consensus/types.hpp"
#include "ledger/types.hpp"
#include "protocol/reputation.hpp"
#include "protocol/sortition.hpp"
#include "support/bytes.hpp"

namespace cyc::protocol::wire {

/// CONFIG / MEMBER: <PK, address(=node id), hash, pi> of Alg. 2.
struct Intro {
  std::uint32_t node = 0;
  crypto::PublicKey pk;
  SortitionTicket ticket;

  Bytes serialize() const;
  static Intro deserialize(BytesView b);
};

/// MEM_LIST: a key member's current registration list.
struct MemberListMsg {
  std::vector<std::uint32_t> nodes;
  std::vector<crypto::PublicKey> pks;

  Bytes serialize() const;
  static MemberListMsg deserialize(BytesView b);
};

/// Envelope for Algorithm 3 traffic: (scope, sn) route + wire bytes.
struct ConsensusEnvelope {
  std::uint32_t scope = 0;  ///< committee id, or m for the referee scope
  std::uint64_t sn = 0;
  Bytes wire;

  Bytes serialize() const;
  static ConsensusEnvelope deserialize(BytesView b);
};

/// SEMI_COM bundle the leader distributes: signed commitment plus signed
/// member list (Alg. 4).
struct SemiCommitMsg {
  std::uint32_t committee = 0;
  crypto::SignedMessage commitment_msg;
  crypto::SignedMessage list_msg;

  Bytes serialize() const;
  static SemiCommitMsg deserialize(BytesView b);
};

/// Referee relay of an accepted semi-commitment to all key members.
struct SemiCommitAck {
  std::uint32_t committee = 0;
  crypto::Digest commitment{};
  std::vector<crypto::PublicKey> members;
  Bytes cert;  ///< serialized QuorumCert from the C_R check

  Bytes serialize() const;
  static SemiCommitAck deserialize(BytesView b);
};

/// TX_LIST the leader broadcasts (intra or cross list).
struct TxListMsg {
  std::uint32_t committee = 0;
  std::uint32_t attempt = 0;
  bool cross = false;
  crypto::SignedMessage signed_list;  ///< payload = serialized txs

  Bytes serialize() const;
  static TxListMsg deserialize(BytesView b);
};

Bytes encode_tx_vec(const std::vector<ledger::Transaction>& txs);
std::vector<ledger::Transaction> decode_tx_vec(BytesView b);

/// VOTE reply.
struct VoteMsg {
  std::uint32_t committee = 0;
  std::uint32_t attempt = 0;
  bool cross = false;
  crypto::SignedMessage signed_vote;  ///< payload = encode_vote_vec

  Bytes serialize() const;
  static VoteMsg deserialize(BytesView b);
};

Bytes encode_vote_vec(const VoteVector& votes);
VoteVector decode_vote_vec(BytesView b);

/// The message M agreed by Alg. 3 in the intra phase: TXdecSET + VList
/// digest (the full VList travels alongside; digest keeps M small).
struct IntraDecision {
  std::uint32_t committee = 0;
  std::uint32_t attempt = 0;
  std::vector<ledger::Transaction> txdec_set;
  crypto::Digest vlist_digest{};

  Bytes serialize() const;
  static IntraDecision deserialize(BytesView b);
};

/// INTRA result sent to the referees: decision + quorum certificate.
struct CertifiedResult {
  Bytes payload;  ///< the agreed message M
  Bytes cert;     ///< serialized QuorumCert over H(M)

  Bytes serialize() const;
  static CertifiedResult deserialize(BytesView b);
};

/// Cross-shard TX list from committee `origin` to committee `dest`
/// (§IV-D): the agreed list, the origin's certificate and member list
/// (checkable against the origin's semi-commitment).
struct CrossTxListMsg {
  std::uint32_t origin = 0;
  std::uint32_t dest = 0;
  std::uint32_t attempt = 0;
  std::vector<ledger::Transaction> txs;
  Bytes origin_cert;  ///< QuorumCert over the cross-out decision
  std::vector<crypto::PublicKey> origin_members;

  /// The message the origin committee agreed on via Alg. 3.
  Bytes agreed_payload() const;
  Bytes serialize() const;
  static CrossTxListMsg deserialize(BytesView b);
};

/// Destination committee's answer: both certificates travel to l_i and
/// the referee committee.
struct CrossResultMsg {
  CrossTxListMsg request;
  Bytes dest_cert;  ///< QuorumCert of the destination acceptance
  std::vector<crypto::PublicKey> dest_members;

  /// The acceptance message the destination committee agreed on.
  Bytes acceptance_payload() const;
  Bytes serialize() const;
  static CrossResultMsg deserialize(BytesView b);
};

/// ScoreList (§IV-E): per-node cosine scores.
struct ScoreListMsg {
  std::uint32_t committee = 0;
  std::vector<std::uint32_t> nodes;
  std::vector<double> scores;

  Bytes serialize() const;
  static ScoreListMsg deserialize(BytesView b);
};

/// PoW registration (§IV-F).
struct PowMsg {
  std::uint32_t node = 0;
  crypto::PublicKey pk;
  std::uint64_t nonce = 0;
  crypto::Digest digest{};

  Bytes serialize() const;
  static PowMsg deserialize(BytesView b);
};

/// NEW leader announcement (Alg. 6).
struct NewLeaderMsg {
  std::uint32_t committee = 0;
  crypto::PublicKey evicted;
  crypto::PublicKey new_leader;

  Bytes serialize() const;
  static NewLeaderMsg deserialize(BytesView b);
};

/// Block summary broadcast to every node (§IV-G). Carries enough for
/// members to update their shard state; sizes approximate a real block.
struct BlockMsg {
  std::uint64_t round = 0;
  std::vector<ledger::Transaction> txs;
  crypto::Digest randomness{};
  crypto::Digest body_root{};  ///< Merkle root over the tx leaves

  Bytes serialize() const;
  static BlockMsg deserialize(BytesView b);
};

}  // namespace cyc::protocol::wire
