#include "protocol/reputation.hpp"

#include <cmath>
#include <stdexcept>

namespace cyc::protocol {

double cosine_score(const VoteVector& vote, const VoteVector& decision) {
  if (vote.size() != decision.size()) {
    throw std::invalid_argument("cosine_score: dimension mismatch");
  }
  double dot = 0.0, norm_v = 0.0, norm_u = 0.0;
  for (std::size_t k = 0; k < vote.size(); ++k) {
    const double v = static_cast<double>(static_cast<int>(vote[k]));
    const double u = static_cast<double>(static_cast<int>(decision[k]));
    dot += v * u;
    norm_v += v * v;
    norm_u += u * u;
  }
  if (norm_v == 0.0 || norm_u == 0.0) return 0.0;
  return dot / (std::sqrt(norm_v) * std::sqrt(norm_u));
}

std::vector<double> score_votes(const std::vector<VoteVector>& votes,
                                const VoteVector& decision) {
  std::vector<double> scores;
  scores.reserve(votes.size());
  for (const auto& vote : votes) scores.push_back(cosine_score(vote, decision));
  return scores;
}

double g(double reputation) {
  if (reputation <= 0.0) return std::exp(reputation);
  return 1.0 + std::log1p(reputation);
}

std::vector<double> distribute_rewards(const std::vector<double>& reputations,
                                       double total_fee) {
  std::vector<double> rewards(reputations.size(), 0.0);
  double total_weight = 0.0;
  for (double rep : reputations) total_weight += g(rep);
  if (total_weight <= 0.0) return rewards;
  for (std::size_t i = 0; i < reputations.size(); ++i) {
    rewards[i] = total_fee * g(reputations[i]) / total_weight;
  }
  return rewards;
}

double punish_leader(double reputation) { return std::cbrt(reputation); }

}  // namespace cyc::protocol
