// Engine part 2: phase drivers, message handlers, Algorithm 3 plumbing,
// leader duties and the recovery procedure (Alg. 6).
#include <algorithm>

#include "protocol/engine.hpp"
#include "protocol/payloads.hpp"
#include "crypto/merkle.hpp"
#include "crypto/pow.hpp"
#include "obs/observer.hpp"
#include "support/parallel.hpp"
#include "support/serde.hpp"

namespace cyc::protocol {

namespace {

// Sequence-number layout per scope (unique and monotone per instance as
// the paper requires; attempts after recovery get fresh numbers).
constexpr std::uint64_t sn_intra(std::uint32_t attempt) { return 100 + attempt; }
constexpr std::uint64_t sn_score(std::uint32_t attempt) { return 150 + attempt; }
constexpr std::uint64_t sn_utxo(std::uint32_t attempt) { return 180 + attempt; }
std::uint64_t sn_cross_out(std::uint32_t dest, std::uint32_t attempt) {
  return 1000 + static_cast<std::uint64_t>(dest) * 16 + attempt;
}
std::uint64_t sn_cross_in(std::uint32_t origin, std::uint32_t attempt) {
  return 100000 + static_cast<std::uint64_t>(origin) * 16 + attempt;
}
// Referee scope:
std::uint64_t sn_semi_check(std::uint32_t k) { return 1000 + k; }
constexpr std::uint64_t kSnBlock = 1;
std::uint64_t sn_reselect(std::uint32_t k, std::uint32_t attempt) {
  return 5000 + static_cast<std::uint64_t>(k) * 16 + attempt;
}

bool is_cross_in_sn(std::uint64_t sn) { return sn >= 100000; }
std::uint32_t cross_in_origin(std::uint64_t sn) {
  return static_cast<std::uint32_t>((sn - 100000) / 16);
}

}  // namespace

// ---------------------------------------------------------------------------
// Phase drivers
// ---------------------------------------------------------------------------

void Engine::phase_config(net::Time at) {
  net_->set_phase(net::Phase::kCommitteeConfig);
  current_phase_ = net::Phase::kCommitteeConfig;
  obs_phase(net::Phase::kCommitteeConfig, at);
  // Key members seed their list S with the committee's key members
  // (addresses known from block B^{r-1}). Every key member belongs to
  // exactly one committee, so the per-committee jobs write disjoint node
  // state and fan out without a merge step.
  support::parallel_for(
      params_.m,
      [&](std::size_t k) {
        for (net::NodeId id : assign_.committees[k].key_members()) {
          NodeState& key_member = nodes_[id];
          for (net::NodeId peer : assign_.committees[k].key_members()) {
            if (key_member.known_pks.insert(nodes_[peer].keys.pk.y).second) {
              key_member.member_list.push_back(nodes_[peer].keys.pk);
            }
          }
        }
      },
      options_.engine_threads);
  // Non-key members run CRYPTO_SORT and register with the key members.
  // Two stages: the per-common self-registration and Intro serialization
  // are node-disjoint pure compute; payload creation (thread_local alloc
  // counters) and sends run on the engine thread in (committee, id)
  // order so the simulator's delay-RNG draw order matches the
  // sequential path byte for byte.
  struct IntroJob {
    std::uint32_t k;
    net::NodeId id;
    Bytes wire_bytes;
  };
  std::vector<IntroJob> intros;
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    for (net::NodeId id : assign_.committees[k].commons) {
      if (!nodes_[id].is_active(round_)) continue;
      intros.push_back(IntroJob{k, id, {}});
    }
  }
  support::parallel_for(
      intros.size(),
      [&](std::size_t i) {
        NodeState& common = nodes_[intros[i].id];
        common.known_pks.insert(common.keys.pk.y);
        common.member_list.push_back(common.keys.pk);
        wire::Intro intro{common.id, common.keys.pk, common.ticket};
        intros[i].wire_bytes = intro.serialize();
      },
      options_.engine_threads);
  for (std::size_t i : support::stage_order(intros.size())) {
    const auto& job = intros[i];
    const auto payload = net::make_payload(job.wire_bytes);
    for (net::NodeId km : assign_.committees[job.k].key_members()) {
      net_->send_shared(job.id, km, net::Tag::kConfig, payload);
    }
  }
  // Restarted nodes spend the configuration phase asking the referees for
  // the current state digest instead of participating.
  for (auto& n : nodes_) {
    if (!n.catching_up) continue;
    n.catchup_attempts += 1;
    Writer w;
    w.u32(n.id);
    const auto payload = net::make_payload(w.take());
    for (net::NodeId rm : assign_.referees) {
      net_->send_shared(n.id, rm, net::Tag::kCatchUpRequest, payload);
    }
  }
  (void)at;
}

void Engine::phase_semicommit(net::Time at) {
  net_->set_phase(net::Phase::kSemiCommit);
  current_phase_ = net::Phase::kSemiCommit;
  obs_phase(net::Phase::kSemiCommit, at);
  // Two-stage fan-out: commitment hashing + double signing + wire
  // serialization per committee on the pool, emission in committee-index
  // order on the engine thread (see "Execution model" in
  // src/protocol/README.md).
  std::vector<Bytes> built(params_.m);
  support::parallel_for(
      params_.m,
      [&](std::size_t k) {
        NodeState& leader = nodes_[committees_[k].current_leader];
        built[k] = build_semicommit(leader, static_cast<std::uint32_t>(k));
      },
      options_.engine_threads);
  for (std::size_t k : support::stage_order(params_.m)) {
    if (built[k].empty()) continue;
    NodeState& leader = nodes_[committees_[k].current_leader];
    emit_semicommit(leader, static_cast<std::uint32_t>(k), built[k]);
  }
  // A silent leader is only impeachable once common members can
  // corroborate the silence (they never see SEMI_COM traffic), so the
  // timeout accusation for crashed leaders fires at the intra deadline.
  (void)at;
}

void Engine::phase_intra(net::Time at) {
  net_->set_phase(net::Phase::kIntraConsensus);
  current_phase_ = net::Phase::kIntraConsensus;
  obs_phase(net::Phase::kIntraConsensus, at);
  // Two-stage fan-out: the leader's tx-list signing + serialization per
  // committee runs on the pool; the multicast, the leader's own vote
  // (ledger::V — verdict cache) and the tally timer run on the engine
  // thread in committee-index order.
  {
    std::vector<Bytes> built(params_.m);
    support::parallel_for(
        params_.m,
        [&](std::size_t k) {
          built[k] = build_intra_txlist(static_cast<std::uint32_t>(k));
        },
        options_.engine_threads);
    for (std::size_t k : support::stage_order(params_.m)) {
      if (built[k].empty()) continue;
      emit_intra_txlist(static_cast<std::uint32_t>(k), built[k], at);
    }
  }
  const net::Time deadline =
      at + 0.7 * params_.intra_duration * params_.delays.delta;
  net_->schedule(deadline, [this](net::Time now) {
    if (!options_.recovery_enabled) return;
    for (std::uint32_t k = 0; k < params_.m; ++k) {
      for (net::NodeId id : assign_.committees[k].partial) {
        NodeState& pm = nodes_[id];
        if (!pm.is_active(round_) || pm.misbehaves(round_)) continue;
        if (!pm.leader_sent_txlist && !committees_[k].leader_convicted) {
          begin_accusation(pm, k, WitnessKind::kTimeout, {}, now);
          break;
        }
      }
    }
    // Framers strike here: fabricate a witness against an honest leader.
    for (std::uint32_t k = 0; k < params_.m; ++k) {
      for (net::NodeId id : assign_.committees[k].partial) {
        NodeState& pm = nodes_[id];
        if (pm.behavior == Behavior::kFramer && pm.misbehaves(round_) &&
            !pm.accused_this_round) {
          Writer w;
          w.str("bogus-witness");
          begin_accusation(pm, k, WitnessKind::kEquivocation, w.take(), now);
        }
      }
    }
  });
}

void Engine::phase_inter(net::Time at) {
  net_->set_phase(net::Phase::kInterConsensus);
  current_phase_ = net::Phase::kInterConsensus;
  obs_phase(net::Phase::kInterConsensus, at);
  if (options_.extension_precommunication) {
    // The §VIII-A pre-check interleaves sends with ledger::V filtering,
    // so it cannot be split into a pure compute stage — run the whole
    // phase sequentially (the reference path).
    for (std::uint32_t k = 0; k < params_.m; ++k) {
      leader_start_cross(k, at);
    }
    return;
  }
  std::vector<Bytes> built(params_.m);
  support::parallel_for(
      params_.m,
      [&](std::size_t k) {
        built[k] = build_cross_txlist(static_cast<std::uint32_t>(k));
      },
      options_.engine_threads);
  for (std::size_t k : support::stage_order(params_.m)) {
    if (built[k].empty()) continue;
    emit_cross_txlist(static_cast<std::uint32_t>(k), built[k], at);
  }
}

void Engine::phase_reputation(net::Time at) {
  net_->set_phase(net::Phase::kReputation);
  current_phase_ = net::Phase::kReputation;
  obs_phase(net::Phase::kReputation, at);
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    leader_send_scores(k, at);
  }
}

void Engine::phase_selection(net::Time at) {
  net_->set_phase(net::Phase::kSelection);
  current_phase_ = net::Phase::kSelection;
  obs_phase(net::Phase::kSelection, at);
  // Adopt the quorum-acked score reports before compute_selection reads
  // the effective reputations (finalize_round re-runs this for reports
  // whose quorum completed later in the round).
  adopt_quorum_scores();
  const Bytes challenge =
      concat({bytes_of("cyc.round"), be64(round_),
              crypto::digest_to_bytes(randomness_)});
  const std::uint64_t target = crypto::pow_target_for_bits(params_.pow_bits);
  // Two-stage fan-out: the PoW search is the single most expensive pure
  // computation of the round (a bounded nonce scan per enrolled node),
  // so it runs on the pool; the solution sends run on the engine thread
  // in node-id order so delay-RNG draw order matches the sequential
  // path.
  std::vector<net::NodeId> solvers;
  for (const auto& n : nodes_) {
    if (!n.enrolled) continue;               // standby identities sit out
    if (!n.is_active(round_ + 1)) continue;  // crashed nodes sit out
    solvers.push_back(n.id);
  }
  std::vector<Bytes> solutions(solvers.size());
  support::parallel_for(
      solvers.size(),
      [&](std::size_t i) {
        const NodeState& n = nodes_[solvers[i]];
        const Bytes per_node = concat({challenge, be64(n.keys.pk.y)});
        const auto solution = crypto::pow_solve(per_node, target, 0, 1u << 20);
        if (!solution) return;
        wire::PowMsg msg{n.id, n.keys.pk, solution->nonce, solution->digest};
        solutions[i] = msg.serialize();
      },
      options_.engine_threads);
  for (std::size_t i : support::stage_order(solvers.size())) {
    if (solutions[i].empty()) continue;
    const auto payload = net::make_payload(solutions[i]);
    for (net::NodeId rm : assign_.referees) {
      net_->send_shared(solvers[i], rm, net::Tag::kPowSolution, payload);
    }
  }
  const net::Time when =
      at + 0.8 * params_.selection_duration * params_.delays.delta;
  net_->schedule(when, [this](net::Time) { compute_selection(); });
}

void Engine::phase_block(net::Time at) {
  net_->set_phase(net::Phase::kBlock);
  current_phase_ = net::Phase::kBlock;
  obs_phase(net::Phase::kBlock, at);
  // The designated referee proposes the block content; C_R agrees via
  // Algorithm 3; on certification the block is released to everyone.
  const net::NodeId proposer = designated_referee(kSnBlock);
  NodeState& referee = nodes_[proposer];
  wire::BlockMsg block;
  block.round = round_;
  // Only results a majority of referees acked enter the proposal — a
  // result stranded on a minority island of a partitioned C_R stays out.
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    if (committees_[k].intra_result &&
        referee_quorum(committees_[k].intra_acks)) {
      const auto decision =
          wire::IntraDecision::deserialize(*committees_[k].intra_result);
      for (const auto& tx : decision.txdec_set) block.txs.push_back(tx);
    }
    for (const auto& [origin, payload] : committees_[k].cross_results) {
      auto acks = committees_[k].cross_acks.find(origin);
      if (acks == committees_[k].cross_acks.end() ||
          !referee_quorum(acks->second)) {
        continue;
      }
      const auto result = wire::CrossResultMsg::deserialize(payload);
      for (const auto& tx : result.request.txs) block.txs.push_back(tx);
    }
  }
  block.randomness = next_randomness_;
  std::vector<Bytes> leaves;
  leaves.reserve(block.txs.size());
  for (const auto& tx : block.txs) leaves.push_back(tx.serialize());
  block.body_root = crypto::MerkleTree(leaves).root();
  block_payload_ = block.serialize();
  leader_start_instance(referee, params_.m, kSnBlock, block_payload_);
  // Committee leaders also certify their final UTXO list for hand-off to
  // the next round's partial sets (§IV-G).
  for (std::uint32_t k = 0; k < params_.m; ++k) {
    NodeState& leader = nodes_[committees_[k].current_leader];
    if (!leader.is_active(round_) ||
        (leader.misbehaves(round_) && leader.behavior == Behavior::kCrash)) {
      continue;
    }
    Writer w;
    w.str("UTXO_FINAL");
    w.u32(k);
    w.bytes(crypto::digest_to_bytes(leader.utxo.digest()));
    leader_start_instance(leader, k, sn_utxo(committees_[k].attempt),
                          w.take());
  }
  (void)at;
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

void Engine::handle(net::NodeId id, const net::Message& msg, net::Time now) {
  NodeState& self = nodes_[id];
  // Catch-up traffic bypasses the activity gate: a catching-up node is
  // inactive for the protocol proper but must still receive the referee
  // replies that let it rejoin. The handlers re-check roles themselves.
  if (msg.tag == net::Tag::kCatchUpRequest) {
    on_catchup_request(self, msg);
    return;
  }
  if (msg.tag == net::Tag::kCatchUpReply) {
    on_catchup_reply(self, msg);
    return;
  }
  if (!self.is_active(round_)) return;  // crashed: pretend offline
  try {
    switch (msg.tag) {
      case net::Tag::kConfig: on_config(self, msg); break;
      case net::Tag::kMemberList: on_member_list(self, msg); break;
      case net::Tag::kMember: on_member(self, msg); break;
      case net::Tag::kPropose:
      case net::Tag::kEcho:
      case net::Tag::kConfirm:
        on_consensus_msg(self, msg, now);
        break;
      case net::Tag::kSemiCommit: on_semicommit(self, msg, now); break;
      case net::Tag::kSemiCommitAck: on_semicommit_ack(self, msg, now); break;
      case net::Tag::kTxList: on_txlist(self, msg); break;
      case net::Tag::kVote: on_vote(self, msg); break;
      case net::Tag::kCrossTxList: on_cross_txlist(self, msg, now); break;
      case net::Tag::kCrossPartialHint: on_cross_hint(self, msg, now); break;
      case net::Tag::kCrossResult: on_cross_result(self, msg); break;
      case net::Tag::kScoreReport: on_score_report(self, msg); break;
      case net::Tag::kIntraResult: on_intra_result(self, msg); break;
      case net::Tag::kAccuse: on_accuse(self, msg, now); break;
      case net::Tag::kImpeachVote: on_impeach_vote(self, msg, now); break;
      case net::Tag::kProsecute: on_prosecute(self, msg, now); break;
      case net::Tag::kNewLeader: on_new_leader(self, msg, now); break;
      case net::Tag::kPowSolution: {
        if (self.role != Role::kReferee) break;
        const auto pow = wire::PowMsg::deserialize(msg.payload());
        // Referees only register the current membership; a standby or
        // retired identity must re-enter through the epoch join puzzle.
        if (pow.node >= nodes_.size() || !nodes_[pow.node].enrolled) break;
        const Bytes challenge =
            concat({bytes_of("cyc.round"), be64(round_),
                    crypto::digest_to_bytes(randomness_), be64(pow.pk.y)});
        if (crypto::pow_verify(challenge, crypto::pow_target_for_bits(
                                              params_.pow_bits),
                               {pow.nonce, pow.digest})) {
          registered_.insert(pow.node);
        }
        break;
      }
      case net::Tag::kBlock: {
        // Members refresh their shard view from the released block.
        if (self.committee >= 0) {
          const auto block = wire::BlockMsg::deserialize(msg.payload());
          for (const auto& tx : block.txs) self.utxo.apply(tx);
        }
        break;
      }
      case net::Tag::kBlockPermit: {
        // §VIII-B: permitted leader broadcasts its committee's sub-block.
        if (self.committee < 0) break;
        const std::uint32_t k = static_cast<std::uint32_t>(self.committee);
        if (self.id != committees_[k].current_leader) break;
        if (!committees_[k].intra_result) break;
        const auto decision =
            wire::IntraDecision::deserialize(*committees_[k].intra_result);
        wire::BlockMsg sub;
        sub.round = round_;
        sub.txs = decision.txdec_set;
        sub.randomness = next_randomness_;
        const auto payload = net::make_payload(sub.serialize());
        for (const auto& n : nodes_) {
          if (n.id == self.id) continue;
          net_->send_shared(self.id, n.id, net::Tag::kSubBlock, payload);
        }
        break;
      }
      case net::Tag::kSubBlock: {
        if (self.committee >= 0) {
          const auto sub = wire::BlockMsg::deserialize(msg.payload());
          for (const auto& tx : sub.txs) self.utxo.apply(tx);
        }
        break;
      }
      case net::Tag::kScoreList:
      case net::Tag::kAbort:
      case net::Tag::kUtxoHandoff:
      case net::Tag::kBeaconShare:
      case net::Tag::kPreCommQuery:
      case net::Tag::kPreCommReply:
        break;  // accounted, no further state transitions needed
      default:
        break;
    }
  } catch (const std::exception&) {
    // Malformed payloads from adversarial senders are dropped silently;
    // honest code never produces them.
  }
}

// ---------------------------------------------------------------------------
// Committee configuration (Alg. 2)
// ---------------------------------------------------------------------------

void Engine::on_config(NodeState& self, const net::Message& msg) {
  if (self.role != Role::kLeader && self.role != Role::kPartial) return;
  if (self.misbehaves(round_) && self.behavior == Behavior::kCrash) return;
  const auto intro = wire::Intro::deserialize(msg.payload());
  if (intro.ticket.committee != static_cast<std::uint32_t>(self.committee)) {
    return;
  }
  if (!verify_sortition(intro.pk, round_, randomness_, params_.m,
                        intro.ticket)) {
    return;
  }
  // Respond with the current list, then register the newcomer.
  wire::MemberListMsg list;
  for (const auto& pk : self.member_list) {
    const net::NodeId nid = node_of_pk(pk);
    list.nodes.push_back(nid);
    list.pks.push_back(pk);
  }
  net_->send(self.id, intro.node, net::Tag::kMemberList, list.serialize());
  if (self.known_pks.insert(intro.pk.y).second) {
    self.member_list.push_back(intro.pk);
  }
}

void Engine::on_member_list(NodeState& self, const net::Message& msg) {
  const auto list = wire::MemberListMsg::deserialize(msg.payload());
  std::vector<net::NodeId> fresh;
  for (std::size_t i = 0; i < list.pks.size(); ++i) {
    if (self.known_pks.insert(list.pks[i].y).second) {
      self.member_list.push_back(list.pks[i]);
      fresh.push_back(list.nodes[i]);
    }
  }
  // Introduce ourselves to previously unconnected members on the list.
  wire::Intro intro{self.id, self.keys.pk, self.ticket};
  const auto payload = net::make_payload(intro.serialize());
  for (net::NodeId peer : fresh) {
    if (peer == self.id) continue;
    net_->send_shared(self.id, peer, net::Tag::kMember, payload);
  }
}

void Engine::on_member(NodeState& self, const net::Message& msg) {
  const auto intro = wire::Intro::deserialize(msg.payload());
  if (intro.ticket.committee != static_cast<std::uint32_t>(self.committee)) {
    return;
  }
  if (!verify_sortition(intro.pk, round_, randomness_, params_.m,
                        intro.ticket)) {
    return;
  }
  if (self.known_pks.insert(intro.pk.y).second) {
    self.member_list.push_back(intro.pk);
  }
}

// ---------------------------------------------------------------------------
// Algorithm 3 plumbing
// ---------------------------------------------------------------------------

void Engine::send_consensus(net::NodeId from,
                            const std::vector<net::NodeId>& to, net::Tag tag,
                            std::uint32_t scope, std::uint64_t sn,
                            const Bytes& wire) {
  wire::ConsensusEnvelope env{scope, sn, wire};
  net_->multicast(from, to, tag, env.serialize());
}

void Engine::leader_start_instance(NodeState& self, std::uint32_t scope,
                                   std::uint64_t sn, Bytes message) {
  consensus::InstanceId iid{round_, sn};
  auto [it, inserted] = self.lead.try_emplace(
      sn, consensus::LeaderInstance(self.keys, iid, std::move(message),
                                    instance_size(scope)));
  if (!inserted) return;
  const auto peers = instance_peers(scope);

  if (self.misbehaves(round_) && self.behavior == Behavior::kEquivocator &&
      scope < params_.m) {
    // Propose the real message to half the committee and a divergent one
    // to the other half (detected via relayed PROPOSEs).
    const auto honest_wire = it->second.make_propose().serialize();
    const auto evil_wire =
        it->second.make_equivocating_propose(bytes_of("equivocation"))
            .serialize();
    std::vector<net::NodeId> first_half, second_half;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      (i % 2 == 0 ? first_half : second_half).push_back(peers[i]);
    }
    send_consensus(self.id, first_half, net::Tag::kPropose, scope, sn,
                   honest_wire);
    send_consensus(self.id, second_half, net::Tag::kPropose, scope, sn,
                   evil_wire);
    return;
  }

  const auto wire = it->second.make_propose().serialize();
  send_consensus(self.id, peers, net::Tag::kPropose, scope, sn, wire);
  // The leader processes its own proposal as a member too (it counts
  // toward the >C/2 quorum).
  auto [mit, minserted] = self.member.try_emplace(
      sn, consensus::MemberInstance(self.keys, self.id, iid, self.keys.pk,
                                    instance_size(scope)));
  if (minserted) {
    auto out = mit->second.on_propose(
        consensus::ProposeWire::deserialize(wire));
    process_member_output(self, scope, sn, std::move(out), net_->now());
  }
}

void Engine::process_member_output(NodeState& self, std::uint32_t scope,
                                   std::uint64_t sn,
                                   consensus::MemberOutput out,
                                   net::Time now) {
  if (out.witness && scope < params_.m && options_.recovery_enabled &&
      !self.misbehaves(round_)) {
    // Only partial-set members arouse the recovery procedure (§IV-B);
    // common members who catch the leader simply stop participating.
    if (self.role == Role::kPartial && !self.accused_this_round) {
      begin_accusation(self, scope, WitnessKind::kEquivocation,
                       out.witness->serialize(), now);
    }
    return;
  }
  if (out.echo_broadcast) {
    send_consensus(self.id, instance_peers(scope), net::Tag::kEcho, scope, sn,
                   out.echo_broadcast->serialize());
    // Deliver our echo to our own member instance as well.
    auto it = self.member.find(sn);
    if (it != self.member.end()) {
      auto echo_out = it->second.on_echo(*out.echo_broadcast);
      if (echo_out.confirm_to_leader && !out.confirm_to_leader) {
        out.confirm_to_leader = std::move(echo_out.confirm_to_leader);
      }
    }
  }
  if (out.confirm_to_leader) {
    const crypto::PublicKey leader_pk = expected_instance_leader(scope, sn);
    const net::NodeId leader_id = node_of_pk(leader_pk);
    if (leader_id == self.id) {
      auto lit = self.lead.find(sn);
      if (lit != self.lead.end()) {
        if (auto cert = lit->second.on_confirm(*out.confirm_to_leader)) {
          self.certs[sn] = *cert;
          on_cert(self, scope, sn, *cert);
        }
      }
    } else if (leader_id != net::kNoNode) {
      wire::ConsensusEnvelope env{scope, sn,
                                  out.confirm_to_leader->serialize()};
      net_->send(self.id, leader_id, net::Tag::kConfirm, env.serialize());
    }
  }
}

void Engine::on_consensus_msg(NodeState& self, const net::Message& msg,
                              net::Time now) {
  const auto env = wire::ConsensusEnvelope::deserialize(msg.payload());
  // Route by scope: committee members only participate in instances of
  // their own committee; referees in referee-scope instances.
  if (env.scope == params_.m) {
    if (self.role != Role::kReferee) return;
  } else {
    if (self.committee != static_cast<std::int64_t>(env.scope)) return;
  }

  const consensus::InstanceId iid{round_, env.sn};
  const crypto::PublicKey leader_pk =
      expected_instance_leader(env.scope, env.sn);

  if (msg.tag == net::Tag::kConfirm) {
    auto it = self.lead.find(env.sn);
    if (it == self.lead.end()) return;
    if (auto cert =
            it->second.on_confirm(consensus::ConfirmWire::deserialize(env.wire))) {
      self.certs[env.sn] = *cert;
      on_cert(self, env.scope, env.sn, *cert);
    }
    return;
  }

  auto [it, inserted] = self.member.try_emplace(
      env.sn, consensus::MemberInstance(self.keys, self.id, iid, leader_pk,
                                        instance_size(env.scope)));
  consensus::MemberOutput out;
  if (msg.tag == net::Tag::kPropose) {
    // Track leader engagement for the 2*Gamma concealment rule.
    if (env.scope < params_.m && is_cross_in_sn(env.sn)) {
      self.cross_seen_propose.insert(cross_in_origin(env.sn));
    }
    out = it->second.on_propose(consensus::ProposeWire::deserialize(env.wire));
  } else {
    out = it->second.on_echo(consensus::EchoWire::deserialize(env.wire));
  }
  process_member_output(self, env.scope, env.sn, std::move(out), now);
}

// ---------------------------------------------------------------------------
// Certificates: what each agreed instance triggers
// ---------------------------------------------------------------------------

void Engine::on_cert(NodeState& self, std::uint32_t scope, std::uint64_t sn,
                     const consensus::QuorumCert& cert) {
  // Every cert holder runs this handler; the formation instant fires only
  // for the first holder (obs_first_cert dedups on (scope, sn)).
  if (obs_ != nullptr && obs_first_cert(scope, sn)) {
    const std::uint32_t track = scope < params_.m
                                    ? obs::kTrackCommitteeBase + scope
                                    : obs::kTrackProtocol;
    obs_->trace.instant(track, "qc-formed", "consensus", net_->now(),
                        {{"scope", static_cast<double>(scope)},
                         {"sn", static_cast<double>(sn)},
                         {"signers",
                          static_cast<double>(cert.confirms.size())}});
    obs_->metrics.counter("consensus.certs").add();
  }
  if (scope == params_.m) {
    // Referee-scope instances.
    if (sn == kSnBlock) {
      // Block certified.
      auto it = self.lead.find(sn);
      if (it == self.lead.end()) return;
      if (options_.extension_parallel_blocks) {
        // §VIII-B: C_R only issues permissions; each leader broadcasts
        // its own sub-block, removing the O(mn) burden from C_R.
        const auto permit = net::make_payload(Bytes(40, 0));
        for (std::uint32_t k = 0; k < params_.m; ++k) {
          net_->send_shared(self.id, committees_[k].current_leader,
                            net::Tag::kBlockPermit, permit);
        }
        return;
      }
      // Release to the whole network (§IV-G): the O(mn) burden of
      // Table II. One shared buffer serves all n-1 receivers.
      const auto payload = net::make_payload(block_payload_);
      for (const auto& n : nodes_) {
        if (n.id == self.id) continue;
        net_->send_shared(self.id, n.id, net::Tag::kBlock, payload);
      }
      return;
    }
    if (sn >= 5000 && sn < 100000) {
      // Leader re-selection agreed: announce the new leader.
      const std::uint32_t k = static_cast<std::uint32_t>((sn - 5000) / 16);
      announce_new_leader(self, k);
      return;
    }
    if (sn >= 1000 && sn < 5000) {
      // Semi-commitment accepted by C_R: relay to all key members.
      const std::uint32_t k = static_cast<std::uint32_t>(sn - 1000);
      wire::SemiCommitAck ack;
      ack.committee = k;
      auto cit = self.commitments.find(k);
      auto lit = self.lists.find(k);
      if (cit == self.commitments.end() || lit == self.lists.end()) return;
      ack.commitment = cit->second;
      ack.members = lit->second;
      ack.cert = cert.serialize();
      const auto payload = net::make_payload(ack.serialize());
      for (std::uint32_t j = 0; j < params_.m; ++j) {
        for (net::NodeId km : assign_.committees[j].key_members()) {
          net_->send_shared(self.id, km, net::Tag::kSemiCommitAck, payload);
        }
      }
      return;
    }
    return;
  }

  // Committee-scope instances: only the current leader acts on certs.
  if (self.id != committees_[scope].current_leader) return;
  const std::uint32_t k = scope;

  if (sn >= 100 && sn < 150) {
    // Intra-committee decision certified -> report to C_R (Alg. 5 l.19).
    auto it = self.lead.find(sn);
    if (it == self.lead.end()) return;
    wire::CertifiedResult result;
    result.payload = committees_[k].pending_intra_payload;
    result.cert = cert.serialize();
    const auto payload = net::make_payload(result.serialize());
    for (net::NodeId rm : assign_.referees) {
      net_->send_shared(self.id, rm, net::Tag::kIntraResult, payload);
    }
    self.sent_intra_result = true;
    return;
  }
  if (sn >= 150 && sn < 180) {
    // ScoreList certified -> report to C_R (§IV-E).
    wire::CertifiedResult result;
    result.payload = committees_[k].pending_score_payload;
    result.cert = cert.serialize();
    const auto payload = net::make_payload(result.serialize());
    for (net::NodeId rm : assign_.referees) {
      net_->send_shared(self.id, rm, net::Tag::kScoreReport, payload);
    }
    return;
  }
  if (sn >= 180 && sn < 200) {
    // Final UTXO list certified -> hand off to C_R, which forwards to the
    // next round's partial sets (§IV-G).
    Writer w;
    w.u32(k);
    w.bytes(crypto::digest_to_bytes(self.utxo.digest()));
    w.bytes(cert.serialize());
    const auto payload = net::make_payload(w.take());
    for (net::NodeId rm : assign_.referees) {
      net_->send_shared(self.id, rm, net::Tag::kUtxoHandoff, payload);
    }
    return;
  }
  if (sn >= 1000 && sn < 100000) {
    // Cross-out list certified -> send to destination leader and its
    // partial set (§IV-D; the hint enables the 2*Gamma rule of Lemma 7).
    const std::uint32_t dest = static_cast<std::uint32_t>((sn - 1000) / 16);
    auto pit = committees_[k].pending_cross_out.find(dest);
    if (pit == committees_[k].pending_cross_out.end()) return;
    wire::CrossTxListMsg request =
        wire::CrossTxListMsg::deserialize(pit->second);
    request.origin_cert = cert.serialize();
    pit->second = request.serialize();
    const auto payload = net::make_payload(pit->second);
    const net::NodeId dest_leader = committees_[dest].current_leader;
    net_->send_shared(self.id, dest_leader, net::Tag::kCrossTxList, payload);
    for (net::NodeId pm : assign_.committees[dest].partial) {
      net_->send_shared(self.id, pm, net::Tag::kCrossPartialHint, payload);
    }
    return;
  }
  if (is_cross_in_sn(sn)) {
    // Acceptance certified -> reply to the origin leader and inform C_R.
    const std::uint32_t origin = cross_in_origin(sn);
    auto rit = self.cross_in.find(origin);
    if (rit == self.cross_in.end()) return;
    wire::CrossResultMsg result;
    result.request = wire::CrossTxListMsg::deserialize(rit->second);
    result.dest_cert = cert.serialize();
    result.dest_members = committee_pks(k);
    const auto payload = net::make_payload(result.serialize());
    net_->send_shared(self.id, committees_[origin].current_leader,
                      net::Tag::kCrossResult, payload);
    for (net::NodeId rm : assign_.referees) {
      net_->send_shared(self.id, rm, net::Tag::kCrossResult, payload);
    }
    self.cross_done.insert(origin);
    return;
  }
}

}  // namespace cyc::protocol
