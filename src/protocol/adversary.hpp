// Adversary model (§III-C).
//
// A mildly-adaptive adversary controls < 1/3 of the nodes. Corruption can
// be requested at the start of any round but takes one full round to take
// effect. Corrupted nodes collude and may act arbitrarily; we implement
// the concrete misbehaviours the paper's security section reasons about,
// so every detection path (Theorems 2/5/8, Claims 3/4) is exercised.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "support/rng.hpp"

namespace cyc::protocol {

enum class Behavior : std::uint8_t {
  kHonest = 0,
  /// Pretends to be offline: never sends anything (also models fail-stop).
  kCrash,
  /// As leader, proposes different messages to different members in
  /// Algorithm 3 (detected via relayed PROPOSEs -> EquivocationWitness).
  kEquivocator,
  /// As leader, publishes a semi-commitment that does not match the
  /// member list it distributes (detected by C_R / partial set, §V-D).
  kCommitForger,
  /// As leader, conceals incoming cross-shard TX lists from its
  /// committee (detected by the partial set via the 2*Gamma rule,
  /// Lemmas 6/7).
  kConcealer,
  /// As member, votes the inverse of its honest judgment.
  kInverseVoter,
  /// As member, votes uniformly at random.
  kRandomVoter,
  /// As member, always votes Unknown — free-rides at g(0)=1 (§IV-G
  /// discusses exactly these nodes).
  kLazyVoter,
  /// As leader, fabricates a cross-shard result with a forged
  /// certificate (the "imitate" half of Lemma 6) — must be rejected by
  /// every verifier.
  kImitator,
  /// As partial-set member, tries to frame an honest leader with a
  /// fabricated witness (must never succeed, Claim 4).
  kFramer,
};

std::string_view behavior_name(Behavior b);

/// True if the behaviour only manifests when the node holds a leader
/// role; such nodes act as inverse voters when they are common members.
bool is_leader_behavior(Behavior b);

struct AdversaryConfig {
  /// Fraction of all nodes corrupted at genesis (< 1/3 per threat model;
  /// callers may exceed it deliberately to probe failure).
  double corrupt_fraction = 0.0;

  /// Sampling weights over misbehaviours for corrupted nodes. Zero-weight
  /// entries are never drawn. Defaults exercise every detection path.
  struct Weight {
    Behavior behavior;
    double weight;
  };
  std::vector<Weight> mix = {
      {Behavior::kCrash, 1.0},        {Behavior::kEquivocator, 1.0},
      {Behavior::kCommitForger, 1.0}, {Behavior::kConcealer, 1.0},
      {Behavior::kInverseVoter, 1.0}, {Behavior::kRandomVoter, 1.0},
      {Behavior::kFramer, 0.5},
  };

  /// If >= 0, force this fraction of round-1 leaders to be corrupted
  /// (used by the dishonest-leader experiments, Table I row 6).
  double forced_corrupt_leader_fraction = -1.0;

  Behavior sample(rng::Stream& rng) const;
};

}  // namespace cyc::protocol
