#include "crypto/pow.hpp"

namespace cyc::crypto {

namespace {
Digest puzzle_hash(BytesView challenge, std::uint64_t nonce) {
  return sha256_concat({bytes_of("cyc.pow"), challenge, be64(nonce)});
}
}  // namespace

bool pow_verify(BytesView challenge, std::uint64_t target,
                const PowSolution& solution) {
  const Digest d = puzzle_hash(challenge, solution.nonce);
  if (d != solution.digest) return false;
  return digest_prefix_u64(d) < target;
}

std::optional<PowSolution> pow_solve(BytesView challenge, std::uint64_t target,
                                     std::uint64_t start,
                                     std::uint64_t max_iters) {
  for (std::uint64_t i = 0; i < max_iters; ++i) {
    const std::uint64_t nonce = start + i;
    const Digest d = puzzle_hash(challenge, nonce);
    if (digest_prefix_u64(d) < target) {
      return PowSolution{nonce, d};
    }
  }
  return std::nullopt;
}

std::uint64_t pow_target_for_bits(unsigned bits) {
  if (bits == 0) return ~0ull;
  if (bits >= 64) return 1;
  return 1ull << (64 - bits);
}

double pow_expected_work(std::uint64_t target) {
  if (target == 0) return 0.0;
  return 18446744073709551616.0 /* 2^64 */ / static_cast<double>(target);
}

}  // namespace cyc::crypto
