#include "crypto/pow.hpp"

namespace cyc::crypto {

namespace {
// Midstate with the fixed prefix ("cyc.pow" || challenge) absorbed; each
// attempt clones it and appends only the nonce. The byte stream — and so
// every digest — is identical to hashing the concatenation in one go.
Sha256 puzzle_prefix(BytesView challenge) {
  Sha256 ctx;
  ctx.update("cyc.pow");
  ctx.update(challenge);
  return ctx;
}

Digest puzzle_hash(const Sha256& prefix, std::uint64_t nonce) {
  Sha256 ctx = prefix;
  return ctx.update_u64(nonce).finalize();
}
}  // namespace

bool pow_verify(BytesView challenge, std::uint64_t target,
                const PowSolution& solution) {
  const Digest d = puzzle_hash(puzzle_prefix(challenge), solution.nonce);
  if (d != solution.digest) return false;
  return digest_prefix_u64(d) < target;
}

std::optional<PowSolution> pow_solve(BytesView challenge, std::uint64_t target,
                                     std::uint64_t start,
                                     std::uint64_t max_iters) {
  const Sha256 prefix = puzzle_prefix(challenge);
  for (std::uint64_t i = 0; i < max_iters; ++i) {
    const std::uint64_t nonce = start + i;
    const Digest d = puzzle_hash(prefix, nonce);
    if (digest_prefix_u64(d) < target) {
      return PowSolution{nonce, d};
    }
  }
  return std::nullopt;
}

std::uint64_t pow_target_for_bits(unsigned bits) {
  if (bits == 0) return ~0ull;
  if (bits >= 64) return 1;
  return 1ull << (64 - bits);
}

double pow_expected_work(std::uint64_t target) {
  if (target == 0) return 0.0;
  return 18446744073709551616.0 /* 2^64 */ / static_cast<double>(target);
}

}  // namespace cyc::crypto
