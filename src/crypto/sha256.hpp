// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the protocol's external collision-resistant hash function H
// (§III-C): it backs semi-commitments, Merkle trees, the VRF output map,
// the PoW puzzle and the role-selection difficulty inequality of §IV-F.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace cyc::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
///
/// Contexts are cheap to copy, which enables midstate reuse: hash a fixed
/// prefix once, then clone the context for every suffix (the PoW solver
/// leans on this — its 64-byte per-node prefix costs one compression
/// total instead of one per nonce attempt).
class Sha256 {
 public:
  Sha256();

  Sha256& update(BytesView data);
  Sha256& update(std::string_view s);

  /// Append the big-endian encoding of `v` (identical bytes to be64(v))
  /// without a heap allocation.
  Sha256& update_u64(std::uint64_t v);

  /// Finalize and return the digest. The context must not be reused
  /// afterwards (construct a fresh one).
  Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot hash.
Digest sha256(BytesView data);

/// One-shot hash returning a Bytes copy (convenient for serialization).
Bytes sha256_bytes(BytesView data);

/// Hash of the concatenation of several byte strings (unambiguous because
/// callers pass canonical serde encodings).
Digest sha256_concat(std::initializer_list<BytesView> parts);

/// First 8 bytes of the digest as a big-endian integer — used by the
/// sortition `hash mod m` step (Alg. 1) and difficulty comparisons (§IV-F).
std::uint64_t digest_prefix_u64(const Digest& d);

/// Bytes view helpers.
Bytes digest_to_bytes(const Digest& d);
Digest digest_from_bytes(BytesView b);

}  // namespace cyc::crypto
