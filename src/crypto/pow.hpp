// Proof-of-Work participation puzzle (§IV-F).
//
// Nodes who want to take part in round r+1 must solve a hash-preimage
// puzzle of uniform difficulty and submit the solution to the referee
// committee, which registers their identity. The puzzle is Sybil
// resistance only; its difficulty is a parameter, not a consensus rule.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace cyc::crypto {

struct PowSolution {
  std::uint64_t nonce = 0;
  Digest digest{};
};

/// A solution is valid when the 64-bit big-endian prefix of
/// H(challenge || nonce) is strictly below `target`.
bool pow_verify(BytesView challenge, std::uint64_t target,
                const PowSolution& solution);

/// Search nonces [start, start + max_iters) for a valid solution.
std::optional<PowSolution> pow_solve(BytesView challenge, std::uint64_t target,
                                     std::uint64_t start,
                                     std::uint64_t max_iters);

/// Target value for a difficulty of `bits` leading zero bits.
std::uint64_t pow_target_for_bits(unsigned bits);

/// Expected number of hash evaluations to solve at `target`.
double pow_expected_work(std::uint64_t target);

}  // namespace cyc::crypto
