// SCRAPE-style Publicly Verifiable Secret Sharing and the randomness
// beacon built from it (§IV-F, §V-A).
//
// Each dealer shares a secret scalar with a degree-t polynomial. The
// dealer publishes exponent commitments C_j = g^{a_j}; every share s_i is
// publicly checkable against the commitments via
//     g^{s_i} == prod_j C_j^{i^j}  (polynomial evaluation in the exponent)
// so a cheating dealer is caught immediately. Any t+1 valid shares
// reconstruct the secret by Lagrange interpolation at zero.
//
// The beacon aggregates one sharing per referee-committee member: the
// round randomness is H(sum of all qualified dealers' secrets). As long
// as a majority of C_R is honest (t = floor((k-1)/2) with k dealers), at
// least one honest dealer's secret enters the sum before any adversary
// must commit to its own shares, so the output is unbiased — the property
// §V-A relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/field.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace cyc::crypto {

struct PvssShare {
  std::uint64_t index = 0;  ///< evaluation point i (1-based)
  std::uint64_t value = 0;  ///< s_i = f(i) mod q
};

struct PvssDealing {
  std::vector<std::uint64_t> commitments;  ///< C_j = g^{a_j}, j = 0..t
  std::vector<PvssShare> shares;           ///< one share per participant

  std::size_t threshold() const { return commitments.size() - 1; }
};

/// Deal a sharing of `secret` for `participants` holders with threshold t
/// (any t+1 shares reconstruct; t or fewer reveal nothing).
PvssDealing pvss_deal(std::uint64_t secret, std::size_t participants,
                      std::size_t t, rng::Stream& rng);

/// Publicly verify share `share` against the dealer's commitments.
bool pvss_verify_share(const std::vector<std::uint64_t>& commitments,
                       const PvssShare& share);

/// Reconstruct the secret from >= t+1 distinct valid shares. Returns
/// nullopt if fewer than t+1 distinct indices are supplied.
std::optional<std::uint64_t> pvss_reconstruct(
    const std::vector<PvssShare>& shares, std::size_t t);

/// The dealer's committed secret-in-the-exponent, g^secret = C_0.
/// Reconstruction can be validated against it.
std::uint64_t pvss_committed_secret(
    const std::vector<std::uint64_t>& commitments);

// ---------------------------------------------------------------------------
// Randomness beacon
// ---------------------------------------------------------------------------

/// One beacon run over k dealers (the members of C_R). Dealers whose
/// dealings fail public verification are disqualified; the remaining
/// secrets are reconstructed and summed. Returns the 32-byte round
/// randomness R^{r+1} = H("cyc.beacon" || round || sum).
struct BeaconResult {
  Digest randomness{};
  std::vector<std::size_t> disqualified;  ///< dealer indices dropped
};

class RandomnessBeacon {
 public:
  /// `dealer_secrets[i]` is dealer i's secret contribution; dealers listed
  /// in `cheaters` publish one corrupted share (simulating a malicious
  /// referee member) and must be disqualified by verification.
  static BeaconResult run(std::uint64_t round,
                          const std::vector<std::uint64_t>& dealer_secrets,
                          const std::vector<std::size_t>& cheaters,
                          rng::Stream& rng);
};

}  // namespace cyc::crypto
