// Schnorr signatures over the order-q subgroup of Z_p^* (Fiat–Shamir via
// SHA-256, deterministic nonces).
//
// This is the digital-signature scheme the protocol assumes in §IV-A
// ("all messages are sent authentically via the digital signature
// scheme"). Signatures are publicly verifiable: anyone holding the public
// key can check them, which the leader re-selection procedure (Alg. 6)
// relies on — a witness is only valid if it contains a message *signed by
// the accused leader* (Claim 4).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/field.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace cyc::crypto {

struct PublicKey {
  std::uint64_t y = 0;  ///< g^x mod p

  Bytes serialize() const;
  static PublicKey deserialize(BytesView b);
  bool operator==(const PublicKey&) const = default;
  auto operator<=>(const PublicKey&) const = default;
};

struct SecretKey {
  std::uint64_t x = 0;  ///< scalar in [1, q)
};

struct KeyPair {
  SecretKey sk;
  PublicKey pk;

  /// Deterministic key generation from a seed stream.
  static KeyPair generate(rng::Stream& rng);
  /// Deterministic key generation from a raw seed value.
  static KeyPair from_seed(std::uint64_t seed);
};

struct Signature {
  std::uint64_t r = 0;  ///< commitment R = g^k mod p
  std::uint64_t s = 0;  ///< response s = k + e*x mod q

  Bytes serialize() const;
  static Signature deserialize(BytesView b);
  bool operator==(const Signature&) const = default;
};

/// Sign `msg` with deterministic nonce k = H(sk || msg) mod q.
Signature sign(const SecretKey& sk, BytesView msg);

/// Verify: g^s == R * y^e (mod p) with e = H(R || y || msg) mod q.
bool verify(const PublicKey& pk, BytesView msg, const Signature& sig);

/// A (signer, payload, signature) triple — the `SIG_i <...>` objects that
/// appear throughout Algorithms 3–6. `payload` is the canonical serde
/// encoding of the inner message.
struct SignedMessage {
  PublicKey signer;
  Bytes payload;
  Signature sig;

  bool valid() const { return verify(signer, payload, sig); }

  Bytes serialize() const;
  static SignedMessage deserialize(BytesView b);
  bool operator==(const SignedMessage&) const = default;
};

/// Convenience: build a SignedMessage over `payload`.
SignedMessage make_signed(const KeyPair& keys, BytesView payload);

}  // namespace cyc::crypto
