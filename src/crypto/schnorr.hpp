// Schnorr signatures over the order-q subgroup of Z_p^* (Fiat–Shamir via
// SHA-256, deterministic nonces).
//
// This is the digital-signature scheme the protocol assumes in §IV-A
// ("all messages are sent authentically via the digital signature
// scheme"). Signatures are publicly verifiable: anyone holding the public
// key can check them, which the leader re-selection procedure (Alg. 6)
// relies on — a witness is only valid if it contains a message *signed by
// the accused leader* (Claim 4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/field.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace cyc::crypto {

struct PublicKey {
  std::uint64_t y = 0;  ///< g^x mod p

  Bytes serialize() const;
  static PublicKey deserialize(BytesView b);
  bool operator==(const PublicKey&) const = default;
  auto operator<=>(const PublicKey&) const = default;
};

struct SecretKey {
  std::uint64_t x = 0;  ///< scalar in [1, q)
};

struct KeyPair {
  SecretKey sk;
  PublicKey pk;

  /// Deterministic key generation from a seed stream.
  static KeyPair generate(rng::Stream& rng);
  /// Deterministic key generation from a raw seed value.
  static KeyPair from_seed(std::uint64_t seed);
};

struct Signature {
  std::uint64_t r = 0;  ///< commitment R = g^k mod p
  std::uint64_t s = 0;  ///< response s = k + e*x mod q

  Bytes serialize() const;
  static Signature deserialize(BytesView b);
  bool operator==(const Signature&) const = default;
};

/// Sign `msg` with deterministic nonce k = H(sk || msg) mod q.
Signature sign(const SecretKey& sk, BytesView msg);

/// Verify: g^s == R * y^e (mod p) with e = H(R || y || msg) mod q.
/// Always performs the full check (no memoization) — `verify_cached` /
/// `SignedMessage::valid` are the cached entry points.
bool verify(const PublicKey& pk, BytesView msg, const Signature& sig);

/// Memoized verification for raw (pk, msg, sig) triples — the same
/// verdict cache that backs SignedMessage::valid. Transaction signature
/// checks go through here: every committee member judges the same
/// transactions, so each distinct signature is verified once per thread.
bool verify_cached(const PublicKey& pk, BytesView msg, const Signature& sig);

/// Thread-local memoization of verification verdicts, keyed on a digest
/// of the full (signer, payload, signature) content. The same signed
/// object is typically verified by every simulated node that receives it
/// (relayed PROPOSEs inside echoes, confirm lists inside certificates,
/// semi-commitments fanned out to referees and partial sets); the cache
/// collapses those repeats into one Schnorr verification per distinct
/// content. Verdicts are pure functions of content, so caching cannot
/// change any protocol outcome, and mutating a message changes its key,
/// so stale verdicts are unreachable.
namespace verify_cache {
std::uint64_t hits();
std::uint64_t misses();
/// Drop all entries and zero the counters (tests and long sweeps).
void clear();
}  // namespace verify_cache

/// A (signer, payload, signature) triple — the `SIG_i <...>` objects that
/// appear throughout Algorithms 3–6. `payload` is the canonical serde
/// encoding of the inner message.
struct SignedMessage {
  PublicKey signer;
  Bytes payload;
  Signature sig;

  /// Memoized verification (see verify_cache above).
  bool valid() const;

  /// Content fingerprint used as the cache key.
  std::uint64_t fingerprint() const;

  Bytes serialize() const;
  static SignedMessage deserialize(BytesView b);
  bool operator==(const SignedMessage&) const = default;
};

/// Convenience: build a SignedMessage over `payload`.
SignedMessage make_signed(const KeyPair& keys, BytesView payload);

/// Batch verification: true iff every message verifies. Uses the
/// small-exponent batching trick — one shared g^S exponentiation plus a
/// short (32-bit) R_i^{z_i} per signature instead of two full-width
/// exponentiations each — and consults / populates the verification
/// cache. When the aggregate check fails the messages are re-verified
/// individually so the cache still ends up with per-message verdicts.
/// The coefficients mix the message contents with a per-process random
/// salt, so signature errors cannot be crafted to cancel in the
/// aggregate.
bool verify_batch(const std::vector<const SignedMessage*>& msgs);

}  // namespace cyc::crypto
