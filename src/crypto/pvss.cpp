#include "crypto/pvss.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace cyc::crypto {

namespace {

/// Evaluate f(x) = sum a_j x^j mod q by Horner's rule.
std::uint64_t poly_eval(const std::vector<std::uint64_t>& coeffs,
                        std::uint64_t x) {
  std::uint64_t acc = 0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
    acc = add_q(mul_q(acc, x), *it);
  }
  return acc;
}

}  // namespace

PvssDealing pvss_deal(std::uint64_t secret, std::size_t participants,
                      std::size_t t, rng::Stream& rng) {
  if (participants == 0 || t >= participants) {
    throw std::invalid_argument("pvss_deal: need 0 <= t < participants");
  }
  std::vector<std::uint64_t> coeffs(t + 1);
  coeffs[0] = secret % kQ;
  for (std::size_t j = 1; j <= t; ++j) coeffs[j] = rng.below(kQ);

  PvssDealing dealing;
  dealing.commitments.reserve(t + 1);
  for (std::uint64_t a : coeffs) dealing.commitments.push_back(g_pow(a));

  dealing.shares.reserve(participants);
  for (std::size_t i = 1; i <= participants; ++i) {
    dealing.shares.push_back(
        PvssShare{i, poly_eval(coeffs, static_cast<std::uint64_t>(i))});
  }
  return dealing;
}

bool pvss_verify_share(const std::vector<std::uint64_t>& commitments,
                       const PvssShare& share) {
  if (commitments.empty() || share.index == 0) return false;
  // rhs = prod_j C_j^{i^j}; accumulate i^j incrementally mod q.
  std::uint64_t rhs = 1;
  std::uint64_t power = 1;  // i^j mod q
  for (std::uint64_t commitment : commitments) {
    rhs = gmul(rhs, gpow(commitment, power));
    power = mul_q(power, share.index);
  }
  return g_pow(share.value) == rhs;
}

std::optional<std::uint64_t> pvss_reconstruct(
    const std::vector<PvssShare>& shares, std::size_t t) {
  // Deduplicate indices; we need t+1 distinct evaluation points.
  std::vector<PvssShare> pts;
  std::unordered_set<std::uint64_t> seen;
  for (const auto& s : shares) {
    if (s.index != 0 && seen.insert(s.index).second) pts.push_back(s);
    if (pts.size() == t + 1) break;
  }
  if (pts.size() < t + 1) return std::nullopt;

  // Lagrange interpolation at x = 0 over Z_q:
  //   f(0) = sum_i s_i * prod_{j != i} x_j / (x_j - x_i)
  std::uint64_t secret = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::uint64_t num = 1;
    std::uint64_t den = 1;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j == i) continue;
      num = mul_q(num, pts[j].index % kQ);
      den = mul_q(den, sub_q(pts[j].index, pts[i].index));
    }
    const std::uint64_t lagrange = mul_q(num, inv_mod_q(den));
    secret = add_q(secret, mul_q(pts[i].value, lagrange));
  }
  return secret;
}

std::uint64_t pvss_committed_secret(
    const std::vector<std::uint64_t>& commitments) {
  if (commitments.empty()) {
    throw std::invalid_argument("pvss_committed_secret: empty commitments");
  }
  return commitments.front();
}

BeaconResult RandomnessBeacon::run(
    std::uint64_t round, const std::vector<std::uint64_t>& dealer_secrets,
    const std::vector<std::size_t>& cheaters, rng::Stream& rng) {
  const std::size_t k = dealer_secrets.size();
  if (k == 0) throw std::invalid_argument("beacon: no dealers");
  const std::size_t t = (k - 1) / 2;  // honest-majority threshold

  std::unordered_set<std::size_t> cheater_set(cheaters.begin(),
                                              cheaters.end());
  BeaconResult result;
  std::uint64_t sum = 0;
  for (std::size_t d = 0; d < k; ++d) {
    rng::Stream dealer_rng = rng.fork(d);
    PvssDealing dealing = pvss_deal(dealer_secrets[d], k, t, dealer_rng);
    if (cheater_set.contains(d) && !dealing.shares.empty()) {
      // A malicious dealer corrupts one published share.
      dealing.shares[0].value = add_q(dealing.shares[0].value, 1);
    }
    // Public verification of every share; any failure disqualifies the
    // dealer (SCRAPE's public verifiability).
    bool all_valid = true;
    for (const auto& share : dealing.shares) {
      if (!pvss_verify_share(dealing.commitments, share)) {
        all_valid = false;
        break;
      }
    }
    if (!all_valid) {
      result.disqualified.push_back(d);
      continue;
    }
    // Reconstruct from the first t+1 shares and check it matches the
    // commitment C_0 = g^secret.
    const auto secret = pvss_reconstruct(dealing.shares, t);
    if (!secret || g_pow(*secret) != pvss_committed_secret(dealing.commitments)) {
      result.disqualified.push_back(d);
      continue;
    }
    sum = add_q(sum, *secret);
  }

  result.randomness =
      sha256_concat({bytes_of("cyc.beacon"), be64(round), be64(sum)});
  return result;
}

}  // namespace cyc::crypto
