#include "crypto/field.hpp"

#include <initializer_list>

namespace cyc::crypto {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::uint64_t inv_mod_q(std::uint64_t a) {
  return powmod(a % kQ, kQ - 2, kQ);
}

std::uint64_t add_q(std::uint64_t a, std::uint64_t b) {
  a %= kQ;
  b %= kQ;
  const std::uint64_t s = a + b;
  return s >= kQ ? s - kQ : s;
}

std::uint64_t sub_q(std::uint64_t a, std::uint64_t b) {
  a %= kQ;
  b %= kQ;
  return a >= b ? a - b : a + kQ - b;
}

std::uint64_t mul_q(std::uint64_t a, std::uint64_t b) {
  return mulmod(a % kQ, b % kQ, kQ);
}

std::uint64_t g_pow(std::uint64_t e) { return powmod(kG, e % kQ, kP); }

std::uint64_t gmul(std::uint64_t a, std::uint64_t b) {
  return mulmod(a, b, kP);
}

std::uint64_t gpow(std::uint64_t base, std::uint64_t e) {
  return powmod(base, e % kQ, kP);
}

bool in_group(std::uint64_t x) {
  if (x == 0 || x >= kP) return false;
  return powmod(x, kQ, kP) == 1;
}

bool is_probable_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // These witnesses are deterministic for all 64-bit integers.
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = powmod(a % n, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace cyc::crypto
