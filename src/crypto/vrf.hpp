// Verifiable Random Function built on deterministic Schnorr.
//
// This implements the VRF interface of Alg. 1 (cryptographic sortition):
//   <hash, pi> <- VRF_SK(input)
// where `hash` is pseudorandom and `pi` lets anyone verify that `hash`
// was correctly derived from (PK, input). Construction: the prover signs
// the domain-separated input with a deterministic nonce; the VRF output
// is H(R) where R is the (unique, deterministic) Schnorr commitment, and
// the proof is the signature itself. Uniqueness of the output for a given
// (SK, input) follows from the deterministic nonce; verifiability follows
// from signature verification plus recomputing H(R).
#pragma once

#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace cyc::crypto {

struct VrfOutput {
  Digest hash{};        ///< pseudorandom 32-byte output
  Signature proof;      ///< Schnorr signature acting as proof pi

  Bytes serialize() const;
  static VrfOutput deserialize(BytesView b);
  bool operator==(const VrfOutput&) const = default;
};

/// Evaluate the VRF on `input`.
VrfOutput vrf_prove(const SecretKey& sk, BytesView input);

/// Verify that `out` is the unique VRF output of `pk` on `input`.
bool vrf_verify(const PublicKey& pk, BytesView input, const VrfOutput& out);

}  // namespace cyc::crypto
