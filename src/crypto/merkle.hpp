// Binary Merkle tree with domain-separated leaf/node hashing.
//
// Used for block bodies (§IV-G): the referee committee commits to the set
// of packed TXdecSETs, and committee members verify inclusion of their
// shard's transactions without storing the whole block body (the O(c)
// storage row of Table II).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace cyc::crypto {

struct MerkleProof {
  std::uint64_t index = 0;          ///< leaf position
  std::vector<Digest> siblings;     ///< bottom-up sibling hashes

  Bytes serialize() const;
  static MerkleProof deserialize(BytesView b);
};

class MerkleTree {
 public:
  /// Build a tree over the given leaf payloads. An empty leaf set yields
  /// the hash of the empty string as root (a defined sentinel).
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  Digest root() const;
  std::size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for leaf `index`. Throws std::out_of_range if the
  /// index is beyond the leaf count.
  MerkleProof prove(std::uint64_t index) const;

  /// Verify that `leaf` is at `proof.index` under `root`.
  static bool verify(const Digest& root, BytesView leaf,
                     const MerkleProof& proof);

 private:
  std::size_t leaf_count_;
  std::vector<std::vector<Digest>> levels_;  ///< levels_[0] = leaf hashes
};

}  // namespace cyc::crypto
