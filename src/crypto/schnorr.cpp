#include "crypto/schnorr.hpp"

#include <random>
#include <unordered_map>

#include "support/serde.hpp"

namespace cyc::crypto {

namespace {

// A 64-bit digest prefix reduced mod the 60-bit q has negligible bias for
// the simulation-security level we target. These helpers hash the same
// byte streams as the original sha256_concat formulations but without any
// intermediate heap allocations — signing and verifying are the single
// hottest hash consumers in a simulation round.
std::uint64_t nonce_scalar(const SecretKey& sk, BytesView msg) {
  Sha256 ctx;
  ctx.update("cyc.nonce");
  ctx.update_u64(sk.x);
  ctx.update(msg);
  return digest_prefix_u64(ctx.finalize()) % kQ;
}

std::uint64_t challenge_scalar(std::uint64_t r, std::uint64_t y,
                               BytesView msg) {
  Sha256 ctx;
  ctx.update("cyc.chal");
  ctx.update_u64(r);
  ctx.update_u64(y);
  ctx.update(msg);
  return digest_prefix_u64(ctx.finalize()) % kQ;
}

// Thread-local verdict cache. Bounded so unbounded sweeps cannot grow it
// without limit; a full wipe on overflow keeps the policy deterministic.
constexpr std::size_t kCacheMaxEntries = 1u << 20;
struct VerdictCache {
  std::unordered_map<std::uint64_t, bool> verdicts;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
thread_local VerdictCache t_cache;

/// The challenge scalar of the verification equation.
std::uint64_t challenge(const PublicKey& pk, BytesView msg,
                        const Signature& sig) {
  return challenge_scalar(sig.r, pk.y, msg);
}

/// Structural sanity shared by single and batch verification.
bool shape_ok(const PublicKey& pk, const Signature& sig) {
  return in_group(pk.y) && in_group(sig.r) && sig.s < kQ;
}

/// Cache key: digest over the full (signer, signature, message) content.
std::uint64_t content_fp(const PublicKey& pk, BytesView msg,
                         const Signature& sig) {
  Sha256 ctx;
  ctx.update("cyc.sm.fp");
  ctx.update_u64(pk.y);
  ctx.update_u64(sig.r);
  ctx.update_u64(sig.s);
  ctx.update(msg);
  return digest_prefix_u64(ctx.finalize());
}

}  // namespace

namespace verify_cache {

std::uint64_t hits() { return t_cache.hits; }
std::uint64_t misses() { return t_cache.misses; }
void clear() { t_cache = VerdictCache{}; }

}  // namespace verify_cache

Bytes PublicKey::serialize() const { return be64(y); }

PublicKey PublicKey::deserialize(BytesView b) { return PublicKey{read_be64(b)}; }

KeyPair KeyPair::generate(rng::Stream& rng) {
  SecretKey sk{1 + rng.below(kQ - 1)};
  return KeyPair{sk, PublicKey{g_pow(sk.x)}};
}

KeyPair KeyPair::from_seed(std::uint64_t seed) {
  rng::Stream stream(seed);
  return generate(stream);
}

Bytes Signature::serialize() const {
  Writer w;
  w.u64(r);
  w.u64(s);
  return w.take();
}

Signature Signature::deserialize(BytesView b) {
  Reader rd(b);
  Signature sig;
  sig.r = rd.u64();
  sig.s = rd.u64();
  return sig;
}

Signature sign(const SecretKey& sk, BytesView msg) {
  std::uint64_t k = nonce_scalar(sk, msg);
  if (k == 0) k = 1;  // k must be a unit; probability 1/q, handled anyway
  const std::uint64_t r = g_pow(k);
  const std::uint64_t y = g_pow(sk.x);
  const std::uint64_t e = challenge_scalar(r, y, msg);
  const std::uint64_t s = add_q(k, mul_q(e, sk.x));
  return Signature{r, s};
}

bool verify(const PublicKey& pk, BytesView msg, const Signature& sig) {
  if (!shape_ok(pk, sig)) return false;
  const std::uint64_t e = challenge(pk, msg, sig);
  const std::uint64_t lhs = g_pow(sig.s);
  const std::uint64_t rhs = gmul(sig.r, gpow(pk.y, e));
  return lhs == rhs;
}

bool verify_cached(const PublicKey& pk, BytesView msg, const Signature& sig) {
  const std::uint64_t fp = content_fp(pk, msg, sig);
  auto it = t_cache.verdicts.find(fp);
  if (it != t_cache.verdicts.end()) {
    ++t_cache.hits;
    return it->second;
  }
  ++t_cache.misses;
  const bool ok = verify(pk, msg, sig);
  if (t_cache.verdicts.size() >= kCacheMaxEntries) t_cache.verdicts.clear();
  t_cache.verdicts.emplace(fp, ok);
  return ok;
}

std::uint64_t SignedMessage::fingerprint() const {
  return content_fp(signer, payload, sig);
}

bool SignedMessage::valid() const {
  return verify_cached(signer, payload, sig);
}

bool verify_batch(const std::vector<const SignedMessage*>& msgs) {
  // Resolve what we can from the cache first.
  std::vector<const SignedMessage*> unknown;
  std::vector<std::uint64_t> unknown_fp;
  bool all_ok = true;
  for (const SignedMessage* sm : msgs) {
    const std::uint64_t fp = sm->fingerprint();
    auto it = t_cache.verdicts.find(fp);
    if (it != t_cache.verdicts.end()) {
      ++t_cache.hits;
      all_ok = all_ok && it->second;
    } else {
      unknown.push_back(sm);
      unknown_fp.push_back(fp);
    }
  }
  auto fallback = [&] {
    bool ok = true;
    for (const SignedMessage* sm : unknown) ok = sm->valid() && ok;
    return ok;
  };
  if (!all_ok) {
    // Already lost, but still resolve (and cache) the unknown verdicts so
    // later flushes of the same messages stay cache hits.
    fallback();
    return false;
  }
  if (unknown.empty()) return true;
  if (unknown.size() == 1) return unknown.front()->valid();

  // Aggregate check: g^{sum z_i s_i} == prod R_i^{z_i} * y_i^{e_i z_i}.
  // z_i are 32-bit coefficients mixed from the content fingerprints and a
  // per-process random salt. The salt keeps the coefficients unpredictable
  // to anyone crafting signatures, so tampered-signature errors cannot be
  // arranged to cancel in the aggregate — which matters because a batch
  // pass is cached as a per-message verdict. The salt never changes
  // verdicts on well-formed input (valid signatures satisfy the aggregate
  // for every z; failed aggregates fall back to individual checks), so
  // simulation determinism is unaffected.
  static const std::uint64_t kBatchSalt = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  std::uint64_t s_acc = 0;
  unsigned __int128 rhs = 1;
  for (std::size_t i = 0; i < unknown.size(); ++i) {
    const SignedMessage& sm = *unknown[i];
    if (!shape_ok(sm.signer, sm.sig)) return fallback();
    const std::uint64_t z =
        (rng::mix(unknown_fp[i] ^ kBatchSalt ^
                  (0x9e3779b97f4a7c15ull * (i + 1))) &
         0xffffffffull) |
        1ull;
    const std::uint64_t e = challenge(sm.signer, sm.payload, sm.sig);
    s_acc = add_q(s_acc, mul_q(z, sm.sig.s));
    const std::uint64_t term =
        gmul(gpow(sm.sig.r, z), gpow(sm.signer.y, mul_q(e, z)));
    rhs = (rhs * term) % kP;
  }
  if (g_pow(s_acc) != static_cast<std::uint64_t>(rhs)) {
    // Some signature is bad (or an astronomically unlikely coefficient
    // cancellation): identify per-message and cache the verdicts.
    return fallback();
  }
  ++t_cache.misses;  // one real multi-exponentiation for the whole batch
  if (t_cache.verdicts.size() + unknown.size() > kCacheMaxEntries) {
    t_cache.verdicts.clear();
  }
  for (std::size_t i = 0; i < unknown.size(); ++i) {
    t_cache.verdicts.emplace(unknown_fp[i], true);
  }
  return true;
}

Bytes SignedMessage::serialize() const {
  Writer w;
  w.u64(signer.y);
  w.bytes(payload);
  w.u64(sig.r);
  w.u64(sig.s);
  return w.take();
}

SignedMessage SignedMessage::deserialize(BytesView b) {
  Reader rd(b);
  SignedMessage m;
  m.signer.y = rd.u64();
  m.payload = rd.bytes();
  m.sig.r = rd.u64();
  m.sig.s = rd.u64();
  return m;
}

SignedMessage make_signed(const KeyPair& keys, BytesView payload) {
  SignedMessage m;
  m.signer = keys.pk;
  m.payload = Bytes(payload.begin(), payload.end());
  m.sig = sign(keys.sk, payload);
  return m;
}

}  // namespace cyc::crypto
