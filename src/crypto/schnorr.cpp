#include "crypto/schnorr.hpp"

#include "support/serde.hpp"

namespace cyc::crypto {

namespace {

std::uint64_t hash_to_scalar(std::initializer_list<BytesView> parts) {
  const Digest d = sha256_concat(parts);
  // A 64-bit prefix reduced mod the 60-bit q has negligible bias for the
  // simulation-security level we target.
  return digest_prefix_u64(d) % kQ;
}

}  // namespace

Bytes PublicKey::serialize() const { return be64(y); }

PublicKey PublicKey::deserialize(BytesView b) { return PublicKey{read_be64(b)}; }

KeyPair KeyPair::generate(rng::Stream& rng) {
  SecretKey sk{1 + rng.below(kQ - 1)};
  return KeyPair{sk, PublicKey{g_pow(sk.x)}};
}

KeyPair KeyPair::from_seed(std::uint64_t seed) {
  rng::Stream stream(seed);
  return generate(stream);
}

Bytes Signature::serialize() const {
  Writer w;
  w.u64(r);
  w.u64(s);
  return w.take();
}

Signature Signature::deserialize(BytesView b) {
  Reader rd(b);
  Signature sig;
  sig.r = rd.u64();
  sig.s = rd.u64();
  return sig;
}

Signature sign(const SecretKey& sk, BytesView msg) {
  const Bytes sk_bytes = be64(sk.x);
  std::uint64_t k = hash_to_scalar({bytes_of("cyc.nonce"), sk_bytes, msg});
  if (k == 0) k = 1;  // k must be a unit; probability 1/q, handled anyway
  const std::uint64_t r = g_pow(k);
  const std::uint64_t y = g_pow(sk.x);
  const std::uint64_t e =
      hash_to_scalar({bytes_of("cyc.chal"), be64(r), be64(y), msg});
  const std::uint64_t s = add_q(k, mul_q(e, sk.x));
  return Signature{r, s};
}

bool verify(const PublicKey& pk, BytesView msg, const Signature& sig) {
  if (!in_group(pk.y) || !in_group(sig.r) || sig.s >= kQ) return false;
  const std::uint64_t e =
      hash_to_scalar({bytes_of("cyc.chal"), be64(sig.r), be64(pk.y), msg});
  const std::uint64_t lhs = g_pow(sig.s);
  const std::uint64_t rhs = gmul(sig.r, gpow(pk.y, e));
  return lhs == rhs;
}

Bytes SignedMessage::serialize() const {
  Writer w;
  w.u64(signer.y);
  w.bytes(payload);
  w.u64(sig.r);
  w.u64(sig.s);
  return w.take();
}

SignedMessage SignedMessage::deserialize(BytesView b) {
  Reader rd(b);
  SignedMessage m;
  m.signer.y = rd.u64();
  m.payload = rd.bytes();
  m.sig.r = rd.u64();
  m.sig.s = rd.u64();
  return m;
}

SignedMessage make_signed(const KeyPair& keys, BytesView payload) {
  SignedMessage m;
  m.signer = keys.pk;
  m.payload = Bytes(payload.begin(), payload.end());
  m.sig = sign(keys.sk, payload);
  return m;
}

}  // namespace cyc::crypto
