#include "crypto/vrf.hpp"

#include "support/serde.hpp"

namespace cyc::crypto {

namespace {
Bytes domain_separated(BytesView input) {
  return concat({bytes_of("cyc.vrf"), input});
}
}  // namespace

Bytes VrfOutput::serialize() const {
  Writer w;
  w.bytes(digest_to_bytes(hash));
  w.u64(proof.r);
  w.u64(proof.s);
  return w.take();
}

VrfOutput VrfOutput::deserialize(BytesView b) {
  Reader rd(b);
  VrfOutput out;
  out.hash = digest_from_bytes(rd.bytes());
  out.proof.r = rd.u64();
  out.proof.s = rd.u64();
  return out;
}

VrfOutput vrf_prove(const SecretKey& sk, BytesView input) {
  const Bytes msg = domain_separated(input);
  VrfOutput out;
  out.proof = sign(sk, msg);
  out.hash = sha256_concat({bytes_of("cyc.vrf.out"), be64(out.proof.r)});
  return out;
}

bool vrf_verify(const PublicKey& pk, BytesView input, const VrfOutput& out) {
  const Bytes msg = domain_separated(input);
  if (!verify(pk, msg, out.proof)) return false;
  const Digest expected =
      sha256_concat({bytes_of("cyc.vrf.out"), be64(out.proof.r)});
  return expected == out.hash;
}

}  // namespace cyc::crypto
