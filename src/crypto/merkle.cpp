#include "crypto/merkle.hpp"

#include <stdexcept>

#include "support/serde.hpp"

namespace cyc::crypto {

namespace {

Digest hash_leaf(BytesView leaf) {
  return sha256_concat({bytes_of("\x00cyc.leaf"), leaf});
}

Digest hash_node(const Digest& left, const Digest& right) {
  return sha256_concat({bytes_of("\x01cyc.node"),
                        BytesView(left.data(), left.size()),
                        BytesView(right.data(), right.size())});
}

}  // namespace

Bytes MerkleProof::serialize() const {
  Writer w;
  w.u64(index);
  w.u32(static_cast<std::uint32_t>(siblings.size()));
  for (const auto& s : siblings) w.bytes(digest_to_bytes(s));
  return w.take();
}

MerkleProof MerkleProof::deserialize(BytesView b) {
  Reader rd(b);
  MerkleProof p;
  p.index = rd.u64();
  const std::uint32_t count = rd.u32();
  p.siblings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    p.siblings.push_back(digest_from_bytes(rd.bytes()));
  }
  return p;
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves)
    : leaf_count_(leaves.size()) {
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(hash_leaf(leaf));
  if (level.empty()) level.push_back(sha256({}));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      // Odd tail duplicates the last node (Bitcoin-style padding).
      const Digest& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(hash_node(prev[i], right));
    }
    levels_.push_back(std::move(next));
  }
}

Digest MerkleTree::root() const { return levels_.back().front(); }

MerkleProof MerkleTree::prove(std::uint64_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::prove: leaf index out of range");
  }
  MerkleProof proof;
  proof.index = index;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    proof.siblings.push_back(sibling < level.size() ? level[sibling]
                                                    : level[pos]);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, BytesView leaf,
                        const MerkleProof& proof) {
  Digest acc = hash_leaf(leaf);
  std::uint64_t pos = proof.index;
  for (const auto& sibling : proof.siblings) {
    acc = (pos % 2 == 0) ? hash_node(acc, sibling) : hash_node(sibling, acc);
    pos /= 2;
  }
  return acc == root;
}

}  // namespace cyc::crypto
