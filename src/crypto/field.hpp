// Prime-field and group arithmetic for the simulation-grade signature /
// VRF / PVSS schemes.
//
// We work in the order-q subgroup of Z_p^* where p = 2q+1 is a safe prime
// just below 2^61 and g = 4 generates the subgroup. The 61-bit modulus
// keeps every product inside unsigned __int128, so arithmetic is exact and
// branch-free. This substitutes for a production elliptic-curve group; the
// protocol only relies on the group structure (see DESIGN.md §3).
#pragma once

#include <cstdint>

namespace cyc::crypto {

/// Safe prime p = 2q + 1 (61 bits).
inline constexpr std::uint64_t kP = 2305843009213691579ull;
/// Prime subgroup order q = (p-1)/2.
inline constexpr std::uint64_t kQ = 1152921504606845789ull;
/// Generator of the order-q subgroup (g = 2^2 mod p).
inline constexpr std::uint64_t kG = 4ull;

/// (a * b) mod m using 128-bit intermediates.
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// (base ^ exp) mod m by square-and-multiply.
std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

/// Modular inverse in the scalar field Z_q (q prime), via Fermat.
/// Requires a != 0 (mod q).
std::uint64_t inv_mod_q(std::uint64_t a);

/// Scalar (exponent) arithmetic mod q.
std::uint64_t add_q(std::uint64_t a, std::uint64_t b);
std::uint64_t sub_q(std::uint64_t a, std::uint64_t b);
std::uint64_t mul_q(std::uint64_t a, std::uint64_t b);

/// Group exponentiation g^e mod p for the standard generator.
std::uint64_t g_pow(std::uint64_t e);

/// Group operations mod p.
std::uint64_t gmul(std::uint64_t a, std::uint64_t b);
std::uint64_t gpow(std::uint64_t base, std::uint64_t e);

/// True iff x is a member of the order-q subgroup (x != 0 and x^q == 1).
bool in_group(std::uint64_t x);

/// Miller-Rabin primality check (deterministic for 64-bit inputs). Used by
/// tests to validate the hard-coded parameters.
bool is_probable_prime(std::uint64_t n);

}  // namespace cyc::crypto
