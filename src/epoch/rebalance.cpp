#include "epoch/rebalance.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "analysis/bounds.hpp"
#include "support/serde.hpp"

namespace cyc::epoch {

Bytes RebalancePlan::serialize() const {
  Writer w;
  w.str("REBALANCE_PLAN");
  w.u64(epoch);
  w.u32(m_before);
  w.u32(m_after);
  w.vec(moves, [](Writer& w2, const ledger::AccountMove& mv) {
    w2.u64(mv.account);
    w2.u32(mv.from);
    w2.u32(mv.to);
  });
  w.f64(fair_draw_tail);
  w.bytes(crypto::digest_to_bytes(map_digest));
  w.u64(migrated_outputs);
  return w.take();
}

RebalancePlan RebalancePlan::deserialize(BytesView b) {
  Reader r(b);
  if (r.str() != "REBALANCE_PLAN") {
    throw std::invalid_argument("RebalancePlan: bad magic");
  }
  RebalancePlan plan;
  plan.epoch = r.u64();
  plan.m_before = r.u32();
  plan.m_after = r.u32();
  plan.moves = r.vec<ledger::AccountMove>([](Reader& r2) {
    ledger::AccountMove mv;
    mv.account = r2.u64();
    mv.from = r2.u32();
    mv.to = r2.u32();
    return mv;
  });
  plan.fair_draw_tail = r.f64();
  plan.map_digest = crypto::digest_from_bytes(r.bytes());
  plan.migrated_outputs = r.u64();
  return plan;
}

crypto::Digest RebalancePlan::digest() const {
  return crypto::sha256(serialize());
}

RebalanceConfig rebalance_config(const protocol::Params& params) {
  RebalanceConfig cfg;
  cfg.enabled = params.rebalance;
  cfg.max_moves = params.rebalance_moves;
  cfg.split_merge_budget = params.rebalance_split_budget;
  return cfg;
}

namespace {

/// Committee seat count if the membership were re-dealt over m_after
/// committees instead of m_before (total seats preserved, floor'd).
std::uint64_t rescaled_seats(std::uint32_t committee_size,
                             std::uint32_t m_before, std::uint32_t m_after) {
  const std::uint64_t total =
      static_cast<std::uint64_t>(committee_size) * m_before;
  return std::max<std::uint64_t>(1, total / std::max<std::uint32_t>(1, m_after));
}

}  // namespace

RebalancePlan plan_rebalance(
    const RebalanceConfig& cfg, const ledger::ShardMap& current,
    const ledger::ShardLoadWindow& window,
    const std::vector<std::pair<std::uint64_t, ledger::ShardId>>& accounts,
    std::size_t member_count, std::size_t corrupt_members,
    std::uint32_t committee_size, std::uint64_t entering_epoch) {
  const std::uint32_t m = current.shards();
  RebalancePlan plan;
  plan.epoch = entering_epoch;
  plan.m_before = m;
  plan.m_after = m;
  plan.fair_draw_tail = analysis::committee_failure_exact(
      member_count, corrupt_members, committee_size);

  // No observed load — nothing to act on; record the identity decision.
  if (!cfg.enabled || window.empty() || window.offered.size() != m) {
    plan.map_digest = current.apply({}).digest();
    return plan;
  }

  // Working copies: per-shard load estimate and account census.
  std::vector<double> load(m, 0.0);
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < m; ++k) {
    load[k] = static_cast<double>(window.offered[k]);
    total += window.offered[k];
  }
  const double mean = static_cast<double>(total) / m;
  std::vector<std::size_t> census(m, 0);
  std::map<std::uint64_t, ledger::ShardId> account_shard;
  for (const auto& [account, shard] : accounts) {
    census[shard] += 1;
    account_shard[account] = shard;
  }

  // Greedy re-homing: while a shard is over threshold, move its hottest
  // account (most window arrivals, ties to the lowest key) to the
  // currently coldest shard, updating the load estimates as we go.
  // Everything iterates sorted containers, so the plan is deterministic.
  std::set<std::uint64_t> moved;
  for (std::uint32_t iter = 0; iter < cfg.max_moves; ++iter) {
    std::uint32_t hot = 0, cold = 0;
    for (std::uint32_t k = 1; k < m; ++k) {
      if (load[k] > load[hot]) hot = k;
      if (load[k] < load[cold]) cold = k;
    }
    if (hot == cold || load[hot] <= cfg.overload_threshold * mean) break;
    if (census[hot] <= 1) break;  // never empty a shard of accounts

    std::uint64_t best_account = 0;
    std::uint64_t best_arrivals = 0;
    bool found = false;
    for (const auto& [account, count] : window.account_arrivals) {
      if (count == 0 || moved.contains(account)) continue;
      auto it = account_shard.find(account);
      if (it == account_shard.end() || it->second != hot) continue;
      if (!found || count > best_arrivals) {
        best_account = account;
        best_arrivals = count;
        found = true;
      }
    }
    if (!found) break;

    plan.moves.push_back(ledger::AccountMove{best_account, hot, cold});
    moved.insert(best_account);
    account_shard[best_account] = cold;
    census[hot] -= 1;
    census[cold] += 1;
    load[hot] -= static_cast<double>(best_arrivals);
    load[cold] += static_cast<double>(best_arrivals);
  }
  std::sort(plan.moves.begin(), plan.moves.end(),
            [](const ledger::AccountMove& a, const ledger::AccountMove& b) {
              return a.account < b.account;
            });

  // Advisory split/merge: drops anywhere in the window signal that the
  // service capacity itself is short — recommend one more committee;
  // a window with zero drops *and* zero residual backlog signals excess
  // capacity — recommend one fewer. Either direction must keep the
  // fair-draw tail under the safety threshold at the rescaled committee
  // size, and stays within the configured budget.
  if (cfg.split_merge_budget > 0) {
    std::uint64_t dropped = 0, backlog = 0;
    for (std::uint32_t k = 0; k < m; ++k) {
      dropped += window.dropped[k];
      backlog += window.occupancy_sum[k];
    }
    std::uint32_t want = m;
    if (dropped > 0) {
      want = m + std::min<std::uint32_t>(1, cfg.split_merge_budget);
    } else if (backlog == 0 && m > 2) {
      want = m - std::min<std::uint32_t>(1, cfg.split_merge_budget);
    }
    if (want != m) {
      const double tail = analysis::committee_failure_exact(
          member_count, corrupt_members,
          rescaled_seats(committee_size, m, want));
      if (tail <= cfg.max_fair_draw_tail) {
        plan.m_after = want;
        plan.fair_draw_tail = tail;
      }
    }
  }

  plan.map_digest = current.apply(plan.moves).digest();
  return plan;
}

}  // namespace cyc::epoch
