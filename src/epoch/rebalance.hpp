// Load-aware epoch re-draw planner (adaptive sharding under skew).
//
// CycLedger re-draws every committee at each epoch boundary anyway
// (§IV-F); this module makes the re-draw load-aware. Over the closing
// epoch the engine accumulates a per-shard ShardLoadWindow (offered
// arrivals, drops, post-drain occupancy, per-account arrival counts).
// At the boundary — after `Engine::reconfigure` re-drew the roles — the
// planner turns that window into a deterministic RebalancePlan: move the
// hottest accounts off overloaded shards onto the coldest one, and
// optionally recommend a committee split/merge scaling `m`, gated by the
// same exact-hypergeometric fair-draw constraint the epoch invariants
// enforce. The plan is recorded in the EpochHandoff so the boundary
// stays auditable: the invariant checker re-derives the plan from the
// same inputs and replays the migration against its own mirror.
//
// The planner is a pure function of its inputs — no RNG, no wall clock —
// so a recomputation from the audit record reproduces it bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.hpp"
#include "ledger/shard_map.hpp"
#include "protocol/params.hpp"

namespace cyc::epoch {

/// One epoch boundary's re-draw decision. `moves` is sorted by account
/// key; `m_after` may differ from `m_before` only within the configured
/// split/merge budget and only when the fair-draw tail stays under the
/// safety threshold. The shard count recommendation is *advisory* in
/// this iteration: it is recorded and safety-checked, but the live
/// engine keeps its shard count within a run.
struct RebalancePlan {
  std::uint64_t epoch = 0;  ///< epoch being entered (matches the handoff)
  std::uint32_t m_before = 0;
  std::uint32_t m_after = 0;
  std::vector<ledger::AccountMove> moves;
  /// Exact hypergeometric per-committee failure tail at m_after's
  /// committee size (analysis::committee_failure_exact).
  double fair_draw_tail = 0.0;
  /// Digest of the successor ShardMap (pre-map.apply(moves)).
  crypto::Digest map_digest{};
  /// UTXO entries migrated between shard stores when the plan was
  /// applied (filled by the manager after Engine::apply_rebalance).
  std::uint64_t migrated_outputs = 0;

  Bytes serialize() const;
  static RebalancePlan deserialize(BytesView b);
  crypto::Digest digest() const;

  bool operator==(const RebalancePlan&) const = default;
};

/// Planner knobs, derived from Params (rebalance_config below).
struct RebalanceConfig {
  bool enabled = false;
  std::uint32_t max_moves = 4;        ///< account moves per boundary
  double overload_threshold = 1.10;   ///< hot = offered > threshold * mean
  std::uint32_t split_merge_budget = 0;  ///< max |m_after - m_before|
  double max_fair_draw_tail = 1e-6;   ///< kRiggedDrawThreshold
};

RebalanceConfig rebalance_config(const protocol::Params& params);

/// Compute the boundary's plan. Deterministic and RNG-free.
///
/// `accounts` is the full roster as (account key, current shard) under
/// `current` — the planner never empties a shard of accounts.
/// `member_count` / `corrupt_members` describe the post-reconfigure
/// membership; `committee_size` is the per-committee seat count at
/// m_before. At a recommended split/merge the seats rescale as
/// c * m_before / m_after (same total), and the fair-draw tail is the
/// exact hypergeometric corrupt-majority probability at that size.
RebalancePlan plan_rebalance(
    const RebalanceConfig& cfg, const ledger::ShardMap& current,
    const ledger::ShardLoadWindow& window,
    const std::vector<std::pair<std::uint64_t, ledger::ShardId>>& accounts,
    std::size_t member_count, std::size_t corrupt_members,
    std::uint32_t committee_size, std::uint64_t entering_epoch);

}  // namespace cyc::epoch
