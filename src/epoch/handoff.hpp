// Cross-epoch state handoff (§IV-F/§IV-G across a reshuffle).
//
// When an epoch boundary re-draws every committee, the protocol state
// that must survive the reshuffle is exactly: the chain head, the
// per-shard UTXO views (as digests — the new committees re-seed their
// shard copies from the authoritative state), the Remaining TX List, and
// every surviving node's reputation. The EpochHandoff record captures a
// digest of each so the harness can audit the boundary: nothing carried
// may be lost, duplicated, or inflated by the reconfiguration itself.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/sha256.hpp"
#include "epoch/rebalance.hpp"
#include "ledger/types.hpp"
#include "net/message.hpp"
#include "protocol/engine.hpp"

namespace cyc::epoch {

/// Auditable record of one epoch boundary, built *after* the engine was
/// reconfigured. Every field is re-derivable from public state, so a
/// forged record (dropped carried tx, inflated reputation, wrong chain
/// head) is detectable by recomputation — the invariant suite does
/// exactly that.
struct EpochHandoff {
  std::uint64_t epoch = 0;           ///< epoch being entered (1-based)
  std::uint64_t boundary_round = 0;  ///< first round of the new epoch
  crypto::Digest randomness{};       ///< epoch randomness R^e (PVSS beacon)
  crypto::Digest chain_tip{};        ///< header hash carried across
  std::uint64_t chain_height = 0;
  std::vector<crypto::Digest> shard_digests;  ///< per-shard UTXO digests
  std::uint64_t carried_txs = 0;     ///< Remaining TX List size
  crypto::Digest carried_digest{};   ///< digest over the carried tx ids
  double surviving_reputation = 0;   ///< sum over surviving members
  std::vector<net::NodeId> members;  ///< new membership (ascending ids)
  std::vector<net::NodeId> joined;   ///< admitted via the identity puzzle
  std::vector<net::NodeId> retired;  ///< departed under the churn budget
  std::uint64_t join_candidates = 0; ///< standby identities that tried
  std::uint64_t beacon_disqualified = 0;  ///< dealers dropped by PVSS
  /// Load-aware re-draw decision applied at this boundary (present iff
  /// Params::rebalance; appended after the legacy fields so records
  /// without a plan keep their pre-rebalance byte encoding and digest).
  std::optional<RebalancePlan> plan;

  /// Canonical encoding (deterministic; digest() hashes it).
  Bytes serialize() const;
  static EpochHandoff deserialize(BytesView b);

  /// Content digest of the whole record — the value a block or a light
  /// client would pin to audit the boundary.
  crypto::Digest digest() const;

  bool operator==(const EpochHandoff&) const = default;
};

/// Digest over a transaction list *in order* (the Remaining TX List is an
/// ordered queue, so order is part of the carried state).
crypto::Digest carryover_digest(const std::vector<ledger::Transaction>& txs);

/// Build the record from a freshly reconfigured engine plus the boundary
/// metadata the manager tracked. `joined` / `retired` are copied sorted.
EpochHandoff build_handoff(const protocol::Engine& engine,
                           std::uint64_t epoch,
                           std::vector<net::NodeId> joined,
                           std::vector<net::NodeId> retired,
                           std::uint64_t join_candidates,
                           std::uint64_t beacon_disqualified);

}  // namespace cyc::epoch
