#include "epoch/manager.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "crypto/pow.hpp"
#include "crypto/pvss.hpp"

namespace cyc::epoch {

EpochManager::EpochManager(protocol::Params params,
                           protocol::AdversaryConfig adversary,
                           EpochConfig config,
                           protocol::EngineOptions options)
    : config_(config),
      engine_(std::make_unique<protocol::Engine>(params, adversary, options)),
      rng_(rng::Stream(params.seed).fork("epoch-manager")) {
  if (config_.epochs == 0 || config_.rounds_per_epoch == 0) {
    throw std::invalid_argument("EpochManager: epochs and rounds_per_epoch "
                                "must be positive");
  }
}

EpochManager::~EpochManager() = default;

protocol::RoundReport EpochManager::run_round() {
  if (finished()) {
    throw std::logic_error("EpochManager: schedule already complete");
  }
  protocol::RoundReport report = engine_->run_round();
  rounds_run_ += 1;
  round_in_epoch_ += 1;
  if (round_in_epoch_ >= config_.rounds_per_epoch &&
      epoch_ + 1 < config_.epochs) {
    perform_boundary();
    epoch_ += 1;
    round_in_epoch_ = 0;
  }
  return report;
}

void EpochManager::perform_boundary() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t entering = epoch_ + 1;

  // --- 1. Epoch randomness: one PVSS beacon round among C_R. -------------
  // Each referee of the upcoming assignment deals a sharing of its secret
  // contribution; a misbehaving referee publishes a corrupted share and
  // is disqualified by the public verification, so the sum — and hence
  // the epoch randomness — stays unbiased while C_R is honest-majority.
  const std::vector<net::NodeId> referees = engine_->assignment().referees;
  rng::Stream beacon_rng = rng_.fork("beacon").fork(entering);
  std::vector<std::uint64_t> secrets;
  std::vector<std::size_t> cheaters;
  secrets.reserve(referees.size());
  for (std::size_t d = 0; d < referees.size(); ++d) {
    secrets.push_back(beacon_rng.below(crypto::kQ));
    if (engine_->misbehaved(referees[d], engine_->round())) {
      cheaters.push_back(d);
    }
  }
  const crypto::BeaconResult beacon = crypto::RandomnessBeacon::run(
      engine_->round(), secrets, cheaters, beacon_rng);
  // Bind the beacon output to the chain head: the epoch randomness only
  // makes sense relative to the state being handed across.
  const crypto::Digest randomness = crypto::sha256_concat(
      {bytes_of("cyc.epoch.rand"), be64(entering),
       crypto::digest_to_bytes(beacon.randomness),
       crypto::digest_to_bytes(engine_->chain().tip().hash())});

  // --- 2. Identity churn under the bounded budget. -----------------------
  const std::vector<net::NodeId> members = engine_->members();
  std::vector<net::NodeId> pool;
  for (std::size_t i = 0; i < engine_->node_count(); ++i) {
    const auto id = static_cast<net::NodeId>(i);
    if (!engine_->enrolled(id)) pool.push_back(id);
  }
  const double rate =
      std::clamp(std::min(config_.churn_rate, config_.max_churn_fraction),
                 0.0, 1.0);
  std::size_t budget = static_cast<std::size_t>(
      std::floor(rate * static_cast<double>(members.size())));
  budget = std::min(budget, pool.size());

  // Joining identities solve the epoch puzzle keyed on the fresh
  // randomness (so solutions cannot be precomputed) and their own public
  // key (so they cannot be shared). Candidates are drawn from the pool by
  // the epoch rng; one seat is churned per successful solver.
  std::vector<net::NodeId> candidates = pool;
  rng::Stream join_rng = rng_.fork("join").fork(entering);
  rng::shuffle(candidates, join_rng);
  candidates.resize(budget);
  const std::uint64_t target =
      crypto::pow_target_for_bits(config_.join_pow_bits);
  std::vector<net::NodeId> joined;
  for (net::NodeId id : candidates) {
    const Bytes challenge =
        concat({bytes_of("cyc.epoch.join"), be64(entering),
                crypto::digest_to_bytes(randomness),
                be64(engine_->public_key(id).y)});
    const auto solution =
        crypto::pow_solve(challenge, target, 0, config_.join_pow_max_iters);
    if (!solution) continue;  // budget seat stays un-churned this epoch
    // Registration path: the referees re-verify the submitted solution.
    if (!crypto::pow_verify(challenge, target, *solution)) continue;
    joined.push_back(id);
  }

  // Retire exactly as many members as successfully joined — the
  // membership size (and with it every committee size) is conserved, and
  // the churn stays within the budget by construction.
  std::vector<net::NodeId> retire_order = members;
  rng::Stream retire_rng = rng_.fork("retire").fork(entering);
  rng::shuffle(retire_order, retire_rng);
  std::vector<net::NodeId> retired(retire_order.begin(),
                                   retire_order.begin() +
                                       static_cast<std::ptrdiff_t>(joined.size()));

  std::set<net::NodeId> next_members(members.begin(), members.end());
  for (net::NodeId id : retired) next_members.erase(id);
  for (net::NodeId id : joined) next_members.insert(id);

  // --- 3. Reconfigure the engine; 4. record the handoff. -----------------
  protocol::Reconfiguration reconfig;
  reconfig.epoch = entering;
  reconfig.members.assign(next_members.begin(), next_members.end());
  reconfig.randomness = randomness;
  engine_->reconfigure(reconfig);

  // --- 3b. Load-aware re-draw (src/epoch/rebalance.hpp). -----------------
  // Runs after reconfigure so the fair-draw gate sees the entering
  // membership, and before the handoff so the plan is part of the audit
  // record. The planner is RNG-free, so this block consumes none of the
  // boundary's deterministic randomness streams.
  std::optional<RebalancePlan> plan;
  if (engine_->params().rebalance) {
    engine_->roll_rebalance_window();
    const auto& wl = engine_->workload();
    std::vector<std::pair<std::uint64_t, ledger::ShardId>> accounts;
    accounts.reserve(wl.config().users);
    for (std::uint32_t u = 0; u < wl.config().users; ++u) {
      const crypto::PublicKey& pk = wl.user_pk(u);
      accounts.emplace_back(pk.y, engine_->shard_map()->shard(pk));
    }
    std::size_t corrupt = 0;
    for (net::NodeId id : reconfig.members) {
      if (engine_->misbehaved(id, engine_->round())) corrupt += 1;
    }
    plan = plan_rebalance(rebalance_config(engine_->params()),
                          *engine_->shard_map(),
                          engine_->last_rebalance_window(), accounts,
                          reconfig.members.size(), corrupt,
                          engine_->params().c, entering);
    auto next_map = std::make_shared<const ledger::ShardMap>(
        engine_->shard_map()->apply(plan->moves));
    plan->migrated_outputs = engine_->apply_rebalance(next_map, plan->moves);
  }

  handoffs_.push_back(build_handoff(*engine_, entering, std::move(joined),
                                    std::move(retired), candidates.size(),
                                    beacon.disqualified.size()));
  handoffs_.back().plan = std::move(plan);
  transition_wall_ms_.push_back(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace cyc::epoch
