#include "epoch/handoff.hpp"

#include <algorithm>
#include <set>

#include "support/serde.hpp"

namespace cyc::epoch {

namespace {

void write_digest(Writer& w, const crypto::Digest& d) {
  w.bytes(crypto::digest_to_bytes(d));
}

crypto::Digest read_digest(Reader& r) {
  return crypto::digest_from_bytes(r.bytes());
}

void write_ids(Writer& w, const std::vector<net::NodeId>& ids) {
  w.vec(ids, [](Writer& w2, net::NodeId id) { w2.u32(id); });
}

std::vector<net::NodeId> read_ids(Reader& r) {
  return r.vec<net::NodeId>([](Reader& r2) { return r2.u32(); });
}

}  // namespace

Bytes EpochHandoff::serialize() const {
  Writer w;
  w.str("EPOCH_HANDOFF");
  w.u64(epoch);
  w.u64(boundary_round);
  write_digest(w, randomness);
  write_digest(w, chain_tip);
  w.u64(chain_height);
  w.vec(shard_digests,
        [](Writer& w2, const crypto::Digest& d) { write_digest(w2, d); });
  w.u64(carried_txs);
  write_digest(w, carried_digest);
  w.f64(surviving_reputation);
  write_ids(w, members);
  write_ids(w, joined);
  write_ids(w, retired);
  w.u64(join_candidates);
  w.u64(beacon_disqualified);
  if (plan) {
    w.u8(1);
    w.bytes(plan->serialize());
  }
  return w.take();
}

EpochHandoff EpochHandoff::deserialize(BytesView b) {
  Reader r(b);
  if (r.str() != "EPOCH_HANDOFF") {
    throw std::invalid_argument("EpochHandoff: bad magic");
  }
  EpochHandoff h;
  h.epoch = r.u64();
  h.boundary_round = r.u64();
  h.randomness = read_digest(r);
  h.chain_tip = read_digest(r);
  h.chain_height = r.u64();
  h.shard_digests =
      r.vec<crypto::Digest>([](Reader& r2) { return read_digest(r2); });
  h.carried_txs = r.u64();
  h.carried_digest = read_digest(r);
  h.surviving_reputation = r.f64();
  h.members = read_ids(r);
  h.joined = read_ids(r);
  h.retired = read_ids(r);
  h.join_candidates = r.u64();
  h.beacon_disqualified = r.u64();
  if (r.remaining() > 0) {
    if (r.u8() != 1) throw std::invalid_argument("EpochHandoff: bad plan tag");
    h.plan = RebalancePlan::deserialize(r.bytes());
  }
  return h;
}

crypto::Digest EpochHandoff::digest() const { return crypto::sha256(serialize()); }

crypto::Digest carryover_digest(const std::vector<ledger::Transaction>& txs) {
  crypto::Sha256 ctx;
  ctx.update("cyc.epoch.carryover");
  ctx.update_u64(txs.size());
  for (const auto& tx : txs) {
    const ledger::TxId id = tx.id();
    ctx.update(BytesView(id.data(), id.size()));
  }
  return ctx.finalize();
}

EpochHandoff build_handoff(const protocol::Engine& engine,
                           std::uint64_t epoch,
                           std::vector<net::NodeId> joined,
                           std::vector<net::NodeId> retired,
                           std::uint64_t join_candidates,
                           std::uint64_t beacon_disqualified) {
  EpochHandoff h;
  h.epoch = epoch;
  h.boundary_round = engine.round();
  h.randomness = engine.randomness();
  h.chain_tip = engine.chain().tip().hash();
  h.chain_height = engine.chain().height();
  for (const auto& store : engine.shard_state()) {
    h.shard_digests.push_back(store.digest());
  }
  h.carried_txs = engine.carryover().size();
  h.carried_digest = carryover_digest(engine.carryover());
  h.members = engine.members();
  std::sort(joined.begin(), joined.end());
  std::sort(retired.begin(), retired.end());
  h.joined = std::move(joined);
  h.retired = std::move(retired);
  h.join_candidates = join_candidates;
  h.beacon_disqualified = beacon_disqualified;
  const std::set<net::NodeId> fresh(h.joined.begin(), h.joined.end());
  for (net::NodeId id : h.members) {
    if (!fresh.contains(id)) h.surviving_reputation += engine.reputation(id);
  }
  return h;
}

}  // namespace cyc::epoch
