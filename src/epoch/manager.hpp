// Epoch lifecycle driver (§IV-F over many reshuffles).
//
// CycLedger is epoch-structured: identities are established by a
// proof-of-work puzzle, committees are re-drawn from fresh distributed
// randomness, and reputation / ledger state must survive the reshuffle.
// The round Engine executes the seven phases *within* one membership;
// EpochManager wraps it and drives the boundary between memberships:
//
//   1. identity churn — joining identities from the standby pool solve a
//      hash-preimage puzzle keyed on the epoch randomness (Sybil
//      resistance; midstate reuse via crypto/pow), departing members are
//      retired under a bounded per-epoch churn budget;
//   2. epoch randomness — the referee committee runs one PVSS beacon
//      round (crypto/pvss); misbehaving referees publish a corrupted
//      share and are disqualified by public verification; the beacon
//      output is bound to the chain head;
//   3. reconfiguration — Engine::reconfigure re-draws all m committees,
//      the partial sets and C_R from the new randomness over the new
//      membership (crypto_sort + role-hash lottery), keeping the chain,
//      the per-shard UTXO views, the Remaining TX List and every
//      surviving node's reputation;
//   4. handoff — an EpochHandoff record digests everything carried
//      across, so the harness can audit the boundary.
//
// With epochs = 1 (or churn 0 and one epoch) the manager degenerates to
// plain Engine::run_round calls — bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "epoch/handoff.hpp"
#include "protocol/engine.hpp"
#include "support/rng.hpp"

namespace cyc::epoch {

struct EpochConfig {
  std::size_t epochs = 1;
  std::size_t rounds_per_epoch = 2;
  /// Fraction of the membership replaced per boundary (before the cap).
  double churn_rate = 0.0;
  /// Bounded-churn budget: hard cap on the per-epoch replacement
  /// fraction, per the "Divide and Scale" epoch-security argument that
  /// only a bounded fraction may reshuffle between consecutive epochs.
  double max_churn_fraction = 0.25;
  /// Identity puzzle difficulty (leading zero bits). Separate from the
  /// per-round participation puzzle (Params::pow_bits): joining an epoch
  /// is the Sybil-resistance event, so it is the harder puzzle.
  unsigned join_pow_bits = 12;
  /// Bound on the join puzzle search; a candidate that exhausts it stays
  /// in the standby pool (its seat is simply not churned this epoch).
  std::uint64_t join_pow_max_iters = 1ull << 22;
};

class EpochManager {
 public:
  /// The engine is constructed inside (Params::standby > 0 provisions the
  /// join pool). Throws std::invalid_argument on epochs == 0 or
  /// rounds_per_epoch == 0.
  EpochManager(protocol::Params params, protocol::AdversaryConfig adversary,
               EpochConfig config, protocol::EngineOptions options = {});
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Run one round; when this completes the current epoch's quota and
  /// another epoch remains, the boundary (churn + beacon + reconfigure +
  /// handoff) runs immediately afterwards. Drive the full schedule with
  /// `while (!finished()) run_round();`. Throws std::logic_error once
  /// finished().
  protocol::RoundReport run_round();

  bool finished() const {
    return epoch_ + 1 >= config_.epochs &&
           round_in_epoch_ >= config_.rounds_per_epoch;
  }
  /// Epoch currently executing (0-based; handoffs_[i] entered epoch i+1).
  std::uint64_t epoch() const { return epoch_; }
  std::size_t rounds_run() const { return rounds_run_; }
  std::size_t total_rounds() const {
    return config_.epochs * config_.rounds_per_epoch;
  }

  const EpochConfig& config() const { return config_; }
  const std::vector<EpochHandoff>& handoffs() const { return handoffs_; }
  /// Host wall-clock cost of each boundary, parallel to handoffs().
  /// Bench-only: never folded into deterministic artifacts.
  const std::vector<double>& transition_wall_ms() const {
    return transition_wall_ms_;
  }

  protocol::Engine& engine() { return *engine_; }
  const protocol::Engine& engine() const { return *engine_; }

 private:
  void perform_boundary();

  EpochConfig config_;
  std::unique_ptr<protocol::Engine> engine_;
  rng::Stream rng_;
  std::uint64_t epoch_ = 0;
  std::size_t round_in_epoch_ = 0;
  std::size_t rounds_run_ = 0;
  std::vector<EpochHandoff> handoffs_;
  std::vector<double> transition_wall_ms_;
};

}  // namespace cyc::epoch
