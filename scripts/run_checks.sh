#!/usr/bin/env bash
# Sanitizer gate: build with AddressSanitizer + UBSan and run the tier-1
# test suite plus the bounded default scenario matrix under
# instrumentation. Catches memory and UB bugs the optimized builds hide.
# The intra-engine shard-parallelism path gets three dedicated jobs:
#   - a --engine-threads 1 vs 4 byte-compare over the full traced
#     default matrix (ASan/UBSan),
#   - the CLI edge-path script (scripts/test_cli.sh) on the same build,
#   - a ThreadSanitizer build (separate dir, -DCYC_SANITIZE=thread)
#     running the parallel-equivalence gate and a matrix sweep at
#     --engine-threads 4.
# Finishes with the Release scenario-fuzz gate (scripts/run_fuzz.sh:
# fixed seed, 200-spec budget, shrink-on-failure, double-run
# byte-compare).
#
# Usage: scripts/run_checks.sh [build-dir] [tsan-build-dir]
#        (defaults: build-asan, build-tsan)
#
# Exits non-zero on any build failure, test failure, sanitizer report,
# invariant violation in the scenario matrix, or surviving fuzz failure.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCYC_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j"$(nproc)"

# halt_on_error makes UBSan findings fatal instead of log-and-continue.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

echo "=== tier-1 ctest (sanitized) ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo
echo "=== scenario matrix (sanitized) ==="
"$BUILD_DIR/scenario_runner" --out "$BUILD_DIR/SCENARIOS.asan.json"

echo
echo "=== traced scenario matrix (determinism byte-compare) ==="
# Traces record simulated time only, so both the per-point trace files
# and the matrix artifact must be byte-identical across runs AND thread
# counts — the sweep pool (--threads) and the intra-engine shard
# parallelism (--engine-threads) alike — and tracing must not perturb
# the untraced artifact either. Run A is the fully sequential reference
# path; run B parallelizes both layers.
rm -rf "$BUILD_DIR/traces-a" "$BUILD_DIR/traces-b"
"$BUILD_DIR/scenario_runner" --trace "$BUILD_DIR/traces-a" \
  --threads 1 --engine-threads 1 \
  --out "$BUILD_DIR/SCENARIOS.traced-a.json"
"$BUILD_DIR/scenario_runner" --trace "$BUILD_DIR/traces-b" \
  --threads 4 --engine-threads 4 \
  --out "$BUILD_DIR/SCENARIOS.traced-b.json"
cmp "$BUILD_DIR/SCENARIOS.traced-a.json" "$BUILD_DIR/SCENARIOS.traced-b.json"
diff -r "$BUILD_DIR/traces-a" "$BUILD_DIR/traces-b"
cmp "$BUILD_DIR/SCENARIOS.asan.json" "$BUILD_DIR/SCENARIOS.traced-a.json"
if grep -l wall_us "$BUILD_DIR"/traces-a/*.trace.json; then
  echo "error: wall-clock args leaked into default traces" >&2
  exit 1
fi
echo "traced matrix: byte-identical, --threads 1/--engine-threads 1" \
     "vs --threads 4/--engine-threads 4, inert vs untraced"

echo
echo "=== CLI edge paths (sanitized binaries) ==="
scripts/test_cli.sh "$BUILD_DIR"

echo
echo "=== regression corpus replay (sanitized) ==="
# Checked-in fault-schedule specs (and promoted shrunk fuzzer repros):
# every one must replay green through the full invariant suite.
# set -e makes any violation (exit 1) or parse error (exit 2) fatal.
for spec in tests/corpus/*.json; do
  echo "replay: $spec"
  "$BUILD_DIR/scenario_runner" --spec "$spec" \
    --out "$BUILD_DIR/corpus-$(basename "$spec" .json).asan.json"
done

echo
echo "=== skew + rebalance determinism (--engine-threads 1 vs 4) ==="
# The load-aware re-draw feeds off the open-loop load window and re-homes
# accounts at epoch boundaries; both must be independent of the
# intra-engine thread count or the rebalance path breaks the determinism
# contract. Replay the multi-epoch skew corpus spec at both settings and
# byte-compare the artifacts.
"$BUILD_DIR/scenario_runner" --spec tests/corpus/skew-rebalance.json \
  --engine-threads 1 --out "$BUILD_DIR/skew-rebalance.et1.json"
"$BUILD_DIR/scenario_runner" --spec tests/corpus/skew-rebalance.json \
  --engine-threads 4 --out "$BUILD_DIR/skew-rebalance.et4.json"
cmp "$BUILD_DIR/skew-rebalance.et1.json" "$BUILD_DIR/skew-rebalance.et4.json"
echo "skew-rebalance spec: byte-identical across engine thread counts"

echo
echo "=== ThreadSanitizer job (intra-engine shard parallelism) ==="
# The two-stage compute/emit engine path is the only code that shares an
# Engine across threads; TSan instruments exactly that. Scope: the
# parallel-equivalence gate (thread counts 1..8 in-process) plus a full
# default-matrix run at --engine-threads 4. ASan/UBSan and TSan cannot
# share a build, hence the second build dir.
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCYC_SANITIZE=thread
cmake --build "$TSAN_DIR" -j"$(nproc)" --target \
  protocol_test_parallel_equivalence support_test_parallel scenario_runner
TSAN_OPTIONS="halt_on_error=1" \
  "$TSAN_DIR/protocol_test_parallel_equivalence"
TSAN_OPTIONS="halt_on_error=1" \
  "$TSAN_DIR/support_test_parallel"
TSAN_OPTIONS="halt_on_error=1" \
  "$TSAN_DIR/scenario_runner" --engine-threads 4 \
  --out "$TSAN_DIR/SCENARIOS.tsan.json"
echo "tsan job: no data races reported"

echo
echo "=== scenario fuzz (Release, fixed seed) ==="
scripts/run_fuzz.sh

echo
echo "sanitizer gate: ALL GREEN"
