#!/usr/bin/env bash
# Scenario-fuzz gate: Release build, fixed seed, bounded budget.
#
# Samples 200 threat-model-bounded random ScenarioSpecs (src/fuzz/),
# runs every invariant on every (spec, seed) point, shrinks any failure
# to a minimal repro in bench/out/FUZZ_failures/, and byte-compares the
# artifacts of two identical runs (the campaign is a pure function of
# seed + budget). Exits non-zero on any surviving failure, determinism
# diff, or build failure.
#
# Usage: scripts/run_fuzz.sh [build-dir] [-- extra fuzz_runner args]
#   scripts/run_fuzz.sh                      # seed 1, budget 200
#   scripts/run_fuzz.sh build-bench -- --seed 7 --budget 500
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build-bench"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target fuzz_runner

mkdir -p bench/out
# A green gate must not leave stale repros from earlier failing runs
# behind — everything in the corpus dir belongs to this campaign.
rm -rf bench/out/FUZZ_failures
echo "=== fuzz_runner (pass 1) ==="
"$BUILD_DIR/fuzz_runner" --out bench/out/FUZZ.json \
  --dir bench/out/FUZZ_failures "$@"
echo
echo "=== fuzz_runner (pass 2, determinism check) ==="
"$BUILD_DIR/fuzz_runner" --out bench/out/FUZZ.rerun.json \
  --dir bench/out/FUZZ_failures "$@" > /dev/null

if ! cmp -s bench/out/FUZZ.json bench/out/FUZZ.rerun.json; then
  echo "DETERMINISM REGRESSION: fuzz artifacts differ between identical runs" >&2
  diff bench/out/FUZZ.json bench/out/FUZZ.rerun.json | head >&2
  exit 1
fi
rm -f bench/out/FUZZ.rerun.json
echo "artifact deterministic: bench/out/FUZZ.json"
