#!/usr/bin/env bash
# CLI edge-path regression tests for the tools/ runners.
#
# scenario_runner and fuzz_runner share tools/cli_args.hpp; this script
# pins the unified behaviour that used to drift between them:
#   - numeric flags reject sign prefixes (strtoull silently wraps "-1"
#     to 2^64-1, which once made a negative --budget "valid"),
#   - --threads 0 means auto on both runners,
#   - --budget / --engine-threads reject 0,
#   - a --trace path that exists as a regular file fails up front with
#     exit 2 on both tools, before any work runs,
#   - artifacts are byte-identical across --engine-threads counts.
#
# Usage: scripts/test_cli.sh [build-dir]   (default: build)
# Requires scenario_runner and fuzz_runner already built in build-dir.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SR="$BUILD_DIR/scenario_runner"
FZ="$BUILD_DIR/fuzz_runner"
if [ ! -x "$SR" ] || [ ! -x "$FZ" ]; then
  echo "test_cli: build scenario_runner and fuzz_runner in $BUILD_DIR first" >&2
  exit 2
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
SPEC="tests/corpus/crash-partition-referee-quorum.json"
FAILS=0

# expect CODE [PATTERN] -- DESC CMD...: run CMD, require exit CODE; with
# a non-empty PATTERN also require it on stderr (unified diagnostics).
expect() {
  local code="$1" pattern="$2" desc="$3"
  shift 3
  local rc=0
  "$@" >"$TMP/stdout" 2>"$TMP/stderr" || rc=$?
  if [ "$rc" -ne "$code" ]; then
    echo "FAIL (want exit $code, got $rc): $desc"
    sed 's/^/      stderr: /' "$TMP/stderr"
    FAILS=$((FAILS + 1))
    return
  fi
  if [ -n "$pattern" ] && ! grep -q "$pattern" "$TMP/stderr"; then
    echo "FAIL (missing diagnostic '$pattern'): $desc"
    sed 's/^/      stderr: /' "$TMP/stderr"
    FAILS=$((FAILS + 1))
    return
  fi
  echo "ok    (exit $rc): $desc"
}

echo "=== rejected edge paths (exit 2, diagnostic on stderr) ==="
expect 2 "non-negative integer" "scenario_runner --threads -1" \
  "$SR" --threads -1
expect 2 "non-negative integer" "fuzz_runner --threads -1" \
  "$FZ" --threads -1
expect 2 "non-negative integer" "scenario_runner --threads junk" \
  "$SR" --threads 4x
expect 2 "non-negative integer" "fuzz_runner --threads junk" \
  "$FZ" --threads 1.5
expect 2 "non-negative integer" "fuzz_runner --budget -5 (strtoull wrap bug)" \
  "$FZ" --budget -5
expect 2 "positive integer" "fuzz_runner --budget 0" \
  "$FZ" --budget 0
expect 2 "non-negative integer" "fuzz_runner --seed -1" \
  "$FZ" --seed -1
expect 2 "positive integer" "scenario_runner --engine-threads 0" \
  "$SR" --engine-threads 0
expect 2 "non-negative integer" "scenario_runner --engine-threads -4" \
  "$SR" --engine-threads -4

touch "$TMP/notadir"
expect 2 "exists and is not a directory" \
  "scenario_runner --trace <existing file>" \
  "$SR" --trace "$TMP/notadir"
expect 2 "exists and is not a directory" \
  "fuzz_runner --trace <existing file>" \
  "$FZ" --trace "$TMP/notadir"

expect 2 "usage" "scenario_runner unknown flag" "$SR" --bogus
expect 2 "usage" "fuzz_runner unknown flag" "$FZ" --bogus
expect 2 "cannot read" "scenario_runner --spec missing file" \
  "$SR" --spec "$TMP/no-such-spec.json"
expect 2 "is a directory" "scenario_runner --spec directory" \
  "$SR" --spec "$TMP"
expect 2 "requires --trace" "scenario_runner --trace-wall without --trace" \
  "$SR" --trace-wall

echo
echo "=== accepted paths (exit 0) ==="
expect 0 "" "scenario_runner corpus spec, --threads 0 (auto)" \
  "$SR" --spec "$SPEC" --threads 0 --out "$TMP/seq.json"
expect 0 "" "scenario_runner corpus spec, --engine-threads 4" \
  "$SR" --spec "$SPEC" --engine-threads 4 --out "$TMP/par.json"
if ! cmp -s "$TMP/seq.json" "$TMP/par.json"; then
  echo "FAIL: artifact differs between --engine-threads 1 and 4"
  FAILS=$((FAILS + 1))
else
  echo "ok    artifact byte-identical across --engine-threads 1 vs 4"
fi
expect 0 "" "scenario_runner --trace creates missing directory" \
  "$SR" --spec "$SPEC" --trace "$TMP/traces" --out "$TMP/traced.json"
if ! ls "$TMP/traces"/*.trace.json > /dev/null 2>&1; then
  echo "FAIL: --trace produced no trace files"
  FAILS=$((FAILS + 1))
else
  echo "ok    --trace wrote per-point trace files"
fi
expect 0 "" "fuzz_runner 1-spec budget, --threads 0 (auto)" \
  "$FZ" --budget 1 --seed 1 --threads 0 \
  --out "$TMP/fuzz.json" --dir "$TMP/repros"

echo
if [ "$FAILS" -ne 0 ]; then
  echo "cli tests: $FAILS FAILURE(S)"
  exit 1
fi
echo "cli tests: ALL GREEN"
