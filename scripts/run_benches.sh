#!/usr/bin/env bash
# Build Release and run the JSON macro-benchmarks.
#
# Writes two copies of each artifact:
#   bench/out/BENCH_<name>.json   (working copy, gitignored territory)
#   ./BENCH_<name>.json           (repo root, the tracked perf trajectory)
#
# bench_sustained_load additionally runs twice and byte-compares the two
# artifacts: its JSON carries no wall-clock or allocation fields, so any
# diff is a determinism regression in the open-loop engine path.
#
# Usage: scripts/run_benches.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target \
  bench_throughput_scalability bench_crossshard bench_table2_complexity \
  bench_epoch_transition bench_sustained_load

mkdir -p bench/out
for name in throughput_scalability crossshard table2_complexity epoch_transition sustained_load; do
  echo "=== bench_${name} ==="
  "$BUILD_DIR/bench_${name}" "bench/out/BENCH_${name}.json"
  cp "bench/out/BENCH_${name}.json" "BENCH_${name}.json"
done

echo "=== per-phase breakdown sections (deterministic integers only) ==="
# The "phases" arrays must carry protocol counters only — a wall-clock
# or allocation field there would break byte-comparability of the
# artifacts that are double-run compared.
for name in throughput_scalability crossshard table2_complexity epoch_transition sustained_load; do
  artifact="bench/out/BENCH_${name}.json"
  if ! grep -q '"phases":\[' "$artifact"; then
    echo "error: ${artifact} carries no per-phase breakdown" >&2
    exit 1
  fi
  if grep -o '"phases":\[[^]]*\]' "$artifact" | grep -E 'wall|alloc|payload'; then
    echo "error: non-deterministic field inside a phases section of ${artifact}" >&2
    exit 1
  fi
done
echo "phase breakdowns present, wall-clock free"

echo "=== paper-scale population points (m=32, m=64) ==="
# The shard-parallel engine path exists so the complexity/scalability
# sweeps can reach the paper's population scale; both artifacts must
# carry the m=32 and m=64 points or the slope fits silently regress to
# the small-m regime.
for name in throughput_scalability table2_complexity; do
  artifact="bench/out/BENCH_${name}.json"
  for m in 32 64; do
    if ! grep -q "\"m\":${m}[,}]" "$artifact"; then
      echo "error: ${artifact} is missing the m=${m} point" >&2
      exit 1
    fi
  done
done
echo "m=32 and m=64 present in both sweep artifacts"

echo "=== hot-shard skew / rebalance section ==="
# The sustained-load artifact must carry the skewed static-vs-rebalance
# pair (src/epoch/rebalance.*) — both modes, so the hottest-shard
# before/after comparison stays in the tracked perf trajectory.
artifact="bench/out/BENCH_sustained_load.json"
if ! grep -q '"skew_rebalance":' "$artifact"; then
  echo "error: ${artifact} is missing the skew_rebalance section" >&2
  exit 1
fi
for mode in static rebalance; do
  if ! grep -q "\"mode\":\"${mode}\"" "$artifact"; then
    echo "error: ${artifact} skew section is missing the ${mode} point" >&2
    exit 1
  fi
done
echo "skew_rebalance section present with both modes"

echo "=== bench_sustained_load (double-run byte-compare) ==="
"$BUILD_DIR/bench_sustained_load" "bench/out/BENCH_sustained_load.rerun.json" \
  > /dev/null
if ! cmp "bench/out/BENCH_sustained_load.json" \
         "bench/out/BENCH_sustained_load.rerun.json"; then
  echo "error: BENCH_sustained_load.json differs between runs" >&2
  exit 1
fi
rm -f "bench/out/BENCH_sustained_load.rerun.json"
echo "byte-identical across runs"

echo
echo "Artifacts:"
ls -l BENCH_*.json
