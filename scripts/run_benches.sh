#!/usr/bin/env bash
# Build Release and run the JSON macro-benchmarks.
#
# Writes two copies of each artifact:
#   bench/out/BENCH_<name>.json   (working copy, gitignored territory)
#   ./BENCH_<name>.json           (repo root, the tracked perf trajectory)
#
# Usage: scripts/run_benches.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target \
  bench_throughput_scalability bench_crossshard bench_table2_complexity \
  bench_epoch_transition

mkdir -p bench/out
for name in throughput_scalability crossshard table2_complexity epoch_transition; do
  echo "=== bench_${name} ==="
  "$BUILD_DIR/bench_${name}" "bench/out/BENCH_${name}.json"
  cp "bench/out/BENCH_${name}.json" "BENCH_${name}.json"
done

echo
echo "Artifacts:"
ls -l BENCH_*.json
