#!/usr/bin/env bash
# Build Release and run the JSON macro-benchmarks.
#
# Writes two copies of each artifact:
#   bench/out/BENCH_<name>.json   (working copy, gitignored territory)
#   ./BENCH_<name>.json           (repo root, the tracked perf trajectory)
#
# bench_sustained_load additionally runs twice and byte-compares the two
# artifacts: its JSON carries no wall-clock or allocation fields, so any
# diff is a determinism regression in the open-loop engine path.
#
# Usage: scripts/run_benches.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target \
  bench_throughput_scalability bench_crossshard bench_table2_complexity \
  bench_epoch_transition bench_sustained_load

mkdir -p bench/out
for name in throughput_scalability crossshard table2_complexity epoch_transition sustained_load; do
  echo "=== bench_${name} ==="
  "$BUILD_DIR/bench_${name}" "bench/out/BENCH_${name}.json"
  cp "bench/out/BENCH_${name}.json" "BENCH_${name}.json"
done

echo "=== bench_sustained_load (double-run byte-compare) ==="
"$BUILD_DIR/bench_sustained_load" "bench/out/BENCH_sustained_load.rerun.json" \
  > /dev/null
if ! cmp "bench/out/BENCH_sustained_load.json" \
         "bench/out/BENCH_sustained_load.rerun.json"; then
  echo "error: BENCH_sustained_load.json differs between runs" >&2
  exit 1
fi
rm -f "bench/out/BENCH_sustained_load.rerun.json"
echo "byte-identical across runs"

echo
echo "Artifacts:"
ls -l BENCH_*.json
