#!/usr/bin/env bash
# Build Release and run the scenario-matrix + invariant harness.
#
# Runs the bounded default matrix (3 adversary mixes x 2 delay regimes x
# 2 cross-shard fractions x 2 capacity skews + churn / shape / invalid /
# epoch scenarios, 3 rounds and 3 seeds each = 87 points) twice and
# byte-compares the JSON artifacts — the harness output
# is a pure function of the matrix, so any diff is a determinism
# regression. Exits non-zero on any invariant violation, determinism
# diff, or build failure.
#
# Usage: scripts/run_scenarios.sh [build-dir] [-- extra scenario_runner args]
#   scripts/run_scenarios.sh                       # default matrix
#   scripts/run_scenarios.sh build-bench           # reuse the bench build dir
#   scripts/run_scenarios.sh build-bench -- --spec my_scenarios.json
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build-bench"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target scenario_runner

mkdir -p bench/out
echo "=== scenario_runner (pass 1) ==="
"$BUILD_DIR/scenario_runner" --out bench/out/SCENARIOS.json "$@"
echo
echo "=== scenario_runner (pass 2, determinism check) ==="
"$BUILD_DIR/scenario_runner" --out bench/out/SCENARIOS.rerun.json "$@" \
  > /dev/null

if ! cmp -s bench/out/SCENARIOS.json bench/out/SCENARIOS.rerun.json; then
  echo "DETERMINISM REGRESSION: artifacts differ between identical runs" >&2
  diff bench/out/SCENARIOS.json bench/out/SCENARIOS.rerun.json | head >&2
  exit 1
fi
rm -f bench/out/SCENARIOS.rerun.json
echo "artifact deterministic: bench/out/SCENARIOS.json"
