#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cyc::analysis {
namespace {

TEST(Bounds, Fig5HeadlineNumbers) {
  // Fig. 5 setting: n=2000 nodes, t=666 malicious.
  const double p240 = committee_failure_exact(2000, 666, 240);
  // Paper claims < 2.1e-9 at c=240; our exact tail (failure = faulty
  // majority-or-tie, consistent with the >C/2 quorum) is the same order.
  EXPECT_LT(p240, 1e-8);
  EXPECT_GT(p240, 1e-10);
  // Union bound over m=20 committees stays tiny.
  EXPECT_LT(20.0 * p240, 1e-6);
}

TEST(Bounds, ExactTailDecaysExponentially) {
  double prev = 1.0;
  for (std::uint64_t c = 40; c <= 240; c += 40) {
    const double p = committee_failure_exact(2000, 666, c);
    EXPECT_LT(p, prev);
    prev = p;
  }
  // Eight-fold doubling of c drops failure by many orders of magnitude.
  EXPECT_LT(committee_failure_exact(2000, 666, 240) /
                committee_failure_exact(2000, 666, 40),
            1e-5);
}

TEST(Bounds, ExactBelowKlBound) {
  for (std::uint64_t c : {40u, 80u, 120u, 200u, 240u}) {
    EXPECT_LE(committee_failure_exact(2000, 666, c),
              committee_failure_kl_bound(2000, 666, c) * 1.0001)
        << "c=" << c;
  }
}

TEST(Bounds, KlBoundDegenerateWhenHalfFaulty) {
  // f >= 1/2 means the bound is vacuous (returns 1).
  EXPECT_EQ(committee_failure_kl_bound(100, 50, 100), 1.0);
}

TEST(Bounds, SimpleBoundEq4) {
  EXPECT_NEAR(committee_failure_simple_bound(12), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(committee_failure_simple_bound(240), std::exp(-20.0), 1e-20);
}

TEST(Bounds, PartialSetPaperValue) {
  // §V-C: lambda=40 -> < 8e-20 (paper's loose rounding; exact 8.22e-20).
  const double p = partial_set_failure(1.0 / 3.0, 40);
  EXPECT_LT(p, 1e-19);
  EXPECT_GT(p, 1e-20);
  // m=20 union bound ~ 2e-18.
  EXPECT_LT(20.0 * p, 2e-18);
}

TEST(Bounds, PartialSetMonotoneInLambda) {
  double prev = 1.0;
  for (std::uint64_t lambda : {1u, 5u, 10u, 20u, 40u}) {
    const double p = partial_set_failure(1.0 / 3.0, lambda);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(Bounds, MonteCarloMatchesExact) {
  // At a committee size where failure is frequent enough to sample.
  rng::Stream rng(1);
  const std::uint64_t n = 200, t = 66, c = 10;
  const double exact = committee_failure_exact(n, t, c);
  const double estimate = committee_failure_monte_carlo(n, t, c, 200000, rng);
  EXPECT_NEAR(estimate, exact, 0.01);
  EXPECT_GT(exact, 0.005);  // the regime is actually sampleable
}

TEST(Bounds, MonteCarloZeroWhenNoMalicious) {
  rng::Stream rng(2);
  EXPECT_EQ(committee_failure_monte_carlo(100, 0, 10, 1000, rng), 0.0);
}

TEST(Bounds, TableIFailureOrdering) {
  // At the paper's operating point, CycLedger's failure probability is
  // within a small factor of RapidChain's (both e^{-c/12}-driven) and
  // both beat the e^{-c/40}-scaled protocols at equal c... note the
  // exponent direction: e^{-c/40} > e^{-c/12} for the same c.
  ProtocolParamsView p{2000, 16, 125, 40};
  EXPECT_LT(rapidchain_round_failure(p), elastico_round_failure(p));
  EXPECT_LT(cycledger_round_failure(p), elastico_round_failure(p));
  // CycLedger pays only the negligible (1/3)^lambda on top of
  // RapidChain's committee term.
  EXPECT_NEAR(cycledger_round_failure(p),
              16.0 * std::exp(-125.0 / 12.0), 1e-6);
}

TEST(Bounds, CycledgerPartialTermNegligibleAtLambda40) {
  ProtocolParamsView p{2000, 16, 125, 40};
  const double with_partial = cycledger_round_failure(p);
  ProtocolParamsView p_inf = p;
  p_inf.lambda = 400;
  const double without = cycledger_round_failure(p_inf);
  EXPECT_NEAR(with_partial, without, 1e-12);
}

TEST(Bounds, StorageFormulasTableI) {
  ProtocolParamsView p{2000, 16, 125, 40};
  EXPECT_DOUBLE_EQ(elastico_storage(p), 2000.0);          // O(n)
  EXPECT_DOUBLE_EQ(rapidchain_storage(p), 125.0);         // O(c)
  EXPECT_NEAR(omniledger_storage(p), 125.0 + std::log2(17.0), 1e-9);
  EXPECT_NEAR(cycledger_storage(p), 16.0 * 16.0 / 2000.0 + 125.0, 1e-9);
  // CycLedger's m^2/n term is tiny at sane scales: storage ~ O(c).
  EXPECT_LT(cycledger_storage(p), elastico_storage(p));
}

TEST(Bounds, FailureProbsCapAtOne) {
  ProtocolParamsView tiny{40, 4, 10, 2};
  EXPECT_LE(elastico_round_failure(tiny), 1.0);
  EXPECT_LE(rapidchain_round_failure(tiny), 1.0);
  EXPECT_LE(cycledger_round_failure(tiny), 1.0);
}

// Property sweep: Monte-Carlo vs exact across parameter combinations.
struct McCase {
  std::uint64_t n, t, c;
};

class MonteCarloSweep : public ::testing::TestWithParam<McCase> {};

TEST_P(MonteCarloSweep, AgreesWithExactTail) {
  const auto [n, t, c] = GetParam();
  rng::Stream rng(n * 31 + t * 7 + c);
  const double exact = committee_failure_exact(n, t, c);
  const double estimate = committee_failure_monte_carlo(n, t, c, 100000, rng);
  EXPECT_NEAR(estimate, exact, std::max(0.01, 4.0 * std::sqrt(exact / 100000.0)));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MonteCarloSweep,
    ::testing::Values(McCase{100, 33, 8}, McCase{200, 66, 10},
                      McCase{500, 166, 12}, McCase{2000, 666, 14},
                      McCase{100, 49, 10}, McCase{60, 20, 6}));

}  // namespace
}  // namespace cyc::analysis
