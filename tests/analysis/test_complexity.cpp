#include "analysis/complexity.hpp"

#include <gtest/gtest.h>

namespace cyc::analysis {
namespace {

using net::Phase;
using protocol::Role;

TEST(Complexity, Names) {
  EXPECT_EQ(complexity_name(Complexity::kConstant), "O(1)");
  EXPECT_EQ(complexity_name(Complexity::kC2), "O(c^2)");
  EXPECT_EQ(complexity_name(Complexity::kMN), "O(mn)");
  EXPECT_EQ(complexity_name(Complexity::kNone), "-");
}

TEST(Complexity, TableIIExpectedCommCells) {
  // Spot-check cells straight out of Table II.
  EXPECT_EQ(expected_comm(Phase::kCommitteeConfig, Role::kCommon),
            Complexity::kC);
  EXPECT_EQ(expected_comm(Phase::kCommitteeConfig, Role::kLeader),
            Complexity::kC2);
  EXPECT_EQ(expected_comm(Phase::kSemiCommit, Role::kReferee),
            Complexity::kM2);
  EXPECT_EQ(expected_comm(Phase::kIntraConsensus, Role::kCommon),
            Complexity::kC);
  EXPECT_EQ(expected_comm(Phase::kInterConsensus, Role::kCommon),
            Complexity::kM);
  EXPECT_EQ(expected_comm(Phase::kInterConsensus, Role::kLeader),
            Complexity::kN);
  EXPECT_EQ(expected_comm(Phase::kBlock, Role::kReferee), Complexity::kMN);
}

TEST(Complexity, TableIIExpectedStorageCells) {
  EXPECT_EQ(expected_storage(Phase::kIntraConsensus, Role::kCommon),
            Complexity::kConstant);
  EXPECT_EQ(expected_storage(Phase::kIntraConsensus, Role::kPartial),
            Complexity::kC);
  EXPECT_EQ(expected_storage(Phase::kSemiCommit, Role::kLeader),
            Complexity::kM);
  EXPECT_EQ(expected_storage(Phase::kBlock, Role::kCommon), Complexity::kC);
  EXPECT_EQ(expected_storage(Phase::kBlock, Role::kReferee), Complexity::kN);
}

TEST(Complexity, ValueEvaluation) {
  EXPECT_DOUBLE_EQ(complexity_value(Complexity::kConstant, 100, 10, 10), 1.0);
  EXPECT_DOUBLE_EQ(complexity_value(Complexity::kC, 100, 10, 10), 10.0);
  EXPECT_DOUBLE_EQ(complexity_value(Complexity::kC2, 100, 10, 10), 100.0);
  EXPECT_DOUBLE_EQ(complexity_value(Complexity::kMN, 100, 10, 10), 1000.0);
}

TEST(Complexity, ClassifyExactCurves) {
  // Build synthetic measurements that follow each class exactly and
  // check they classify back.
  std::vector<double> n, m, c;
  for (double mm : {4.0, 8.0, 16.0, 32.0}) {
    m.push_back(mm);
    c.push_back(10.0);
    n.push_back(mm * 10.0);
  }
  auto curve = [&](Complexity target) {
    std::vector<double> y;
    for (std::size_t i = 0; i < n.size(); ++i) {
      y.push_back(3.7 * complexity_value(target, n[i], m[i], c[i]));
    }
    return y;
  };
  EXPECT_EQ(classify_scaling(n, m, c, curve(Complexity::kM)), Complexity::kM);
  EXPECT_EQ(classify_scaling(n, m, c, curve(Complexity::kM2)),
            Complexity::kM2);
  // With c fixed, O(n) and O(m) coincide up to a constant; both are
  // acceptable classifications for an O(n) curve here.
  const auto got = classify_scaling(n, m, c, curve(Complexity::kN));
  EXPECT_TRUE(got == Complexity::kN || got == Complexity::kM);
}

TEST(Complexity, ClassifyWithVaryingC) {
  // Vary c while fixing m to separate O(c) from O(m).
  std::vector<double> n, m, c, y;
  for (double cc : {8.0, 16.0, 32.0, 64.0}) {
    m.push_back(4.0);
    c.push_back(cc);
    n.push_back(4.0 * cc);
    y.push_back(2.0 * cc * cc);  // O(c^2)
  }
  EXPECT_EQ(classify_scaling(n, m, c, y), Complexity::kC2);
}

TEST(Complexity, ClassifyNoisyCurve) {
  // Vary m and c independently so all the candidate shapes separate.
  std::vector<double> n, m, c, y;
  const double noise[] = {1.1, 0.92, 1.05, 0.97, 1.02, 0.95};
  const double ms[] = {4.0, 8.0, 4.0, 8.0, 16.0, 4.0};
  const double cs[] = {8.0, 8.0, 32.0, 32.0, 16.0, 64.0};
  for (int i = 0; i < 6; ++i) {
    m.push_back(ms[i]);
    c.push_back(cs[i]);
    n.push_back(ms[i] * cs[i]);
    y.push_back(5.0 * cs[i] * noise[i]);  // noisy O(c)
  }
  EXPECT_EQ(classify_scaling(n, m, c, y), Complexity::kC);
}

TEST(Complexity, ClassifyErrors) {
  EXPECT_THROW(classify_scaling({1.0}, {1.0}, {1.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(classify_scaling({1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}, {1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cyc::analysis
