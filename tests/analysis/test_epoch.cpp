#include "analysis/epoch.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cyc::analysis {
namespace {

TEST(Epoch, BasicCompounding) {
  EXPECT_NEAR(epoch_failure(0.5, 1), 0.5, 1e-12);
  EXPECT_NEAR(epoch_failure(0.5, 2), 0.75, 1e-12);
  EXPECT_NEAR(epoch_failure(0.1, 10), 1.0 - std::pow(0.9, 10), 1e-12);
}

TEST(Epoch, Degenerate) {
  EXPECT_EQ(epoch_failure(0.0, 1000), 0.0);
  EXPECT_EQ(epoch_failure(1.0, 1), 1.0);
}

TEST(Epoch, TinyProbabilitiesExact) {
  // 1e-9 per round over 1e6 rounds ~ 1e-3; naive (1-p)^R would lose
  // precision.
  EXPECT_NEAR(epoch_failure(1e-9, 1000000), 1e-3, 1e-6);
}

TEST(Epoch, RoundsToFailure) {
  EXPECT_NEAR(rounds_to_failure(0.5, 0.5), 1.0, 1e-9);
  // Median time-to-failure with p=1e-3 is ~693 rounds.
  EXPECT_NEAR(rounds_to_failure(1e-3, 0.5), std::log(0.5) / std::log(0.999),
              1e-6);
  EXPECT_GT(rounds_to_failure(0.0, 0.5), 1e17);
}

TEST(Epoch, ElasticoCriticismReproduced) {
  // §II-A: "when there are 16 shards, the failure probability is 97%
  // over only 6 epochs" — Elastico's ~100-node committees under a 1/4
  // adversary. With c=100, m=16: per-round m*e^{-c/40} ~ 1.31 (capped
  // at 1), so 6 epochs are certain to fail; even a generous c=135
  // reproduces the >97% figure.
  ProtocolParamsView elastico_scale{1600, 16, 100, 0};
  EXPECT_GT(elastico_epoch_failure(elastico_scale, 6), 0.97);

  ProtocolParamsView generous{2160, 16, 135, 0};
  EXPECT_GT(elastico_epoch_failure(generous, 6), 0.6);
}

TEST(Epoch, CycLedgerSurvivesYears) {
  // At the paper's operating point, CycLedger's per-round failure
  // 4.8e-4... is c=125-small; with c=240 (Fig. 5's spot value) the
  // protocol runs ~millions of rounds to even odds.
  ProtocolParamsView strong{2000, 8, 250, 40};
  const double per_round = cycledger_round_failure(strong);
  EXPECT_LT(per_round, 1e-7);
  EXPECT_GT(rounds_to_failure(per_round, 0.5), 1e6);
}

TEST(Epoch, MonotoneInRounds) {
  double prev = 0.0;
  for (std::uint64_t rounds : {1u, 2u, 5u, 10u, 100u}) {
    const double p = epoch_failure(0.01, rounds);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace cyc::analysis
