#include "crypto/pow.hpp"

#include <gtest/gtest.h>

namespace cyc::crypto {
namespace {

TEST(Pow, SolveAndVerify) {
  const Bytes challenge = bytes_of("round-5-challenge");
  const std::uint64_t target = pow_target_for_bits(8);
  const auto solution = pow_solve(challenge, target, 0, 1u << 16);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(pow_verify(challenge, target, *solution));
}

TEST(Pow, WrongChallengeRejected) {
  const Bytes challenge = bytes_of("challenge A");
  const std::uint64_t target = pow_target_for_bits(8);
  const auto solution = pow_solve(challenge, target, 0, 1u << 16);
  ASSERT_TRUE(solution.has_value());
  EXPECT_FALSE(pow_verify(bytes_of("challenge B"), target, *solution));
}

TEST(Pow, ForgedDigestRejected) {
  const Bytes challenge = bytes_of("challenge");
  const std::uint64_t target = pow_target_for_bits(8);
  auto solution = pow_solve(challenge, target, 0, 1u << 16);
  ASSERT_TRUE(solution.has_value());
  solution->digest[0] ^= 1;
  EXPECT_FALSE(pow_verify(challenge, target, *solution));
}

TEST(Pow, HarderTargetRejected) {
  const Bytes challenge = bytes_of("challenge");
  const auto solution = pow_solve(challenge, pow_target_for_bits(4), 0, 4096);
  ASSERT_TRUE(solution.has_value());
  // The 4-bit solution is (almost surely) not a 40-bit solution.
  EXPECT_FALSE(pow_verify(challenge, pow_target_for_bits(40), *solution));
}

TEST(Pow, ExhaustedIterationsReturnNullopt) {
  // A 60-bit target is unreachable in 16 iterations.
  const auto solution =
      pow_solve(bytes_of("x"), pow_target_for_bits(60), 0, 16);
  EXPECT_FALSE(solution.has_value());
}

TEST(Pow, TargetForBits) {
  EXPECT_EQ(pow_target_for_bits(0), ~0ull);
  EXPECT_EQ(pow_target_for_bits(1), 1ull << 63);
  EXPECT_EQ(pow_target_for_bits(8), 1ull << 56);
  EXPECT_EQ(pow_target_for_bits(64), 1u);
  EXPECT_EQ(pow_target_for_bits(100), 1u);
}

TEST(Pow, ExpectedWork) {
  EXPECT_NEAR(pow_expected_work(pow_target_for_bits(8)), 256.0, 1e-6);
  EXPECT_NEAR(pow_expected_work(pow_target_for_bits(1)), 2.0, 1e-6);
}

TEST(Pow, StartOffsetRespected) {
  const Bytes challenge = bytes_of("offset");
  const std::uint64_t target = pow_target_for_bits(6);
  const auto a = pow_solve(challenge, target, 0, 1u << 16);
  const auto b = pow_solve(challenge, target, a->nonce + 1, 1u << 16);
  ASSERT_TRUE(a && b);
  EXPECT_GT(b->nonce, a->nonce);
  EXPECT_TRUE(pow_verify(challenge, target, *b));
}

TEST(Pow, DifficultyScalesWork) {
  // Average nonce needed grows roughly 2x per extra bit; check loosely
  // over a few challenges.
  double easy_total = 0, hard_total = 0;
  for (int i = 0; i < 10; ++i) {
    const Bytes ch = concat({bytes_of("scale"), be64(i)});
    easy_total += static_cast<double>(
        pow_solve(ch, pow_target_for_bits(4), 0, 1u << 20)->nonce + 1);
    hard_total += static_cast<double>(
        pow_solve(ch, pow_target_for_bits(10), 0, 1u << 20)->nonce + 1);
  }
  EXPECT_GT(hard_total, easy_total);
}

}  // namespace
}  // namespace cyc::crypto
