#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

namespace cyc::crypto {
namespace {

std::vector<Bytes> make_leaves(std::size_t count) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < count; ++i) {
    leaves.push_back(concat({bytes_of("leaf"), be64(i)}));
  }
  return leaves;
}

TEST(Merkle, SingleLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.leaf_count(), 1u);
  const auto proof = tree.prove(0);
  EXPECT_TRUE(proof.siblings.empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], proof));
}

TEST(Merkle, EmptyTreeHasSentinelRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), sha256({}));
}

TEST(Merkle, ProofVerifiesForAllLeaves) {
  for (std::size_t count : {2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u}) {
    const auto leaves = make_leaves(count);
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < count; ++i) {
      const auto proof = tree.prove(i);
      EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], proof))
          << "count=" << count << " leaf=" << i;
    }
  }
}

TEST(Merkle, WrongLeafRejected) {
  const auto leaves = make_leaves(8);
  MerkleTree tree(leaves);
  const auto proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[4], proof));
  EXPECT_FALSE(MerkleTree::verify(tree.root(), bytes_of("fake"), proof));
}

TEST(Merkle, WrongIndexRejected) {
  const auto leaves = make_leaves(8);
  MerkleTree tree(leaves);
  auto proof = tree.prove(3);
  proof.index = 5;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[3], proof));
}

TEST(Merkle, TamperedSiblingRejected) {
  const auto leaves = make_leaves(8);
  MerkleTree tree(leaves);
  auto proof = tree.prove(2);
  proof.siblings[0][0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[2], proof));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(16);
  const Digest root = MerkleTree(leaves).root();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 1;
    EXPECT_NE(MerkleTree(mutated).root(), root) << "leaf " << i;
  }
}

TEST(Merkle, RootIndependentOfProofQueries) {
  const auto leaves = make_leaves(10);
  MerkleTree tree(leaves);
  const Digest before = tree.root();
  (void)tree.prove(0);
  (void)tree.prove(9);
  EXPECT_EQ(tree.root(), before);
}

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree tree(make_leaves(4));
  EXPECT_THROW(tree.prove(4), std::out_of_range);
}

TEST(Merkle, ProofSerializationRoundTrip) {
  MerkleTree tree(make_leaves(12));
  const auto proof = tree.prove(7);
  const auto back = MerkleProof::deserialize(proof.serialize());
  EXPECT_EQ(back.index, proof.index);
  EXPECT_EQ(back.siblings, proof.siblings);
}

TEST(Merkle, ProofDepthIsLogarithmic) {
  MerkleTree tree(make_leaves(1024));
  EXPECT_EQ(tree.prove(0).siblings.size(), 10u);
}

TEST(Merkle, LeafNodeDomainSeparation) {
  // A single leaf equal to an internal node encoding must not collide:
  // build 2-leaf tree and check that using the root preimage as a leaf
  // gives a different root.
  const auto leaves = make_leaves(2);
  MerkleTree tree(leaves);
  MerkleTree tree2({digest_to_bytes(tree.root())});
  EXPECT_NE(tree.root(), tree2.root());
}

}  // namespace
}  // namespace cyc::crypto
