#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cyc::crypto {
namespace {

std::string hex_of(const Digest& d) { return to_hex(digest_to_bytes(d)); }

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Bytes msg(1000000, 'a');
  EXPECT_EQ(hex_of(sha256(msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog");
  Sha256 ctx;
  // Feed in awkward chunk sizes crossing block boundaries.
  std::size_t pos = 0;
  const std::size_t chunks[] = {1, 3, 7, 13, 19, 64, 100};
  std::size_t ci = 0;
  while (pos < msg.size()) {
    const std::size_t take = std::min(chunks[ci++ % 7], msg.size() - pos);
    ctx.update(BytesView(msg.data() + pos, take));
    pos += take;
  }
  EXPECT_EQ(ctx.finalize(), sha256(msg));
}

TEST(Sha256, BoundaryLengths) {
  // 55, 56, 63, 64, 65 bytes hit all padding branches.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    Bytes msg(len, 'x');
    Sha256 ctx;
    ctx.update(msg);
    EXPECT_EQ(ctx.finalize(), sha256(msg)) << "len=" << len;
  }
}

TEST(Sha256, Avalanche) {
  Bytes a = bytes_of("message");
  Bytes b = a;
  b[0] ^= 1;
  const Digest da = sha256(a), db = sha256(b);
  int differing_bits = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    differing_bits += __builtin_popcount(da[i] ^ db[i]);
  }
  EXPECT_GT(differing_bits, 80);  // ~128 expected
}

TEST(Sha256, ConcatHelper) {
  const Bytes a = bytes_of("ab");
  const Bytes b = bytes_of("c");
  EXPECT_EQ(sha256_concat({a, b}), sha256(bytes_of("abc")));
}

TEST(Sha256, PrefixU64) {
  const Digest d = sha256(bytes_of("abc"));
  // First 8 bytes of ba7816bf8f01cfea...
  EXPECT_EQ(digest_prefix_u64(d), 0xba7816bf8f01cfeaull);
}

TEST(Sha256, DigestBytesRoundTrip) {
  const Digest d = sha256(bytes_of("roundtrip"));
  EXPECT_EQ(digest_from_bytes(digest_to_bytes(d)), d);
}

TEST(Sha256, DigestFromBytesWrongSizeThrows) {
  EXPECT_THROW(digest_from_bytes(Bytes(31, 0)), std::invalid_argument);
  EXPECT_THROW(digest_from_bytes(Bytes(33, 0)), std::invalid_argument);
}

TEST(Sha256, StringViewUpdate) {
  Sha256 ctx;
  ctx.update(std::string_view("abc"));
  EXPECT_EQ(ctx.finalize(), sha256(bytes_of("abc")));
}

}  // namespace
}  // namespace cyc::crypto
