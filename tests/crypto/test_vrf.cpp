#include "crypto/vrf.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cyc::crypto {
namespace {

TEST(Vrf, ProveVerify) {
  const KeyPair kp = KeyPair::from_seed(1);
  const Bytes input = bytes_of("round-1-randomness");
  const VrfOutput out = vrf_prove(kp.sk, input);
  EXPECT_TRUE(vrf_verify(kp.pk, input, out));
}

TEST(Vrf, Unique) {
  // The VRF output for (sk, input) must be unique and reproducible.
  const KeyPair kp = KeyPair::from_seed(2);
  const Bytes input = bytes_of("input");
  EXPECT_EQ(vrf_prove(kp.sk, input), vrf_prove(kp.sk, input));
}

TEST(Vrf, DifferentInputsDifferentOutputs) {
  const KeyPair kp = KeyPair::from_seed(3);
  std::set<std::string> hashes;
  for (int i = 0; i < 50; ++i) {
    const VrfOutput out = vrf_prove(kp.sk, concat({bytes_of("in"), be64(i)}));
    const Bytes h = digest_to_bytes(out.hash);
    hashes.insert(std::string(h.begin(), h.end()));
  }
  EXPECT_EQ(hashes.size(), 50u);
}

TEST(Vrf, DifferentKeysDifferentOutputs) {
  const Bytes input = bytes_of("shared input");
  std::set<std::string> hashes;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const KeyPair kp = KeyPair::from_seed(seed + 10);
    const Bytes h = digest_to_bytes(vrf_prove(kp.sk, input).hash);
    hashes.insert(std::string(h.begin(), h.end()));
  }
  EXPECT_EQ(hashes.size(), 50u);
}

TEST(Vrf, WrongKeyRejected) {
  const KeyPair a = KeyPair::from_seed(4), b = KeyPair::from_seed(5);
  const Bytes input = bytes_of("input");
  const VrfOutput out = vrf_prove(a.sk, input);
  EXPECT_FALSE(vrf_verify(b.pk, input, out));
}

TEST(Vrf, WrongInputRejected) {
  const KeyPair kp = KeyPair::from_seed(6);
  const VrfOutput out = vrf_prove(kp.sk, bytes_of("A"));
  EXPECT_FALSE(vrf_verify(kp.pk, bytes_of("B"), out));
}

TEST(Vrf, ForgedHashRejected) {
  // An adversary cannot claim an arbitrary hash: the output is bound to
  // the proof.
  const KeyPair kp = KeyPair::from_seed(7);
  const Bytes input = bytes_of("input");
  VrfOutput out = vrf_prove(kp.sk, input);
  out.hash[0] ^= 1;
  EXPECT_FALSE(vrf_verify(kp.pk, input, out));
}

TEST(Vrf, ForgedProofRejected) {
  const KeyPair kp = KeyPair::from_seed(8);
  const Bytes input = bytes_of("input");
  VrfOutput out = vrf_prove(kp.sk, input);
  out.proof.s = (out.proof.s + 1) % kQ;
  EXPECT_FALSE(vrf_verify(kp.pk, input, out));
}

TEST(Vrf, SerializationRoundTrip) {
  const KeyPair kp = KeyPair::from_seed(9);
  const VrfOutput out = vrf_prove(kp.sk, bytes_of("serialize me"));
  EXPECT_EQ(VrfOutput::deserialize(out.serialize()), out);
}

TEST(Vrf, OutputUniformity) {
  // The top bit of the VRF hash should be ~uniform across inputs.
  const KeyPair kp = KeyPair::from_seed(10);
  int ones = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const VrfOutput out = vrf_prove(kp.sk, be64(i));
    if (out.hash[0] & 0x80) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.05);
}

}  // namespace
}  // namespace cyc::crypto
