// Verification-cache coherence and batch verification.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/schnorr.hpp"

namespace cyc::crypto {
namespace {

SignedMessage signed_msg(std::uint64_t key_seed, std::string_view text) {
  const KeyPair keys = KeyPair::from_seed(key_seed);
  return make_signed(keys, bytes_of(text));
}

TEST(VerifyCache, RepeatVerificationHitsCache) {
  verify_cache::clear();
  const SignedMessage m = signed_msg(1, "hello");
  EXPECT_TRUE(m.valid());
  const std::uint64_t misses_after_first = verify_cache::misses();
  EXPECT_TRUE(m.valid());
  EXPECT_TRUE(m.valid());
  EXPECT_EQ(verify_cache::misses(), misses_after_first);
  EXPECT_GE(verify_cache::hits(), 2u);

  // A separate object with identical content also hits.
  const SignedMessage copy = SignedMessage::deserialize(m.serialize());
  EXPECT_TRUE(copy.valid());
  EXPECT_EQ(verify_cache::misses(), misses_after_first);
}

TEST(VerifyCache, MutationChangesKeyAndVerdict) {
  verify_cache::clear();
  SignedMessage m = signed_msg(2, "payload");
  EXPECT_TRUE(m.valid());

  // Mutate the payload: the cached 'true' for the old content must not
  // leak onto the new content.
  m.payload.push_back(0x01);
  EXPECT_FALSE(m.valid());

  // Restore: back to the (cached) valid verdict.
  m.payload.pop_back();
  EXPECT_TRUE(m.valid());

  // Mutating the signature likewise re-keys the verdict.
  m.sig.s ^= 1;
  EXPECT_FALSE(m.valid());
}

TEST(VerifyCache, CachesNegativeVerdicts) {
  verify_cache::clear();
  SignedMessage m = signed_msg(3, "tamper");
  m.payload.push_back(0xff);
  EXPECT_FALSE(m.valid());
  const std::uint64_t misses = verify_cache::misses();
  EXPECT_FALSE(m.valid());
  EXPECT_EQ(verify_cache::misses(), misses);
}

TEST(VerifyBatch, AllValid) {
  verify_cache::clear();
  std::vector<SignedMessage> msgs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    msgs.push_back(signed_msg(10 + i, "batch item"));
  }
  std::vector<const SignedMessage*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  EXPECT_TRUE(verify_batch(ptrs));
  // The batch primes the cache: individual checks are now hits.
  const std::uint64_t misses = verify_cache::misses();
  for (const auto& m : msgs) EXPECT_TRUE(m.valid());
  EXPECT_EQ(verify_cache::misses(), misses);
}

TEST(VerifyBatch, DetectsSingleBadSignature) {
  verify_cache::clear();
  std::vector<SignedMessage> msgs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    msgs.push_back(signed_msg(20 + i, "batch item"));
  }
  msgs[3].sig.s = add_q(msgs[3].sig.s, 1);
  std::vector<const SignedMessage*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  EXPECT_FALSE(verify_batch(ptrs));
  // The fallback pass cached per-message verdicts: exactly one is bad.
  int bad = 0;
  for (const auto& m : msgs) bad += m.valid() ? 0 : 1;
  EXPECT_EQ(bad, 1);
}

TEST(VerifyBatch, DetectsForgedMessageContent) {
  verify_cache::clear();
  std::vector<SignedMessage> msgs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    msgs.push_back(signed_msg(30 + i, "authentic"));
  }
  msgs[0].payload = bytes_of("forged");
  std::vector<const SignedMessage*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  EXPECT_FALSE(verify_batch(ptrs));
}

TEST(VerifyBatch, EmptyAndSingleton) {
  verify_cache::clear();
  EXPECT_TRUE(verify_batch({}));
  const SignedMessage m = signed_msg(40, "solo");
  EXPECT_TRUE(verify_batch({&m}));
  SignedMessage bad = m;
  bad.payload.push_back(0);
  EXPECT_FALSE(verify_batch({&bad}));
}

TEST(VerifyBatch, MatchesIndividualVerdictsOnMixedBatches) {
  // Randomized cross-check: batch result == AND of individual verify().
  rng::Stream rng(99);
  for (int round = 0; round < 20; ++round) {
    verify_cache::clear();
    std::vector<SignedMessage> msgs;
    bool expect_all = true;
    for (std::uint64_t i = 0; i < 5; ++i) {
      SignedMessage m = signed_msg(100 + i, "mixed");
      if (rng.chance(0.3)) {
        m.sig.r = gmul(m.sig.r, kG);  // corrupt
        expect_all = false;
      }
      msgs.push_back(std::move(m));
    }
    std::vector<const SignedMessage*> ptrs;
    for (const auto& m : msgs) ptrs.push_back(&m);
    EXPECT_EQ(verify_batch(ptrs), expect_all);
    for (const auto& m : msgs) {
      EXPECT_EQ(m.valid(), verify(m.signer, m.payload, m.sig));
    }
  }
}

TEST(VerifyBatch, DuplicateSignerKeysInOneBatch) {
  verify_cache::clear();
  // The batched vote tally routinely sees several messages from the same
  // signer; the aggregate must not conflate them.
  std::vector<SignedMessage> msgs = {
      signed_msg(50, "vote-a"), signed_msg(50, "vote-b"),
      signed_msg(50, "vote-c"), signed_msg(51, "vote-a")};
  std::vector<const SignedMessage*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  EXPECT_TRUE(verify_batch(ptrs));
}

TEST(VerifyBatch, IdenticalMessageTwiceInOneBatch) {
  verify_cache::clear();
  std::vector<SignedMessage> msgs = {signed_msg(52, "dup"),
                                     signed_msg(52, "dup")};
  // Same content twice -> same fingerprint; both entries must verify,
  // first live and then entirely from the cache.
  EXPECT_EQ(msgs[0].fingerprint(), msgs[1].fingerprint());
  std::vector<const SignedMessage*> ptrs = {&msgs[0], &msgs[1]};
  EXPECT_TRUE(verify_batch(ptrs));
  const std::uint64_t misses = verify_cache::misses();
  EXPECT_TRUE(verify_batch(ptrs));
  EXPECT_EQ(verify_cache::misses(), misses);
}

TEST(VerifyBatch, CorruptEntryDoesNotPoisonNeighborsCache) {
  verify_cache::clear();
  std::vector<SignedMessage> msgs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    msgs.push_back(signed_msg(60 + i, "batched-payload"));
  }
  msgs[3].sig.s ^= 1;  // corrupt exactly one
  std::vector<const SignedMessage*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  EXPECT_FALSE(verify_batch(ptrs));

  // The failed aggregate fell back to per-message verification and
  // cached *those* verdicts: every neighbour valid, the corrupt one
  // invalid, and none of the checks below re-runs a Schnorr equation.
  const std::uint64_t hits_before = verify_cache::hits();
  const std::uint64_t misses_before = verify_cache::misses();
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(msgs[i].valid(), i != 3) << "message " << i;
  }
  EXPECT_EQ(verify_cache::hits(), hits_before + msgs.size());
  EXPECT_EQ(verify_cache::misses(), misses_before);
}

TEST(VerifyBatch, MixedCachedAndFreshEntries) {
  verify_cache::clear();
  std::vector<SignedMessage> first = {signed_msg(70, "warm")};
  EXPECT_TRUE(verify_batch({&first[0]}));

  // A batch mixing the warm entry with fresh ones resolves the warm
  // verdict from the cache and still verifies the rest.
  std::vector<SignedMessage> second = {first[0], signed_msg(71, "cold"),
                                       signed_msg(72, "cold")};
  const std::uint64_t hits_before = verify_cache::hits();
  EXPECT_TRUE(verify_batch({&second[0], &second[1], &second[2]}));
  EXPECT_GT(verify_cache::hits(), hits_before);

  // And a cached *negative* verdict fails the whole batch while the
  // fresh neighbour still resolves to its own true verdict.
  std::vector<SignedMessage> bad = {signed_msg(73, "neg")};
  bad[0].sig.s ^= 1;
  EXPECT_FALSE(verify_batch({&bad[0]}));
  std::vector<SignedMessage> mixed = {bad[0], signed_msg(74, "fresh")};
  EXPECT_FALSE(verify_batch({&mixed[0], &mixed[1]}));
  EXPECT_TRUE(mixed[1].valid()) << "fresh neighbour must still verify";
}

TEST(VerifyCache, RawTripleCacheAgreesWithVerify) {
  verify_cache::clear();
  const KeyPair keys = KeyPair::from_seed(7);
  const Bytes msg = bytes_of("tx body");
  const Signature sig = sign(keys.sk, msg);
  EXPECT_TRUE(verify_cached(keys.pk, msg, sig));
  EXPECT_TRUE(verify_cached(keys.pk, msg, sig));  // hit
  Bytes other = msg;
  other.push_back(1);
  EXPECT_FALSE(verify_cached(keys.pk, other, sig));
}

}  // namespace
}  // namespace cyc::crypto
