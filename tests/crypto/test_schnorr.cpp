#include "crypto/schnorr.hpp"

#include <gtest/gtest.h>

namespace cyc::crypto {
namespace {

KeyPair keys(std::uint64_t seed) { return KeyPair::from_seed(seed); }

TEST(Schnorr, SignVerify) {
  const KeyPair kp = keys(1);
  const Bytes msg = bytes_of("hello world");
  const Signature sig = sign(kp.sk, msg);
  EXPECT_TRUE(verify(kp.pk, msg, sig));
}

TEST(Schnorr, WrongMessageFails) {
  const KeyPair kp = keys(2);
  const Signature sig = sign(kp.sk, bytes_of("message A"));
  EXPECT_FALSE(verify(kp.pk, bytes_of("message B"), sig));
}

TEST(Schnorr, WrongKeyFails) {
  const KeyPair a = keys(3), b = keys(4);
  const Bytes msg = bytes_of("msg");
  const Signature sig = sign(a.sk, msg);
  EXPECT_FALSE(verify(b.pk, msg, sig));
}

TEST(Schnorr, TamperedSignatureFails) {
  const KeyPair kp = keys(5);
  const Bytes msg = bytes_of("msg");
  Signature sig = sign(kp.sk, msg);
  sig.s = (sig.s + 1) % kQ;
  EXPECT_FALSE(verify(kp.pk, msg, sig));
  sig = sign(kp.sk, msg);
  sig.r = gmul(sig.r, kG);
  EXPECT_FALSE(verify(kp.pk, msg, sig));
}

TEST(Schnorr, MalformedComponentsRejected) {
  const KeyPair kp = keys(6);
  const Bytes msg = bytes_of("msg");
  Signature sig = sign(kp.sk, msg);
  Signature bad = sig;
  bad.r = 0;  // not a group member
  EXPECT_FALSE(verify(kp.pk, msg, bad));
  bad = sig;
  bad.s = kQ;  // out-of-range scalar
  EXPECT_FALSE(verify(kp.pk, msg, bad));
  PublicKey bad_pk{0};
  EXPECT_FALSE(verify(bad_pk, msg, sig));
}

TEST(Schnorr, Deterministic) {
  const KeyPair kp = keys(7);
  const Bytes msg = bytes_of("same message");
  EXPECT_EQ(sign(kp.sk, msg), sign(kp.sk, msg));
}

TEST(Schnorr, DistinctMessagesDistinctNonces) {
  const KeyPair kp = keys(8);
  const Signature s1 = sign(kp.sk, bytes_of("m1"));
  const Signature s2 = sign(kp.sk, bytes_of("m2"));
  EXPECT_NE(s1.r, s2.r);  // deterministic nonce depends on message
}

TEST(Schnorr, EmptyMessage) {
  const KeyPair kp = keys(9);
  const Signature sig = sign(kp.sk, {});
  EXPECT_TRUE(verify(kp.pk, {}, sig));
}

TEST(Schnorr, KeyGeneration) {
  rng::Stream rng(10);
  const KeyPair kp = KeyPair::generate(rng);
  EXPECT_GT(kp.sk.x, 0u);
  EXPECT_LT(kp.sk.x, kQ);
  EXPECT_EQ(kp.pk.y, g_pow(kp.sk.x));
  EXPECT_TRUE(in_group(kp.pk.y));
}

TEST(Schnorr, FromSeedDeterministic) {
  EXPECT_EQ(keys(42).pk, keys(42).pk);
  EXPECT_NE(keys(42).pk, keys(43).pk);
}

TEST(Schnorr, SerializationRoundTrip) {
  const KeyPair kp = keys(11);
  const Signature sig = sign(kp.sk, bytes_of("x"));
  EXPECT_EQ(Signature::deserialize(sig.serialize()), sig);
  EXPECT_EQ(PublicKey::deserialize(kp.pk.serialize()), kp.pk);
}

TEST(SignedMessage, RoundTripAndValidity) {
  const KeyPair kp = keys(12);
  const SignedMessage sm = make_signed(kp, bytes_of("payload"));
  EXPECT_TRUE(sm.valid());
  const SignedMessage back = SignedMessage::deserialize(sm.serialize());
  EXPECT_EQ(back, sm);
  EXPECT_TRUE(back.valid());
}

TEST(SignedMessage, TamperedPayloadInvalid) {
  const KeyPair kp = keys(13);
  SignedMessage sm = make_signed(kp, bytes_of("payload"));
  sm.payload.push_back(0);
  EXPECT_FALSE(sm.valid());
}

TEST(SignedMessage, SwappedSignerInvalid) {
  const KeyPair a = keys(14), b = keys(15);
  SignedMessage sm = make_signed(a, bytes_of("payload"));
  sm.signer = b.pk;
  EXPECT_FALSE(sm.valid());
}

// Property sweep across many keys and messages.
class SchnorrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchnorrSweep, RoundTrip) {
  const KeyPair kp = keys(GetParam());
  for (std::uint64_t i = 0; i < 8; ++i) {
    const Bytes msg = concat({bytes_of("msg"), be64(i * GetParam())});
    const Signature sig = sign(kp.sk, msg);
    EXPECT_TRUE(verify(kp.pk, msg, sig));
    Bytes wrong = msg;
    wrong[0] ^= 1;
    EXPECT_FALSE(verify(kp.pk, wrong, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(ManyKeys, SchnorrSweep,
                         ::testing::Values(100, 200, 300, 400, 500, 600, 700,
                                           800));

}  // namespace
}  // namespace cyc::crypto
