#include "crypto/pvss.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cyc::crypto {
namespace {

TEST(Pvss, DealAndReconstruct) {
  rng::Stream rng(1);
  const std::uint64_t secret = 123456789;
  const auto dealing = pvss_deal(secret, 9, 4, rng);
  EXPECT_EQ(dealing.shares.size(), 9u);
  EXPECT_EQ(dealing.commitments.size(), 5u);
  const auto recovered = pvss_reconstruct(dealing.shares, 4);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, secret);
}

TEST(Pvss, ReconstructFromAnySubset) {
  rng::Stream rng(2);
  const std::uint64_t secret = 42;
  const auto dealing = pvss_deal(secret, 7, 3, rng);
  // Any 4 = t+1 shares suffice; try several subsets.
  for (std::size_t start = 0; start + 4 <= 7; ++start) {
    std::vector<PvssShare> subset(dealing.shares.begin() + start,
                                  dealing.shares.begin() + start + 4);
    const auto recovered = pvss_reconstruct(subset, 3);
    ASSERT_TRUE(recovered.has_value()) << "start=" << start;
    EXPECT_EQ(*recovered, secret);
  }
}

TEST(Pvss, TooFewSharesFail) {
  rng::Stream rng(3);
  const auto dealing = pvss_deal(99, 7, 3, rng);
  std::vector<PvssShare> subset(dealing.shares.begin(),
                                dealing.shares.begin() + 3);
  EXPECT_FALSE(pvss_reconstruct(subset, 3).has_value());
}

TEST(Pvss, DuplicateSharesDontCount) {
  rng::Stream rng(4);
  const auto dealing = pvss_deal(99, 7, 3, rng);
  std::vector<PvssShare> dupes(4, dealing.shares[0]);
  EXPECT_FALSE(pvss_reconstruct(dupes, 3).has_value());
}

TEST(Pvss, ShareVerification) {
  rng::Stream rng(5);
  const auto dealing = pvss_deal(7777, 10, 4, rng);
  for (const auto& share : dealing.shares) {
    EXPECT_TRUE(pvss_verify_share(dealing.commitments, share));
  }
}

TEST(Pvss, CorruptedShareDetected) {
  rng::Stream rng(6);
  const auto dealing = pvss_deal(31337, 10, 4, rng);
  for (const auto& share : dealing.shares) {
    PvssShare bad = share;
    bad.value = add_q(bad.value, 1);
    EXPECT_FALSE(pvss_verify_share(dealing.commitments, bad));
  }
}

TEST(Pvss, WrongIndexDetected) {
  rng::Stream rng(7);
  const auto dealing = pvss_deal(5, 6, 2, rng);
  PvssShare bad = dealing.shares[0];
  bad.index = dealing.shares[1].index;
  EXPECT_FALSE(pvss_verify_share(dealing.commitments, bad));
  bad.index = 0;
  EXPECT_FALSE(pvss_verify_share(dealing.commitments, bad));
}

TEST(Pvss, MaxThresholdNeedsEveryShare) {
  // t = participants - 1 is the boundary: all shares are required, one
  // fewer (threshold-1 shares... threshold shares) must fail.
  rng::Stream rng(40);
  const std::uint64_t secret = 888;
  const auto dealing = pvss_deal(secret, 5, 4, rng);
  const auto full = pvss_reconstruct(dealing.shares, 4);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, secret);
  std::vector<PvssShare> missing_one(dealing.shares.begin(),
                                     dealing.shares.end() - 1);
  EXPECT_FALSE(pvss_reconstruct(missing_one, 4).has_value());
}

TEST(Pvss, ThresholdOneReconstruction) {
  // t = 1: any two distinct shares recover the line's intercept; one
  // share (or two copies of the same share) reveals nothing.
  rng::Stream rng(41);
  const std::uint64_t secret = 4242;
  const auto dealing = pvss_deal(secret, 6, 1, rng);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      const auto got =
          pvss_reconstruct({dealing.shares[i], dealing.shares[j]}, 1);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, secret);
    }
  }
  EXPECT_FALSE(pvss_reconstruct({dealing.shares[0]}, 1).has_value());
  EXPECT_FALSE(
      pvss_reconstruct({dealing.shares[0], dealing.shares[0]}, 1).has_value());
}

TEST(Pvss, MixedDealingSharesFailCommitmentCheck) {
  // Shares from two different dealers interpolate to garbage; the
  // commitment check C_0 = g^secret catches the cross-contamination even
  // though every share is individually well-formed under its own dealer.
  rng::Stream rng(42);
  const auto a = pvss_deal(1111, 7, 3, rng);
  const auto b = pvss_deal(2222, 7, 3, rng);
  std::vector<PvssShare> mixed = {a.shares[0], a.shares[1], b.shares[2],
                                  b.shares[3]};
  const auto got = pvss_reconstruct(mixed, 3);
  ASSERT_TRUE(got.has_value());  // interpolation itself succeeds...
  EXPECT_NE(g_pow(*got), pvss_committed_secret(a.commitments));
  EXPECT_NE(g_pow(*got), pvss_committed_secret(b.commitments));
  // ...and the foreign shares fail public verification against either
  // dealer's commitments, so an honest verifier never mixes them.
  EXPECT_FALSE(pvss_verify_share(a.commitments, b.shares[2]));
  EXPECT_FALSE(pvss_verify_share(b.commitments, a.shares[0]));
}

TEST(Pvss, TamperedShareFilteredThenReconstruct) {
  // The verify-then-reconstruct pipeline every holder runs: a tampered
  // share is rejected by the public check and reconstruction proceeds
  // from the remaining valid shares.
  rng::Stream rng(43);
  const std::uint64_t secret = 31415;
  auto dealing = pvss_deal(secret, 7, 3, rng);
  dealing.shares[2].value = add_q(dealing.shares[2].value, 5);  // tamper
  std::vector<PvssShare> valid;
  for (const auto& share : dealing.shares) {
    if (pvss_verify_share(dealing.commitments, share)) valid.push_back(share);
  }
  EXPECT_EQ(valid.size(), 6u);
  const auto got = pvss_reconstruct(valid, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, secret);
  EXPECT_EQ(g_pow(*got), pvss_committed_secret(dealing.commitments));
}

TEST(Beacon, DuplicateDealerSecretsBothCount) {
  // Two dealers contributing the same secret are still two dealers: the
  // duplicate is not silently deduplicated (each dealt sharing is an
  // independent polynomial), so the summed output differs from the
  // single-contribution run.
  rng::Stream rng1(44), rng2(44);
  const auto dup = RandomnessBeacon::run(5, {7, 7, 9}, {}, rng1);
  const auto single = RandomnessBeacon::run(5, {7, 9}, {}, rng2);
  EXPECT_TRUE(dup.disqualified.empty());
  EXPECT_NE(dup.randomness, single.randomness);
}

TEST(Beacon, AllDealersCheatingDisqualifiesEveryone) {
  rng::Stream rng(45);
  const std::vector<std::uint64_t> secrets = {3, 5, 7};
  const auto result = RandomnessBeacon::run(6, secrets, {0, 1, 2}, rng);
  EXPECT_EQ(result.disqualified, (std::vector<std::size_t>{0, 1, 2}));
  // The output degenerates to H(round || 0) — still well-defined, and
  // the disqualification list is the caller's signal that the run lost
  // its honest-majority assumption.
}

TEST(Pvss, CommittedSecretMatches) {
  rng::Stream rng(8);
  const std::uint64_t secret = 2024;
  const auto dealing = pvss_deal(secret, 5, 2, rng);
  EXPECT_EQ(pvss_committed_secret(dealing.commitments), g_pow(secret));
}

TEST(Pvss, InvalidParamsThrow) {
  rng::Stream rng(9);
  EXPECT_THROW(pvss_deal(1, 0, 0, rng), std::invalid_argument);
  EXPECT_THROW(pvss_deal(1, 5, 5, rng), std::invalid_argument);
  EXPECT_THROW(pvss_committed_secret({}), std::invalid_argument);
}

TEST(Beacon, DeterministicGivenSecrets) {
  rng::Stream rng1(10), rng2(10);
  const std::vector<std::uint64_t> secrets = {1, 2, 3, 4, 5};
  const auto a = RandomnessBeacon::run(7, secrets, {}, rng1);
  const auto b = RandomnessBeacon::run(7, secrets, {}, rng2);
  EXPECT_EQ(a.randomness, b.randomness);
  EXPECT_TRUE(a.disqualified.empty());
}

TEST(Beacon, RoundSeparation) {
  rng::Stream rng1(11), rng2(11);
  const std::vector<std::uint64_t> secrets = {9, 8, 7};
  EXPECT_NE(RandomnessBeacon::run(1, secrets, {}, rng1).randomness,
            RandomnessBeacon::run(2, secrets, {}, rng2).randomness);
}

TEST(Beacon, CheatersDisqualified) {
  rng::Stream rng(12);
  const std::vector<std::uint64_t> secrets = {11, 22, 33, 44, 55};
  const auto result = RandomnessBeacon::run(3, secrets, {1, 3}, rng);
  EXPECT_EQ(result.disqualified, (std::vector<std::size_t>{1, 3}));
}

TEST(Beacon, OutputUnbiasedByCheaterRemoval) {
  // Disqualifying a cheater changes the output (their contribution is
  // dropped) but still produces a valid 32-byte randomness.
  rng::Stream rng1(13), rng2(13);
  const std::vector<std::uint64_t> secrets = {5, 6, 7};
  const auto honest = RandomnessBeacon::run(4, secrets, {}, rng1);
  const auto with_cheater = RandomnessBeacon::run(4, secrets, {0}, rng2);
  EXPECT_NE(honest.randomness, with_cheater.randomness);
}

TEST(Beacon, NoDealersThrows) {
  rng::Stream rng(14);
  EXPECT_THROW(RandomnessBeacon::run(1, {}, {}, rng), std::invalid_argument);
}

// Property sweep over (participants, threshold).
struct PvssParam {
  std::size_t participants;
  std::size_t threshold;
};

class PvssSweep : public ::testing::TestWithParam<PvssParam> {};

TEST_P(PvssSweep, DealVerifyReconstruct) {
  const auto [participants, t] = GetParam();
  rng::Stream rng(100 + participants * 13 + t);
  const std::uint64_t secret = rng.below(kQ);
  const auto dealing = pvss_deal(secret, participants, t, rng);
  for (const auto& share : dealing.shares) {
    EXPECT_TRUE(pvss_verify_share(dealing.commitments, share));
  }
  const auto recovered = pvss_reconstruct(dealing.shares, t);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, secret);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PvssSweep,
                         ::testing::Values(PvssParam{3, 1}, PvssParam{5, 2},
                                           PvssParam{7, 3}, PvssParam{9, 4},
                                           PvssParam{15, 7}, PvssParam{21, 10},
                                           PvssParam{4, 1}, PvssParam{12, 5}));

}  // namespace
}  // namespace cyc::crypto
