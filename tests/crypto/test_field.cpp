#include "crypto/field.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace cyc::crypto {
namespace {

TEST(Field, ParametersArePrime) {
  EXPECT_TRUE(is_probable_prime(kP));
  EXPECT_TRUE(is_probable_prime(kQ));
  EXPECT_EQ(kP, 2 * kQ + 1);  // safe prime structure
}

TEST(Field, GeneratorHasOrderQ) {
  EXPECT_TRUE(in_group(kG));
  EXPECT_EQ(powmod(kG, kQ, kP), 1u);
  EXPECT_NE(kG, 1u);
}

TEST(Field, MulmodMatchesSmallCases) {
  EXPECT_EQ(mulmod(7, 9, 11), 63 % 11);
  EXPECT_EQ(mulmod(0, 5, 7), 0u);
  // Large operands that would overflow 64-bit multiplication.
  const std::uint64_t a = kP - 1, b = kP - 2;
  // (p-1)(p-2) mod p = (-1)(-2) mod p = 2
  EXPECT_EQ(mulmod(a, b, kP), 2u);
}

TEST(Field, PowmodBasics) {
  EXPECT_EQ(powmod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(powmod(5, 0, 7), 1u);
  EXPECT_EQ(powmod(0, 5, 7), 0u);
  // Fermat: a^(p-1) = 1 mod p for a != 0
  EXPECT_EQ(powmod(123456789, kP - 1, kP), 1u);
}

TEST(Field, InverseModQ) {
  rng::Stream rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = 1 + rng.below(kQ - 1);
    EXPECT_EQ(mul_q(a, inv_mod_q(a)), 1u);
  }
}

TEST(Field, ScalarArithmetic) {
  EXPECT_EQ(add_q(kQ - 1, 1), 0u);
  EXPECT_EQ(sub_q(0, 1), kQ - 1);
  EXPECT_EQ(add_q(kQ - 1, kQ - 1), kQ - 2);
  EXPECT_EQ(mul_q(2, kQ - 1), kQ - 2);  // 2(q-1) = 2q-2 = q-2 mod q
  EXPECT_EQ(sub_q(5, 5), 0u);
}

TEST(Field, GroupClosure) {
  rng::Stream rng(2);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t x = g_pow(rng.below(kQ));
    const std::uint64_t y = g_pow(rng.below(kQ));
    EXPECT_TRUE(in_group(x));
    EXPECT_TRUE(in_group(gmul(x, y)));
  }
}

TEST(Field, ExponentHomomorphism) {
  rng::Stream rng(3);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t a = rng.below(kQ), b = rng.below(kQ);
    EXPECT_EQ(gmul(g_pow(a), g_pow(b)), g_pow(add_q(a, b)));
    EXPECT_EQ(gpow(g_pow(a), b), g_pow(mul_q(a, b)));
  }
}

TEST(Field, InGroupRejectsNonMembers) {
  EXPECT_FALSE(in_group(0));
  EXPECT_FALSE(in_group(kP));       // out of range
  EXPECT_FALSE(in_group(kP - 1));   // -1 has order 2, not in subgroup
}

TEST(Field, MillerRabinKnownValues) {
  EXPECT_TRUE(is_probable_prime(2));
  EXPECT_TRUE(is_probable_prime(3));
  EXPECT_TRUE(is_probable_prime(1000000007));
  EXPECT_FALSE(is_probable_prime(1));
  EXPECT_FALSE(is_probable_prime(0));
  EXPECT_FALSE(is_probable_prime(561));      // Carmichael number
  EXPECT_FALSE(is_probable_prime(6601));     // Carmichael number
  EXPECT_FALSE(is_probable_prime(1ull << 40));
}

}  // namespace
}  // namespace cyc::crypto
