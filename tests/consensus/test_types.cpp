#include "consensus/types.hpp"

#include <gtest/gtest.h>

namespace cyc::consensus {
namespace {

using crypto::KeyPair;

TEST(ConsensusTypes, ProposeRoundTrip) {
  Propose p;
  p.id = {3, 7};
  p.message = bytes_of("payload");
  p.digest = crypto::sha256(p.message);
  const Propose back = Propose::deserialize(p.serialize());
  EXPECT_EQ(back.id, p.id);
  EXPECT_EQ(back.digest, p.digest);
  EXPECT_EQ(back.message, p.message);
}

TEST(ConsensusTypes, SignedPartsDiffer) {
  Propose p;
  p.id = {1, 2};
  p.digest = crypto::sha256(bytes_of("m"));
  Echo e;
  e.id = p.id;
  e.digest = p.digest;
  e.member = 5;
  Confirm c;
  c.id = p.id;
  c.digest = p.digest;
  c.member = 5;
  // The tag prefixes ensure an ECHO signature cannot be replayed as a
  // CONFIRM (and vice versa).
  EXPECT_NE(p.signed_part(), e.signed_part());
  EXPECT_NE(e.signed_part(), c.signed_part());
}

TEST(ConsensusTypes, QuorumCertVerify) {
  const InstanceId id{1, 10};
  const crypto::Digest digest = crypto::sha256(bytes_of("decision"));
  std::vector<KeyPair> committee;
  std::vector<crypto::PublicKey> pks;
  for (std::uint64_t i = 0; i < 5; ++i) {
    committee.push_back(KeyPair::from_seed(100 + i));
    pks.push_back(committee.back().pk);
  }

  QuorumCert cert;
  cert.id = id;
  cert.digest = digest;
  for (int i = 0; i < 3; ++i) {  // 3 of 5 > C/2
    Confirm c;
    c.id = id;
    c.digest = digest;
    c.member = static_cast<std::uint64_t>(i);
    cert.confirms.push_back(
        crypto::make_signed(committee[static_cast<std::size_t>(i)], c.signed_part()));
  }
  EXPECT_TRUE(cert.verify(pks, 5));
}

TEST(ConsensusTypes, QuorumCertTooFewSigners) {
  const InstanceId id{1, 11};
  const crypto::Digest digest = crypto::sha256(bytes_of("d"));
  std::vector<crypto::PublicKey> pks;
  QuorumCert cert;
  cert.id = id;
  cert.digest = digest;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const KeyPair kp = KeyPair::from_seed(200 + i);
    pks.push_back(kp.pk);
    if (i < 2) {  // only 2 of 5
      Confirm c;
      c.id = id;
      c.digest = digest;
      c.member = i;
      cert.confirms.push_back(crypto::make_signed(kp, c.signed_part()));
    }
  }
  EXPECT_FALSE(cert.verify(pks, 5));
}

TEST(ConsensusTypes, QuorumCertDuplicateSignersRejected) {
  const InstanceId id{1, 12};
  const crypto::Digest digest = crypto::sha256(bytes_of("d"));
  const KeyPair kp = KeyPair::from_seed(300);
  Confirm c;
  c.id = id;
  c.digest = digest;
  c.member = 0;
  const auto sm = crypto::make_signed(kp, c.signed_part());
  QuorumCert cert;
  cert.id = id;
  cert.digest = digest;
  cert.confirms = {sm, sm, sm};  // 3 copies of one signature
  EXPECT_FALSE(cert.verify({kp.pk}, 3));
}

TEST(ConsensusTypes, QuorumCertOutsiderRejected) {
  const InstanceId id{1, 13};
  const crypto::Digest digest = crypto::sha256(bytes_of("d"));
  const KeyPair member = KeyPair::from_seed(400);
  const KeyPair outsider = KeyPair::from_seed(401);
  Confirm c;
  c.id = id;
  c.digest = digest;
  c.member = 0;
  QuorumCert cert;
  cert.id = id;
  cert.digest = digest;
  cert.confirms = {crypto::make_signed(outsider, c.signed_part())};
  EXPECT_FALSE(cert.verify({member.pk}, 1));
}

TEST(ConsensusTypes, QuorumCertWrongDigestRejected) {
  const InstanceId id{1, 14};
  const KeyPair kp = KeyPair::from_seed(500);
  Confirm c;
  c.id = id;
  c.digest = crypto::sha256(bytes_of("actual"));
  c.member = 0;
  QuorumCert cert;
  cert.id = id;
  cert.digest = crypto::sha256(bytes_of("claimed"));  // mismatch
  cert.confirms = {crypto::make_signed(kp, c.signed_part())};
  EXPECT_FALSE(cert.verify({kp.pk}, 1));
}

TEST(ConsensusTypes, QuorumCertRoundTrip) {
  const InstanceId id{2, 20};
  const crypto::Digest digest = crypto::sha256(bytes_of("x"));
  const KeyPair kp = KeyPair::from_seed(600);
  Confirm c;
  c.id = id;
  c.digest = digest;
  c.member = 0;
  QuorumCert cert;
  cert.id = id;
  cert.digest = digest;
  cert.confirms = {crypto::make_signed(kp, c.signed_part())};
  const QuorumCert back = QuorumCert::deserialize(cert.serialize());
  EXPECT_EQ(back.id, cert.id);
  EXPECT_EQ(back.digest, cert.digest);
  ASSERT_EQ(back.confirms.size(), 1u);
  EXPECT_TRUE(back.verify({kp.pk}, 1));
}

TEST(EquivocationWitness, ValidPair) {
  const KeyPair leader = KeyPair::from_seed(700);
  Propose a, b;
  a.id = b.id = {1, 5};
  a.message = bytes_of("honest");
  a.digest = crypto::sha256(a.message);
  b.message = bytes_of("evil");
  b.digest = crypto::sha256(b.message);

  EquivocationWitness w;
  w.first = crypto::make_signed(leader, a.signed_part());
  w.second = crypto::make_signed(leader, b.signed_part());
  EXPECT_TRUE(w.valid(leader.pk));
}

TEST(EquivocationWitness, SameDigestInvalid) {
  const KeyPair leader = KeyPair::from_seed(701);
  Propose a;
  a.id = {1, 5};
  a.message = bytes_of("same");
  a.digest = crypto::sha256(a.message);
  EquivocationWitness w;
  w.first = crypto::make_signed(leader, a.signed_part());
  w.second = w.first;
  EXPECT_FALSE(w.valid(leader.pk));
}

TEST(EquivocationWitness, DifferentInstanceInvalid) {
  const KeyPair leader = KeyPair::from_seed(702);
  Propose a, b;
  a.id = {1, 5};
  b.id = {1, 6};  // different sn: not equivocation
  a.message = bytes_of("m1");
  a.digest = crypto::sha256(a.message);
  b.message = bytes_of("m2");
  b.digest = crypto::sha256(b.message);
  EquivocationWitness w;
  w.first = crypto::make_signed(leader, a.signed_part());
  w.second = crypto::make_signed(leader, b.signed_part());
  EXPECT_FALSE(w.valid(leader.pk));
}

TEST(EquivocationWitness, ForgedSignerInvalid) {
  // Claim 4: a witness not signed by the leader can never frame it.
  const KeyPair leader = KeyPair::from_seed(703);
  const KeyPair framer = KeyPair::from_seed(704);
  Propose a, b;
  a.id = b.id = {1, 5};
  a.message = bytes_of("m1");
  a.digest = crypto::sha256(a.message);
  b.message = bytes_of("m2");
  b.digest = crypto::sha256(b.message);
  EquivocationWitness w;
  w.first = crypto::make_signed(framer, a.signed_part());
  w.second = crypto::make_signed(framer, b.signed_part());
  EXPECT_FALSE(w.valid(leader.pk));
}

TEST(EquivocationWitness, GarbagePayloadInvalid) {
  const KeyPair leader = KeyPair::from_seed(705);
  EquivocationWitness w;
  w.first = crypto::make_signed(leader, bytes_of("not a propose"));
  w.second = crypto::make_signed(leader, bytes_of("also not"));
  EXPECT_FALSE(w.valid(leader.pk));
}

TEST(EquivocationWitness, RoundTrip) {
  const KeyPair leader = KeyPair::from_seed(706);
  Propose a, b;
  a.id = b.id = {1, 5};
  a.message = bytes_of("m1");
  a.digest = crypto::sha256(a.message);
  b.message = bytes_of("m2");
  b.digest = crypto::sha256(b.message);
  EquivocationWitness w;
  w.first = crypto::make_signed(leader, a.signed_part());
  w.second = crypto::make_signed(leader, b.signed_part());
  const auto back = EquivocationWitness::deserialize(w.serialize());
  EXPECT_TRUE(back.valid(leader.pk));
}

}  // namespace
}  // namespace cyc::consensus
