// Tests for the Algorithm 3 state machines, driven without a network:
// messages are shuttled by hand so every rule is observable.
#include "consensus/engine.hpp"

#include <gtest/gtest.h>

namespace cyc::consensus {
namespace {

using crypto::KeyPair;

struct Committee {
  std::vector<KeyPair> keys;
  InstanceId id{1, 42};
  Bytes message = bytes_of("TXdecSET");

  explicit Committee(std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      keys.push_back(KeyPair::from_seed(900 + i));
    }
  }

  std::size_t size() const { return keys.size(); }
  const KeyPair& leader_keys() const { return keys[0]; }
};

/// Run a full happy-path round: leader proposes, members echo to all,
/// members confirm, leader collects. Returns the cert if reached.
std::optional<QuorumCert> run_happy_path(Committee& c) {
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  std::vector<MemberInstance> members;
  for (std::size_t i = 0; i < c.size(); ++i) {
    members.emplace_back(c.keys[i], i, c.id, c.leader_keys().pk, c.size());
  }

  const ProposeWire propose = leader.make_propose();
  std::vector<EchoWire> echoes;
  std::vector<ConfirmWire> confirms;
  for (auto& m : members) {
    auto out = m.on_propose(propose);
    EXPECT_FALSE(out.witness.has_value());
    if (out.echo_broadcast) echoes.push_back(*out.echo_broadcast);
    // A size-1 committee confirms straight from the proposal.
    if (out.confirm_to_leader) confirms.push_back(*out.confirm_to_leader);
  }
  for (auto& m : members) {
    for (const auto& echo : echoes) {
      auto out = m.on_echo(echo);
      EXPECT_FALSE(out.witness.has_value());
      if (out.confirm_to_leader) confirms.push_back(*out.confirm_to_leader);
    }
  }
  std::optional<QuorumCert> cert;
  for (const auto& confirm : confirms) {
    auto maybe = leader.on_confirm(confirm);
    if (maybe) cert = maybe;
  }
  return cert;
}

TEST(Alg3, HappyPathReachesQuorum) {
  Committee c(5);
  const auto cert = run_happy_path(c);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->digest, crypto::sha256(c.message));
  std::vector<crypto::PublicKey> pks;
  for (const auto& kp : c.keys) pks.push_back(kp.pk);
  EXPECT_TRUE(cert->verify(pks, c.size()));
}

TEST(Alg3, WorksForVariousSizes) {
  for (std::size_t size : {1u, 2u, 3u, 4u, 7u, 10u, 15u}) {
    Committee c(size);
    EXPECT_TRUE(run_happy_path(c).has_value()) << "size=" << size;
  }
}

TEST(Alg3, MemberAcceptsMessageContent) {
  Committee c(3);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  MemberInstance member(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  member.on_propose(leader.make_propose());
  ASSERT_TRUE(member.accepted_message().has_value());
  EXPECT_EQ(*member.accepted_message(), c.message);
}

TEST(Alg3, NonLeaderProposeIgnored) {
  Committee c(4);
  LeaderInstance impostor(c.keys[2], c.id, c.message, c.size());
  MemberInstance member(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  auto out = member.on_propose(impostor.make_propose());
  EXPECT_FALSE(out.echo_broadcast.has_value());
  EXPECT_FALSE(out.witness.has_value());
}

TEST(Alg3, BadDigestIgnored) {
  Committee c(4);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  ProposeWire propose = leader.make_propose();
  propose.message.push_back(0xFF);  // H(M) no longer matches
  MemberInstance member(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  auto out = member.on_propose(propose);
  EXPECT_FALSE(out.echo_broadcast.has_value());
}

TEST(Alg3, WrongInstanceIgnored) {
  Committee c(4);
  LeaderInstance leader(c.leader_keys(), {1, 999}, c.message, c.size());
  MemberInstance member(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  auto out = member.on_propose(leader.make_propose());
  EXPECT_FALSE(out.echo_broadcast.has_value());
}

TEST(Alg3, NoQuorumWithoutMajority) {
  Committee c(5);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  MemberInstance member(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  auto out = member.on_propose(leader.make_propose());
  ASSERT_TRUE(out.echo_broadcast.has_value());
  // Only its own echo: 1 of 5 is not > C/2, so no confirm.
  EXPECT_FALSE(out.confirm_to_leader.has_value());
  EXPECT_FALSE(member.has_confirmed());
}

TEST(Alg3, LeaderNeedsMajorityConfirms) {
  Committee c(5);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  std::vector<MemberInstance> members;
  for (std::size_t i = 0; i < c.size(); ++i) {
    members.emplace_back(c.keys[i], i, c.id, c.leader_keys().pk, c.size());
  }
  const ProposeWire propose = leader.make_propose();
  std::vector<EchoWire> echoes;
  for (auto& m : members) {
    auto out = m.on_propose(propose);
    if (out.echo_broadcast) echoes.push_back(*out.echo_broadcast);
  }
  std::vector<ConfirmWire> confirms;
  for (auto& m : members) {
    for (const auto& echo : echoes) {
      auto out = m.on_echo(echo);
      if (out.confirm_to_leader) confirms.push_back(*out.confirm_to_leader);
    }
  }
  ASSERT_GE(confirms.size(), 3u);
  EXPECT_FALSE(leader.on_confirm(confirms[0]).has_value());
  EXPECT_FALSE(leader.on_confirm(confirms[1]).has_value());
  EXPECT_TRUE(leader.on_confirm(confirms[2]).has_value());  // 3 of 5
}

TEST(Alg3, DuplicateConfirmsNotDoubleCounted) {
  Committee c(5);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  MemberInstance member(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  const ProposeWire propose = leader.make_propose();
  auto out = member.on_propose(propose);
  std::vector<EchoWire> echoes;
  // Manufacture echoes from all members so member 1 confirms.
  for (std::size_t i = 0; i < c.size(); ++i) {
    MemberInstance other(c.keys[i], i, c.id, c.leader_keys().pk, c.size());
    auto o = other.on_propose(propose);
    if (o.echo_broadcast) echoes.push_back(*o.echo_broadcast);
  }
  std::optional<ConfirmWire> confirm;
  for (const auto& echo : echoes) {
    auto o = member.on_echo(echo);
    if (o.confirm_to_leader) confirm = o.confirm_to_leader;
  }
  ASSERT_TRUE(confirm.has_value());
  EXPECT_FALSE(leader.on_confirm(*confirm).has_value());
  EXPECT_FALSE(leader.on_confirm(*confirm).has_value());  // replay
  EXPECT_FALSE(leader.on_confirm(*confirm).has_value());
}

TEST(Alg3, ForgedConfirmRejected) {
  Committee c(3);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  Confirm body;
  body.id = c.id;
  body.digest = crypto::sha256(bytes_of("different"));
  body.member = 1;
  ConfirmWire wire;
  wire.body = body;
  wire.sig = crypto::make_signed(c.keys[1], body.signed_part());
  EXPECT_FALSE(leader.on_confirm(wire).has_value());
}

TEST(Alg3, EquivocationDetectedViaSecondPropose) {
  Committee c(4);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  MemberInstance member(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  member.on_propose(leader.make_propose());
  auto out = member.on_propose(
      leader.make_equivocating_propose(bytes_of("conflicting")));
  ASSERT_TRUE(out.witness.has_value());
  EXPECT_TRUE(out.witness->valid(c.leader_keys().pk));
}

TEST(Alg3, EquivocationDetectedViaRelayedEcho) {
  // Leader sends M to member 1 and M' to member 2; member 1 catches the
  // contradiction from member 2's relayed PROPOSE.
  Committee c(4);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  MemberInstance m1(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  MemberInstance m2(c.keys[2], 2, c.id, c.leader_keys().pk, c.size());

  m1.on_propose(leader.make_propose());
  auto out2 =
      m2.on_propose(leader.make_equivocating_propose(bytes_of("other")));
  ASSERT_TRUE(out2.echo_broadcast.has_value());

  auto out1 = m1.on_echo(*out2.echo_broadcast);
  ASSERT_TRUE(out1.witness.has_value());
  EXPECT_TRUE(out1.witness->valid(c.leader_keys().pk));
}

TEST(Alg3, EquivocatingLeaderCannotReachQuorumOnBothValues) {
  // With the committee split between two proposals, neither digest can
  // gather > C/2 echoes, so nobody confirms either value.
  Committee c(6);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  const ProposeWire honest = leader.make_propose();
  const ProposeWire evil = leader.make_equivocating_propose(bytes_of("evil"));

  std::vector<MemberInstance> members;
  for (std::size_t i = 0; i < c.size(); ++i) {
    members.emplace_back(c.keys[i], i, c.id, c.leader_keys().pk, c.size());
  }
  std::vector<EchoWire> echoes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    auto out = members[i].on_propose(i % 2 == 0 ? honest : evil);
    if (out.echo_broadcast) echoes.push_back(*out.echo_broadcast);
  }
  std::size_t confirms = 0;
  for (auto& m : members) {
    for (const auto& echo : echoes) {
      auto out = m.on_echo(echo);
      if (out.confirm_to_leader) ++confirms;
    }
  }
  EXPECT_EQ(confirms, 0u);
}

TEST(Alg3, MemberLearnsFromRelayWithoutDirectPropose) {
  // A member that never received the leader's PROPOSE directly can still
  // echo/confirm from relayed echoes (digest-only path).
  Committee c(3);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  MemberInstance m1(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  MemberInstance m2(c.keys[2], 2, c.id, c.leader_keys().pk, c.size());

  auto out1 = m1.on_propose(leader.make_propose());
  ASSERT_TRUE(out1.echo_broadcast.has_value());
  auto out2 = m2.on_echo(*out1.echo_broadcast);
  // m2 learned the proposal via the relay and echoes it.
  ASSERT_TRUE(out2.echo_broadcast.has_value());
}

TEST(Alg3, TamperedEchoIgnored) {
  Committee c(3);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  MemberInstance m1(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  MemberInstance m2(c.keys[2], 2, c.id, c.leader_keys().pk, c.size());
  auto out1 = m1.on_propose(leader.make_propose());
  ASSERT_TRUE(out1.echo_broadcast.has_value());
  EchoWire tampered = *out1.echo_broadcast;
  tampered.body.member = 99;  // body no longer matches signature
  auto out2 = m2.on_echo(tampered);
  EXPECT_FALSE(out2.echo_broadcast.has_value());
  EXPECT_FALSE(out2.confirm_to_leader.has_value());
}

TEST(Alg3, WireSerializationRoundTrips) {
  Committee c(3);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  const ProposeWire propose = leader.make_propose();
  const ProposeWire propose2 = ProposeWire::deserialize(propose.serialize());
  EXPECT_EQ(propose2.message, propose.message);
  EXPECT_EQ(propose2.sig, propose.sig);

  MemberInstance m(c.keys[1], 1, c.id, c.leader_keys().pk, c.size());
  auto out = m.on_propose(propose);
  ASSERT_TRUE(out.echo_broadcast.has_value());
  const EchoWire echo2 =
      EchoWire::deserialize(out.echo_broadcast->serialize());
  EXPECT_EQ(echo2.sig, out.echo_broadcast->sig);
  EXPECT_EQ(echo2.body.member, 1u);
}

// Quorum property sweep: cert emerges exactly when confirms > C/2.
class QuorumSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuorumSweep, ThresholdExact) {
  const std::size_t size = GetParam();
  Committee c(size);
  LeaderInstance leader(c.leader_keys(), c.id, c.message, c.size());
  const ProposeWire propose = leader.make_propose();

  std::vector<MemberInstance> members;
  std::vector<EchoWire> echoes;
  for (std::size_t i = 0; i < size; ++i) {
    members.emplace_back(c.keys[i], i, c.id, c.leader_keys().pk, size);
    auto out = members.back().on_propose(propose);
    if (out.echo_broadcast) echoes.push_back(*out.echo_broadcast);
  }
  std::vector<ConfirmWire> confirms;
  for (auto& m : members) {
    for (const auto& echo : echoes) {
      auto out = m.on_echo(echo);
      if (out.confirm_to_leader) confirms.push_back(*out.confirm_to_leader);
    }
  }
  ASSERT_EQ(confirms.size(), size);
  std::optional<QuorumCert> cert;
  std::size_t fed = 0;
  for (const auto& confirm : confirms) {
    cert = leader.on_confirm(confirm);
    ++fed;
    if (cert) break;
  }
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(fed, size / 2 + 1);  // strictly more than half
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuorumSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 9, 12, 21));

}  // namespace
}  // namespace cyc::consensus
