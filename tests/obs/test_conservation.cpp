// Metrics conservation: the observer's registry is an independent tally
// (fed by SimNet probes) of the same traffic the engine's own accounting
// reports — the two must agree exactly, per phase and in aggregate, and
// the mempool counters must match OpenLoopRoundStats.
#include <gtest/gtest.h>

#include <string>

#include "net/stats.hpp"
#include "obs/observer.hpp"
#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

Params small_params() {
  Params params;
  params.m = 3;
  params.c = 9;
  params.lambda = 3;
  params.referee_size = 5;
  params.txs_per_committee = 10;
  params.cross_shard_fraction = 0.25;
  params.users = 60;
  params.seed = 7;
  return params;
}

std::uint64_t sum_prefixed(const obs::Registry& reg,
                           const std::string& prefix) {
  std::uint64_t total = 0;
  for (const auto& [name, counter] : reg.counters()) {
    if (name.rfind(prefix, 0) == 0) total += counter.value();
  }
  return total;
}

TEST(MetricsConservation, PerPhaseSendCountersSumToEngineTraffic) {
  protocol::Engine engine(small_params(), AdversaryConfig{});
  obs::Observer observer;
  engine.attach_observer(&observer);

  net::Counter total;
  for (int r = 0; r < 3; ++r) {
    const RoundReport report = engine.run_round();
    total += report.traffic_total;
  }
  ASSERT_GT(total.msgs_sent, 0u);

  const obs::Registry& reg = observer.metrics;
  // Every send (delivered or dropped) lands in exactly one
  // net.sent.<phase>.<tag> cell; same for deliveries on the recv side.
  ASSERT_GT(sum_prefixed(reg, "net.sent."), 0u);
  std::uint64_t sent_msgs = 0, sent_bytes = 0, recv_msgs = 0, recv_bytes = 0;
  for (const auto& [name, counter] : reg.counters()) {
    if (name.rfind("net.sent.", 0) == 0) {
      if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".msgs") == 0) {
        sent_msgs += counter.value();
      } else {
        sent_bytes += counter.value();
      }
    } else if (name.rfind("net.recv.", 0) == 0) {
      if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".msgs") == 0) {
        recv_msgs += counter.value();
      } else {
        recv_bytes += counter.value();
      }
    }
  }
  EXPECT_EQ(sent_msgs, total.msgs_sent);
  EXPECT_EQ(sent_bytes, total.bytes_sent);
  EXPECT_EQ(recv_msgs, total.msgs_recv);
  EXPECT_EQ(recv_bytes, total.bytes_recv);

  EXPECT_EQ(reg.find_counter("engine.rounds")->value(), 3u);
  // Every round histogram saw exactly one sample.
  EXPECT_EQ(reg.find_histogram("round.sim_duration")->count(), 3u);
}

TEST(MetricsConservation, MempoolCountersMatchOpenLoopStats) {
  Params params = small_params();
  params.arrival_rate = 0.5;
  protocol::Engine engine(params, AdversaryConfig{});
  obs::Observer observer;
  engine.attach_observer(&observer);

  OpenLoopRoundStats sums;
  std::uint64_t last_backlog = 0;
  for (int r = 0; r < 4; ++r) {
    const RoundReport report = engine.run_round();
    sums.arrived += report.open_loop.arrived;
    sums.admitted += report.open_loop.admitted;
    sums.mempool_dropped += report.open_loop.mempool_dropped;
    sums.drained += report.open_loop.drained;
    last_backlog = report.open_loop.backlog;
  }
  ASSERT_GT(sums.arrived, 0u);

  const obs::Registry& reg = observer.metrics;
  EXPECT_EQ(reg.find_counter("mempool.arrived")->value(), sums.arrived);
  EXPECT_EQ(reg.find_counter("mempool.admitted")->value(), sums.admitted);
  EXPECT_EQ(reg.find_counter("mempool.drained")->value(), sums.drained);
  if (sums.mempool_dropped > 0) {
    EXPECT_EQ(reg.find_counter("mempool.dropped")->value(),
              sums.mempool_dropped);
  }
  EXPECT_DOUBLE_EQ(reg.find_gauge("mempool.backlog")->value(),
                   static_cast<double>(last_backlog));
}

TEST(MetricsConservation, VerifyCacheDeltasRecorded) {
  protocol::Engine engine(small_params(), AdversaryConfig{});
  obs::Observer observer;
  engine.attach_observer(&observer);
  (void)engine.run_round();
  const obs::Registry& reg = observer.metrics;
  ASSERT_NE(reg.find_counter("crypto.verify_cache.misses"), nullptr);
  ASSERT_NE(reg.find_counter("crypto.verify_cache.hits"), nullptr);
  // Earlier engines in this process may have warmed the thread-local
  // cache (verdicts are deterministic per seed), so only the combined
  // verify volume is guaranteed non-zero.
  EXPECT_GT(reg.find_counter("crypto.verify_cache.hits")->value() +
                reg.find_counter("crypto.verify_cache.misses")->value(),
            0u);
  ASSERT_NE(reg.find_counter("consensus.certs"), nullptr);
  EXPECT_GT(reg.find_counter("consensus.certs")->value(), 0u);
}

}  // namespace
}  // namespace cyc::protocol
