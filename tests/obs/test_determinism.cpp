// Trace determinism: a trace is a pure function of (spec, seed) —
// byte-identical across repeated runs and across thread counts, and
// attaching an observer never changes the protocol outcome.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace cyc::harness {
namespace {

std::vector<ScenarioSpec> sub_matrix() {
  auto scenarios = default_matrix();
  // A slice that includes fault-fabric scenarios (the interesting case
  // for trace content) while staying tier-1 fast.
  scenarios.resize(8);
  return scenarios;
}

std::map<std::string, std::string> read_dir(const std::filesystem::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    files[entry.path().filename().string()] = text.str();
  }
  return files;
}

TEST(TraceDeterminism, ByteIdenticalAcrossRunsAndThreadCounts) {
  const auto scenarios = sub_matrix();
  const auto base =
      std::filesystem::temp_directory_path() / "cyc_trace_determinism";
  std::filesystem::remove_all(base);
  const auto dir_a = base / "a";
  const auto dir_b = base / "b";
  std::filesystem::create_directories(dir_a);
  std::filesystem::create_directories(dir_b);

  TraceOptions trace_a{dir_a.string()};
  TraceOptions trace_b{dir_b.string()};
  const MatrixResult run_a = run_matrix(scenarios, /*threads=*/1, &trace_a);
  const MatrixResult run_b = run_matrix(scenarios, /*threads=*/4, &trace_b);

  const auto files_a = read_dir(dir_a);
  const auto files_b = read_dir(dir_b);
  ASSERT_FALSE(files_a.empty());
  ASSERT_EQ(files_a.size(), run_a.outcomes.size());
  // Same file set, same bytes, regardless of scheduling.
  ASSERT_EQ(files_a.size(), files_b.size());
  for (const auto& [name, content] : files_a) {
    auto it = files_b.find(name);
    ASSERT_NE(it, files_b.end()) << name;
    EXPECT_EQ(content, it->second) << name;
  }
  // The matrix artifact itself is also unchanged by tracing.
  EXPECT_EQ(matrix_json(scenarios, run_a), matrix_json(scenarios, run_b));
  std::filesystem::remove_all(base);
}

TEST(TraceDeterminism, ObserverDoesNotPerturbOutcomes) {
  auto scenarios = default_matrix();
  scenarios.resize(4);
  for (const auto& spec : scenarios) {
    for (std::uint64_t seed : spec.seeds) {
      const ScenarioOutcome plain = run_scenario(spec, seed);
      obs::Observer observer;
      const ScenarioOutcome traced = run_scenario(spec, seed, &observer);
      EXPECT_EQ(plain.committed, traced.committed) << spec.name;
      EXPECT_EQ(plain.offered, traced.offered) << spec.name;
      EXPECT_EQ(plain.recoveries, traced.recoveries) << spec.name;
      EXPECT_EQ(plain.chain_height, traced.chain_height) << spec.name;
      EXPECT_EQ(plain.violations.size(), traced.violations.size())
          << spec.name;
      EXPECT_GT(observer.trace.size(), 0u) << spec.name;
    }
  }
}

TEST(TraceDeterminism, RepeatedTracedRunsExportIdenticalJson) {
  const auto scenarios = sub_matrix();
  const ScenarioSpec& spec = scenarios.front();
  auto run_once = [&] {
    obs::Observer observer;
    run_scenario(spec, spec.seeds.front(), &observer);
    return observer.export_json();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Simulated-time traces never carry wall-clock fields.
  EXPECT_EQ(first.find("wall_us"), std::string::npos);
}

}  // namespace
}  // namespace cyc::harness
