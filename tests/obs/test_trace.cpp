// Tracer + metrics registry units: ring eviction, Chrome trace_event
// JSON shape, integral-arg export, wall-clock gating, histogram
// percentiles, and byte-stable rendering.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"

namespace cyc::obs {
namespace {

TEST(Tracer, RingDropsOldestAndCounts) {
  Tracer trace(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    trace.instant(kTrackProtocol, "ev" + std::to_string(i), "t",
                  static_cast<double>(i));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  // The *tail* survives: the newest events are what a triage needs.
  const std::string json = trace.to_chrome_json();
  EXPECT_EQ(json.find("\"ev0\""), std::string::npos);
  EXPECT_NE(json.find("\"ev9\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":6"), std::string::npos);
}

TEST(Tracer, ChromeJsonShape) {
  Tracer trace;
  trace.set_track_name(kTrackProtocol, "protocol");
  trace.begin(kTrackProtocol, "round 1", "round", 0.0);
  trace.instant(kTrackProtocol, "qc-formed", "consensus", 2.5,
                {{"scope", 3.0}});
  trace.counter(kTrackNet, "net traffic", 4.0, {{"msgs_sent", 17.0}});
  trace.end(kTrackProtocol, 8.0, {{"msgs_sent", 42.0}});

  const std::string json = trace.to_chrome_json();
  // Document frame.
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  // Track metadata.
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"protocol\""), std::string::npos);
  // 1 simulated Delta-unit = 1 ms -> ts in microseconds.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2500"), std::string::npos);   // instant at 2.5
  EXPECT_NE(json.find("\"ts\":8000"), std::string::npos);   // end at 8.0
  // Instants are thread-scoped; integral args export as JSON integers.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"scope\":3"), std::string::npos);
  EXPECT_EQ(json.find("\"scope\":3.0"), std::string::npos);
  EXPECT_NE(json.find("\"msgs_sent\":42"), std::string::npos);
  // Counters carry their series as args.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"msgs_sent\":17"), std::string::npos);
}

TEST(Tracer, ExactlyCapacityDropsNothing) {
  // Boundary pin: filling the ring to exactly its capacity must not
  // evict — droppedEvents counts evictions only, never buffered events.
  Tracer trace(/*capacity=*/4);
  for (int i = 0; i < 4; ++i) {
    trace.instant(kTrackProtocol, "ev" + std::to_string(i), "t",
                  static_cast<double>(i));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 0u);
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"ev0\""), std::string::npos);
  EXPECT_NE(json.find("\"ev3\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
}

TEST(Tracer, CapacityPlusOneDropsExactlyOne) {
  Tracer trace(/*capacity=*/4);
  for (int i = 0; i < 5; ++i) {
    trace.instant(kTrackProtocol, "ev" + std::to_string(i), "t",
                  static_cast<double>(i));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 1u);
  const std::string json = trace.to_chrome_json();
  EXPECT_EQ(json.find("\"ev0\""), std::string::npos);
  EXPECT_NE(json.find("\"ev1\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":1"), std::string::npos);
}

TEST(Tracer, MidSpanEvictionLeavesDanglingEndAndExactCount) {
  // A span's B event can fall off the ring while its E survives:
  // eviction is per event, not per span. The dangling E must stay in
  // the JSON (viewers tolerate it) and droppedEvents must account for
  // exactly the evicted events — the B among them.
  Tracer trace(/*capacity=*/3);
  trace.begin(kTrackProtocol, "span", "round", 0.0);      // evicted below
  trace.instant(kTrackProtocol, "mid1", "t", 1.0);
  trace.instant(kTrackProtocol, "mid2", "t", 2.0);
  trace.end(kTrackProtocol, 3.0, {{"msgs_sent", 7.0}});   // evicts the B
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.dropped(), 1u);
  const std::string json = trace.to_chrome_json();
  EXPECT_EQ(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"msgs_sent\":7"), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":1"), std::string::npos);
}

TEST(Tracer, WallClockOffByDefaultOnWhenEnabled) {
  Tracer plain;
  plain.instant(kTrackProtocol, "x", "t", 1.0);
  EXPECT_EQ(plain.to_chrome_json().find("wall_us"), std::string::npos);

  Tracer walled;
  walled.enable_wall_clock();
  walled.instant(kTrackProtocol, "x", "t", 1.0);
  EXPECT_NE(walled.to_chrome_json().find("wall_us"), std::string::npos);
}

TEST(Tracer, RenderingIsByteStable) {
  auto build = [] {
    Tracer trace;
    trace.set_track_name(kTrackNet, "net");
    trace.begin(kTrackProtocol, "round 1", "round", 0.0);
    trace.end(kTrackProtocol, 3.25, {{"bytes_sent", 1234.0}});
    return trace.to_chrome_json();
  };
  EXPECT_EQ(build(), build());
}

TEST(Metrics, CounterGaugeHistogram) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a").add();
  reg.counter("a").add(4);
  reg.gauge("g").set(2.5);
  for (int i = 1; i <= 100; ++i) {
    reg.histogram("h").record(static_cast<double>(i));
  }
  EXPECT_EQ(reg.counter("a").value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
  EXPECT_EQ(reg.histogram("h").count(), 100u);
  EXPECT_DOUBLE_EQ(reg.histogram("h").min(), 1.0);
  EXPECT_DOUBLE_EQ(reg.histogram("h").max(), 100.0);
  EXPECT_NEAR(reg.histogram("h").percentile(0.5), 50.0, 1.0);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  support::JsonWriter json;
  reg.to_json(json);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"counters\":{\"a\":5}"), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\":{\"g\":2.5}"), std::string::npos);
  EXPECT_NE(doc.find("\"h\":{\"count\":100"), std::string::npos);
}

TEST(Observer, ExportEmbedsMetrics) {
  Observer observer;
  observer.trace.instant(kTrackProtocol, "x", "t", 1.0);
  observer.metrics.counter("engine.rounds").add(3);
  const std::string doc = observer.export_json();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"engine.rounds\":3"), std::string::npos);
}

}  // namespace
}  // namespace cyc::obs
