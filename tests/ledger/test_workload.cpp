#include "ledger/workload.hpp"

#include <gtest/gtest.h>

#include "ledger/validator.hpp"

namespace cyc::ledger {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.shards = 4;
  cfg.users = 64;
  cfg.outputs_per_user = 4;
  cfg.initial_amount = 1000;
  cfg.cross_shard_fraction = 0.3;
  cfg.invalid_fraction = 0.0;
  return cfg;
}

TEST(Workload, GenesisCoversAllShards) {
  WorkloadGenerator gen(base_config(), 1);
  ASSERT_EQ(gen.genesis().size(), 4u);
  for (const auto& store : gen.genesis()) {
    EXPECT_GT(store.size(), 0u);
  }
  EXPECT_EQ(gen.spendable_outputs(), 64u * 4u);
}

TEST(Workload, GeneratedTxsAreValid) {
  WorkloadGenerator gen(base_config(), 2);
  auto stores = gen.genesis();
  const auto batch = gen.next_batch(50);
  ASSERT_EQ(batch.size(), 50u);
  for (const auto& tx : batch) {
    const ShardId shard = tx.input_shard(4);
    EXPECT_EQ(verify_tx(tx, stores[shard]), TxVerdict::kValid)
        << verdict_name(verify_tx(tx, stores[shard]));
    EXPECT_TRUE(gen.is_ground_truth_valid(tx.id()));
  }
}

TEST(Workload, CrossShardFractionRoughlyRespected) {
  auto cfg = base_config();
  cfg.cross_shard_fraction = 0.5;
  WorkloadGenerator gen(cfg, 3);
  const auto batch = gen.next_batch(200);
  int cross = 0;
  for (const auto& tx : batch) {
    if (!tx.is_intra_shard(4)) ++cross;
  }
  EXPECT_GT(cross, 60);
  EXPECT_LT(cross, 140);
}

TEST(Workload, ZeroCrossFractionAllIntra) {
  auto cfg = base_config();
  cfg.cross_shard_fraction = 0.0;
  WorkloadGenerator gen(cfg, 4);
  for (const auto& tx : gen.next_batch(100)) {
    EXPECT_TRUE(tx.is_intra_shard(4));
  }
}

TEST(Workload, InvalidInjection) {
  auto cfg = base_config();
  cfg.invalid_fraction = 1.0;
  WorkloadGenerator gen(cfg, 5);
  auto stores = gen.genesis();
  const auto batch = gen.next_batch(30);
  ASSERT_EQ(batch.size(), 30u);
  for (const auto& tx : batch) {
    const ShardId shard = tx.input_shard(4);
    EXPECT_NE(verify_tx(tx, stores[shard]), TxVerdict::kValid);
    EXPECT_FALSE(gen.is_ground_truth_valid(tx.id()));
  }
}

TEST(Workload, MixedInvalidFraction) {
  auto cfg = base_config();
  cfg.invalid_fraction = 0.3;
  WorkloadGenerator gen(cfg, 6);
  auto stores = gen.genesis();
  int invalid = 0;
  for (const auto& tx : gen.next_batch(200)) {
    if (!gen.is_ground_truth_valid(tx.id())) ++invalid;
  }
  EXPECT_GT(invalid, 30);
  EXPECT_LT(invalid, 90);
}

TEST(Workload, CommitMakesOutputsSpendable) {
  WorkloadGenerator gen(base_config(), 7);
  const std::size_t before = gen.spendable_outputs();
  auto batch = gen.next_batch(10);
  // Spends consumed 10 outputs.
  EXPECT_EQ(gen.spendable_outputs(), before - batch.size());
  for (const auto& tx : batch) gen.mark_committed(tx);
  // Every tx created 1-2 outputs; pool must have grown back.
  EXPECT_GE(gen.spendable_outputs(), before - batch.size() + batch.size());
}

TEST(Workload, RejectReturnsInputs) {
  WorkloadGenerator gen(base_config(), 8);
  const std::size_t before = gen.spendable_outputs();
  auto batch = gen.next_batch(10);
  for (const auto& tx : batch) gen.mark_rejected(tx);
  EXPECT_EQ(gen.spendable_outputs(), before);
}

TEST(Workload, NoDoubleSpendsWithinGeneratedStream) {
  WorkloadGenerator gen(base_config(), 9);
  std::set<std::pair<std::string, std::uint32_t>> seen;
  for (const auto& tx : gen.next_batch(200)) {
    for (const auto& in : tx.inputs) {
      const std::string key(in.tx.begin(), in.tx.end());
      EXPECT_TRUE(seen.emplace(key, in.index).second)
          << "input reused across generated txs";
    }
  }
}

TEST(Workload, Deterministic) {
  WorkloadGenerator a(base_config(), 10), b(base_config(), 10);
  const auto batch_a = a.next_batch(20);
  const auto batch_b = b.next_batch(20);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(batch_a[i].id(), batch_b[i].id());
  }
}

TEST(Workload, PoolExhaustion) {
  auto cfg = base_config();
  cfg.users = 32;
  cfg.outputs_per_user = 1;
  WorkloadGenerator gen(cfg, 11);
  const auto batch = gen.next_batch(1000);
  EXPECT_LE(batch.size(), 32u);  // can't spend more than exists
  EXPECT_GT(batch.size(), 0u);
}

TEST(Workload, DoubleSpendPairsAreIndividuallyValid) {
  // kDoubleSpendPair transactions pass V in isolation but reuse an
  // in-flight input; they are ground-truth invalid.
  auto cfg = base_config();
  cfg.invalid_fraction = 0.5;
  WorkloadGenerator gen(cfg, 12);
  auto stores = gen.genesis();
  const auto batch = gen.next_batch(100);
  std::map<std::pair<std::string, std::uint32_t>, int> input_uses;
  int pairs = 0;
  for (const auto& tx : batch) {
    for (const auto& in : tx.inputs) {
      const std::string key(in.tx.begin(), in.tx.end());
      if (++input_uses[{key, in.index}] == 2) ++pairs;
    }
  }
  // Some double-spend pairs were injected; every reused-input tx is
  // marked ground-truth invalid.
  EXPECT_GT(pairs, 0);
  for (const auto& tx : batch) {
    bool reused = false;
    for (const auto& in : tx.inputs) {
      const std::string key(in.tx.begin(), in.tx.end());
      if (input_uses[{key, in.index}] >= 2 &&
          !gen.is_ground_truth_valid(tx.id())) {
        reused = true;
      }
    }
    (void)reused;
  }
}

TEST(Workload, ShortfallCounterSurfacesDryPool) {
  // Regression: next_batch used to return fewer transactions than asked
  // with no signal when the spendable pool ran dry, silently deflating
  // offered load. The shortfall counter now records every unserved slot.
  auto cfg = base_config();
  cfg.users = 32;
  cfg.outputs_per_user = 1;
  WorkloadGenerator gen(cfg, 13);
  EXPECT_EQ(gen.shortfall(), 0u);
  const auto batch = gen.next_batch(1000);
  ASSERT_LT(batch.size(), 1000u);
  EXPECT_EQ(gen.shortfall(), 1000u - batch.size());
  // Committing replenishes the pool; further shortfalls accumulate on
  // top of the existing count rather than resetting.
  const auto before = gen.shortfall();
  for (const auto& tx : batch) gen.mark_committed(tx);
  auto more = gen.next_batch(5);
  EXPECT_EQ(more.size(), 5u);
  EXPECT_EQ(gen.shortfall(), before);
}

TEST(Workload, NextTxFromPrefersRequestedUser) {
  WorkloadGenerator gen(base_config(), 14);
  // User 3 has funds at genesis: the tx must spend user 3's outputs.
  const auto tx = gen.next_tx_from(3, false);
  ASSERT_FALSE(tx.inputs.empty());
  EXPECT_EQ(gen.shortfall(), 0u);
  EXPECT_EQ(tx.input_shard(4), gen.shard_of_user(3));
}

TEST(Workload, NextTxFromFallsBackAndCounts) {
  auto cfg = base_config();
  cfg.users = 4;
  cfg.outputs_per_user = 1;
  WorkloadGenerator gen(cfg, 15);
  // Drain user 0's only output, then ask for user 0 again: the source
  // falls back to any funded user and records the miss.
  const auto first = gen.next_tx_from(0, false);
  ASSERT_FALSE(first.inputs.empty());
  const auto second = gen.next_tx_from(0, false);
  ASSERT_FALSE(second.inputs.empty());
  EXPECT_EQ(gen.shortfall(), 1u);
}

TEST(Workload, InvalidConfigThrows) {
  auto cfg = base_config();
  cfg.shards = 0;
  EXPECT_THROW(WorkloadGenerator(cfg, 1), std::invalid_argument);
  cfg = base_config();
  cfg.users = 0;
  EXPECT_THROW(WorkloadGenerator(cfg, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cyc::ledger
