#include "ledger/block.hpp"

#include <gtest/gtest.h>

namespace cyc::ledger {
namespace {

Transaction sample_tx(std::uint64_t seed) {
  const auto a = crypto::KeyPair::from_seed(seed);
  const auto b = crypto::KeyPair::from_seed(seed + 1);
  Transaction tx;
  tx.spender = a.pk;
  tx.inputs.push_back(OutPoint{crypto::sha256(be64(seed)), 0});
  tx.outputs.push_back(TxOut{b.pk, seed % 100 + 1});
  sign_tx(tx, a.sk);
  return tx;
}

std::vector<Transaction> sample_txs(std::size_t count, std::uint64_t base) {
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < count; ++i) {
    txs.push_back(sample_tx(base + 2 * i));
  }
  return txs;
}

crypto::Digest rand_of(std::uint64_t n) { return crypto::sha256(be64(n)); }

TEST(Block, BuildCommitsBody) {
  const auto block =
      Block::build(1, rand_of(0), rand_of(1), sample_txs(5, 100));
  EXPECT_EQ(block.header.round, 1u);
  EXPECT_EQ(block.header.tx_count, 5u);
  EXPECT_TRUE(block.body_matches());
}

TEST(Block, BodyTamperDetected) {
  auto block = Block::build(1, rand_of(0), rand_of(1), sample_txs(5, 200));
  block.txs[2].outputs[0].amount += 1;
  EXPECT_FALSE(block.body_matches());
  block = Block::build(1, rand_of(0), rand_of(1), sample_txs(5, 200));
  block.txs.pop_back();
  EXPECT_FALSE(block.body_matches());
}

TEST(Block, HeaderHashChangesWithAnyField) {
  BlockHeader h;
  h.round = 3;
  h.prev_hash = rand_of(2);
  h.body_root = rand_of(3);
  h.randomness = rand_of(4);
  h.tx_count = 7;
  const auto base = h.hash();
  auto mutate = h;
  mutate.round = 4;
  EXPECT_NE(mutate.hash(), base);
  mutate = h;
  mutate.prev_hash = rand_of(5);
  EXPECT_NE(mutate.hash(), base);
  mutate = h;
  mutate.tx_count = 8;
  EXPECT_NE(mutate.hash(), base);
}

TEST(Block, InclusionProofs) {
  const auto block =
      Block::build(1, rand_of(0), rand_of(1), sample_txs(9, 300));
  for (std::size_t i = 0; i < block.txs.size(); ++i) {
    const auto proof = block.prove_inclusion(i);
    EXPECT_TRUE(Block::verify_inclusion(block.header, block.txs[i], proof));
  }
  // Foreign transaction does not verify.
  const auto proof = block.prove_inclusion(0);
  EXPECT_FALSE(Block::verify_inclusion(block.header, sample_tx(999), proof));
}

TEST(Block, SerializationRoundTrip) {
  const auto block =
      Block::build(2, rand_of(7), rand_of(8), sample_txs(4, 400));
  const auto back = Block::deserialize(block.serialize());
  EXPECT_EQ(back.header, block.header);
  EXPECT_EQ(back.txs, block.txs);
  EXPECT_TRUE(back.body_matches());
}

TEST(Chain, GenesisState) {
  Chain chain;
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.genesis().round, 0u);
  EXPECT_TRUE(chain.validate());
}

TEST(Chain, AppendLinkedBlocks) {
  Chain chain;
  for (std::uint64_t r = 1; r <= 5; ++r) {
    const auto block = Block::build(r, chain.tip().hash(), rand_of(r),
                                    sample_txs(3, 500 + 10 * r));
    EXPECT_TRUE(chain.append(block)) << "round " << r;
  }
  EXPECT_EQ(chain.height(), 5u);
  EXPECT_TRUE(chain.validate());
  EXPECT_EQ(chain.tip().round, 5u);
}

TEST(Chain, RejectsWrongRound) {
  Chain chain;
  const auto block =
      Block::build(2, chain.tip().hash(), rand_of(1), sample_txs(1, 600));
  EXPECT_FALSE(chain.append(block));  // round must be 1
  EXPECT_EQ(chain.height(), 0u);
}

TEST(Chain, RejectsBrokenLink) {
  Chain chain;
  const auto block = Block::build(1, rand_of(99) /* wrong prev */, rand_of(1),
                                  sample_txs(1, 700));
  EXPECT_FALSE(chain.append(block));
}

TEST(Chain, RejectsBodyMismatch) {
  Chain chain;
  auto block =
      Block::build(1, chain.tip().hash(), rand_of(1), sample_txs(3, 800));
  block.txs[0].outputs[0].amount += 1;  // header no longer matches
  EXPECT_FALSE(chain.append(block));
}

TEST(Chain, EmptyBlocksAllowed) {
  Chain chain;
  const auto block = Block::build(1, chain.tip().hash(), rand_of(1), {});
  EXPECT_TRUE(chain.append(block));
  EXPECT_TRUE(chain.validate());
}

TEST(Chain, HeaderAtIndexing) {
  Chain chain;
  const auto b1 =
      Block::build(1, chain.tip().hash(), rand_of(1), sample_txs(1, 900));
  chain.append(b1);
  EXPECT_EQ(chain.header_at(0).round, 0u);
  EXPECT_EQ(chain.header_at(1).round, 1u);
  EXPECT_THROW(chain.header_at(2), std::out_of_range);
}

}  // namespace
}  // namespace cyc::ledger
