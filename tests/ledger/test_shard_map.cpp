#include "ledger/shard_map.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ledger/mempool.hpp"
#include "ledger/utxo.hpp"

namespace cyc::ledger {
namespace {

constexpr std::uint32_t kShards = 4;

struct Fixture {
  std::vector<crypto::KeyPair> users;
  Fixture() {
    for (std::uint64_t i = 0; i < 64; ++i) {
      users.push_back(crypto::KeyPair::from_seed(i + 2000));
    }
  }
  const crypto::KeyPair& in_shard(ShardId s, std::size_t skip = 0) const {
    std::size_t found = 0;
    for (const auto& u : users) {
      if (shard_of(u.pk, kShards) == s) {
        if (found == skip) return u;
        ++found;
      }
    }
    throw std::runtime_error("no user in shard");
  }
};

OutPoint op(int i) {
  return OutPoint{crypto::sha256(be64(static_cast<std::uint64_t>(i))), 0};
}

TEST(ShardMap, IdentityMatchesStaticHash) {
  Fixture f;
  const ShardMap map(kShards);
  EXPECT_TRUE(map.identity());
  EXPECT_EQ(map.version(), 0u);
  for (const auto& u : f.users) {
    EXPECT_EQ(map.shard(u.pk), shard_of(u.pk, kShards));
  }
}

TEST(ShardMap, ApplyOverridesAndBumpsVersion) {
  Fixture f;
  const ShardMap map(kShards);
  const auto& user = f.in_shard(0);
  const ShardMap next =
      map.apply({AccountMove{user.pk.y, 0, 2}});
  EXPECT_EQ(next.version(), 1u);
  EXPECT_FALSE(next.identity());
  EXPECT_EQ(next.shard(user.pk), 2u);
  // Everyone else keeps the hash assignment.
  for (const auto& u : f.users) {
    if (u.pk.y == user.pk.y) continue;
    EXPECT_EQ(next.shard(u.pk), shard_of(u.pk, kShards));
  }
  // The original map is unchanged (apply is functional).
  EXPECT_EQ(map.shard(user.pk), 0u);
  EXPECT_EQ(map.version(), 0u);
}

TEST(ShardMap, ApplyIsCanonicalMovingHomeErasesOverride) {
  Fixture f;
  const auto& user = f.in_shard(1);
  const ShardMap map(kShards);
  const ShardMap away = map.apply({AccountMove{user.pk.y, 1, 3}});
  EXPECT_EQ(away.overrides().size(), 1u);
  // Moving the account back to its hash home removes the override
  // entirely — two routes to the same assignment encode identically.
  const ShardMap back = away.apply({AccountMove{user.pk.y, 3, 1}});
  EXPECT_TRUE(back.overrides().empty());
  EXPECT_EQ(back.shard(user.pk), 1u);
}

TEST(ShardMap, ApplyRejectsOutOfRangeTarget) {
  const ShardMap map(kShards);
  EXPECT_THROW(map.apply({AccountMove{42, 0, kShards}}),
               std::invalid_argument);
}

TEST(ShardMap, DigestTracksContentAndVersion) {
  Fixture f;
  const auto& user = f.in_shard(2);
  const ShardMap map(kShards);
  const ShardMap moved = map.apply({AccountMove{user.pk.y, 2, 0}});
  EXPECT_NE(map.digest(), moved.digest());
  // An empty re-draw keeps the overrides but bumps the version — the
  // digest must change so the audit record stays in lockstep.
  EXPECT_NE(map.digest(), map.apply({}).digest());
  // Same content, same history => same digest.
  EXPECT_EQ(moved.digest(),
            map.apply({AccountMove{user.pk.y, 2, 0}}).digest());
}

TEST(ShardMap, FreeRoutingHelpersFollowTheMap) {
  Fixture f;
  const auto& spender = f.in_shard(0);
  const auto& payee = f.in_shard(1);
  Transaction tx;
  tx.spender = spender.pk;
  tx.outputs.push_back(TxOut{payee.pk, 5});
  const ShardMap map(kShards);
  EXPECT_EQ(input_shard(tx, map), 0u);
  EXPECT_EQ(output_shards(tx, map), (std::set<ShardId>{1}));
  EXPECT_FALSE(is_intra_shard(tx, map));
  // Re-home the payee onto the spender's shard: the tx becomes
  // intra-shard under the new map without its bytes changing.
  const ShardMap next = map.apply({AccountMove{payee.pk.y, 1, 0}});
  EXPECT_EQ(output_shards(tx, next), (std::set<ShardId>{0}));
  EXPECT_TRUE(is_intra_shard(tx, next));
}

TEST(ShardMap, MigrateStoresMovesExactlyTheRehomedOutputs) {
  Fixture f;
  std::vector<UtxoStore> stores;
  for (std::uint32_t k = 0; k < kShards; ++k) {
    stores.emplace_back(k, kShards);
  }
  auto identity = std::make_shared<const ShardMap>(kShards);
  for (auto& store : stores) store.attach_map(identity);

  const auto& mover = f.in_shard(0);
  const auto& stayer = f.in_shard(0, 1);
  ASSERT_TRUE(stores[0].add(op(1), TxOut{mover.pk, 100}));
  ASSERT_TRUE(stores[0].add(op(2), TxOut{mover.pk, 50}));
  ASSERT_TRUE(stores[0].add(op(3), TxOut{stayer.pk, 25}));

  Amount before = 0;
  for (const auto& store : stores) before += store.total_value();

  auto next = std::make_shared<const ShardMap>(
      identity->apply({AccountMove{mover.pk.y, 0, 3}}));
  const std::uint64_t migrated =
      migrate_stores(stores, *identity, next, {AccountMove{mover.pk.y, 0, 3}});
  EXPECT_EQ(migrated, 2u);

  // Both of the mover's outputs now live on shard 3; the stayer's stays.
  EXPECT_FALSE(stores[0].contains(op(1)));
  EXPECT_FALSE(stores[0].contains(op(2)));
  EXPECT_TRUE(stores[3].contains(op(1)));
  EXPECT_TRUE(stores[3].contains(op(2)));
  EXPECT_TRUE(stores[0].contains(op(3)));

  Amount after = 0;
  for (auto& store : stores) {
    after += store.total_value();
    // The XOR-multiset rolling digest must stay self-consistent through
    // the spend/add migration on every store.
    EXPECT_EQ(store.digest(), store.full_digest());
    EXPECT_EQ(store.shard_map().get(), next.get());
  }
  EXPECT_EQ(after, before);
}

TEST(ShardMap, MigrateStoresIsIdempotentForUnmovedAccounts) {
  Fixture f;
  std::vector<UtxoStore> stores;
  for (std::uint32_t k = 0; k < kShards; ++k) {
    stores.emplace_back(k, kShards);
  }
  auto identity = std::make_shared<const ShardMap>(kShards);
  for (auto& store : stores) store.attach_map(identity);
  const auto& user = f.in_shard(2);
  ASSERT_TRUE(stores[2].add(op(7), TxOut{user.pk, 10}));
  // A move that lands back on the hash home re-homes nothing.
  auto next = std::make_shared<const ShardMap>(
      identity->apply({AccountMove{user.pk.y, 2, 2}}));
  EXPECT_EQ(migrate_stores(stores, *identity, next,
                           {AccountMove{user.pk.y, 2, 2}}),
            0u);
  EXPECT_TRUE(stores[2].contains(op(7)));
}

TEST(Mempool, RestoreBypassesAdmissionControl) {
  ShardMempool pool(1);
  Transaction tx;
  tx.spender.y = 11;
  ASSERT_TRUE(pool.admit(tx, 1.0));
  EXPECT_TRUE(pool.full());
  // restore() must take the entry even though the pool is at capacity —
  // the boundary re-bucketing may not drop an admitted transaction.
  Transaction tx2;
  tx2.spender.y = 22;
  pool.restore(PendingTx{tx2, 2.0});
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.dropped(), 0u);
  EXPECT_EQ(pool.admitted(), 1u);  // counters untouched by restore
  const auto drained = pool.drain(2);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].tx.spender.y, 11u);
  EXPECT_EQ(drained[1].tx.spender.y, 22u);
  EXPECT_EQ(drained[1].arrival, 2.0);
}

TEST(Mempool, ExtractIfRemovesMatchesInFifoOrder) {
  ShardMempool pool(8);
  for (std::uint64_t y = 1; y <= 6; ++y) {
    Transaction tx;
    tx.spender.y = y;
    ASSERT_TRUE(pool.admit(tx, static_cast<double>(y)));
  }
  const auto evens =
      pool.extract_if([](const Transaction& tx) { return tx.spender.y % 2 == 0; });
  ASSERT_EQ(evens.size(), 3u);
  EXPECT_EQ(evens[0].tx.spender.y, 2u);
  EXPECT_EQ(evens[1].tx.spender.y, 4u);
  EXPECT_EQ(evens[2].tx.spender.y, 6u);
  EXPECT_EQ(evens[1].arrival, 4.0);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.admitted(), 6u);  // counters untouched
  const auto rest = pool.drain(3);
  EXPECT_EQ(rest[0].tx.spender.y, 1u);
  EXPECT_EQ(rest[1].tx.spender.y, 3u);
  EXPECT_EQ(rest[2].tx.spender.y, 5u);
}

}  // namespace
}  // namespace cyc::ledger
