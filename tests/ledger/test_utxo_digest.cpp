// Incremental-vs-full UtxoStore digest equivalence.
#include <gtest/gtest.h>

#include <vector>

#include "ledger/utxo.hpp"
#include "support/rng.hpp"

namespace cyc::ledger {
namespace {

constexpr std::uint32_t kM = 4;
constexpr ShardId kShard = 1;

crypto::PublicKey owner_in_shard(rng::Stream& rng) {
  // Rejection-sample a key whose shard is kShard.
  for (;;) {
    crypto::PublicKey pk{rng.next() % crypto::kP};
    if (pk.y != 0 && shard_of(pk, kM) == kShard) return pk;
  }
}

OutPoint op_from(std::uint64_t i) {
  OutPoint op;
  op.tx = crypto::sha256(be64(i));
  op.index = static_cast<std::uint32_t>(i % 3);
  return op;
}

TEST(UtxoDigest, IncrementalMatchesFullRecompute) {
  UtxoStore store(kShard, kM);
  EXPECT_EQ(store.digest(), store.full_digest());
  rng::Stream rng(42);
  for (std::uint64_t i = 0; i < 32; ++i) {
    store.add(op_from(i), TxOut{owner_in_shard(rng), 10 + i});
    EXPECT_EQ(store.digest(), store.full_digest());
  }
  for (std::uint64_t i = 0; i < 32; i += 2) {
    store.spend(op_from(i));
    EXPECT_EQ(store.digest(), store.full_digest());
  }
}

TEST(UtxoDigest, OrderIndependent) {
  rng::Stream rng(7);
  std::vector<std::pair<OutPoint, TxOut>> entries;
  for (std::uint64_t i = 0; i < 16; ++i) {
    entries.emplace_back(op_from(i), TxOut{owner_in_shard(rng), 100 + i});
  }
  UtxoStore forward(kShard, kM), backward(kShard, kM);
  for (const auto& [op, out] : entries) forward.add(op, out);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    backward.add(it->first, it->second);
  }
  EXPECT_EQ(forward.digest(), backward.digest());
}

TEST(UtxoDigest, ContentSensitive) {
  rng::Stream rng(11);
  const auto owner = owner_in_shard(rng);
  UtxoStore a(kShard, kM), b(kShard, kM);
  a.add(op_from(1), TxOut{owner, 5});
  b.add(op_from(1), TxOut{owner, 6});  // different amount
  EXPECT_NE(a.digest(), b.digest());

  // Removing the entry restores the empty digest.
  UtxoStore empty(kShard, kM);
  a.spend(op_from(1));
  EXPECT_EQ(a.digest(), empty.digest());
  // ...but an empty store and a never-touched store agree trivially;
  // size is folded in, so {x} vs {} differ even if the xor accumulator
  // ever collided.
}

TEST(UtxoDigest, OverwriteKeepsAccumulatorCoherent) {
  rng::Stream rng(13);
  const auto owner = owner_in_shard(rng);
  const auto other = owner_in_shard(rng);
  UtxoStore store(kShard, kM);
  store.add(op_from(2), TxOut{owner, 50});
  store.add(op_from(2), TxOut{other, 70});  // replace same outpoint
  EXPECT_EQ(store.digest(), store.full_digest());

  UtxoStore direct(kShard, kM);
  direct.add(op_from(2), TxOut{other, 70});
  EXPECT_EQ(store.digest(), direct.digest());

  // Identical re-insert is a no-op.
  const auto before = store.digest();
  store.add(op_from(2), TxOut{other, 70});
  EXPECT_EQ(store.digest(), before);
  EXPECT_EQ(store.digest(), store.full_digest());
}

TEST(UtxoDigest, RandomizedAddSpendSequences) {
  rng::Stream rng(12345);
  for (int trial = 0; trial < 10; ++trial) {
    UtxoStore store(kShard, kM);
    std::vector<OutPoint> live;
    for (int step = 0; step < 200; ++step) {
      if (live.empty() || rng.chance(0.6)) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(trial) * 1000 + static_cast<std::uint64_t>(step);
        const OutPoint op = op_from(id);
        if (store.add(op, TxOut{owner_in_shard(rng), 1 + rng.below(1000)})) {
          live.push_back(op);
        }
      } else {
        const std::size_t pick = static_cast<std::size_t>(rng.below(live.size()));
        store.spend(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    EXPECT_EQ(store.digest(), store.full_digest())
        << "trial " << trial << " diverged";
  }
}

}  // namespace
}  // namespace cyc::ledger
