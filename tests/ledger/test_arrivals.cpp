#include "ledger/arrivals.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cyc::ledger {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.shards = 4;
  cfg.users = 64;
  cfg.outputs_per_user = 4;
  cfg.initial_amount = 1000;
  cfg.cross_shard_fraction = 0.3;
  cfg.invalid_fraction = 0.0;
  return cfg;
}

TEST(Zipf, RejectsDegenerateArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(8, -0.5), std::invalid_argument);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  const ZipfSampler zipf(50, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(zipf.probability(50), 0.0);
}

TEST(Zipf, ZeroExponentIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.probability(k), 0.1, 1e-12);
  }
}

TEST(Zipf, EmpiricalFrequenciesMatchExponent) {
  // Frequency ranks follow the exponent at a fixed seed: rank k's
  // empirical share matches its exact mass within tolerance, and the
  // head dominates the tail the way 1/(k+1)^s says it should.
  const ZipfSampler zipf(32, 1.0);
  rng::Stream rng(42);
  constexpr int kDraws = 200000;
  std::map<std::size_t, int> counts;
  for (int i = 0; i < kDraws; ++i) counts[zipf.sample(rng)] += 1;
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
    const double expected = zipf.probability(k);
    const double observed =
        static_cast<double>(counts[k]) / static_cast<double>(kDraws);
    EXPECT_NEAR(observed, expected, 0.01) << "rank " << k;
  }
  // With s = 1 over 32 ranks, rank 0 carries ~4x rank 3's mass.
  EXPECT_GT(counts[0], 3 * counts[3]);
}

TEST(Zipf, SamplesStayInRange) {
  const ZipfSampler zipf(7, 2.0);
  rng::Stream rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.sample(rng), 7u);
  }
}

TEST(OpenLoop, RequiresPositiveRate) {
  WorkloadGenerator gen(base_config(), 1);
  OpenLoopConfig cfg;
  cfg.arrival_rate = 0.0;
  EXPECT_THROW(OpenLoopSource(cfg, gen, 1), std::invalid_argument);
}

TEST(OpenLoop, PoissonRateRoughlyRespected) {
  WorkloadGenerator gen(base_config(), 2);
  OpenLoopConfig cfg;
  cfg.arrival_rate = 0.5;
  cfg.invalid_fraction = 0.0;
  OpenLoopSource source(cfg, gen, 7);
  // 200 time units at rate 0.5 -> ~100 arrivals (sd = 10); the pool has
  // 256 spendable outputs and commits are not needed at this volume.
  const auto arrivals = source.arrivals_until(200.0);
  EXPECT_GT(arrivals.size(), 60u);
  EXPECT_LT(arrivals.size(), 140u);
  EXPECT_EQ(source.clock(), 200.0);
  EXPECT_EQ(source.generated(), arrivals.size());
  // Timestamps are strictly inside the window and non-decreasing.
  double prev = 0.0;
  for (const auto& a : arrivals) {
    EXPECT_GE(a.time, prev);
    EXPECT_LT(a.time, 200.0);
    prev = a.time;
  }
}

TEST(OpenLoop, WindowSlicingDoesNotChangeTheStream) {
  WorkloadGenerator gen_a(base_config(), 3);
  WorkloadGenerator gen_b(base_config(), 3);
  OpenLoopConfig cfg;
  cfg.arrival_rate = 0.4;
  OpenLoopSource one(cfg, gen_a, 11);
  OpenLoopSource sliced(cfg, gen_b, 11);

  const auto whole = one.arrivals_until(100.0);
  std::vector<Arrival> parts;
  for (double t = 20.0; t <= 100.0; t += 20.0) {
    auto window = sliced.arrivals_until(t);
    parts.insert(parts.end(), window.begin(), window.end());
  }
  ASSERT_EQ(whole.size(), parts.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(whole[i].time, parts[i].time);
    EXPECT_EQ(whole[i].tx.id(), parts[i].tx.id());
  }
}

TEST(OpenLoop, ExhaustionCountsLostArrivals) {
  auto cfg = base_config();
  cfg.shards = 2;
  cfg.users = 6;
  cfg.outputs_per_user = 1;
  WorkloadGenerator gen(cfg, 4);
  OpenLoopConfig ol;
  ol.arrival_rate = 1.0;
  ol.cross_shard_fraction = 0.0;
  OpenLoopSource source(ol, gen, 5);
  // Only 6 spendable outputs exist and nothing commits: once the pool
  // drains, every further arrival is exhausted, not silently absorbed.
  const auto arrivals = source.arrivals_until(100.0);
  EXPECT_LE(arrivals.size(), 6u);
  EXPECT_GT(arrivals.size(), 0u);
  EXPECT_GT(source.exhausted(), 50u);
  EXPECT_EQ(source.generated(), arrivals.size());
}

TEST(OpenLoop, ZipfSkewConcentratesShardLoad) {
  // A heavy exponent concentrates arrivals on the hottest account's
  // shard; replenish via commits so the generator can keep serving the
  // hot account instead of falling back.
  auto cfg = base_config();
  cfg.cross_shard_fraction = 0.0;
  WorkloadGenerator gen(cfg, 6);
  OpenLoopConfig ol;
  ol.arrival_rate = 0.5;
  ol.cross_shard_fraction = 0.0;
  ol.zipf_s = 2.0;
  OpenLoopSource source(ol, gen, 9);
  std::map<ShardId, int> per_shard;
  for (int window = 1; window <= 10; ++window) {
    for (auto& a : source.arrivals_until(20.0 * window)) {
      per_shard[a.tx.input_shard(cfg.shards)] += 1;
      gen.mark_committed(a.tx);
    }
  }
  int total = 0, hottest = 0;
  for (const auto& [shard, count] : per_shard) {
    total += count;
    hottest = std::max(hottest, count);
  }
  ASSERT_GT(total, 50);
  // Uniform load would put ~25% on each of the 4 shards; the skewed
  // source concentrates well past that on the hot shard.
  EXPECT_GT(hottest, total / 3);
}

}  // namespace
}  // namespace cyc::ledger
