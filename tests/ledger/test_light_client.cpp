#include "ledger/light_client.hpp"

#include <gtest/gtest.h>

namespace cyc::ledger {
namespace {

Transaction sample_tx(std::uint64_t seed) {
  const auto a = crypto::KeyPair::from_seed(seed);
  const auto b = crypto::KeyPair::from_seed(seed + 1);
  Transaction tx;
  tx.spender = a.pk;
  tx.inputs.push_back(OutPoint{crypto::sha256(be64(seed)), 0});
  tx.outputs.push_back(TxOut{b.pk, 7});
  sign_tx(tx, a.sk);
  return tx;
}

struct Env {
  Chain chain;
  LightClient client;
  std::vector<Block> blocks;

  void produce_round(std::size_t txs, std::uint64_t base) {
    std::vector<Transaction> body;
    for (std::size_t i = 0; i < txs; ++i) body.push_back(sample_tx(base + 2 * i));
    Block block = Block::build(chain.tip().round + 1, chain.tip().hash(),
                               crypto::sha256(be64(base)), std::move(body));
    ASSERT_TRUE(chain.append(block));
    blocks.push_back(block);
  }
};

TEST(LightClient, FollowsHeaderChain) {
  Env env;
  env.produce_round(3, 100);
  env.produce_round(2, 200);
  for (const auto& block : env.blocks) {
    EXPECT_TRUE(env.client.accept_header(block.header));
  }
  EXPECT_EQ(env.client.height(), 2u);
  EXPECT_EQ(env.client.tip(), env.blocks.back().header);
}

TEST(LightClient, RejectsForkedHeader) {
  Env env;
  env.produce_round(1, 300);
  ASSERT_TRUE(env.client.accept_header(env.blocks[0].header));
  // A competing round-1 header does not extend the tip.
  BlockHeader fork = env.blocks[0].header;
  fork.body_root = crypto::sha256(bytes_of("forked"));
  EXPECT_FALSE(env.client.accept_header(fork));
  // A round-3 header skips a round.
  BlockHeader skip = env.blocks[0].header;
  skip.round = 3;
  skip.prev_hash = env.client.tip().hash();
  EXPECT_FALSE(env.client.accept_header(skip));
}

TEST(LightClient, RejectsReplay) {
  Env env;
  env.produce_round(1, 400);
  ASSERT_TRUE(env.client.accept_header(env.blocks[0].header));
  EXPECT_FALSE(env.client.accept_header(env.blocks[0].header));
}

TEST(LightClient, VerifiesPayments) {
  Env env;
  env.produce_round(5, 500);
  ASSERT_TRUE(env.client.accept_header(env.blocks[0].header));
  for (std::size_t i = 0; i < env.blocks[0].txs.size(); ++i) {
    const auto proof = env.blocks[0].prove_inclusion(i);
    EXPECT_TRUE(
        env.client.verify_payment(1, env.blocks[0].txs[i], proof));
  }
}

TEST(LightClient, RejectsForeignPayment) {
  Env env;
  env.produce_round(4, 600);
  ASSERT_TRUE(env.client.accept_header(env.blocks[0].header));
  const auto proof = env.blocks[0].prove_inclusion(0);
  EXPECT_FALSE(env.client.verify_payment(1, sample_tx(999), proof));
  // Unknown heights fail closed.
  EXPECT_FALSE(env.client.verify_payment(0, env.blocks[0].txs[0], proof));
  EXPECT_FALSE(env.client.verify_payment(7, env.blocks[0].txs[0], proof));
}

TEST(LightClient, RandomnessLookup) {
  Env env;
  env.produce_round(1, 700);
  ASSERT_TRUE(env.client.accept_header(env.blocks[0].header));
  const auto randomness = env.client.randomness_at(1);
  ASSERT_TRUE(randomness.has_value());
  EXPECT_EQ(*randomness, env.blocks[0].header.randomness);
  EXPECT_FALSE(env.client.randomness_at(9).has_value());
}

TEST(LightClient, InteroperatesWithChainGenesis) {
  // The client starts from the same genesis sentinel as Chain, so the
  // first real header of any engine run is acceptable directly.
  Chain chain;
  LightClient client;
  EXPECT_EQ(client.tip(), chain.genesis());
}

}  // namespace
}  // namespace cyc::ledger
