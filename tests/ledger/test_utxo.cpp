#include "ledger/utxo.hpp"

#include <gtest/gtest.h>

namespace cyc::ledger {
namespace {

struct Fixture {
  static constexpr std::uint32_t kShards = 4;
  std::vector<crypto::KeyPair> users;
  Fixture() {
    for (std::uint64_t i = 0; i < 64; ++i) {
      users.push_back(crypto::KeyPair::from_seed(i + 1000));
    }
  }
  const crypto::KeyPair& in_shard(ShardId s, std::size_t skip = 0) const {
    std::size_t found = 0;
    for (const auto& u : users) {
      if (shard_of(u.pk, kShards) == s) {
        if (found == skip) return u;
        ++found;
      }
    }
    throw std::runtime_error("no user in shard");
  }
};

OutPoint op(int i) {
  return OutPoint{crypto::sha256(be64(static_cast<std::uint64_t>(i))), 0};
}

TEST(Utxo, AddGetSpend) {
  Fixture f;
  UtxoStore store(0, Fixture::kShards);
  const auto& owner = f.in_shard(0);
  EXPECT_TRUE(store.add(op(1), TxOut{owner.pk, 100}));
  EXPECT_TRUE(store.contains(op(1)));
  const auto got = store.get(op(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->amount, 100u);
  EXPECT_TRUE(store.spend(op(1)));
  EXPECT_FALSE(store.contains(op(1)));
  EXPECT_FALSE(store.spend(op(1)));  // already spent
}

TEST(Utxo, RejectsForeignShardOutputs) {
  Fixture f;
  UtxoStore store(0, Fixture::kShards);
  const auto& foreign = f.in_shard(1);
  EXPECT_FALSE(store.add(op(2), TxOut{foreign.pk, 10}));
  EXPECT_EQ(store.size(), 0u);
}

TEST(Utxo, TotalValue) {
  Fixture f;
  UtxoStore store(2, Fixture::kShards);
  const auto& owner = f.in_shard(2);
  store.add(op(3), TxOut{owner.pk, 100});
  store.add(op(4), TxOut{owner.pk, 50});
  EXPECT_EQ(store.total_value(), 150u);
}

TEST(Utxo, ApplySpendsAndAdds) {
  Fixture f;
  const auto& alice = f.in_shard(0);
  const auto& bob = f.in_shard(0, 1);
  UtxoStore store(0, Fixture::kShards);
  store.add(op(5), TxOut{alice.pk, 100});

  Transaction tx;
  tx.spender = alice.pk;
  tx.inputs.push_back(op(5));
  tx.outputs.push_back(TxOut{bob.pk, 90});
  sign_tx(tx, alice.sk);

  store.apply(tx);
  EXPECT_FALSE(store.contains(op(5)));
  EXPECT_TRUE(store.contains(OutPoint{tx.id(), 0}));
  EXPECT_EQ(store.total_value(), 90u);
}

TEST(Utxo, ApplyCrossShardOnlyTouchesOwnSide) {
  Fixture f;
  const auto& alice = f.in_shard(0);
  const auto& carol = f.in_shard(1);
  UtxoStore store0(0, Fixture::kShards);
  UtxoStore store1(1, Fixture::kShards);
  store0.add(op(6), TxOut{alice.pk, 100});

  Transaction tx;
  tx.spender = alice.pk;
  tx.inputs.push_back(op(6));
  tx.outputs.push_back(TxOut{carol.pk, 100});
  sign_tx(tx, alice.sk);

  store0.apply(tx);
  store1.apply(tx);
  EXPECT_EQ(store0.size(), 0u);  // input spent, no output belongs here
  EXPECT_EQ(store1.size(), 1u);  // carol's output landed in shard 1
  EXPECT_EQ(store1.total_value(), 100u);
}

TEST(Utxo, DigestReflectsContent) {
  Fixture f;
  const auto& owner = f.in_shard(3);
  UtxoStore a(3, Fixture::kShards), b(3, Fixture::kShards);
  EXPECT_EQ(a.digest(), b.digest());
  a.add(op(7), TxOut{owner.pk, 10});
  EXPECT_NE(a.digest(), b.digest());
  b.add(op(7), TxOut{owner.pk, 10});
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Utxo, DigestOrderIndependent) {
  Fixture f;
  const auto& owner = f.in_shard(1);
  UtxoStore a(1, Fixture::kShards), b(1, Fixture::kShards);
  a.add(op(8), TxOut{owner.pk, 1});
  a.add(op(9), TxOut{owner.pk, 2});
  b.add(op(9), TxOut{owner.pk, 2});
  b.add(op(8), TxOut{owner.pk, 1});
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Utxo, OutpointsSorted) {
  Fixture f;
  const auto& owner = f.in_shard(0);
  UtxoStore store(0, Fixture::kShards);
  for (int i = 20; i > 10; --i) store.add(op(i), TxOut{owner.pk, 1});
  const auto ops = store.outpoints();
  EXPECT_TRUE(std::is_sorted(ops.begin(), ops.end()));
  EXPECT_EQ(ops.size(), 10u);
}

}  // namespace
}  // namespace cyc::ledger
