#include "ledger/mempool.hpp"

#include <gtest/gtest.h>

namespace cyc::ledger {
namespace {

Transaction tagged_tx(std::uint8_t tag) {
  Transaction tx;
  OutPoint in;
  in.tx.fill(tag);
  in.index = tag;
  tx.inputs.push_back(in);
  return tx;
}

TEST(Mempool, AdmitsUpToCapacityThenDrops) {
  ShardMempool pool(3);
  EXPECT_TRUE(pool.admit(tagged_tx(1), 0.5));
  EXPECT_TRUE(pool.admit(tagged_tx(2), 1.0));
  EXPECT_TRUE(pool.admit(tagged_tx(3), 1.5));
  EXPECT_TRUE(pool.full());
  EXPECT_FALSE(pool.admit(tagged_tx(4), 2.0));
  EXPECT_FALSE(pool.admit(tagged_tx(5), 2.5));
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.admitted(), 3u);
  EXPECT_EQ(pool.dropped(), 2u);
}

TEST(Mempool, DrainIsFifoAndKeepsArrivalStamps) {
  ShardMempool pool(8);
  for (std::uint8_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(pool.admit(tagged_tx(i), static_cast<double>(i)));
  }
  const auto first = pool.drain(3);
  ASSERT_EQ(first.size(), 3u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].tx.inputs[0].index, i + 1);
    EXPECT_EQ(first[i].arrival, static_cast<double>(i + 1));
  }
  // Draining frees capacity again.
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_FALSE(pool.full());
  const auto rest = pool.drain(100);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].tx.inputs[0].index, 4u);
  EXPECT_EQ(rest[1].tx.inputs[0].index, 5u);
  EXPECT_EQ(pool.drained(), 5u);
  EXPECT_EQ(pool.drain(4).size(), 0u);
}

TEST(Mempool, ConservationAcrossMixedTraffic) {
  ShardMempool pool(4);
  std::uint64_t accepted = 0;
  for (std::uint8_t i = 0; i < 20; ++i) {
    if (pool.admit(tagged_tx(i), static_cast<double>(i))) accepted += 1;
    if (i % 3 == 2) pool.drain(1);
  }
  EXPECT_EQ(pool.admitted(), accepted);
  EXPECT_EQ(pool.admitted(), pool.drained() + pool.size());
  EXPECT_EQ(pool.admitted() + pool.dropped(), 20u);
}

TEST(Mempool, ZeroCapacityDropsEverything) {
  ShardMempool pool(0);
  EXPECT_TRUE(pool.full());
  EXPECT_FALSE(pool.admit(tagged_tx(1), 0.0));
  EXPECT_EQ(pool.dropped(), 1u);
  EXPECT_EQ(pool.drain(1).size(), 0u);
}

}  // namespace
}  // namespace cyc::ledger
