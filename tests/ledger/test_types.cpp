#include "ledger/types.hpp"

#include <gtest/gtest.h>

namespace cyc::ledger {
namespace {

crypto::KeyPair user(std::uint64_t seed) {
  return crypto::KeyPair::from_seed(seed);
}

Transaction simple_tx(const crypto::KeyPair& from, const crypto::KeyPair& to,
                      Amount amount) {
  Transaction tx;
  tx.spender = from.pk;
  tx.inputs.push_back(OutPoint{crypto::sha256(bytes_of("prev")), 0});
  tx.outputs.push_back(TxOut{to.pk, amount});
  sign_tx(tx, from.sk);
  return tx;
}

TEST(TxTypes, ShardOfIsStable) {
  const auto u = user(1);
  EXPECT_EQ(shard_of(u.pk, 8), shard_of(u.pk, 8));
  EXPECT_LT(shard_of(u.pk, 8), 8u);
}

TEST(TxTypes, ShardDistributionRoughlyUniform) {
  const std::uint32_t m = 4;
  std::vector<int> counts(m, 0);
  for (std::uint64_t i = 0; i < 400; ++i) {
    counts[shard_of(user(i + 100).pk, m)] += 1;
  }
  for (int c : counts) {
    EXPECT_GT(c, 60);
    EXPECT_LT(c, 140);
  }
}

TEST(TxTypes, SerializationRoundTrip) {
  const auto a = user(2), b = user(3);
  Transaction tx = simple_tx(a, b, 50);
  tx.outputs.push_back(TxOut{a.pk, 25});
  sign_tx(tx, a.sk);
  const Transaction back = Transaction::deserialize(tx.serialize());
  EXPECT_EQ(back, tx);
  EXPECT_EQ(back.id(), tx.id());
}

TEST(TxTypes, IdChangesWithContent) {
  const auto a = user(4), b = user(5);
  const Transaction tx1 = simple_tx(a, b, 50);
  const Transaction tx2 = simple_tx(a, b, 51);
  EXPECT_NE(tx1.id(), tx2.id());
}

TEST(TxTypes, IdIndependentOfSignature) {
  // The id covers the body; re-signing does not change it.
  const auto a = user(6), b = user(7);
  Transaction tx = simple_tx(a, b, 10);
  const TxId id = tx.id();
  tx.sig = crypto::Signature{};  // strip signature
  EXPECT_EQ(tx.id(), id);
}

TEST(TxTypes, SignatureVerifies) {
  const auto a = user(8), b = user(9);
  Transaction tx = simple_tx(a, b, 5);
  EXPECT_TRUE(check_tx_signature(tx));
  tx.outputs[0].amount = 6;  // tamper after signing
  EXPECT_FALSE(check_tx_signature(tx));
}

TEST(TxTypes, WrongSignerFails) {
  const auto a = user(10), b = user(11);
  Transaction tx;
  tx.spender = a.pk;
  tx.inputs.push_back(OutPoint{crypto::sha256(bytes_of("p")), 0});
  tx.outputs.push_back(TxOut{b.pk, 1});
  sign_tx(tx, b.sk);  // signed by the wrong key
  EXPECT_FALSE(check_tx_signature(tx));
}

TEST(TxTypes, IntraVsCrossShard) {
  const std::uint32_t m = 4;
  // Find two users in the same shard and one in a different shard.
  std::vector<crypto::KeyPair> users;
  for (std::uint64_t i = 0; i < 64; ++i) users.push_back(user(i + 200));
  const ShardId home = shard_of(users[0].pk, m);
  const crypto::KeyPair* same = nullptr;
  const crypto::KeyPair* other = nullptr;
  for (std::size_t i = 1; i < users.size(); ++i) {
    if (shard_of(users[i].pk, m) == home && !same) same = &users[i];
    if (shard_of(users[i].pk, m) != home && !other) other = &users[i];
  }
  ASSERT_NE(same, nullptr);
  ASSERT_NE(other, nullptr);

  const Transaction intra = simple_tx(users[0], *same, 5);
  EXPECT_TRUE(intra.is_intra_shard(m));
  EXPECT_EQ(intra.input_shard(m), home);
  EXPECT_EQ(intra.output_shards(m), std::set<ShardId>{home});

  const Transaction cross = simple_tx(users[0], *other, 5);
  EXPECT_FALSE(cross.is_intra_shard(m));
  EXPECT_EQ(cross.output_shards(m),
            std::set<ShardId>{shard_of(other->pk, m)});
}

TEST(TxTypes, OutPointOrdering) {
  OutPoint a{crypto::sha256(bytes_of("a")), 0};
  OutPoint b = a;
  b.index = 1;
  EXPECT_LT(a, b);
  EXPECT_EQ(a, a);
  OutPointHash h;
  EXPECT_NE(h(a), h(b));
}

}  // namespace
}  // namespace cyc::ledger
