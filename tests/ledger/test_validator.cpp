#include "ledger/validator.hpp"

#include <gtest/gtest.h>

namespace cyc::ledger {
namespace {

constexpr std::uint32_t kShards = 4;

struct Env {
  std::vector<crypto::KeyPair> users;
  UtxoStore store{0, kShards};
  crypto::KeyPair alice, bob;

  Env() {
    for (std::uint64_t i = 0; i < 64; ++i) {
      users.push_back(crypto::KeyPair::from_seed(i + 5000));
    }
    bool have_alice = false;
    for (const auto& u : users) {
      if (shard_of(u.pk, kShards) == 0) {
        if (!have_alice) {
          alice = u;
          have_alice = true;
        } else {
          bob = u;
          break;
        }
      }
    }
    store.add(outpoint(0), TxOut{alice.pk, 100});
    store.add(outpoint(1), TxOut{alice.pk, 40});
  }

  static OutPoint outpoint(int i) {
    return OutPoint{crypto::sha256(concat({bytes_of("gen"), be64(i)})), 0};
  }

  Transaction spend(Amount pay, Amount change) const {
    Transaction tx;
    tx.spender = alice.pk;
    tx.inputs.push_back(outpoint(0));
    tx.outputs.push_back(TxOut{bob.pk, pay});
    if (change > 0) tx.outputs.push_back(TxOut{alice.pk, change});
    sign_tx(tx, alice.sk);
    return tx;
  }
};

TEST(Validator, ValidTransaction) {
  Env env;
  const auto tx = env.spend(60, 39);  // fee 1
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kValid);
  EXPECT_TRUE(V(tx, env.store));
  EXPECT_EQ(tx_fee(tx, env.store), 1u);
}

TEST(Validator, ExactConservationValid) {
  Env env;
  const auto tx = env.spend(60, 40);  // fee 0
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kValid);
  EXPECT_EQ(tx_fee(tx, env.store), 0u);
}

TEST(Validator, OverspendRejected) {
  Env env;
  const auto tx = env.spend(90, 20);  // 110 > 100
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kOverspend);
  EXPECT_FALSE(V(tx, env.store));
}

TEST(Validator, UnknownInputRejected) {
  Env env;
  Transaction tx;
  tx.spender = env.alice.pk;
  tx.inputs.push_back(OutPoint{crypto::sha256(bytes_of("nope")), 0});
  tx.outputs.push_back(TxOut{env.bob.pk, 1});
  sign_tx(tx, env.alice.sk);
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kUnknownInput);
}

TEST(Validator, SpentInputRejected) {
  Env env;
  const auto tx = env.spend(60, 39);
  env.store.apply(tx);
  // Replaying the same tx must fail: its input is gone.
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kUnknownInput);
}

TEST(Validator, BadSignatureRejected) {
  Env env;
  auto tx = env.spend(60, 39);
  tx.outputs[0].amount = 61;  // tamper
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kBadSignature);
}

TEST(Validator, TheftRejected) {
  // Bob tries to spend Alice's output by naming her as spender but
  // signing with his own key.
  Env env;
  Transaction tx;
  tx.spender = env.alice.pk;
  tx.inputs.push_back(Env::outpoint(0));
  tx.outputs.push_back(TxOut{env.bob.pk, 100});
  sign_tx(tx, env.bob.sk);
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kBadSignature);
}

TEST(Validator, NotOwnerRejected) {
  // Bob signs as himself but tries to spend an output owned by Alice.
  Env env;
  Transaction tx;
  tx.spender = env.bob.pk;
  tx.inputs.push_back(Env::outpoint(0));
  tx.outputs.push_back(TxOut{env.bob.pk, 100});
  sign_tx(tx, env.bob.sk);
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kNotOwner);
}

TEST(Validator, InternalDoubleSpendRejected) {
  Env env;
  Transaction tx;
  tx.spender = env.alice.pk;
  tx.inputs.push_back(Env::outpoint(0));
  tx.inputs.push_back(Env::outpoint(0));  // same outpoint twice
  tx.outputs.push_back(TxOut{env.bob.pk, 150});
  sign_tx(tx, env.alice.sk);
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kInternalDoubleSpend);
}

TEST(Validator, MalformedRejected) {
  Env env;
  Transaction no_inputs;
  no_inputs.spender = env.alice.pk;
  no_inputs.outputs.push_back(TxOut{env.bob.pk, 1});
  sign_tx(no_inputs, env.alice.sk);
  EXPECT_EQ(verify_tx(no_inputs, env.store), TxVerdict::kMalformed);

  Transaction no_outputs;
  no_outputs.spender = env.alice.pk;
  no_outputs.inputs.push_back(Env::outpoint(0));
  sign_tx(no_outputs, env.alice.sk);
  EXPECT_EQ(verify_tx(no_outputs, env.store), TxVerdict::kMalformed);

  Transaction zero_output = env.spend(60, 39);
  zero_output.outputs[0].amount = 0;
  sign_tx(zero_output, env.alice.sk);
  EXPECT_EQ(verify_tx(zero_output, env.store), TxVerdict::kMalformed);
}

TEST(Validator, MultiInputSpend) {
  Env env;
  Transaction tx;
  tx.spender = env.alice.pk;
  tx.inputs.push_back(Env::outpoint(0));
  tx.inputs.push_back(Env::outpoint(1));
  tx.outputs.push_back(TxOut{env.bob.pk, 135});
  sign_tx(tx, env.alice.sk);
  EXPECT_EQ(verify_tx(tx, env.store), TxVerdict::kValid);
  EXPECT_EQ(tx_fee(tx, env.store), 5u);
}

TEST(Validator, VerdictNames) {
  EXPECT_EQ(verdict_name(TxVerdict::kValid), "valid");
  EXPECT_EQ(verdict_name(TxVerdict::kOverspend), "overspend");
  EXPECT_EQ(verdict_name(TxVerdict::kInternalDoubleSpend),
            "internal-double-spend");
}

}  // namespace
}  // namespace cyc::ledger
