#include "support/serde.hpp"

#include <gtest/gtest.h>

namespace cyc {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);

  Reader rd(w.out());
  EXPECT_EQ(rd.u8(), 0xab);
  EXPECT_EQ(rd.u32(), 0xdeadbeefu);
  EXPECT_EQ(rd.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(rd.i64(), -42);
  EXPECT_DOUBLE_EQ(rd.f64(), 3.25);
  EXPECT_TRUE(rd.boolean());
  EXPECT_FALSE(rd.boolean());
  EXPECT_TRUE(rd.done());
}

TEST(Serde, BytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes({});
  w.str("");

  Reader rd(w.out());
  EXPECT_EQ(rd.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(rd.str(), "hello");
  EXPECT_TRUE(rd.bytes().empty());
  EXPECT_EQ(rd.str(), "");
  EXPECT_TRUE(rd.done());
}

TEST(Serde, VecHelper) {
  Writer w;
  std::vector<std::uint64_t> values = {5, 6, 7};
  w.vec(values, [](Writer& w2, std::uint64_t v) { w2.u64(v); });

  Reader rd(w.out());
  const auto out =
      rd.vec<std::uint64_t>([](Reader& r) { return r.u64(); });
  EXPECT_EQ(out, values);
}

TEST(Serde, TruncatedInputThrows) {
  Writer w;
  w.u64(1);
  Bytes data = w.take();
  data.pop_back();
  Reader rd(data);
  EXPECT_THROW(rd.u64(), std::out_of_range);
}

TEST(Serde, TruncatedBytesLengthThrows) {
  Writer w;
  w.bytes(Bytes(10, 0));
  Bytes data = w.take();
  data.resize(8);  // cut into the byte body
  Reader rd(data);
  EXPECT_THROW(rd.bytes(), std::out_of_range);
}

TEST(Serde, CanonicalEncoding) {
  // Equal values must produce identical bytes (hashing depends on this).
  Writer a, b;
  a.u64(7);
  a.str("x");
  b.u64(7);
  b.str("x");
  EXPECT_EQ(a.out(), b.out());
}

TEST(Serde, Remaining) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader rd(w.out());
  EXPECT_EQ(rd.remaining(), 8u);
  rd.u32();
  EXPECT_EQ(rd.remaining(), 4u);
}

TEST(Serde, NegativeAndSpecialDoubles) {
  Writer w;
  w.f64(-0.0);
  w.f64(1e308);
  w.f64(-1e-308);
  Reader rd(w.out());
  EXPECT_DOUBLE_EQ(rd.f64(), -0.0);
  EXPECT_DOUBLE_EQ(rd.f64(), 1e308);
  EXPECT_DOUBLE_EQ(rd.f64(), -1e-308);
}

}  // namespace
}  // namespace cyc
