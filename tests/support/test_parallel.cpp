// Sweep-runner behaviour: ordering, worker bounds, exception transport.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "support/parallel.hpp"

namespace cyc::support {
namespace {

TEST(ParallelSweep, ResultsInIndexOrder) {
  const auto out = parallel_sweep(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelSweep, EveryJobRunsExactlyOnce) {
  std::vector<std::atomic<int>> runs(64);
  parallel_sweep(64, [&](std::size_t i) {
    runs[i].fetch_add(1);
    return 0;
  });
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ParallelSweep, EmptyAndSingle) {
  EXPECT_TRUE(parallel_sweep(0, [](std::size_t) { return 1; }).empty());
  const auto one = parallel_sweep(1, [](std::size_t i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

TEST(ParallelSweep, ExplicitWorkerCount) {
  const auto out =
      parallel_sweep(16, [](std::size_t i) { return i; }, /*threads=*/2);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}),
            std::size_t{120});
}

TEST(ParallelSweep, PropagatesExceptions) {
  EXPECT_THROW(parallel_sweep(8,
                              [](std::size_t i) {
                                if (i == 3) throw std::runtime_error("boom");
                                return i;
                              },
                              4),
               std::runtime_error);
}

TEST(SweepThreads, Bounds) {
  EXPECT_EQ(sweep_threads(3), 3u);
  EXPECT_GE(sweep_threads(0), 1u);
}

}  // namespace
}  // namespace cyc::support
