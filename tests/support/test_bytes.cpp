#include "support/bytes.hpp"

#include <gtest/gtest.h>

namespace cyc {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("AB"), Bytes{0xab});
  EXPECT_EQ(from_hex("aB"), Bytes{0xab});
}

TEST(Bytes, HexOddLengthThrows) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexNonHexThrows) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, BytesOf) {
  const Bytes b = bytes_of("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 'c');
}

TEST(Bytes, AppendAndConcat) {
  Bytes a = {1, 2};
  append(a, Bytes{3, 4});
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4}));

  const Bytes x = {9};
  const Bytes y = {8, 7};
  EXPECT_EQ(concat({x, y, x}), (Bytes{9, 8, 7, 9}));
}

TEST(Bytes, Be64RoundTrip) {
  const std::uint64_t v = 0x0123456789abcdefull;
  const Bytes enc = be64(v);
  ASSERT_EQ(enc.size(), 8u);
  EXPECT_EQ(enc[0], 0x01);
  EXPECT_EQ(enc[7], 0xef);
  EXPECT_EQ(read_be64(enc), v);
}

TEST(Bytes, Be64Boundaries) {
  EXPECT_EQ(read_be64(be64(0)), 0u);
  EXPECT_EQ(read_be64(be64(~0ull)), ~0ull);
}

TEST(Bytes, ReadBe64Truncated) {
  const Bytes short_buf(7, 0);
  EXPECT_THROW(read_be64(short_buf), std::invalid_argument);
}

TEST(Bytes, Equal) {
  EXPECT_TRUE(equal(Bytes{1, 2}, Bytes{1, 2}));
  EXPECT_FALSE(equal(Bytes{1, 2}, Bytes{1, 3}));
  EXPECT_FALSE(equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(equal(Bytes{}, Bytes{}));
}

}  // namespace
}  // namespace cyc
