// JsonWriter: structure, commas, escaping.
#include <gtest/gtest.h>

#include "support/json.hpp"

namespace cyc::support {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter j;
  j.begin_object();
  j.field("a", std::uint64_t{1});
  j.field("b", 2.5);
  j.field("c", true);
  j.field("d", "text");
  j.end_object();
  EXPECT_EQ(j.str(), R"({"a":1,"b":2.5,"c":true,"d":"text"})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter j;
  j.begin_object();
  j.key("points");
  j.begin_array();
  for (int i = 0; i < 2; ++i) {
    j.begin_object();
    j.field("i", i);
    j.end_object();
  }
  j.end_array();
  j.field("n", 2);
  j.end_object();
  EXPECT_EQ(j.str(), R"({"points":[{"i":0},{"i":1}],"n":2})");
}

TEST(JsonWriter, ArrayOfScalars) {
  JsonWriter j;
  j.begin_array();
  j.value(1.0);
  j.value(2.0);
  j.value(3.5);
  j.end_array();
  EXPECT_EQ(j.str(), "[1,2,3.5]");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter j;
  j.begin_object();
  j.field("s", "a\"b\\c\nd");
  j.end_object();
  EXPECT_EQ(j.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter j;
  j.begin_object();
  j.key("arr");
  j.begin_array();
  j.end_array();
  j.key("obj");
  j.begin_object();
  j.end_object();
  j.end_object();
  EXPECT_EQ(j.str(), R"({"arr":[],"obj":{}})");
}

}  // namespace
}  // namespace cyc::support
