// JsonWriter: structure, commas, escaping. JsonValue: parsing, lookup,
// round trips with the writer, error reporting.
#include <gtest/gtest.h>

#include "support/json.hpp"

namespace cyc::support {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter j;
  j.begin_object();
  j.field("a", std::uint64_t{1});
  j.field("b", 2.5);
  j.field("c", true);
  j.field("d", "text");
  j.end_object();
  EXPECT_EQ(j.str(), R"({"a":1,"b":2.5,"c":true,"d":"text"})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter j;
  j.begin_object();
  j.key("points");
  j.begin_array();
  for (int i = 0; i < 2; ++i) {
    j.begin_object();
    j.field("i", i);
    j.end_object();
  }
  j.end_array();
  j.field("n", 2);
  j.end_object();
  EXPECT_EQ(j.str(), R"({"points":[{"i":0},{"i":1}],"n":2})");
}

TEST(JsonWriter, ArrayOfScalars) {
  JsonWriter j;
  j.begin_array();
  j.value(1.0);
  j.value(2.0);
  j.value(3.5);
  j.end_array();
  EXPECT_EQ(j.str(), "[1,2,3.5]");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter j;
  j.begin_object();
  j.field("s", "a\"b\\c\nd");
  j.end_object();
  EXPECT_EQ(j.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter j;
  j.begin_object();
  j.key("arr");
  j.begin_array();
  j.end_array();
  j.key("obj");
  j.begin_object();
  j.end_object();
  j.end_object();
  EXPECT_EQ(j.str(), R"({"arr":[],"obj":{}})");
}

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(JsonValue::parse(R"("hi")").as_string(), "hi");
}

TEST(JsonValue, ParsesNestedStructure) {
  const auto v = JsonValue::parse(
      R"({"name":"x","seeds":[1,2,3],"opts":{"recovery":true},"frac":0.25})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.string_or("name", ""), "x");
  const auto* seeds = v.find("seeds");
  ASSERT_NE(seeds, nullptr);
  ASSERT_EQ(seeds->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(seeds->as_array()[1].as_number(), 2.0);
  const auto* opts = v.find("opts");
  ASSERT_NE(opts, nullptr);
  EXPECT_TRUE(opts->bool_or("recovery", false));
  EXPECT_DOUBLE_EQ(v.number_or("frac", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(v.number_or("absent", 7.0), 7.0);
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  const auto v = JsonValue::parse(R"({"z":1,"a":2,"m":3})");
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(JsonValue, RoundTripsWriterOutput) {
  JsonWriter j;
  j.begin_object();
  j.field("s", "a\"b\\c\nd\te");
  j.key("nums");
  j.begin_array();
  j.value(1.5);
  j.value(std::uint64_t{7});
  j.end_array();
  j.field("flag", true);
  j.end_object();

  const auto v = JsonValue::parse(j.str());
  EXPECT_EQ(v.string_or("s", ""), "a\"b\\c\nd\te");
  ASSERT_EQ(v.find("nums")->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(v.find("nums")->as_array()[0].as_number(), 1.5);
  EXPECT_TRUE(v.bool_or("flag", false));
}

TEST(JsonValue, ParsesControlCharacterEscapes) {
  JsonWriter j;
  j.begin_object();
  j.field("ctl", std::string_view("a\x01z", 3));
  j.end_object();
  const auto v = JsonValue::parse(j.str());
  EXPECT_EQ(v.string_or("ctl", ""), std::string("a\x01z", 3));
}

TEST(JsonValue, DecodesSurrogatePairs) {
  // \ud83d\ude00 is U+1F600 (emoji, as any standard JSON serializer may
  // emit it); it must decode to one 4-byte UTF-8 sequence, not two
  // CESU-8-encoded surrogates.
  const auto v = JsonValue::parse(R"("\ud83d\ude00!")");
  EXPECT_EQ(v.as_string(), "\xf0\x9f\x98\x80!");
  // Basic-plane escapes still work, and lone surrogates are rejected.
  EXPECT_EQ(JsonValue::parse(R"("\u00e9")").as_string(), "\xc3\xa9");
  EXPECT_THROW(JsonValue::parse(R"("\ud83d")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse(R"("\ud83dA")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse(R"("\ud83d\u0041")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse(R"("\ude00")"), JsonParseError);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1,2"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("tru"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1 2"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("nan"), JsonParseError);
}

TEST(JsonValue, EnforcesRfc8259NumberGrammar) {
  EXPECT_DOUBLE_EQ(JsonValue::parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("10.25e-1").as_number(), 1.025);
  EXPECT_THROW(JsonValue::parse("+5"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1."), JsonParseError);
  EXPECT_THROW(JsonValue::parse(".5"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("01"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1e"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("-"), JsonParseError);
}

TEST(JsonValue, BoundsNestingDepth) {
  // Deep but legal nesting parses...
  std::string ok(100, '[');
  ok += "1";
  ok.append(100, ']');
  EXPECT_NO_THROW(JsonValue::parse(ok));
  // ...while hostile input throws instead of overflowing the stack.
  EXPECT_THROW(JsonValue::parse(std::string(100000, '[')), JsonParseError);
  std::string objects;
  for (int i = 0; i < 100000; ++i) objects += R"({"a":)";
  EXPECT_THROW(JsonValue::parse(objects), JsonParseError);
}

TEST(JsonValue, TypeMismatchThrows) {
  const auto v = JsonValue::parse("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_NO_THROW(v.as_array());
}

}  // namespace
}  // namespace cyc::support
