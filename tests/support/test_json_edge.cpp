// JsonValue parser edge cases: hostile / malformed input must raise
// JsonParseError (never UB — this file runs under the ASan/UBSan gate
// like the rest of the suite): deep nesting, duplicate keys, trailing
// garbage, NaN / overflow numerals, and escape-sequence corner cases.
#include <gtest/gtest.h>

#include <string>

#include "support/json.hpp"

namespace cyc::support {
namespace {

std::string nested(std::size_t depth, char open, char close,
                   const std::string& core) {
  std::string s(depth, open);
  s += core;
  s.append(depth, close);
  return s;
}

TEST(JsonEdge, DeepNestingIsBoundedNotStackSmashed) {
  // 256 containers parse; one more is a diagnostic, not a crash.
  EXPECT_NO_THROW(JsonValue::parse(nested(256, '[', ']', "1")));
  EXPECT_THROW(JsonValue::parse(nested(257, '[', ']', "1")), JsonParseError);
  EXPECT_THROW(JsonValue::parse(std::string(100000, '[')), JsonParseError);
  // Objects hit the same bound, including mixed nesting.
  std::string deep_obj;
  for (int i = 0; i < 300; ++i) deep_obj += "{\"k\":[";
  EXPECT_THROW(JsonValue::parse(deep_obj), JsonParseError);
}

TEST(JsonEdge, DuplicateKeysKeepFirstDeterministically) {
  const auto v = JsonValue::parse(R"({"a":1,"b":2,"a":3})");
  // All members are retained in insertion order; lookup is first-wins.
  EXPECT_EQ(v.as_object().size(), 3u);
  EXPECT_DOUBLE_EQ(v.number_or("a", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(v.number_or("b", 0.0), 2.0);
}

TEST(JsonEdge, TrailingGarbageRejected) {
  EXPECT_THROW(JsonValue::parse("1 x"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{} {}"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1,2] tail"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("truefalse"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1,"), JsonParseError);
  // Leading whitespace is fine; trailing whitespace is fine.
  EXPECT_NO_THROW(JsonValue::parse("  [1] \n\t"));
}

TEST(JsonEdge, NanAndOverflowNumeralsRejected) {
  // Not in the RFC 8259 grammar at all.
  EXPECT_THROW(JsonValue::parse("nan"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("NaN"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("Infinity"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("-inf"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("+1"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("01"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1."), JsonParseError);
  EXPECT_THROW(JsonValue::parse(".5"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1e"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1e+"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("-"), JsonParseError);
  // Grammar-valid but overflows double: rejected, not inf.
  EXPECT_THROW(JsonValue::parse("1e999"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("-1e999"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1,1e999]"), JsonParseError);
  // Near the edge stays fine (and finite).
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e308").as_number(), 1e308);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e-300").as_number(), -1.5e-300);
}

TEST(JsonEdge, EscapeSequenceCorners) {
  // Valid escapes, including a surrogate pair -> UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("\u00e9")").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse(R"("\u2603")").as_string(), "\xe2\x98\x83");
  EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_EQ(JsonValue::parse(R"("\b\f\/")").as_string(), "\b\f/");
  // Malformed escapes are diagnostics, not UB.
  EXPECT_THROW(JsonValue::parse(R"("\q")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse(R"("\u12")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse(R"("\u12zz")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse(R"("\ud800x")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse(R"("\ud800A")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse(R"("\udc00")"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"\\"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"\\u123"), JsonParseError);
}

TEST(JsonEdge, ParseErrorCarriesOffset) {
  try {
    JsonValue::parse("[1, 1e999]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 4u);  // points at the offending numeral
  }
}

}  // namespace
}  // namespace cyc::support
