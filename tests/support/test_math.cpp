#include "support/math.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "support/parallel.hpp"

namespace cyc::math {
namespace {

TEST(MathTest, LogBinomialSmall) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 10)), 1.0, 1e-9);
  EXPECT_EQ(log_binomial(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(MathTest, HypergeometricPmfSumsToOne) {
  const std::uint64_t n = 50, t = 20, c = 10;
  double total = 0.0;
  for (std::uint64_t x = 0; x <= c; ++x) {
    const double lp = log_hypergeometric_pmf(n, t, c, x);
    if (lp > -1e300) total += std::exp(lp);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MathTest, HypergeometricTailMonotone) {
  const std::uint64_t n = 100, t = 33, c = 20;
  double prev = 1.1;
  for (std::uint64_t x0 = 0; x0 <= c; ++x0) {
    const double tail = hypergeometric_tail(n, t, c, x0);
    EXPECT_LE(tail, prev + 1e-12);
    prev = tail;
  }
  EXPECT_NEAR(hypergeometric_tail(n, t, c, 0), 1.0, 1e-9);
}

TEST(MathTest, HypergeometricTailExactSmallCase) {
  // Population 5, 2 marked, sample 2: P(X >= 1) = 1 - C(3,2)/C(5,2) = 0.7
  EXPECT_NEAR(hypergeometric_tail(5, 2, 2, 1), 0.7, 1e-12);
  // P(X >= 2) = C(2,2)/C(5,2) = 0.1
  EXPECT_NEAR(hypergeometric_tail(5, 2, 2, 2), 0.1, 1e-12);
}

TEST(MathTest, HypergeometricInvalidArgs) {
  EXPECT_THROW(log_hypergeometric_pmf(10, 20, 5, 1), std::invalid_argument);
  EXPECT_THROW(log_hypergeometric_pmf(10, 5, 20, 1), std::invalid_argument);
}

TEST(MathTest, KlBernoulliBasics) {
  EXPECT_NEAR(kl_bernoulli(0.5, 0.5), 0.0, 1e-12);
  EXPECT_GT(kl_bernoulli(0.5, 0.25), 0.0);
  // Known value: D(1/2 || 1/3) = 0.5 ln(3/2) + 0.5 ln(3/4)
  const double expected = 0.5 * std::log(1.5) + 0.5 * std::log(0.75);
  EXPECT_NEAR(kl_bernoulli(0.5, 1.0 / 3.0), expected, 1e-12);
}

TEST(MathTest, KlBernoulliDomain) {
  EXPECT_THROW(kl_bernoulli(-0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(kl_bernoulli(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(kl_bernoulli(0.5, 1.0), std::invalid_argument);
}

TEST(MathTest, PaperEquation4Relationship) {
  // Paper-vs-measured note (see EXPERIMENTS.md): Eq. (4) claims the tail
  // is at most e^{-c/12}, but D(1/2 || 1/3 + 1/c) -> ~0.059 < 1/12, so
  // the true Chernoff exponent is *smaller* than 1/12 and e^{-c/12}
  // slightly understates the failure probability. We verify the real
  // relationships: the exponents agree within a factor ~2, and both
  // decay exponentially in c.
  for (double c : {40.0, 120.0, 240.0}) {
    const double f = 1.0 / 3.0 + 1.0 / c;
    const double kl_exp = kl_bernoulli(0.5, f);  // true exponent
    EXPECT_GT(kl_exp, 1.0 / 24.0) << "c=" << c;
    EXPECT_LT(kl_exp, 1.0 / 12.0) << "c=" << c;
    EXPECT_LT(kl_tail_bound(f, c), 1.0);
    EXPECT_GT(kl_tail_bound(f, c), simple_tail_bound(c));
  }
}

TEST(MathTest, BinomialTailBasics) {
  // Binomial(2, 0.5): P(X >= 1) = 0.75, P(X >= 2) = 0.25
  EXPECT_NEAR(binomial_tail(2, 0.5, 1), 0.75, 1e-12);
  EXPECT_NEAR(binomial_tail(2, 0.5, 2), 0.25, 1e-12);
  EXPECT_NEAR(binomial_tail(2, 0.5, 0), 1.0, 1e-12);
  EXPECT_EQ(binomial_tail(2, 0.5, 3), 0.0);
}

TEST(MathTest, BinomialTailDegenerate) {
  EXPECT_EQ(binomial_tail(5, 0.0, 0), 1.0);
  EXPECT_EQ(binomial_tail(5, 0.0, 1), 0.0);
  EXPECT_EQ(binomial_tail(5, 1.0, 5), 1.0);
}

TEST(MathTest, PartialSetBoundMatchesPaper) {
  // (1/3)^40 ~= 8.2e-20; the paper rounds to "< 8 x 10^-20" — we check
  // the order of magnitude and the exact power.
  const double p = binomial_tail(40, 1.0 / 3.0, 40);
  EXPECT_NEAR(p, std::pow(1.0 / 3.0, 40), 1e-30);
  EXPECT_LT(p, 1e-19);
}

TEST(MathTest, LogAdd) {
  EXPECT_NEAR(log_add(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(log_add(ninf, std::log(2.0)), std::log(2.0));
  EXPECT_EQ(log_add(ninf, ninf), ninf);
}

TEST(MathTest, LogSumExp) {
  const double v = log_sum_exp({std::log(1.0), std::log(2.0), std::log(3.0)});
  EXPECT_NEAR(v, std::log(6.0), 1e-12);
}

TEST(MathTest, FitSlope) {
  // y = 3x + 1
  std::vector<double> x = {0, 1, 2, 3};
  std::vector<double> y = {1, 4, 7, 10};
  EXPECT_NEAR(fit_slope(x, y), 3.0, 1e-12);
}

TEST(MathTest, FitSlopeErrors) {
  EXPECT_THROW(fit_slope({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_slope({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fit_slope({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(MathTest, PercentileExactSmallSamples) {
  // Nearest-rank: the result is always an element of the sample.
  const std::vector<double> s = {15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_EQ(percentile(s, 0.05), 15.0);  // ceil(0.25) = 1st
  EXPECT_EQ(percentile(s, 0.30), 20.0);  // ceil(1.5) = 2nd
  EXPECT_EQ(percentile(s, 0.40), 20.0);  // ceil(2.0) = 2nd
  EXPECT_EQ(percentile(s, 0.50), 35.0);  // ceil(2.5) = 3rd
  EXPECT_EQ(percentile(s, 1.00), 50.0);
  EXPECT_EQ(percentile(s, 0.00), 15.0);
}

TEST(MathTest, PercentileEdgeCases) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
  EXPECT_EQ(percentile({7.5}, 0.0), 7.5);
  EXPECT_EQ(percentile({7.5}, 0.5), 7.5);
  EXPECT_EQ(percentile({7.5}, 1.0), 7.5);
  // Out-of-range quantiles clamp instead of reading out of bounds.
  EXPECT_EQ(percentile({1.0, 2.0}, -0.3), 1.0);
  EXPECT_EQ(percentile({1.0, 2.0}, 1.7), 2.0);
}

TEST(MathTest, SortedSampleMatchesPercentileExactly) {
  // The sort-once multi-quantile view must agree bit-for-bit with the
  // one-shot nearest-rank query at every q, including the pinned edges
  // q=0 (minimum), q=1 (maximum) and out-of-range clamping.
  const std::vector<double> s = {40.0, 15.0, 50.0, 20.0, 35.0};
  const SortedSample sorted(s);
  for (double q : {0.0, 0.05, 0.30, 0.40, 0.50, 0.95, 0.999, 1.0, -0.3, 1.7}) {
    EXPECT_EQ(sorted.percentile(q), percentile(s, q)) << "q=" << q;
  }
  EXPECT_EQ(sorted.size(), 5u);
  EXPECT_FALSE(sorted.empty());
}

TEST(MathTest, SortedSampleEdgeCases) {
  const SortedSample empty(std::vector<double>{});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.percentile(0.5), 0.0);

  const SortedSample single(std::vector<double>{7.5});
  EXPECT_EQ(single.percentile(0.0), 7.5);
  EXPECT_EQ(single.percentile(0.5), 7.5);
  EXPECT_EQ(single.percentile(1.0), 7.5);
}

TEST(MathTest, PercentileOrderInvariant) {
  const std::vector<double> sorted = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<double> shuffled = {7, 2, 10, 5, 1, 9, 4, 8, 3, 6};
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(percentile(sorted, q), percentile(shuffled, q)) << "q=" << q;
  }
}

TEST(MathTest, PercentileDeterministicAcrossThreadCounts) {
  // The sustained-load bench aggregates latencies on the parallel sweep
  // pool; the percentile of a fixed sample must be bit-identical no
  // matter how many workers computed it.
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) {
    sample.push_back(static_cast<double>((i * 37) % 997) / 7.0);
  }
  const double q[3] = {0.5, 0.99, 0.999};
  std::vector<std::array<double, 3>> per_thread_count;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto results = support::parallel_sweep(
        3,
        [&](std::size_t i) { return percentile(sample, q[i]); },
        threads);
    per_thread_count.push_back({results[0], results[1], results[2]});
  }
  for (std::size_t i = 1; i < per_thread_count.size(); ++i) {
    EXPECT_EQ(per_thread_count[i], per_thread_count[0]);
  }
  // p999 of 1000 samples is the 999th order statistic, an actual sample.
  EXPECT_EQ(per_thread_count[0][2], percentile(sample, 0.999));
}

// Property sweep: the exact hypergeometric tail must always lie below the
// KL Chernoff bound of Eq. (3) when sampling without replacement with
// t/n < 1/3 (the regime of §V-B).
class TailBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TailBoundSweep, ExactBelowKlBound) {
  const std::uint64_t c = GetParam();
  const std::uint64_t n = 2000, t = 666;
  const double f =
      static_cast<double>(t) / static_cast<double>(n) + 1.0 / static_cast<double>(c);
  const double exact = hypergeometric_tail(n, t, c, (c + 1) / 2);
  const double bound = std::exp(-kl_bernoulli(0.5, f) * static_cast<double>(c));
  EXPECT_LE(exact, bound * 1.0001) << "c=" << c;
}

INSTANTIATE_TEST_SUITE_P(CommitteeSizes, TailBoundSweep,
                         ::testing::Values(20, 40, 60, 80, 100, 140, 180, 240,
                                           300, 400));

}  // namespace
}  // namespace cyc::math
