#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cyc::rng {
namespace {

TEST(Rng, Deterministic) {
  Stream a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Stream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkByNameIndependentOfConsumption) {
  Stream parent1(7), parent2(7);
  parent2.next();  // consume some of parent2
  Stream c1 = parent1.fork("child");
  Stream c2 = parent2.fork("child");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, ForkNamesIndependent) {
  Stream parent(7);
  Stream a = parent.fork("a");
  Stream b = parent.fork("b");
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, ForkIndexDistinct) {
  Stream parent(9);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 100; ++i) {
    firsts.insert(parent.fork(i).next());
  }
  EXPECT_EQ(firsts.size(), 100u);
}

TEST(Rng, BelowInRange) {
  Stream s(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(s.below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.below(1), 0u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Stream s(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(s.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Stream s(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = s.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Stream s(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = s.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Stream s(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.chance(0.0));
    EXPECT_TRUE(s.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Stream s(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (s.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Stream s(23);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  shuffle(v, s);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleChangesOrder) {
  Stream s(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto orig = v;
  shuffle(v, s);
  EXPECT_NE(v, orig);
}

TEST(Rng, Splitmix64KnownValue) {
  // Reference value from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t v = splitmix64(state);
  EXPECT_EQ(v, 0xe220a8397b1dcdafull);
}

}  // namespace
}  // namespace cyc::rng
