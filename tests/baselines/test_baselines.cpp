#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

namespace cyc::baselines {
namespace {

BaselineParams paper_params() {
  BaselineParams p;
  p.n = 2000;
  p.m = 16;
  p.c = 125;
  p.lambda = 40;
  p.corrupt_leader_fraction = 1.0 / 3.0;
  p.txs_per_committee = 100;
  return p;
}

TEST(Baselines, ProfilesMatchTableI) {
  const auto models = all_models(paper_params());
  ASSERT_EQ(models.size(), 4u);

  const auto elastico = models[0]->profile();
  const auto omniledger = models[1]->profile();
  const auto rapidchain = models[2]->profile();
  const auto cycledger = models[3]->profile();

  // Row 1: resiliency.
  EXPECT_DOUBLE_EQ(elastico.resiliency, 0.25);
  EXPECT_DOUBLE_EQ(omniledger.resiliency, 0.25);
  EXPECT_NEAR(rapidchain.resiliency, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(cycledger.resiliency, 1.0 / 3.0, 1e-12);

  // Row 6: only CycLedger stays efficient under dishonest leaders.
  EXPECT_FALSE(elastico.dishonest_leader_efficient);
  EXPECT_FALSE(omniledger.dishonest_leader_efficient);
  EXPECT_FALSE(rapidchain.dishonest_leader_efficient);
  EXPECT_TRUE(cycledger.dishonest_leader_efficient);

  // Row 7: only CycLedger has incentives.
  EXPECT_TRUE(cycledger.has_incentives);
  EXPECT_FALSE(rapidchain.has_incentives);

  // Row 8: CycLedger's connection burden is light.
  EXPECT_LT(cycledger.reliable_channels, rapidchain.reliable_channels);
  EXPECT_LT(cycledger.reliable_channels, elastico.reliable_channels / 2);

  // Row 5: decentralization strings.
  EXPECT_EQ(omniledger.decentralization, "an honest client");
  EXPECT_EQ(rapidchain.decentralization, "an honest reference committee");
  EXPECT_EQ(cycledger.decentralization, "no always-honest party");
}

TEST(Baselines, DishonestLeaderThroughput) {
  // The headline comparison: at 1/3 corrupt leaders, CycLedger commits
  // everything; RapidChain/Elastico lose ~1/3.
  auto params = paper_params();
  rng::Stream rng(1);
  RapidChainModel rapidchain(params);
  CycLedgerModel cycledger(params);

  std::size_t rc_total = 0, cyc_total = 0;
  const std::size_t full = params.m * params.txs_per_committee;
  for (int round = 0; round < 50; ++round) {
    rc_total += rapidchain.simulate_round(rng).txs_committed;
    cyc_total += cycledger.simulate_round(rng).txs_committed;
  }
  EXPECT_EQ(cyc_total, 50u * full);
  EXPECT_LT(rc_total, 45u * full);
  EXPECT_GT(rc_total, 25u * full);  // ~2/3 expected
}

TEST(Baselines, HonestLeadersEqualThroughput) {
  auto params = paper_params();
  params.corrupt_leader_fraction = 0.0;
  rng::Stream rng(2);
  for (auto& model : all_models(params)) {
    const auto round = model->simulate_round(rng);
    EXPECT_EQ(round.txs_committed, params.m * params.txs_per_committee)
        << model->profile().name;
    EXPECT_EQ(round.committees_stalled, 0u);
  }
}

TEST(Baselines, OmniLedgerDependsOnTrustedClient) {
  auto params = paper_params();
  rng::Stream rng1(3), rng2(3);
  OmniLedgerModel with_client(params, true);
  OmniLedgerModel without_client(params, false);
  std::size_t with_total = 0, without_total = 0;
  double with_latency = 0;
  for (int round = 0; round < 30; ++round) {
    const auto a = with_client.simulate_round(rng1);
    const auto b = without_client.simulate_round(rng2);
    with_total += a.txs_committed;
    without_total += b.txs_committed;
    with_latency += a.latency;
  }
  EXPECT_GT(with_total, without_total);       // the client saves output...
  EXPECT_GT(with_latency, 30.0);              // ...at a latency cost
}

TEST(Baselines, CycLedgerRecoveryCountsMatchBadLeaders) {
  auto params = paper_params();
  params.corrupt_leader_fraction = 0.5;
  rng::Stream rng(4);
  CycLedgerModel model(params);
  std::size_t recoveries = 0;
  for (int round = 0; round < 40; ++round) {
    recoveries += model.simulate_round(rng).recoveries;
  }
  // E[bad leaders per round] = m/2 = 8.
  EXPECT_NEAR(static_cast<double>(recoveries) / 40.0, 8.0, 2.0);
}

TEST(Baselines, FailureProbOrdering) {
  const auto models = all_models(paper_params());
  const double elastico = models[0]->profile().round_failure_prob;
  const double rapidchain = models[2]->profile().round_failure_prob;
  const double cycledger = models[3]->profile().round_failure_prob;
  EXPECT_LT(rapidchain, elastico);
  // CycLedger ~= RapidChain + negligible partial-set term.
  EXPECT_NEAR(cycledger, rapidchain, rapidchain * 0.1 + 1e-8);
}

TEST(Baselines, LatencyDegradesGracefullyForCycLedger) {
  auto params = paper_params();
  params.corrupt_leader_fraction = 1.0;  // every leader corrupt
  rng::Stream rng(5);
  CycLedgerModel model(params);
  const auto round = model.simulate_round(rng);
  EXPECT_EQ(round.txs_committed, params.m * params.txs_per_committee);
  EXPECT_LE(round.latency, 1.5);  // bounded recovery cost
}

}  // namespace
}  // namespace cyc::baselines
