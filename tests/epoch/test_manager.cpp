// EpochManager: lifecycle scheduling, PoW identity churn, reconfiguration
// contract (ledger and reputation survive the reshuffle), determinism.
#include "epoch/manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace cyc::epoch {
namespace {

using protocol::AdversaryConfig;
using protocol::Engine;
using protocol::Params;

Params small_params(std::uint64_t seed, std::uint32_t standby = 8) {
  Params p;
  p.m = 3;
  p.c = 9;
  p.lambda = 3;
  p.referee_size = 5;
  p.txs_per_committee = 8;
  p.cross_shard_fraction = 0.2;
  p.invalid_fraction = 0.1;
  p.users = 60;
  p.standby = standby;
  p.seed = seed;
  return p;
}

EpochConfig epochs(std::size_t n, std::size_t rounds, double churn) {
  EpochConfig c;
  c.epochs = n;
  c.rounds_per_epoch = rounds;
  c.churn_rate = churn;
  return c;
}

std::set<net::NodeId> role_holders(const protocol::RoundAssignment& assign) {
  std::set<net::NodeId> out;
  for (net::NodeId id : assign.referees) out.insert(id);
  for (const auto& committee : assign.committees) {
    out.insert(committee.leader);
    out.insert(committee.partial.begin(), committee.partial.end());
    out.insert(committee.commons.begin(), committee.commons.end());
  }
  return out;
}

TEST(EpochManager, SingleEpochMatchesBareEngine) {
  // epochs = 1 must be bit-for-bit the plain Engine run.
  Params params = small_params(21, /*standby=*/0);
  Engine bare(params, AdversaryConfig{});
  EpochManager managed(params, AdversaryConfig{}, epochs(1, 2, 0.0));
  for (int r = 0; r < 2; ++r) {
    const auto a = bare.run_round();
    const auto b = managed.run_round();
    EXPECT_EQ(a.txs_committed, b.txs_committed);
    EXPECT_EQ(a.txs_offered, b.txs_offered);
    EXPECT_EQ(a.recoveries, b.recoveries);
  }
  EXPECT_TRUE(managed.finished());
  EXPECT_TRUE(managed.handoffs().empty());
  EXPECT_EQ(bare.chain().tip().hash(), managed.engine().chain().tip().hash());
  for (std::size_t k = 0; k < bare.shard_state().size(); ++k) {
    EXPECT_EQ(bare.shard_state()[k].digest(),
              managed.engine().shard_state()[k].digest());
  }
}

TEST(EpochManager, MultiEpochChurnsAndPreservesLedger) {
  EpochManager manager(small_params(22), AdversaryConfig{},
                       epochs(3, 2, 0.2));
  // Reputations observed right after each boundary round returns: the
  // boundary runs inside run_round after reputation updating, and
  // reconfigure must not touch reputations, so the handoff's surviving
  // sum has to match these values exactly. (That reconfigure itself
  // leaves reputations untouched is asserted directly in
  // EngineReconfigure.ValidatesMembership.)
  std::map<std::uint64_t, std::vector<double>> post_boundary_reps;
  std::size_t seen_handoffs = 0;
  while (!manager.finished()) {
    manager.run_round();
    if (manager.handoffs().size() > seen_handoffs) {
      std::vector<double> reps;
      for (std::size_t i = 0; i < manager.engine().node_count(); ++i) {
        reps.push_back(
            manager.engine().reputation(static_cast<net::NodeId>(i)));
      }
      post_boundary_reps[manager.handoffs().back().epoch] = reps;
      seen_handoffs = manager.handoffs().size();
    }
  }

  ASSERT_EQ(manager.handoffs().size(), 2u);
  EXPECT_EQ(manager.rounds_run(), 6u);
  EXPECT_EQ(manager.engine().chain().height(), 6u);

  const std::size_t active = small_params(22).total_nodes();
  for (const auto& handoff : manager.handoffs()) {
    // Membership size is conserved (one retirement per admitted joiner).
    EXPECT_EQ(handoff.members.size(), active);
    EXPECT_GT(handoff.joined.size(), 0u) << "churn 0.2 must admit joiners";
    EXPECT_EQ(handoff.joined.size(), handoff.retired.size());
    EXPECT_LE(handoff.joined.size(), handoff.join_candidates);
    // Bounded churn budget.
    EXPECT_LE(static_cast<double>(handoff.retired.size()),
              0.25 * static_cast<double>(active) + 1e-9);
    // Joined and retired are disjoint; members sorted and unique.
    std::set<net::NodeId> joined(handoff.joined.begin(),
                                 handoff.joined.end());
    for (net::NodeId id : handoff.retired) {
      EXPECT_FALSE(joined.contains(id));
    }
    EXPECT_TRUE(std::is_sorted(handoff.members.begin(),
                               handoff.members.end()));
    // Reputation conservation: surviving members carry their exact
    // end-of-epoch reputation across the reshuffle.
    const auto& reps = post_boundary_reps.at(handoff.epoch);
    double expected = 0.0;
    for (net::NodeId id : handoff.members) {
      if (!joined.contains(id)) expected += reps[id];
    }
    EXPECT_NEAR(handoff.surviving_reputation, expected, 1e-9);
  }

  // Consecutive epochs drew different randomness.
  EXPECT_NE(manager.handoffs()[0].randomness,
            manager.handoffs()[1].randomness);
}

TEST(EpochManager, RolesComeFromNewMembershipOnly) {
  EpochManager manager(small_params(23), AdversaryConfig{},
                       epochs(2, 1, 0.2));
  manager.run_round();  // epoch 0 round + boundary
  ASSERT_EQ(manager.handoffs().size(), 1u);
  const EpochHandoff& handoff = manager.handoffs().front();
  const std::set<net::NodeId> members(handoff.members.begin(),
                                      handoff.members.end());
  const auto holders = role_holders(manager.engine().assignment());
  EXPECT_EQ(holders.size(), members.size());
  for (net::NodeId id : holders) {
    EXPECT_TRUE(members.contains(id)) << "role holder " << id
                                      << " is not a member";
  }
  for (net::NodeId id : handoff.retired) {
    EXPECT_FALSE(holders.contains(id)) << "retired node " << id
                                       << " still holds a role";
    EXPECT_FALSE(manager.engine().enrolled(id));
  }
  for (net::NodeId id : handoff.joined) {
    EXPECT_TRUE(manager.engine().enrolled(id));
  }
  // The new epoch runs to completion on the reshuffled membership.
  const auto report = manager.run_round();
  EXPECT_GT(report.txs_committed, 0u);
  EXPECT_TRUE(manager.finished());
}

TEST(EpochManager, ZeroChurnKeepsMembershipButRedraws) {
  EpochManager manager(small_params(24, /*standby=*/4), AdversaryConfig{},
                       epochs(2, 1, 0.0));
  const auto before = manager.engine().members();
  const auto rand_before = manager.engine().randomness();
  manager.run_round();
  ASSERT_EQ(manager.handoffs().size(), 1u);
  const EpochHandoff& handoff = manager.handoffs().front();
  EXPECT_TRUE(handoff.joined.empty());
  EXPECT_TRUE(handoff.retired.empty());
  EXPECT_EQ(handoff.members, before);
  // The committees were still re-drawn: the epoch randomness is fresh
  // (distinct from genesis and from the PVSS beacon alone) and installed,
  // and the assignment targets the upcoming round.
  EXPECT_NE(handoff.randomness, rand_before);
  EXPECT_EQ(manager.engine().randomness(), handoff.randomness);
  EXPECT_EQ(manager.engine().assignment().round, manager.engine().round());
  const auto holders = role_holders(manager.engine().assignment());
  EXPECT_EQ(holders.size(), before.size());
}

TEST(EpochManager, DeterministicAcrossRuns) {
  const auto run_once = [] {
    EpochManager manager(small_params(25), AdversaryConfig{},
                         epochs(3, 1, 0.2));
    while (!manager.finished()) manager.run_round();
    std::vector<crypto::Digest> digests;
    for (const auto& handoff : manager.handoffs()) {
      digests.push_back(handoff.digest());
    }
    digests.push_back(manager.engine().chain().tip().hash());
    return digests;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EpochManager, AdversarialEpochsStayLive) {
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.15;
  EpochManager manager(small_params(26), adv, epochs(3, 1, 0.2));
  std::size_t committed = 0;
  while (!manager.finished()) committed += manager.run_round().txs_committed;
  EXPECT_GT(committed, 0u);
  EXPECT_EQ(manager.handoffs().size(), 2u);
}

TEST(EpochManager, RejectsDegenerateSchedules) {
  EXPECT_THROW(EpochManager(small_params(27), AdversaryConfig{},
                            epochs(0, 1, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(EpochManager(small_params(27), AdversaryConfig{},
                            epochs(1, 0, 0.0)),
               std::invalid_argument);
  EpochManager manager(small_params(27, 0), AdversaryConfig{},
                       epochs(1, 1, 0.0));
  manager.run_round();
  EXPECT_TRUE(manager.finished());
  EXPECT_THROW(manager.run_round(), std::logic_error);
}

TEST(EngineReconfigure, ValidatesMembership) {
  Params params = small_params(28, 0);
  Engine engine(params, AdversaryConfig{});
  engine.run_round();

  protocol::Reconfiguration reconfig;
  reconfig.epoch = 1;
  reconfig.randomness = crypto::sha256(bytes_of("epoch-rand"));

  // Too few members for the role floor.
  reconfig.members = {0, 1, 2};
  EXPECT_THROW(engine.reconfigure(reconfig), std::invalid_argument);

  // Duplicate ids.
  reconfig.members = engine.members();
  reconfig.members.push_back(reconfig.members.front());
  EXPECT_THROW(engine.reconfigure(reconfig), std::invalid_argument);

  // Unknown node id.
  reconfig.members = engine.members();
  reconfig.members.back() = static_cast<net::NodeId>(engine.node_count() + 7);
  EXPECT_THROW(engine.reconfigure(reconfig), std::invalid_argument);

  // A valid reconfiguration keeps the ledger, every reputation and the
  // Remaining TX List, and installs the randomness.
  const auto tip = engine.chain().tip().hash();
  const auto carried = engine.carryover_size();
  std::vector<double> reps_before;
  for (std::size_t i = 0; i < engine.node_count(); ++i) {
    reps_before.push_back(engine.reputation(static_cast<net::NodeId>(i)));
  }
  reconfig.members = engine.members();
  engine.reconfigure(reconfig);
  EXPECT_EQ(engine.chain().tip().hash(), tip);
  EXPECT_EQ(engine.carryover_size(), carried);
  EXPECT_EQ(engine.randomness(), reconfig.randomness);
  EXPECT_EQ(engine.assignment().round, engine.round());
  for (std::size_t i = 0; i < engine.node_count(); ++i) {
    EXPECT_EQ(engine.reputation(static_cast<net::NodeId>(i)), reps_before[i])
        << "reconfigure mutated node " << i << "'s reputation";
  }
  const auto report = engine.run_round();  // still runs after reconfigure
  EXPECT_GT(report.txs_committed, 0u);
}

}  // namespace
}  // namespace cyc::epoch
