// Load-aware epoch re-draw planner: deterministic plans, hot-shard
// re-homing under the safety gates, serde round-trips, and the optional
// plan field's byte-compatibility with pre-rebalance EpochHandoff
// records.
#include "epoch/rebalance.hpp"

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "epoch/handoff.hpp"

namespace cyc::epoch {
namespace {

constexpr std::uint32_t kShards = 3;
constexpr std::size_t kMembers = 60;
constexpr std::uint32_t kSeats = 9;

RebalanceConfig enabled_config() {
  RebalanceConfig cfg;
  cfg.enabled = true;
  cfg.max_moves = 4;
  return cfg;
}

/// A roster of synthetic accounts keyed so every account's map home is
/// whatever the identity hash says — moves in these tests reference the
/// homes the map actually reports.
std::vector<std::pair<std::uint64_t, ledger::ShardId>> roster(
    const ledger::ShardMap& map, std::size_t count) {
  std::vector<std::pair<std::uint64_t, ledger::ShardId>> accounts;
  for (std::uint64_t key = 1; key <= count; ++key) {
    accounts.emplace_back(key, map.shard_key(key));
  }
  return accounts;
}

/// A window where every account on `hot_shard` arrived often and the
/// rest barely at all — offered concentrates on the hot shard.
ledger::ShardLoadWindow skewed_window(
    const std::vector<std::pair<std::uint64_t, ledger::ShardId>>& accounts,
    ledger::ShardId hot_shard) {
  ledger::ShardLoadWindow window;
  window.rounds = 10;
  window.offered.assign(kShards, 0);
  window.dropped.assign(kShards, 0);
  window.occupancy_sum.assign(kShards, 0);
  for (const auto& [key, shard] : accounts) {
    const std::uint64_t arrivals = shard == hot_shard ? 20 : 1;
    window.account_arrivals[key] = arrivals;
    window.offered[shard] += arrivals;
  }
  return window;
}

TEST(Rebalance, PlanIsDeterministic) {
  const ledger::ShardMap map(kShards);
  const auto accounts = roster(map, 30);
  const auto window = skewed_window(accounts, 0);
  const RebalancePlan a = plan_rebalance(enabled_config(), map, window,
                                         accounts, kMembers, 5, kSeats, 2);
  const RebalancePlan b = plan_rebalance(enabled_config(), map, window,
                                         accounts, kMembers, 5, kSeats, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(Rebalance, MovesHottestAccountsOffTheOverloadedShard) {
  const ledger::ShardMap map(kShards);
  const auto accounts = roster(map, 30);
  const auto window = skewed_window(accounts, 0);
  const RebalancePlan plan = plan_rebalance(
      enabled_config(), map, window, accounts, kMembers, 5, kSeats, 2);
  ASSERT_FALSE(plan.moves.empty());
  EXPECT_LE(plan.moves.size(), enabled_config().max_moves);
  for (const auto& mv : plan.moves) {
    EXPECT_EQ(mv.from, 0u) << "moves must come off the hot shard";
    EXPECT_NE(mv.to, 0u);
    EXPECT_EQ(map.shard_key(mv.account), 0u);
  }
  // Moves are recorded sorted by account and digest the successor map.
  for (std::size_t i = 1; i < plan.moves.size(); ++i) {
    EXPECT_LT(plan.moves[i - 1].account, plan.moves[i].account);
  }
  EXPECT_EQ(plan.map_digest, map.apply(plan.moves).digest());
  EXPECT_EQ(plan.m_after, plan.m_before);
}

TEST(Rebalance, DisabledOrEmptyWindowPlansIdentity) {
  const ledger::ShardMap map(kShards);
  const auto accounts = roster(map, 30);
  const auto window = skewed_window(accounts, 0);
  RebalanceConfig off = enabled_config();
  off.enabled = false;
  const RebalancePlan disabled = plan_rebalance(off, map, window, accounts,
                                                kMembers, 5, kSeats, 2);
  EXPECT_TRUE(disabled.moves.empty());
  // The identity decision still digests an applied (version-bumped) map
  // so the audit record matches what the engine installs.
  EXPECT_EQ(disabled.map_digest, map.apply({}).digest());

  const ledger::ShardLoadWindow empty;
  const RebalancePlan no_window = plan_rebalance(
      enabled_config(), map, empty, accounts, kMembers, 5, kSeats, 2);
  EXPECT_TRUE(no_window.moves.empty());
  EXPECT_EQ(no_window.map_digest, map.apply({}).digest());
}

TEST(Rebalance, NeverEmptiesAShardOfAccounts) {
  const ledger::ShardMap map(kShards);
  // One lonely account on its shard, hammered with arrivals.
  std::vector<std::pair<std::uint64_t, ledger::ShardId>> accounts;
  std::uint64_t lonely = 0;
  for (std::uint64_t key = 1; accounts.size() < 7; ++key) {
    const ledger::ShardId home = map.shard_key(key);
    if (home == 1 && lonely == 0) {
      lonely = key;
      accounts.emplace_back(key, home);
    } else if (home != 1) {
      accounts.emplace_back(key, home);
    }
  }
  ASSERT_NE(lonely, 0u);
  ledger::ShardLoadWindow window;
  window.rounds = 5;
  window.offered.assign(kShards, 1);
  window.dropped.assign(kShards, 0);
  window.occupancy_sum.assign(kShards, 0);
  window.offered[1] = 500;
  window.account_arrivals[lonely] = 500;
  const RebalancePlan plan = plan_rebalance(
      enabled_config(), map, window, accounts, kMembers, 5, kSeats, 2);
  EXPECT_TRUE(plan.moves.empty()) << "the last account may not be re-homed";
}

TEST(Rebalance, SplitGatedByFairDrawSafety) {
  const ledger::ShardMap map(kShards);
  const auto accounts = roster(map, 30);
  auto window = skewed_window(accounts, 0);
  window.dropped[0] = 40;  // capacity shortfall signal
  RebalanceConfig cfg = enabled_config();
  cfg.split_merge_budget = 1;

  // Safe population: zero corrupt members — the rescaled committee
  // cannot lose its majority, so the split recommendation goes through.
  const RebalancePlan safe = plan_rebalance(cfg, map, window, accounts,
                                            kMembers, 0, kSeats, 2);
  EXPECT_EQ(safe.m_after, kShards + 1);
  EXPECT_LE(safe.fair_draw_tail, cfg.max_fair_draw_tail);

  // Hostile population: enough corrupt members that the smaller
  // rescaled committees would fail the exact-hypergeometric gate — the
  // recommendation must be withheld.
  const RebalancePlan unsafe = plan_rebalance(cfg, map, window, accounts,
                                              kMembers, 18, kSeats, 2);
  EXPECT_EQ(unsafe.m_after, kShards);
}

TEST(Rebalance, SerializationRoundTrips) {
  const ledger::ShardMap map(kShards);
  const auto accounts = roster(map, 30);
  const auto window = skewed_window(accounts, 0);
  RebalancePlan plan = plan_rebalance(enabled_config(), map, window,
                                      accounts, kMembers, 5, kSeats, 2);
  plan.migrated_outputs = 17;
  const RebalancePlan back = RebalancePlan::deserialize(plan.serialize());
  EXPECT_EQ(back, plan);
  EXPECT_EQ(back.digest(), plan.digest());
  EXPECT_THROW(RebalancePlan::deserialize(bytes_of("not a plan")),
               std::exception);
}

TEST(Rebalance, HandoffPlanFieldRoundTripsAndPinsTheDigest) {
  EpochHandoff h;
  h.epoch = 2;
  h.boundary_round = 4;
  h.members = {0, 1, 2};
  const Bytes legacy = h.serialize();

  const ledger::ShardMap map(kShards);
  const auto accounts = roster(map, 30);
  const auto window = skewed_window(accounts, 0);
  h.plan = plan_rebalance(enabled_config(), map, window, accounts,
                          kMembers, 5, kSeats, 2);
  const Bytes with_plan = h.serialize();
  const EpochHandoff back = EpochHandoff::deserialize(with_plan);
  EXPECT_EQ(back, h);
  ASSERT_TRUE(back.plan.has_value());
  EXPECT_EQ(back.plan->moves, h.plan->moves);

  // The optional plan is appended after the legacy fields: a plan-less
  // record keeps its exact pre-rebalance byte encoding (and digest), and
  // a plan-carrying record extends it as a strict prefix.
  ASSERT_GT(with_plan.size(), legacy.size());
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), with_plan.begin()));
  EXPECT_NE(EpochHandoff::deserialize(legacy).digest(), h.digest());
}

}  // namespace
}  // namespace cyc::epoch
