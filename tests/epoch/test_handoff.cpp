// EpochHandoff record mechanics: canonical serialization round-trip,
// content digest sensitivity, and the order-sensitive carryover digest.
#include "epoch/handoff.hpp"

#include <gtest/gtest.h>

#include "ledger/validator.hpp"

namespace cyc::epoch {
namespace {

EpochHandoff sample_handoff() {
  EpochHandoff h;
  h.epoch = 3;
  h.boundary_round = 7;
  h.randomness = crypto::sha256(bytes_of("rand"));
  h.chain_tip = crypto::sha256(bytes_of("tip"));
  h.chain_height = 6;
  h.shard_digests = {crypto::sha256(bytes_of("s0")),
                     crypto::sha256(bytes_of("s1"))};
  h.carried_txs = 4;
  h.carried_digest = crypto::sha256(bytes_of("carry"));
  h.surviving_reputation = 123.5;
  h.members = {0, 1, 2, 5, 9};
  h.joined = {9};
  h.retired = {3};
  h.join_candidates = 2;
  h.beacon_disqualified = 1;
  return h;
}

TEST(EpochHandoff, SerializationRoundTrips) {
  const EpochHandoff h = sample_handoff();
  const EpochHandoff back = EpochHandoff::deserialize(h.serialize());
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.digest(), h.digest());
}

TEST(EpochHandoff, RejectsForeignBytes) {
  EXPECT_THROW(EpochHandoff::deserialize(bytes_of("not a handoff")),
               std::exception);
}

TEST(EpochHandoff, DigestPinsEveryField) {
  const EpochHandoff base = sample_handoff();
  // Every forgeable field must move the content digest — otherwise a
  // forged record could reuse an honest digest.
  EpochHandoff m = base;
  m.carried_txs -= 1;
  EXPECT_NE(m.digest(), base.digest()) << "carried_txs not pinned";
  m = base;
  m.surviving_reputation += 1.0;
  EXPECT_NE(m.digest(), base.digest()) << "surviving_reputation not pinned";
  m = base;
  m.chain_height += 1;
  EXPECT_NE(m.digest(), base.digest()) << "chain_height not pinned";
  m = base;
  m.members.push_back(99);
  EXPECT_NE(m.digest(), base.digest()) << "members not pinned";
  m = base;
  m.retired = {4};
  EXPECT_NE(m.digest(), base.digest()) << "retired not pinned";
  m = base;
  m.shard_digests[1] = crypto::sha256(bytes_of("tampered"));
  EXPECT_NE(m.digest(), base.digest()) << "shard digests not pinned";
}

ledger::Transaction tx_paying(ledger::Amount amount) {
  const crypto::KeyPair kp = crypto::KeyPair::from_seed(7);
  ledger::Transaction tx;
  tx.outputs = {{kp.pk, amount}};
  tx.spender = kp.pk;
  ledger::sign_tx(tx, kp.sk);
  return tx;
}

TEST(CarryoverDigest, OrderAndContentSensitive) {
  const auto tx1 = tx_paying(10);
  const auto tx2 = tx_paying(20);
  const auto forward = carryover_digest({tx1, tx2});
  const auto backward = carryover_digest({tx2, tx1});
  EXPECT_NE(forward, backward) << "the Remaining TX List is ordered";
  EXPECT_NE(carryover_digest({tx1}), carryover_digest({tx1, tx1}))
      << "duplicated carried tx must change the digest";
  EXPECT_EQ(carryover_digest({}), carryover_digest({}));
  EXPECT_NE(carryover_digest({}), carryover_digest({tx1}));
  EXPECT_EQ(forward, carryover_digest({tx1, tx2})) << "deterministic";
}

}  // namespace
}  // namespace cyc::epoch
