// Scenario generator: every sampled spec stays inside the §III threat
// model and the documented bounds, sampling is deterministic in the
// stream, and the spec domain is diverse enough to be worth fuzzing.
#include <gtest/gtest.h>

#include <set>

#include "fuzz/generator.hpp"

namespace cyc::fuzz {
namespace {

using harness::ScenarioSpec;

TEST(FuzzGenerator, SpecsRespectThreatModelBounds) {
  const FuzzBounds bounds;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    rng::Stream rng(seed);
    const ScenarioSpec spec = generate_spec(rng, bounds);

    // Adversary below the honest-majority bound; mixes never contain
    // "honest" (that is not a corruption).
    EXPECT_LT(spec.adversary.corrupt_fraction, 1.0 / 3.0);
    EXPECT_LE(spec.adversary.corrupt_fraction, bounds.max_corrupt_fraction);
    for (const auto& entry : spec.adversary.mix) {
      EXPECT_NE(entry.behavior, protocol::Behavior::kHonest);
      EXPECT_GT(entry.weight, 0.0);
    }
    if (spec.adversary.corrupt_fraction == 0.0) {
      EXPECT_TRUE(spec.adversary.mix.empty());
    } else {
      EXPECT_FALSE(spec.adversary.mix.empty());
    }

    // Valid committee shapes and legal delay regimes.
    EXPECT_GE(spec.params.m, 2u);
    EXPECT_GE(spec.params.c, 6u);
    EXPECT_LE(spec.params.lambda, spec.params.c);
    EXPECT_GE(spec.params.referee_size, 5u);
    EXPECT_LE(spec.params.capacity_min, spec.params.capacity_max);
    EXPECT_GE(spec.params.delays.gamma, spec.params.delays.delta);
    EXPECT_GE(spec.params.delays.jitter, 0.0);

    // Bounded rounds / epochs / churn / seeds / events.
    EXPECT_GE(spec.rounds, 1u);
    EXPECT_LE(spec.rounds, bounds.max_rounds);
    EXPECT_GE(spec.epochs, 1u);
    EXPECT_LE(spec.epochs, bounds.max_epochs);
    EXPECT_GE(spec.churn_rate, 0.0);
    EXPECT_LE(spec.churn_rate, bounds.max_churn_rate);
    if (spec.churn_rate > 0.0) {
      EXPECT_GT(spec.params.standby, 0u);
    }
    EXPECT_GE(spec.seeds.size(), 1u);
    EXPECT_LE(spec.seeds.size(), bounds.max_seeds);
    EXPECT_LE(spec.events.size(), bounds.max_events);

    // Event schedules stay legal: rounds inside the run, targets inside
    // the shape, behaviours are concrete corruptions.
    for (const auto& ev : spec.events) {
      EXPECT_GE(ev.round, 1u);
      EXPECT_LE(ev.round, spec.rounds * spec.epochs);
      EXPECT_NE(ev.behavior, protocol::Behavior::kHonest);
      switch (ev.target) {
        case harness::ScenarioEvent::Target::kNode:
          EXPECT_LT(ev.node, spec.params.total_nodes());
          break;
        case harness::ScenarioEvent::Target::kLeaderOf:
          EXPECT_LT(ev.committee, spec.params.m);
          break;
        case harness::ScenarioEvent::Target::kRefereeAt:
          EXPECT_LT(ev.committee, spec.params.referee_size);
          break;
      }
    }
  }
}

TEST(FuzzGenerator, DeterministicPerStream) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    rng::Stream a(seed);
    rng::Stream b(seed);
    EXPECT_EQ(generate_spec(a).to_json_text(), generate_spec(b).to_json_text());
  }
}

TEST(FuzzGenerator, StreamsProduceDiverseSpecs) {
  std::set<std::string> encodings;
  bool saw_adversary = false;
  bool saw_events = false;
  bool saw_epochs = false;
  bool saw_honest = false;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    rng::Stream rng(seed);
    const ScenarioSpec spec = generate_spec(rng);
    encodings.insert(spec.to_json_text());
    saw_adversary |= spec.adversary.corrupt_fraction > 0.0;
    saw_events |= !spec.events.empty();
    saw_epochs |= spec.epochs > 1;
    saw_honest |= spec.adversary.corrupt_fraction == 0.0;
  }
  EXPECT_GT(encodings.size(), 90u) << "sampling collapsed";
  EXPECT_TRUE(saw_adversary);
  EXPECT_TRUE(saw_events);
  EXPECT_TRUE(saw_epochs);
  EXPECT_TRUE(saw_honest);
}

TEST(FuzzGenerator, FailureTailFilterIsLive) {
  // The filter the generator applies must reject what it claims to: a
  // narrow all-misvoting adversary on a small committee has a tail far
  // above the bound, while the honest baseline is exactly zero.
  EXPECT_GT(spec_failure_tail(23, 7, 7, 3, 6, 5), FuzzBounds{}.max_committee_failure);
  EXPECT_EQ(spec_failure_tail(23, 0, 0, 3, 6, 5), 0.0);
  // Liveness term dominates when only part of the mix misvotes.
  EXPECT_GE(spec_failure_tail(23, 2, 7, 3, 6, 5),
            spec_failure_tail(23, 2, 2, 3, 6, 5));
}

}  // namespace
}  // namespace cyc::fuzz
