// Scenario generator: every sampled spec stays inside the §III threat
// model and the documented bounds, sampling is deterministic in the
// stream, and the spec domain is diverse enough to be worth fuzzing.
#include <gtest/gtest.h>

#include <set>

#include "fuzz/generator.hpp"

namespace cyc::fuzz {
namespace {

using harness::ScenarioSpec;

TEST(FuzzGenerator, SpecsRespectThreatModelBounds) {
  const FuzzBounds bounds;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    rng::Stream rng(seed);
    const ScenarioSpec spec = generate_spec(rng, bounds);

    // Adversary below the honest-majority bound; mixes never contain
    // "honest" (that is not a corruption).
    EXPECT_LT(spec.adversary.corrupt_fraction, 1.0 / 3.0);
    EXPECT_LE(spec.adversary.corrupt_fraction, bounds.max_corrupt_fraction);
    for (const auto& entry : spec.adversary.mix) {
      EXPECT_NE(entry.behavior, protocol::Behavior::kHonest);
      EXPECT_GT(entry.weight, 0.0);
    }
    if (spec.adversary.corrupt_fraction == 0.0) {
      EXPECT_TRUE(spec.adversary.mix.empty());
    } else {
      EXPECT_FALSE(spec.adversary.mix.empty());
    }

    // Valid committee shapes and legal delay regimes.
    EXPECT_GE(spec.params.m, 2u);
    EXPECT_GE(spec.params.c, 6u);
    EXPECT_LE(spec.params.lambda, spec.params.c);
    EXPECT_GE(spec.params.referee_size, 5u);
    EXPECT_LE(spec.params.capacity_min, spec.params.capacity_max);
    EXPECT_GE(spec.params.delays.gamma, spec.params.delays.delta);
    EXPECT_GE(spec.params.delays.jitter, 0.0);

    // Bounded rounds / epochs / churn / seeds / events.
    EXPECT_GE(spec.rounds, 1u);
    EXPECT_LE(spec.rounds, bounds.max_rounds);
    EXPECT_GE(spec.epochs, 1u);
    EXPECT_LE(spec.epochs, bounds.max_epochs);
    EXPECT_GE(spec.churn_rate, 0.0);
    EXPECT_LE(spec.churn_rate, bounds.max_churn_rate);
    if (spec.churn_rate > 0.0) {
      EXPECT_GT(spec.params.standby, 0u);
    }
    EXPECT_GE(spec.seeds.size(), 1u);
    EXPECT_LE(spec.seeds.size(), bounds.max_seeds);

    // Per-kind event budgets: corruption events spend the §III-C budget,
    // fault-fabric events ride their own bounds (each crash-restart pair
    // contributes one kCrash and one kRestart; each partition may bring
    // an explicit heal).
    std::size_t corruptions = 0, partitions = 0, heals = 0, crashes = 0,
                restarts = 0, blackouts = 0;
    for (const auto& ev : spec.events) {
      using Kind = harness::ScenarioEvent::Kind;
      switch (ev.kind) {
        case Kind::kCorrupt: corruptions += 1; break;
        case Kind::kPartition: partitions += 1; break;
        case Kind::kHeal: heals += 1; break;
        case Kind::kCrash: crashes += 1; break;
        case Kind::kRestart: restarts += 1; break;
        case Kind::kBlackout: blackouts += 1; break;
      }
    }
    EXPECT_LE(corruptions, bounds.max_events);
    EXPECT_LE(partitions, bounds.max_partitions);
    EXPECT_LE(heals, partitions);
    EXPECT_LE(crashes, bounds.max_crash_restarts);
    EXPECT_EQ(restarts, crashes) << "crash-restart events come in pairs";
    EXPECT_LE(blackouts, bounds.max_blackouts);

    // The probabilistic loss profile stays inside its ceiling.
    EXPECT_GE(spec.params.faults.drop, 0.0);
    EXPECT_LE(spec.params.faults.drop, bounds.max_drop);

    // Event schedules stay legal: rounds inside the run, targets inside
    // the shape, behaviours are concrete corruptions, restarts trail
    // their crash far enough for the crash to have taken effect.
    for (const auto& ev : spec.events) {
      EXPECT_GE(ev.round, 1u);
      EXPECT_LE(ev.round, spec.rounds * spec.epochs);
      EXPECT_NE(ev.behavior, protocol::Behavior::kHonest);
      if (ev.kind == harness::ScenarioEvent::Kind::kRestart) {
        EXPECT_GE(ev.round, 3u);
      }
      if (ev.kind == harness::ScenarioEvent::Kind::kPartition ||
          ev.kind == harness::ScenarioEvent::Kind::kBlackout) {
        EXPECT_GE(ev.duration, 1u);
      }
      switch (ev.target) {
        case harness::ScenarioEvent::Target::kNode:
          EXPECT_LT(ev.node, spec.params.total_nodes());
          break;
        case harness::ScenarioEvent::Target::kLeaderOf:
          EXPECT_LT(ev.committee, spec.params.m);
          break;
        case harness::ScenarioEvent::Target::kRefereeAt:
          EXPECT_LT(ev.committee, spec.params.referee_size);
          break;
        case harness::ScenarioEvent::Target::kCommittee:
          EXPECT_LT(ev.committee, spec.params.m);
          break;
      }
    }
  }
}

TEST(FuzzGenerator, DeterministicPerStream) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    rng::Stream a(seed);
    rng::Stream b(seed);
    EXPECT_EQ(generate_spec(a).to_json_text(), generate_spec(b).to_json_text());
  }
}

TEST(FuzzGenerator, StreamsProduceDiverseSpecs) {
  std::set<std::string> encodings;
  bool saw_adversary = false;
  bool saw_events = false;
  bool saw_epochs = false;
  bool saw_honest = false;
  bool saw_partition = false;
  bool saw_restart = false;
  bool saw_lossy = false;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    rng::Stream rng(seed);
    const ScenarioSpec spec = generate_spec(rng);
    encodings.insert(spec.to_json_text());
    saw_adversary |= spec.adversary.corrupt_fraction > 0.0;
    saw_events |= !spec.events.empty();
    saw_epochs |= spec.epochs > 1;
    saw_honest |= spec.adversary.corrupt_fraction == 0.0;
    saw_lossy |= spec.params.faults.any();
    for (const auto& ev : spec.events) {
      saw_partition |= ev.kind == harness::ScenarioEvent::Kind::kPartition;
      saw_restart |= ev.kind == harness::ScenarioEvent::Kind::kRestart;
    }
  }
  EXPECT_GT(encodings.size(), 90u) << "sampling collapsed";
  EXPECT_TRUE(saw_adversary);
  EXPECT_TRUE(saw_events);
  EXPECT_TRUE(saw_epochs);
  EXPECT_TRUE(saw_honest);
  EXPECT_TRUE(saw_partition) << "fuzzer must sample the partition axis";
  EXPECT_TRUE(saw_restart) << "fuzzer must sample crash-restart pairs";
  EXPECT_TRUE(saw_lossy) << "fuzzer must sample probabilistic loss";
}

TEST(FuzzGenerator, FailureTailFilterIsLive) {
  // The filter the generator applies must reject what it claims to: a
  // narrow all-misvoting adversary on a small committee has a tail far
  // above the bound, while the honest baseline is exactly zero.
  EXPECT_GT(spec_failure_tail(23, 7, 7, 3, 6, 5), FuzzBounds{}.max_committee_failure);
  EXPECT_EQ(spec_failure_tail(23, 0, 0, 3, 6, 5), 0.0);
  // Liveness term dominates when only part of the mix misvotes.
  EXPECT_GE(spec_failure_tail(23, 2, 7, 3, 6, 5),
            spec_failure_tail(23, 2, 2, 3, 6, 5));
}

}  // namespace
}  // namespace cyc::fuzz
