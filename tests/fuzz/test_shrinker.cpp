// Shrinker correctness: shrunk specs still fail with the same invariant
// identifier, reductions are 1-minimal w.r.t. the operators, and —
// non-vacuity — a planted forged-handoff violation on a generated spec
// survives shrinking with its identifier intact.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "epoch/manager.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/shrinker.hpp"
#include "harness/runner.hpp"

namespace cyc::fuzz {
namespace {

using harness::ScenarioEvent;
using harness::ScenarioSpec;
using harness::Violation;

ScenarioSpec stressed_spec() {
  ScenarioSpec spec;
  spec.name = "shrink/stressed";
  spec.params.m = 3;
  spec.params.c = 9;
  spec.params.lambda = 3;
  spec.params.referee_size = 5;
  spec.params.cross_shard_fraction = 0.4;
  spec.params.invalid_fraction = 0.3;
  spec.params.capacity_min = 4;
  spec.params.capacity_max = 16;
  spec.adversary.corrupt_fraction = 0.2;
  spec.adversary.mix = {{protocol::Behavior::kInverseVoter, 1.0},
                        {protocol::Behavior::kLazyVoter, 1.0}};
  spec.options.extension_precommunication = true;
  spec.rounds = 4;
  spec.seeds = {5, 6};
  spec.events.push_back({1, ScenarioEvent::Target::kNode, 3, 0,
                         protocol::Behavior::kCrash});
  spec.events.push_back({2, ScenarioEvent::Target::kLeaderOf, 0, 1,
                         protocol::Behavior::kEquivocator});
  spec.events.push_back({3, ScenarioEvent::Target::kRefereeAt, 0, 2,
                         protocol::Behavior::kLazyVoter});
  spec.events.push_back({4, ScenarioEvent::Target::kNode, 7, 0,
                         protocol::Behavior::kFramer});
  return spec;
}

/// Synthetic oracle: red iff the spec still schedules an equivocator
/// event and runs at least 2 rounds. Everything else is noise the
/// shrinker must strip.
Oracle equivocator_oracle() {
  return [](const ScenarioSpec& spec) {
    std::vector<Violation> out;
    bool has_equivocator = false;
    for (const auto& ev : spec.events) {
      has_equivocator |= ev.behavior == protocol::Behavior::kEquivocator;
    }
    if (has_equivocator && spec.rounds >= 2) {
      out.push_back({"synthetic-equivocator", 1, "planted"});
    }
    return out;
  };
}

TEST(Shrinker, StripsEverythingNotLoadBearing) {
  const ShrinkResult result =
      shrink(stressed_spec(), "synthetic-equivocator", equivocator_oracle());
  // 1-minimal core: exactly the equivocator event, exactly 2 rounds.
  ASSERT_EQ(result.spec.events.size(), 1u);
  EXPECT_EQ(result.spec.events[0].behavior, protocol::Behavior::kEquivocator);
  EXPECT_EQ(result.spec.rounds, 2u);
  EXPECT_EQ(result.spec.seeds.size(), 1u);
  // Stress axes got normalized back to defaults.
  EXPECT_DOUBLE_EQ(result.spec.adversary.corrupt_fraction, 0.0);
  const protocol::Params defaults;
  EXPECT_DOUBLE_EQ(result.spec.params.invalid_fraction, 0.0);
  EXPECT_DOUBLE_EQ(result.spec.params.cross_shard_fraction,
                   defaults.cross_shard_fraction);
  EXPECT_EQ(result.spec.params.capacity_min, defaults.capacity_min);
  EXPECT_FALSE(result.spec.options.extension_precommunication);
  // The result still fails with the preserved identifier.
  EXPECT_EQ(result.invariant, "synthetic-equivocator");
  bool still_red = false;
  for (const auto& v : equivocator_oracle()(result.spec)) {
    still_red |= v.invariant == "synthetic-equivocator";
  }
  EXPECT_TRUE(still_red);
  EXPECT_FALSE(result.exhausted);
  EXPECT_GT(result.accepted, 0u);
}

TEST(Shrinker, ReducesToTwoEventCore) {
  // Red iff events target both node 3 AND node 7: ddmin must keep
  // exactly that pair (<= 2 events) and nothing else.
  const Oracle pair_oracle = [](const ScenarioSpec& spec) {
    std::vector<Violation> out;
    bool a = false;
    bool b = false;
    for (const auto& ev : spec.events) {
      if (ev.target != ScenarioEvent::Target::kNode) continue;
      a |= ev.node == 3;
      b |= ev.node == 7;
    }
    if (a && b) out.push_back({"synthetic-pair", 1, "planted"});
    return out;
  };
  const ShrinkResult result = shrink(stressed_spec(), "synthetic-pair",
                                     pair_oracle);
  ASSERT_EQ(result.spec.events.size(), 2u);
  EXPECT_EQ(result.spec.events[0].node, 3u);
  EXPECT_EQ(result.spec.events[1].node, 7u);
  EXPECT_EQ(result.spec.rounds, 1u);
  EXPECT_FALSE(pair_oracle(result.spec).empty());
}

TEST(Shrinker, RejectsGreenSpec) {
  const Oracle green = [](const ScenarioSpec&) {
    return std::vector<Violation>{};
  };
  EXPECT_THROW(shrink(stressed_spec(), "anything", green),
               std::invalid_argument);
  // A spec red on a different identifier is green for this target.
  EXPECT_THROW(
      shrink(stressed_spec(), "synthetic-pair", equivocator_oracle()),
      std::invalid_argument);
}

TEST(Shrinker, BudgetExhaustionReturnsBestSoFar) {
  ShrinkOptions options;
  options.max_attempts = 3;
  const ShrinkResult result = shrink(stressed_spec(), "synthetic-equivocator",
                                     equivocator_oracle(), options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_LE(result.attempts, 4u);  // precondition probe + budget
  // Whatever was reached must still be red.
  EXPECT_FALSE(equivocator_oracle()(result.spec).empty());
}

/// Non-vacuity against the real invariant suite: run the spec's epoch
/// lifecycle, forge its first handoff (stale chain head — the §IV-F
/// continuity break), and surface the checker's verdicts. The planted
/// violation only exists while the spec still crosses an epoch
/// boundary, so the shrinker must keep epochs >= 2 while stripping
/// everything else.
Oracle forged_handoff_oracle() {
  return [](const ScenarioSpec& spec) {
    std::vector<Violation> out;
    for (std::uint64_t seed : spec.seeds) {
      const auto outcome = harness::run_scenario(spec, seed);
      out.insert(out.end(), outcome.violations.begin(),
                 outcome.violations.end());
    }
    if (spec.epochs < 2) return out;
    protocol::Params params = spec.params;
    params.seed = spec.seeds.front();
    epoch::EpochConfig config;
    config.epochs = spec.epochs;
    config.rounds_per_epoch = spec.rounds;
    config.churn_rate = spec.churn_rate;
    epoch::EpochManager manager(params, spec.adversary, config, spec.options);
    while (manager.handoffs().empty() && !manager.finished()) {
      manager.run_round();
    }
    if (manager.handoffs().empty()) return out;
    epoch::EpochHandoff forged = manager.handoffs().front();
    forged.chain_height += 1;
    forged.chain_tip = crypto::sha256(bytes_of("phantom-block"));
    harness::InvariantChecker::check_handoff_state(forged, manager.engine(),
                                                   out);
    return out;
  };
}

TEST(Shrinker, PlantedForgedHandoffSurvivesShrinking) {
  // A generated multi-epoch spec with an event schedule (fixed probe
  // seed; the generator stays the source so the test covers its domain).
  ScenarioSpec spec;
  for (std::uint64_t probe = 1;; ++probe) {
    ASSERT_LT(probe, 500u) << "no multi-epoch spec with events generated";
    rng::Stream rng(probe);
    spec = generate_spec(rng);
    if (spec.epochs >= 2 && !spec.events.empty()) break;
  }
  spec.name = "shrink/forged-handoff";

  const Oracle oracle = forged_handoff_oracle();
  const ShrinkResult result =
      shrink(spec, "epoch-handoff-continuity", oracle);

  // Acceptance shape: <= 2 events (none are load-bearing here), still
  // crossing a boundary, and the same invariant identifier still red.
  EXPECT_LE(result.spec.events.size(), 2u);
  EXPECT_GE(result.spec.epochs, 2u);
  EXPECT_EQ(result.spec.seeds.size(), 1u);
  EXPECT_EQ(result.invariant, "epoch-handoff-continuity");
  bool still_red = false;
  for (const auto& v : oracle(result.spec)) {
    still_red |= v.invariant == "epoch-handoff-continuity";
  }
  EXPECT_TRUE(still_red);
}

}  // namespace
}  // namespace cyc::fuzz
