// Fixed-seed fuzz smoke: tier-1 exercises the generator -> harness ->
// shrinker path on a bounded budget. The campaign artifact must be a
// pure function of (seed, budget) — byte-identical across runs and
// thread counts — and the default-seed smoke budget must be ALL GREEN.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fuzz/campaign.hpp"

namespace cyc::fuzz {
namespace {

CampaignOptions smoke_options(unsigned threads = 0) {
  CampaignOptions options;
  options.seed = 1;
  options.budget = 25;
  options.threads = threads;
  return options;
}

TEST(FuzzSmoke, DefaultSeedBudgetAllGreen) {
  const CampaignResult result = run_campaign(smoke_options());
  EXPECT_EQ(result.specs_run, 25u);
  EXPECT_GE(result.points_run, result.specs_run);
  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "spec " << failure.index << " red on "
                  << failure.shrunk.invariant << ": "
                  << failure.violations.front().detail << "\nshrunk repro: "
                  << failure.shrunk.spec.to_json_text();
  }
  EXPECT_TRUE(result.all_green());
}

TEST(FuzzSmoke, ArtifactByteIdenticalAcrossRunsAndThreads) {
  const CampaignOptions options = smoke_options();
  const std::string a = campaign_json(options, run_campaign(options));
  const std::string b = campaign_json(options, run_campaign(options));
  const std::string c =
      campaign_json(options, run_campaign(smoke_options(/*threads=*/1)));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_NE(a.find("\"harness\":\"scenario_fuzz\""), std::string::npos);
  EXPECT_NE(a.find("\"all_green\":true"), std::string::npos);
}

TEST(FuzzSmoke, FailureCorpusRoundTripsThroughSpecFiles) {
  // Fabricate a failure (the campaign itself is green) to exercise the
  // corpus writer + replay parse path end to end.
  CampaignResult result;
  result.specs_run = 1;
  FuzzFailure failure;
  failure.index = 0;
  rng::Stream rng(11);
  failure.original = generate_spec(rng);
  failure.original.name = "fuzz/s11-0";
  failure.violations.push_back({"synthetic", 1, "planted"});
  failure.shrunk.spec = failure.original;
  failure.shrunk.spec.name = "fuzz/s11-0/synthetic";
  failure.shrunk.invariant = "synthetic";
  result.failures.push_back(failure);

  const auto dir = std::filesystem::temp_directory_path() / "cyc_fuzz_corpus";
  std::filesystem::remove_all(dir);
  const auto paths = write_failure_corpus(result, dir.string());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NE(paths[0].find("s11-0-synthetic.json"), std::string::npos);

  std::ifstream in(paths[0], std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto replayed = harness::ScenarioSpec::from_json_text(text);
  EXPECT_EQ(replayed.name, "fuzz/s11-0/synthetic");
  EXPECT_EQ(replayed.to_json_text(), failure.shrunk.spec.to_json_text());
  std::filesystem::remove_all(dir);

  // A green result writes nothing (and creates no directory).
  const CampaignResult green;
  EXPECT_TRUE(write_failure_corpus(green, (dir / "sub").string()).empty());
  EXPECT_FALSE(std::filesystem::exists(dir / "sub"));
}

}  // namespace
}  // namespace cyc::fuzz
