// Determinism regression: same seed => byte-identical RoundReports.
//
// Guards the zero-copy fabric, the verification cache and the batched /
// deferred vote verification: none of them may perturb protocol
// outcomes, message accounting or timing. The fixture serializes every
// observable field of three rounds and compares the streams.
#include <gtest/gtest.h>

#include <vector>

#include "protocol/engine.hpp"
#include "support/parallel.hpp"
#include "support/serde.hpp"

namespace cyc::protocol {
namespace {

Params fixture_params() {
  Params params;
  params.m = 3;
  params.c = 8;
  params.lambda = 2;
  params.referee_size = 5;
  params.txs_per_committee = 10;
  params.cross_shard_fraction = 0.3;
  params.invalid_fraction = 0.1;
  params.seed = 2026;
  return params;
}

void serialize_counter(Writer& w, const net::Counter& c) {
  w.u64(c.msgs_sent);
  w.u64(c.bytes_sent);
  w.u64(c.msgs_recv);
  w.u64(c.bytes_recv);
}

Bytes serialize_report(const RoundReport& r) {
  Writer w;
  w.u64(r.round);
  w.u64(r.txs_committed);
  w.u64(r.intra_committed);
  w.u64(r.cross_committed);
  w.u64(r.txs_offered);
  w.u64(r.invalid_rejected);
  w.u64(r.invalid_committed);
  w.boolean(r.block_void);
  w.u64(r.recoveries);
  for (const auto& ev : r.recovery_events) {
    w.u64(ev.round);
    w.u32(ev.committee);
    w.u32(ev.old_leader);
    w.u32(ev.new_leader);
    w.str(ev.witness_kind);
  }
  for (const auto& c : r.committees) {
    w.u32(c.committee);
    w.u64(c.txs_listed);
    w.u64(c.txs_committed);
    w.u64(c.cross_committed);
    w.boolean(c.produced_output);
    w.u64(c.recoveries);
  }
  w.f64(r.round_latency);
  w.f64(r.total_fees);
  serialize_counter(w, r.traffic_total);
  for (const auto& [role, counter] : r.traffic_by_role) {
    w.u8(static_cast<std::uint8_t>(role));
    serialize_counter(w, counter);
  }
  for (const auto& [role, phases] : r.traffic_by_role_phase) {
    w.u8(static_cast<std::uint8_t>(role));
    for (const auto& counter : phases) serialize_counter(w, counter);
  }
  for (const auto& [role, count] : r.role_counts) {
    w.u8(static_cast<std::uint8_t>(role));
    w.u64(count);
  }
  for (const auto& [role, storage] : r.storage_by_role) {
    w.u8(static_cast<std::uint8_t>(role));
    w.f64(storage);
  }
  return w.take();
}

std::vector<Bytes> run_fixture() {
  Engine engine(fixture_params(), AdversaryConfig{});
  std::vector<Bytes> streams;
  for (int round = 0; round < 3; ++round) {
    streams.push_back(serialize_report(engine.run_round()));
  }
  return streams;
}

// Adversarial fixture: crash + equivocating leaders with recovery
// enabled, so the determinism gate also covers the accusation ->
// impeachment -> prosecution -> re-selection path (Alg. 6) and the
// convicted-leader reputation punishment.
AdversaryConfig adversarial_config() {
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.25;
  adv.forced_corrupt_leader_fraction = 0.67;
  adv.mix = {{Behavior::kCrash, 1.0}, {Behavior::kEquivocator, 1.0}};
  return adv;
}

std::vector<Bytes> run_adversarial_fixture(std::size_t* recoveries = nullptr) {
  Engine engine(fixture_params(), adversarial_config());
  std::vector<Bytes> streams;
  for (int round = 0; round < 3; ++round) {
    const RoundReport report = engine.run_round();
    if (recoveries) *recoveries += report.recoveries;
    streams.push_back(serialize_report(report));
  }
  return streams;
}

TEST(Determinism, SameSeedSameReports) {
  const auto a = run_fixture();
  const auto b = run_fixture();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "round " << (i + 1) << " diverged";
  }
}

TEST(Determinism, UnaffectedByWorkerThread) {
  // The sweep runner executes each engine on an arbitrary pool thread;
  // thread-local caches must not leak into protocol outcomes.
  const auto reference = run_fixture();
  const auto sweeps = support::parallel_sweep(
      4, [&](std::size_t) { return run_fixture(); }, 4);
  for (const auto& streams : sweeps) {
    ASSERT_EQ(streams.size(), reference.size());
    for (std::size_t i = 0; i < streams.size(); ++i) {
      EXPECT_EQ(streams[i], reference[i]) << "round " << (i + 1);
    }
  }
}

TEST(Determinism, AdversarialRecoveryRunsAreReproducible) {
  std::size_t recoveries_a = 0, recoveries_b = 0;
  const auto a = run_adversarial_fixture(&recoveries_a);
  const auto b = run_adversarial_fixture(&recoveries_b);
  // The fixture must actually exercise the impeachment path, or this
  // gate is no stronger than the honest one.
  EXPECT_GE(recoveries_a, 1u);
  EXPECT_EQ(recoveries_a, recoveries_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "adversarial round " << (i + 1) << " diverged";
  }
}

TEST(Determinism, AdversarialFixtureUnaffectedByWorkerThread) {
  const auto reference = run_adversarial_fixture();
  const auto sweeps = support::parallel_sweep(
      4, [&](std::size_t) { return run_adversarial_fixture(); }, 4);
  for (const auto& streams : sweeps) {
    ASSERT_EQ(streams.size(), reference.size());
    for (std::size_t i = 0; i < streams.size(); ++i) {
      EXPECT_EQ(streams[i], reference[i]) << "adversarial round " << (i + 1);
    }
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity: the serialization is sensitive enough to notice a change.
  Params params = fixture_params();
  params.seed = 2027;
  Engine other(params, AdversaryConfig{});
  Engine reference(fixture_params(), AdversaryConfig{});
  EXPECT_NE(serialize_report(other.run_round()),
            serialize_report(reference.run_round()));
}

}  // namespace
}  // namespace cyc::protocol
