// Focused tests of the leader re-selection procedure (Alg. 6, §V-D).
#include <gtest/gtest.h>

#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

Params params_with(std::uint64_t seed) {
  Params p;
  p.m = 2;
  p.c = 9;
  p.lambda = 3;
  p.referee_size = 5;
  p.txs_per_committee = 8;
  p.cross_shard_fraction = 0.3;
  p.invalid_fraction = 0.0;
  p.seed = seed;
  return p;
}

AdversaryConfig one_bad_leader(Behavior behavior) {
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.5;  // leader of committee 0
  adv.mix = {{behavior, 1.0}};
  return adv;
}

RoundReport run_with_bad_leader(Behavior behavior, std::uint64_t seed,
                                Engine** out = nullptr) {
  static Engine* engine = nullptr;
  delete engine;
  engine = new Engine(params_with(seed), one_bad_leader(behavior));
  // forced_corrupt_leader_fraction assigns cyclic behaviours; override
  // committee 0's leader with the behaviour under test.
  const auto leader0 = engine->assignment().committees[0].leader;
  (void)leader0;
  if (out) *out = engine;
  return engine->run_round();
}

TEST(Recovery, CrashLeaderEvicted) {
  AdversaryConfig adv = one_bad_leader(Behavior::kCrash);
  Engine engine(params_with(1), adv);
  // The forced behaviour cycles equivocator/forger/crash/concealer; pin
  // crash explicitly:
  const auto leader0 = engine.assignment().committees[0].leader;
  engine.corrupt(leader0, Behavior::kCrash);
  // corrupt() delays one round; run two rounds and check the round where
  // the node leads.
  const RoundReport r1 = engine.run_round();
  EXPECT_GT(r1.txs_committed, 0u);
}

TEST(Recovery, EquivocatorEvictedViaWitness) {
  Params p = params_with(2);
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.5;
  Engine engine(p, adv);
  // forced corruption assigns kEquivocator to committee 0's leader.
  const auto leader0 = engine.assignment().committees[0].leader;
  ASSERT_EQ(engine.behavior_of(leader0), Behavior::kEquivocator);
  const RoundReport report = engine.run_round();
  ASSERT_GE(report.recoveries, 1u);
  EXPECT_EQ(report.recovery_events[0].old_leader, leader0);
  // The committee still produced output through the new leader.
  EXPECT_TRUE(report.committees[0].produced_output);
}

TEST(Recovery, AtMostOneConvictionPerCommitteePerIncident) {
  Params p = params_with(3);
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 1.0;  // both leaders corrupt
  Engine engine(p, adv);
  const RoundReport report = engine.run_round();
  // Each committee recovered at least once but the recovery count stays
  // bounded by the configured maximum.
  for (const auto& c : report.committees) {
    EXPECT_LE(c.recoveries, 4u);
  }
}

TEST(Recovery, ReplacementIsPartialSetMember) {
  Params p = params_with(4);
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.5;
  Engine engine(p, adv);
  std::vector<std::vector<net::NodeId>> partials;
  for (const auto& c : engine.assignment().committees) {
    partials.push_back(c.partial);
  }
  const RoundReport report = engine.run_round();
  ASSERT_GE(report.recovery_events.size(), 1u);
  for (const auto& event : report.recovery_events) {
    const auto& partial = partials[event.committee];
    EXPECT_NE(std::find(partial.begin(), partial.end(), event.new_leader),
              partial.end())
        << "replacement not from the partial set";
  }
}

TEST(Recovery, DisabledRecoveryMeansNoEvictions) {
  Params p = params_with(5);
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 1.0;
  EngineOptions opts;
  opts.recovery_enabled = false;
  Engine engine(p, adv, opts);
  const RoundReport report = engine.run_round();
  EXPECT_EQ(report.recoveries, 0u);
  // At least one committee lost its output (RapidChain-like behaviour).
  std::size_t produced = 0;
  for (const auto& c : report.committees) {
    if (c.produced_output) ++produced;
  }
  EXPECT_LT(produced, report.committees.size());
}

TEST(Recovery, SystemRecoversInLaterRounds) {
  // After the round with corrupted leaders, reputation-ranked selection
  // picks honest leaders and the system returns to clean rounds.
  Params p = params_with(6);
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.5;
  Engine engine(p, adv);
  const RoundReport r1 = engine.run_round();
  EXPECT_GE(r1.recoveries, 1u);
  const RoundReport r2 = engine.run_round();
  EXPECT_GT(r2.txs_committed, 0u);
  // The convicted leader (cube-rooted, no bonus) cannot out-rank honest
  // leaders, so round 2 needs no recovery.
  EXPECT_EQ(r2.recoveries, 0u);
}

TEST(Recovery, EvictedLeaderLosesLeaderRole) {
  Params p = params_with(7);
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.5;
  Engine engine(p, adv);
  const auto old_leader = engine.assignment().committees[0].leader;
  const RoundReport report = engine.run_round();
  ASSERT_GE(report.recoveries, 1u);
  // Next round's leaders exclude the convicted node (its punished
  // reputation ranks below honest nodes with earned scores).
  for (const auto& committee : engine.assignment().committees) {
    EXPECT_NE(committee.leader, old_leader);
  }
}

TEST(Recovery, RecoveryLatencyBounded) {
  // A round with recoveries must not run past the scheduled horizon —
  // the recovery happens inside the round (high-efficiency claim).
  Params p = params_with(8);
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 1.0;
  Engine with_adv(p, adv);
  Engine honest(p, AdversaryConfig{});
  const double adv_latency = with_adv.run_round().round_latency;
  const double honest_latency = honest.run_round().round_latency;
  EXPECT_LT(adv_latency, honest_latency * 1.5);
}

}  // namespace
}  // namespace cyc::protocol
