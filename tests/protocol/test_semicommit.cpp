#include "protocol/semicommit.hpp"

#include <gtest/gtest.h>

namespace cyc::protocol {
namespace {

std::vector<crypto::PublicKey> members(std::size_t count,
                                       std::uint64_t base = 100) {
  std::vector<crypto::PublicKey> pks;
  for (std::size_t i = 0; i < count; ++i) {
    pks.push_back(crypto::KeyPair::from_seed(base + i).pk);
  }
  return pks;
}

TEST(SemiCommit, CommitAndVerify) {
  const auto list = members(10);
  const auto commitment = semi_commitment(list);
  EXPECT_TRUE(verify_semi_commitment(commitment, list));
}

TEST(SemiCommit, OrderIndependent) {
  auto list = members(10);
  const auto commitment = semi_commitment(list);
  std::reverse(list.begin(), list.end());
  EXPECT_EQ(semi_commitment(list), commitment);
  EXPECT_TRUE(verify_semi_commitment(commitment, list));
}

TEST(SemiCommit, BindingOnMembership) {
  // Lemma 1: a different list cannot match the commitment.
  const auto list = members(10);
  const auto commitment = semi_commitment(list);

  auto dropped = list;
  dropped.pop_back();
  EXPECT_FALSE(verify_semi_commitment(commitment, dropped));

  auto added = list;
  added.push_back(crypto::KeyPair::from_seed(999).pk);
  EXPECT_FALSE(verify_semi_commitment(commitment, added));

  auto swapped = list;
  swapped[0] = crypto::KeyPair::from_seed(998).pk;
  EXPECT_FALSE(verify_semi_commitment(commitment, swapped));
}

TEST(SemiCommit, EmptyListDefined) {
  const auto commitment = semi_commitment({});
  EXPECT_TRUE(verify_semi_commitment(commitment, {}));
  EXPECT_FALSE(verify_semi_commitment(commitment, members(1)));
}

TEST(SemiCommit, PayloadRoundTrips) {
  const auto list = members(6);
  const Bytes lp = member_list_payload(3, 2, list);
  auto parsed = parse_member_list_payload(lp);
  std::sort(parsed.begin(), parsed.end());
  auto sorted = list;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(parsed, sorted);

  const auto commitment = semi_commitment(list);
  const Bytes cp = commitment_payload(3, 2, commitment);
  EXPECT_EQ(parse_commitment_payload(cp), commitment);
}

TEST(SemiCommit, PayloadBadTagThrows) {
  EXPECT_THROW(parse_member_list_payload(bytes_of("junk")), std::exception);
  EXPECT_THROW(parse_commitment_payload(bytes_of("junk")), std::exception);
}

TEST(MismatchWitness, DetectsForgedCommitment) {
  // Theorem 2 scenario: leader commits to S' but distributes S.
  const auto leader = crypto::KeyPair::from_seed(1);
  const auto list = members(8);
  auto forged = list;
  forged.pop_back();

  CommitmentMismatchWitness w;
  w.list_msg = crypto::make_signed(leader, member_list_payload(1, 0, list));
  w.commitment_msg = crypto::make_signed(
      leader, commitment_payload(1, 0, semi_commitment(forged)));
  EXPECT_TRUE(w.valid(leader.pk));
}

TEST(MismatchWitness, HonestPairIsNotAWitness) {
  const auto leader = crypto::KeyPair::from_seed(2);
  const auto list = members(8);
  CommitmentMismatchWitness w;
  w.list_msg = crypto::make_signed(leader, member_list_payload(1, 0, list));
  w.commitment_msg = crypto::make_signed(
      leader, commitment_payload(1, 0, semi_commitment(list)));
  EXPECT_FALSE(w.valid(leader.pk));
}

TEST(MismatchWitness, FramingFails) {
  // Claim 4: messages signed by anyone but the leader are no witness.
  const auto leader = crypto::KeyPair::from_seed(3);
  const auto framer = crypto::KeyPair::from_seed(4);
  const auto list = members(8);
  auto forged = list;
  forged.pop_back();

  CommitmentMismatchWitness w;
  w.list_msg = crypto::make_signed(framer, member_list_payload(1, 0, list));
  w.commitment_msg = crypto::make_signed(
      framer, commitment_payload(1, 0, semi_commitment(forged)));
  EXPECT_FALSE(w.valid(leader.pk));
}

TEST(MismatchWitness, TamperedSignatureInvalid) {
  const auto leader = crypto::KeyPair::from_seed(5);
  const auto list = members(8);
  auto forged = list;
  forged.pop_back();
  CommitmentMismatchWitness w;
  w.list_msg = crypto::make_signed(leader, member_list_payload(1, 0, list));
  w.commitment_msg = crypto::make_signed(
      leader, commitment_payload(1, 0, semi_commitment(forged)));
  w.list_msg.payload.push_back(0);  // break the signature
  EXPECT_FALSE(w.valid(leader.pk));
}

TEST(MismatchWitness, GarbagePayloadsInvalid) {
  const auto leader = crypto::KeyPair::from_seed(6);
  CommitmentMismatchWitness w;
  w.list_msg = crypto::make_signed(leader, bytes_of("garbage"));
  w.commitment_msg = crypto::make_signed(leader, bytes_of("garbage2"));
  EXPECT_FALSE(w.valid(leader.pk));
}

TEST(MismatchWitness, SerializationRoundTrip) {
  const auto leader = crypto::KeyPair::from_seed(7);
  const auto list = members(4);
  auto forged = list;
  forged.pop_back();
  CommitmentMismatchWitness w;
  w.list_msg = crypto::make_signed(leader, member_list_payload(1, 0, list));
  w.commitment_msg = crypto::make_signed(
      leader, commitment_payload(1, 0, semi_commitment(forged)));
  const auto back = CommitmentMismatchWitness::deserialize(w.serialize());
  EXPECT_TRUE(back.valid(leader.pk));
}

}  // namespace
}  // namespace cyc::protocol
