// Parallel/sequential equivalence gate for intra-engine shard
// parallelism: the two-stage (parallel compute, sequential emit) phase
// execution must be byte-identical to the sequential reference path —
// RoundReports, trace files and SCENARIOS.json fragments alike — for
// every engine-thread count. The non-vacuity twin perturbs the emit
// merge order through support::stage_order_perturbed() and asserts the
// comparison actually goes red, proving the gate can catch a
// scheduling-dependent merge.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hpp"
#include "obs/observer.hpp"
#include "protocol/engine.hpp"
#include "support/parallel.hpp"
#include "support/serde.hpp"

namespace cyc::protocol {
namespace {

Params fixture_params() {
  Params params;
  params.m = 4;  // multi-committee: every phase fans out over shards
  params.c = 8;
  params.lambda = 2;
  params.referee_size = 5;
  params.txs_per_committee = 10;
  params.cross_shard_fraction = 0.3;
  params.invalid_fraction = 0.1;
  params.seed = 77;
  return params;
}

void serialize_counter(Writer& w, const net::Counter& c) {
  w.u64(c.msgs_sent);
  w.u64(c.bytes_sent);
  w.u64(c.msgs_recv);
  w.u64(c.bytes_recv);
}

Bytes serialize_report(const RoundReport& r) {
  Writer w;
  w.u64(r.round);
  w.u64(r.txs_committed);
  w.u64(r.intra_committed);
  w.u64(r.cross_committed);
  w.u64(r.txs_offered);
  w.u64(r.invalid_rejected);
  w.u64(r.invalid_committed);
  w.boolean(r.block_void);
  w.u64(r.recoveries);
  for (const auto& ev : r.recovery_events) {
    w.u64(ev.round);
    w.u32(ev.committee);
    w.u32(ev.old_leader);
    w.u32(ev.new_leader);
    w.str(ev.witness_kind);
  }
  for (const auto& c : r.committees) {
    w.u32(c.committee);
    w.u64(c.txs_listed);
    w.u64(c.txs_committed);
    w.u64(c.cross_committed);
    w.boolean(c.produced_output);
    w.u64(c.recoveries);
  }
  w.f64(r.round_latency);
  w.f64(r.total_fees);
  serialize_counter(w, r.traffic_total);
  for (const auto& [role, counter] : r.traffic_by_role) {
    w.u8(static_cast<std::uint8_t>(role));
    serialize_counter(w, counter);
  }
  for (const auto& [role, phases] : r.traffic_by_role_phase) {
    w.u8(static_cast<std::uint8_t>(role));
    for (const auto& counter : phases) serialize_counter(w, counter);
  }
  for (const auto& [role, count] : r.role_counts) {
    w.u8(static_cast<std::uint8_t>(role));
    w.u64(count);
  }
  for (const auto& [role, storage] : r.storage_by_role) {
    w.u8(static_cast<std::uint8_t>(role));
    w.f64(storage);
  }
  return w.take();
}

std::vector<Bytes> run_reports(unsigned engine_threads) {
  EngineOptions options;
  options.engine_threads = engine_threads;
  Engine engine(fixture_params(), AdversaryConfig{}, options);
  std::vector<Bytes> streams;
  for (int round = 0; round < 3; ++round) {
    streams.push_back(serialize_report(engine.run_round()));
  }
  return streams;
}

TEST(ParallelEquivalence, RoundReportsByteIdenticalAcrossThreadCounts) {
  const auto sequential = run_reports(1);
  for (unsigned threads : {2u, 4u, 8u}) {
    const auto parallel = run_reports(threads);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(sequential[i], parallel[i])
          << "round " << (i + 1) << " diverged at engine_threads=" << threads;
    }
  }
}

harness::ScenarioSpec fixture_spec() {
  harness::ScenarioSpec spec;
  spec.name = "parallel-equivalence";
  spec.params = fixture_params();
  spec.rounds = 3;
  spec.seeds = {7};
  return spec;
}

// (trace JSON, matrix artifact) of one run at the given thread count.
std::pair<std::string, std::string> harness_artifacts(unsigned engine_threads) {
  harness::ScenarioSpec spec = fixture_spec();
  spec.options.engine_threads = engine_threads;
  obs::Observer observer;
  harness::run_scenario(spec, spec.seeds.front(), &observer);
  const std::vector<harness::ScenarioSpec> scenarios = {spec};
  const harness::MatrixResult result = harness::run_matrix(scenarios, 1);
  return {observer.export_json(), harness::matrix_json(scenarios, result)};
}

TEST(ParallelEquivalence, TraceAndMatrixFragmentByteIdentical) {
  const auto sequential = harness_artifacts(1);
  const auto parallel = harness_artifacts(4);
  EXPECT_EQ(sequential.first, parallel.first) << "trace JSON diverged";
  EXPECT_EQ(sequential.second, parallel.second) << "matrix artifact diverged";
}

TEST(ParallelEquivalence, MergeOrderPerturbationGoesRed) {
  // Non-vacuity twin: if the emit/merge order were scheduling-dependent,
  // the byte-compares above must be able to catch it. Reversing the
  // canonical stage order stands in for such a bug — the reports and
  // artifacts must diverge, or the equivalence gate is vacuous.
  const auto reference = run_reports(4);
  const auto reference_artifacts = harness_artifacts(4);
  support::stage_order_perturbed().store(true);
  const auto perturbed = run_reports(4);
  const auto perturbed_artifacts = harness_artifacts(4);
  support::stage_order_perturbed().store(false);
  EXPECT_NE(reference, perturbed)
      << "reversed emit order left RoundReports unchanged - gate is vacuous";
  EXPECT_NE(reference_artifacts.first, perturbed_artifacts.first)
      << "reversed emit order left the trace unchanged - gate is vacuous";
}

}  // namespace
}  // namespace cyc::protocol
