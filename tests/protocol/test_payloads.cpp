#include "protocol/payloads.hpp"

#include <gtest/gtest.h>

namespace cyc::protocol::wire {
namespace {

TEST(Payloads, IntroRoundTrip) {
  const auto keys = crypto::KeyPair::from_seed(1);
  Intro intro;
  intro.node = 17;
  intro.pk = keys.pk;
  intro.ticket = crypto_sort(keys, 1, crypto::sha256(bytes_of("r")), 4);
  const auto back = Intro::deserialize(intro.serialize());
  EXPECT_EQ(back.node, 17u);
  EXPECT_EQ(back.pk, keys.pk);
  EXPECT_EQ(back.ticket.committee, intro.ticket.committee);
  EXPECT_EQ(back.ticket.proof, intro.ticket.proof);
}

TEST(Payloads, MemberListRoundTrip) {
  MemberListMsg m;
  m.nodes = {1, 2, 3};
  m.pks = {crypto::KeyPair::from_seed(1).pk, crypto::KeyPair::from_seed(2).pk,
           crypto::KeyPair::from_seed(3).pk};
  const auto back = MemberListMsg::deserialize(m.serialize());
  EXPECT_EQ(back.nodes, m.nodes);
  EXPECT_EQ(back.pks, m.pks);
}

TEST(Payloads, ConsensusEnvelopeRoundTrip) {
  ConsensusEnvelope env{3, 12345, bytes_of("inner wire")};
  const auto back = ConsensusEnvelope::deserialize(env.serialize());
  EXPECT_EQ(back.scope, 3u);
  EXPECT_EQ(back.sn, 12345u);
  EXPECT_EQ(back.wire, env.wire);
}

TEST(Payloads, VoteVecRoundTrip) {
  const VoteVector votes = {Vote::kYes, Vote::kNo, Vote::kUnknown,
                            Vote::kYes};
  EXPECT_EQ(decode_vote_vec(encode_vote_vec(votes)), votes);
  EXPECT_TRUE(decode_vote_vec(encode_vote_vec({})).empty());
}

ledger::Transaction sample_tx(std::uint64_t seed) {
  const auto a = crypto::KeyPair::from_seed(seed);
  const auto b = crypto::KeyPair::from_seed(seed + 1);
  ledger::Transaction tx;
  tx.spender = a.pk;
  tx.inputs.push_back(
      ledger::OutPoint{crypto::sha256(be64(seed)), 0});
  tx.outputs.push_back(ledger::TxOut{b.pk, 42});
  ledger::sign_tx(tx, a.sk);
  return tx;
}

TEST(Payloads, TxVecRoundTrip) {
  std::vector<ledger::Transaction> txs = {sample_tx(10), sample_tx(20)};
  const auto back = decode_tx_vec(encode_tx_vec(txs));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], txs[0]);
  EXPECT_EQ(back[1], txs[1]);
}

TEST(Payloads, IntraDecisionRoundTrip) {
  IntraDecision d;
  d.committee = 2;
  d.attempt = 1;
  d.txdec_set = {sample_tx(30)};
  d.vlist_digest = crypto::sha256(bytes_of("votes"));
  const auto back = IntraDecision::deserialize(d.serialize());
  EXPECT_EQ(back.committee, 2u);
  EXPECT_EQ(back.attempt, 1u);
  ASSERT_EQ(back.txdec_set.size(), 1u);
  EXPECT_EQ(back.txdec_set[0], d.txdec_set[0]);
  EXPECT_EQ(back.vlist_digest, d.vlist_digest);
}

TEST(Payloads, IntraDecisionBadTagThrows) {
  EXPECT_THROW(IntraDecision::deserialize(bytes_of("bogus")), std::exception);
}

TEST(Payloads, CrossTxListRoundTripAndAgreedPayload) {
  CrossTxListMsg m;
  m.origin = 0;
  m.dest = 2;
  m.attempt = 1;
  m.txs = {sample_tx(40)};
  m.origin_cert = bytes_of("cert");
  m.origin_members = {crypto::KeyPair::from_seed(50).pk};
  const auto back = CrossTxListMsg::deserialize(m.serialize());
  EXPECT_EQ(back.origin, m.origin);
  EXPECT_EQ(back.dest, m.dest);
  EXPECT_EQ(back.txs, m.txs);
  EXPECT_EQ(back.origin_cert, m.origin_cert);
  EXPECT_EQ(back.origin_members, m.origin_members);
  // The agreed payload is independent of the attached cert/members —
  // that is exactly what the origin committee signed.
  CrossTxListMsg stripped = m;
  stripped.origin_cert.clear();
  stripped.origin_members.clear();
  EXPECT_EQ(stripped.agreed_payload(), m.agreed_payload());
}

TEST(Payloads, CrossResultAcceptanceBinding) {
  CrossResultMsg r;
  r.request.origin = 1;
  r.request.dest = 3;
  r.request.txs = {sample_tx(60)};
  const Bytes acc1 = r.acceptance_payload();
  r.request.txs.push_back(sample_tx(70));
  const Bytes acc2 = r.acceptance_payload();
  EXPECT_NE(acc1, acc2);  // acceptance binds the exact request content
}

TEST(Payloads, ScoreListRoundTrip) {
  ScoreListMsg m;
  m.committee = 1;
  m.nodes = {4, 5, 6};
  m.scores = {1.0, -0.5, 0.0};
  const auto back = ScoreListMsg::deserialize(m.serialize());
  EXPECT_EQ(back.committee, 1u);
  EXPECT_EQ(back.nodes, m.nodes);
  EXPECT_EQ(back.scores, m.scores);
}

TEST(Payloads, NewLeaderRoundTrip) {
  NewLeaderMsg m;
  m.committee = 3;
  m.evicted = crypto::KeyPair::from_seed(80).pk;
  m.new_leader = crypto::KeyPair::from_seed(81).pk;
  const auto back = NewLeaderMsg::deserialize(m.serialize());
  EXPECT_EQ(back.committee, 3u);
  EXPECT_EQ(back.evicted, m.evicted);
  EXPECT_EQ(back.new_leader, m.new_leader);
}

TEST(Payloads, BlockRoundTrip) {
  BlockMsg m;
  m.round = 9;
  m.txs = {sample_tx(90)};
  m.randomness = crypto::sha256(bytes_of("rand"));
  m.body_root = crypto::sha256(bytes_of("root"));
  const auto back = BlockMsg::deserialize(m.serialize());
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.txs, m.txs);
  EXPECT_EQ(back.randomness, m.randomness);
  EXPECT_EQ(back.body_root, m.body_root);
}

TEST(Payloads, PowRoundTrip) {
  PowMsg m;
  m.node = 5;
  m.pk = crypto::KeyPair::from_seed(100).pk;
  m.nonce = 777;
  m.digest = crypto::sha256(bytes_of("pow"));
  const auto back = PowMsg::deserialize(m.serialize());
  EXPECT_EQ(back.node, 5u);
  EXPECT_EQ(back.pk, m.pk);
  EXPECT_EQ(back.nonce, 777u);
  EXPECT_EQ(back.digest, m.digest);
}

TEST(Payloads, CertifiedResultRoundTrip) {
  CertifiedResult r{bytes_of("payload"), bytes_of("cert")};
  const auto back = CertifiedResult::deserialize(r.serialize());
  EXPECT_EQ(back.payload, r.payload);
  EXPECT_EQ(back.cert, r.cert);
}

TEST(Payloads, SemiCommitRoundTrip) {
  const auto leader = crypto::KeyPair::from_seed(110);
  SemiCommitMsg m;
  m.committee = 2;
  m.commitment_msg = crypto::make_signed(leader, bytes_of("commit"));
  m.list_msg = crypto::make_signed(leader, bytes_of("list"));
  const auto back = SemiCommitMsg::deserialize(m.serialize());
  EXPECT_EQ(back.committee, 2u);
  EXPECT_EQ(back.commitment_msg, m.commitment_msg);
  EXPECT_EQ(back.list_msg, m.list_msg);
}

TEST(Payloads, SemiCommitAckRoundTrip) {
  SemiCommitAck a;
  a.committee = 1;
  a.commitment = crypto::sha256(bytes_of("c"));
  a.members = {crypto::KeyPair::from_seed(120).pk};
  a.cert = bytes_of("cert");
  const auto back = SemiCommitAck::deserialize(a.serialize());
  EXPECT_EQ(back.committee, 1u);
  EXPECT_EQ(back.commitment, a.commitment);
  EXPECT_EQ(back.members, a.members);
  EXPECT_EQ(back.cert, a.cert);
}

}  // namespace
}  // namespace cyc::protocol::wire
