// Integration tests: full rounds with honest participants.
#include <gtest/gtest.h>

#include "ledger/light_client.hpp"
#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

Params small_params(std::uint64_t seed = 1) {
  Params p;
  p.m = 3;
  p.c = 8;
  p.lambda = 2;
  p.referee_size = 5;
  p.txs_per_committee = 10;
  p.cross_shard_fraction = 0.25;
  p.invalid_fraction = 0.1;
  p.seed = seed;
  return p;
}

TEST(EngineHonest, SingleRoundCommitsTransactions) {
  Engine engine(small_params(), AdversaryConfig{});
  const RoundReport report = engine.run_round();
  EXPECT_GT(report.txs_committed, 0u);
  EXPECT_FALSE(report.block_void);
  EXPECT_EQ(report.recoveries, 0u);
  EXPECT_EQ(report.invalid_committed, 0u);
}

TEST(EngineHonest, ValidityPropertyHolds) {
  // §III-D Validity: every committed transaction passes V; ground-truth
  // invalid transactions never land in a block.
  auto params = small_params(2);
  params.invalid_fraction = 0.3;
  Engine engine(params, AdversaryConfig{});
  const RunReport report = engine.run(4);
  EXPECT_EQ(report.total_invalid_committed(), 0u);
  std::size_t rejected = 0;
  for (const auto& r : report.rounds) rejected += r.invalid_rejected;
  EXPECT_GT(rejected, 0u);  // the workload did inject invalid txs
}

TEST(EngineHonest, MultiRoundProgress) {
  Engine engine(small_params(3), AdversaryConfig{});
  const RunReport report = engine.run(4);
  ASSERT_EQ(report.rounds.size(), 4u);
  for (const auto& r : report.rounds) {
    EXPECT_GT(r.txs_committed, 0u) << "round " << r.round;
    EXPECT_FALSE(r.block_void);
  }
}

TEST(EngineHonest, CrossShardTransactionsCommit) {
  auto params = small_params(4);
  params.cross_shard_fraction = 0.5;
  params.invalid_fraction = 0.0;
  Engine engine(params, AdversaryConfig{});
  const RunReport report = engine.run(3);
  std::size_t cross = 0;
  for (const auto& r : report.rounds) cross += r.cross_committed;
  EXPECT_GT(cross, 0u);
}

TEST(EngineHonest, DeterministicAcrossRuns) {
  Engine a(small_params(5), AdversaryConfig{});
  Engine b(small_params(5), AdversaryConfig{});
  const auto ra = a.run(2);
  const auto rb = b.run(2);
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (std::size_t i = 0; i < ra.rounds.size(); ++i) {
    EXPECT_EQ(ra.rounds[i].txs_committed, rb.rounds[i].txs_committed);
    EXPECT_EQ(ra.rounds[i].traffic_total.msgs_sent,
              rb.rounds[i].traffic_total.msgs_sent);
  }
  EXPECT_EQ(ra.final_reputations, rb.final_reputations);
}

TEST(EngineHonest, SeedsChangeOutcome) {
  Engine a(small_params(6), AdversaryConfig{});
  Engine b(small_params(7), AdversaryConfig{});
  const auto ra = a.run(1);
  const auto rb = b.run(1);
  EXPECT_NE(ra.rounds[0].traffic_total.bytes_sent,
            rb.rounds[0].traffic_total.bytes_sent);
}

TEST(EngineHonest, ReputationAccumulatesForVoters) {
  Engine engine(small_params(8), AdversaryConfig{});
  const RunReport report = engine.run(3);
  double total_rep = 0.0;
  for (double rep : report.final_reputations) total_rep += rep;
  EXPECT_GT(total_rep, 0.0);  // honest voting earns positive scores
}

TEST(EngineHonest, RewardsDistributedWhenFeesCollected) {
  Engine engine(small_params(9), AdversaryConfig{});
  const RunReport report = engine.run(3);
  double fees = 0.0;
  for (const auto& r : report.rounds) fees += r.total_fees;
  double rewards = 0.0;
  for (double w : report.final_rewards) rewards += w;
  EXPECT_GT(fees, 0.0);
  EXPECT_NEAR(rewards, fees, 1e-6);  // all fees are redistributed
}

TEST(EngineHonest, RoleAssignmentsComplete) {
  Engine engine(small_params(10), AdversaryConfig{});
  const auto& assign = engine.assignment();
  EXPECT_EQ(assign.referees.size(), 5u);
  ASSERT_EQ(assign.committees.size(), 3u);
  std::set<net::NodeId> seen(assign.referees.begin(), assign.referees.end());
  for (const auto& committee : assign.committees) {
    EXPECT_NE(committee.leader, net::kNoNode);
    EXPECT_EQ(committee.partial.size(), 2u);
    for (net::NodeId id : committee.all_members()) {
      EXPECT_TRUE(seen.insert(id).second) << "node in two roles";
    }
  }
  EXPECT_EQ(seen.size(), engine.node_count());
}

TEST(EngineHonest, RolesRotateAcrossRounds) {
  Engine engine(small_params(11), AdversaryConfig{});
  const auto referees_r1 = engine.assignment().referees;
  engine.run_round();
  const auto referees_r2 = engine.assignment().referees;
  EXPECT_NE(referees_r1, referees_r2);
  EXPECT_EQ(engine.assignment().round, 2u);
}

TEST(EngineHonest, RandomnessAdvancesEachRound) {
  Engine engine(small_params(12), AdversaryConfig{});
  const auto r1 = engine.randomness();
  engine.run_round();
  const auto r2 = engine.randomness();
  EXPECT_NE(r1, r2);
}

TEST(EngineHonest, LedgerConservation) {
  // No value is created: total UTXO value never exceeds the genesis
  // total (fees are burned from the UTXO set and redistributed as
  // abstract rewards).
  auto params = small_params(13);
  params.invalid_fraction = 0.0;
  Engine engine(params, AdversaryConfig{});
  ledger::Amount genesis_total = 0;
  for (const auto& store : engine.shard_state()) {
    genesis_total += store.total_value();
  }
  engine.run(3);
  ledger::Amount after = 0;
  for (const auto& store : engine.shard_state()) {
    after += store.total_value();
  }
  EXPECT_LE(after, genesis_total);
}

TEST(EngineHonest, TrafficAccountedPerRole) {
  Engine engine(small_params(14), AdversaryConfig{});
  const RoundReport report = engine.run_round();
  EXPECT_GT(report.traffic_by_role.at(Role::kLeader).msgs_sent, 0u);
  EXPECT_GT(report.traffic_by_role.at(Role::kReferee).msgs_sent, 0u);
  EXPECT_GT(report.traffic_by_role.at(Role::kCommon).msgs_sent, 0u);
  // Per-role storage proxies exist and referees hold the most state.
  EXPECT_GT(report.storage_by_role.at(Role::kReferee), 0.0);
}

TEST(EngineHonest, ThroughputScalesWithCommittees) {
  // §III-D Scalability: more committees -> more committed transactions
  // per round (quasi-linear growth).
  std::size_t prev = 0;
  for (std::uint32_t m : {2u, 4u, 6u}) {
    Params params = small_params(15);
    params.m = m;
    params.users = 32 * m;
    Engine engine(params, AdversaryConfig{});
    const RoundReport report = engine.run_round();
    EXPECT_GT(report.txs_committed, prev) << "m=" << m;
    prev = report.txs_committed;
  }
}

TEST(EngineHonest, ChainGrowsAndValidates) {
  Engine engine(small_params(17), AdversaryConfig{});
  const RunReport report = engine.run(3);
  const auto& chain = engine.chain();
  EXPECT_EQ(chain.height(), 3u);
  EXPECT_TRUE(chain.validate());
  // Header tx counts match the round reports.
  for (std::size_t r = 0; r < report.rounds.size(); ++r) {
    EXPECT_EQ(chain.header_at(r + 1).tx_count,
              report.rounds[r].txs_committed);
  }
}

TEST(EngineHonest, LightClientFollowsEngineChain) {
  // An external user tracks only headers and still verifies inclusion of
  // any committed payment (Fig. 2 step 4 from the user's perspective).
  Engine engine(small_params(19), AdversaryConfig{});
  engine.run(2);
  const auto& chain = engine.chain();
  ledger::LightClient client;
  for (std::size_t h = 1; h <= chain.height(); ++h) {
    EXPECT_TRUE(client.accept_header(chain.header_at(h)));
  }
  EXPECT_EQ(client.height(), chain.height());
  // The randomness committed at each height matches what the engine used.
  const auto r = client.randomness_at(chain.height());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, engine.randomness());
}

TEST(EngineHonest, SameRoundDoubleSpendNeverCommits) {
  // The workload injects correctly-signed double-spend pairs; voters and
  // the referee's block-level guard must keep the second spend out.
  auto params = small_params(18);
  params.invalid_fraction = 0.4;
  Engine engine(params, AdversaryConfig{});
  const RunReport report = engine.run(4);
  EXPECT_EQ(report.total_invalid_committed(), 0u);
  EXPECT_GT(report.total_committed(), 0u);
  // Ledger integrity: no value created.
  ledger::Amount total = 0;
  for (const auto& store : engine.shard_state()) total += store.total_value();
  EXPECT_GT(total, 0u);
}

TEST(EngineHonest, BlockVoidOnlyWhenNothingCommits) {
  auto params = small_params(16);
  params.txs_per_committee = 0;  // nothing offered
  Engine engine(params, AdversaryConfig{});
  const RoundReport report = engine.run_round();
  EXPECT_EQ(report.txs_committed, 0u);
  EXPECT_TRUE(report.block_void);
}

}  // namespace
}  // namespace cyc::protocol
