// Tests for the §VIII future-work extensions.
#include <gtest/gtest.h>

#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

Params dos_params(std::uint64_t seed) {
  Params p;
  p.m = 3;
  p.c = 8;
  p.lambda = 2;
  p.referee_size = 5;
  p.txs_per_committee = 12;
  p.cross_shard_fraction = 0.6;
  p.invalid_fraction = 0.5;  // DoS-like workload of §VIII-A
  p.seed = seed;
  return p;
}

TEST(ExtensionPreComm, StillCommitsValidTransactions) {
  EngineOptions opts;
  opts.extension_precommunication = true;
  Engine engine(dos_params(1), AdversaryConfig{}, opts);
  const RunReport report = engine.run(2);
  EXPECT_GT(report.total_committed(), 0u);
  EXPECT_EQ(report.total_invalid_committed(), 0u);
}

TEST(ExtensionPreComm, ReducesInterCommitteeBytes) {
  // §VIII-A: pre-filtering invalid cross transactions reduces the bytes
  // spent in the inter-committee phase under a DoS-like workload.
  EngineOptions baseline, precomm;
  precomm.extension_precommunication = true;
  Engine a(dos_params(2), AdversaryConfig{}, baseline);
  Engine b(dos_params(2), AdversaryConfig{}, precomm);
  const auto ra = a.run_round();
  const auto rb = b.run_round();

  auto inter_bytes = [](const RoundReport& r) {
    std::uint64_t total = 0;
    for (const auto& [role, phases] : r.traffic_by_role_phase) {
      total += phases[static_cast<std::size_t>(net::Phase::kInterConsensus)]
                   .bytes_sent;
    }
    return total;
  };
  EXPECT_LT(inter_bytes(rb), inter_bytes(ra));
}

TEST(ExtensionPreComm, SameValidThroughput) {
  // Filtering only drops invalid transactions; valid cross throughput
  // must not suffer.
  EngineOptions baseline, precomm;
  precomm.extension_precommunication = true;
  Engine a(dos_params(3), AdversaryConfig{}, baseline);
  Engine b(dos_params(3), AdversaryConfig{}, precomm);
  const auto ra = a.run(2);
  const auto rb = b.run(2);
  EXPECT_GE(rb.total_committed() + 2, ra.total_committed());
}

TEST(ExtensionParallelBlocks, StillCommits) {
  EngineOptions opts;
  opts.extension_parallel_blocks = true;
  Params p = dos_params(4);
  p.invalid_fraction = 0.0;
  Engine engine(p, AdversaryConfig{}, opts);
  const RunReport report = engine.run(2);
  EXPECT_GT(report.total_committed(), 0u);
}

TEST(ExtensionParallelBlocks, ShiftsBroadcastOffReferees) {
  // §VIII-B: referee block-phase bytes drop; leader block-phase bytes
  // rise (they now broadcast the sub-blocks).
  Params p = dos_params(5);
  p.invalid_fraction = 0.0;
  EngineOptions baseline, parallel;
  parallel.extension_parallel_blocks = true;
  Engine a(p, AdversaryConfig{}, baseline);
  Engine b(p, AdversaryConfig{}, parallel);
  const auto ra = a.run_round();
  const auto rb = b.run_round();

  auto block_bytes = [](const RoundReport& r, Role role) {
    auto it = r.traffic_by_role_phase.find(role);
    if (it == r.traffic_by_role_phase.end()) return std::uint64_t{0};
    return it->second[static_cast<std::size_t>(net::Phase::kBlock)].bytes_sent;
  };
  EXPECT_LT(block_bytes(rb, Role::kReferee), block_bytes(ra, Role::kReferee));
  EXPECT_GT(block_bytes(rb, Role::kLeader), block_bytes(ra, Role::kLeader));
}

TEST(ExtensionsCompose, BothTogether) {
  EngineOptions opts;
  opts.extension_precommunication = true;
  opts.extension_parallel_blocks = true;
  Engine engine(dos_params(6), AdversaryConfig{}, opts);
  const RunReport report = engine.run(2);
  EXPECT_GT(report.total_committed(), 0u);
  EXPECT_EQ(report.total_invalid_committed(), 0u);
}

TEST(ExtensionsCompose, SurviveAdversary) {
  EngineOptions opts;
  opts.extension_precommunication = true;
  opts.extension_parallel_blocks = true;
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.34;
  Params p = dos_params(7);
  p.invalid_fraction = 0.0;
  Engine engine(p, adv, opts);
  const RoundReport report = engine.run_round();
  EXPECT_GT(report.txs_committed, 0u);
  EXPECT_EQ(report.invalid_committed, 0u);
}

TEST(AblationUniformLeaders, ReputationSelectionMatters) {
  // EngineOptions ablation: with uniform leader selection, previously
  // convicted nodes can be re-drawn as leaders; reputation ranking
  // avoids them. Over several rounds with sticky corruption the
  // reputation-ranked engine needs no recoveries after round 1.
  Params p = dos_params(8);
  p.invalid_fraction = 0.0;
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.25;
  adv.mix = {{Behavior::kEquivocator, 1.0}};
  EngineOptions ranked;
  Engine engine(p, adv, ranked);
  const RunReport report = engine.run(4);
  std::size_t late_recoveries = 0;
  for (std::size_t i = 1; i < report.rounds.size(); ++i) {
    late_recoveries += report.rounds[i].recoveries;
  }
  // Convicted equivocators rank below honest nodes, so recoveries
  // concentrate in early rounds.
  EXPECT_LE(late_recoveries, report.rounds[0].recoveries + 2);
}

}  // namespace
}  // namespace cyc::protocol
