// Open-loop sustained-traffic mode at the engine level: inertness at
// rate 0 (closed-loop byte-identity), per-round flow conservation
// through the mempools, arrival -> commit latency stamps, backpressure
// under a tiny admission bound, and determinism.
#include <gtest/gtest.h>

#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

Params small_params(std::uint64_t seed) {
  Params p;
  p.m = 2;
  p.c = 9;
  p.lambda = 3;
  p.referee_size = 5;
  p.txs_per_committee = 8;
  p.cross_shard_fraction = 0.2;
  p.invalid_fraction = 0.0;
  p.users = 40;
  p.seed = seed;
  return p;
}

double round_duration(const Params& p) {
  return (p.config_duration + p.semicommit_duration + p.intra_duration +
          p.inter_duration + p.reputation_duration + p.selection_duration +
          p.block_duration) *
         p.delays.delta;
}

Params openloop_params(std::uint64_t seed, double load_factor) {
  Params p = small_params(seed);
  // arrival_rate as a fraction of nominal capacity (m * txs_per_committee
  // transactions per round).
  p.arrival_rate = load_factor *
                   static_cast<double>(p.m * p.txs_per_committee) /
                   round_duration(p);
  p.zipf_s = 1.1;
  p.mempool_cap = 32;
  p.users = 80;
  return p;
}

TEST(OpenLoopEngine, InertAtRateZero) {
  Engine engine(small_params(3), {});
  EXPECT_FALSE(engine.open_loop());
  EXPECT_TRUE(engine.mempools().empty());
  const auto report = engine.run(2);
  for (const auto& r : report.rounds) {
    const auto& ol = r.open_loop;
    EXPECT_EQ(ol.arrived, 0u);
    EXPECT_EQ(ol.admitted, 0u);
    EXPECT_EQ(ol.mempool_dropped, 0u);
    EXPECT_EQ(ol.drained, 0u);
    EXPECT_EQ(ol.backlog, 0u);
    EXPECT_TRUE(ol.occupancy.empty());
    EXPECT_TRUE(ol.latencies.empty());
    // Closed-loop still commits: the open-loop machinery is what's off.
    EXPECT_GT(r.txs_committed, 0u);
  }
}

TEST(OpenLoopEngine, ClosedLoopByteIdenticalWithNewFieldsAtDefaults) {
  // Two engines with identical closed-loop params — one built before the
  // open-loop fields existed would behave exactly like one built with
  // them at defaults. Chain tips are full-state digests, so equality
  // here is byte-level identity of every block.
  Params a = small_params(4);
  Params b = small_params(4);
  b.zipf_s = 1.4;       // meaningless without arrival_rate > 0
  b.mempool_cap = 2;    // likewise
  Engine ea(a, {}), eb(b, {});
  ea.run(2);
  eb.run(2);
  EXPECT_TRUE(ea.chain().tip().hash() == eb.chain().tip().hash());
}

TEST(OpenLoopEngine, FlowConservationThroughMempools) {
  Engine engine(openloop_params(5, 0.8), {});
  ASSERT_TRUE(engine.open_loop());
  ASSERT_EQ(engine.mempools().size(), 2u);
  const auto report = engine.run(4);

  std::uint64_t admitted = 0, drained = 0;
  for (const auto& r : report.rounds) {
    const auto& ol = r.open_loop;
    // Per round: every arrival is admitted, dropped at admission, or
    // unrepresentable (spendable pool dry).
    EXPECT_EQ(ol.arrived, ol.admitted + ol.mempool_dropped + ol.exhausted);
    // Occupancy decomposes the backlog per shard.
    ASSERT_EQ(ol.occupancy.size(), 2u);
    EXPECT_EQ(ol.backlog, ol.occupancy[0] + ol.occupancy[1]);
    admitted += ol.admitted;
    drained += ol.drained;
  }
  // Cumulatively: admitted transactions are either drained into lists or
  // still queued at the end.
  EXPECT_EQ(admitted, drained + report.rounds.back().open_loop.backlog);
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(report.total_committed(), 0u);
}

TEST(OpenLoopEngine, LatencyStampsArePositiveAndBounded) {
  const Params p = openloop_params(6, 0.7);
  Engine engine(p, {});
  const std::size_t rounds = 4;
  const auto report = engine.run(rounds);
  std::size_t samples = 0;
  for (const auto& r : report.rounds) {
    for (const double latency : r.open_loop.latencies) {
      samples += 1;
      EXPECT_GT(latency, 0.0);
      // Nothing can wait longer than the whole run's simulated span.
      EXPECT_LE(latency, round_duration(p) * static_cast<double>(rounds));
    }
  }
  EXPECT_GT(samples, 0u);
  EXPECT_EQ(engine.open_loop_clock(),
            round_duration(p) * static_cast<double>(rounds));
}

TEST(OpenLoopEngine, TinyMempoolForcesDrops) {
  Params p = openloop_params(7, 1.6);  // well past capacity
  p.mempool_cap = 4;
  Engine engine(p, {});
  const auto report = engine.run(3);
  std::uint64_t dropped = 0;
  for (const auto& r : report.rounds) {
    dropped += r.open_loop.mempool_dropped;
    // Occupancy can never exceed the admission bound.
    for (const auto occ : r.open_loop.occupancy) EXPECT_LE(occ, 4u);
  }
  EXPECT_GT(dropped, 0u);
}

TEST(OpenLoopEngine, Deterministic) {
  const Params p = openloop_params(8, 0.9);
  Engine a(p, {}), b(p, {});
  const auto ra = a.run(3);
  const auto rb = b.run(3);
  EXPECT_TRUE(a.chain().tip().hash() == b.chain().tip().hash());
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (std::size_t i = 0; i < ra.rounds.size(); ++i) {
    const auto& oa = ra.rounds[i].open_loop;
    const auto& ob = rb.rounds[i].open_loop;
    EXPECT_EQ(oa.arrived, ob.arrived);
    EXPECT_EQ(oa.admitted, ob.admitted);
    EXPECT_EQ(oa.mempool_dropped, ob.mempool_dropped);
    EXPECT_EQ(oa.drained, ob.drained);
    EXPECT_EQ(oa.backlog, ob.backlog);
    EXPECT_EQ(oa.latencies, ob.latencies);
  }
}

TEST(OpenLoopEngine, RejectsZeroCapacityMempoolWithArrivals) {
  // mempool_cap = 0 with an open-loop source would silently drop every
  // arrival — the engine must refuse to construct instead of running a
  // vacuous experiment.
  Params p = openloop_params(9, 0.5);
  p.mempool_cap = 0;
  EXPECT_THROW(Engine(p, {}), std::invalid_argument);
}

TEST(OpenLoopEngine, ZeroCapacityMempoolFineWithoutArrivals) {
  // Closed-loop runs never consult the mempools, so cap 0 stays legal
  // there.
  Params p = small_params(9);
  p.mempool_cap = 0;
  Engine engine(p, {});
  const auto report = engine.run(1);
  EXPECT_GT(report.total_committed(), 0u);
}

TEST(OpenLoopEngine, OccupancySampledAfterTheDrain) {
  // OpenLoopRoundStats.occupancy is pinned to the POST-drain queue
  // depths: after any round, occupancy[k] must equal the mempool's live
  // size and their sum must equal the reported backlog. A pre-drain
  // sample would double-count the transactions the round just serviced
  // (see src/ledger/README.md).
  const Params p = openloop_params(10, 1.3);
  Engine engine(p, {});
  for (std::uint64_t r = 0; r < 3; ++r) {
    const auto report = engine.run_round();
    const auto& ol = report.open_loop;
    ASSERT_EQ(ol.occupancy.size(), engine.mempools().size());
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < ol.occupancy.size(); ++k) {
      EXPECT_EQ(ol.occupancy[k], engine.mempools()[k].size());
      total += ol.occupancy[k];
    }
    EXPECT_EQ(total, ol.backlog);
  }
}

TEST(OpenLoopEngine, LatencyShardsParallelTheLatencySamples) {
  const Params p = openloop_params(11, 0.8);
  Engine engine(p, {});
  const auto report = engine.run(3);
  std::size_t samples = 0;
  for (const auto& r : report.rounds) {
    const auto& ol = r.open_loop;
    ASSERT_EQ(ol.latency_shards.size(), ol.latencies.size());
    for (const auto shard : ol.latency_shards) EXPECT_LT(shard, p.m);
    samples += ol.latencies.size();
  }
  EXPECT_GT(samples, 0u);
}

}  // namespace
}  // namespace cyc::protocol
