// Integration tests under adversarial behaviours (§III-C threat model,
// §V security claims).
#include <gtest/gtest.h>

#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

Params small_params(std::uint64_t seed) {
  Params p;
  p.m = 3;
  p.c = 8;
  p.lambda = 2;
  p.referee_size = 5;
  p.txs_per_committee = 10;
  p.cross_shard_fraction = 0.25;
  p.invalid_fraction = 0.0;
  p.seed = seed;
  return p;
}

AdversaryConfig forced_leaders(double fraction) {
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = fraction;
  return adv;
}

TEST(EngineAdversary, BadLeadersRecoveredAndOutputSurvives) {
  Engine engine(small_params(1), forced_leaders(0.67));
  const RoundReport report = engine.run_round();
  EXPECT_GE(report.recoveries, 1u);
  EXPECT_GT(report.txs_committed, 0u);
  EXPECT_EQ(report.invalid_committed, 0u);
  // All committees produce output despite corrupted leaders.
  for (const auto& committee : report.committees) {
    EXPECT_TRUE(committee.produced_output) << "committee " << committee.committee;
  }
}

TEST(EngineAdversary, WithoutRecoveryThroughputDrops) {
  // The Table I row 6 comparison in miniature: same seed, recovery on
  // vs off.
  EngineOptions with, without;
  without.recovery_enabled = false;
  Engine a(small_params(2), forced_leaders(0.67), with);
  Engine b(small_params(2), forced_leaders(0.67), without);
  const auto ra = a.run_round();
  const auto rb = b.run_round();
  EXPECT_GT(ra.txs_committed, rb.txs_committed);
  EXPECT_EQ(rb.recoveries, 0u);
}

TEST(EngineAdversary, RecoveryEventsIdentifyCulprits) {
  Engine engine(small_params(3), forced_leaders(0.34));
  const auto leader0 = engine.assignment().committees[0].leader;
  // Capture the round-1 partial sets before run_round() rotates roles.
  std::vector<std::vector<net::NodeId>> partials;
  for (const auto& c : engine.assignment().committees) {
    partials.push_back(c.partial);
  }
  const RoundReport report = engine.run_round();
  ASSERT_GE(report.recovery_events.size(), 1u);
  const auto& event = report.recovery_events[0];
  EXPECT_EQ(event.old_leader, leader0);
  EXPECT_NE(event.new_leader, leader0);
  // The replacement comes from the partial set.
  const auto& partial = partials[event.committee];
  EXPECT_NE(std::find(partial.begin(), partial.end(), event.new_leader),
            partial.end());
}

TEST(EngineAdversary, ConvictedLeaderPunishedCubeRoot) {
  Engine engine(small_params(4), forced_leaders(0.34));
  const auto leader0 = engine.assignment().committees[0].leader;
  engine.run_round();
  // Punishment maps reputation to its cube root (§VII-B); starting from
  // 0 plus no earned score, the reputation must not have grown, while
  // honest leaders earned a bonus.
  const double bad_rep = engine.reputation(leader0);
  const auto honest_leader = engine.assignment().committees.back().leader;
  (void)honest_leader;
  EXPECT_LE(bad_rep, 0.0 + 1e-9);
}

TEST(EngineAdversary, EachBehaviorIsSurvivable) {
  for (Behavior behavior :
       {Behavior::kCrash, Behavior::kEquivocator, Behavior::kCommitForger,
        Behavior::kConcealer}) {
    AdversaryConfig adv;
    adv.forced_corrupt_leader_fraction = 0.34;  // corrupt leader 0
    adv.mix = {{behavior, 1.0}};
    Params params = small_params(5);
    Engine engine(params, adv);
    // Override leader 0's behavior with the one under test.
    const auto leader0 = engine.assignment().committees[0].leader;
    (void)leader0;
    const RoundReport report = engine.run_round();
    EXPECT_GT(report.txs_committed, 0u)
        << "behavior " << behavior_name(behavior);
    EXPECT_EQ(report.invalid_committed, 0u)
        << "behavior " << behavior_name(behavior);
  }
}

TEST(EngineAdversary, FramingNeverEvictsHonestLeader) {
  // Claim 4: framers in partial sets cannot get an honest leader
  // convicted.
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.2;
  adv.mix = {{Behavior::kFramer, 1.0}};
  Engine engine(small_params(6), adv);
  const RunReport report = engine.run(3);
  for (const auto& round : report.rounds) {
    for (const auto& event : round.recovery_events) {
      // Any recovery must have evicted a genuinely misbehaving node.
      EXPECT_NE(engine.behavior_of(event.old_leader), Behavior::kHonest)
          << "honest leader evicted in round " << round.round;
    }
  }
}

TEST(EngineAdversary, InverseVotersCannotFlipDecisions) {
  // With < 1/3 inverse voters, majority voting still reaches the ground
  // truth: no invalid transaction commits and valid ones keep flowing.
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.25;
  adv.mix = {{Behavior::kInverseVoter, 1.0}};
  Params params = small_params(7);
  params.invalid_fraction = 0.2;
  Engine engine(params, adv);
  const RunReport report = engine.run(3);
  EXPECT_EQ(report.total_invalid_committed(), 0u);
  EXPECT_GT(report.total_committed(), 0u);
}

TEST(EngineAdversary, RandomVotersTolerated) {
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.3;
  adv.mix = {{Behavior::kRandomVoter, 1.0}};
  Engine engine(small_params(8), adv);
  const RunReport report = engine.run(2);
  EXPECT_GT(report.total_committed(), 0u);
  EXPECT_EQ(report.total_invalid_committed(), 0u);
}

TEST(EngineAdversary, MisbehavingVotersEarnLowerReputation) {
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.25;
  adv.mix = {{Behavior::kInverseVoter, 1.0}};
  Engine engine(small_params(9), adv);
  const RunReport report = engine.run(4);
  double honest_sum = 0.0, bad_sum = 0.0;
  std::size_t honest_count = 0, bad_count = 0;
  for (std::size_t i = 0; i < report.final_reputations.size(); ++i) {
    if (report.behaviors[i] == Behavior::kInverseVoter) {
      bad_sum += report.final_reputations[i];
      ++bad_count;
    } else {
      honest_sum += report.final_reputations[i];
      ++honest_count;
    }
  }
  ASSERT_GT(bad_count, 0u);
  ASSERT_GT(honest_count, 0u);
  EXPECT_GT(honest_sum / static_cast<double>(honest_count),
            bad_sum / static_cast<double>(bad_count));
}

TEST(EngineAdversary, MildlyAdaptiveCorruptionDelayed) {
  // corrupt() at round r takes effect at round r+1 (§III-C).
  Engine engine(small_params(10), AdversaryConfig{});
  const auto victim = engine.assignment().committees[0].leader;
  engine.corrupt(victim, Behavior::kCrash);
  const RoundReport r1 = engine.run_round();
  // Round 1: corruption not yet effective, so no recovery was needed for
  // that committee.
  EXPECT_EQ(r1.recoveries, 0u);
  EXPECT_GT(r1.txs_committed, 0u);
}

TEST(EngineAdversary, MixedAdversarySurvives) {
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.3;  // default mixed behaviours
  Params params = small_params(11);
  params.invalid_fraction = 0.15;
  Engine engine(params, adv);
  const RunReport report = engine.run(3);
  EXPECT_GT(report.total_committed(), 0u);
  EXPECT_EQ(report.total_invalid_committed(), 0u);
}

TEST(EngineAdversary, CrashedNodesSitOutNextRound) {
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.2;
  adv.mix = {{Behavior::kCrash, 1.0}};
  Engine engine(small_params(12), adv);
  const RunReport report = engine.run(2);
  // Rounds still succeed with crashed nodes absent.
  for (const auto& round : report.rounds) {
    EXPECT_GT(round.txs_committed, 0u);
  }
}

}  // namespace
}  // namespace cyc::protocol
