#include "protocol/sortition.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cyc::protocol {
namespace {

crypto::Digest rand_of(std::uint64_t seed) {
  return crypto::sha256(be64(seed));
}

TEST(Sortition, TicketVerifies) {
  const auto keys = crypto::KeyPair::from_seed(1);
  const auto randomness = rand_of(7);
  const auto ticket = crypto_sort(keys, 3, randomness, 8);
  EXPECT_LT(ticket.committee, 8u);
  EXPECT_TRUE(verify_sortition(keys.pk, 3, randomness, 8, ticket));
}

TEST(Sortition, Deterministic) {
  const auto keys = crypto::KeyPair::from_seed(2);
  const auto randomness = rand_of(8);
  const auto a = crypto_sort(keys, 1, randomness, 4);
  const auto b = crypto_sort(keys, 1, randomness, 4);
  EXPECT_EQ(a.committee, b.committee);
  EXPECT_EQ(a.proof, b.proof);
}

TEST(Sortition, RoundChangesCommittee) {
  const auto keys = crypto::KeyPair::from_seed(3);
  const auto randomness = rand_of(9);
  std::set<std::uint32_t> committees;
  for (std::uint64_t r = 1; r <= 32; ++r) {
    committees.insert(crypto_sort(keys, r, randomness, 16).committee);
  }
  EXPECT_GT(committees.size(), 8u);  // committee changes with round
}

TEST(Sortition, WrongRoundRejected) {
  const auto keys = crypto::KeyPair::from_seed(4);
  const auto randomness = rand_of(10);
  const auto ticket = crypto_sort(keys, 1, randomness, 4);
  EXPECT_FALSE(verify_sortition(keys.pk, 2, randomness, 4, ticket));
}

TEST(Sortition, WrongRandomnessRejected) {
  const auto keys = crypto::KeyPair::from_seed(5);
  const auto ticket = crypto_sort(keys, 1, rand_of(11), 4);
  EXPECT_FALSE(verify_sortition(keys.pk, 1, rand_of(12), 4, ticket));
}

TEST(Sortition, WrongKeyRejected) {
  const auto a = crypto::KeyPair::from_seed(6);
  const auto b = crypto::KeyPair::from_seed(7);
  const auto randomness = rand_of(13);
  const auto ticket = crypto_sort(a, 1, randomness, 4);
  EXPECT_FALSE(verify_sortition(b.pk, 1, randomness, 4, ticket));
}

TEST(Sortition, ForgedCommitteeIdRejected) {
  const auto keys = crypto::KeyPair::from_seed(8);
  const auto randomness = rand_of(14);
  auto ticket = crypto_sort(keys, 1, randomness, 4);
  ticket.committee = (ticket.committee + 1) % 4;
  EXPECT_FALSE(verify_sortition(keys.pk, 1, randomness, 4, ticket));
}

TEST(Sortition, CommitteesRoughlyBalanced) {
  const auto randomness = rand_of(15);
  const std::uint32_t m = 4;
  std::map<std::uint32_t, int> counts;
  const int nodes = 400;
  for (int i = 0; i < nodes; ++i) {
    const auto keys = crypto::KeyPair::from_seed(1000 + i);
    counts[crypto_sort(keys, 1, randomness, m).committee] += 1;
  }
  for (const auto& [committee, count] : counts) {
    EXPECT_GT(count, 60) << "committee " << committee;
    EXPECT_LT(count, 140) << "committee " << committee;
  }
}

TEST(RoleSelection, DifficultyCalibration) {
  // With difficulty for "want of population", about `want` nodes win.
  const auto randomness = rand_of(16);
  const std::uint64_t population = 1000, want = 100;
  const std::uint64_t d = role_difficulty(population, want);
  std::uint64_t winners = 0;
  for (std::uint64_t i = 0; i < population; ++i) {
    const auto keys = crypto::KeyPair::from_seed(5000 + i);
    if (wins_role(2, randomness, keys.pk, kRoleReferee, d)) ++winners;
  }
  EXPECT_GT(winners, want / 2);
  EXPECT_LT(winners, want * 2);
}

TEST(RoleSelection, DifficultyEdgeCases) {
  EXPECT_EQ(role_difficulty(0, 5), 0u);
  EXPECT_EQ(role_difficulty(10, 10), ~0ull);
  EXPECT_EQ(role_difficulty(10, 20), ~0ull);
}

TEST(RoleSelection, RolesAreIndependent) {
  // Winning the referee lottery says nothing about the partial lottery.
  const auto randomness = rand_of(17);
  const auto keys = crypto::KeyPair::from_seed(9999);
  const std::uint64_t hr = role_hash(2, randomness, keys.pk, kRoleReferee);
  const std::uint64_t hp = role_hash(2, randomness, keys.pk, kRolePartial);
  EXPECT_NE(hr, hp);
}

TEST(RoleSelection, PartialCommitteePlacementStable) {
  const auto randomness = rand_of(18);
  const auto keys = crypto::KeyPair::from_seed(4242);
  EXPECT_EQ(partial_committee(2, randomness, keys.pk, 8),
            partial_committee(2, randomness, keys.pk, 8));
  EXPECT_LT(partial_committee(2, randomness, keys.pk, 8), 8u);
}

}  // namespace
}  // namespace cyc::protocol
