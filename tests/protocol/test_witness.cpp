#include "protocol/witness.hpp"

#include <gtest/gtest.h>

namespace cyc::protocol {
namespace {

Accusation make_accusation(const crypto::KeyPair& accused,
                           const crypto::KeyPair& accuser) {
  Accusation a;
  a.round = 2;
  a.committee = 1;
  a.accused = accused.pk;
  a.accuser = accuser.pk;
  a.kind = WitnessKind::kTimeout;
  return a;
}

consensus::EquivocationWitness equivocation(const crypto::KeyPair& leader) {
  consensus::Propose p1, p2;
  p1.id = p2.id = {2, 100};
  p1.message = bytes_of("a");
  p1.digest = crypto::sha256(p1.message);
  p2.message = bytes_of("b");
  p2.digest = crypto::sha256(p2.message);
  consensus::EquivocationWitness w;
  w.first = crypto::make_signed(leader, p1.signed_part());
  w.second = crypto::make_signed(leader, p2.signed_part());
  return w;
}

TEST(Accusation, RoundTrip) {
  const auto accused = crypto::KeyPair::from_seed(1);
  const auto accuser = crypto::KeyPair::from_seed(2);
  Accusation a = make_accusation(accused, accuser);
  a.witness = bytes_of("some evidence");
  const auto back = Accusation::deserialize(a.serialize());
  EXPECT_EQ(back.round, a.round);
  EXPECT_EQ(back.committee, a.committee);
  EXPECT_EQ(back.accused, a.accused);
  EXPECT_EQ(back.accuser, a.accuser);
  EXPECT_EQ(back.kind, a.kind);
  EXPECT_EQ(back.witness, a.witness);
}

TEST(Accusation, EquivocationWitnessValid) {
  const auto leader = crypto::KeyPair::from_seed(3);
  const auto accuser = crypto::KeyPair::from_seed(4);
  Accusation a = make_accusation(leader, accuser);
  a.kind = WitnessKind::kEquivocation;
  a.witness = equivocation(leader).serialize();
  EXPECT_TRUE(a.witness_valid());
}

TEST(Accusation, EquivocationAgainstWrongLeaderInvalid) {
  const auto leader = crypto::KeyPair::from_seed(5);
  const auto other = crypto::KeyPair::from_seed(6);
  const auto accuser = crypto::KeyPair::from_seed(7);
  Accusation a = make_accusation(other, accuser);  // accuses 'other'
  a.kind = WitnessKind::kEquivocation;
  a.witness = equivocation(leader).serialize();  // but witness is vs leader
  EXPECT_FALSE(a.witness_valid());
}

TEST(Accusation, TimeoutNeverSelfValidates) {
  // Claim 4 safeguard: silence has no signature, so the referee must
  // corroborate it — witness_valid() alone is false.
  const auto accused = crypto::KeyPair::from_seed(8);
  const auto accuser = crypto::KeyPair::from_seed(9);
  Accusation a = make_accusation(accused, accuser);
  EXPECT_FALSE(a.witness_valid());
}

TEST(Accusation, GarbageWitnessInvalid) {
  const auto accused = crypto::KeyPair::from_seed(10);
  const auto accuser = crypto::KeyPair::from_seed(11);
  Accusation a = make_accusation(accused, accuser);
  a.kind = WitnessKind::kEquivocation;
  a.witness = bytes_of("garbage");
  EXPECT_FALSE(a.witness_valid());
}

TEST(Impeachment, CertVerifies) {
  const auto accused = crypto::KeyPair::from_seed(12);
  const auto accuser = crypto::KeyPair::from_seed(13);
  Accusation a = make_accusation(accused, accuser);

  std::vector<crypto::KeyPair> committee;
  std::vector<crypto::PublicKey> pks;
  for (std::uint64_t i = 0; i < 5; ++i) {
    committee.push_back(crypto::KeyPair::from_seed(100 + i));
    pks.push_back(committee.back().pk);
  }
  ImpeachmentCert cert;
  cert.accusation = a;
  const Bytes payload = ImpeachmentCert::approval_payload(a);
  for (int i = 0; i < 3; ++i) {
    cert.approvals.push_back(
        crypto::make_signed(committee[static_cast<std::size_t>(i)], payload));
  }
  EXPECT_TRUE(cert.verify(pks, 5));
}

TEST(Impeachment, MinorityInsufficient) {
  const auto accused = crypto::KeyPair::from_seed(14);
  const auto accuser = crypto::KeyPair::from_seed(15);
  Accusation a = make_accusation(accused, accuser);
  std::vector<crypto::PublicKey> pks;
  ImpeachmentCert cert;
  cert.accusation = a;
  const Bytes payload = ImpeachmentCert::approval_payload(a);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto kp = crypto::KeyPair::from_seed(200 + i);
    pks.push_back(kp.pk);
    if (i < 2) cert.approvals.push_back(crypto::make_signed(kp, payload));
  }
  EXPECT_FALSE(cert.verify(pks, 5));  // 2 of 5
}

TEST(Impeachment, DuplicateApprovalsRejected) {
  const auto accused = crypto::KeyPair::from_seed(16);
  const auto accuser = crypto::KeyPair::from_seed(17);
  Accusation a = make_accusation(accused, accuser);
  const auto kp = crypto::KeyPair::from_seed(300);
  const Bytes payload = ImpeachmentCert::approval_payload(a);
  ImpeachmentCert cert;
  cert.accusation = a;
  const auto sm = crypto::make_signed(kp, payload);
  cert.approvals = {sm, sm, sm};
  EXPECT_FALSE(cert.verify({kp.pk}, 3));
}

TEST(Impeachment, ApprovalForDifferentAccusationRejected) {
  const auto accused = crypto::KeyPair::from_seed(18);
  const auto accuser = crypto::KeyPair::from_seed(19);
  Accusation a = make_accusation(accused, accuser);
  Accusation b = make_accusation(accused, accuser);
  b.round = 3;  // different accusation
  const auto kp = crypto::KeyPair::from_seed(301);
  ImpeachmentCert cert;
  cert.accusation = a;
  cert.approvals = {
      crypto::make_signed(kp, ImpeachmentCert::approval_payload(b))};
  EXPECT_FALSE(cert.verify({kp.pk}, 1));
}

TEST(Impeachment, OutsiderApprovalRejected) {
  const auto accused = crypto::KeyPair::from_seed(20);
  const auto accuser = crypto::KeyPair::from_seed(21);
  Accusation a = make_accusation(accused, accuser);
  const auto member = crypto::KeyPair::from_seed(302);
  const auto outsider = crypto::KeyPair::from_seed(303);
  ImpeachmentCert cert;
  cert.accusation = a;
  cert.approvals = {crypto::make_signed(
      outsider, ImpeachmentCert::approval_payload(a))};
  EXPECT_FALSE(cert.verify({member.pk}, 1));
}

TEST(Impeachment, RoundTrip) {
  const auto accused = crypto::KeyPair::from_seed(22);
  const auto accuser = crypto::KeyPair::from_seed(23);
  Accusation a = make_accusation(accused, accuser);
  const auto kp = crypto::KeyPair::from_seed(304);
  ImpeachmentCert cert;
  cert.accusation = a;
  cert.approvals = {
      crypto::make_signed(kp, ImpeachmentCert::approval_payload(a))};
  const auto back = ImpeachmentCert::deserialize(cert.serialize());
  EXPECT_TRUE(back.verify({kp.pk}, 1));
}

TEST(WitnessKinds, Names) {
  EXPECT_EQ(witness_kind_name(WitnessKind::kEquivocation), "equivocation");
  EXPECT_EQ(witness_kind_name(WitnessKind::kCommitMismatch),
            "commit-mismatch");
  EXPECT_EQ(witness_kind_name(WitnessKind::kTimeout), "timeout");
}

}  // namespace
}  // namespace cyc::protocol
