// Property-style sweeps over the engine: safety and liveness invariants
// must hold across parameter combinations, seeds and adversary mixes.
#include <gtest/gtest.h>

#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

struct EngineCase {
  std::uint32_t m;
  std::uint32_t c;
  std::uint32_t lambda;
  std::uint64_t seed;
  double corrupt;
};

void PrintTo(const EngineCase& ec, std::ostream* os) {
  *os << "m=" << ec.m << " c=" << ec.c << " lambda=" << ec.lambda
      << " seed=" << ec.seed << " corrupt=" << ec.corrupt;
}

Params params_for(const EngineCase& ec) {
  Params p;
  p.m = ec.m;
  p.c = ec.c;
  p.lambda = ec.lambda;
  p.referee_size = 5;
  p.txs_per_committee = 8;
  p.cross_shard_fraction = 0.3;
  p.invalid_fraction = 0.15;
  p.users = 20 * ec.m;
  p.seed = ec.seed;
  return p;
}

class EngineSweep : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineSweep, InvariantsHold) {
  const EngineCase ec = GetParam();
  AdversaryConfig adv;
  adv.corrupt_fraction = ec.corrupt;
  Engine engine(params_for(ec), adv);
  const RunReport report = engine.run(2);

  // Safety: nothing ground-truth invalid ever commits.
  EXPECT_EQ(report.total_invalid_committed(), 0u);
  // Liveness: some transactions commit over two rounds.
  EXPECT_GT(report.total_committed(), 0u);
  // Chain integrity.
  EXPECT_EQ(engine.chain().height(), 2u);
  EXPECT_TRUE(engine.chain().validate());
  // Ledger conservation: value never grows.
  ledger::Amount total = 0;
  for (const auto& store : engine.shard_state()) total += store.total_value();
  EXPECT_GT(total, 0u);
  // Recovery events, if any, only evicted misbehaving nodes.
  for (const auto& round : report.rounds) {
    for (const auto& event : round.recovery_events) {
      EXPECT_NE(engine.behavior_of(event.old_leader), Behavior::kHonest);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineSweep,
    ::testing::Values(EngineCase{2, 6, 1, 1, 0.0},   //
                      EngineCase{2, 12, 3, 2, 0.0},  //
                      EngineCase{4, 8, 2, 3, 0.0},   //
                      EngineCase{6, 8, 2, 4, 0.0},   //
                      EngineCase{3, 15, 4, 5, 0.0},  //
                      EngineCase{2, 9, 2, 6, 0.2},   //
                      EngineCase{3, 9, 2, 7, 0.25},  //
                      EngineCase{4, 9, 3, 8, 0.3},   //
                      EngineCase{3, 12, 3, 9, 0.3},  //
                      EngineCase{2, 8, 2, 10, 0.3}));

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, AdversarialRoundsStaySafe) {
  Params p;
  p.m = 3;
  p.c = 9;
  p.lambda = 3;
  p.referee_size = 5;
  p.txs_per_committee = 8;
  p.invalid_fraction = 0.2;
  p.seed = GetParam();
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.67;
  Engine engine(p, adv);
  const RoundReport report = engine.run_round();
  EXPECT_EQ(report.invalid_committed, 0u);
  EXPECT_GT(report.txs_committed, 0u);
  EXPECT_GE(report.recoveries, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(EngineBehaviors, LazyVotersEarnZeroButSurvive) {
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.3;
  adv.mix = {{Behavior::kLazyVoter, 1.0}};
  Params p;
  p.m = 3;
  p.c = 9;
  p.lambda = 2;
  p.referee_size = 5;
  p.txs_per_committee = 10;
  p.invalid_fraction = 0.0;
  p.seed = 91;
  Engine engine(p, adv);
  const RunReport report = engine.run(3);
  EXPECT_GT(report.total_committed(), 0u);
  // Lazy voters (all-Unknown, Eq. 1 gives cosine 0) earn no vote scores;
  // any reputation they hold comes from leader/referee service credits.
  // They still collect the small g(.) reward share (§IV-G), and on
  // average sit strictly below honest voters.
  double lazy_rep = 0, honest_rep = 0;
  int lazy_n = 0, honest_n = 0;
  for (std::size_t i = 0; i < report.behaviors.size(); ++i) {
    if (report.behaviors[i] == Behavior::kLazyVoter) {
      EXPECT_GT(report.final_rewards[i], 0.0) << "node " << i;
      lazy_rep += report.final_reputations[i];
      ++lazy_n;
    } else {
      honest_rep += report.final_reputations[i];
      ++honest_n;
    }
  }
  ASSERT_GT(lazy_n, 0);
  EXPECT_LT(lazy_rep / lazy_n, honest_rep / honest_n);
}

TEST(EngineBehaviors, ImitatorForgedResultRejectedAndEvicted) {
  // Lemma 6 "imitate" case: a destination leader fabricates an
  // acceptance with a bogus certificate. Referees must reject the forged
  // result, and the partial set's 2*Gamma rule evicts the leader.
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.34;  // corrupt committee 0 leader
  adv.mix = {{Behavior::kImitator, 1.0}};
  Params p;
  p.m = 3;
  p.c = 9;
  p.lambda = 3;
  p.referee_size = 5;
  p.txs_per_committee = 10;
  p.cross_shard_fraction = 0.5;
  p.invalid_fraction = 0.0;
  p.seed = 92;
  Engine engine(p, adv);
  const auto leader0 = engine.assignment().committees[0].leader;
  engine.corrupt(leader0, Behavior::kImitator);
  // Round 1: corruption not yet in effect. Re-seat the behaviour via the
  // forced fraction instead:
  Engine fresh(p, adv);
  const auto bad = fresh.assignment().committees[0].leader;
  // forced assignment cycles behaviours; pin imitator by checking mix:
  const RoundReport report = fresh.run_round();
  EXPECT_EQ(report.invalid_committed, 0u);
  EXPECT_GT(report.txs_committed, 0u);
  // Either no cross list targeted committee 0 (nothing to forge) or the
  // imitator was caught; in both cases the round is safe. When a forged
  // result was produced, a recovery must have fired.
  for (const auto& event : report.recovery_events) {
    EXPECT_EQ(event.old_leader, bad);
  }
}

TEST(EngineBehaviors, CarryoverRetriesUnpackedTransactions) {
  // With recovery disabled and a crashed leader, committee k's round-1
  // transactions stay unpacked; they must be re-offered and committed
  // once an honest leader takes over in round 2.
  Params p;
  p.m = 2;
  p.c = 8;
  p.lambda = 2;
  p.referee_size = 5;
  p.txs_per_committee = 8;
  p.cross_shard_fraction = 0.0;
  p.invalid_fraction = 0.0;
  p.seed = 93;
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.5;
  adv.mix = {{Behavior::kCrash, 1.0}};
  EngineOptions opts;
  opts.recovery_enabled = false;
  Engine engine(p, adv);
  // Use recovery-disabled engine to create unpacked txs:
  Engine stalled(p, adv, opts);
  const RoundReport r1 = stalled.run_round();
  const RoundReport r2 = stalled.run_round();
  // Round 1 lost one committee's output; round 2 (honest leaders via
  // selection among active nodes) commits at least as much as a fresh
  // round plus part of the backlog.
  EXPECT_LT(r1.txs_committed, r1.txs_offered);
  EXPECT_GE(r2.txs_offered, r1.txs_offered - r1.txs_committed);
  EXPECT_GT(r2.txs_committed, 0u);
}

}  // namespace
}  // namespace cyc::protocol
