#include "protocol/reputation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace cyc::protocol {
namespace {

TEST(CosineScore, PerfectAgreement) {
  const VoteVector decision = {Vote::kYes, Vote::kNo, Vote::kYes};
  EXPECT_DOUBLE_EQ(cosine_score(decision, decision), 1.0);
}

TEST(CosineScore, PerfectDisagreement) {
  const VoteVector decision = {Vote::kYes, Vote::kNo};
  const VoteVector opposite = {Vote::kNo, Vote::kYes};
  EXPECT_DOUBLE_EQ(cosine_score(opposite, decision), -1.0);
}

TEST(CosineScore, AllUnknownScoresZero) {
  const VoteVector decision = {Vote::kYes, Vote::kNo};
  const VoteVector unknown = {Vote::kUnknown, Vote::kUnknown};
  EXPECT_DOUBLE_EQ(cosine_score(unknown, decision), 0.0);
}

TEST(CosineScore, PartialAgreement) {
  // Vote agrees on 1 of 2 decided axes, unknown on the other:
  // cos = 1 / (1 * sqrt(2)).
  const VoteVector decision = {Vote::kYes, Vote::kYes};
  const VoteVector vote = {Vote::kYes, Vote::kUnknown};
  EXPECT_NEAR(cosine_score(vote, decision), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(CosineScore, MixedExample) {
  // Paper Eq. (1) on a concrete case: v=(1,-1,0), u=(1,1,1):
  // dot=0, so score 0.
  const VoteVector decision = {Vote::kYes, Vote::kYes, Vote::kYes};
  const VoteVector vote = {Vote::kYes, Vote::kNo, Vote::kUnknown};
  EXPECT_NEAR(cosine_score(vote, decision), 0.0, 1e-12);
}

TEST(CosineScore, RangeIsMinusOneToOne) {
  const VoteVector decision = {Vote::kYes, Vote::kNo, Vote::kYes, Vote::kNo};
  VoteVector vote(4, Vote::kUnknown);
  for (int mask = 0; mask < 81; ++mask) {
    int v = mask;
    for (int i = 0; i < 4; ++i) {
      vote[static_cast<std::size_t>(i)] = static_cast<Vote>(v % 3 - 1);
      v /= 3;
    }
    const double s = cosine_score(vote, decision);
    EXPECT_GE(s, -1.0 - 1e-12);
    EXPECT_LE(s, 1.0 + 1e-12);
  }
}

TEST(CosineScore, DimensionMismatchThrows) {
  EXPECT_THROW(cosine_score({Vote::kYes}, {Vote::kYes, Vote::kNo}),
               std::invalid_argument);
}

TEST(CosineScore, ScoreVotesBatch) {
  const VoteVector decision = {Vote::kYes, Vote::kNo};
  const std::vector<VoteVector> votes = {
      {Vote::kYes, Vote::kNo},
      {Vote::kNo, Vote::kYes},
      {Vote::kUnknown, Vote::kUnknown},
  };
  const auto scores = score_votes(votes, decision);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  EXPECT_DOUBLE_EQ(scores[1], -1.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

// --- g(x), Eq. (2) / Fig. 4 ---

TEST(RewardMapping, PaperFormulaValues) {
  EXPECT_DOUBLE_EQ(g(0.0), 1.0);           // g(0) = e^0 = 1
  EXPECT_DOUBLE_EQ(g(-1.0), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(g(1.0), 1.0 + std::log(2.0));
  EXPECT_DOUBLE_EQ(g(std::exp(1.0) - 1.0), 2.0);  // 1 + ln(e) = 2
}

TEST(RewardMapping, MonotoneIncreasing) {
  double prev = -1e300;
  for (double x = -10.0; x <= 10.0; x += 0.25) {
    const double y = g(x);
    EXPECT_GT(y, prev) << "x=" << x;
    prev = y;
  }
}

TEST(RewardMapping, ContinuousAtZero) {
  EXPECT_NEAR(g(-1e-9), g(1e-9), 1e-8);
}

TEST(RewardMapping, NegativeMapsNearZero) {
  // "the negative reputation is mapped to near zero" (§IV-G).
  EXPECT_LT(g(-5.0), 0.01);
  EXPECT_GT(g(-5.0), 0.0);
}

TEST(RewardMapping, ZeroStillEarnsALittle) {
  // "nodes whose reputation is zero could still get little rewards".
  EXPECT_GT(g(0.0), 0.0);
}

// --- reward distribution ---

TEST(Rewards, ProportionalAndComplete) {
  const std::vector<double> reps = {2.0, 0.0, -3.0};
  const auto rewards = distribute_rewards(reps, 100.0);
  ASSERT_EQ(rewards.size(), 3u);
  const double total = std::accumulate(rewards.begin(), rewards.end(), 0.0);
  EXPECT_NEAR(total, 100.0, 1e-9);  // sum equals the fee pool
  EXPECT_GT(rewards[0], rewards[1]);
  EXPECT_GT(rewards[1], rewards[2]);
  // Ratios match g().
  EXPECT_NEAR(rewards[0] / rewards[1], g(2.0) / g(0.0), 1e-9);
}

TEST(Rewards, WhoWorksMoreGetsMore) {
  // Strictly monotone in reputation.
  std::vector<double> reps;
  for (int i = -5; i <= 5; ++i) reps.push_back(static_cast<double>(i));
  const auto rewards = distribute_rewards(reps, 1.0);
  for (std::size_t i = 1; i < rewards.size(); ++i) {
    EXPECT_GT(rewards[i], rewards[i - 1]);
  }
}

TEST(Rewards, EmptyAndZeroFee) {
  EXPECT_TRUE(distribute_rewards({}, 10.0).empty());
  const auto rewards = distribute_rewards({1.0, 2.0}, 0.0);
  EXPECT_DOUBLE_EQ(rewards[0], 0.0);
  EXPECT_DOUBLE_EQ(rewards[1], 0.0);
}

// --- leader punishment (§VII-B) ---

TEST(Punishment, CubeRoot) {
  EXPECT_DOUBLE_EQ(punish_leader(8.0), 2.0);
  EXPECT_DOUBLE_EQ(punish_leader(27.0), 3.0);
  EXPECT_DOUBLE_EQ(punish_leader(1.0), 1.0);
  EXPECT_DOUBLE_EQ(punish_leader(0.0), 0.0);
}

TEST(Punishment, MappedValueDropsToRoughlyAThird) {
  // "the mapped value ... will reduce to about one-third of the original
  // mapped value" for large reputations: g(x^{1/3}) ~ g(x)/3.
  for (double rep : {1000.0, 10000.0, 100000.0}) {
    const double ratio = g(punish_leader(rep)) / g(rep);
    EXPECT_GT(ratio, 0.25) << rep;
    EXPECT_LT(ratio, 0.45) << rep;
  }
}

TEST(Punishment, HigherReputationStrongerPunishment) {
  // Absolute reputation loss grows with the starting reputation.
  double prev_loss = 0.0;
  for (double rep : {8.0, 27.0, 64.0, 125.0}) {
    const double loss = rep - punish_leader(rep);
    EXPECT_GT(loss, prev_loss);
    prev_loss = loss;
  }
}

}  // namespace
}  // namespace cyc::protocol
