// Focused integration tests for the inter-committee consensus (§IV-D)
// and its security lemmas.
#include <gtest/gtest.h>

#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

Params cross_params(std::uint64_t seed) {
  Params p;
  p.m = 3;
  p.c = 9;
  p.lambda = 3;
  p.referee_size = 5;
  p.txs_per_committee = 10;
  p.cross_shard_fraction = 0.6;
  p.invalid_fraction = 0.0;
  p.seed = seed;
  return p;
}

TEST(CrossShard, HonestCrossTrafficSettles) {
  Engine engine(cross_params(1), AdversaryConfig{});
  const RunReport report = engine.run(3);
  std::size_t cross = 0;
  for (const auto& r : report.rounds) cross += r.cross_committed;
  EXPECT_GT(cross, 5u);
  EXPECT_EQ(report.total_invalid_committed(), 0u);
}

TEST(CrossShard, CrossOutputsLandInDestinationShard) {
  Engine engine(cross_params(2), AdversaryConfig{});
  // Sum per-shard value before and after: cross settlement moves value
  // between shards while conserving the total (minus fees).
  std::vector<ledger::Amount> before;
  for (const auto& store : engine.shard_state()) {
    before.push_back(store.total_value());
  }
  const RunReport report = engine.run(3);
  std::size_t moved_shards = 0;
  ledger::Amount total_after = 0, total_before = 0;
  for (std::size_t s = 0; s < before.size(); ++s) {
    const ledger::Amount after = engine.shard_state()[s].total_value();
    total_after += after;
    total_before += before[s];
    if (after != before[s]) ++moved_shards;
  }
  EXPECT_GT(report.total_committed(), 0u);
  EXPECT_GE(moved_shards, 2u);            // value actually crossed shards
  EXPECT_LE(total_after, total_before);   // conservation (fees burned)
}

TEST(CrossShard, ConcealerEvictedViaTwoGammaRule) {
  // Lemma 7 machinery: a destination leader that ignores certified
  // cross lists is accused by its partial set after 2*Gamma (+2*Gamma
  // grace after the forwarded copy) and replaced.
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.34;  // committee 0's leader
  adv.mix = {{Behavior::kConcealer, 1.0}};
  Engine engine(cross_params(3), adv);
  const auto bad = engine.assignment().committees[0].leader;
  ASSERT_EQ(engine.behavior_of(bad), Behavior::kConcealer);
  const RoundReport report = engine.run_round();
  EXPECT_EQ(report.invalid_committed, 0u);
  // Either no cross list targeted committee 0 this round (then nothing
  // to conceal) or the concealer was evicted.
  bool evicted = false;
  for (const auto& event : report.recovery_events) {
    if (event.old_leader == bad) evicted = true;
  }
  bool had_cross_to_0 = false;
  for (const auto& c : report.committees) {
    if (c.committee != 0 && c.cross_committed > 0) had_cross_to_0 = true;
  }
  if (!evicted) {
    // Concealment without incoming lists is a no-op; assert the round
    // was otherwise healthy.
    EXPECT_GT(report.txs_committed, 0u);
  } else {
    SUCCEED() << "concealer evicted; cross to committee 0 existed="
              << had_cross_to_0;
  }
}

TEST(CrossShard, ConcealedTrafficRecoveredSameRound) {
  // Run several seeds; whenever a concealer is evicted, the cross
  // transactions destined to its committee must still commit in the
  // same round (the recovery's whole point).
  int evictions = 0;
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    AdversaryConfig adv;
    adv.forced_corrupt_leader_fraction = 0.34;
    adv.mix = {{Behavior::kConcealer, 1.0}};
    Engine engine(cross_params(seed), adv);
    const auto bad = engine.assignment().committees[0].leader;
    const RoundReport report = engine.run_round();
    for (const auto& event : report.recovery_events) {
      if (event.old_leader != bad) continue;
      ++evictions;
      // After eviction the round still settled cross traffic overall.
      EXPECT_GT(report.cross_committed, 0u) << "seed " << seed;
    }
    EXPECT_EQ(report.invalid_committed, 0u) << "seed " << seed;
  }
  EXPECT_GT(evictions, 0) << "no seed exercised the concealment path";
}

TEST(CrossShard, ImitatorForgedCertsRejectedEverywhere) {
  // Lemma 6 "imitate": forged acceptance certificates must not put a
  // single transaction into the block via the cross path of the
  // imitator's committee.
  AdversaryConfig adv;
  adv.forced_corrupt_leader_fraction = 0.34;
  adv.mix = {{Behavior::kImitator, 1.0}};
  for (std::uint64_t seed = 20; seed < 25; ++seed) {
    Engine engine(cross_params(seed), adv);
    const RoundReport report = engine.run_round();
    EXPECT_EQ(report.invalid_committed, 0u) << "seed " << seed;
    EXPECT_GT(report.txs_committed, 0u) << "seed " << seed;
  }
}

TEST(CrossShard, NoCrossTrafficMeansNoInterPhaseCost) {
  Params p = cross_params(30);
  p.cross_shard_fraction = 0.0;
  Engine engine(p, AdversaryConfig{});
  const RoundReport report = engine.run_round();
  std::uint64_t inter_msgs = 0;
  for (const auto& [role, phases] : report.traffic_by_role_phase) {
    inter_msgs +=
        phases[static_cast<std::size_t>(net::Phase::kInterConsensus)]
            .msgs_sent;
  }
  EXPECT_EQ(inter_msgs, 0u);
  EXPECT_EQ(report.cross_committed, 0u);
  EXPECT_GT(report.intra_committed, 0u);
}

TEST(CrossShard, HigherGammaDelaysButDoesNotBreak) {
  Params slow = cross_params(31);
  slow.delays.gamma = 20.0;           // 4x the default key-mesh delay
  slow.inter_duration = 160.0;        // widen the phase window to fit
  Engine engine(slow, AdversaryConfig{});
  const RoundReport report = engine.run_round();
  EXPECT_GT(report.cross_committed, 0u);
  EXPECT_EQ(report.invalid_committed, 0u);
}

}  // namespace
}  // namespace cyc::protocol
