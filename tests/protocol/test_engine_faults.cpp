// Fault-fabric lifecycle at the engine level: the crash -> restart ->
// referee catch-up protocol, its bounded retry budget, forged-voucher
// resistance, and graceful degradation of a committee severed below
// referee quorum by a partition.
#include <gtest/gtest.h>

#include "protocol/engine.hpp"

namespace cyc::protocol {
namespace {

Params small_params(std::uint64_t seed) {
  Params p;
  p.m = 2;
  p.c = 9;
  p.lambda = 3;
  p.referee_size = 5;
  p.txs_per_committee = 8;
  p.cross_shard_fraction = 0.2;
  p.invalid_fraction = 0.0;
  p.users = 40;
  p.seed = seed;
  return p;
}

TEST(CrashRestart, AdoptsHonestReplayDigestAndRejoins) {
  Engine engine(small_params(1), {});
  const net::NodeId victim = 3;
  engine.corrupt(victim, Behavior::kCrash);  // effective round 2
  engine.run_round();
  const RoundReport r2 = engine.run_round();
  EXPECT_FALSE(engine.active(victim, r2.round));

  // The digest the referees serve during round 3's catch-up is exactly
  // the post-round-2 state (tip + per-shard views).
  const crypto::Digest expected =
      catchup_state_digest(engine.chain().tip().hash(), engine.shard_state());

  engine.restart(victim);
  const RoundReport r3 = engine.run_round();
  ASSERT_EQ(r3.catchup_events.size(), 1u);
  const CatchUpRecord& rec = r3.catchup_events.front();
  EXPECT_EQ(rec.node, victim);
  EXPECT_TRUE(rec.success);
  EXPECT_GT(rec.confirms, engine.params().referee_size / 2);
  EXPECT_TRUE(rec.adopted_digest == expected);
  // Still parked while catching up; rejoins the next round.
  EXPECT_FALSE(engine.active(victim, r3.round));
  const RoundReport r4 = engine.run_round();
  EXPECT_TRUE(engine.active(victim, r4.round));
}

TEST(CrashRestart, ExhaustedRetriesRecrash) {
  Engine engine(small_params(2), {});
  const net::NodeId victim = 4;
  engine.corrupt(victim, Behavior::kCrash);
  engine.run_round();
  engine.run_round();
  engine.restart(victim);
  // Silence the victim: its catch-up requests never reach a referee, so
  // the retry budget (max_catchup_rounds) must expire into a re-crash.
  engine.blackout(victim, 3, 100);
  bool failed = false;
  bool succeeded = false;
  for (int i = 0; i < 6; ++i) {
    const RoundReport r = engine.run_round();
    for (const auto& rec : r.catchup_events) {
      if (rec.node != victim) continue;
      failed |= !rec.success;
      succeeded |= rec.success;
    }
  }
  EXPECT_TRUE(failed) << "retry budget must expire into a re-crash";
  EXPECT_FALSE(succeeded);
  EXPECT_FALSE(engine.active(victim, engine.round()));
}

TEST(CrashRestart, RestartOfLiveNodeIsNoOp) {
  Engine engine(small_params(5), {});
  engine.restart(2);  // shrinker-orphaned restart: deliberate no-op
  const RoundReport r1 = engine.run_round();
  EXPECT_TRUE(r1.catchup_events.empty());
  EXPECT_TRUE(engine.active(2, r1.round));
}

TEST(CrashRestart, ForgedMinorityCannotOutvoteHonestReferees) {
  // A quarter of the universe is corrupted from genesis: wherever those
  // identities land in C_R they vouch for forged state. Forged vouchers
  // are referee-specific and can never agree with each other, so the
  // honest majority's identical digest wins every tally.
  AdversaryConfig adv;
  adv.corrupt_fraction = 0.25;
  adv.mix = {{Behavior::kEquivocator, 1.0}};
  Engine engine(small_params(3), adv);
  net::NodeId victim = net::kNoNode;
  for (std::size_t id = 0; id < engine.node_count(); ++id) {
    if (engine.behavior_of(static_cast<net::NodeId>(id)) ==
        Behavior::kHonest) {
      victim = static_cast<net::NodeId>(id);
      break;
    }
  }
  ASSERT_NE(victim, net::kNoNode);
  engine.corrupt(victim, Behavior::kCrash);
  engine.run_round();
  engine.run_round();
  engine.restart(victim);
  bool adopted = false;
  for (int i = 0; i < 4 && !adopted; ++i) {
    // Expected digest moves every round; snapshot before running.
    const crypto::Digest expected = catchup_state_digest(
        engine.chain().tip().hash(), engine.shard_state());
    const RoundReport r = engine.run_round();
    for (const auto& rec : r.catchup_events) {
      if (rec.node != victim || !rec.success) continue;
      adopted = true;
      EXPECT_TRUE(rec.adopted_digest == expected)
          << "adopted digest must be the honest replay digest";
    }
  }
  EXPECT_TRUE(adopted);
}

TEST(Partition, SeveredCommitteeParksThenResumes) {
  Engine engine(small_params(4), {});
  // Cut committee 0 (leader + partials + commons together) from the
  // mainland for round 1; referees stay on the mainland, so the island
  // can never assemble a referee quorum.
  const auto island = engine.assignment().committees[0].all_members();
  engine.partition(island, 1, 2);
  const RoundReport r1 = engine.run_round();
  ASSERT_EQ(r1.committees.size(), 2u);
  EXPECT_TRUE(r1.committees[0].severed);
  EXPECT_FALSE(r1.committees[0].produced_output);
  EXPECT_FALSE(r1.committees[1].severed);
  EXPECT_TRUE(r1.committees[1].produced_output);
  // Healed at round 2: both committees certify output again.
  const RoundReport r2 = engine.run_round();
  EXPECT_FALSE(r2.committees[0].severed);
  EXPECT_TRUE(r2.committees[0].produced_output);
  EXPECT_TRUE(r2.committees[1].produced_output);
}

TEST(Partition, BlackedOutRefereeSeatIsSkippedForDesignation) {
  Engine engine(small_params(6), {});
  // Black out every referee: no committee can reach quorum, every
  // committee reports severed, and the round still terminates cleanly
  // with an empty block (graceful degradation, not a crash).
  for (net::NodeId ref : engine.assignment().referees) {
    engine.blackout(ref, 1, 2);
  }
  const RoundReport r1 = engine.run_round();
  for (const auto& stats : r1.committees) {
    EXPECT_TRUE(stats.severed);
    EXPECT_FALSE(stats.produced_output);
  }
  EXPECT_EQ(r1.txs_committed, 0u);
  // Referees back: output resumes.
  const RoundReport r2 = engine.run_round();
  for (const auto& stats : r2.committees) {
    EXPECT_TRUE(stats.produced_output);
  }
}

}  // namespace
}  // namespace cyc::protocol
