#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cyc::net {
namespace {

SimNet make_net(std::size_t nodes, DelayModel delays = {}) {
  return SimNet(nodes, delays, rng::Stream(7));
}

TEST(SimNet, DeliversMessage) {
  SimNet net = make_net(2);
  bool delivered = false;
  net.set_handler(1, [&](const Message& msg, Time) {
    delivered = true;
    EXPECT_EQ(msg.from, 0u);
    EXPECT_EQ(msg.to, 1u);
    EXPECT_EQ(msg.tag, Tag::kConfig);
    EXPECT_EQ(msg.payload(), Bytes({1, 2, 3}));
  });
  net.send(0, 1, Tag::kConfig, {1, 2, 3});
  net.run();
  EXPECT_TRUE(delivered);
}

TEST(SimNet, DelayRespectsLinkClass) {
  DelayModel delays;
  delays.delta = 1.0;
  delays.gamma = 10.0;
  SimNet net(3, delays, rng::Stream(1));
  net.set_link_classifier([](NodeId from, NodeId) {
    return from == 0 ? LinkClass::kIntraCommittee : LinkClass::kKeyMesh;
  });
  Time fast = -1, slow = -1;
  net.set_handler(2, [&](const Message& msg, Time now) {
    (msg.from == 0 ? fast : slow) = now;
  });
  net.send(0, 2, Tag::kConfig, {});
  net.send(1, 2, Tag::kConfig, {});
  net.run();
  EXPECT_GT(fast, 0.0);
  EXPECT_LE(fast, 1.0);    // within Delta
  EXPECT_GT(slow, 1.0);    // key-mesh delay
  EXPECT_LE(slow, 10.0);   // within Gamma
}

TEST(SimNet, UnconnectedLinksDropAndCount) {
  SimNet net = make_net(2);
  net.set_link_classifier(
      [](NodeId, NodeId) { return LinkClass::kUnconnected; });
  bool delivered = false;
  net.set_handler(1, [&](const Message&, Time) { delivered = true; });
  net.send(0, 1, Tag::kConfig, {});
  net.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped_sends(), 1u);
}

TEST(SimNet, DeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    SimNet net(4, DelayModel{}, rng::Stream(seed));
    std::vector<std::pair<NodeId, Time>> log;
    for (NodeId i = 0; i < 4; ++i) {
      net.set_handler(i, [&log, i](const Message&, Time t) {
        log.emplace_back(i, t);
      });
    }
    for (NodeId i = 0; i < 4; ++i) {
      for (NodeId j = 0; j < 4; ++j) {
        if (i != j) net.send(i, j, Tag::kConfig, {});
      }
    }
    net.run();
    return log;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(SimNet, MulticastSkipsSelf) {
  SimNet net = make_net(4);
  int count = 0;
  for (NodeId i = 0; i < 4; ++i) {
    net.set_handler(i, [&](const Message&, Time) { ++count; });
  }
  net.multicast(0, {0, 1, 2, 3}, Tag::kConfig, {});
  net.run();
  EXPECT_EQ(count, 3);
}

TEST(SimNet, TimersFireInOrder) {
  SimNet net = make_net(1);
  std::vector<int> order;
  net.schedule(5.0, [&](Time) { order.push_back(2); });
  net.schedule(1.0, [&](Time) { order.push_back(1); });
  net.schedule(9.0, [&](Time) { order.push_back(3); });
  net.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimNet, TimerInPastFiresNow) {
  SimNet net = make_net(1);
  net.schedule(10.0, [&](Time) {});
  net.run();
  bool fired = false;
  net.schedule(1.0, [&](Time t) {
    fired = true;
    EXPECT_GE(t, 10.0);  // clamped to 'now'
  });
  net.run();
  EXPECT_TRUE(fired);
}

TEST(SimNet, RunDeadlineStopsEarly) {
  SimNet net = make_net(1);
  bool late_fired = false;
  net.schedule(100.0, [&](Time) { late_fired = true; });
  net.run(50.0);
  EXPECT_FALSE(late_fired);
  EXPECT_FALSE(net.idle());
  net.run();
  EXPECT_TRUE(late_fired);
}

TEST(SimNet, CascadedSendsFromHandler) {
  SimNet net = make_net(3);
  std::vector<NodeId> hops;
  net.set_handler(1, [&](const Message&, Time) {
    hops.push_back(1);
    net.send(1, 2, Tag::kConfig, {});
  });
  net.set_handler(2, [&](const Message&, Time) { hops.push_back(2); });
  net.send(0, 1, Tag::kConfig, {});
  net.run();
  EXPECT_EQ(hops, (std::vector<NodeId>{1, 2}));
}

TEST(SimNet, StatsCountTraffic) {
  SimNet net = make_net(2);
  net.set_phase(Phase::kIntraConsensus);
  net.set_handler(1, [](const Message&, Time) {});
  net.send(0, 1, Tag::kConfig, Bytes(100, 0));
  net.run();
  const auto& sent = net.stats().at(0, Phase::kIntraConsensus);
  const auto& recv = net.stats().at(1, Phase::kIntraConsensus);
  EXPECT_EQ(sent.msgs_sent, 1u);
  EXPECT_EQ(sent.bytes_sent, 116u);  // payload + 16-byte header
  EXPECT_EQ(recv.msgs_recv, 1u);
  EXPECT_EQ(recv.bytes_recv, 116u);
}

TEST(SimNet, PhaseAttributionIsSendTime) {
  SimNet net = make_net(2);
  net.set_handler(1, [](const Message&, Time) {});
  net.set_phase(Phase::kSemiCommit);
  net.send(0, 1, Tag::kConfig, {});
  net.set_phase(Phase::kBlock);  // phase changes before delivery
  net.run();
  EXPECT_EQ(net.stats().at(1, Phase::kSemiCommit).msgs_recv, 1u);
  EXPECT_EQ(net.stats().at(1, Phase::kBlock).msgs_recv, 0u);
}

TEST(SimNet, SendToUnknownNodeThrows) {
  SimNet net = make_net(2);
  EXPECT_THROW(net.send(0, 5, Tag::kConfig, {}), std::out_of_range);
}

TEST(SimNet, DroppedSendsDeterministicAcrossRuns) {
  // Non-vacuity: kUnconnected sends are counted, not silently lost, and
  // the count is identical across repeated runs of the same seed.
  auto run_once = [] {
    SimNet net(4, DelayModel{}, rng::Stream(11));
    net.set_link_classifier([](NodeId from, NodeId to) {
      return (from + to) % 2 == 0 ? LinkClass::kUnconnected
                                  : LinkClass::kKeyMesh;
    });
    std::uint64_t delivered = 0;
    for (NodeId i = 0; i < 4; ++i) {
      net.set_handler(i, [&](const Message&, Time) { ++delivered; });
    }
    for (NodeId i = 0; i < 4; ++i) {
      for (NodeId j = 0; j < 4; ++j) {
        if (i != j) net.send(i, j, Tag::kConfig, {});
      }
    }
    net.run();
    return std::make_pair(net.dropped_sends(), delivered);
  };
  const auto [dropped_a, delivered_a] = run_once();
  const auto [dropped_b, delivered_b] = run_once();
  EXPECT_EQ(dropped_a, dropped_b);
  EXPECT_EQ(delivered_a, delivered_b);
  EXPECT_GT(dropped_a, 0u);                 // some links really were cut
  EXPECT_EQ(dropped_a + delivered_a, 12u);  // nothing silently lost
}

TEST(SimNet, EqualTimestampsDeliverInSeqOrder) {
  // With zero jitter every kPartialSync delay is exactly gamma, so all
  // messages sent at t=0 carry equal delivery timestamps and the queue
  // must fall back to the seq_ tie-break: delivery order == send order,
  // byte-identical on every run (sweeps run one single-threaded SimNet
  // per point, so per-instance determinism is what thread-count
  // invariance of the artifacts rests on).
  auto run_once = [] {
    DelayModel delays;
    delays.gamma = 5.0;
    delays.jitter = 0.0;
    SimNet net(8, delays, rng::Stream(2));
    net.set_link_classifier(
        [](NodeId, NodeId) { return LinkClass::kPartialSync; });
    std::vector<std::pair<NodeId, Time>> log;
    net.set_handler(7, [&](const Message& msg, Time t) {
      log.emplace_back(msg.from, t);
    });
    for (NodeId i = 0; i < 7; ++i) net.send(i, 7, Tag::kConfig, {});
    net.run();
    return log;
  };
  const auto log = run_once();
  ASSERT_EQ(log.size(), 7u);
  for (NodeId i = 0; i < 7; ++i) {
    EXPECT_EQ(log[i].first, i);        // seq order == send order
    EXPECT_EQ(log[i].second, 5.0);     // all timestamps equal
  }
  EXPECT_EQ(log, run_once());
}

TEST(SimNet, PartialSyncDelaysLargerThanGamma) {
  DelayModel delays;
  delays.gamma = 5.0;
  delays.jitter = 1.0;
  SimNet net(2, delays, rng::Stream(3));
  net.set_link_classifier(
      [](NodeId, NodeId) { return LinkClass::kPartialSync; });
  Time arrival = -1;
  net.set_handler(1, [&](const Message&, Time t) { arrival = t; });
  net.send(0, 1, Tag::kConfig, {});
  net.run();
  EXPECT_GE(arrival, 5.0);
  EXPECT_LE(arrival, 10.0);
}

}  // namespace
}  // namespace cyc::net
