// Zero-copy invariants of the message fabric: one payload allocation per
// logical broadcast, and every delivered Message aliasing the same
// immutable buffer.
#include <gtest/gtest.h>

#include <vector>

#include "net/simnet.hpp"

namespace cyc::net {
namespace {

SimNet make_net(std::size_t nodes) {
  return SimNet(nodes, DelayModel{}, rng::Stream(7));
}

TEST(ZeroCopy, MulticastAllocatesExactlyOnce) {
  SimNet net = make_net(16);
  std::vector<NodeId> receivers;
  for (NodeId id = 1; id < 16; ++id) receivers.push_back(id);

  const std::uint64_t allocs_before = payload_allocations();
  const std::uint64_t bytes_before = payload_bytes_allocated();
  net.multicast(0, receivers, Tag::kConfig, Bytes(100, 0xab));
  EXPECT_EQ(payload_allocations() - allocs_before, 1u);
  EXPECT_EQ(payload_bytes_allocated() - bytes_before, 100u);
}

TEST(ZeroCopy, MulticastDeliveriesAliasOneBuffer) {
  SimNet net = make_net(8);
  std::vector<NodeId> receivers = {1, 2, 3, 4, 5, 6, 7};
  std::vector<PayloadPtr> seen;  // keeps the buffers alive past run()
  for (NodeId id : receivers) {
    net.set_handler(id, [&](const Message& msg, Time) {
      seen.push_back(msg.body);
    });
  }
  const Bytes payload = {1, 2, 3, 4};
  net.multicast(0, receivers, Tag::kConfig, payload);
  net.run();
  ASSERT_EQ(seen.size(), receivers.size());
  for (const PayloadPtr& p : seen) {
    EXPECT_EQ(p.get(), seen.front().get()) << "deliveries must alias one buffer";
    EXPECT_EQ(*p, payload) << "and the content must be intact";
  }
}

TEST(ZeroCopy, SendSharedReusesBufferAcrossSends) {
  SimNet net = make_net(4);
  int delivered = 0;
  const Bytes content(64, 0x5a);
  for (NodeId id = 1; id < 4; ++id) {
    net.set_handler(id, [&](const Message& msg, Time) {
      EXPECT_EQ(msg.payload(), content);
      ++delivered;
    });
  }
  const std::uint64_t allocs_before = payload_allocations();
  const PayloadPtr shared = make_payload(content);
  for (NodeId id = 1; id < 4; ++id) {
    net.send_shared(0, id, Tag::kBlock, shared);
  }
  net.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(payload_allocations() - allocs_before, 1u);
}

TEST(ZeroCopy, SenderSideMutationCannotReachReceivers) {
  // The shared buffer is const; a sender that wants a new payload must
  // materialise a new buffer, so queued messages are immutable.
  SimNet net = make_net(2);
  Bytes original = {9, 9, 9};
  Bytes received;
  net.set_handler(1, [&](const Message& msg, Time) {
    received = msg.payload();
  });
  net.send(0, 1, Tag::kConfig, original);
  original.assign({1, 1, 1});  // sender reuses its local buffer afterwards
  net.run();
  EXPECT_EQ(received, Bytes({9, 9, 9}));
}

TEST(ZeroCopy, EmptyPayloadMessageHasEmptyView) {
  Message msg;
  EXPECT_TRUE(msg.payload().empty());
  EXPECT_EQ(msg.wire_size(), 16u);
}

}  // namespace
}  // namespace cyc::net
